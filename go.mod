module lazyctrl

go 1.24
