// Command lazyvet runs the repo's invariant analyzers (determinism,
// maporder, wireproto, versionstamp, stripelock, spanbalance — see
// docs/analysis.md) over Go packages. It speaks two protocols:
//
//	go vet -vettool=$(go env GOBIN)/lazyvet ./...   (or any built path)
//
// the cmd/go unitchecker protocol — cmd/go builds each package's
// dependencies, writes a vet.cfg naming the sources and every import's
// export file, and invokes this tool once per package; and
//
//	lazyvet ./...
//
// standalone mode, which resolves patterns and export data itself via
// `go list -export -deps`. Both modes exit nonzero when any analyzer
// reports a finding, so a CI step is just the invocation.
//
// The module is dependency-free, so this is not a golang.org/x/tools
// multichecker; internal/analysis mirrors the go/analysis API shape
// and internal/analysis/load reimplements the loading.
package main

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"strings"

	"lazyctrl/internal/analysis"
	"lazyctrl/internal/analysis/load"
)

const progname = "lazyvet"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The cmd/go handshake probes come first and exactly once.
	if len(args) == 1 {
		switch args[0] {
		case "-V=full", "--V=full":
			return printVersion()
		case "-flags", "--flags":
			// No tool-specific flags: every analyzer always runs.
			fmt.Println("[]")
			return 0
		case "help", "-h", "-help", "--help":
			usage()
			return 0
		}
	}

	// Unitchecker mode: the sole argument is a *.cfg path.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return runVetCfg(args[0])
	}

	// Standalone mode: package patterns.
	if len(args) == 0 {
		usage()
		return 2
	}
	return runStandalone(args)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: %[1]s package...
       go vet -vettool=$(which %[1]s) package...

%[1]s enforces lazyctrl's determinism, wire-protocol, version-stamp,
map-order, lock-striping, and span-lifecycle invariants. Analyzers:

`, progname)
	for _, a := range analysis.All() {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, doc)
	}
	fmt.Fprintf(os.Stderr, `
Suppress a finding with a trailing or preceding-line comment:

  //lazyvet:allow <analyzer> <reason>

The reason is mandatory and unused suppressions are themselves errors.
See docs/analysis.md.
`)
}

// printVersion implements -V=full. cmd/go embeds the whole output
// line in the build-cache key for vet results, so the version string
// must change whenever the tool's behavior does: a content hash of
// the executable is the only honest answer.
func printVersion() int {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = hex.EncodeToString(h.Sum(nil)[:12])
			}
			f.Close()
		}
	}
	fmt.Printf("%s version %s\n", progname, id)
	return 0
}

func runVetCfg(path string) int {
	cfg, pkg, err := load.VetCfg(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}
	// cmd/go treats the vetx file as the action's output; write it
	// unconditionally (lazyvet exports no facts, so it is empty).
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			return 1
		}
	}
	// Dependency-only units contribute facts, not findings; lazyvet
	// has no facts, so there is nothing to do.
	if cfg.VetxOnly || pkg == nil {
		return 0
	}
	diags, err := analysis.Run(pkg, analysis.All())
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	printDiags(pkg, diags)
	return 2
}

func runStandalone(patterns []string) int {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}
	pkgs, err := load.Patterns(wd, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, analysis.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
			return 1
		}
		if len(diags) > 0 {
			printDiags(pkg, diags)
			exit = 2
		}
	}
	return exit
}

func printDiags(pkg *analysis.Package, diags []analysis.Diagnostic) {
	for _, d := range diags {
		if d.Pos.IsValid() {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer)
		} else {
			fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", pkg.Pkg.Path(), d.Message, d.Analyzer)
		}
	}
}
