// Command bench runs the repository's tier-1 benchmarks with -benchmem
// and emits a machine-readable JSON report (BENCH_<n>.json), so the
// performance trajectory of the hot paths is tracked PR over PR.
//
// Usage:
//
//	go run ./cmd/bench [-bench regex] [-benchtime 1x] [-count 1] \
//	    [-pkg ./...] [-out BENCH_1.json]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	NumCPU      int      `json:"num_cpu"`
	BenchRegex  string   `json:"bench_regex"`
	BenchTime   string   `json:"bench_time"`
	Benchmarks  []Result `json:"benchmarks"`
	// Baseline embeds a previous report's results (-baseline flag), so
	// one file carries the before/after pair for a PR.
	Baseline *Report `json:"baseline,omitempty"`
}

// benchLine matches "BenchmarkName-8  10  123456 ns/op  99 B/op  3 allocs/op"
// (the B/op and allocs/op columns are optional).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	var (
		bench     = flag.String("bench", "BenchmarkFig6b|BenchmarkFig7$|BenchmarkIniGroup|BenchmarkIncUpdate|BenchmarkPartitionKWay|BenchmarkBisect|BenchmarkEventChurn|BenchmarkIntensityAdd|BenchmarkForEachPair", "benchmark regex passed to go test -bench")
		benchtime = flag.String("benchtime", "1x", "value for go test -benchtime")
		count     = flag.Int("count", 1, "value for go test -count")
		pkgs      = flag.String("pkg", "./...", "package pattern to benchmark")
		out       = flag.String("out", "BENCH_1.json", "output JSON path")
		dir       = flag.String("dir", "", "directory to run go test in (default: current; use to benchmark another checkout)")
		baseline  = flag.String("baseline", "", "previous report JSON to embed as the before numbers")
	)
	flag.Parse()

	args := []string{
		"test", "-run", "^$",
		"-bench", *bench,
		"-benchmem",
		"-benchtime", *benchtime,
		"-count", strconv.Itoa(*count),
		*pkgs,
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = *dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "bench: go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "bench: go test: %v\n", err)
		os.Exit(1)
	}

	report := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		BenchRegex:  *bench,
		BenchTime:   *benchtime,
	}
	pkg := ""
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Name: m[1], Package: pkg, Iterations: iters, NsPerOp: ns}
		if m[4] != "" {
			r.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			r.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		report.Benchmarks = append(report.Benchmarks, r)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no benchmark lines parsed")
		os.Exit(1)
	}
	if *baseline != "" {
		prev, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: read baseline: %v\n", err)
			os.Exit(1)
		}
		var base Report
		if err := json.Unmarshal(prev, &base); err != nil {
			fmt.Fprintf(os.Stderr, "bench: parse baseline: %v\n", err)
			os.Exit(1)
		}
		base.Baseline = nil // never nest more than one level
		report.Baseline = &base
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("bench: wrote %d results to %s\n", len(report.Benchmarks), *out)
}
