// Command bench runs the repository's tier-1 benchmarks with -benchmem
// and emits a machine-readable JSON report (BENCH_<n>.json), so the
// performance trajectory of the hot paths is tracked PR over PR.
//
// With no flags it finds the latest BENCH_<n>.json, writes BENCH_<n+1>,
// embeds the previous report as the baseline, and gates the headline
// benchmarks (-gate, default Fig6b and Fig7) against it: a >10%
// (-maxregress) regression in wall-clock or allocs/op exits non-zero,
// which is what CI keys off.
//
// Wall-clock violations are remeasured before they count: a single
// -benchtime 1x shot of a microsecond-scale benchmark cannot be timed
// to ±10% on a shared single-core box, and co-tenant contamination is
// one-sided (it only ever inflates a reading), so a ns/op violator is
// re-run up to -remeasure times and the per-benchmark MINIMUM is what
// lands in the report and faces the gate — the trajectory records the
// cost floor, not the noise (same estimator BenchmarkTelemetryOverhead
// uses internally). allocs/op is deterministic and never remeasured.
//
// Usage:
//
//	go run ./cmd/bench [-bench regex] [-benchtime 1x] [-count 1] \
//	    [-pkg ./...] [-out BENCH_2.json] [-baseline BENCH_1.json|none] \
//	    [-gate Name1,Name2] [-maxregress 0.10]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Package     string  `json:"package"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra holds custom b.ReportMetric units (e.g. the dissemination
	// benchmarks' "wire-B/op" bytes-on-wire metric), keyed by unit.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	GeneratedAt string   `json:"generated_at"`
	GoVersion   string   `json:"go_version"`
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	NumCPU      int      `json:"num_cpu"`
	BenchRegex  string   `json:"bench_regex"`
	BenchTime   string   `json:"bench_time"`
	Benchmarks  []Result `json:"benchmarks"`
	// Baseline embeds a previous report's results (-baseline flag), so
	// one file carries the before/after pair for a PR.
	Baseline *Report `json:"baseline,omitempty"`
}

// benchName matches the leading "BenchmarkName-8  10" of a result line;
// the metrics that follow are parsed as generic (value, unit) pairs so
// custom b.ReportMetric units survive between ns/op and the -benchmem
// columns.
var benchName = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?$`)

// parseBenchLine parses one "BenchmarkX-8 N v1 u1 v2 u2 ..." line, or
// returns nil for non-benchmark output.
func parseBenchLine(line, pkg string) *Result {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return nil
	}
	m := benchName.FindStringSubmatch(fields[0])
	if m == nil {
		return nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil
	}
	r := &Result{Name: m[1], Package: pkg, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		value, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = value
		case "B/op":
			r.BytesPerOp = int64(value)
		case "allocs/op":
			r.AllocsPerOp = int64(value)
		default:
			if r.Extra == nil {
				r.Extra = make(map[string]float64)
			}
			r.Extra[unit] = value
		}
	}
	if r.NsPerOp == 0 && r.Extra == nil && r.BytesPerOp == 0 {
		return nil
	}
	return r
}

func main() {
	var (
		bench       = flag.String("bench", "BenchmarkFig6b|BenchmarkFig7$|BenchmarkFig7Sampled|BenchmarkIniGroup|BenchmarkIncUpdate|BenchmarkPartitionKWay|BenchmarkBisect|BenchmarkEventChurn|BenchmarkIntensityAdd|BenchmarkForEachPair|BenchmarkPacketInStorm|BenchmarkDissemDelta|BenchmarkDissemFull|BenchmarkTraceStream|BenchmarkTraceMaterialized|BenchmarkConvergence|BenchmarkControlFold|BenchmarkFailover|BenchmarkTelemetryOverhead|BenchmarkHostSamplingBias", "benchmark regex passed to go test -bench")
		benchtime   = flag.String("benchtime", "1x", "value for go test -benchtime")
		count       = flag.Int("count", 1, "value for go test -count")
		pkgs        = flag.String("pkg", "./...", "package pattern to benchmark")
		out         = flag.String("out", "", "output JSON path (default: BENCH_<latest+1>.json)")
		dir         = flag.String("dir", "", "directory to run go test in (default: current; use to benchmark another checkout)")
		baseline    = flag.String("baseline", "", "previous report JSON to embed and gate against (default: latest BENCH_<n>.json; \"none\" disables)")
		gate        = flag.String("gate", "BenchmarkFig6b,BenchmarkFig7,BenchmarkFig7Sampled,BenchmarkDissemDelta,BenchmarkTraceStream,BenchmarkConvergence,BenchmarkControlFold,BenchmarkFailover,BenchmarkTelemetryOverhead,BenchmarkHostSamplingBias", "comma-separated benchmark names gated against the baseline")
		maxregress  = flag.Float64("maxregress", 0.10, "maximum tolerated fractional regression in ns/op or allocs/op for gated benchmarks")
		gatemetrics = flag.String("gatemetrics", "ns,allocs", "metrics the gate enforces: ns, allocs, or both; allocs/op is the only metric comparable across machines, so CI gates allocs only")
		remeasure   = flag.Int("remeasure", 4, "re-runs of ns-gate violators (min wall-clock wins) before a timing violation counts")
	)
	flag.Parse()

	latestPath, latestN := latestReport(".")
	if *out == "" {
		*out = fmt.Sprintf("BENCH_%d.json", latestN+1)
	}
	switch *baseline {
	case "":
		*baseline = latestPath // empty when no prior report exists
	case "none":
		*baseline = ""
	}

	results, err := runBenches(*bench, *benchtime, *count, *pkgs, *dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	report := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		BenchRegex:  *bench,
		BenchTime:   *benchtime,
		Benchmarks:  results,
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no benchmark lines parsed")
		os.Exit(1)
	}
	if *baseline != "" {
		prev, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: read baseline: %v\n", err)
			os.Exit(1)
		}
		var base Report
		if err := json.Unmarshal(prev, &base); err != nil {
			fmt.Fprintf(os.Stderr, "bench: parse baseline: %v\n", err)
			os.Exit(1)
		}
		base.Baseline = nil // never nest more than one level
		report.Baseline = &base
	}

	runGates := func(quiet bool) []string {
		violations := gateAbsolute(&report, *gatemetrics)
		if report.Baseline != nil {
			violations = append(violations, gateAgainstBaseline(&report, *gate, *gatemetrics, *maxregress, quiet)...)
		}
		return violations
	}
	violations := runGates(false)
	for round := 1; round <= *remeasure && len(nsViolators(violations)) > 0; round++ {
		names := nsViolators(violations)
		fmt.Fprintf(os.Stderr, "bench: remeasure round %d: re-timing %s\n", round, strings.Join(names, ","))
		rerun, err := runBenches("^("+strings.Join(names, "|")+")$", *benchtime, *count, *pkgs, *dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: remeasure: %v\n", err)
			os.Exit(1)
		}
		mergeMinNs(report.Benchmarks, rerun)
		violations = runGates(true)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("bench: wrote %d results to %s\n", len(report.Benchmarks), *out)

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "bench: REGRESSION %s\n", v)
		}
		os.Exit(1)
	}
}

// runBenches executes one go test -bench invocation and parses its
// result lines.
func runBenches(bench, benchtime string, count int, pkgs, dir string) ([]Result, error) {
	args := []string{
		"test", "-run", "^$",
		"-bench", bench,
		"-benchmem",
		"-benchtime", benchtime,
		"-count", strconv.Itoa(count),
		pkgs,
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "bench: go %s\n", strings.Join(args, " "))
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go test: %v", err)
	}
	var results []Result
	pkg := ""
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if r := parseBenchLine(line, pkg); r != nil {
			results = append(results, *r)
		}
	}
	return results, nil
}

// violationBench extracts the benchmark name a violation string leads
// with; nsViolators filters for the wall-clock ones — the only class
// remeasurement can change (allocs/op and the alloc-class absolute
// metrics are deterministic, so re-running them would reproduce the
// same number).
func violationBench(v string) string { return v[:strings.IndexByte(v, ':')] }

func nsViolators(violations []string) []string {
	var names []string
	for _, v := range violations {
		if strings.Contains(v, "ns/op") || strings.Contains(v, " overhead-pct = ") {
			names = append(names, violationBench(v))
		}
	}
	return names
}

// mergeMinNs folds a remeasurement run into the report: a benchmark's
// record is replaced only when the re-run timed lower, so the report
// converges on each benchmark's observed floor. The whole Result moves
// together — the extras that came from the faster run stay consistent
// with its timing.
func mergeMinNs(have []Result, rerun []Result) {
	for _, r := range rerun {
		for i := range have {
			if have[i].Name == r.Name && have[i].Package == r.Package && r.NsPerOp < have[i].NsPerOp {
				fmt.Fprintf(os.Stderr, "bench: remeasure %s: ns/op %.4g -> %.4g\n", r.Name, have[i].NsPerOp, r.NsPerOp)
				have[i] = r
			}
		}
	}
}

// absoluteGates pins benchmark extra metrics to hard ceilings,
// independent of any baseline: these encode acceptance criteria (the
// telemetry layer must stay within 3% of the instrumentation-disabled
// run) rather than trajectory stability, so they fire even on a first
// run with no BENCH_<n>.json to compare against. A listed benchmark
// absent from the run is not a violation — subset -bench invocations
// stay usable — but a present benchmark missing the metric is: the
// ReportMetric call vanishing silently must not pass. class maps the
// metric onto -gatemetrics the same way the baseline gates split:
// "allocs" metrics are deterministic and enforced everywhere including
// CI, "ns" metrics are timing-derived and only mean something on a
// machine quiet enough to time — CI passes -gatemetrics allocs and
// skips them.
var absoluteGates = []struct {
	bench, unit, class string
	max                float64
}{
	{"BenchmarkTelemetryOverhead", "overhead-pct", "ns", 3},
	{"BenchmarkTelemetryOverhead", "alloc-overhead-pct", "allocs", 3},
}

// gateAbsolute checks the absolute ceilings against the fresh run,
// limited to the metric classes selected by -gatemetrics.
func gateAbsolute(r *Report, metrics string) []string {
	var violations []string
	for _, g := range absoluteGates {
		if !strings.Contains(metrics, g.class) {
			continue
		}
		for i := range r.Benchmarks {
			b := &r.Benchmarks[i]
			if b.Name != g.bench {
				continue
			}
			v, ok := b.Extra[g.unit]
			switch {
			case !ok:
				violations = append(violations,
					fmt.Sprintf("%s: extra metric %q missing from the run", g.bench, g.unit))
			case v > g.max:
				violations = append(violations,
					fmt.Sprintf("%s: %s = %.2f exceeds absolute ceiling %.2f", g.bench, g.unit, v, g.max))
			}
		}
	}
	return violations
}

// latestReport finds the highest-numbered BENCH_<n>.json in dir.
func latestReport(dir string) (path string, n int) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0
	}
	re := regexp.MustCompile(`^BENCH_(\d+)\.json$`)
	for _, e := range entries {
		m := re.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if i, err := strconv.Atoi(m[1]); err == nil && i > n {
			n = i
			path = e.Name()
		}
	}
	return path, n
}

// gateAgainstBaseline compares the gated benchmarks to the embedded
// baseline and returns one violation string per enforced metric that
// regressed past maxregress. A gated benchmark missing from either
// side is reported too — silently dropping a headline benchmark must
// not pass. The metrics string selects what is enforced: ns/op only
// means anything against a baseline recorded on the same machine,
// allocs/op is machine-independent.
func gateAgainstBaseline(r *Report, gate, metrics string, maxregress float64, quiet bool) []string {
	gateNs := strings.Contains(metrics, "ns")
	gateAllocs := strings.Contains(metrics, "allocs")
	find := func(results []Result, name string) *Result {
		for i := range results {
			if results[i].Name == name {
				return &results[i]
			}
		}
		return nil
	}
	var violations []string
	for _, name := range strings.Split(gate, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		cur, base := find(r.Benchmarks, name), find(r.Baseline.Benchmarks, name)
		if base == nil {
			if !quiet {
				fmt.Printf("bench: gate %s: no baseline result, skipping\n", name)
			}
			continue
		}
		if cur == nil {
			violations = append(violations, fmt.Sprintf("%s: present in baseline but missing from this run", name))
			continue
		}
		limit := 1 + maxregress
		if !quiet {
			fmt.Printf("bench: gate %-18s ns/op %.3g -> %.3g (%+.1f%%), allocs/op %d -> %d (%+.1f%%)\n",
				name, base.NsPerOp, cur.NsPerOp, 100*(cur.NsPerOp/base.NsPerOp-1),
				base.AllocsPerOp, cur.AllocsPerOp, pctChange(base.AllocsPerOp, cur.AllocsPerOp))
		}
		if gateNs && cur.NsPerOp > base.NsPerOp*limit {
			violations = append(violations, fmt.Sprintf("%s: ns/op %.4g -> %.4g exceeds +%.0f%%",
				name, base.NsPerOp, cur.NsPerOp, 100*maxregress))
		}
		if gateAllocs && base.AllocsPerOp > 0 && float64(cur.AllocsPerOp) > float64(base.AllocsPerOp)*limit {
			violations = append(violations, fmt.Sprintf("%s: allocs/op %d -> %d exceeds +%.0f%%",
				name, base.AllocsPerOp, cur.AllocsPerOp, 100*maxregress))
		}
	}
	return violations
}

func pctChange(base, cur int64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * (float64(cur)/float64(base) - 1)
}
