// Command grouping explores the SGI switch-grouping algorithm on a
// generated trace: initial grouping quality, timing, and incremental
// updates.
//
// Usage:
//
//	grouping -trace syn-a -scale 30000 -limit 100
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lazyctrl/internal/grouping"
	"lazyctrl/internal/trace"
)

func main() {
	cli := trace.RegisterCLI(nil, "syn-a", 30000)
	limit := flag.Int("limit", 100, "group size limit")
	parallel := flag.Bool("parallel", false, "parallel IncUpdate (Appendix B)")
	flag.Parse()

	src := cli.MustStream()
	info := src.Info()

	m := trace.StreamIntensity(src, 0, info.Duration)
	fmt.Printf("trace %s: %d switches, %d active pairs, total intensity %.2f flows/s\n",
		info.Name, m.NumSwitches(), m.NumPairs(), m.Total())

	sgi, err := grouping.New(grouping.Config{
		SizeLimit: *limit,
		Seed:      cli.Seed(),
		Parallel:  *parallel,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	start := time.Now()
	grp, err := sgi.IniGroup(m)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	iniElapsed := time.Since(start)
	fmt.Printf("IniGroup: %d groups (max size %d) in %v\n",
		grp.NumGroups(), grp.MaxGroupSize(), iniElapsed.Round(time.Millisecond))
	fmt.Printf("normalized inter-group intensity W_inter = %.1f%%\n", 100*grouping.Winter(grp, m))

	// Simulate drift with the second half of the day and measure the
	// incremental update.
	half := trace.StreamIntensity(src, info.Duration/2, info.Duration)
	before := grouping.Winter(grp, half)
	start = time.Now()
	ops, err := sgi.IncUpdate(grp, half, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	incElapsed := time.Since(start)
	fmt.Printf("IncUpdate on second-half traffic: %d merge/split ops in %v (vs IniGroup ×%.1f faster)\n",
		ops, incElapsed.Round(time.Millisecond),
		float64(iniElapsed)/float64(maxDuration(incElapsed, time.Microsecond)))
	fmt.Printf("W_inter on drifted traffic: %.1f%% → %.1f%%\n",
		100*before, 100*grouping.Winter(grp, half))
}

func maxDuration(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
