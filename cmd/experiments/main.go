// Command experiments regenerates every table and figure of the
// LazyCtrl evaluation (§V): Table II, Fig. 6(a), Fig. 6(b), Fig. 7,
// Fig. 8, Fig. 9, the §V-E cold-cache comparison, and the §V-D storage
// analysis — plus the chaos cascade differential of docs/robustness.md.
//
// Usage:
//
//	experiments -run all            # everything (slow)
//	experiments -run tableII
//	experiments -run fig6a,fig6b
//	experiments -run fig7 -scale 5000
//	experiments -run coldcache,storage
//	experiments -run chaos
//	experiments -run failover
//
// Scale divides the paper's flow counts; 5000 replays ≈54k real-trace
// flows and is faithful, larger values run faster.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"lazyctrl/internal/chaos"
	"lazyctrl/internal/eval"
	"lazyctrl/internal/replay"
)

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiments: tableII,fig6a,fig6b,fig7,fig8,fig9,coldcache,storage,chaos,failover")
	scale := flag.Int("scale", 5000, "divisor applied to the paper's flow counts (1 = paper scale; use -engine sampled/fluid)")
	seed := flag.Uint64("seed", 1, "random seed")
	engineName := flag.String("engine", "des", "Fig7/8/9 replay engine: des, sampled, or fluid (docs/emulation.md)")
	sampleP := flag.Float64("p", 0, "pair-sampling probability for the sampled engine / fluid probe (0 = engine default)")
	hostSampling := flag.Bool("host-sampling", false, "host-level sampling for the sampled engine (q=√p per host)")
	traceSample := flag.Float64("trace-sample", 0, "Fig7/8/9 causal-span head-sampling rate in (0,1]; 0 disables tracing (docs/observability.md)")
	traceDump := flag.String("trace-dump", "", "write the real-static series' spans as JSONL to this file (requires -trace-sample)")
	metricsDump := flag.String("metrics-dump", "", "write the real-static series' telemetry registry as JSONL to this file")
	promDump := flag.String("prom-dump", "", "write a Prometheus-style snapshot of the real-static series' registry to this file")
	flag.Parse()
	engine, err := replay.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*runFlag, ",") {
		want[strings.ToLower(strings.TrimSpace(name))] = true
	}
	all := want["all"]
	var fig789 *eval.Fig789Result

	runErr := func(name string, fn func() error) {
		if !all && !want[strings.ToLower(name)] {
			return
		}
		fmt.Printf("\n=== %s ===\n", name)
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %v)\n", name, time.Since(start).Round(time.Millisecond))
	}

	runErr("TableII", func() error {
		rows, err := eval.TableII(*scale, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("%-6s %12s %12s %10s %10s %4s %4s\n",
			"Trace", "paper flows", "gen flows", "centr.", "paper c.", "p", "q")
		for _, r := range rows {
			fmt.Printf("%-6s %12d %12d %10.3f %10.2f %4d %4d\n",
				r.Name, r.PaperFlows, r.MeasuredFlows, r.AvgCentrality, r.PaperC, r.P, r.Q)
		}
		return nil
	})

	runErr("Fig6a", func() error {
		points, err := eval.Fig6a(*scale*6, *seed, []int{5, 10, 20, 40, 60, 80, 100, 120, 140})
		if err != nil {
			return err
		}
		fmt.Printf("%-6s %8s %12s\n", "Trace", "groups", "Winter (%)")
		for _, p := range points {
			fmt.Printf("%-6s %8d %12.1f\n", p.Trace, p.Groups, p.WinterPct)
		}
		return nil
	})

	runErr("Fig6b", func() error {
		points, err := eval.Fig6b(*scale*6, *seed, []int{50, 100, 200, 300, 400, 500, 600})
		if err != nil {
			return err
		}
		fmt.Printf("%-6s %10s %14s %14s\n", "Trace", "limit", "IniGroup", "IncUpdate")
		for _, p := range points {
			fmt.Printf("%-6s %10d %14v %14v\n",
				p.Trace, p.SizeLimit, p.Elapsed.Round(time.Millisecond), p.IncElapsed.Round(time.Millisecond))
		}
		return nil
	})

	need789 := all || want["fig7"] || want["fig8"] || want["fig9"] ||
		*traceDump != "" || *metricsDump != "" || *promDump != ""
	if need789 {
		fmt.Printf("\n=== Fig7/8/9 emulations (scale %d, engine %s) ===\n", *scale, engine)
		start := time.Now()
		res, err := eval.RunFig789(eval.Fig789Config{
			Scale: *scale, Seed: *seed, Engine: engine, SampleProb: *sampleP,
			HostSampling: *hostSampling, TraceSample: *traceSample,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "fig789: %v\n", err)
			os.Exit(1)
		}
		fig789 = res
		fmt.Printf("(5 emulations in %v)\n", time.Since(start).Round(time.Millisecond))

		// Exposition: the telemetry of the real-trace static-grouping
		// series (the paper's headline configuration).
		dump := func(path, what string, write func(io.Writer) error) {
			if path == "" {
				return
			}
			f, err := os.Create(path)
			if err == nil {
				err = write(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", what, err)
				os.Exit(1)
			}
		}
		hero := res.Series[eval.SeriesRealStatic]
		dump(*traceDump, "trace dump", hero.Spans.WriteJSONL)
		dump(*metricsDump, "metrics dump", hero.Metrics.WriteJSONL)
		dump(*promDump, "metrics snapshot", hero.Metrics.WriteProm)
	}

	seriesOrder := []string{
		eval.SeriesOpenFlow, eval.SeriesRealStatic, eval.SeriesRealDynamic,
		eval.SeriesExpandedStatic, eval.SeriesExpandedDynamic,
	}

	if fig789 != nil && (all || want["fig7"]) {
		fmt.Printf("\n=== Fig7: controller workload (Krps per 2h bucket) ===\n")
		fmt.Printf("%-28s", "series")
		for h := 0; h < 12; h++ {
			fmt.Printf(" %5d-%d", 2*h, 2*h+2)
		}
		fmt.Println()
		for _, name := range seriesOrder {
			r := fig789.Series[name]
			fmt.Printf("%-28s", name)
			for _, v := range r.WorkloadKrps {
				fmt.Printf(" %7.2f", v)
			}
			fmt.Println()
		}
		fmt.Printf("\nworkload reductions vs OpenFlow: real static %.0f%%, real dynamic %.0f%%, expanded static %.0f%%, expanded dynamic %.0f%%\n",
			100*fig789.ReductionRealStatic, 100*fig789.ReductionRealDynamic,
			100*fig789.ReductionExpandedStatic, 100*fig789.ReductionExpandedDynamic)
		fmt.Println("(paper: 61%–82% across cases)")
	}

	if fig789 != nil && (all || want["fig8"]) {
		fmt.Printf("\n=== Fig8: grouping updates per hour ===\n")
		for _, name := range []string{eval.SeriesRealDynamic, eval.SeriesExpandedDynamic} {
			r := fig789.Series[name]
			fmt.Printf("%-28s %v (total %d)\n", name, r.UpdatesPerHour, r.Recorder.TotalUpdates())
		}
		fmt.Println("(paper: ≈10/h on the real trace, ≤34/h on the expanded trace)")
	}

	if fig789 != nil && (all || want["fig9"]) {
		fmt.Printf("\n=== Fig9: steady-state latency (ms per 2h bucket) ===\n")
		for _, name := range []string{eval.SeriesOpenFlow, eval.SeriesRealStatic} {
			r := fig789.Series[name]
			fmt.Printf("%-28s", name)
			for _, v := range r.AvgLatencyMs {
				fmt.Printf(" %6.3f", v)
			}
			fmt.Println()
		}
		of := eval.Mean(fig789.Series[eval.SeriesOpenFlow].AvgLatencyMs)
		lz := eval.Mean(fig789.Series[eval.SeriesRealStatic].AvgLatencyMs)
		if of > 0 {
			fmt.Printf("average reduction: %.0f%% (paper: ≈10%%)\n", 100*(1-lz/of))
		}
	}

	runErr("ColdCache", func() error {
		res, err := eval.ColdCache(eval.ColdCacheConfig{Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Printf("LazyCtrl intra-group: %8v   (paper: 0.83 ms)\n", res.LazyIntra.Round(time.Microsecond))
		fmt.Printf("LazyCtrl inter-group: %8v   (paper: 5.38 ms)\n", res.LazyInter.Round(time.Microsecond))
		fmt.Printf("OpenFlow:             %8v   (paper: 15.06 ms)\n", res.OpenFlow.Round(time.Microsecond))
		return nil
	})

	runErr("Chaos", func() error {
		res, err := eval.ChaosCascade(*seed)
		if err != nil {
			return err
		}
		f := res.Faulted
		fmt.Printf("cascade: group loss storm + control partition + designated crash (docs/robustness.md)\n")
		fmt.Printf("drops by cause: loss=%d partition=%d down-at-send=%d down-at-delivery=%d no-route=%d\n",
			f.Drops.InjectedLoss, f.Drops.Partition, f.Drops.DownAtSend, f.Drops.DownAtDelivery, f.Drops.NoRoute)
		fmt.Printf("degraded mode:  floods=%d window=%v\n", f.DegradedFloods, f.DegradedWindow.Round(time.Millisecond))
		fmt.Printf("recovery:       %d rounds (bound %d), converged=%v, stale adoptions=%d\n",
			f.RecoveryRounds, chaos.DefaultRecoveryRoundBound, f.Converged, len(f.StaleAdoptions))
		fmt.Printf("fixpoint:       byte-identical to fault-free run: %v\n", res.FixpointMatch)
		if !f.Converged || !res.FixpointMatch {
			for _, d := range f.Divergences {
				fmt.Printf("  divergence: %s\n", d)
			}
			return fmt.Errorf("cascade did not return to the fault-free fixpoint")
		}
		return nil
	})

	runErr("Failover", func() error {
		const faultAt = 30 * time.Minute
		const round = 10 * time.Second
		rounds := func(d time.Duration) int {
			if d <= 0 {
				return 0
			}
			return int((d + round - 1) / round)
		}
		res, err := eval.ChaosFailover(*seed, eval.FailoverPlans(faultAt)[0])
		if err != nil {
			return err
		}
		f := res.Faulted
		fmt.Printf("scenario: master replica crash at %v, healed %v later, switch crash 1m earlier (docs/robustness.md#failover)\n",
			faultAt, 12*time.Minute)
		for i, tl := range f.TakeoverTimelines {
			fmt.Printf("takeover #%d -> generation %d\n", i+1, tl.Generation)
			fmt.Printf("  detection: %8v after the fault  (%d rounds; 3 missed 1m keep-alives)\n",
				(tl.DetectedAt - faultAt).Round(time.Second), rounds(tl.DetectedAt-faultAt))
			fmt.Printf("  announce:  %8v after detection  (%d rounds; RoleAnnounce broadcast)\n",
				(tl.AnnouncedAt - tl.DetectedAt).Round(time.Second), rounds(tl.AnnouncedAt-tl.DetectedAt))
			if tl.RebuiltAt > 0 {
				fmt.Printf("  rebuild:   %8v after announce   (%d rounds; fresh designated report per group)\n",
					(tl.RebuiltAt - tl.AnnouncedAt).Round(time.Second), rounds(tl.RebuiltAt-tl.AnnouncedAt))
			}
			if tl.RepushedAt > 0 {
				fmt.Printf("  re-push:   %8v after announce   (%d rounds; every group config re-acked)\n",
					(tl.RepushedAt - tl.AnnouncedAt).Round(time.Second), rounds(tl.RepushedAt-tl.AnnouncedAt))
			}
		}
		fmt.Printf("fence:          stale pushes rejected=%d, dup escalations suppressed=%d, reflushed=%d\n",
			f.StaleGenRejected, f.DupEscalationsSuppressed, f.EscalationsReflushed)
		fmt.Printf("role handoff:   takeovers=%d step-downs=%d (healed stale master demoted and re-synced)\n",
			f.Takeovers, f.StepDowns)
		fmt.Printf("degraded mode:  floods=%d window=%v\n", f.DegradedFloods, f.DegradedWindow.Round(time.Millisecond))
		fmt.Printf("recovery:       %d rounds (bound %d), converged=%v, stale adoptions=%d\n",
			f.RecoveryRounds, chaos.DefaultRecoveryRoundBound, f.Converged, len(f.StaleAdoptions))
		fmt.Printf("fixpoint:       byte-identical to fault-free replicated run: %v\n", res.FixpointMatch)
		if !f.Converged || !res.FixpointMatch {
			for _, d := range f.Divergences {
				fmt.Printf("  divergence: %s\n", d)
			}
			return fmt.Errorf("failover did not return to the fault-free fixpoint")
		}
		return nil
	})

	runErr("Storage", func() error {
		rows := eval.Storage([]int{10, 20, 46, 100, 200, 600}, 24)
		fmt.Printf("%10s %14s %12s\n", "group size", "G-FIB bytes", "FP rate")
		for _, r := range rows {
			fmt.Printf("%10d %14d %11.4f%%\n", r.GroupSize, r.GFIBBytes, 100*r.FPP)
		}
		fmt.Println("(paper: 46 switches → 92,160 bytes, FP < 0.1%)")
		return nil
	})
}
