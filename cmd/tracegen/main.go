// Command tracegen generates the Table II traffic traces and prints
// their measured characteristics.
//
// Usage:
//
//	tracegen -trace real -scale 5000
//	tracegen -trace syn-a -scale 50000 -expand
package main

import (
	"flag"
	"fmt"
	"os"

	"lazyctrl/internal/trace"
)

func main() {
	cli := trace.RegisterCLI(nil, "real", 5000)
	expand := flag.Bool("expand", false, "also derive the +30% expanded trace (§V-D)")
	flag.Parse()

	tr := cli.MustTrace()
	describe(tr, cli.Seed())
	if *expand {
		exp, err := trace.Expand(tr, 0.30, 8, 24, cli.Seed()^0xe)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
		describe(exp, cli.Seed())
	}
}

func describe(tr *trace.Trace, seed uint64) {
	st := trace.ComputeStats(tr)
	fmt.Printf("trace %s: %d flows over %v\n", tr.Name, st.Flows, tr.Duration)
	fmt.Printf("  topology: %d switches, %d hosts, %d tenants\n",
		len(tr.Directory.Switches()), tr.Directory.NumHosts(), tr.Directory.NumTenants())
	fmt.Printf("  distinct communicating pairs: %d of %d possible\n", st.DistinctPairs, st.PossiblePairs)
	fmt.Printf("  top-decile pair share: %.1f%%\n", 100*st.TopDecileShare)
	if c, err := trace.AverageCentrality(tr, 5, seed); err == nil {
		fmt.Printf("  average 5-way centrality: %.3f\n", c)
	}
	m := trace.SwitchIntensity(tr, 0, tr.Duration)
	fmt.Printf("  switch-pair intensity: %d active pairs, %.2f flows/s total\n",
		m.NumPairs(), m.Total())
}
