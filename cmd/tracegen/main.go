// Command tracegen generates the Table II traffic traces as streams
// and prints their measured characteristics. Flows are folded into the
// statistics one window at a time, so any scale — including the
// paper's full-size synthetic traces — fits in flat memory.
//
// Usage:
//
//	tracegen -trace real -scale 5000
//	tracegen -trace syn-a -scale 50000 -expand
package main

import (
	"flag"
	"fmt"
	"os"

	"lazyctrl/internal/trace"
)

func main() {
	cli := trace.RegisterCLI(nil, "real", 5000)
	expand := flag.Bool("expand", false, "also derive the +30% expanded trace (§V-D)")
	flag.Parse()

	s := cli.MustStream()
	describe(s, cli.Seed())
	if *expand {
		exp, err := trace.ExpandStream(s, 0.30, 8, 24, cli.Seed()^0xe)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
		describe(exp, cli.Seed())
	}
}

func describe(s trace.Stream, seed uint64) {
	info := s.Info()
	// One window sweep yields stats, centrality, and intensity — the
	// trace is generated once, which matters at full scale.
	prof, centErr := trace.StreamProfile(s, 5, seed)
	st := prof.Stats
	fmt.Printf("trace %s: %d flows over %v (%d windows, peak window %d flows ≈ %.1f MB)\n",
		info.Name, st.Flows, info.Duration, info.Windows, info.MaxWindowFlows,
		float64(info.MaxWindowFlows)*trace.FlowBytes/(1<<20))
	fmt.Printf("  topology: %d switches, %d hosts, %d tenants\n",
		len(info.Directory.Switches()), info.Directory.NumHosts(), info.Directory.NumTenants())
	fmt.Printf("  distinct communicating pairs: %d of %d possible\n", st.DistinctPairs, st.PossiblePairs)
	fmt.Printf("  top-decile pair share: %.1f%%\n", 100*st.TopDecileShare)
	if centErr == nil {
		fmt.Printf("  average 5-way centrality: %.3f\n", prof.Centrality)
	}
	fmt.Printf("  switch-pair intensity: %d active pairs, %.2f flows/s total\n",
		prof.Intensity.NumPairs(), prof.Intensity.Total())
}
