// Command lazyctrl-sim runs a full trace-driven emulation of the
// LazyCtrl prototype (or the OpenFlow baseline) and prints the
// controller workload, latency, and grouping-update summary.
//
// Usage:
//
//	lazyctrl-sim -mode lazy -dynamic -scale 5000
//	lazyctrl-sim -mode openflow -scale 5000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lazyctrl/internal/controller"
	"lazyctrl/internal/eval"
	"lazyctrl/internal/trace"
)

func main() {
	cli := trace.RegisterCLI(nil, "real", 5000)
	mode := flag.String("mode", "lazy", "control plane: lazy or openflow")
	dynamic := flag.Bool("dynamic", false, "incremental regrouping under drift")
	expanded := flag.Bool("expanded", false, "use the +30% expanded trace")
	limit := flag.Int("limit", 46, "group size limit")
	hours := flag.Int("hours", 24, "horizon in hours")
	flag.Parse()

	src := cli.MustStream()
	if *expanded {
		var err error
		src, err = trace.ExpandStream(src, 0.30, 8, 24, cli.Seed()^0xe)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	m := controller.ModeLazy
	if *mode == "openflow" {
		m = controller.ModeLearning
	}
	info := src.Info()
	fmt.Printf("emulating %s (%d flows streamed in %d windows of ≤%d, %d switches, %d hosts), mode=%s dynamic=%v limit=%d horizon=%dh\n",
		info.Name, info.TotalFlows, info.Windows, info.MaxWindowFlows,
		len(info.Directory.Switches()), info.Directory.NumHosts(),
		*mode, *dynamic, *limit, *hours)

	start := time.Now()
	res, err := eval.RunEmulation(eval.EmulationConfig{
		Source:         src,
		Mode:           m,
		Dynamic:        *dynamic,
		GroupSizeLimit: *limit,
		Horizon:        time.Duration(*hours) * time.Hour,
		Seed:           cli.Seed(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("emulation completed in %v\n\n", time.Since(start).Round(time.Millisecond))

	fmt.Printf("flows injected/delivered: %d/%d\n", res.FlowsInjected, res.FlowsDelivered)
	fmt.Printf("controller workload (Krps, unscaled estimate) per 2h bucket:\n  ")
	for _, v := range res.WorkloadKrps {
		fmt.Printf("%6.2f", v)
	}
	fmt.Printf("\naverage forwarding latency (ms) per 2h bucket:\n  ")
	for _, v := range res.AvgLatencyMs {
		fmt.Printf("%6.3f", v)
	}
	fmt.Printf("\ncold-cache first-packet latency: %v\n", res.ColdCacheLatency.Round(time.Microsecond))
	if m == controller.ModeLazy {
		fmt.Printf("groups: %d, grouping updates per hour: %v\n", res.FinalGroups, res.UpdatesPerHour)
	}
	st := res.ControllerStats
	fmt.Printf("controller: packetIns=%d arpRelays=%d stateReports=%d floods=%d flowMods=%d regroupings=%d unresolved=%d\n",
		st.PacketIns, st.ARPRelays, st.StateReports, st.Floods, st.FlowModsSent, st.Regroupings, st.Unresolved)
}
