// Command lazyctrl-sim runs a full trace-driven emulation of the
// LazyCtrl prototype (or the OpenFlow baseline) and prints the
// controller workload, latency, and grouping-update summary.
//
// Usage:
//
//	lazyctrl-sim -mode lazy -dynamic -scale 5000
//	lazyctrl-sim -mode openflow -scale 5000
//	lazyctrl-sim -engine fluid -scale 1        # paper scale (271M flows)
//	lazyctrl-sim -engine sampled -p 0.01 -scale 100
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"lazyctrl/internal/controller"
	"lazyctrl/internal/eval"
	"lazyctrl/internal/replay"
	"lazyctrl/internal/trace"
)

func main() {
	cli := trace.RegisterCLI(nil, "real", 5000)
	mode := flag.String("mode", "lazy", "control plane: lazy or openflow")
	dynamic := flag.Bool("dynamic", false, "incremental regrouping under drift")
	expanded := flag.Bool("expanded", false, "use the +30% expanded trace")
	limit := flag.Int("limit", 46, "group size limit")
	hours := flag.Int("hours", 24, "horizon in hours")
	engineName := flag.String("engine", "des", "replay engine: des, sampled, or fluid (see docs/emulation.md)")
	sampleP := flag.Float64("p", 0, "pair-sampling probability for the sampled engine / fluid probe (0 = engine default)")
	hostSampling := flag.Bool("host-sampling", false, "host-level sampling for the sampled engine (q=√p per host; pair kept iff both ends kept)")
	traceSample := flag.Float64("trace-sample", 0, "causal-span head-sampling rate in (0,1]; 0 disables tracing (docs/observability.md)")
	traceDump := flag.String("trace-dump", "", "write completed spans as JSONL to this file (requires -trace-sample)")
	metricsDump := flag.String("metrics-dump", "", "write the telemetry registry as JSONL to this file")
	promDump := flag.String("prom-dump", "", "write a Prometheus-style text snapshot of the registry to this file")
	flag.Parse()
	engine, err := replay.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	src := cli.MustStream()
	if *expanded {
		src, err = trace.ExpandStream(src, 0.30, 8, 24, cli.Seed()^0xe)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	m := controller.ModeLazy
	if *mode == "openflow" {
		m = controller.ModeLearning
	}
	info := src.Info()
	fmt.Printf("emulating %s (%d flows streamed in %d windows of ≤%d, %d switches, %d hosts), mode=%s dynamic=%v limit=%d horizon=%dh engine=%s\n",
		info.Name, info.TotalFlows, info.Windows, info.MaxWindowFlows,
		len(info.Directory.Switches()), info.Directory.NumHosts(),
		*mode, *dynamic, *limit, *hours, engine)

	start := time.Now()
	res, err := eval.RunEmulation(eval.EmulationConfig{
		Source:         src,
		Mode:           m,
		Dynamic:        *dynamic,
		GroupSizeLimit: *limit,
		Horizon:        time.Duration(*hours) * time.Hour,
		Seed:           cli.Seed(),
		Engine:         engine,
		SampleProb:     *sampleP,
		HostSampling:   *hostSampling,
		TraceSample:    *traceSample,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dump := func(path, what string, write func(io.Writer) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err == nil {
			err = write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", what, err)
			os.Exit(1)
		}
	}
	dump(*traceDump, "trace dump", res.Spans.WriteJSONL)
	dump(*metricsDump, "metrics dump", res.Metrics.WriteJSONL)
	dump(*promDump, "metrics snapshot", res.Metrics.WriteProm)
	fmt.Printf("emulation completed in %v (%d sim events)\n\n",
		time.Since(start).Round(time.Millisecond), res.SimEvents)

	fmt.Printf("flows injected/delivered: %d/%d", res.FlowsInjected, res.FlowsDelivered)
	if res.Engine != replay.EngineDES {
		fmt.Printf(" (p=%g of a %d-flow population)", res.SampleProb, res.PopulationFlows)
	}
	fmt.Println()
	fmt.Printf("controller workload (Krps, unscaled estimate) per 2h bucket:\n  ")
	for _, v := range res.WorkloadKrps {
		fmt.Printf("%6.2f", v)
	}
	if res.WorkloadStdErrKrps != nil {
		fmt.Printf("\n  ±1σ sampling error:\n  ")
		for _, v := range res.WorkloadStdErrKrps {
			fmt.Printf("%6.2f", v)
		}
	}
	fmt.Printf("\naverage forwarding latency (ms) per 2h bucket:\n  ")
	for _, v := range res.AvgLatencyMs {
		fmt.Printf("%6.3f", v)
	}
	fmt.Printf("\ncold-cache first-packet latency: %v (q50 %v, q90 %v)\n",
		res.ColdCacheLatency.Round(time.Microsecond),
		res.Recorder.ColdLatencyQuantile(0.5).Round(time.Microsecond),
		res.Recorder.ColdLatencyQuantile(0.9).Round(time.Microsecond))
	if res.BatchDelayObserved > 0 {
		fmt.Printf("micro-batching delay: observed %v, modeled %v\n",
			res.BatchDelayObserved.Round(time.Microsecond),
			res.BatchDelayModeled.Round(time.Microsecond))
	}
	if m == controller.ModeLazy {
		fmt.Printf("groups: %d, grouping updates per hour: %v\n", res.FinalGroups, res.UpdatesPerHour)
	}
	st := res.ControllerStats
	fmt.Printf("controller: packetIns=%d arpRelays=%d stateReports=%d floods=%d flowMods=%d regroupings=%d unresolved=%d\n",
		st.PacketIns, st.ARPRelays, st.StateReports, st.Floods, st.FlowModsSent, st.Regroupings, st.Unresolved)
}
