// Package lazyctrl is a faithful reimplementation of LazyCtrl, the
// hybrid SDN control plane for cloud data centers by Zheng, Wang, Yang,
// Sun, Zhang and Uhlig (ICDCS 2015). Edge switches are clustered into
// local control groups by communication affinity; frequent intra-group
// control runs near the datapath through Bloom-filter G-FIBs, while a
// lazy central controller handles only inter-group and fine-grained
// events, adapting the grouping with the SGI algorithm as traffic
// drifts.
//
// The package exposes a simulated data center: a deterministic
// discrete-event underlay carrying an extended OpenFlow control
// protocol between an in-process Floodlight-style controller and Open
// vSwitch-style edge switches. The same state machines also run in a
// live goroutine mode used by the integration tests.
//
// A minimal session:
//
//	dc, err := lazyctrl.New(lazyctrl.Config{Switches: 6, GroupSizeLimit: 3})
//	...
//	dc.AddTenant(1)
//	dc.AddHost(1, 1, 1)    // host 1, tenant 1, switch S1
//	dc.AddHost(2, 1, 2)
//	dc.SeedGroupingFromPlacement()
//	dc.Run(10 * time.Second)
//	dc.SendFlow(1, 2, 1400)
//	dc.Run(time.Second)
//	fmt.Println(dc.Report())
package lazyctrl

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"lazyctrl/internal/controller"
	"lazyctrl/internal/edge"
	"lazyctrl/internal/failover"
	"lazyctrl/internal/grouping"
	"lazyctrl/internal/metrics"
	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/sim"
)

// Identifier aliases, so applications can speak the paper's vocabulary
// without importing internal packages.
type (
	// SwitchID identifies an edge switch.
	SwitchID = model.SwitchID
	// HostID identifies a host (virtual machine).
	HostID = model.HostID
	// TenantID identifies a tenant.
	TenantID = model.TenantID
	// GroupID identifies a local control group.
	GroupID = model.GroupID
	// VLAN is a tenant's VLAN tag.
	VLAN = model.VLAN
	// Diagnosis is a failover diagnosis (Table I).
	Diagnosis = failover.Diagnosis
)

// Mode selects the control plane.
type Mode uint8

// Control-plane modes.
const (
	// LazyCtrl is the paper's hybrid control plane.
	LazyCtrl Mode = iota + 1
	// OpenFlow is the standard centralized baseline (learning switch).
	OpenFlow
)

// Config describes a simulated data center.
type Config struct {
	// Switches is the number of edge switches (S1..Sn).
	Switches int
	// Mode selects LazyCtrl (default) or the OpenFlow baseline.
	Mode Mode
	// GroupSizeLimit caps local control group sizes. Zero selects 46.
	GroupSizeLimit int
	// Dynamic enables incremental regrouping under traffic drift.
	Dynamic bool
	// Standby runs a hot-standby controller replica: the primary
	// mirrors its C-LIB, grouping, and failure state to the standby
	// over a journal, and the standby takes the master role — under a
	// bumped cluster generation that fences the old master's pushes —
	// when the primary's heartbeats stop (docs/robustness.md).
	Standby bool
	// Seed makes the run reproducible.
	Seed uint64
	// OnDeliver observes every packet delivered to a host, with its
	// one-way forwarding latency.
	OnDeliver func(src, dst HostID, latency time.Duration)
	// OnDiagnosis observes failover diagnoses.
	OnDiagnosis func(suspect SwitchID, diag Diagnosis)
}

// DataCenter is a simulated LazyCtrl deployment: controller, edge
// switches, tenants, and hosts over a virtual-time underlay.
type DataCenter struct {
	cfg      Config
	sim      *sim.Simulator
	net      *netsim.Network
	ctrl     *controller.Controller
	standby  *controller.Controller // nil without Config.Standby
	switches map[SwitchID]*edge.Switch
	hosts    map[HostID]hostRecord
	tenants  map[TenantID]VLAN
	rec      *metrics.Recorder
	flowSeq  map[flowKey]int
}

type hostRecord struct {
	tenant TenantID
	vlan   VLAN
	sw     SwitchID
}

type flowKey struct {
	src, dst HostID
}

// New builds a data center.
func New(cfg Config) (*DataCenter, error) {
	if cfg.Switches < 1 {
		return nil, errors.New("lazyctrl: need at least one switch")
	}
	if cfg.Mode == 0 {
		cfg.Mode = LazyCtrl
	}
	mode := controller.ModeLazy
	if cfg.Mode == OpenFlow {
		mode = controller.ModeLearning
	}
	s := sim.New(cfg.Seed)
	net := netsim.New(s, netsim.DefaultLatencies())
	rec := metrics.NewRecorder(24*time.Hour, time.Hour)

	ids := make([]SwitchID, cfg.Switches)
	for i := range ids {
		ids[i] = SwitchID(i + 1)
	}
	dc := &DataCenter{
		cfg:      cfg,
		sim:      s,
		net:      net,
		switches: make(map[SwitchID]*edge.Switch, cfg.Switches),
		hosts:    make(map[HostID]hostRecord),
		tenants:  make(map[TenantID]VLAN),
		rec:      rec,
		flowSeq:  make(map[flowKey]int),
	}
	ctrlCfg := controller.Config{
		Mode:           mode,
		Switches:       ids,
		GroupSizeLimit: cfg.GroupSizeLimit,
		Seed:           cfg.Seed,
		Dynamic:        cfg.Dynamic,
		Recorder:       rec,
		OnDiagnosis: func(s model.SwitchID, d failover.Diagnosis) {
			if cfg.OnDiagnosis != nil {
				cfg.OnDiagnosis(s, d)
			}
		},
	}
	if cfg.Standby {
		ctrlCfg.Peer = model.StandbyNode
	}
	ctrl, err := controller.New(ctrlCfg, net.Env(model.ControllerNode))
	if err != nil {
		return nil, fmt.Errorf("lazyctrl: %w", err)
	}
	dc.ctrl = ctrl
	net.Attach(ctrl)
	net.SetSameGroup(ctrl.SameGroup)
	ctrl.Start()
	if cfg.Standby {
		sb, err := controller.New(controller.Config{
			Mode:           mode,
			Switches:       ids,
			GroupSizeLimit: cfg.GroupSizeLimit,
			Seed:           cfg.Seed,
			Dynamic:        cfg.Dynamic,
			Peer:           model.ControllerNode,
			Standby:        true,
		}, net.Env(model.StandbyNode))
		if err != nil {
			return nil, fmt.Errorf("lazyctrl: standby: %w", err)
		}
		dc.standby = sb
		net.Attach(sb)
		sb.Start()
	}

	for _, id := range ids {
		id := id
		sw := edge.New(edge.Config{
			ID:                id,
			AdvertiseInterval: time.Second,
			ReportInterval:    2 * time.Second,
			TrackEscalations:  cfg.Standby,
			OnDeliver: func(p *model.Packet, at time.Duration) {
				if cfg.OnDeliver == nil {
					return
				}
				src, dst := dc.hostsByMAC(p.SrcMAC, p.DstMAC)
				cfg.OnDeliver(src, dst, at-p.Injected)
			},
		}, net.Env(id))
		net.Attach(sw)
		sw.Start()
		dc.switches[id] = sw
	}
	return dc, nil
}

func (dc *DataCenter) hostsByMAC(src, dst model.MAC) (HostID, HostID) {
	var s, d HostID
	for id := range dc.hosts {
		mac := model.HostMAC(id)
		if mac == src {
			s = id
		}
		if mac == dst {
			d = id
		}
	}
	return s, d
}

// AddTenant registers a tenant; its VLAN is derived from the ID.
func (dc *DataCenter) AddTenant(id TenantID) VLAN {
	vlan := VLAN(id % 4094)
	if vlan == 0 {
		vlan = 4094
	}
	dc.tenants[id] = vlan
	dc.ctrl.RegisterTenant(vlan, id)
	return vlan
}

// AddHost deploys a VM for a tenant on a switch.
func (dc *DataCenter) AddHost(h HostID, tenant TenantID, sw SwitchID) error {
	vlan, ok := dc.tenants[tenant]
	if !ok {
		return fmt.Errorf("lazyctrl: unknown tenant %v", tenant)
	}
	esw, ok := dc.switches[sw]
	if !ok {
		return fmt.Errorf("lazyctrl: unknown switch %v", sw)
	}
	if _, dup := dc.hosts[h]; dup {
		return fmt.Errorf("lazyctrl: duplicate host %v", h)
	}
	esw.AttachHost(model.HostMAC(h), model.HostIP(h), vlan)
	dc.hosts[h] = hostRecord{tenant: tenant, vlan: vlan, sw: sw}
	return nil
}

// MigrateHost live-migrates a VM to another switch (§III-D3 live state
// dissemination is triggered by the attach/detach).
func (dc *DataCenter) MigrateHost(h HostID, to SwitchID) error {
	rec, ok := dc.hosts[h]
	if !ok {
		return fmt.Errorf("lazyctrl: unknown host %v", h)
	}
	dst, ok := dc.switches[to]
	if !ok {
		return fmt.Errorf("lazyctrl: unknown switch %v", to)
	}
	dc.switches[rec.sw].DetachHost(model.HostMAC(h))
	dst.AttachHost(model.HostMAC(h), model.HostIP(h), rec.vlan)
	rec.sw = to
	dc.hosts[h] = rec
	return nil
}

// SwitchOf returns the switch currently hosting a VM.
func (dc *DataCenter) SwitchOf(h HostID) (SwitchID, bool) {
	rec, ok := dc.hosts[h]
	return rec.sw, ok
}

// SeedGroupingFromPlacement computes the initial grouping assuming
// tenant-local traffic: switches sharing tenants have high affinity.
// Applications with real traffic histories should use SeedGrouping.
func (dc *DataCenter) SeedGroupingFromPlacement() error {
	m := grouping.NewIntensity()
	for id := range dc.switches {
		m.AddSwitch(id)
	}
	perTenant := make(map[TenantID][]SwitchID)
	for _, rec := range dc.hosts {
		perTenant[rec.tenant] = append(perTenant[rec.tenant], rec.sw)
	}
	for _, sws := range perTenant {
		for i := 0; i < len(sws); i++ {
			for j := i + 1; j < len(sws); j++ {
				m.Add(sws[i], sws[j], 10)
			}
		}
	}
	return dc.ctrl.InitialGrouping(m)
}

// PairRate is a switch-pair traffic intensity observation used to seed
// the initial grouping.
type PairRate struct {
	A, B SwitchID
	// FlowsPerSecond is the normalized traffic intensity between A and B.
	FlowsPerSecond float64
}

// SeedGrouping computes the initial grouping from measured switch-pair
// intensities (the paper seeds from the first hour of traffic).
func (dc *DataCenter) SeedGrouping(rates []PairRate) error {
	m := grouping.NewIntensity()
	for id := range dc.switches {
		m.AddSwitch(id)
	}
	for _, r := range rates {
		m.Add(r.A, r.B, r.FlowsPerSecond)
	}
	return dc.ctrl.InitialGrouping(m)
}

// SendFlow injects the first packet of a flow from src to dst with the
// given payload size. Subsequent packets of the same pair reuse
// installed state automatically.
func (dc *DataCenter) SendFlow(src, dst HostID, bytes int) error {
	s, ok := dc.hosts[src]
	if !ok {
		return fmt.Errorf("lazyctrl: unknown src host %v", src)
	}
	d, ok := dc.hosts[dst]
	if !ok {
		return fmt.Errorf("lazyctrl: unknown dst host %v", dst)
	}
	key := flowKey{src: src, dst: dst}
	seq := dc.flowSeq[key]
	dc.flowSeq[key] = seq + 1
	if bytes <= 0 {
		bytes = 1400
	}
	p := &model.Packet{
		SrcMAC:   model.HostMAC(src),
		DstMAC:   model.HostMAC(dst),
		SrcIP:    model.HostIP(src),
		DstIP:    model.HostIP(dst),
		VLAN:     s.vlan,
		Ether:    model.EtherTypeIPv4,
		Bytes:    bytes,
		FlowSeq:  0,
		Injected: time.Duration(dc.sim.Now()),
	}
	_ = d
	dc.switches[s.sw].InjectLocal(p)
	return nil
}

// Run advances virtual time by d, processing all scheduled work.
func (dc *DataCenter) Run(d time.Duration) { dc.sim.RunFor(d) }

// Now returns the current virtual time.
func (dc *DataCenter) Now() time.Duration { return dc.sim.Now().Duration() }

// FailSwitch injects a switch (node) failure into the underlay.
func (dc *DataCenter) FailSwitch(id SwitchID) { dc.net.FailNode(id) }

// RecoverSwitch reboots a failed switch and informs the controller
// (§III-E3 reboot-and-resync): the switch comes back cold — volatile
// tables wiped, L-FIB incarnation epoch advanced so its post-reboot
// advertisements dominate the pre-failure versions receivers still
// hold — its hosts re-attach from the hypervisor's view, and the
// controller re-pushes its group view.
func (dc *DataCenter) RecoverSwitch(id SwitchID) {
	dc.net.HealNode(id)
	if sw, ok := dc.switches[id]; ok {
		sw.Reboot()
		// Re-attach the switch's hosts in deterministic order (the
		// directory map iterates randomly; the DES must not).
		var hosts []HostID
		for h, rec := range dc.hosts {
			if rec.sw == id {
				hosts = append(hosts, h)
			}
		}
		sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
		for _, h := range hosts {
			rec := dc.hosts[h]
			sw.AttachHost(model.HostMAC(h), model.HostIP(h), rec.vlan)
		}
	}
	// The hypervisor's recovery signal goes to whoever holds the master
	// role right now — after a takeover that is the promoted standby,
	// and during a dispute both masters hear it (the stale one's
	// re-pushes are fenced by the fabric anyway).
	if reps := dc.replicaControllers(); reps != nil {
		for _, r := range reps {
			if r.IsMaster() {
				r.MarkRecovered(id)
			}
		}
		return
	}
	dc.ctrl.MarkRecovered(id)
}

// Master returns the address of the controller replica currently
// holding the master role: ControllerNode in a single-controller
// deployment, and model.NoSwitch while the role is disputed (mid
// split-brain, before the fence demotes the stale master).
func (dc *DataCenter) Master() SwitchID {
	if dc.standby == nil {
		return ControllerNode
	}
	switch {
	case dc.ctrl.IsMaster() && !dc.standby.IsMaster():
		return dc.ctrl.NodeID()
	case dc.standby.IsMaster() && !dc.ctrl.IsMaster():
		return dc.standby.NodeID()
	}
	return model.NoSwitch
}

// FailoverStats aggregates the replicated-controller counters: role
// transitions and journal state on the replicas, fencing and
// escalation counters summed over the edge switches.
type FailoverStats struct {
	// Master is the current role holder (see DataCenter.Master).
	Master SwitchID
	// Generation is the master's cluster generation.
	Generation uint64
	// Takeovers and StepDowns count role transitions across both
	// replicas.
	Takeovers uint64
	StepDowns uint64
	// StaleGenRejected counts controller pushes the edges fenced;
	// DupEscalationsSuppressed and EscalationsReflushed count the
	// escalation-dedup work across the failover window.
	StaleGenRejected         uint64
	DupEscalationsSuppressed uint64
	EscalationsReflushed     uint64
}

// replicaControllers returns the controller replicas (nil without a
// standby, so World falls back to the single-controller checks).
func (dc *DataCenter) replicaControllers() []*controller.Controller {
	if dc.standby == nil {
		return nil
	}
	return []*controller.Controller{dc.ctrl, dc.standby}
}

// FailoverStats returns the replicated-controller summary (zero-valued
// counters without Config.Standby).
func (dc *DataCenter) FailoverStats() FailoverStats {
	out := FailoverStats{Master: dc.Master()}
	reps := []*controller.Controller{dc.ctrl}
	if dc.standby != nil {
		reps = append(reps, dc.standby)
	}
	for _, r := range reps {
		st := r.Stats()
		out.Takeovers += st.Takeovers
		out.StepDowns += st.StepDowns
		if r.IsMaster() {
			out.Generation = r.Generation()
		}
	}
	for _, sw := range dc.switches {
		st := sw.Stats()
		out.StaleGenRejected += st.StaleGenRejected
		out.DupEscalationsSuppressed += st.DupEscalationsSuppressed
		out.EscalationsReflushed += st.EscalationsReflushed
	}
	return out
}

// FailLink injects a link failure between two nodes (use
// ControllerNode for the control link).
func (dc *DataCenter) FailLink(a, b SwitchID) { dc.net.FailLink(a, b) }

// HealLink restores a failed link.
func (dc *DataCenter) HealLink(a, b SwitchID) { dc.net.HealLink(a, b) }

// ControllerNode is the controller's address for FailLink/HealLink.
const ControllerNode = model.ControllerNode

// StandbyNode is the standby replica's address (Config.Standby).
const StandbyNode = model.StandbyNode

// NoSwitch is the invalid switch address (Master returns it while the
// master role is disputed).
const NoSwitch = model.NoSwitch

// GroupOf returns the local control group of a switch.
func (dc *DataCenter) GroupOf(sw SwitchID) GroupID { return dc.ctrl.Grouping().GroupOf(sw) }

// Groups returns the current group membership map.
func (dc *DataCenter) Groups() map[GroupID][]SwitchID {
	grp := dc.ctrl.Grouping()
	out := make(map[GroupID][]SwitchID, grp.NumGroups())
	for _, gid := range grp.GroupIDs() {
		out[gid] = append([]SwitchID(nil), grp.Members(gid)...)
	}
	return out
}

// IsDesignated reports whether a switch currently holds its group's
// designated role.
func (dc *DataCenter) IsDesignated(sw SwitchID) bool {
	s, ok := dc.switches[sw]
	return ok && s.IsDesignated()
}

// Report summarizes the run.
type Report struct {
	Mode               Mode
	Groups             int
	GroupingVersion    uint64
	ControllerRequests uint64
	PacketIns          uint64
	ARPRelays          uint64
	StateReports       uint64
	Floods             uint64
	FlowMods           uint64
	Regroupings        uint64
}

// Report returns the control-plane summary.
func (dc *DataCenter) Report() Report {
	st := dc.ctrl.Stats()
	return Report{
		Mode:               dc.cfg.Mode,
		Groups:             dc.ctrl.Grouping().NumGroups(),
		GroupingVersion:    dc.ctrl.GroupingVersion(),
		ControllerRequests: dc.rec.TotalWorkload(),
		PacketIns:          st.PacketIns,
		ARPRelays:          st.ARPRelays,
		StateReports:       st.StateReports,
		Floods:             st.Floods,
		FlowMods:           st.FlowModsSent,
		Regroupings:        st.Regroupings,
	}
}

// String renders the report.
func (r Report) String() string {
	mode := "lazyctrl"
	if r.Mode == OpenFlow {
		mode = "openflow"
	}
	return fmt.Sprintf("mode=%s groups=%d v%d requests=%d packetIns=%d relays=%d reports=%d floods=%d flowMods=%d regroupings=%d",
		mode, r.Groups, r.GroupingVersion, r.ControllerRequests, r.PacketIns,
		r.ARPRelays, r.StateReports, r.Floods, r.FlowMods, r.Regroupings)
}

// NegotiateGroupSize runs the Appendix-C Rubinstein bargaining between
// the controller's preferred group size and per-switch offers.
func NegotiateGroupSize(controllerLimit int, offers []grouping.SwitchOffer) (int, error) {
	return grouping.Negotiate(grouping.AggregateOffers(offers), grouping.BargainConfig{
		ControllerLimit: controllerLimit,
	})
}

// SwitchOffer re-exports the bargaining offer type.
type SwitchOffer = grouping.SwitchOffer
