package metrics

import (
	"testing"
	"time"
)

func TestBucketLayout(t *testing.T) {
	r := NewRecorder(24*time.Hour, 2*time.Hour)
	if r.Buckets() != 12 {
		t.Errorf("Buckets() = %d, want 12", r.Buckets())
	}
	if r.BucketWidth() != 2*time.Hour {
		t.Errorf("BucketWidth() = %v", r.BucketWidth())
	}
	// Degenerate inputs survive.
	d := NewRecorder(0, 0)
	if d.Buckets() < 1 {
		t.Error("degenerate recorder has no buckets")
	}
}

func TestCountRequest(t *testing.T) {
	r := NewRecorder(24*time.Hour, 2*time.Hour)
	r.CountRequest(ReqPacketIn, 1*time.Hour, 5)
	r.CountRequest(ReqFloodOut, 1*time.Hour, 2)
	r.CountRequest(ReqPacketIn, 3*time.Hour, 1)
	r.CountRequest(ReqPacketIn, 1000*time.Hour, 1) // clamps to last bucket

	per := r.WorkloadPerBucket()
	if per[0] != 7 {
		t.Errorf("bucket 0 = %d, want 7", per[0])
	}
	if per[1] != 1 {
		t.Errorf("bucket 1 = %d, want 1", per[1])
	}
	if per[11] != 1 {
		t.Errorf("bucket 11 = %d, want 1 (clamped)", per[11])
	}
	if r.TotalWorkload() != 9 {
		t.Errorf("TotalWorkload = %d, want 9", r.TotalWorkload())
	}
	byClass := r.WorkloadByClass()
	if byClass[ReqPacketIn] != 7 || byClass[ReqFloodOut] != 2 {
		t.Errorf("WorkloadByClass = %v", byClass)
	}
}

func TestWorkloadRPS(t *testing.T) {
	r := NewRecorder(24*time.Hour, 2*time.Hour)
	r.CountRequest(ReqPacketIn, time.Hour, 7200) // 1/s over a 2h bucket
	rps := r.WorkloadRPS(1)
	if rps[0] != 1 {
		t.Errorf("rps[0] = %v, want 1", rps[0])
	}
	scaled := r.WorkloadRPS(1000)
	if scaled[0] != 1000 {
		t.Errorf("scaled rps[0] = %v, want 1000", scaled[0])
	}
}

func TestLatencyAveraging(t *testing.T) {
	r := NewRecorder(4*time.Hour, 2*time.Hour)
	r.RecordLatency(time.Hour, 400*time.Microsecond, 9)
	r.RecordColdLatency(time.Hour, 4*time.Millisecond)
	avg := r.AvgLatencyPerBucket()
	// (9×0.4ms + 1×4ms)/10 = 0.76ms
	want := 760 * time.Microsecond
	if diff := avg[0] - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("bucket avg = %v, want %v", avg[0], want)
	}
	if avg[1] != 0 {
		t.Errorf("empty bucket avg = %v, want 0", avg[1])
	}
	if got := r.AvgColdLatency(); got != 4*time.Millisecond {
		t.Errorf("AvgColdLatency = %v, want 4ms", got)
	}
	if got := r.AvgLatency(); got-want < -time.Microsecond || got-want > time.Microsecond {
		t.Errorf("AvgLatency = %v, want %v", got, want)
	}
	// Zero/negative weights ignored.
	r.RecordLatency(time.Hour, time.Second, 0)
	r.RecordLatency(time.Hour, time.Second, -5)
	if got := r.AvgLatency(); got-want < -time.Microsecond || got-want > time.Microsecond {
		t.Errorf("AvgLatency after no-op records = %v, want %v", got, want)
	}
}

func TestUpdates(t *testing.T) {
	r := NewRecorder(24*time.Hour, 2*time.Hour)
	r.RecordUpdate(30 * time.Minute)
	r.RecordUpdate(90 * time.Minute)
	r.RecordUpdate(5 * time.Hour)
	per := r.UpdatesPerHour()
	if len(per) != 24 {
		t.Fatalf("UpdatesPerHour length = %d, want 24", len(per))
	}
	if per[0] != 1 || per[1] != 1 || per[5] != 1 {
		t.Errorf("updates = %v", per[:6])
	}
	if r.TotalUpdates() != 3 {
		t.Errorf("TotalUpdates = %d, want 3", r.TotalUpdates())
	}
}

func TestEmptyRecorder(t *testing.T) {
	r := NewRecorder(24*time.Hour, 2*time.Hour)
	if r.AvgLatency() != 0 || r.AvgColdLatency() != 0 {
		t.Error("empty recorder reports nonzero latency")
	}
	if r.TotalWorkload() != 0 || r.TotalUpdates() != 0 {
		t.Error("empty recorder reports nonzero counts")
	}
}

func TestRequestClassString(t *testing.T) {
	for _, c := range RequestClasses {
		if c.String() == "unknown" {
			t.Errorf("class %d has no name", c)
		}
	}
	if RequestClass(99).String() != "unknown" {
		t.Error("unknown class misnamed")
	}
}
