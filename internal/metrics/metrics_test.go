package metrics

import (
	"testing"
	"time"
)

func TestBucketLayout(t *testing.T) {
	r := NewRecorder(24*time.Hour, 2*time.Hour)
	if r.Buckets() != 12 {
		t.Errorf("Buckets() = %d, want 12", r.Buckets())
	}
	if r.BucketWidth() != 2*time.Hour {
		t.Errorf("BucketWidth() = %v", r.BucketWidth())
	}
	// Degenerate inputs survive.
	d := NewRecorder(0, 0)
	if d.Buckets() < 1 {
		t.Error("degenerate recorder has no buckets")
	}
}

func TestCountRequest(t *testing.T) {
	r := NewRecorder(24*time.Hour, 2*time.Hour)
	r.CountRequest(ReqPacketIn, 1*time.Hour, 5)
	r.CountRequest(ReqFloodOut, 1*time.Hour, 2)
	r.CountRequest(ReqPacketIn, 3*time.Hour, 1)
	r.CountRequest(ReqPacketIn, 1000*time.Hour, 1) // clamps to last bucket

	per := r.WorkloadPerBucket()
	if per[0] != 7 {
		t.Errorf("bucket 0 = %d, want 7", per[0])
	}
	if per[1] != 1 {
		t.Errorf("bucket 1 = %d, want 1", per[1])
	}
	if per[11] != 1 {
		t.Errorf("bucket 11 = %d, want 1 (clamped)", per[11])
	}
	if r.TotalWorkload() != 9 {
		t.Errorf("TotalWorkload = %d, want 9", r.TotalWorkload())
	}
	byClass := r.WorkloadByClass()
	if byClass[ReqPacketIn] != 7 || byClass[ReqFloodOut] != 2 {
		t.Errorf("WorkloadByClass = %v", byClass)
	}
}

func TestWorkloadRPS(t *testing.T) {
	r := NewRecorder(24*time.Hour, 2*time.Hour)
	r.CountRequest(ReqPacketIn, time.Hour, 7200) // 1/s over a 2h bucket
	rps := r.WorkloadRPS(1)
	if rps[0] != 1 {
		t.Errorf("rps[0] = %v, want 1", rps[0])
	}
	scaled := r.WorkloadRPS(1000)
	if scaled[0] != 1000 {
		t.Errorf("scaled rps[0] = %v, want 1000", scaled[0])
	}
}

func TestLatencyAveraging(t *testing.T) {
	r := NewRecorder(4*time.Hour, 2*time.Hour)
	r.RecordLatency(time.Hour, 400*time.Microsecond, 9)
	r.RecordColdLatency(time.Hour, 4*time.Millisecond)
	avg := r.AvgLatencyPerBucket()
	// (9×0.4ms + 1×4ms)/10 = 0.76ms
	want := 760 * time.Microsecond
	if diff := avg[0] - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("bucket avg = %v, want %v", avg[0], want)
	}
	if avg[1] != 0 {
		t.Errorf("empty bucket avg = %v, want 0", avg[1])
	}
	if got := r.AvgColdLatency(); got != 4*time.Millisecond {
		t.Errorf("AvgColdLatency = %v, want 4ms", got)
	}
	if got := r.AvgLatency(); got-want < -time.Microsecond || got-want > time.Microsecond {
		t.Errorf("AvgLatency = %v, want %v", got, want)
	}
	// Zero/negative weights ignored.
	r.RecordLatency(time.Hour, time.Second, 0)
	r.RecordLatency(time.Hour, time.Second, -5)
	if got := r.AvgLatency(); got-want < -time.Microsecond || got-want > time.Microsecond {
		t.Errorf("AvgLatency after no-op records = %v, want %v", got, want)
	}
}

func TestUpdates(t *testing.T) {
	r := NewRecorder(24*time.Hour, 2*time.Hour)
	r.RecordUpdate(30 * time.Minute)
	r.RecordUpdate(90 * time.Minute)
	r.RecordUpdate(5 * time.Hour)
	per := r.UpdatesPerHour()
	if len(per) != 24 {
		t.Fatalf("UpdatesPerHour length = %d, want 24", len(per))
	}
	if per[0] != 1 || per[1] != 1 || per[5] != 1 {
		t.Errorf("updates = %v", per[:6])
	}
	if r.TotalUpdates() != 3 {
		t.Errorf("TotalUpdates = %d, want 3", r.TotalUpdates())
	}
}

func TestEmptyRecorder(t *testing.T) {
	r := NewRecorder(24*time.Hour, 2*time.Hour)
	if r.AvgLatency() != 0 || r.AvgColdLatency() != 0 {
		t.Error("empty recorder reports nonzero latency")
	}
	if r.TotalWorkload() != 0 || r.TotalUpdates() != 0 {
		t.Error("empty recorder reports nonzero counts")
	}
}

func TestRequestClassString(t *testing.T) {
	for _, c := range RequestClasses {
		if c.String() == "unknown" {
			t.Errorf("class %d has no name", c)
		}
	}
	if RequestClass(99).String() != "unknown" {
		t.Error("unknown class misnamed")
	}
}

func TestColdLatencyQuantiles(t *testing.T) {
	r := NewRecorder(time.Hour, time.Hour)
	if r.ColdLatencyQuantile(0.5) != 0 {
		t.Error("empty histogram reports a quantile")
	}
	// 90 samples at ~400µs, 10 at ~5ms: q50 must sit in the 400µs bin,
	// q95 in the 5ms bin, within the histogram's one-bin (≈19%)
	// resolution.
	for i := 0; i < 90; i++ {
		r.RecordColdLatency(0, 400*time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		r.RecordColdLatency(0, 5*time.Millisecond)
	}
	if q := r.ColdLatencyQuantile(0.5); q < 330*time.Microsecond || q > 480*time.Microsecond {
		t.Errorf("q50 = %v, want ≈400µs", q)
	}
	if q := r.ColdLatencyQuantile(0.95); q < 4100*time.Microsecond || q > 6100*time.Microsecond {
		t.Errorf("q95 = %v, want ≈5ms", q)
	}
	if lo, hi := r.ColdLatencyQuantile(0), r.ColdLatencyQuantile(1); lo > hi {
		t.Errorf("quantiles not monotone: q0=%v q1=%v", lo, hi)
	}
	// Out-of-range latencies clamp into the edge bins.
	r.RecordColdLatency(0, time.Nanosecond)
	r.RecordColdLatency(0, time.Hour)
	if q := r.ColdLatencyQuantile(1); q <= 0 {
		t.Errorf("clamped sample broke the top quantile: %v", q)
	}
}

func TestWorkloadRPSForScaled(t *testing.T) {
	r := NewRecorder(2*time.Hour, time.Hour)
	r.CountRequest(ReqPacketIn, 0, 360)              // bucket 0
	r.CountRequest(ReqPacketIn, 90*time.Minute, 720) // bucket 1
	r.CountRequest(ReqARPRelay, 0, 360)
	// Fractional scale undoes a sampling probability: 360+360 requests
	// in a 3600 s bucket at scale 2.5 → 0.5 rps.
	got := r.WorkloadRPSForScaled(2.5, ReqPacketIn, ReqARPRelay)
	if len(got) != 2 || got[0] != 0.5 || got[1] != 0.5 {
		t.Errorf("scaled rps = %v, want [0.5 0.5]", got)
	}
	// The integer path must agree with the float path.
	a, b := r.WorkloadRPSFor(3, ReqPacketIn), r.WorkloadRPSForScaled(3, ReqPacketIn)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("int/float scale disagree at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestEmptyHistogramZeroValues pins the empty-value contract of the
// quantile/average helpers: a fresh recorder returns 0 (never NaN or a
// panic) from every one of them, for any quantile — the telemetry
// registry snapshots these verbatim into dumps that must stay clean.
func TestEmptyHistogramZeroValues(t *testing.T) {
	r := NewRecorder(4*time.Hour, time.Hour)
	cases := []struct {
		name string
		got  time.Duration
	}{
		{"AvgColdLatency", r.AvgColdLatency()},
		{"AvgLatency", r.AvgLatency()},
		{"ColdLatencyQuantile(0)", r.ColdLatencyQuantile(0)},
		{"ColdLatencyQuantile(0.5)", r.ColdLatencyQuantile(0.5)},
		{"ColdLatencyQuantile(1)", r.ColdLatencyQuantile(1)},
		{"ColdLatencyQuantile(-1)", r.ColdLatencyQuantile(-1)},
		{"ColdLatencyQuantile(2)", r.ColdLatencyQuantile(2)},
	}
	for _, c := range cases {
		if c.got != 0 {
			t.Errorf("%s = %v on empty recorder, want 0", c.name, c.got)
		}
	}
	for i, v := range r.AvgLatencyPerBucket() {
		if v != 0 {
			t.Errorf("AvgLatencyPerBucket()[%d] = %v on empty recorder, want 0", i, v)
		}
	}

	// One sample makes every helper non-zero and q-clamping total.
	r.RecordColdLatency(time.Minute, 3*time.Millisecond)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if r.ColdLatencyQuantile(q) == 0 {
			t.Errorf("ColdLatencyQuantile(%v) = 0 with one sample", q)
		}
	}
	if r.AvgColdLatency() == 0 || r.AvgLatency() == 0 {
		t.Error("averages still 0 after one cold sample")
	}
}
