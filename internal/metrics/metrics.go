// Package metrics collects the quantities the LazyCtrl evaluation
// reports: controller workload in requests per second bucketed by wall
// period (Fig. 7), forwarding latency averages (Fig. 9, §V-E), and
// grouping-update frequency (Fig. 8).
package metrics

import (
	"math"
	"time"
)

// Recorder accumulates time-bucketed counters and latency samples over a
// fixed horizon. It is single-threaded, like everything driven by the
// discrete-event simulator.
type Recorder struct {
	horizon time.Duration
	bucket  time.Duration

	// Controller request counts per bucket, by class.
	workload map[RequestClass][]uint64

	// Latency aggregation per bucket.
	latSum   []float64
	latCount []uint64

	// Cold-cache (first-packet) latency aggregation per bucket.
	coldSum   []float64
	coldCount []uint64

	// coldHist is a log-bucketed histogram of cold-cache latencies
	// (coldBinsPerOctave bins per factor of two from 1 µs), kept so the
	// scaled replay engines can pin latency CDF quantiles against the
	// full DES, not just means.
	coldHist [coldBins]uint64

	// Grouping updates per hour.
	updates []uint64
}

// RequestClass labels controller work for workload accounting.
type RequestClass uint8

// Request classes. All count toward the controller workload of Fig. 7.
const (
	ReqPacketIn RequestClass = iota + 1
	ReqARPRelay
	ReqStateReport
	ReqFloodOut
	ReqFlowMod
	ReqKeepAlive
	ReqRegroup
)

// RequestClasses enumerates all classes (for reports).
var RequestClasses = []RequestClass{
	ReqPacketIn, ReqARPRelay, ReqStateReport, ReqFloodOut, ReqFlowMod, ReqKeepAlive, ReqRegroup,
}

// String names the class.
func (c RequestClass) String() string {
	switch c {
	case ReqPacketIn:
		return "packet-in"
	case ReqARPRelay:
		return "arp-relay"
	case ReqStateReport:
		return "state-report"
	case ReqFloodOut:
		return "flood-out"
	case ReqFlowMod:
		return "flow-mod"
	case ReqKeepAlive:
		return "keep-alive"
	case ReqRegroup:
		return "regroup"
	default:
		return "unknown"
	}
}

// NewRecorder covers [0, horizon) with the given bucket width.
func NewRecorder(horizon, bucket time.Duration) *Recorder {
	if bucket <= 0 {
		bucket = time.Hour
	}
	n := int((horizon + bucket - 1) / bucket)
	if n < 1 {
		n = 1
	}
	hours := int((horizon + time.Hour - 1) / time.Hour)
	if hours < 1 {
		hours = 1
	}
	return &Recorder{
		horizon:   horizon,
		bucket:    bucket,
		workload:  make(map[RequestClass][]uint64),
		latSum:    make([]float64, n),
		latCount:  make([]uint64, n),
		coldSum:   make([]float64, n),
		coldCount: make([]uint64, n),
		updates:   make([]uint64, hours),
	}
}

// Buckets returns the number of buckets.
func (r *Recorder) Buckets() int { return len(r.latSum) }

// BucketWidth returns the bucket duration.
func (r *Recorder) BucketWidth() time.Duration { return r.bucket }

func (r *Recorder) idx(at time.Duration) int {
	i := int(at / r.bucket)
	if i < 0 {
		i = 0
	}
	if i >= len(r.latSum) {
		i = len(r.latSum) - 1
	}
	return i
}

// CountRequest records n controller requests of class c at time at.
func (r *Recorder) CountRequest(c RequestClass, at time.Duration, n uint64) {
	row := r.workload[c]
	if row == nil {
		row = make([]uint64, r.Buckets())
		r.workload[c] = row
	}
	row[r.idx(at)] += n
}

// RecordLatency adds a forwarding-latency sample observed at time at.
// weight allows batch-recording the fast-path packets of a flow without
// one event per packet.
func (r *Recorder) RecordLatency(at, latency time.Duration, weight int) {
	if weight <= 0 {
		return
	}
	i := r.idx(at)
	r.latSum[i] += latency.Seconds() * float64(weight)
	r.latCount[i] += uint64(weight)
}

// coldBins spans 1 µs to ~16 s at coldBinsPerOctave bins per octave
// (≈19% geometric resolution per bin — finer than any tolerance band
// the scaled engines pin quantiles at).
const (
	coldBinsPerOctave = 4
	coldBins          = 24 * coldBinsPerOctave
)

func coldBin(latency time.Duration) int {
	us := float64(latency) / float64(time.Microsecond)
	if us <= 1 {
		return 0
	}
	b := int(math.Log2(us) * coldBinsPerOctave)
	if b >= coldBins {
		b = coldBins - 1
	}
	return b
}

// RecordColdLatency adds a first-packet latency sample.
func (r *Recorder) RecordColdLatency(at, latency time.Duration) {
	i := r.idx(at)
	r.coldSum[i] += latency.Seconds()
	r.coldCount[i] += 1
	r.coldHist[coldBin(latency)]++
	// Cold packets are packets too.
	r.RecordLatency(at, latency, 1)
}

// ColdLatencyQuantile returns the q-quantile (q in [0,1]) of the
// recorded cold-cache latencies, as the geometric midpoint of the
// histogram bin holding it. The log-bucketed estimate is exact to one
// bin (≈19%). On an empty histogram it returns 0 for every q — the
// same empty-value contract as AvgColdLatency — and out-of-range q is
// clamped into [0,1], so q=0 is the lowest occupied bin and q=1 the
// highest.
func (r *Recorder) ColdLatencyQuantile(q float64) time.Duration {
	var total uint64
	for _, c := range r.coldHist {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var seen uint64
	for b, c := range r.coldHist {
		seen += c
		if seen > target {
			us := math.Exp2((float64(b) + 0.5) / coldBinsPerOctave)
			return time.Duration(us * float64(time.Microsecond))
		}
	}
	return 0
}

// RecordUpdate counts one grouping update at time at.
func (r *Recorder) RecordUpdate(at time.Duration) {
	h := int(at / time.Hour)
	if h < 0 {
		h = 0
	}
	if h >= len(r.updates) {
		h = len(r.updates) - 1
	}
	r.updates[h]++
}

// WorkloadPerBucket returns total controller requests per bucket.
func (r *Recorder) WorkloadPerBucket() []uint64 {
	out := make([]uint64, r.Buckets())
	for _, row := range r.workload {
		for i, v := range row {
			out[i] += v
		}
	}
	return out
}

// WorkloadByClass returns the per-class totals over the horizon.
func (r *Recorder) WorkloadByClass() map[RequestClass]uint64 {
	out := make(map[RequestClass]uint64, len(r.workload))
	for c, row := range r.workload {
		var sum uint64
		for _, v := range row {
			sum += v
		}
		out[c] = sum
	}
	return out
}

// TotalWorkload returns the total request count.
func (r *Recorder) TotalWorkload() uint64 {
	var sum uint64
	for _, v := range r.WorkloadPerBucket() {
		sum += v
	}
	return sum
}

// WorkloadRPS converts per-bucket counts to requests/second, optionally
// multiplying by scale to undo a trace's flow-count scaling.
func (r *Recorder) WorkloadRPS(scale int) []float64 {
	return r.rpsOf(r.WorkloadPerBucket(), float64(scale))
}

// WorkloadRPSFor is WorkloadRPS restricted to the given request classes
// (Fig. 7 counts received control requests, not flood fan-out sends).
func (r *Recorder) WorkloadRPSFor(scale int, classes ...RequestClass) []float64 {
	return r.WorkloadRPSForScaled(float64(scale), classes...)
}

// WorkloadRPSForScaled is WorkloadRPSFor with a real-valued scale: the
// sampled replay engines undo a fractional pair-sampling probability
// (scale/p) on top of the trace's integer flow-count divisor.
func (r *Recorder) WorkloadRPSForScaled(scale float64, classes ...RequestClass) []float64 {
	counts := make([]uint64, r.Buckets())
	for _, c := range classes {
		for i, v := range r.workload[c] {
			counts[i] += v
		}
	}
	return r.rpsOf(counts, scale)
}

func (r *Recorder) rpsOf(counts []uint64, scale float64) []float64 {
	if scale < 1 {
		scale = 1
	}
	out := make([]float64, len(counts))
	sec := r.bucket.Seconds()
	for i, c := range counts {
		out[i] = float64(c) * scale / sec
	}
	return out
}

// AvgLatencyPerBucket returns the mean forwarding latency per bucket (0
// for empty buckets).
func (r *Recorder) AvgLatencyPerBucket() []time.Duration {
	out := make([]time.Duration, r.Buckets())
	for i := range out {
		if r.latCount[i] > 0 {
			out[i] = time.Duration(r.latSum[i] / float64(r.latCount[i]) * float64(time.Second))
		}
	}
	return out
}

// AvgColdLatency returns the mean first-packet latency over the
// horizon. With no samples it returns 0, never NaN: the empty-histogram
// zero value is part of the contract (the telemetry registry snapshots
// these helpers verbatim, and a NaN would poison the dump).
func (r *Recorder) AvgColdLatency() time.Duration {
	var sum float64
	var count uint64
	for i := range r.coldSum {
		sum += r.coldSum[i]
		count += r.coldCount[i]
	}
	if count == 0 {
		return 0
	}
	return time.Duration(sum / float64(count) * float64(time.Second))
}

// AvgLatency returns the mean latency over all packets (0 with no
// samples — see AvgColdLatency for the empty-histogram contract).
func (r *Recorder) AvgLatency() time.Duration {
	var sum float64
	var count uint64
	for i := range r.latSum {
		sum += r.latSum[i]
		count += r.latCount[i]
	}
	if count == 0 {
		return 0
	}
	return time.Duration(sum / float64(count) * float64(time.Second))
}

// UpdatesPerHour returns grouping updates per hour.
func (r *Recorder) UpdatesPerHour() []uint64 {
	out := make([]uint64, len(r.updates))
	copy(out, r.updates)
	return out
}

// TotalUpdates returns the total number of grouping updates.
func (r *Recorder) TotalUpdates() uint64 {
	var sum uint64
	for _, v := range r.updates {
		sum += v
	}
	return sum
}
