package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestRegistrySnapshotSortedAndDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		c := r.Counter("zeta.count", "last registered, first sorted check")
		g := r.Gauge("alpha.gauge", "")
		h := r.Histogram("mid.hist", "latencies")
		r.Func("beta.func", "derived", func() float64 { return 7.5 })
		c.Add(3)
		c.Inc()
		g.Set(-2.25)
		for _, v := range []uint64{0, 1, 5, 5, 900} {
			h.Observe(v)
		}
		return r
	}
	r := build()
	snap := r.Snapshot()
	var names []string
	for _, s := range snap {
		names = append(names, s.Name)
	}
	want := []string{"alpha.gauge", "beta.func", "mid.hist", "zeta.count"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Fatalf("snapshot order = %v, want %v", names, want)
	}
	if snap[3].Value != 4 || snap[0].Value != -2.25 || snap[1].Value != 7.5 {
		t.Fatalf("snapshot values wrong: %+v", snap)
	}
	if snap[2].Count != 5 || snap[2].Value != 911 {
		t.Fatalf("histogram sample = %+v, want count 5 sum 911", snap[2])
	}

	var a, b, prom bytes.Buffer
	if err := r.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("JSONL dump not reproducible:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
	if err := r.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	for _, needle := range []string{
		"# TYPE zeta.count counter",
		"zeta.count 4",
		"# HELP mid.hist latencies",
		"mid.hist_count 5",
		`mid.hist_bucket{le="0"} 1`,
	} {
		if !strings.Contains(prom.String(), needle) {
			t.Errorf("prom output missing %q:\n%s", needle, prom.String())
		}
	}
}

func TestNilHandlesNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	h.Observe(9)
	r.Func("z", "", nil)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil handles must read as zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot must be nil")
	}
}

func TestHistogramQuantileSemantics(t *testing.T) {
	h := &Histogram{}
	// Empty: explicit zero for every q, including the degenerate ones.
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	for i := 0; i < 90; i++ {
		h.Observe(3) // bucket bitlen 2, edge 3
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000) // bucket bitlen 10, edge 1023
	}
	if got := h.Quantile(0.5); got != 3 {
		t.Fatalf("q50 = %d, want 3", got)
	}
	if got := h.Quantile(0.99); got != 1023 {
		t.Fatalf("q99 = %d, want 1023", got)
	}
	if got := h.Quantile(5); got != 1023 {
		t.Fatalf("q>1 = %d, want max edge 1023", got)
	}
	if m := h.Mean(); m < 102 || m > 103 {
		t.Fatalf("mean = %v, want ≈102.7", m)
	}
}

func clockAt(now *time.Duration) func() time.Duration {
	return func() time.Duration { return *now }
}

func TestTracerSpansAndSampling(t *testing.T) {
	var now time.Duration
	tr := NewTracer(clockAt(&now), 1, 42)
	root := tr.StartTrace("pktin")
	if root == nil {
		t.Fatal("sample=1 must keep every trace")
	}
	now = 5 * time.Microsecond
	child := tr.StartSpan(root.Context(), "ctrl").Attr("decision", 2)
	now = 7 * time.Microsecond
	child.End()
	tr.Emit(root.Context(), "batch", 1*time.Microsecond, 4*time.Microsecond)
	now = 9 * time.Microsecond
	root.End()
	if tr.Len() != 3 {
		t.Fatalf("completed spans = %d, want 3", tr.Len())
	}
	tree := tr.TreeString()
	want := "pktin [0 9000]\n  batch [1000 4000]\n  ctrl [5000 7000] decision=2\n"
	if tree != want {
		t.Fatalf("tree:\n%s\nwant:\n%s", tree, want)
	}

	// Unsampled: nil spans all the way down, zero completed spans.
	off := NewTracer(clockAt(&now), 0, 42)
	r2 := off.StartTrace("pktin")
	if r2 != nil {
		t.Fatal("sample=0 must drop every trace")
	}
	off.StartSpan(r2.Context(), "ctrl").Attr("k", 1).End()
	off.Emit(r2.Context(), "batch", 0, 0)
	if off.Len() != 0 || off.Dropped.Value() != 1 || off.Kept.Value() != 0 {
		t.Fatalf("unsampled tracer recorded spans: len=%d kept=%d dropped=%d",
			off.Len(), off.Kept.Value(), off.Dropped.Value())
	}

	// Partial sampling is a deterministic function of the seed.
	count := func() uint64 {
		p := NewTracer(clockAt(&now), 0.5, 7)
		for i := 0; i < 1000; i++ {
			if s := p.StartTrace("t"); s != nil {
				s.End()
			}
		}
		return p.Kept.Value()
	}
	k1, k2 := count(), count()
	if k1 != k2 {
		t.Fatalf("sampling not deterministic: %d vs %d", k1, k2)
	}
	if k1 < 400 || k1 > 600 {
		t.Fatalf("sample=0.5 kept %d of 1000, want ≈500", k1)
	}

	// Nil tracer: everything no-ops.
	var nilT *Tracer
	nilT.StartSpan(SpanContext{Trace: 1, Span: 1}, "x").End()
	nilT.Emit(SpanContext{Trace: 1, Span: 1}, "y", 0, 0)
	if nilT.Len() != 0 || nilT.TreeString() != "" {
		t.Fatal("nil tracer must no-op")
	}
	if err := nilT.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestTracerDumpReproducible(t *testing.T) {
	run := func() []byte {
		var now time.Duration
		tr := NewTracer(clockAt(&now), 0.8, 99)
		for i := 0; i < 50; i++ {
			now = time.Duration(i) * time.Millisecond
			root := tr.StartTrace("pktin")
			sp := tr.StartSpan(root.Context(), "ctrl")
			sp.Attr("i", int64(i)).End()
			root.End()
		}
		var buf bytes.Buffer
		if err := tr.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("span dump not byte-identical across same-seed runs")
	}
}

func TestFlightRingAndTail(t *testing.T) {
	const tGroupConfig, tConfigAck = 11, 12
	RegisterFlightType(tGroupConfig, "GroupConfig")
	RegisterFlightType(tConfigAck, "ConfigAck")
	var f *Flight
	f.Record(FlightEvent{Type: tGroupConfig}) // nil no-op
	if f.Tail() != nil {
		t.Fatal("nil flight tail must be nil")
	}
	f = NewFlight(4)
	if f.Tail() != nil {
		t.Fatal("empty flight tail must be nil")
	}
	for i := 1; i <= 6; i++ {
		f.Record(FlightEvent{
			At: time.Duration(i) * time.Second, Sent: i%2 == 0, Peer: int64(i),
			Type: tGroupConfig, Gen: uint64(i), Ver: uint64(10 + i),
		})
	}
	tail := f.Tail()
	if len(tail) != 4 {
		t.Fatalf("tail length = %d, want ring depth 4", len(tail))
	}
	if want := "t=3000000000 <S3 GroupConfig gen=3 ver=13"; tail[0] != want {
		t.Fatalf("tail[0] = %q, want %q (oldest surviving event)", tail[0], want)
	}
	if want := "t=6000000000 >S6 GroupConfig gen=6 ver=16"; tail[3] != want {
		t.Fatalf("tail[3] = %q, want %q", tail[3], want)
	}
	f.Record(FlightEvent{At: 7 * time.Second, Peer: 7, Type: tConfigAck, Span: 0xabc})
	last := f.Tail()[3]
	if want := "t=7000000000 <S7 ConfigAck span=0000000000000abc"; last != want {
		t.Fatalf("span formatting = %q, want %q", last, want)
	}
}
