// Package telemetry is the control plane's observability layer: a
// unified metrics registry (typed counter/gauge/histogram handles,
// deterministic sorted snapshots), a causal span tracer driven by the
// sim clock, and a per-node flight recorder that keeps the last few
// protocol events for post-mortem dumps.
//
// Everything here is sim-clock only — constructors take a now func
// fed from the simulator, never the wall clock — and the lazyvet
// determinism analyzer guards the package like the rest of the
// simulated core. All output paths (Snapshot, WriteProm, WriteJSONL,
// span dumps, flight tails) are byte-deterministic for a fixed seed:
// instruments sort by name, spans dump in completion order (the
// single-threaded apply phase makes completion order a run invariant),
// and IDs derive from a seeded splitmix64 sequence, never from global
// randomness. docs/observability.md names the conventions.
package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strconv"
)

// Counter is a monotone event count. The zero-value/nil handle is a
// no-op, so call sites cost one predictable branch when telemetry is
// not wired. Increments are plain adds — instruments are owned by the
// single-threaded sim loop, like every other mutable structure here.
type Counter struct{ v uint64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value reads the count (0 on a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a last-write-wins instantaneous value.
type Gauge struct{ v float64 }

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value reads the gauge (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// histBuckets is the fixed bucket count of Histogram: one power-of-two
// bucket per possible bit length of a uint64 observation, so Observe
// is a bits.Len64 and an add — no search, no allocation.
const histBuckets = 65

// Histogram is a log2-bucketed distribution of uint64 observations
// (bucket k holds values with bit length k, i.e. [2^(k-1), 2^k)).
type Histogram struct {
	buckets [histBuckets]uint64
	count   uint64
	sum     uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)]++
	h.count++
	h.sum += v
}

// Count reports the number of observations (0 on a nil handle).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Mean reports the average observation. An empty (or nil) histogram
// has an explicit zero mean — never NaN.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile reports an upper bound for the q-quantile (the upper edge
// of the bucket holding the q·count-th observation). Empty and nil
// histograms report 0 for every q, as do q ≤ 0 and NaN; q ≥ 1 reports
// the maximum bucket edge seen.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil || h.count == 0 || !(q > 0) { // !(q>0) also catches NaN
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank >= h.count {
		rank = h.count - 1
	}
	var seen uint64
	for k, n := range h.buckets {
		seen += n
		if n > 0 && seen > rank {
			if k == 0 {
				return 0
			}
			if k >= 64 {
				return ^uint64(0)
			}
			return 1<<uint(k) - 1
		}
	}
	return 0
}

// kind tags an instrument for exposition.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindFunc
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge" // funcs expose as gauges
	}
}

// instrument is one registered metric.
type instrument struct {
	name    string
	help    string
	kind    kind
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// Registry holds the instruments. Registration happens once at
// construction time; the hot path touches only the returned handles.
// A nil *Registry hands out nil handles, so an unwired subsystem pays
// a nil check per increment and nothing else.
type Registry struct {
	byName map[string]*instrument
	order  []*instrument
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*instrument)}
}

func (r *Registry) add(name, help string, k kind) *instrument {
	if _, dup := r.byName[name]; dup {
		panic("telemetry: duplicate instrument " + name)
	}
	in := &instrument{name: name, help: help, kind: k}
	r.byName[name] = in
	r.order = append(r.order, in)
	return in
}

// Counter registers a counter and returns its handle.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	in := r.add(name, help, kindCounter)
	in.counter = &Counter{}
	return in.counter
}

// Gauge registers a gauge and returns its handle.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	in := r.add(name, help, kindGauge)
	in.gauge = &Gauge{}
	return in.gauge
}

// Histogram registers a histogram and returns its handle.
func (r *Registry) Histogram(name, help string) *Histogram {
	if r == nil {
		return nil
	}
	in := r.add(name, help, kindHistogram)
	in.hist = &Histogram{}
	return in.hist
}

// Func registers a gauge computed at snapshot time. This is how the
// pre-existing scattered counters (edge Stats, netsim DropStats,
// controller Stats) re-home onto the registry without touching their
// hot paths: the closure reads the struct field when a snapshot is
// taken, and the run itself pays nothing.
func (r *Registry) Func(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.add(name, help, kindFunc).fn = fn
}

// Sample is one instrument's snapshot value.
type Sample struct {
	Name string
	Kind string
	// Value is the counter/gauge/func value, or the histogram sum.
	Value float64
	// Count and Buckets are set for histograms only; Buckets holds
	// (bitlen, count) pairs for the non-empty buckets in ascending
	// order.
	Count   uint64
	Buckets [][2]uint64
}

func (in *instrument) sample() Sample {
	s := Sample{Name: in.name, Kind: in.kind.String()}
	switch in.kind {
	case kindCounter:
		s.Value = float64(in.counter.Value())
	case kindGauge:
		s.Value = in.gauge.Value()
	case kindHistogram:
		s.Value = float64(in.hist.sum)
		s.Count = in.hist.count
		for k, n := range in.hist.buckets {
			if n > 0 {
				s.Buckets = append(s.Buckets, [2]uint64{uint64(k), n})
			}
		}
	case kindFunc:
		s.Value = in.fn()
	}
	return s
}

// Snapshot returns every instrument's current value sorted by name —
// the deterministic order every exposition format shares.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	out := make([]Sample, 0, len(r.order))
	for _, in := range r.order {
		out = append(out, in.sample())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// formatValue renders a float deterministically (no exponent drift:
// strconv's shortest form is stable for a given bit pattern).
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteProm writes a Prometheus-style text snapshot: HELP/TYPE pairs
// and one sample line per instrument, histogram buckets as cumulative
// le-labelled series on power-of-two edges. This is the exposition the
// future live transport scrapes; in-sim it backs the -metrics dump
// flags.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	helps := make(map[string]string, len(r.byName))
	for name, in := range r.byName {
		helps[name] = in.help
	}
	for _, s := range r.Snapshot() {
		if h := helps[s.Name]; h != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, h); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
			return err
		}
		if s.Kind != "histogram" {
			if _, err := fmt.Fprintf(w, "%s %s\n", s.Name, formatValue(s.Value)); err != nil {
				return err
			}
			continue
		}
		var cum uint64
		for _, b := range s.Buckets {
			cum += b[1]
			edge := "0"
			if k := b[0]; k > 0 && k < 64 {
				edge = strconv.FormatUint(1<<uint(k)-1, 10)
			} else if k >= 64 {
				edge = "+Inf"
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", s.Name, edge, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", s.Name, formatValue(s.Value), s.Name, s.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL writes one JSON object per instrument, sorted by name,
// with a fixed key order — byte-identical across same-seed runs.
func (r *Registry) WriteJSONL(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, s := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, `{"name":%q,"kind":%q,"value":%s`, s.Name, s.Kind, formatValue(s.Value)); err != nil {
			return err
		}
		if s.Kind == "histogram" {
			if _, err := fmt.Fprintf(w, `,"count":%d,"buckets":[`, s.Count); err != nil {
				return err
			}
			for i, b := range s.Buckets {
				sep := ""
				if i > 0 {
					sep = ","
				}
				if _, err := fmt.Fprintf(w, "%s[%d,%d]", sep, b[0], b[1]); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, "]"); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "}\n"); err != nil {
			return err
		}
	}
	return nil
}
