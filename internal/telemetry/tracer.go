package telemetry

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// SpanContext identifies a span within a trace; it is what crosses
// node boundaries, piggybacked on messages that already carry an xid
// wire field (the OpenFlow header's 4-byte xid is the on-wire carrier;
// in-process netsim passes the full 16 bytes — see
// docs/observability.md §Propagation). The zero context means "not
// sampled": StartSpan on it returns nil and the whole subtree costs
// one branch per hop.
type SpanContext struct {
	Trace uint64
	Span  uint64
}

// Sampled reports whether the context belongs to a sampled trace.
func (c SpanContext) Sampled() bool { return c.Trace != 0 }

// Attr is one span attribute. Values are int64 so the hot path never
// formats strings; the dump layer renders them.
type Attr struct {
	Key string
	Val int64
}

// spanRec is one completed span.
type spanRec struct {
	trace  uint64
	span   uint64
	parent uint64
	name   string
	start  time.Duration
	end    time.Duration
	attrs  []Attr
}

// Span is an open span. All methods are nil-safe: an unsampled trace
// (or an unwired tracer) hands out nil spans and the instrumentation
// sites pay a branch, not an allocation.
type Span struct {
	t   *Tracer
	rec spanRec
}

// Tracer mints causal spans against the sim clock. It is owned by the
// single-threaded sim loop (spans are only created in ordered code —
// the edge switch event handlers and the controller's apply phase,
// never the concurrent decide phase), so span IDs are a deterministic
// seeded sequence and the completed-span dump is byte-identical across
// same-seed runs.
type Tracer struct {
	now    func() time.Duration
	seed   uint64
	seq    uint64
	thresh uint64 // head-sampling: keep a root iff its trace ID < thresh
	spans  []spanRec

	// Sampling decisions, for the registry.
	Kept, Dropped Counter
}

// NewTracer builds a tracer over the sim clock. sample is the
// head-sampling rate in [0,1]: the decision hashes the deterministic
// trace ID, so the kept set is a stable pseudo-random subset — Scale=1
// fluid sweeps stay flat-memory at small rates while every child span
// of a kept trace survives.
func NewTracer(now func() time.Duration, sample float64, seed uint64) *Tracer {
	t := &Tracer{now: now, seed: seed}
	switch {
	case sample >= 1:
		t.thresh = ^uint64(0)
	case sample > 0:
		t.thresh = uint64(sample * float64(^uint64(0)))
	}
	return t
}

// splitmix64 is the ID mixer: deterministic, well-distributed, and
// seedable — the hashed-trace-ID sampling below depends on the output
// being uniform.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// nextID mints the next deterministic non-zero ID.
func (t *Tracer) nextID() uint64 {
	for {
		t.seq++
		if id := splitmix64(t.seed + t.seq); id != 0 {
			return id
		}
	}
}

// StartTrace opens a root span, applying the head-sampling decision:
// a nil return means the trace is not sampled and every descendant
// call no-ops.
func (t *Tracer) StartTrace(name string) *Span {
	if t == nil {
		return nil
	}
	id := t.nextID()
	if id >= t.thresh {
		t.Dropped.Inc()
		return nil
	}
	t.Kept.Inc()
	return &Span{t: t, rec: spanRec{trace: id, span: id, name: name, start: t.now()}}
}

// StartSpan opens a child span under ctx; nil tracer or unsampled
// context no-op.
func (t *Tracer) StartSpan(ctx SpanContext, name string) *Span {
	if t == nil || !ctx.Sampled() {
		return nil
	}
	return &Span{t: t, rec: spanRec{
		trace: ctx.Trace, span: t.nextID(), parent: ctx.Span,
		name: name, start: t.now(),
	}}
}

// Emit records an already-closed span under ctx with explicit start
// and end times. This is how out-of-band timelines join a trace: the
// micro-batch residence span (pin time is known only at flush) and the
// absorbed controller.TakeoverTimeline phases.
func (t *Tracer) Emit(ctx SpanContext, name string, start, end time.Duration, attrs ...Attr) {
	if t == nil || !ctx.Sampled() {
		return
	}
	t.spans = append(t.spans, spanRec{
		trace: ctx.Trace, span: t.nextID(), parent: ctx.Span,
		name: name, start: start, end: end, attrs: attrs,
	})
}

// EmitRoot records an already-closed root span with explicit start and
// end times, bypassing head sampling, and returns its context so
// callers can Emit children under it. Reserved for rare, load-bearing
// timelines that must always survive into the dump — the absorbed
// failover trees; per-packet traffic must go through StartTrace.
func (t *Tracer) EmitRoot(name string, start, end time.Duration, attrs ...Attr) SpanContext {
	if t == nil {
		return SpanContext{}
	}
	id := t.nextID()
	t.Kept.Inc()
	t.spans = append(t.spans, spanRec{
		trace: id, span: id, name: name, start: start, end: end, attrs: attrs,
	})
	return SpanContext{Trace: id, Span: id}
}

// Context returns the span's propagation context (zero when nil).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.rec.trace, Span: s.rec.span}
}

// Attr attaches an attribute and returns the span for chaining.
func (s *Span) Attr(key string, val int64) *Span {
	if s != nil {
		s.rec.attrs = append(s.rec.attrs, Attr{Key: key, Val: val})
	}
	return s
}

// End closes the span and commits it to the tracer's completed set.
// Only ended spans are dumped; a span left open at the horizon is
// dropped, which keeps the dump deterministic under partial protocol
// exchanges (a flood decision that never answers the ingress switch).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.end = s.t.now()
	s.t.spans = append(s.t.spans, s.rec)
}

// Len reports the number of completed spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// WriteJSONL dumps completed spans, one JSON object per line in
// completion order, with fixed key order and %016x IDs — byte-
// identical across same-seed runs.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	for i := range t.spans {
		r := &t.spans[i]
		if _, err := fmt.Fprintf(w, `{"trace":"%016x","span":"%016x","parent":"%016x","name":%q,"start":%d,"end":%d`,
			r.trace, r.span, r.parent, r.name, int64(r.start), int64(r.end)); err != nil {
			return err
		}
		if len(r.attrs) > 0 {
			if _, err := io.WriteString(w, `,"attrs":{`); err != nil {
				return err
			}
			for i, a := range r.attrs {
				sep := ""
				if i > 0 {
					sep = ","
				}
				if _, err := fmt.Fprintf(w, "%s%q:%d", sep, a.Key, a.Val); err != nil {
					return err
				}
			}
			if _, err := io.WriteString(w, "}"); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "}\n"); err != nil {
			return err
		}
	}
	return nil
}

// TreeString renders every completed trace as an indented tree of
// "name [start end] attrs" lines, children ordered by start time then
// completion order, traces ordered by root start time. IDs are
// deliberately omitted: the rendering is the shard-count-independent
// shape the 1-vs-8-shard differential compares (IDs depend on the
// global mint sequence; the causal structure must not).
func (t *Tracer) TreeString() string {
	if t == nil {
		return ""
	}
	children := make(map[uint64][]int, len(t.spans))
	var roots []int
	for i := range t.spans {
		r := &t.spans[i]
		if r.parent == 0 {
			roots = append(roots, i)
		} else {
			children[r.parent] = append(children[r.parent], i)
		}
	}
	byStart := func(idx []int) {
		sort.SliceStable(idx, func(a, b int) bool {
			return t.spans[idx[a]].start < t.spans[idx[b]].start
		})
	}
	byStart(roots)
	var out []byte
	var render func(i, depth int)
	render = func(i, depth int) {
		r := &t.spans[i]
		for d := 0; d < depth; d++ {
			out = append(out, "  "...)
		}
		out = append(out, fmt.Sprintf("%s [%d %d]", r.name, int64(r.start), int64(r.end))...)
		for _, a := range r.attrs {
			out = append(out, fmt.Sprintf(" %s=%d", a.Key, a.Val)...)
		}
		out = append(out, '\n')
		kids := children[r.span]
		byStart(kids)
		for _, k := range kids {
			render(k, depth+1)
		}
	}
	for _, i := range roots {
		render(i, 0)
	}
	return string(out)
}
