package telemetry

import (
	"fmt"
	"time"
)

// FlightEvent is one protocol event in a node's flight recorder: what
// moved, which way, and the fencing coordinates (generation, version,
// span) that invariant post-mortems key off. The struct is pointer-free
// on purpose: Record runs twice per control-plane wire event, and a
// string field would make every ring store take a GC write barrier.
// Type is a numeric code; RegisterFlightType names it for rendering.
type FlightEvent struct {
	At   time.Duration
	Peer int64  // the other endpoint's node ID
	Gen  uint64 // generation stamp, 0 when the message carries none
	Ver  uint64 // version stamp, 0 when the message carries none
	Span uint64 // propagated span ID, 0 when unsampled
	Type uint8  // event type code (see RegisterFlightType)
	Sent bool   // true when this node sent the message, false on receive
}

// flightTypeNames maps event type codes to render names. Registration
// happens at init time (the wire codec registers its MsgType table),
// so reads on the Tail path are unsynchronized by design.
var flightTypeNames [256]string

// RegisterFlightType names an event type code for Tail rendering.
// Intended for package init; later registrations overwrite.
func RegisterFlightType(code uint8, name string) { flightTypeNames[code] = name }

// FlightTypeName resolves an event type code to its registered name,
// or a numeric placeholder when unregistered.
func FlightTypeName(code uint8) string {
	if s := flightTypeNames[code]; s != "" {
		return s
	}
	return fmt.Sprintf("Type(%d)", code)
}

// Flight is a bounded ring of a node's most recent protocol events.
// Recording overwrites the oldest entry — the recorder is sized for
// the post-mortem tail, not for history — and Tail renders oldest to
// newest deterministically. A nil *Flight no-ops.
type Flight struct {
	buf  []FlightEvent
	next int
	n    int
}

// DefaultFlightDepth is the per-node ring size: enough to cover a
// regroup push round plus the keep-alive chatter around it.
const DefaultFlightDepth = 32

// NewFlight builds a recorder with the given ring depth (≤0 selects
// DefaultFlightDepth).
func NewFlight(depth int) *Flight {
	if depth <= 0 {
		depth = DefaultFlightDepth
	}
	return &Flight{buf: make([]FlightEvent, depth)}
}

// Record appends one event, evicting the oldest when full. It runs
// once per control-plane wire event, so the wrap is a branch, not a
// modulo.
func (f *Flight) Record(e FlightEvent) {
	if f == nil {
		return
	}
	f.buf[f.next] = e
	if f.next++; f.next == len(f.buf) {
		f.next = 0
	}
	if f.n < len(f.buf) {
		f.n++
	}
}

// Tail returns the recorded events oldest-first, one formatted line
// each: "t=<ns> <dir>S<peer> <Type> gen=G ver=V span=<id>" with the
// zero-valued coordinates omitted.
func (f *Flight) Tail() []string {
	if f == nil || f.n == 0 {
		return nil
	}
	out := make([]string, 0, f.n)
	start := (f.next - f.n + len(f.buf)) % len(f.buf)
	for i := 0; i < f.n; i++ {
		e := &f.buf[(start+i)%len(f.buf)]
		dir := "<"
		if e.Sent {
			dir = ">"
		}
		line := fmt.Sprintf("t=%d %sS%d %s", int64(e.At), dir, e.Peer, FlightTypeName(e.Type))
		if e.Gen != 0 {
			line += fmt.Sprintf(" gen=%d", e.Gen)
		}
		if e.Ver != 0 {
			line += fmt.Sprintf(" ver=%d", e.Ver)
		}
		if e.Span != 0 {
			line += fmt.Sprintf(" span=%016x", e.Span)
		}
		out = append(out, line)
	}
	return out
}
