package openflow

import "lazyctrl/internal/model"

// LossDirection identifies which keep-alive stream went silent, in the
// terms of Table I of the paper.
type LossDirection uint8

// Loss directions observed by wheel neighbors and switches.
const (
	// LossUp: the keep-alive Sn → Sn−1 was not received (observed by
	// Sn−1).
	LossUp LossDirection = iota + 1
	// LossDown: the keep-alive Sn → Sn+1 was not received (observed by
	// Sn+1).
	LossDown
	// LossCtrl: the keep-alive Controller → Sn was not received
	// (observed and reported by Sn via an alternate path, or inferred by
	// the controller from a missing acknowledgment).
	LossCtrl
)

// String names the direction.
func (d LossDirection) String() string {
	switch d {
	case LossUp:
		return "up"
	case LossDown:
		return "down"
	case LossCtrl:
		return "ctrl"
	default:
		return "unknown"
	}
}

// FailureReport notifies the controller that an observer missed
// keep-alives from a suspect switch (§III-E1).
type FailureReport struct {
	Observer  model.SwitchID
	Suspect   model.SwitchID
	Direction LossDirection
	// MissedSeq is the first keep-alive sequence number that went
	// missing.
	MissedSeq uint64
}

// TypeFailureReport extends the LazyCtrl message set.
const TypeFailureReport MsgType = 32

// MsgType implements Message.
func (*FailureReport) MsgType() MsgType { return TypeFailureReport }

func (m *FailureReport) encodeBody(dst []byte) []byte {
	dst = putU32(dst, uint32(m.Observer))
	dst = putU32(dst, uint32(m.Suspect))
	dst = append(dst, uint8(m.Direction))
	return putU64(dst, m.MissedSeq)
}

func (m *FailureReport) decodeBody(src []byte) error {
	r := &reader{src: src}
	m.Observer = model.SwitchID(r.u32())
	m.Suspect = model.SwitchID(r.u32())
	m.Direction = LossDirection(r.u8())
	m.MissedSeq = r.u64()
	return r.done()
}

// ConfigAck acknowledges a GroupConfig push — the barrier-reply of the
// supervised push path. The controller retries an unacknowledged config
// with exponential backoff, so a push lost outside the keep-alive
// heuristics no longer strands the destination until the next regroup.
type ConfigAck struct {
	// From is the acknowledging switch.
	From model.SwitchID
	// Version echoes the grouping version of the adopted GroupConfig.
	Version uint64
}

// TypeConfigAck extends the LazyCtrl message set.
const TypeConfigAck MsgType = 33

// MsgType implements Message.
func (*ConfigAck) MsgType() MsgType { return TypeConfigAck }

func (m *ConfigAck) encodeBody(dst []byte) []byte {
	dst = putU32(dst, uint32(m.From))
	return putU64(dst, m.Version)
}

func (m *ConfigAck) decodeBody(src []byte) error {
	r := &reader{src: src}
	m.From = model.SwitchID(r.u32())
	m.Version = r.u64()
	return r.done()
}
