package openflow

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"lazyctrl/internal/bloom"
	"lazyctrl/internal/model"
)

// fuzzSeedMessages returns one representative instance of every message
// type, including the size-adaptive encodings (dense and flat pair
// sections, delta and full filter pushes) so the committed corpus
// starts the fuzzer inside each decoder branch rather than leaving
// coverage discovery to mutation.
func fuzzSeedMessages() []Message {
	pkt := model.Packet{
		SrcMAC: model.HostMAC(3),
		DstMAC: model.HostMAC(9),
		SrcIP:  0x0a000003,
		DstIP:  0x0a000009,
		VLAN:   12,
		Ether:  model.EtherTypeIPv4,
	}
	return []Message{
		&Hello{},
		&EchoRequest{Data: []byte("ping")},
		&EchoReply{Data: []byte("pong")},
		&PacketIn{Switch: 42, Reason: ReasonNoMatch, Packet: pkt},
		&PacketOut{Actions: []Action{Output(3), Encap(7)}, Packet: pkt},
		&FlowMod{
			Command:     FlowAdd,
			Match:       ExactDst(model.HostMAC(9), 12),
			Priority:    100,
			IdleTimeout: 30 * time.Second,
			HardTimeout: 5 * time.Minute,
			Actions:     []Action{Encap(7)},
		},
		&FlowRemoved{Match: ExactDst(model.HostMAC(5), 1), Priority: 10, Packets: 1000, Bytes: 1 << 20},
		&StatsRequest{},
		&StatsReply{Switch: 4, FlowCount: 17, PacketsSeen: 12345, BytesSeen: 1 << 24, LFIBEntries: 9, GFIBFilters: 3, GFIBBytes: 6144, EncapPackets: 77},
		&GroupConfig{
			Group:             2,
			Members:           []model.SwitchID{1, 2, 3},
			Designated:        2,
			Backups:           []model.SwitchID{3},
			RingPrev:          1,
			RingNext:          3,
			SyncInterval:      time.Second,
			KeepAliveInterval: 100 * time.Millisecond,
			Version:           5,
		},
		&LFIBUpdate{
			Origin: 3,
			Full:   true,
			Entries: []LFIBEntry{
				{MAC: model.HostMAC(1), IP: 0x0a000001, VLAN: 12},
				{MAC: model.HostMAC(2), IP: 0x0a000002, VLAN: 12},
			},
			Version: 9,
		},
		&GFIBUpdate{
			Group: 2,
			Filters: []GFIBFilter{
				{Switch: 1, Filter: []byte{0xde, 0xad, 0xbe, 0xef}, Version: 4},
				{Switch: 3, Filter: []byte{0x01, 0x02}, Version: 7},
			},
			Version: 5,
		},
		// Dense pair section: ≥3 pairs over few distinct switches.
		&StateReport{
			Group: 2,
			LFIBs: []LFIBUpdate{{Origin: 1, Entries: []LFIBEntry{{MAC: model.HostMAC(1), IP: 0x0a000001, VLAN: 12}}, Version: 3}},
			Pairs: []PairStat{
				{A: 1, B: 2, NewFlows: 10},
				{A: 1, B: 3, NewFlows: 4},
				{A: 2, B: 3, NewFlows: 6},
			},
			Version: 5,
		},
		// Flat pair section: too few pairs for the dense table to pay.
		&StateReport{Group: 2, Pairs: []PairStat{{A: 1, B: 9, NewFlows: 1}}, Version: 5},
		&KeepAlive{From: 3, Seq: 42},
		&ARPRelay{Tenant: 7, Packet: pkt},
		&Batch{Msgs: []Message{
			&GroupConfig{Group: 1, Members: []model.SwitchID{1, 2}, Designated: 1, RingPrev: 2, RingNext: 2, SyncInterval: time.Second, KeepAliveInterval: time.Second, Version: 2},
			&KeepAlive{From: 1, Seq: 1},
		}},
		&GFIBDelta{
			Group: 2,
			Deltas: []GFIBFilterDelta{
				{Switch: 1, BaseVersion: 3, TargetVersion: 4, Words: []bloom.WordDelta{{Index: 5, Word: 0xff00ff00ff00ff00}}},
			},
			Removals: []model.SwitchID{9},
			Version:  5,
		},
		&GFIBNack{Group: 2, Origin: 3, Peers: []model.SwitchID{1, 4}},
		// Replication set: role handoff and the three journal-record
		// kinds, plus a generation-stamped keep-alive (the replica
		// heartbeat that doubles as the bootstrap-snapshot request).
		&RoleAnnounce{From: model.StandbyNode, Generation: 7},
		&KeepAlive{From: model.StandbyNode, Seq: 1, Generation: 7},
		&StateSyncRecord{
			Kind: SyncLFIB, Generation: 7, GroupingVersion: 4,
			Origin: 3, Full: true, Version: 9,
			Entries: []LFIBEntry{{MAC: model.HostMAC(1), IP: 0x0a000001, VLAN: 12}},
		},
		&StateSyncRecord{
			Kind: SyncGrouping, Generation: 7, GroupingVersion: 5,
			Assign: []SyncAssign{{Switch: 1, Group: 2}, {Switch: 3, Group: 2}},
		},
		&StateSyncRecord{Kind: SyncTombstone, Generation: 7, GroupingVersion: 5, Origin: 4, Full: true},
		&PacketInBurst{Switch: 3, Items: []BurstPacket{
			{Reason: ReasonNoMatch, Packet: pkt},
			{Reason: ReasonARP, Packet: pkt},
		}},
		&FailureReport{Observer: 2, Suspect: 3, Direction: LossDown, MissedSeq: 17},
		&ConfigAck{From: 3, Version: 5},
	}
}

// FuzzCodecRoundTrip feeds arbitrary bytes to Decode and checks the
// codec's stability contract on everything that parses: a decoded
// message must re-encode without error, the re-encoded bytes must
// decode to a deep-equal message under the same xid, and a second
// encode must be byte-identical to the first (encode is a fixpoint
// after one canonicalization round — non-canonical varints or a
// non-optimal pair-section flag in the input may re-encode smaller,
// but never unstably). Decode itself must never panic or over-allocate
// regardless of input; the bounds checks lazyvet's wireproto analyzer
// enforces are what keeps crafted count fields from turning into
// gigabyte make() calls here.
func FuzzCodecRoundTrip(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		data, err := Encode(m, 0xdead0000|uint32(m.MsgType()))
		if err != nil {
			f.Fatalf("encoding seed %v: %v", m.MsgType(), err)
		}
		f.Add(data)
	}
	// A few deliberately broken headers so the fuzzer starts with
	// rejection paths covered too.
	f.Add([]byte{})
	f.Add([]byte{Version, 0xff, 0, 0, 0, 10, 0, 0, 0, 1})
	f.Add([]byte{0x00, 1, 0, 0, 0, 10, 0, 0, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, xid, err := Decode(data)
		if err != nil {
			return // rejected input: only contract is "no panic"
		}
		enc1, err := Encode(m, xid)
		if err != nil {
			t.Fatalf("re-encoding decoded %v: %v", m.MsgType(), err)
		}
		m2, xid2, err := Decode(enc1)
		if err != nil {
			t.Fatalf("decoding re-encoded %v: %v", m.MsgType(), err)
		}
		if xid2 != xid {
			t.Fatalf("xid changed across round trip: %#x -> %#x", xid, xid2)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("%v round trip changed value:\n first: %#v\nsecond: %#v", m.MsgType(), m, m2)
		}
		enc2, err := Encode(m2, xid2)
		if err != nil {
			t.Fatalf("second encode of %v: %v", m.MsgType(), err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("%v encode not a fixpoint:\n first: %x\nsecond: %x", m.MsgType(), enc1, enc2)
		}
	})
}

const fuzzCorpusDir = "testdata/fuzz/FuzzCodecRoundTrip"

// corpusFileName derives a stable name for a seed corpus entry.
func corpusFileName(i int, m Message) string {
	return fmt.Sprintf("seed-%02d-%s", i, msgTypeNames[m.MsgType()])
}

// corpusEntry renders data in the "go test fuzz v1" corpus file format.
func corpusEntry(data []byte) []byte {
	return []byte(fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data))
}

// TestFuzzCorpusCommitted checks that the committed seed corpus under
// testdata/fuzz/FuzzCodecRoundTrip matches the current encodings of
// fuzzSeedMessages, so a wire-format change cannot silently strand the
// corpus on stale bytes. Regenerate with:
//
//	LAZYCTRL_WRITE_CORPUS=1 go test ./internal/openflow -run TestFuzzCorpusCommitted
func TestFuzzCorpusCommitted(t *testing.T) {
	write := os.Getenv("LAZYCTRL_WRITE_CORPUS") != ""
	if write {
		if err := os.MkdirAll(fuzzCorpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for i, m := range fuzzSeedMessages() {
		data, err := Encode(m, 0xdead0000|uint32(m.MsgType()))
		if err != nil {
			t.Fatalf("encoding seed %v: %v", m.MsgType(), err)
		}
		path := filepath.Join(fuzzCorpusDir, corpusFileName(i, m))
		want := corpusEntry(data)
		if write {
			if err := os.WriteFile(path, want, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("seed corpus entry missing (regenerate with LAZYCTRL_WRITE_CORPUS=1): %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s is stale: committed corpus does not match current encoding of %v; regenerate with LAZYCTRL_WRITE_CORPUS=1", path, m.MsgType())
		}
	}
}
