package openflow

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"lazyctrl/internal/model"
)

// roundTrip encodes and decodes a message, failing the test on any
// mismatch.
func roundTrip(t *testing.T, m Message, xid uint32) Message {
	t.Helper()
	data, err := Encode(m, xid)
	if err != nil {
		t.Fatalf("Encode(%v): %v", m.MsgType(), err)
	}
	got, gotXID, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode(%v): %v", m.MsgType(), err)
	}
	if gotXID != xid {
		t.Errorf("xid = %d, want %d", gotXID, xid)
	}
	if got.MsgType() != m.MsgType() {
		t.Errorf("type = %v, want %v", got.MsgType(), m.MsgType())
	}
	return got
}

func samplePacket() model.Packet {
	return model.Packet{
		SrcMAC:  model.HostMAC(10),
		DstMAC:  model.HostMAC(20),
		SrcIP:   model.HostIP(10),
		DstIP:   model.HostIP(20),
		VLAN:    7,
		Ether:   model.EtherTypeIPv4,
		Bytes:   1500,
		FlowSeq: 3,
	}
}

func TestHelloRoundTrip(t *testing.T) {
	roundTrip(t, &Hello{}, 1)
}

func TestEchoRoundTrip(t *testing.T) {
	req := &EchoRequest{Data: []byte("ping")}
	got, ok := roundTrip(t, req, 2).(*EchoRequest)
	if !ok || !bytes.Equal(got.Data, req.Data) {
		t.Errorf("EchoRequest round trip = %+v, want %+v", got, req)
	}
	rep := &EchoReply{Data: []byte("pong")}
	gotRep, ok := roundTrip(t, rep, 3).(*EchoReply)
	if !ok || !bytes.Equal(gotRep.Data, rep.Data) {
		t.Errorf("EchoReply round trip = %+v, want %+v", gotRep, rep)
	}
}

func TestPacketInRoundTrip(t *testing.T) {
	m := &PacketIn{Switch: 42, Reason: ReasonNoMatch, Packet: samplePacket()}
	got, ok := roundTrip(t, m, 7).(*PacketIn)
	if !ok || !reflect.DeepEqual(got, m) {
		t.Errorf("PacketIn round trip = %+v, want %+v", got, m)
	}
}

func TestPacketInEncapRoundTrip(t *testing.T) {
	p := samplePacket()
	p.Encap = &model.EncapHeader{SrcSwitch: 1, DstSwitch: 9}
	m := &PacketIn{Switch: 1, Reason: ReasonFalsePositive, Packet: p}
	got, ok := roundTrip(t, m, 8).(*PacketIn)
	if !ok || !reflect.DeepEqual(got, m) {
		t.Errorf("encap PacketIn round trip = %+v, want %+v", got, m)
	}
}

func TestARPPacketRoundTrip(t *testing.T) {
	p := samplePacket()
	p.Ether = model.EtherTypeARP
	p.ARPOp = model.ARPRequest
	p.ARPTarget = model.HostIP(20)
	p.DstMAC = model.BroadcastMAC
	m := &PacketIn{Switch: 3, Reason: ReasonARP, Packet: p}
	got, ok := roundTrip(t, m, 9).(*PacketIn)
	if !ok || !reflect.DeepEqual(got, m) {
		t.Errorf("ARP PacketIn round trip = %+v, want %+v", got, m)
	}
}

func TestPacketOutRoundTrip(t *testing.T) {
	m := &PacketOut{
		Actions: []Action{Output(3), Encap(12), Flood()},
		Packet:  samplePacket(),
	}
	got, ok := roundTrip(t, m, 11).(*PacketOut)
	if !ok || !reflect.DeepEqual(got, m) {
		t.Errorf("PacketOut round trip = %+v, want %+v", got, m)
	}
}

func TestFlowModRoundTrip(t *testing.T) {
	m := &FlowMod{
		Command:     FlowAdd,
		Match:       ExactDst(model.HostMAC(5), 3),
		Priority:    100,
		IdleTimeout: 30 * time.Second,
		HardTimeout: 5 * time.Minute,
		Actions:     []Action{Encap(77)},
	}
	got, ok := roundTrip(t, m, 13).(*FlowMod)
	if !ok || !reflect.DeepEqual(got, m) {
		t.Errorf("FlowMod round trip = %+v, want %+v", got, m)
	}
}

func TestFlowRemovedRoundTrip(t *testing.T) {
	m := &FlowRemoved{Match: ExactDst(model.HostMAC(5), 1), Priority: 10, Packets: 1000, Bytes: 1 << 30}
	got, ok := roundTrip(t, m, 14).(*FlowRemoved)
	if !ok || !reflect.DeepEqual(got, m) {
		t.Errorf("FlowRemoved round trip = %+v, want %+v", got, m)
	}
}

func TestStatsRoundTrip(t *testing.T) {
	roundTrip(t, &StatsRequest{}, 15)
	m := &StatsReply{
		Switch: 4, FlowCount: 9, PacketsSeen: 100, BytesSeen: 200,
		LFIBEntries: 24, GFIBFilters: 45, GFIBBytes: 92160, EncapPackets: 88,
	}
	got, ok := roundTrip(t, m, 16).(*StatsReply)
	if !ok || !reflect.DeepEqual(got, m) {
		t.Errorf("StatsReply round trip = %+v, want %+v", got, m)
	}
}

func TestGroupConfigRoundTrip(t *testing.T) {
	m := &GroupConfig{
		Group:             3,
		Members:           []model.SwitchID{1, 2, 5},
		Designated:        2,
		Backups:           []model.SwitchID{5},
		RingPrev:          5,
		RingNext:          1,
		SyncInterval:      10 * time.Second,
		KeepAliveInterval: time.Second,
		Version:           42,
	}
	got, ok := roundTrip(t, m, 17).(*GroupConfig)
	if !ok || !reflect.DeepEqual(got, m) {
		t.Errorf("GroupConfig round trip = %+v, want %+v", got, m)
	}
}

func TestLFIBUpdateRoundTrip(t *testing.T) {
	m := &LFIBUpdate{
		Origin: 9,
		Full:   true,
		Entries: []LFIBEntry{
			{MAC: model.HostMAC(1), IP: model.HostIP(1), VLAN: 2},
			{MAC: model.HostMAC(2), IP: model.HostIP(2), VLAN: 2},
		},
		Version: 5,
	}
	got, ok := roundTrip(t, m, 18).(*LFIBUpdate)
	if !ok || !reflect.DeepEqual(got, m) {
		t.Errorf("LFIBUpdate round trip = %+v, want %+v", got, m)
	}
}

func TestGFIBUpdateRoundTrip(t *testing.T) {
	m := &GFIBUpdate{
		Group: 2,
		Filters: []GFIBFilter{
			{Switch: 1, Filter: []byte{1, 2, 3}},
			{Switch: 4, Filter: []byte{}},
		},
		Version: 6,
	}
	got, ok := roundTrip(t, m, 19).(*GFIBUpdate)
	if !ok {
		t.Fatal("wrong type")
	}
	if got.Group != m.Group || got.Version != m.Version || len(got.Filters) != 2 {
		t.Errorf("GFIBUpdate round trip = %+v, want %+v", got, m)
	}
	if !bytes.Equal(got.Filters[0].Filter, []byte{1, 2, 3}) || got.Filters[0].Switch != 1 {
		t.Errorf("filter 0 = %+v", got.Filters[0])
	}
}

func TestStateReportRoundTrip(t *testing.T) {
	m := &StateReport{
		Group: 1,
		LFIBs: []LFIBUpdate{
			{Origin: 2, Entries: []LFIBEntry{{MAC: model.HostMAC(3), IP: model.HostIP(3), VLAN: 1}}, Version: 1},
			{Origin: 5, Full: true, Version: 2},
		},
		Pairs:   []PairStat{{A: 2, B: 5, NewFlows: 120}},
		Version: 7,
	}
	got, ok := roundTrip(t, m, 20).(*StateReport)
	if !ok || !reflect.DeepEqual(got, m) {
		t.Errorf("StateReport round trip = %+v, want %+v", got, m)
	}
}

func TestKeepAliveAndARPRelayRoundTrip(t *testing.T) {
	ka := &KeepAlive{From: 6, Seq: 99}
	gotKA, ok := roundTrip(t, ka, 21).(*KeepAlive)
	if !ok || !reflect.DeepEqual(gotKA, ka) {
		t.Errorf("KeepAlive round trip = %+v, want %+v", gotKA, ka)
	}
	p := samplePacket()
	p.Ether = model.EtherTypeARP
	p.ARPOp = model.ARPRequest
	ar := &ARPRelay{Tenant: 8, Packet: p}
	gotAR, ok := roundTrip(t, ar, 22).(*ARPRelay)
	if !ok || !reflect.DeepEqual(gotAR, ar) {
		t.Errorf("ARPRelay round trip = %+v, want %+v", gotAR, ar)
	}
}

func TestConfigAckRoundTrip(t *testing.T) {
	ack := &ConfigAck{From: 7, Version: 12345}
	got, ok := roundTrip(t, ack, 23).(*ConfigAck)
	if !ok || !reflect.DeepEqual(got, ack) {
		t.Errorf("ConfigAck round trip = %+v, want %+v", got, ack)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("Decode(nil) succeeded")
	}
	if _, _, err := Decode(make([]byte, 5)); err == nil {
		t.Error("Decode(short) succeeded")
	}
	data, err := Encode(&Hello{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[0] = 0x01 // plain OpenFlow version, not the LazyCtrl extension
	if _, _, err := Decode(bad); err == nil {
		t.Error("Decode with wrong version succeeded")
	}
	bad = append([]byte(nil), data...)
	bad[1] = 0xee
	if _, _, err := Decode(bad); err == nil {
		t.Error("Decode with unknown type succeeded")
	}
	// Length mismatch.
	bad = append(append([]byte(nil), data...), 0xff)
	if _, _, err := Decode(bad); err == nil {
		t.Error("Decode with trailing bytes succeeded")
	}
}

func TestDecodeTruncatedBodies(t *testing.T) {
	msgs := []Message{
		&PacketIn{Switch: 1, Reason: ReasonNoMatch, Packet: samplePacket()},
		&FlowMod{Command: FlowAdd, Match: ExactDst(model.HostMAC(1), 1), Actions: []Action{Output(1)}},
		&GroupConfig{Group: 1, Members: []model.SwitchID{1, 2}},
		&LFIBUpdate{Origin: 1, Entries: []LFIBEntry{{MAC: model.HostMAC(1)}}},
		&StateReport{Group: 1, Pairs: []PairStat{{A: 1, B: 2, NewFlows: 3}}},
	}
	for _, m := range msgs {
		data, err := Encode(m, 5)
		if err != nil {
			t.Fatalf("Encode(%v): %v", m.MsgType(), err)
		}
		// Truncate the body but fix up the header length so only body
		// parsing can catch it.
		for cut := headerLen; cut < len(data); cut += 3 {
			trunc := append([]byte(nil), data[:cut]...)
			trunc[2], trunc[3], trunc[4], trunc[5] = 0, 0, byte(cut>>8), byte(cut)
			if _, _, err := Decode(trunc); err == nil {
				t.Errorf("%v: truncation to %d bytes decoded successfully", m.MsgType(), cut)
			}
		}
	}
}

func TestMatchSemantics(t *testing.T) {
	p := samplePacket()
	all := Match{Wildcards: WildcardAll}
	if !all.Matches(&p) {
		t.Error("wildcard-all match failed")
	}
	exact := ExactDst(p.DstMAC, p.VLAN)
	if !exact.Matches(&p) {
		t.Error("exact dst match failed")
	}
	other := ExactDst(model.HostMAC(99), p.VLAN)
	if other.Matches(&p) {
		t.Error("mismatched dst MAC matched")
	}
	wrongVLAN := ExactDst(p.DstMAC, p.VLAN+1)
	if wrongVLAN.Matches(&p) {
		t.Error("mismatched VLAN matched")
	}
	srcMatch := Match{Wildcards: WildcardAll &^ WildcardSrcMAC, SrcMAC: p.SrcMAC}
	if !srcMatch.Matches(&p) {
		t.Error("src match failed")
	}
	ipMatch := Match{Wildcards: WildcardAll &^ (WildcardSrcIP | WildcardDstIP), SrcIP: p.SrcIP, DstIP: p.DstIP}
	if !ipMatch.Matches(&p) {
		t.Error("IP match failed")
	}
	etherMatch := Match{Wildcards: WildcardAll &^ WildcardEther, Ether: model.EtherTypeARP}
	if etherMatch.Matches(&p) {
		t.Error("ARP ether match hit an IPv4 packet")
	}
}

func TestActionStrings(t *testing.T) {
	tests := []struct {
		a    Action
		want string
	}{
		{Output(3), "output:3"},
		{Flood(), "flood"},
		{Drop(), "drop"},
		{ToController(), "controller"},
		{Encap(9), "encap:S9"},
	}
	for _, tt := range tests {
		if got := tt.a.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestMsgTypeString(t *testing.T) {
	if TypePacketIn.String() != "PacketIn" {
		t.Errorf("String() = %q", TypePacketIn.String())
	}
	if MsgType(200).String() != "MsgType(200)" {
		t.Errorf("unknown String() = %q", MsgType(200).String())
	}
}

func TestPropertyEchoRoundTrip(t *testing.T) {
	f := func(data []byte, xid uint32) bool {
		m := &EchoRequest{Data: data}
		enc, err := Encode(m, xid)
		if err != nil {
			return false
		}
		dec, gotXID, err := Decode(enc)
		if err != nil || gotXID != xid {
			return false
		}
		got, ok := dec.(*EchoRequest)
		return ok && bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLFIBUpdateRoundTrip(t *testing.T) {
	f := func(origin uint32, macs []uint64, version uint64, full bool) bool {
		m := &LFIBUpdate{Origin: model.SwitchID(origin), Full: full, Version: version}
		for _, raw := range macs {
			m.Entries = append(m.Entries, LFIBEntry{
				MAC:  model.MACFromUint64(raw),
				IP:   model.IP(raw),
				VLAN: model.VLAN(raw & 0xfff),
			})
		}
		enc, err := Encode(m, 1)
		if err != nil {
			return false
		}
		dec, _, err := Decode(enc)
		if err != nil {
			return false
		}
		got, ok := dec.(*LFIBUpdate)
		if !ok || got.Origin != m.Origin || got.Full != m.Full || got.Version != m.Version {
			return false
		}
		if len(got.Entries) != len(m.Entries) {
			return false
		}
		for i := range got.Entries {
			if got.Entries[i] != m.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodePacketIn(b *testing.B) {
	m := &PacketIn{Switch: 42, Reason: ReasonNoMatch, Packet: samplePacket()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(m, uint32(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodePacketIn(b *testing.B) {
	m := &PacketIn{Switch: 42, Reason: ReasonNoMatch, Packet: samplePacket()}
	data, err := Encode(m, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
