package openflow

import (
	"fmt"

	"lazyctrl/internal/model"
)

// Wildcard flags select which Match fields are ignored.
type Wildcard uint32

// Wildcard bits.
const (
	WildcardSrcMAC Wildcard = 1 << iota
	WildcardDstMAC
	WildcardVLAN
	WildcardEther
	WildcardSrcIP
	WildcardDstIP

	// WildcardAll ignores every field (matches everything).
	WildcardAll = WildcardSrcMAC | WildcardDstMAC | WildcardVLAN |
		WildcardEther | WildcardSrcIP | WildcardDstIP
)

// Match is an OpenFlow v1.0-style flow match over the fields the
// LazyCtrl datapath inspects.
type Match struct {
	Wildcards Wildcard
	SrcMAC    model.MAC
	DstMAC    model.MAC
	VLAN      model.VLAN
	Ether     model.EtherType
	SrcIP     model.IP
	DstIP     model.IP
}

// ExactDst returns a match on (dstMAC, vlan) with everything else
// wildcarded — the shape of LazyCtrl's inter-group forwarding rules.
func ExactDst(dst model.MAC, vlan model.VLAN) Match {
	return Match{
		Wildcards: WildcardAll &^ (WildcardDstMAC | WildcardVLAN),
		DstMAC:    dst,
		VLAN:      vlan,
	}
}

// Matches reports whether the packet satisfies the match.
func (m Match) Matches(p *model.Packet) bool {
	if m.Wildcards&WildcardSrcMAC == 0 && p.SrcMAC != m.SrcMAC {
		return false
	}
	if m.Wildcards&WildcardDstMAC == 0 && p.DstMAC != m.DstMAC {
		return false
	}
	if m.Wildcards&WildcardVLAN == 0 && p.VLAN != m.VLAN {
		return false
	}
	if m.Wildcards&WildcardEther == 0 && p.Ether != m.Ether {
		return false
	}
	if m.Wildcards&WildcardSrcIP == 0 && p.SrcIP != m.SrcIP {
		return false
	}
	if m.Wildcards&WildcardDstIP == 0 && p.DstIP != m.DstIP {
		return false
	}
	return true
}

func (m Match) encode(dst []byte) []byte {
	dst = putU32(dst, uint32(m.Wildcards))
	dst = append(dst, m.SrcMAC[:]...)
	dst = append(dst, m.DstMAC[:]...)
	dst = putU16(dst, uint16(m.VLAN))
	dst = putU16(dst, uint16(m.Ether))
	dst = putU32(dst, uint32(m.SrcIP))
	dst = putU32(dst, uint32(m.DstIP))
	return dst
}

func decodeMatch(r *reader) Match {
	var m Match
	m.Wildcards = Wildcard(r.u32())
	m.SrcMAC = r.mac()
	m.DstMAC = r.mac()
	m.VLAN = model.VLAN(r.u16())
	m.Ether = model.EtherType(r.u16())
	m.SrcIP = model.IP(r.u32())
	m.DstIP = model.IP(r.u32())
	return m
}

// ActionType tags a flow action.
type ActionType uint8

// Action types. ActionTypeEncap is the LazyCtrl extension to OpenFlow
// v1.0 (§IV-B): encapsulate and forward over the underlay to a remote
// edge switch.
const (
	ActionTypeOutput ActionType = iota + 1
	ActionTypeFlood
	ActionTypeDrop
	ActionTypeController
	ActionTypeEncap
)

// Action is a flow-table action.
type Action struct {
	Type ActionType
	// Port is the output port for ActionTypeOutput.
	Port uint16
	// Remote is the target edge switch for ActionTypeEncap.
	Remote model.SwitchID
}

// Output returns an output-to-port action.
func Output(port uint16) Action { return Action{Type: ActionTypeOutput, Port: port} }

// Encap returns the LazyCtrl encapsulation action targeting a remote
// edge switch.
func Encap(remote model.SwitchID) Action { return Action{Type: ActionTypeEncap, Remote: remote} }

// Flood returns a flood action.
func Flood() Action { return Action{Type: ActionTypeFlood} }

// Drop returns a drop action.
func Drop() Action { return Action{Type: ActionTypeDrop} }

// ToController returns a send-to-controller action.
func ToController() Action { return Action{Type: ActionTypeController} }

// String renders the action.
func (a Action) String() string {
	switch a.Type {
	case ActionTypeOutput:
		return fmt.Sprintf("output:%d", a.Port)
	case ActionTypeFlood:
		return "flood"
	case ActionTypeDrop:
		return "drop"
	case ActionTypeController:
		return "controller"
	case ActionTypeEncap:
		return "encap:" + a.Remote.String()
	default:
		return fmt.Sprintf("action(%d)", a.Type)
	}
}

func (a Action) encode(dst []byte) []byte {
	dst = append(dst, uint8(a.Type))
	dst = putU16(dst, a.Port)
	dst = putU32(dst, uint32(a.Remote))
	return dst
}

func decodeAction(r *reader) Action {
	var a Action
	a.Type = ActionType(r.u8())
	a.Port = r.u16()
	a.Remote = model.SwitchID(r.u32())
	return a
}

func encodeActions(dst []byte, actions []Action) []byte {
	dst = putU16(dst, uint16(len(actions)))
	for _, a := range actions {
		dst = a.encode(dst)
	}
	return dst
}

func decodeActions(r *reader) []Action {
	n := int(r.u16())
	// Each action is exactly 7 bytes (type u8 + port u16 + remote u32),
	// so the count cannot exceed remain()/7; the divide form cannot
	// overflow. The earlier `n > r.remain()` sanity bound let a crafted
	// count over-allocate by up to 7x before the per-field reads failed.
	if n == 0 || n > r.remain()/7 {
		if n != 0 {
			r.fail()
		}
		return nil
	}
	actions := make([]Action, 0, n)
	for i := 0; i < n; i++ {
		actions = append(actions, decodeAction(r))
	}
	return actions
}

// FlowModCommand selects the FlowMod operation.
type FlowModCommand uint8

// FlowMod commands.
const (
	FlowAdd FlowModCommand = iota + 1
	FlowModify
	FlowDelete
)
