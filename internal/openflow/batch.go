package openflow

import "fmt"

// Batch coalesces several control messages to one destination into a
// single OpenFlow message, so a regroup round encodes and ships at most
// one message per switch instead of one per change (group config, rule
// preloads, L-FIB preloads). Receivers apply the contained messages in
// order, which preserves the exact semantics of the unbatched stream —
// e.g. a GroupConfig that resets G-FIB state is applied before the
// L-FIB preloads that repopulate it.
//
// Wire format of the body:
//
//	uvarint generation, u32 count, then per message: u8 type,
//	u32 body length, body bytes
//
// Batches do not nest: a batch inside a batch fails to decode. That
// bounds decoder recursion and keeps "one message per destination per
// round" meaningful.
type Batch struct {
	// Generation fences the whole batch at once: a receiver whose
	// highest-seen cluster generation exceeds it rejects the batch
	// before applying any contained message (no partial apply). 0 =
	// unfenced.
	Generation uint64
	Msgs       []Message
}

// MsgType implements Message.
func (*Batch) MsgType() MsgType { return TypeBatch }

func (m *Batch) encodeBody(dst []byte) []byte {
	dst = putUvarint(dst, m.Generation)
	dst = putU32(dst, uint32(len(m.Msgs)))
	for _, sub := range m.Msgs {
		dst = append(dst, uint8(sub.MsgType()))
		// Reserve the length word, encode, then backfill.
		lenAt := len(dst)
		dst = putU32(dst, 0)
		dst = sub.encodeBody(dst)
		body := len(dst) - lenAt - 4
		dst[lenAt] = byte(body >> 24)
		dst[lenAt+1] = byte(body >> 16)
		dst[lenAt+2] = byte(body >> 8)
		dst[lenAt+3] = byte(body)
	}
	return dst
}

func (m *Batch) decodeBody(src []byte) error {
	r := &reader{src: src}
	m.Generation = r.uvarint()
	n := int(r.u32())
	if n*5 > r.remain() { // each sub-message costs at least type+length
		r.fail()
		return ErrTruncated
	}
	if n > 0 {
		m.Msgs = make([]Message, 0, n)
	}
	for i := 0; i < n; i++ {
		t := MsgType(r.u8())
		body := r.bytes(int(r.u32()))
		if r.err != nil {
			return r.err
		}
		if t == TypeBatch {
			return fmt.Errorf("openflow: nested batch")
		}
		sub, err := newMessage(t)
		if err != nil {
			return err
		}
		if err := sub.decodeBody(body); err != nil {
			return fmt.Errorf("openflow: batch item %d (%v): %w", i, t, err)
		}
		m.Msgs = append(m.Msgs, sub)
	}
	return r.done()
}
