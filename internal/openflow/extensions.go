package openflow

import (
	"time"

	"lazyctrl/internal/model"
)

// GroupConfig is sent by the controller to every switch at setup and
// after each regrouping (§III-D1): it carries the group membership, the
// designated switch and its backups, the switch's neighbors on the
// failure-detection wheel, and the timing parameters for group
// synchronization and keep-alives.
type GroupConfig struct {
	Group      model.GroupID
	Members    []model.SwitchID
	Designated model.SwitchID
	Backups    []model.SwitchID
	// RingPrev and RingNext are the receiver's neighbors on the
	// failure-detection wheel (ordered by management MAC).
	RingPrev model.SwitchID
	RingNext model.SwitchID
	// SyncInterval is the group state synchronization period; KeepAlive
	// is the wheel heartbeat period.
	SyncInterval      time.Duration
	KeepAliveInterval time.Duration
	// Version is the grouping version this configuration belongs to.
	Version uint64
	// Generation is the sender's cluster generation (0 = unfenced; only
	// controller replicas stamp it). Receivers reject configs fenced
	// behind their highest-seen generation.
	Generation uint64
}

// MsgType implements Message.
func (*GroupConfig) MsgType() MsgType { return TypeGroupConfig }

func encodeSwitches(dst []byte, ids []model.SwitchID) []byte {
	dst = putU32(dst, uint32(len(ids)))
	for _, id := range ids {
		dst = putU32(dst, uint32(id))
	}
	return dst
}

func decodeSwitches(r *reader) []model.SwitchID {
	n := int(r.u32())
	if n == 0 || n*4 > r.remain() {
		if n != 0 {
			r.fail()
		}
		return nil
	}
	ids := make([]model.SwitchID, 0, n)
	for i := 0; i < n; i++ {
		ids = append(ids, model.SwitchID(r.u32()))
	}
	return ids
}

func (m *GroupConfig) encodeBody(dst []byte) []byte {
	dst = putU32(dst, uint32(m.Group))
	dst = encodeSwitches(dst, m.Members)
	dst = putU32(dst, uint32(m.Designated))
	dst = encodeSwitches(dst, m.Backups)
	dst = putU32(dst, uint32(m.RingPrev))
	dst = putU32(dst, uint32(m.RingNext))
	dst = putU64(dst, uint64(m.SyncInterval))
	dst = putU64(dst, uint64(m.KeepAliveInterval))
	dst = putU64(dst, m.Version)
	return putUvarint(dst, m.Generation)
}

func (m *GroupConfig) decodeBody(src []byte) error {
	r := &reader{src: src}
	m.Group = model.GroupID(r.u32())
	m.Members = decodeSwitches(r)
	m.Designated = model.SwitchID(r.u32())
	m.Backups = decodeSwitches(r)
	m.RingPrev = model.SwitchID(r.u32())
	m.RingNext = model.SwitchID(r.u32())
	m.SyncInterval = time.Duration(r.u64())
	m.KeepAliveInterval = time.Duration(r.u64())
	m.Version = r.u64()
	m.Generation = r.uvarint()
	return r.done()
}

// LFIBEntry is one host-location binding.
type LFIBEntry struct {
	MAC  model.MAC
	IP   model.IP
	VLAN model.VLAN
}

func encodeLFIBEntries(dst []byte, entries []LFIBEntry) []byte {
	dst = putU32(dst, uint32(len(entries)))
	for _, e := range entries {
		dst = append(dst, e.MAC[:]...)
		dst = putU32(dst, uint32(e.IP))
		dst = putU16(dst, uint16(e.VLAN))
	}
	return dst
}

func decodeLFIBEntries(r *reader) []LFIBEntry {
	n := int(r.u32())
	if n == 0 || n*12 > r.remain() {
		if n != 0 {
			r.fail()
		}
		return nil
	}
	entries := make([]LFIBEntry, 0, n)
	for i := 0; i < n; i++ {
		var e LFIBEntry
		e.MAC = r.mac()
		e.IP = model.IP(r.u32())
		e.VLAN = model.VLAN(r.u16())
		entries = append(entries, e)
	}
	return entries
}

// LFIBUpdate propagates a switch's L-FIB over peer links (switch →
// designated switch → group peers) and state links (designated switch →
// controller), per §III-D3.
type LFIBUpdate struct {
	Origin model.SwitchID
	// Full marks a complete snapshot (replaces prior state); otherwise
	// the entries are increments.
	Full    bool
	Entries []LFIBEntry
	Version uint64
	// Generation fences controller-issued preloads (0 = unfenced; edge
	// and designated-switch senders leave it 0).
	Generation uint64
}

// MsgType implements Message.
func (*LFIBUpdate) MsgType() MsgType { return TypeLFIBUpdate }

func (m *LFIBUpdate) encodeBody(dst []byte) []byte {
	dst = putU32(dst, uint32(m.Origin))
	if m.Full {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = encodeLFIBEntries(dst, m.Entries)
	dst = putU64(dst, m.Version)
	return putUvarint(dst, m.Generation)
}

func (m *LFIBUpdate) decodeBody(src []byte) error {
	r := &reader{src: src}
	m.Origin = model.SwitchID(r.u32())
	m.Full = r.u8() == 1
	m.Entries = decodeLFIBEntries(r)
	m.Version = r.u64()
	m.Generation = r.uvarint()
	return r.done()
}

// GFIBFilter pairs a peer switch with the serialized Bloom filter of
// its L-FIB and the origin's state version the filter was built at.
// The version seeds the receiver's delta tracking: a later GFIBDelta
// applies only on top of the exact version the receiver holds.
type GFIBFilter struct {
	Switch  model.SwitchID
	Filter  []byte
	Version uint64
}

// GFIBUpdate distributes full Bloom filters to group members so they
// can rebuild their G-FIBs, driven by the designated switch (or by the
// controller after regrouping). It is the full-state half of the
// protocol; GFIBDelta is the incremental half.
type GFIBUpdate struct {
	Group   model.GroupID
	Filters []GFIBFilter
	Version uint64
	// Generation fences controller-issued preloads (0 = unfenced;
	// designated-switch dissemination leaves it 0).
	Generation uint64
}

// MsgType implements Message.
func (*GFIBUpdate) MsgType() MsgType { return TypeGFIBUpdate }

func (m *GFIBUpdate) encodeBody(dst []byte) []byte {
	dst = putU32(dst, uint32(m.Group))
	dst = putU32(dst, uint32(len(m.Filters)))
	for _, f := range m.Filters {
		dst = putU32(dst, uint32(f.Switch))
		dst = putU64(dst, f.Version)
		dst = putU32(dst, uint32(len(f.Filter)))
		dst = append(dst, f.Filter...)
	}
	dst = putU64(dst, m.Version)
	return putUvarint(dst, m.Generation)
}

func (m *GFIBUpdate) decodeBody(src []byte) error {
	r := &reader{src: src}
	m.Group = model.GroupID(r.u32())
	n := int(r.u32())
	if n*16 > r.remain() { // each filter costs at least switch+version+length
		r.fail()
		return ErrTruncated
	}
	m.Filters = make([]GFIBFilter, 0, n)
	for i := 0; i < n; i++ {
		var f GFIBFilter
		f.Switch = model.SwitchID(r.u32())
		f.Version = r.u64()
		f.Filter = r.bytes(int(r.u32()))
		m.Filters = append(m.Filters, f)
	}
	m.Version = r.u64()
	m.Generation = r.uvarint()
	return r.done()
}

// PairStat reports the number of new flows observed between two edge
// switches during the last reporting window; the controller aggregates
// these into the intensity matrix that drives SGI.
type PairStat struct {
	A, B     model.SwitchID
	NewFlows uint32
}

// StateReport is sent by a designated switch to the controller over the
// state link: the aggregated L-FIBs of the group plus traffic
// statistics.
//
// The pair-statistics section is size-adaptive on the wire: a report
// whose pairs concentrate on few distinct switches (the steady state —
// a group's members pairwise, ~n²/2 pairs over n switches) encodes a
// dense switch-index table once (u32 per distinct switch) and each
// pair as two u16 indexes plus the count (8 bytes instead of 12); a
// sparse report where the table would not pay for itself keeps the
// flat u32-pair form. The encoder computes both sizes and flags the
// cheaper one in a leading byte, so no report ever grows.
type StateReport struct {
	Group   model.GroupID
	LFIBs   []LFIBUpdate
	Pairs   []PairStat
	Version uint64
}

// MsgType implements Message.
func (*StateReport) MsgType() MsgType { return TypeStateReport }

// Pair-section encodings (the leading flag byte).
const (
	pairEncFlat  = 0 // u32 A, u32 B, u32 count per pair
	pairEncDense = 1 // switch table + u16 indexes per pair
)

// maxDenseSwitches bounds the dense table: pair indexes travel as u16
// and so does the table's length field, whose largest representable
// value is 65,535 (a 65,536-entry table would wrap the length to 0).
const maxDenseSwitches = 1<<16 - 1

// pairSwitchTable builds the distinct-switch table of a pair list in
// first-appearance order, or nil when the dense form is not applicable
// (too many distinct switches) or not smaller than the flat form.
func pairSwitchTable(pairs []PairStat) ([]model.SwitchID, map[model.SwitchID]uint16) {
	// Dense saves 4 bytes/pair against ≥2 table entries + the length:
	// with fewer than 3 pairs it can never win, so don't even allocate
	// the table (reports without pair stats are the steady state of
	// the dissemination path, and its alloc budget is gated).
	if len(pairs) < 3 {
		return nil, nil
	}
	table := make([]model.SwitchID, 0, 16)
	index := make(map[model.SwitchID]uint16, 16)
	intern := func(id model.SwitchID) bool {
		if _, ok := index[id]; ok {
			return true
		}
		if len(table) >= maxDenseSwitches {
			return false
		}
		index[id] = uint16(len(table))
		table = append(table, id)
		return true
	}
	for _, p := range pairs {
		if !intern(p.A) || !intern(p.B) {
			return nil, nil
		}
	}
	// Dense: 2 (table len) + 4·switches + 8·pairs. Flat: 12·pairs.
	if 2+4*len(table)+8*len(pairs) >= 12*len(pairs) {
		return nil, nil
	}
	return table, index
}

// StateReport's count fields travel as varints, and the pair-section
// flag byte is omitted entirely for the empty pair list (the steady
// state of the report path between traffic windows): the "flag/count
// bytes" of the ROADMAP wire-byte headroom item cost two bytes total
// in the common case instead of nine.
func (m *StateReport) encodeBody(dst []byte) []byte {
	dst = putU32(dst, uint32(m.Group))
	dst = putUvarint(dst, uint64(len(m.LFIBs)))
	for i := range m.LFIBs {
		inner := m.LFIBs[i].encodeBody(nil)
		dst = putUvarint(dst, uint64(len(inner)))
		dst = append(dst, inner...)
	}
	dst = putUvarint(dst, uint64(len(m.Pairs)))
	if len(m.Pairs) == 0 {
		return putU64(dst, m.Version)
	}
	if table, index := pairSwitchTable(m.Pairs); table != nil {
		dst = append(dst, pairEncDense)
		dst = putU16(dst, uint16(len(table)))
		for _, id := range table {
			dst = putU32(dst, uint32(id))
		}
		for _, p := range m.Pairs {
			dst = putU16(dst, index[p.A])
			dst = putU16(dst, index[p.B])
			dst = putU32(dst, p.NewFlows)
		}
	} else {
		dst = append(dst, pairEncFlat)
		for _, p := range m.Pairs {
			dst = putU32(dst, uint32(p.A))
			dst = putU32(dst, uint32(p.B))
			dst = putU32(dst, p.NewFlows)
		}
	}
	return putU64(dst, m.Version)
}

func (m *StateReport) decodeBody(src []byte) error {
	r := &reader{src: src}
	m.Group = model.GroupID(r.u32())
	// Varint counts are not wire-bounded; divide so a crafted count
	// cannot wrap the guard into a makeslice panic (see delta.go).
	n := int(r.uvarint())
	if n < 0 || n > r.remain()/2 { // each L-FIB costs ≥ its varint length prefix + body
		r.fail()
		return ErrTruncated
	}
	if n > 0 {
		m.LFIBs = make([]LFIBUpdate, 0, n)
	}
	for i := 0; i < n; i++ {
		body := r.bytes(int(r.uvarint()))
		if r.err != nil {
			return r.err
		}
		var u LFIBUpdate
		if err := u.decodeBody(body); err != nil {
			return err
		}
		m.LFIBs = append(m.LFIBs, u)
	}
	np := int(r.uvarint())
	if np < 0 || np > r.remain() {
		r.fail()
		return ErrTruncated
	}
	if np == 0 {
		m.Version = r.u64()
		return r.done()
	}
	enc := r.u8()
	switch enc {
	case pairEncDense:
		nt := int(r.u16())
		if nt*4 > r.remain() || np > r.remain()/8 {
			r.fail()
			return ErrTruncated
		}
		table := make([]model.SwitchID, nt)
		for i := range table {
			table[i] = model.SwitchID(r.u32())
		}
		if np > 0 {
			m.Pairs = make([]PairStat, 0, np)
		}
		for i := 0; i < np; i++ {
			ai, bi := int(r.u16()), int(r.u16())
			flows := r.u32()
			if ai >= nt || bi >= nt {
				r.fail()
				return ErrTruncated
			}
			m.Pairs = append(m.Pairs, PairStat{A: table[ai], B: table[bi], NewFlows: flows})
		}
	case pairEncFlat:
		if np > r.remain()/12 {
			r.fail()
			return ErrTruncated
		}
		if np > 0 {
			m.Pairs = make([]PairStat, 0, np)
		}
		for i := 0; i < np; i++ {
			var p PairStat
			p.A = model.SwitchID(r.u32())
			p.B = model.SwitchID(r.u32())
			p.NewFlows = r.u32()
			m.Pairs = append(m.Pairs, p)
		}
	default:
		if r.err == nil {
			r.fail()
			return ErrTruncated
		}
	}
	m.Version = r.u64()
	return r.done()
}

// KeepAlive is the failure-detection wheel heartbeat (§III-E1), sent
// from upstream to downstream switches and from the controller to each
// switch.
type KeepAlive struct {
	From model.SwitchID
	Seq  uint64
	// Generation is the sender's cluster generation (0 on the wheel —
	// only controller replicas stamp it). Edges adopt a higher
	// generation from it and reject stale-master heartbeats behind it.
	Generation uint64
}

// MsgType implements Message.
func (*KeepAlive) MsgType() MsgType { return TypeKeepAlive }

func (m *KeepAlive) encodeBody(dst []byte) []byte {
	dst = putU32(dst, uint32(m.From))
	dst = putU64(dst, m.Seq)
	return putUvarint(dst, m.Generation)
}

func (m *KeepAlive) decodeBody(src []byte) error {
	r := &reader{src: src}
	m.From = model.SwitchID(r.u32())
	m.Seq = r.u64()
	m.Generation = r.uvarint()
	return r.done()
}

// ARPRelay carries an ARP request from the controller to the designated
// switches of the groups hosting the relevant tenant (level-iii of live
// state dissemination, §III-D3).
type ARPRelay struct {
	Tenant model.TenantID
	Packet model.Packet
}

// MsgType implements Message.
func (*ARPRelay) MsgType() MsgType { return TypeARPRelay }

func (m *ARPRelay) encodeBody(dst []byte) []byte {
	dst = putU32(dst, uint32(m.Tenant))
	return encodePacket(dst, &m.Packet)
}

func (m *ARPRelay) decodeBody(src []byte) error {
	r := &reader{src: src}
	m.Tenant = model.TenantID(r.u32())
	m.Packet = decodePacket(r)
	return r.done()
}
