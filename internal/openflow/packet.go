package openflow

import (
	"time"

	"lazyctrl/internal/model"
)

// Packet wire layout (fixed-size header followed by an optional encap
// trailer):
//
//	srcMAC(6) dstMAC(6) srcIP(4) dstIP(4) vlan(2) ether(2)
//	arpOp(1) arpTarget(4) bytes(4) flowSeq(4) injected(8) encapFlag(1)
//	[srcSwitch(4) dstSwitch(4)]   — present when encapFlag == 1
const packetBaseLen = 6 + 6 + 4 + 4 + 2 + 2 + 1 + 4 + 4 + 4 + 8 + 1

func encodePacket(dst []byte, p *model.Packet) []byte {
	dst = append(dst, p.SrcMAC[:]...)
	dst = append(dst, p.DstMAC[:]...)
	dst = putU32(dst, uint32(p.SrcIP))
	dst = putU32(dst, uint32(p.DstIP))
	dst = putU16(dst, uint16(p.VLAN))
	dst = putU16(dst, uint16(p.Ether))
	dst = append(dst, uint8(p.ARPOp))
	dst = putU32(dst, uint32(p.ARPTarget))
	dst = putU32(dst, uint32(p.Bytes))
	dst = putU32(dst, uint32(p.FlowSeq))
	dst = putU64(dst, uint64(p.Injected))
	if p.Encap != nil {
		dst = append(dst, 1)
		dst = putU32(dst, uint32(p.Encap.SrcSwitch))
		dst = putU32(dst, uint32(p.Encap.DstSwitch))
	} else {
		dst = append(dst, 0)
	}
	return dst
}

func decodePacket(r *reader) model.Packet {
	var p model.Packet
	p.SrcMAC = r.mac()
	p.DstMAC = r.mac()
	p.SrcIP = model.IP(r.u32())
	p.DstIP = model.IP(r.u32())
	p.VLAN = model.VLAN(r.u16())
	p.Ether = model.EtherType(r.u16())
	p.ARPOp = model.ARPOp(r.u8())
	p.ARPTarget = model.IP(r.u32())
	p.Bytes = int(r.u32())
	p.FlowSeq = int(r.u32())
	p.Injected = time.Duration(r.u64())
	if r.u8() == 1 {
		p.Encap = &model.EncapHeader{
			SrcSwitch: model.SwitchID(r.u32()),
			DstSwitch: model.SwitchID(r.u32()),
		}
	}
	return p
}
