package openflow

import "lazyctrl/internal/model"

// This file holds the controller-replication message set: the role
// handoff announcement and the primary→standby state-journal record.
// Both carry the cluster generation ID that fences stale masters; the
// generation rules (who stamps, who rejects, monotonicity) are
// documented in docs/robustness.md and docs/protocol.md.

// RoleAnnounce declares that the sending controller replica holds the
// master role at the carried cluster generation. The new primary
// broadcasts it to every edge switch (and its peer replica) on
// takeover; edges adopt the higher generation, redirect reports and
// PacketIn escalations to the announced master, and from then on
// reject any controller push fenced behind it. A replica receiving a
// RoleAnnounce with a higher generation steps down to standby.
type RoleAnnounce struct {
	// From is the announcing replica's node address.
	From model.SwitchID
	// Generation is the cluster generation the sender claims mastership
	// at. Generations only ever increase; 0 is never announced.
	Generation uint64
}

// TypeRoleAnnounce extends the LazyCtrl message set.
const TypeRoleAnnounce MsgType = 34

// MsgType implements Message.
func (*RoleAnnounce) MsgType() MsgType { return TypeRoleAnnounce }

func (m *RoleAnnounce) encodeBody(dst []byte) []byte {
	dst = putU32(dst, uint32(m.From))
	return putUvarint(dst, m.Generation)
}

func (m *RoleAnnounce) decodeBody(src []byte) error {
	r := &reader{src: src}
	m.From = model.SwitchID(r.u32())
	m.Generation = r.uvarint()
	return r.done()
}

// SyncKind discriminates the payload of a StateSyncRecord.
type SyncKind uint8

// Journal record kinds mirrored from primary to standby.
const (
	// SyncLFIB mirrors one switch's aggregated L-FIB state, in the same
	// full/increment form the designated switches report it (the
	// standby applies it through the identical fib.ApplyLFIB path).
	SyncLFIB SyncKind = iota + 1
	// SyncGrouping mirrors the full switch→group assignment after a
	// regroup (and on standby bootstrap).
	SyncGrouping
	// SyncTombstone mirrors a switch-death diagnosis: the standby drops
	// the switch's C-LIB state exactly like the primary did.
	SyncTombstone
)

// String names the record kind.
func (k SyncKind) String() string {
	switch k {
	case SyncLFIB:
		return "lfib"
	case SyncGrouping:
		return "grouping"
	case SyncTombstone:
		return "tombstone"
	default:
		return "unknown"
	}
}

// SyncAssign is one switch→group assignment inside a SyncGrouping
// record.
type SyncAssign struct {
	Switch model.SwitchID
	Group  model.GroupID
}

// StateSyncRecord is the primary→standby journal record: the same
// versioned increments the designated switches already emit, re-framed
// so the standby mirrors C-LIB, grouping, and version state without a
// second reporting channel. A standby applies records in arrival order
// and rejects any record fenced behind its highest-seen generation
// (a partitioned-then-healed stale primary cannot roll the standby
// back). On bootstrap the primary sends a full snapshot: one
// SyncGrouping plus one full SyncLFIB per live switch.
type StateSyncRecord struct {
	Kind SyncKind
	// Generation is the sender's cluster generation; the receiver
	// rejects records behind its highest-seen generation.
	Generation uint64
	// GroupingVersion is the sender's grouping version at journal time.
	GroupingVersion uint64

	// SyncLFIB / SyncTombstone payload: the subject switch and — for
	// SyncLFIB — its entries in LFIBUpdate form.
	Origin  model.SwitchID
	Full    bool
	Version uint64
	Entries []LFIBEntry

	// SyncGrouping payload: the full assignment.
	Assign []SyncAssign
}

// TypeStateSyncRecord extends the LazyCtrl message set.
const TypeStateSyncRecord MsgType = 35

// MsgType implements Message.
func (*StateSyncRecord) MsgType() MsgType { return TypeStateSyncRecord }

func (m *StateSyncRecord) encodeBody(dst []byte) []byte {
	dst = append(dst, uint8(m.Kind))
	dst = putUvarint(dst, m.Generation)
	dst = putUvarint(dst, m.GroupingVersion)
	dst = putU32(dst, uint32(m.Origin))
	if m.Full {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = encodeLFIBEntries(dst, m.Entries)
	dst = putU64(dst, m.Version)
	dst = putUvarint(dst, uint64(len(m.Assign)))
	for _, a := range m.Assign {
		dst = putU32(dst, uint32(a.Switch))
		dst = putU32(dst, uint32(a.Group))
	}
	return dst
}

func (m *StateSyncRecord) decodeBody(src []byte) error {
	r := &reader{src: src}
	m.Kind = SyncKind(r.u8())
	m.Generation = r.uvarint()
	m.GroupingVersion = r.uvarint()
	m.Origin = model.SwitchID(r.u32())
	m.Full = r.u8() == 1
	m.Entries = decodeLFIBEntries(r)
	m.Version = r.u64()
	// The assignment count travels as a varint, so divide instead of
	// multiplying (see GFIBDelta.decodeBody).
	n := int(r.uvarint())
	if n < 0 || n > r.remain()/8 { // each assignment costs two u32s
		r.fail()
		return ErrTruncated
	}
	if n > 0 {
		m.Assign = make([]SyncAssign, 0, n)
	}
	for i := 0; i < n; i++ {
		var a SyncAssign
		a.Switch = model.SwitchID(r.u32())
		a.Group = model.GroupID(r.u32())
		m.Assign = append(m.Assign, a)
	}
	return r.done()
}
