// Package openflow implements the control-channel wire protocol of the
// LazyCtrl prototype: an OpenFlow v1.0-style message set (Hello, Echo,
// PacketIn, PacketOut, FlowMod, Stats) extended with the LazyCtrl vendor
// messages (§IV of the paper): group configuration, L-FIB/G-FIB
// dissemination, designated-switch state reports, ring keep-alives, and
// scoped ARP relay. It also defines the flow-table match/action model,
// including the Encap action that extends OpenFlow v1.0 with GRE-like
// overlay encapsulation.
//
// The Batch message coalesces several messages to one destination
// (body: u32 count, then per item u8 type + u32 length + body) so a
// regroup round encodes and sends at most one control message per
// switch; see Batch for the framing details and the no-nesting rule.
//
// G-FIB distribution is a versioned delta protocol: GFIBUpdate carries
// full filters stamped with their origin's state version, GFIBDelta
// carries only the changed 64-bit words between two versions, and
// GFIBNack requests a full resync when a receiver's held version does
// not match a delta's base. PacketInBurst aggregates an edge switch's
// micro-batched PacketIns into one control message. The message set,
// versioning rules, and framing are documented in docs/protocol.md.
//
// The binary codec is exercised on every message crossing the live
// (goroutine) transport, and by the protocol round-trip tests.
package openflow

import (
	"encoding/binary"
	"errors"
	"fmt"

	"lazyctrl/internal/model"
	"lazyctrl/internal/telemetry"
)

// Version is the protocol version carried in every header. LazyCtrl
// extends OpenFlow v1.0 (wire version 0x01); the extension bit marks the
// modified protocol.
const Version uint8 = 0x01 | 0x80

// MsgType identifies a control message.
type MsgType uint8

// Message types. The first block mirrors OpenFlow v1.0; the second block
// holds the LazyCtrl extensions.
const (
	TypeHello MsgType = iota + 1
	TypeEchoRequest
	TypeEchoReply
	TypePacketIn
	TypePacketOut
	TypeFlowMod
	TypeFlowRemoved
	TypeStatsRequest
	TypeStatsReply

	// LazyCtrl extensions.
	TypeGroupConfig
	TypeLFIBUpdate
	TypeGFIBUpdate
	TypeStateReport
	TypeKeepAlive
	TypeARPRelay
	// TypeBatch coalesces several messages to one destination (one
	// encode and one send per switch per regroup round, see Batch).
	TypeBatch
	// TypeGFIBDelta ships only the changed words of changed filters
	// (the incremental half of G-FIB distribution, see GFIBDelta).
	TypeGFIBDelta
	// TypeGFIBNack requests a full resync after a delta whose base
	// version the receiver does not hold (see GFIBNack).
	TypeGFIBNack
	// TypePacketInBurst carries an edge switch's micro-batched
	// PacketIns in one control message (see PacketInBurst).
	TypePacketInBurst
)

var msgTypeNames = map[MsgType]string{
	TypeHello:           "Hello",
	TypeEchoRequest:     "EchoRequest",
	TypeEchoReply:       "EchoReply",
	TypePacketIn:        "PacketIn",
	TypePacketOut:       "PacketOut",
	TypeFlowMod:         "FlowMod",
	TypeFlowRemoved:     "FlowRemoved",
	TypeStatsRequest:    "StatsRequest",
	TypeStatsReply:      "StatsReply",
	TypeGroupConfig:     "GroupConfig",
	TypeLFIBUpdate:      "LFIBUpdate",
	TypeGFIBUpdate:      "GFIBUpdate",
	TypeStateReport:     "StateReport",
	TypeKeepAlive:       "KeepAlive",
	TypeARPRelay:        "ARPRelay",
	TypeBatch:           "Batch",
	TypeGFIBDelta:       "GFIBDelta",
	TypeGFIBNack:        "GFIBNack",
	TypePacketInBurst:   "PacketInBurst",
	TypeFailureReport:   "FailureReport",
	TypeConfigAck:       "ConfigAck",
	TypeRoleAnnounce:    "RoleAnnounce",
	TypeStateSyncRecord: "StateSyncRecord",
}

// The flight recorders (internal/telemetry) store message types as
// numeric codes to keep their hot path pointer-free; register the
// render names once so tails print the wire names.
func init() {
	for t, s := range msgTypeNames {
		telemetry.RegisterFlightType(uint8(t), s)
	}
}

// String returns the message type name.
func (t MsgType) String() string {
	if s, ok := msgTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Message is a decodable control message.
type Message interface {
	// MsgType returns the wire type tag.
	MsgType() MsgType
	// encodeBody appends the body encoding to dst.
	encodeBody(dst []byte) []byte
	// decodeBody parses the body.
	decodeBody(src []byte) error
}

// headerLen is the fixed header size: version(1) type(1) length(4) xid(4).
const headerLen = 10

// maxMessageLen bounds decoded messages (a G-FIB update carrying dozens
// of Bloom filters is the largest legitimate message).
const maxMessageLen = 16 << 20

// Errors returned by the codec.
var (
	ErrTruncated   = errors.New("openflow: truncated message")
	ErrBadVersion  = errors.New("openflow: unsupported version")
	ErrUnknownType = errors.New("openflow: unknown message type")
	ErrTooLarge    = errors.New("openflow: message exceeds size bound")
)

// Encode serializes a message with the given transaction ID.
func Encode(m Message, xid uint32) ([]byte, error) {
	body := m.encodeBody(make([]byte, 0, 64))
	total := headerLen + len(body)
	if total > maxMessageLen {
		return nil, ErrTooLarge
	}
	buf := make([]byte, headerLen, total)
	buf[0] = Version
	buf[1] = uint8(m.MsgType())
	binary.BigEndian.PutUint32(buf[2:6], uint32(total))
	binary.BigEndian.PutUint32(buf[6:10], xid)
	return append(buf, body...), nil
}

// newMessage allocates an empty message of the given type.
func newMessage(t MsgType) (Message, error) {
	switch t {
	case TypeHello:
		return &Hello{}, nil
	case TypeEchoRequest:
		return &EchoRequest{}, nil
	case TypeEchoReply:
		return &EchoReply{}, nil
	case TypePacketIn:
		return &PacketIn{}, nil
	case TypePacketOut:
		return &PacketOut{}, nil
	case TypeFlowMod:
		return &FlowMod{}, nil
	case TypeFlowRemoved:
		return &FlowRemoved{}, nil
	case TypeStatsRequest:
		return &StatsRequest{}, nil
	case TypeStatsReply:
		return &StatsReply{}, nil
	case TypeGroupConfig:
		return &GroupConfig{}, nil
	case TypeLFIBUpdate:
		return &LFIBUpdate{}, nil
	case TypeGFIBUpdate:
		return &GFIBUpdate{}, nil
	case TypeStateReport:
		return &StateReport{}, nil
	case TypeKeepAlive:
		return &KeepAlive{}, nil
	case TypeARPRelay:
		return &ARPRelay{}, nil
	case TypeBatch:
		return &Batch{}, nil
	case TypeGFIBDelta:
		return &GFIBDelta{}, nil
	case TypeGFIBNack:
		return &GFIBNack{}, nil
	case TypePacketInBurst:
		return &PacketInBurst{}, nil
	case TypeFailureReport:
		return &FailureReport{}, nil
	case TypeConfigAck:
		return &ConfigAck{}, nil
	case TypeRoleAnnounce:
		return &RoleAnnounce{}, nil
	case TypeStateSyncRecord:
		return &StateSyncRecord{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, t)
	}
}

// Decode parses one complete message, returning it with its transaction
// ID.
func Decode(data []byte) (Message, uint32, error) {
	if len(data) < headerLen {
		return nil, 0, ErrTruncated
	}
	if data[0] != Version {
		return nil, 0, fmt.Errorf("%w: 0x%02x", ErrBadVersion, data[0])
	}
	total := binary.BigEndian.Uint32(data[2:6])
	if total > maxMessageLen {
		return nil, 0, ErrTooLarge
	}
	if uint32(len(data)) != total {
		return nil, 0, fmt.Errorf("%w: header says %d bytes, have %d", ErrTruncated, total, len(data))
	}
	xid := binary.BigEndian.Uint32(data[6:10])
	m, err := newMessage(MsgType(data[1]))
	if err != nil {
		return nil, 0, err
	}
	if err := m.decodeBody(data[headerLen:]); err != nil {
		return nil, 0, fmt.Errorf("openflow: decoding %v: %w", MsgType(data[1]), err)
	}
	return m, xid, nil
}

// --- primitive encode/decode helpers ---

type reader struct {
	src []byte
	off int
	err error
}

func (r *reader) remain() int { return len(r.src) - r.off }

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

func (r *reader) u8() uint8 {
	if r.err != nil || r.remain() < 1 {
		r.fail()
		return 0
	}
	v := r.src[r.off]
	r.off++
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.remain() < 2 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint16(r.src[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.remain() < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.src[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.remain() < 8 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.src[r.off:])
	r.off += 8
	return v
}

func (r *reader) bytes(n int) []byte {
	if n < 0 || r.err != nil || r.remain() < n {
		r.fail()
		return nil
	}
	v := make([]byte, n)
	copy(v, r.src[r.off:r.off+n])
	r.off += n
	return v
}

func (r *reader) mac() model.MAC {
	var m model.MAC
	if r.err != nil || r.remain() < 6 {
		r.fail()
		return m
	}
	copy(m[:], r.src[r.off:r.off+6])
	r.off += 6
	return m
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.remain() != 0 {
		return fmt.Errorf("openflow: %d trailing bytes", r.remain())
	}
	return nil
}

// putUvarint appends v LEB128-encoded (7 bits per byte, high bit =
// continuation): the mostly-zero and mostly-small count fields of the
// delta path cost one byte instead of four. See docs/protocol.md.
func putUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// uvarint reads a LEB128-encoded unsigned integer (at most 10 bytes;
// the 10th may carry only bit 0 — anything else would shift bits past
// 63, silently wrapping a crafted overlong encoding into a small bogus
// value, so it fails instead, like binary.Uvarint).
func (r *reader) uvarint() uint64 {
	var v uint64
	var shift uint
	for i := 0; i < 10; i++ {
		b := r.u8()
		if r.err != nil {
			return 0
		}
		if i == 9 && b > 1 {
			r.fail()
			return 0
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v
		}
		shift += 7
	}
	r.fail()
	return 0
}

func putU16(dst []byte, v uint16) []byte {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], v)
	return append(dst, b[:]...)
}

func putU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func putU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}
