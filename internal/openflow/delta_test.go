package openflow

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"lazyctrl/internal/bloom"
	"lazyctrl/internal/model"
)

func TestGFIBDeltaRoundTrip(t *testing.T) {
	m := &GFIBDelta{
		Group: 3,
		Deltas: []GFIBFilterDelta{
			{
				Switch:        7,
				BaseVersion:   41,
				TargetVersion: 44,
				Words: []bloom.WordDelta{
					{Index: 0, Word: 0xdeadbeefcafef00d},
					{Index: 255, Word: 1},
				},
			},
			// A version beacon: base == target, no words.
			{Switch: 9, BaseVersion: 12, TargetVersion: 12},
		},
		Removals: []model.SwitchID{4, 11},
		Version:  5,
	}
	got, ok := roundTrip(t, m, 31).(*GFIBDelta)
	if !ok || !reflect.DeepEqual(got, m) {
		t.Errorf("GFIBDelta round trip = %+v, want %+v", got, m)
	}
}

// TestGFIBDeltaRemovalOnly round-trips a pure tombstone (the message a
// designated switch or the controller broadcasts after a member is
// lost).
func TestGFIBDeltaRemovalOnly(t *testing.T) {
	m := &GFIBDelta{Group: 8, Removals: []model.SwitchID{42}, Version: 3}
	got, ok := roundTrip(t, m, 35).(*GFIBDelta)
	if !ok || !reflect.DeepEqual(got, m) {
		t.Errorf("removal-only GFIBDelta round trip = %+v, want %+v", got, m)
	}
}

func TestGFIBDeltaTruncated(t *testing.T) {
	m := &GFIBDelta{Deltas: []GFIBFilterDelta{{Switch: 1, Words: []bloom.WordDelta{{Index: 2, Word: 3}}}}}
	data, err := Encode(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < 12; cut++ {
		trunc := append([]byte(nil), data[:len(data)-cut]...)
		// Fix up the header length so the codec reaches the body parser.
		trunc[2] = byte(len(trunc) >> 24)
		trunc[3] = byte(len(trunc) >> 16)
		trunc[4] = byte(len(trunc) >> 8)
		trunc[5] = byte(len(trunc))
		if _, _, err := Decode(trunc); err == nil {
			t.Errorf("cut %d: truncated GFIBDelta decoded", cut)
		}
	}
}

func TestGFIBNackRoundTrip(t *testing.T) {
	m := &GFIBNack{Group: 2, Origin: 17, Peers: []model.SwitchID{3, 9, 12}}
	got, ok := roundTrip(t, m, 32).(*GFIBNack)
	if !ok || !reflect.DeepEqual(got, m) {
		t.Errorf("GFIBNack round trip = %+v, want %+v", got, m)
	}
}

func TestPacketInBurstRoundTrip(t *testing.T) {
	m := &PacketInBurst{
		Switch: 6,
		Items: []BurstPacket{
			{Reason: ReasonNoMatch, Packet: samplePacket()},
			{Reason: ReasonARP, Packet: samplePacket()},
		},
	}
	got, ok := roundTrip(t, m, 33).(*PacketInBurst)
	if !ok || !reflect.DeepEqual(got, m) {
		t.Errorf("PacketInBurst round trip = %+v, want %+v", got, m)
	}
	pins := got.PacketIns()
	if len(pins) != 2 {
		t.Fatalf("PacketIns() = %d items", len(pins))
	}
	for i, pi := range pins {
		if pi.Switch != 6 || pi.Reason != m.Items[i].Reason || pi.Packet != m.Items[i].Packet {
			t.Errorf("expanded PacketIn %d = %+v", i, pi)
		}
	}
}

func TestGFIBFilterVersionOnWire(t *testing.T) {
	m := &GFIBUpdate{Group: 1, Filters: []GFIBFilter{{Switch: 2, Filter: []byte{9}, Version: 77}}}
	got := roundTrip(t, m, 34).(*GFIBUpdate)
	if got.Filters[0].Version != 77 || !bytes.Equal(got.Filters[0].Filter, []byte{9}) {
		t.Errorf("GFIBFilter = %+v, want version 77", got.Filters[0])
	}
}

func TestDeltaWireCostBounds(t *testing.T) {
	words := []bloom.WordDelta{{Index: 1}, {Index: 2}}
	if got := DeltaWireCost(words); got != 21+20 {
		t.Errorf("DeltaWireCost = %d, want 41 (varint counts)", got)
	}
	// A word index beyond the u16 wire format makes the delta
	// unencodable; senders must fall back to a full push.
	tooBig := []bloom.WordDelta{{Index: math.MaxUint16 + 1}}
	if got := DeltaWireCost(tooBig); got != math.MaxInt {
		t.Errorf("DeltaWireCost(out-of-range index) = %d, want MaxInt", got)
	}
	if full := FullWireCost(2048); full <= 2048 {
		t.Errorf("FullWireCost(2048) = %d", full)
	}
}

// TestStateReportDensePairs pins the size-adaptive pair encoding: a
// steady-state report (all pairs of a 46-switch group) round-trips
// through the dense switch-index form and is measurably smaller than
// the flat form it replaces, while a sparse report keeps the flat form
// and never grows.
func TestStateReportDensePairs(t *testing.T) {
	const groupSize = 46
	var pairs []PairStat
	for a := 1; a <= groupSize; a++ {
		for b := a + 1; b <= groupSize; b++ {
			pairs = append(pairs, PairStat{A: model.SwitchID(a), B: model.SwitchID(b), NewFlows: uint32(a*100 + b)})
		}
	}
	m := &StateReport{Group: 2, Pairs: pairs, Version: 9}
	data, err := Encode(m, 40)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := roundTrip(t, m, 41).(*StateReport)
	if !ok || !reflect.DeepEqual(got.Pairs, m.Pairs) {
		t.Fatalf("dense pair round trip corrupted the pairs")
	}
	flatSize := 12 * len(pairs)
	denseSize := 2 + 4*groupSize + 8*len(pairs)
	if len(data) >= flatSize {
		t.Errorf("encoded report = %dB, want < flat pair section alone (%dB)", len(data), flatSize)
	}
	overhead := len(data) - denseSize
	if overhead < 0 || overhead > 64 {
		t.Errorf("encoded report = %dB, want ≈ dense size %dB (+header)", len(data), denseSize)
	}
	t.Logf("%d pairs over %d switches: %dB on the wire vs %dB flat (%.0f%% smaller)",
		len(pairs), groupSize, len(data), flatSize, 100*(1-float64(len(data))/float64(flatSize)))

	// Sparse: 2 pairs over 4 distinct switches — the dense table would
	// not pay for itself, so the flat form is kept and the report does
	// not grow.
	sparse := &StateReport{Group: 2, Pairs: []PairStat{{A: 1, B: 2, NewFlows: 1}, {A: 3, B: 4, NewFlows: 2}}, Version: 1}
	sdata, err := Encode(sparse, 42)
	if err != nil {
		t.Fatal(err)
	}
	// header(10) + group(4) + lfib count varint(1) + pair count
	// varint(1) + flag(1) + 2 flat pairs(24) + version(8)
	if want := 10 + 4 + 1 + 1 + 1 + 24 + 8; len(sdata) != want {
		t.Errorf("sparse report = %dB, want %d (flat form + flag byte)", len(sdata), want)
	}
	gotSparse, ok := roundTrip(t, sparse, 43).(*StateReport)
	if !ok || !reflect.DeepEqual(gotSparse.Pairs, sparse.Pairs) {
		t.Errorf("sparse pair round trip corrupted the pairs")
	}
}

// TestVarintCountOverflowRejected pins the decode guards against
// crafted varint counts: a count near 2⁶⁴ must yield ErrTruncated,
// never wrap a size check into a makeslice panic.
func TestVarintCountOverflowRejected(t *testing.T) {
	// A huge LEB128 value (10 bytes of 0xff-style continuation).
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}
	// An overlong encoding of 2⁶⁴ exactly: the 10th byte's bit 1 would
	// shift past bit 63 and silently wrap to a small value if the
	// reader didn't reject it.
	overlong := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}
	craft := func(build func() []byte, m Message) {
		t.Helper()
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("%T decode panicked on crafted count: %v", m, p)
			}
		}()
		if err := m.decodeBody(build()); err == nil {
			t.Errorf("%T accepted a crafted overflow count", m)
		}
	}
	u32 := func(dst []byte, v uint32) []byte { return putU32(dst, v) }
	// GFIBDelta: item count, then (via a valid single item) word count,
	// then removals count.
	craft(func() []byte { return append(u32(nil, 1), huge...) }, &GFIBDelta{})
	craft(func() []byte {
		b := putUvarint(u32(nil, 1), 1) // group, 1 delta
		b = putU64(putU64(u32(b, 2), 3), 4)
		return append(b, huge...) // word count
	}, &GFIBDelta{})
	craft(func() []byte {
		b := putUvarint(u32(nil, 1), 0) // group, 0 deltas
		return append(b, huge...)       // removals count
	}, &GFIBDelta{})
	// StateReport: L-FIB count and pair count.
	craft(func() []byte { return append(u32(nil, 1), huge...) }, &StateReport{})
	craft(func() []byte {
		b := putUvarint(u32(nil, 1), 0) // group, 0 L-FIBs
		return append(b, huge...)       // pair count
	}, &StateReport{})
	// Overlong encodings must fail outright, not wrap to plausible
	// small counts and misparse the rest of the body.
	craft(func() []byte { return append(u32(nil, 1), overlong...) }, &GFIBDelta{})
	craft(func() []byte { return append(u32(nil, 1), overlong...) }, &StateReport{})
}

// TestDeltaWireCostExact pins DeltaWireCost to the actual encoded item
// size, including the multi-byte varint word count past 127 words.
func TestDeltaWireCostExact(t *testing.T) {
	for _, n := range []int{0, 1, 127, 128, 300} {
		words := make([]bloom.WordDelta, n)
		for i := range words {
			words[i] = bloom.WordDelta{Index: uint32(i), Word: uint64(i)}
		}
		m := &GFIBDelta{Group: 1, Deltas: []GFIBFilterDelta{{Switch: 2, BaseVersion: 3, TargetVersion: 4, Words: words}}}
		data, err := Encode(m, 1)
		if err != nil {
			t.Fatal(err)
		}
		// header(10) + group(4) + delta count(1) + item + removals(1) +
		// version(8) + generation varint(1)
		overhead := 10 + 4 + 1 + 1 + 8 + 1
		if got, want := len(data)-overhead, DeltaWireCost(words); got != want {
			t.Errorf("n=%d: encoded item = %dB, DeltaWireCost = %d", n, got, want)
		}
	}
}
