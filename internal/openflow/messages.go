package openflow

import (
	"time"

	"lazyctrl/internal/model"
	"lazyctrl/internal/telemetry"
)

// Hello opens a control connection.
type Hello struct{}

// MsgType implements Message.
func (*Hello) MsgType() MsgType             { return TypeHello }
func (*Hello) encodeBody(dst []byte) []byte { return dst }
func (*Hello) decodeBody(src []byte) error  { r := &reader{src: src}; return r.done() }

// EchoRequest is a liveness probe.
type EchoRequest struct {
	Data []byte
}

// MsgType implements Message.
func (*EchoRequest) MsgType() MsgType { return TypeEchoRequest }

func (m *EchoRequest) encodeBody(dst []byte) []byte {
	dst = putU32(dst, uint32(len(m.Data)))
	return append(dst, m.Data...)
}

func (m *EchoRequest) decodeBody(src []byte) error {
	r := &reader{src: src}
	m.Data = r.bytes(int(r.u32()))
	return r.done()
}

// EchoReply answers an EchoRequest with the same payload.
type EchoReply struct {
	Data []byte
}

// MsgType implements Message.
func (*EchoReply) MsgType() MsgType { return TypeEchoReply }

func (m *EchoReply) encodeBody(dst []byte) []byte {
	dst = putU32(dst, uint32(len(m.Data)))
	return append(dst, m.Data...)
}

func (m *EchoReply) decodeBody(src []byte) error {
	r := &reader{src: src}
	m.Data = r.bytes(int(r.u32()))
	return r.done()
}

// PacketInReason explains why a packet reached the controller.
type PacketInReason uint8

// PacketIn reasons.
const (
	ReasonNoMatch       PacketInReason = iota + 1 // no flow rule, no L-FIB/G-FIB hit
	ReasonARP                                     // ARP that escaped the group
	ReasonFalsePositive                           // mis-forwarded packet reported (§III-D4, optional)
)

// PacketIn carries a packet from a switch to the controller.
type PacketIn struct {
	Switch model.SwitchID
	Reason PacketInReason
	Packet model.Packet
	// Span is the telemetry span context of the escalation's trace
	// (zero when unsampled). It is not part of the encoded body: the
	// in-process fabric passes the struct as-is, and on a real wire the
	// header's existing 4-byte xid field carries the low span-ID bits
	// (Encode already threads an xid per message), so unreplicated
	// deployments see no wire format change. See docs/observability.md.
	Span telemetry.SpanContext
}

// MsgType implements Message.
func (*PacketIn) MsgType() MsgType { return TypePacketIn }

func (m *PacketIn) encodeBody(dst []byte) []byte {
	dst = putU32(dst, uint32(m.Switch))
	dst = append(dst, uint8(m.Reason))
	return encodePacket(dst, &m.Packet)
}

func (m *PacketIn) decodeBody(src []byte) error {
	r := &reader{src: src}
	m.Switch = model.SwitchID(r.u32())
	m.Reason = PacketInReason(r.u8())
	m.Packet = decodePacket(r)
	return r.done()
}

// PacketOut instructs a switch to emit a packet with the given actions.
type PacketOut struct {
	Actions []Action
	Packet  model.Packet
	// Span propagates the originating escalation's trace back to the
	// edge (not encoded; see PacketIn.Span).
	Span telemetry.SpanContext
}

// MsgType implements Message.
func (*PacketOut) MsgType() MsgType { return TypePacketOut }

func (m *PacketOut) encodeBody(dst []byte) []byte {
	dst = encodeActions(dst, m.Actions)
	return encodePacket(dst, &m.Packet)
}

func (m *PacketOut) decodeBody(src []byte) error {
	r := &reader{src: src}
	m.Actions = decodeActions(r)
	m.Packet = decodePacket(r)
	return r.done()
}

// FlowMod installs, modifies, or removes a flow rule.
type FlowMod struct {
	Command     FlowModCommand
	Match       Match
	Priority    uint16
	IdleTimeout time.Duration
	HardTimeout time.Duration
	Actions     []Action
	// Span propagates the originating escalation's trace back to the
	// edge (not encoded; see PacketIn.Span).
	Span telemetry.SpanContext
}

// MsgType implements Message.
func (*FlowMod) MsgType() MsgType { return TypeFlowMod }

func (m *FlowMod) encodeBody(dst []byte) []byte {
	dst = append(dst, uint8(m.Command))
	dst = m.Match.encode(dst)
	dst = putU16(dst, m.Priority)
	dst = putU64(dst, uint64(m.IdleTimeout))
	dst = putU64(dst, uint64(m.HardTimeout))
	return encodeActions(dst, m.Actions)
}

func (m *FlowMod) decodeBody(src []byte) error {
	r := &reader{src: src}
	m.Command = FlowModCommand(r.u8())
	m.Match = decodeMatch(r)
	m.Priority = r.u16()
	m.IdleTimeout = time.Duration(r.u64())
	m.HardTimeout = time.Duration(r.u64())
	m.Actions = decodeActions(r)
	return r.done()
}

// FlowRemoved notifies the controller that a rule expired.
type FlowRemoved struct {
	Match    Match
	Priority uint16
	Packets  uint64
	Bytes    uint64
}

// MsgType implements Message.
func (*FlowRemoved) MsgType() MsgType { return TypeFlowRemoved }

func (m *FlowRemoved) encodeBody(dst []byte) []byte {
	dst = m.Match.encode(dst)
	dst = putU16(dst, m.Priority)
	dst = putU64(dst, m.Packets)
	return putU64(dst, m.Bytes)
}

func (m *FlowRemoved) decodeBody(src []byte) error {
	r := &reader{src: src}
	m.Match = decodeMatch(r)
	m.Priority = r.u16()
	m.Packets = r.u64()
	m.Bytes = r.u64()
	return r.done()
}

// StatsRequest asks a switch for its counters.
type StatsRequest struct{}

// MsgType implements Message.
func (*StatsRequest) MsgType() MsgType             { return TypeStatsRequest }
func (*StatsRequest) encodeBody(dst []byte) []byte { return dst }
func (*StatsRequest) decodeBody(src []byte) error  { r := &reader{src: src}; return r.done() }

// StatsReply reports switch counters.
type StatsReply struct {
	Switch       model.SwitchID
	FlowCount    uint32
	PacketsSeen  uint64
	BytesSeen    uint64
	LFIBEntries  uint32
	GFIBFilters  uint32
	GFIBBytes    uint64
	EncapPackets uint64
}

// MsgType implements Message.
func (*StatsReply) MsgType() MsgType { return TypeStatsReply }

func (m *StatsReply) encodeBody(dst []byte) []byte {
	dst = putU32(dst, uint32(m.Switch))
	dst = putU32(dst, m.FlowCount)
	dst = putU64(dst, m.PacketsSeen)
	dst = putU64(dst, m.BytesSeen)
	dst = putU32(dst, m.LFIBEntries)
	dst = putU32(dst, m.GFIBFilters)
	dst = putU64(dst, m.GFIBBytes)
	return putU64(dst, m.EncapPackets)
}

func (m *StatsReply) decodeBody(src []byte) error {
	r := &reader{src: src}
	m.Switch = model.SwitchID(r.u32())
	m.FlowCount = r.u32()
	m.PacketsSeen = r.u64()
	m.BytesSeen = r.u64()
	m.LFIBEntries = r.u32()
	m.GFIBFilters = r.u32()
	m.GFIBBytes = r.u64()
	m.EncapPackets = r.u64()
	return r.done()
}
