package openflow

import (
	"math"

	"lazyctrl/internal/bloom"
	"lazyctrl/internal/model"
	"lazyctrl/internal/telemetry"
)

// This file holds the incremental half of the G-FIB distribution
// protocol plus the edge-side PacketIn micro-batch. The versioning
// model is shared with GFIBUpdate: every filter is stamped with its
// origin's L-FIB version, a GFIBDelta moves a receiver from exactly
// BaseVersion to TargetVersion by overwriting the changed 64-bit words,
// and a receiver that does not hold the base version answers with a
// GFIBNack naming the peers it needs in full. See docs/protocol.md.

// GFIBFilterDelta is the word-level diff of one peer's Bloom filter
// between two of its L-FIB versions. Word indexes are u16 on the wire,
// bounding delta-encodable filters at 64 Ki words (512 KB) — far above
// any G-FIB geometry; senders fall back to a full push beyond it (see
// DeltaWireCost).
type GFIBFilterDelta struct {
	Switch        model.SwitchID
	BaseVersion   uint64
	TargetVersion uint64
	Words         []bloom.WordDelta
}

// DeltaWireCost returns the encoded size of a delta item carrying the
// given words, or MaxInt when they cannot be delta-encoded (a word
// index beyond the u16 wire format). FullWireCost returns the encoded
// size of a full GFIBFilter item for a marshaled filter of the given
// length. Senders compare the two to pick the cheaper encoding.
func DeltaWireCost(words []bloom.WordDelta) int {
	for _, w := range words {
		if w.Index > math.MaxUint16 {
			return math.MaxInt
		}
	}
	// switch (4) + base/target versions (16) + varint word count.
	return 20 + uvarintLen(uint64(len(words))) + 10*len(words)
}

// uvarintLen is the encoded size of v as a LEB128 varint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// FullWireCost is DeltaWireCost's counterpart for full filter items.
func FullWireCost(filterBytes int) int { return 16 + filterBytes }

// GFIBDelta carries sub-filter updates to group members: only the
// changed words of the changed filters, so a single host arrival ships
// O(k) words instead of the whole 2 KB array. A receiver applies each
// item only if it holds the item's base version; otherwise it leaves
// its filter untouched and NACKs.
//
// Removals are the protocol's filter tombstones: the named peers'
// filters must be evicted outright (the peer was diagnosed dead or
// reported lost on peer evidence), so non-neighbor members stop
// encapsulating toward a black hole immediately instead of keeping the
// dead member's filter until the next membership change. A removal is
// unconditional — no base version, never NACKed — and a removed filter
// returns through the normal full-push path when the peer comes back.
type GFIBDelta struct {
	Group  model.GroupID
	Deltas []GFIBFilterDelta
	// Removals names peers whose filters the receiver must drop.
	Removals []model.SwitchID
	// Version is the grouping version the sender operated under.
	Version uint64
	// Generation fences controller-issued deltas (tombstone broadcasts;
	// 0 = unfenced, designated-switch dissemination leaves it 0).
	Generation uint64
}

// MsgType implements Message.
func (*GFIBDelta) MsgType() MsgType { return TypeGFIBDelta }

// GFIBDelta's count fields — delta items, per-item words, removals —
// travel as varints: the removals list is almost always empty and the
// word counts almost always small, so each costs one byte instead of
// four (the ROADMAP "wire-byte headroom" item; TestDissemDeltaByteReduction
// pins the resulting margin).
func (m *GFIBDelta) encodeBody(dst []byte) []byte {
	dst = putU32(dst, uint32(m.Group))
	dst = putUvarint(dst, uint64(len(m.Deltas)))
	for _, d := range m.Deltas {
		dst = putU32(dst, uint32(d.Switch))
		dst = putU64(dst, d.BaseVersion)
		dst = putU64(dst, d.TargetVersion)
		dst = putUvarint(dst, uint64(len(d.Words)))
		for _, w := range d.Words {
			dst = putU16(dst, uint16(w.Index))
			dst = putU64(dst, w.Word)
		}
	}
	dst = putUvarint(dst, uint64(len(m.Removals)))
	for _, id := range m.Removals {
		dst = putU32(dst, uint32(id))
	}
	dst = putU64(dst, m.Version)
	return putUvarint(dst, m.Generation)
}

func (m *GFIBDelta) decodeBody(src []byte) error {
	r := &reader{src: src}
	m.Group = model.GroupID(r.u32())
	// Count guards divide instead of multiplying: a varint count is not
	// bounded by the wire like the old u32 fields were, and a crafted
	// value near 2⁶⁴ would wrap a product past the guard into a
	// makeslice panic.
	n := int(r.uvarint())
	if n < 0 || n > r.remain()/21 { // switch + base/target versions + word count
		r.fail()
		return ErrTruncated
	}
	if n > 0 {
		m.Deltas = make([]GFIBFilterDelta, 0, n)
	}
	for i := 0; i < n; i++ {
		var d GFIBFilterDelta
		d.Switch = model.SwitchID(r.u32())
		d.BaseVersion = r.u64()
		d.TargetVersion = r.u64()
		nw := int(r.uvarint())
		if nw < 0 || nw > r.remain()/10 { // each word costs u16 index + u64 value
			r.fail()
			return ErrTruncated
		}
		if nw > 0 {
			d.Words = make([]bloom.WordDelta, 0, nw)
		}
		for j := 0; j < nw; j++ {
			var w bloom.WordDelta
			w.Index = uint32(r.u16())
			w.Word = r.u64()
			d.Words = append(d.Words, w)
		}
		m.Deltas = append(m.Deltas, d)
	}
	nr := int(r.uvarint())
	if nr < 0 || nr > r.remain()/4 {
		r.fail()
		return ErrTruncated
	}
	if nr > 0 {
		m.Removals = make([]model.SwitchID, 0, nr)
		for i := 0; i < nr; i++ {
			m.Removals = append(m.Removals, model.SwitchID(r.u32()))
		}
	}
	m.Version = r.u64()
	m.Generation = r.uvarint()
	return r.done()
}

// GFIBNack asks the sender of a G-FIB update for a full resync of the
// named peers' filters: the receiver got a delta whose base version it
// does not hold (missed round, cleared G-FIB, reboot). The sender
// answers with a full GFIBUpdate scoped to those peers. This explicit
// repair path replaces the old every-Nth-round anti-entropy refresh on
// the dissemination path.
type GFIBNack struct {
	Group model.GroupID
	// Origin is the switch requesting the resync (carried explicitly
	// so the request survives ring relays intact).
	Origin model.SwitchID
	Peers  []model.SwitchID
}

// MsgType implements Message.
func (*GFIBNack) MsgType() MsgType { return TypeGFIBNack }

func (m *GFIBNack) encodeBody(dst []byte) []byte {
	dst = putU32(dst, uint32(m.Group))
	dst = putU32(dst, uint32(m.Origin))
	return encodeSwitches(dst, m.Peers)
}

func (m *GFIBNack) decodeBody(src []byte) error {
	r := &reader{src: src}
	m.Group = model.GroupID(r.u32())
	m.Origin = model.SwitchID(r.u32())
	m.Peers = decodeSwitches(r)
	return r.done()
}

// BurstPacket is one PacketIn worth of payload inside a PacketInBurst:
// the reason and the packet, without repeating the shared origin
// switch.
type BurstPacket struct {
	Reason PacketInReason
	Packet model.Packet
	// Span is the escalation's telemetry span context (zero when
	// unsampled; not encoded — see PacketIn.Span).
	Span telemetry.SpanContext
}

// PacketInBurst carries several PacketIns from one switch in a single
// control message. Edge switches fill it from their micro-batching
// intake window (flush on count or deadline), so a packet-in storm
// crosses the control link as a handful of bursts instead of thousands
// of messages, and the controller feeds each burst straight into its
// sharded ProcessBurst intake.
type PacketInBurst struct {
	Switch model.SwitchID
	Items  []BurstPacket
}

// MsgType implements Message.
func (*PacketInBurst) MsgType() MsgType { return TypePacketInBurst }

func (m *PacketInBurst) encodeBody(dst []byte) []byte {
	dst = putU32(dst, uint32(m.Switch))
	dst = putU32(dst, uint32(len(m.Items)))
	for i := range m.Items {
		dst = append(dst, uint8(m.Items[i].Reason))
		dst = encodePacket(dst, &m.Items[i].Packet)
	}
	return dst
}

func (m *PacketInBurst) decodeBody(src []byte) error {
	r := &reader{src: src}
	m.Switch = model.SwitchID(r.u32())
	n := int(r.u32())
	if n > r.remain() { // each item costs at least its reason byte
		r.fail()
		return ErrTruncated
	}
	if n > 0 {
		m.Items = make([]BurstPacket, 0, n)
	}
	for i := 0; i < n; i++ {
		var it BurstPacket
		it.Reason = PacketInReason(r.u8())
		it.Packet = decodePacket(r)
		m.Items = append(m.Items, it)
	}
	return r.done()
}

// PacketIns expands the burst into the per-message form the
// controller's burst intake consumes.
func (m *PacketInBurst) PacketIns() []PacketIn {
	out := make([]PacketIn, len(m.Items))
	for i := range m.Items {
		out[i] = PacketIn{Switch: m.Switch, Reason: m.Items[i].Reason, Packet: m.Items[i].Packet, Span: m.Items[i].Span}
	}
	return out
}
