package openflow

import (
	"reflect"
	"testing"

	"lazyctrl/internal/model"
)

func TestBatchRoundTrip(t *testing.T) {
	m := &Batch{Msgs: []Message{
		&GroupConfig{
			Group:      3,
			Members:    []model.SwitchID{1, 2},
			Designated: 1,
			RingPrev:   2,
			RingNext:   2,
			Version:    7,
		},
		&LFIBUpdate{
			Origin: 2,
			Full:   true,
			Entries: []LFIBEntry{
				{MAC: model.HostMAC(20), IP: model.HostIP(20), VLAN: 7},
			},
			Version: 7,
		},
		&FlowMod{
			Command:  FlowAdd,
			Match:    ExactDst(model.HostMAC(20), 7),
			Priority: 100,
			Actions:  []Action{Encap(2)},
		},
	}}
	got := roundTrip(t, m, 42).(*Batch)
	if len(got.Msgs) != 3 {
		t.Fatalf("decoded %d messages, want 3", len(got.Msgs))
	}
	if !reflect.DeepEqual(got.Msgs[0], m.Msgs[0]) {
		t.Errorf("GroupConfig mismatch: %+v", got.Msgs[0])
	}
	if !reflect.DeepEqual(got.Msgs[1], m.Msgs[1]) {
		t.Errorf("LFIBUpdate mismatch: %+v", got.Msgs[1])
	}
	if !reflect.DeepEqual(got.Msgs[2], m.Msgs[2]) {
		t.Errorf("FlowMod mismatch: %+v", got.Msgs[2])
	}
}

func TestBatchOfPacketIns(t *testing.T) {
	m := &Batch{Msgs: []Message{
		&PacketIn{Switch: 1, Reason: ReasonNoMatch, Packet: samplePacket()},
		&PacketIn{Switch: 2, Reason: ReasonARP, Packet: samplePacket()},
	}}
	got := roundTrip(t, m, 1).(*Batch)
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, m)
	}
}

func TestBatchEmpty(t *testing.T) {
	got := roundTrip(t, &Batch{}, 0).(*Batch)
	if len(got.Msgs) != 0 {
		t.Errorf("empty batch decoded %d messages", len(got.Msgs))
	}
}

func TestBatchRejectsNesting(t *testing.T) {
	inner := &Batch{Msgs: []Message{&Hello{}}}
	outer := &Batch{Msgs: []Message{inner}}
	data, err := Encode(outer, 0)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if _, _, err := Decode(data); err == nil {
		t.Fatal("nested batch decoded without error")
	}
}

func TestBatchTruncated(t *testing.T) {
	m := &Batch{Msgs: []Message{&KeepAlive{From: 1, Seq: 9}}}
	data, err := Encode(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Claim more sub-messages than the body holds.
	data[headerLen+3] = 200
	if _, _, err := Decode(data); err == nil {
		t.Fatal("truncated batch decoded without error")
	}
}
