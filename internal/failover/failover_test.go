package failover

import (
	"testing"
	"time"

	"lazyctrl/internal/model"
	"lazyctrl/internal/openflow"
)

func TestBuildWheelOrderedByMAC(t *testing.T) {
	wheel := BuildWheel([]model.SwitchID{5, 1, 3})
	// SwitchMAC embeds the ID in the low bytes, so MAC order equals ID
	// order here.
	if len(wheel) != 3 || wheel[0] != 1 || wheel[1] != 3 || wheel[2] != 5 {
		t.Errorf("wheel = %v, want [1 3 5]", wheel)
	}
}

func TestNeighbors(t *testing.T) {
	wheel := BuildWheel([]model.SwitchID{1, 2, 3, 4})
	prev, next := Neighbors(wheel, 1)
	if prev != 4 || next != 2 {
		t.Errorf("Neighbors(1) = %v,%v, want 4,2", prev, next)
	}
	prev, next = Neighbors(wheel, 4)
	if prev != 3 || next != 1 {
		t.Errorf("Neighbors(4) = %v,%v, want 3,1", prev, next)
	}
	prev, next = Neighbors(wheel, 99)
	if prev != model.NoSwitch || next != model.NoSwitch {
		t.Errorf("Neighbors(absent) = %v,%v, want 0,0", prev, next)
	}
	single := BuildWheel([]model.SwitchID{7})
	prev, next = Neighbors(single, 7)
	if prev != 7 || next != 7 {
		t.Errorf("Neighbors(single) = %v,%v, want 7,7", prev, next)
	}
}

func TestInferTableI(t *testing.T) {
	tests := []struct {
		e    Evidence
		want Diagnosis
	}{
		{Evidence{}, DiagNone},
		{Evidence{LossCtrl: true}, DiagControlLink},
		{Evidence{LossUp: true}, DiagPeerLinkUp},
		{Evidence{LossDown: true}, DiagPeerLinkDown},
		{Evidence{LossUp: true, LossDown: true, LossCtrl: true}, DiagSwitch},
		{Evidence{LossUp: true, LossDown: true}, DiagInconclusive},
		{Evidence{LossUp: true, LossCtrl: true}, DiagInconclusive},
		{Evidence{LossDown: true, LossCtrl: true}, DiagInconclusive},
	}
	for _, tt := range tests {
		if got := Infer(tt.e); got != tt.want {
			t.Errorf("Infer(%+v) = %v, want %v", tt.e, got, tt.want)
		}
	}
}

func TestDetectorSingleLoss(t *testing.T) {
	d := NewDetector(time.Second)
	d.Observe(&openflow.FailureReport{Observer: 1, Suspect: 2, Direction: openflow.LossUp}, 0)
	if got := d.Ready(500 * time.Millisecond); len(got) != 0 {
		t.Errorf("Ready before window = %v", got)
	}
	got := d.Ready(1100 * time.Millisecond)
	if got[2] != DiagPeerLinkUp {
		t.Errorf("Ready = %v, want suspect 2 → peer-link-up", got)
	}
	if d.Pending() != 0 {
		t.Errorf("Pending = %d after Ready", d.Pending())
	}
}

func TestDetectorSwitchFailure(t *testing.T) {
	d := NewDetector(time.Second)
	d.Observe(&openflow.FailureReport{Observer: 1, Suspect: 2, Direction: openflow.LossUp}, 0)
	d.Observe(&openflow.FailureReport{Observer: 3, Suspect: 2, Direction: openflow.LossDown}, 10*time.Millisecond)
	d.ObserveCtrlLoss(2, 20*time.Millisecond)
	got := d.Ready(1100 * time.Millisecond)
	if got[2] != DiagSwitch {
		t.Errorf("Ready = %v, want switch failure", got)
	}
}

func TestDetectorInconclusiveEscalates(t *testing.T) {
	d := NewDetector(time.Second)
	d.Observe(&openflow.FailureReport{Observer: 1, Suspect: 2, Direction: openflow.LossUp}, 0)
	d.Observe(&openflow.FailureReport{Observer: 3, Suspect: 2, Direction: openflow.LossDown}, 0)
	// Two of three: waits out a second window…
	if got := d.Ready(1100 * time.Millisecond); len(got) != 0 {
		t.Errorf("inconclusive diagnosed early: %v", got)
	}
	// …then escalates to switch failure.
	got := d.Ready(2100 * time.Millisecond)
	if got[2] != DiagSwitch {
		t.Errorf("Ready = %v, want escalated switch failure", got)
	}
}

func TestDetectorClear(t *testing.T) {
	d := NewDetector(time.Second)
	d.Observe(&openflow.FailureReport{Observer: 1, Suspect: 2, Direction: openflow.LossUp}, 0)
	d.Clear(2)
	if got := d.Ready(5 * time.Second); len(got) != 0 {
		t.Errorf("cleared suspect diagnosed: %v", got)
	}
}

func TestDiagnosisStrings(t *testing.T) {
	for _, d := range []Diagnosis{DiagNone, DiagControlLink, DiagPeerLinkUp, DiagPeerLinkDown, DiagSwitch, DiagInconclusive} {
		if d.String() == "" {
			t.Errorf("diagnosis %d has empty name", d)
		}
	}
}
