// Package failover implements the control-plane failure handling of
// LazyCtrl (§III-E): the group-wide failure-detection wheel (a logical
// ring ordered by management MAC with the controller at the center),
// keep-alive miss bookkeeping, and the Table I inference that maps
// observed keep-alive losses to a failure diagnosis.
package failover

import (
	"sort"
	"time"

	"lazyctrl/internal/model"
	"lazyctrl/internal/openflow"
)

// BuildWheel orders the switches of a group by the MAC address of their
// management interface (§III-D1), forming the failure-detection ring.
func BuildWheel(switches []model.SwitchID) []model.SwitchID {
	wheel := append([]model.SwitchID(nil), switches...)
	sort.Slice(wheel, func(i, j int) bool {
		return model.SwitchMAC(wheel[i]).Uint64() < model.SwitchMAC(wheel[j]).Uint64()
	})
	return wheel
}

// Neighbors returns the ring predecessor and successor of s on the
// wheel. A wheel of one yields s itself; an absent switch yields zero
// values.
func Neighbors(wheel []model.SwitchID, s model.SwitchID) (prev, next model.SwitchID) {
	for i, w := range wheel {
		if w == s {
			prev = wheel[(i-1+len(wheel))%len(wheel)]
			next = wheel[(i+1)%len(wheel)]
			return prev, next
		}
	}
	return model.NoSwitch, model.NoSwitch
}

// Diagnosis is the inferred failure per Table I.
type Diagnosis uint8

// Diagnoses.
const (
	DiagNone Diagnosis = iota
	// DiagControlLink: only the controller→switch keep-alive is lost.
	DiagControlLink
	// DiagPeerLinkUp: only the Sn→Sn−1 keep-alive is lost.
	DiagPeerLinkUp
	// DiagPeerLinkDown: only the Sn→Sn+1 keep-alive is lost.
	DiagPeerLinkDown
	// DiagSwitch: all three keep-alive streams are lost — the switch
	// itself is down.
	DiagSwitch
	// DiagInconclusive: a loss combination outside Table I (e.g. two of
	// three): keep observing.
	DiagInconclusive
)

// String names the diagnosis.
func (d Diagnosis) String() string {
	switch d {
	case DiagNone:
		return "none"
	case DiagControlLink:
		return "control-link"
	case DiagPeerLinkUp:
		return "peer-link-up"
	case DiagPeerLinkDown:
		return "peer-link-down"
	case DiagSwitch:
		return "switch"
	default:
		return "inconclusive"
	}
}

// Evidence aggregates which keep-alive streams from/for a suspect
// switch went silent.
type Evidence struct {
	// LossUp: Sn→Sn−1 missing (reported by the ring predecessor).
	LossUp bool
	// LossDown: Sn→Sn+1 missing (reported by the ring successor).
	LossDown bool
	// LossCtrl: controller→Sn missing (unacknowledged).
	LossCtrl bool
}

// Infer applies Table I.
func Infer(e Evidence) Diagnosis {
	switch {
	case e.LossUp && e.LossDown && e.LossCtrl:
		return DiagSwitch
	case e.LossCtrl && !e.LossUp && !e.LossDown:
		return DiagControlLink
	case e.LossUp && !e.LossDown && !e.LossCtrl:
		return DiagPeerLinkUp
	case e.LossDown && !e.LossUp && !e.LossCtrl:
		return DiagPeerLinkDown
	case !e.LossUp && !e.LossDown && !e.LossCtrl:
		return DiagNone
	default:
		return DiagInconclusive
	}
}

// Detector accumulates FailureReports at the controller and produces
// diagnoses once the evidence window closes.
type Detector struct {
	window   time.Duration
	evidence map[model.SwitchID]*suspectState
}

type suspectState struct {
	e     Evidence
	since time.Duration
}

// NewDetector returns a detector that diagnoses a suspect after
// evidence has been accumulating for at least window.
func NewDetector(window time.Duration) *Detector {
	if window <= 0 {
		window = time.Second
	}
	return &Detector{
		window:   window,
		evidence: make(map[model.SwitchID]*suspectState),
	}
}

// Observe folds in a failure report at time now.
func (d *Detector) Observe(r *openflow.FailureReport, now time.Duration) {
	st := d.evidence[r.Suspect]
	if st == nil {
		st = &suspectState{since: now}
		d.evidence[r.Suspect] = st
	}
	switch r.Direction {
	case openflow.LossUp:
		st.e.LossUp = true
	case openflow.LossDown:
		st.e.LossDown = true
	case openflow.LossCtrl:
		st.e.LossCtrl = true
	}
}

// ObserveCtrlLoss marks the controller's own missing keep-alive
// acknowledgment for a switch.
func (d *Detector) ObserveCtrlLoss(suspect model.SwitchID, now time.Duration) {
	d.Observe(&openflow.FailureReport{Suspect: suspect, Direction: openflow.LossCtrl}, now)
}

// Clear drops accumulated evidence for a suspect (e.g. a keep-alive
// arrived after all).
func (d *Detector) Clear(suspect model.SwitchID) {
	delete(d.evidence, suspect)
}

// Ready returns the diagnoses whose evidence windows have closed,
// removing them from the detector. Inconclusive suspects whose window
// closed are reported as DiagSwitch candidates only when evidence shows
// two or more losses; a single stale loss is re-armed for another
// window.
func (d *Detector) Ready(now time.Duration) map[model.SwitchID]Diagnosis {
	out := make(map[model.SwitchID]Diagnosis)
	for suspect, st := range d.evidence {
		if now-st.since < d.window {
			continue
		}
		diag := Infer(st.e)
		if diag == DiagInconclusive {
			// Two of three streams lost: most consistent with a switch
			// failure whose third report is delayed; wait one more
			// window, then call it a switch failure.
			if now-st.since < 2*d.window {
				continue
			}
			diag = DiagSwitch
		}
		out[suspect] = diag
		delete(d.evidence, suspect)
	}
	return out
}

// Pending reports the number of suspects under observation.
func (d *Detector) Pending() int { return len(d.evidence) }
