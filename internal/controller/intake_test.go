package controller

import (
	"math/rand/v2"
	"reflect"
	"sync"
	"testing"
	"time"

	"lazyctrl/internal/edge"
	"lazyctrl/internal/failover"
	"lazyctrl/internal/grouping"
	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/openflow"
	"lazyctrl/internal/sim"
)

// recordingEnv is a minimal netsim.Env for direct controller tests:
// timers fire immediately, sends are recorded per destination, and
// time stands still. Sends may arrive from the burst apply phase and
// from immediate timer callbacks on the same goroutine only.
type recordingEnv struct {
	mu    sync.Mutex
	sends map[model.SwitchID][]netsim.Message
	rng   *rand.Rand
}

func newRecordingEnv() *recordingEnv {
	return &recordingEnv{
		sends: make(map[model.SwitchID][]netsim.Message),
		rng:   rand.New(rand.NewPCG(1, 2)),
	}
}

func (e *recordingEnv) Now() time.Duration { return 0 }

func (e *recordingEnv) After(d time.Duration, fn func()) func() {
	fn()
	return func() {}
}

func (e *recordingEnv) Every(d time.Duration, fn func()) func() { return func() {} }

func (e *recordingEnv) Send(to model.SwitchID, msg netsim.Message) {
	e.mu.Lock()
	e.sends[to] = append(e.sends[to], msg)
	e.mu.Unlock()
}

func (e *recordingEnv) Rand() *rand.Rand { return e.rng }

func (e *recordingEnv) sendCounts() map[model.SwitchID]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[model.SwitchID]int, len(e.sends))
	for to, msgs := range e.sends {
		out[to] = len(msgs)
	}
	return out
}

func (e *recordingEnv) reset() {
	e.mu.Lock()
	e.sends = make(map[model.SwitchID][]netsim.Message)
	e.mu.Unlock()
}

func switchList(n int) []model.SwitchID {
	ids := make([]model.SwitchID, n)
	for i := range ids {
		ids[i] = model.SwitchID(i + 1)
	}
	return ids
}

func newDirectController(t *testing.T, mode Mode, shards int) (*Controller, *recordingEnv) {
	t.Helper()
	env := newRecordingEnv()
	c, err := New(Config{
		Mode:        mode,
		Switches:    switchList(16),
		Seed:        7,
		StateShards: shards,
	}, env)
	if err != nil {
		t.Fatal(err)
	}
	return c, env
}

// stormBatch builds a deterministic storm: packets between warm hosts
// (every host h lives on switch h%16+1) with a slice of never-learned
// destinations mixed in.
func stormBatch(events int, seed uint64) []openflow.PacketIn {
	rng := rand.New(rand.NewPCG(seed, seed^0xdead))
	batch := make([]openflow.PacketIn, events)
	for i := range batch {
		src := model.HostID(1 + rng.IntN(256))
		dst := model.HostID(1 + rng.IntN(256))
		if rng.Float64() < 0.10 {
			dst = model.HostID(10_000 + rng.IntN(100)) // never learned
		}
		batch[i] = openflow.PacketIn{
			Switch: model.SwitchID(uint32(src)%16 + 1),
			Reason: openflow.ReasonNoMatch,
			Packet: model.Packet{
				SrcMAC: model.HostMAC(src),
				DstMAC: model.HostMAC(dst),
				SrcIP:  model.HostIP(src),
				DstIP:  model.HostIP(dst),
				VLAN:   1,
				Ether:  model.EtherTypeIPv4,
				Bytes:  1000,
			},
		}
	}
	return batch
}

// warmLearning teaches the controller every host location through the
// sequential path, so burst decisions are interleaving-independent.
func warmLearning(c *Controller) {
	for h := model.HostID(1); h <= 256; h++ {
		c.HandleMessage(model.SwitchID(uint32(h)%16+1), &openflow.PacketIn{
			Switch: model.SwitchID(uint32(h)%16 + 1),
			Packet: model.Packet{
				SrcMAC: model.HostMAC(h),
				DstMAC: model.HostMAC(10_000 + h), // unknown: flood, learn src
				VLAN:   1,
			},
		})
	}
}

// TestBurstShardDifferential drives the same storm through a
// single-shard controller and an 8-shard controller and asserts the
// final C-LIB, learned, and pending state — and the visible stats —
// are identical (learning mode).
func TestBurstShardDifferential(t *testing.T) {
	batch := stormBatch(4096, 11)
	run := func(shards int) (*Controller, *recordingEnv) {
		c, env := newDirectController(t, ModeLearning, shards)
		warmLearning(c)
		env.reset()
		c.ProcessBurst(batch)
		return c, env
	}
	c1, env1 := run(1)
	c8, env8 := run(8)
	if c1.StateShardCount() != 1 || c8.StateShardCount() != 8 {
		t.Fatalf("shard counts = %d/%d, want 1/8", c1.StateShardCount(), c8.StateShardCount())
	}
	if !reflect.DeepEqual(c1.LearnedLocations(), c8.LearnedLocations()) {
		t.Error("learned tables differ between shard counts")
	}
	if !reflect.DeepEqual(c1.state.snapshotPending(), c8.state.snapshotPending()) {
		t.Error("pending tables differ between shard counts")
	}
	if c1.CLIB().Len() != 0 || c8.CLIB().Len() != 0 {
		t.Error("learning mode touched the C-LIB")
	}
	if c1.Stats() != c8.Stats() {
		t.Errorf("stats differ:\n 1 shard: %+v\n 8 shards: %+v", c1.Stats(), c8.Stats())
	}
	if !reflect.DeepEqual(env1.sendCounts(), env8.sendCounts()) {
		t.Errorf("send counts differ: %v vs %v", env1.sendCounts(), env8.sendCounts())
	}
	if got := c1.Stats().PacketIns; got != 4096+256 { // storm + warmup
		t.Errorf("PacketIns = %d, want %d", got, 4096+256)
	}
	if c1.Stats().Floods == 0 || c1.Stats().FlowModsSent == 0 {
		t.Errorf("storm exercised no floods or installs: %+v", c1.Stats())
	}
}

// TestBurstShardDifferentialLazy repeats the differential in lazy mode:
// C-LIB hits install rules, misses queue pending flows; both tables
// must match the single-shard result, including per-MAC queue order.
func TestBurstShardDifferentialLazy(t *testing.T) {
	batch := stormBatch(4096, 13)
	run := func(shards int) *Controller {
		c, _ := newDirectController(t, ModeLazy, shards)
		for h := model.HostID(1); h <= 256; h++ {
			c.CLIB().Update(model.HostMAC(h), model.HostIP(h), 1, model.SwitchID(uint32(h)%16+1), 1)
		}
		c.ProcessBurst(batch)
		return c
	}
	c1 := run(1)
	c8 := run(8)
	p1, p8 := c1.state.snapshotPending(), c8.state.snapshotPending()
	if !reflect.DeepEqual(p1, p8) {
		t.Errorf("pending tables differ: %d vs %d MACs", len(p1), len(p8))
	}
	if c1.CLIB().Len() != c8.CLIB().Len() {
		t.Error("C-LIB sizes differ")
	}
	if c1.Stats() != c8.Stats() {
		t.Errorf("stats differ:\n 1 shard: %+v\n 8 shards: %+v", c1.Stats(), c8.Stats())
	}
	if c1.PendingFlows() == 0 {
		t.Error("storm queued no pending flows")
	}
}

// TestBatchOfPacketInsViaHandleMessage checks the mailbox entry point:
// a Batch of PacketIns fans out through ProcessBurst.
func TestBatchOfPacketInsViaHandleMessage(t *testing.T) {
	c, _ := newDirectController(t, ModeLearning, 8)
	warmLearning(c)
	batch := stormBatch(64, 3)
	msgs := make([]openflow.Message, len(batch))
	for i := range batch {
		pi := batch[i]
		msgs[i] = &pi
	}
	before := c.Stats().PacketIns
	c.HandleMessage(5, &openflow.Batch{Msgs: msgs})
	if got := c.Stats().PacketIns - before; got != 64 {
		t.Errorf("batch of 64 PacketIns counted %d", got)
	}
}

// TestBatchedGroupPush asserts the regroup push invariant: at most one
// OpenFlow message per destination switch per round, with the
// GroupConfig leading its preloads.
func TestBatchedGroupPush(t *testing.T) {
	c, env := newDirectController(t, ModeLazy, 4)
	m := grouping.NewIntensity()
	m.Add(1, 2, 100)
	m.Add(3, 4, 100)
	m.Add(1, 3, 1)
	if err := c.InitialGrouping(m); err != nil {
		t.Fatal(err)
	}
	// Initial push: empty C-LIB, so plain GroupConfigs — still one
	// message per destination.
	for sw, n := range env.sendCounts() {
		if n != 1 {
			t.Errorf("initial push sent %d messages to %v, want 1", n, sw)
		}
	}
	// Populate the C-LIB and re-push as a membership-changing regroup
	// round (clearing every push fingerprint stands in for SGI having
	// reshaped every group; an unchanged destination is skipped by
	// design).
	for h := model.HostID(1); h <= 64; h++ {
		sw := model.SwitchID(uint32(h)%16 + 1)
		c.CLIB().Update(model.HostMAC(h), model.HostIP(h), 1, sw, c.Grouping().GroupOf(sw))
	}
	env.reset()
	c.pushedMembers = make(map[model.GroupID]uint64)
	c.pushedCfg = make(map[model.SwitchID]uint64)
	c.pushedFilters = make(map[model.SwitchID]map[model.SwitchID]uint64)
	c.pushGroupConfigs(false)
	counts := env.sendCounts()
	if len(counts) == 0 {
		t.Fatal("re-push sent nothing")
	}
	for sw, n := range counts {
		if n != 1 {
			t.Errorf("regroup round sent %d messages to %v, want ≤1", n, sw)
		}
	}
	if c.Stats().BatchedPushes == 0 || c.Stats().RulesPreload == 0 {
		t.Errorf("no batched preloads: %+v", c.Stats())
	}
	// Every batch leads with the GroupConfig, followed by the group's
	// preloaded G-FIB filters (encoded once, shared across receivers).
	env.mu.Lock()
	defer env.mu.Unlock()
	sawBatch := false
	for to, msgs := range env.sends {
		b, ok := msgs[0].(*openflow.Batch)
		if !ok {
			continue // groups with no peer state push a bare GroupConfig
		}
		sawBatch = true
		cfg, ok := b.Msgs[0].(*openflow.GroupConfig)
		if !ok {
			t.Errorf("batch to %v does not lead with GroupConfig", to)
			continue
		}
		if len(b.Msgs) != 2 {
			t.Errorf("batch to %v carries %d messages, want GroupConfig + preload", to, len(b.Msgs))
			continue
		}
		u, ok := b.Msgs[1].(*openflow.GFIBUpdate)
		if !ok {
			t.Errorf("batch to %v carries %T, want *openflow.GFIBUpdate", to, b.Msgs[1])
			continue
		}
		if u.Group != cfg.Group || len(u.Filters) == 0 {
			t.Errorf("preload to %v = group %v with %d filters", to, u.Group, len(u.Filters))
		}
	}
	if !sawBatch {
		t.Error("no batched push observed despite populated C-LIB")
	}
}

// TestDeadSwitchEvictsLearnedAndPending is the regression test for the
// failover state leak: once a switch is diagnosed dead, learned
// locations on it must be forgotten (flows fall back to flooding and
// find the host where it reappears) and pending flows from it dropped.
func TestDeadSwitchEvictsLearnedAndPending(t *testing.T) {
	s := sim.New(1)
	n := netsim.New(s, netsim.DefaultLatencies())
	delivered := make(map[model.SwitchID]int)
	ctrl, err := New(Config{
		Mode:              ModeLearning,
		Switches:          []model.SwitchID{1, 2, 3},
		Seed:              7,
		KeepAliveInterval: time.Second,
		RuleIdleTimeout:   3 * time.Second,
	}, n.Env(model.ControllerNode))
	if err != nil {
		t.Fatal(err)
	}
	n.Attach(ctrl)
	n.SetSameGroup(ctrl.SameGroup)
	ctrl.Start()
	switches := make(map[model.SwitchID]*edge.Switch)
	for _, id := range []model.SwitchID{1, 2, 3} {
		id := id
		sw := edge.New(edge.Config{
			ID:                id,
			AdvertiseInterval: time.Second,
			OnDeliver:         func(p *model.Packet, at time.Duration) { delivered[id]++ },
		}, n.Env(id))
		n.Attach(sw)
		sw.Start()
		switches[id] = sw
	}
	switches[1].AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	switches[2].AttachHost(model.HostMAC(50), model.HostIP(50), 1)
	s.RunFor(time.Second)

	// Host 50 speaks from switch 2 (controller learns it), then host 10
	// reaches it through an installed rule.
	switches[2].InjectLocal(pkt(50, 10))
	s.RunFor(time.Second)
	switches[1].InjectLocal(pkt(10, 50))
	s.RunFor(time.Second)
	if delivered[2] != 1 {
		t.Fatalf("warm flow not delivered to switch 2 (delivered=%v)", delivered)
	}
	if got := ctrl.LearnedLocations()[model.HostMAC(50)]; got != 2 {
		t.Fatalf("host 50 learned at %v, want 2", got)
	}
	// Seed a pending flow from the soon-dead ingress (the lazy-path
	// table is mode-independent state).
	ctrl.state.appendPending(model.HostMAC(99), pendingFlow{ingress: 2, since: s.Now().Duration()})

	// Kill the switch and close the diagnosis (ungrouped learning mode
	// has no ring evidence, so Table I alone cannot conclude DiagSwitch;
	// the eviction path is what this test pins down).
	n.FailNode(2)
	ctrl.actOnDiagnosis(2, failover.DiagSwitch)
	s.RunFor(4 * time.Second) // let the stale rule on switch 1 idle out
	if !ctrl.dead[2] {
		t.Fatal("switch 2 not marked dead")
	}
	if _, ok := ctrl.LearnedLocations()[model.HostMAC(50)]; ok {
		t.Error("learned entry for a host on the dead switch survived diagnosis")
	}
	if ctrl.PendingFlows() != 0 {
		t.Error("pending flow from the dead ingress survived diagnosis")
	}
	st := ctrl.Stats()
	if st.LearnedEvicted == 0 || st.PendingEvicted == 0 {
		t.Errorf("eviction stats not counted: %+v", st)
	}

	// The host reappears on switch 3; traffic must reach it by flooding
	// instead of black-holing into the dead rule target.
	switches[3].AttachHost(model.HostMAC(50), model.HostIP(50), 1)
	floodsBefore := ctrl.Stats().Floods
	switches[1].InjectLocal(pkt(10, 50))
	s.RunFor(2 * time.Second)
	if ctrl.Stats().Floods == floodsBefore {
		t.Error("flow to the vanished host did not fall back to flooding")
	}
	if delivered[3] != 1 {
		t.Errorf("reappeared host never reached (delivered=%v)", delivered)
	}
}

// TestLFIBAnswerCreditsKeepalive is the regression test for the
// discarded `from`: a switch whose heartbeats are lost but which keeps
// answering ARP relays must not be suspected.
func TestLFIBAnswerCreditsKeepalive(t *testing.T) {
	s := sim.New(1)
	n := netsim.New(s, netsim.DefaultLatencies())
	c, err := New(Config{
		Mode:              ModeLazy,
		Switches:          []model.SwitchID{1},
		KeepAliveInterval: time.Second, // suspicion deadline 3 s
	}, n.Env(model.ControllerNode))
	if err != nil {
		t.Fatal(err)
	}
	c.lastAck[1] = 0
	s.RunFor(2500 * time.Millisecond)
	c.handleLFIBAnswer(1, &openflow.LFIBUpdate{
		Origin:  1,
		Entries: []openflow.LFIBEntry{{MAC: model.HostMAC(1), IP: model.HostIP(1), VLAN: 1}},
	})
	s.RunFor(1500 * time.Millisecond) // 4 s since the stale ack
	c.checkFailures()
	if got := c.Stats().KeepAliveLost; got != 0 {
		t.Errorf("chatty switch suspected: KeepAliveLost = %d", got)
	}
	if c.detector.Pending() != 0 {
		t.Error("failure evidence accumulated against the answering switch")
	}
	if c.dead[1] {
		t.Error("answering switch marked dead")
	}
}

// TestExpirePendingAliasSafe is the regression test for the flows[:0]
// rebuild: expiry must never write into a backing array a previous
// takePending caller may still hold.
func TestExpirePendingAliasSafe(t *testing.T) {
	c, _ := newDirectController(t, ModeLazy, 1)
	mac := model.HostMAC(1)
	old := pendingFlow{ingress: 7, since: 0}
	fresh := pendingFlow{ingress: 8, since: 90 * time.Millisecond}
	c.state.appendPending(mac, old)
	c.state.appendPending(mac, fresh)
	// Hold the internal backing array, as a resolver iterating flows
	// handed out by takePending would.
	held := c.state.shardFor(mac).pending[mac]
	if n := c.state.expirePending(100*time.Millisecond, 50*time.Millisecond); n != 1 {
		t.Fatalf("expired %d flows, want 1", n)
	}
	if held[0].ingress != 7 {
		t.Errorf("expiry overwrote a held slice: ingress = %v, want 7", held[0].ingress)
	}
	kept := c.state.snapshotPending()[mac]
	if len(kept) != 1 || kept[0].ingress != 8 {
		t.Errorf("kept flows = %+v, want the fresh flow only", kept)
	}
}

// TestPendingConcurrentChurn exercises append/take/expire from many
// goroutines; under -race it proves the pending path is stripe-safe.
func TestPendingConcurrentChurn(t *testing.T) {
	c, _ := newDirectController(t, ModeLazy, 8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				mac := model.HostMAC(model.HostID(i % 37))
				c.state.appendPending(mac, pendingFlow{
					ingress: model.SwitchID(g + 1),
					since:   time.Duration(i) * time.Millisecond,
				})
				if i%3 == 0 {
					for _, f := range c.state.takePending(mac) {
						_ = f.ingress
					}
				}
				if i%7 == 0 {
					c.state.expirePending(time.Duration(i)*time.Millisecond, 100*time.Millisecond)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestStateShardRoundUp pins the power-of-two rounding.
func TestStateShardRoundUp(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16},
	} {
		if got := newStateShards(tc.in).count(); got != tc.want {
			t.Errorf("newStateShards(%d) = %d shards, want %d", tc.in, got, tc.want)
		}
	}
	// Absurd shard requests are capped (the burst workers index shards
	// with uint16 ids; a stripe per core is plenty anyway).
	if got := (Config{Mode: ModeLazy, StateShards: 1 << 20}).withDefaults().StateShards; got != 1024 {
		t.Errorf("StateShards cap = %d, want 1024", got)
	}
	// Every MAC must land inside the table for odd sizes too.
	tbl := newStateShards(4)
	for h := model.HostID(0); h < 10_000; h++ {
		idx := tbl.shardIndex(model.HostMAC(h))
		if idx < 0 || idx >= tbl.count() {
			t.Fatalf("shardIndex(%v) = %d out of range", model.HostMAC(h), idx)
		}
	}
}
