package controller

import (
	"lazyctrl/internal/model"
	"lazyctrl/internal/telemetry"
)

// This file holds the controller's telemetry-span plumbing. Spans are
// only ever created in ordered code — the apply phase and the periodic
// duties, never ProcessBurst's concurrent decide workers — so span IDs
// come out in a deterministic sequence (see telemetry.Tracer).
//
// The regroup trace covers one push round: a "regroup" root opened by
// the trigger, a "regroup.mlkp" child around the grouping update, and
// one push span per destination the round actually shipped to. Push
// spans that await a ConfigAck stay open in pushSpans until the ack
// arrives (supervision retries extend the same span), so their duration
// is the paper's push→ack convergence time; preload-only pushes and
// skipped destinations are recorded as instant spans.

// tracePushSkip records a destination a push round sent nothing to.
func (c *Controller) tracePushSkip(dest model.SwitchID) {
	if tr := c.cfg.Tracer; tr != nil && c.regroupCtx.Sampled() {
		now := c.env.Now()
		tr.Emit(c.regroupCtx, "regroup.skip", now, now,
			telemetry.Attr{Key: "sw", Val: int64(dest)})
	}
}

// tracePush records one destination's share of a push round. awaitAck
// marks pushes whose GroupConfig is under supervision: their span stays
// open until the destination's ConfigAck (or supervision gives up).
func (c *Controller) tracePush(dest model.SwitchID, awaitAck bool, nFull, nDelta int) {
	tr := c.cfg.Tracer
	if tr == nil || !c.regroupCtx.Sampled() {
		return
	}
	if !awaitAck {
		now := c.env.Now()
		tr.Emit(c.regroupCtx, "regroup.push", now, now,
			telemetry.Attr{Key: "sw", Val: int64(dest)},
			telemetry.Attr{Key: "full", Val: int64(nFull)},
			telemetry.Attr{Key: "delta", Val: int64(nDelta)})
		return
	}
	// A newer round superseding an unacked push closes the old span;
	// its duration then measures how long the stale config was in
	// flight, not a lie about convergence.
	if old := c.pushSpans[dest]; old != nil {
		old.Attr("superseded", 1).End()
	}
	c.pushSpans[dest] = tr.StartSpan(c.regroupCtx, "regroup.push").
		Attr("sw", int64(dest)).
		Attr("full", int64(nFull)).
		Attr("delta", int64(nDelta))
}

// endPushSpan closes the open push span for a destination, if any,
// stamping the outcome ("acked", "cancelled", "abandoned").
func (c *Controller) endPushSpan(dest model.SwitchID, outcome string) {
	if sp := c.pushSpans[dest]; sp != nil {
		sp.Attr(outcome, 1).End()
		delete(c.pushSpans, dest)
	}
}

// traceCtrl records the controller's ordered apply step of one sampled
// escalation as an instant "pktin.ctrl" span carrying the decision.
func (c *Controller) traceCtrl(ctx telemetry.SpanContext, kind decisionKind) {
	if tr := c.cfg.Tracer; tr != nil && ctx.Sampled() {
		now := c.env.Now()
		tr.Emit(ctx, "pktin.ctrl", now, now,
			telemetry.Attr{Key: "decision", Val: int64(kind)})
	}
}
