package controller

import (
	"sync"
	"time"

	"lazyctrl/internal/model"
)

// stateShard is one lock stripe of the controller's per-MAC hot state:
// the learning-mode location table and the pending-flow table. Both are
// keyed by MAC, so one hash places an event's state and one mutex
// covers it; the concurrent burst intake (ProcessBurst) locks at most
// two stripes per packet (source learn, destination lookup), never
// nested.
type stateShard struct {
	mu      sync.Mutex
	learned map[model.MAC]model.SwitchID
	pending map[model.MAC][]pendingFlow
}

// stateShards is the lock-striped table. The shard count is fixed at
// construction (Config.StateShards, rounded up to a power of two) so
// the MAC→shard mapping is a multiply and a shift.
type stateShards struct {
	shards []stateShard
	shift  uint // 64 - log2(len(shards))
}

func newStateShards(n int) *stateShards {
	if n < 1 {
		n = 1
	}
	// Round up to a power of two.
	pow := 1
	shift := uint(64)
	for pow < n {
		pow <<= 1
		shift--
	}
	t := &stateShards{shards: make([]stateShard, pow), shift: shift}
	for i := range t.shards {
		t.shards[i].learned = make(map[model.MAC]model.SwitchID)
		t.shards[i].pending = make(map[model.MAC][]pendingFlow)
	}
	return t
}

func (t *stateShards) count() int { return len(t.shards) }

// shardIndex maps a MAC to its stripe (Fibonacci hash on the packed
// address; the shift keeps the top log2(n) bits). A shift of 64 (one
// shard) yields index 0 for every key.
func (t *stateShards) shardIndex(mac model.MAC) int {
	return int((mac.Uint64() * 0x9E3779B97F4A7C15) >> t.shift)
}

func (t *stateShards) shardFor(mac model.MAC) *stateShard {
	return &t.shards[t.shardIndex(mac)]
}

// learn records a host location observed from a PacketIn source.
func (t *stateShards) learn(mac model.MAC, sw model.SwitchID) {
	s := t.shardFor(mac)
	s.mu.Lock()
	s.learned[mac] = sw
	s.mu.Unlock()
}

// locate returns the learned location of a MAC.
func (t *stateShards) locate(mac model.MAC) (model.SwitchID, bool) {
	s := t.shardFor(mac)
	s.mu.Lock()
	sw, ok := s.learned[mac]
	s.mu.Unlock()
	return sw, ok
}

// appendPending queues a flow awaiting host-location resolution.
func (t *stateShards) appendPending(mac model.MAC, f pendingFlow) {
	s := t.shardFor(mac)
	s.mu.Lock()
	s.pending[mac] = append(s.pending[mac], f)
	s.mu.Unlock()
}

// takePending removes and returns the flows pending on a MAC. The
// returned slice is owned by the caller: the table never touches its
// backing array again.
func (t *stateShards) takePending(mac model.MAC) []pendingFlow {
	s := t.shardFor(mac)
	s.mu.Lock()
	flows := s.pending[mac]
	if flows != nil {
		delete(s.pending, mac)
	}
	s.mu.Unlock()
	return flows
}

// pendingLen returns the total number of queued flows.
func (t *stateShards) pendingLen() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, flows := range s.pending {
			n += len(flows)
		}
		s.mu.Unlock()
	}
	return n
}

// expirePending drops queued flows older than timeout and returns how
// many were dropped. The kept flows are rebuilt into a fresh slice —
// never compacted in place with flows[:0] — because takePending hands
// backing arrays out to handleLFIBAnswer, which may still be iterating
// them on another goroutine when the expiry timer fires; an in-place
// rebuild would overwrite entries under that reader.
func (t *stateShards) expirePending(now, timeout time.Duration) int {
	expired := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for mac, flows := range s.pending {
			drop := 0
			for _, f := range flows {
				if now-f.since >= timeout {
					drop++
				}
			}
			if drop == 0 {
				continue
			}
			expired += drop
			if drop == len(flows) {
				delete(s.pending, mac)
				continue
			}
			keep := make([]pendingFlow, 0, len(flows)-drop)
			for _, f := range flows {
				if now-f.since < timeout {
					keep = append(keep, f)
				}
			}
			s.pending[mac] = keep
		}
		s.mu.Unlock()
	}
	return expired
}

// evictSwitch drops every learned binding located at sw and every
// pending flow whose ingress is sw (the switch was diagnosed dead:
// installing rules on it or forwarding flows to it is a black hole).
// It returns the number of learned entries and pending flows removed.
func (t *stateShards) evictSwitch(sw model.SwitchID) (learned, pending int) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for mac, loc := range s.learned {
			if loc == sw {
				delete(s.learned, mac)
				learned++
			}
		}
		for mac, flows := range s.pending {
			drop := 0
			for _, f := range flows {
				if f.ingress == sw {
					drop++
				}
			}
			if drop == 0 {
				continue
			}
			pending += drop
			if drop == len(flows) {
				delete(s.pending, mac)
				continue
			}
			keep := make([]pendingFlow, 0, len(flows)-drop)
			for _, f := range flows {
				if f.ingress != sw {
					keep = append(keep, f)
				}
			}
			s.pending[mac] = keep
		}
		s.mu.Unlock()
	}
	return learned, pending
}

// snapshotLearned copies the learned table (tests and introspection).
func (t *stateShards) snapshotLearned() map[model.MAC]model.SwitchID {
	out := make(map[model.MAC]model.SwitchID)
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for mac, sw := range s.learned {
			out[mac] = sw
		}
		s.mu.Unlock()
	}
	return out
}

// snapshotPending copies the pending table (tests and introspection).
func (t *stateShards) snapshotPending() map[model.MAC][]pendingFlow {
	out := make(map[model.MAC][]pendingFlow)
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for mac, flows := range s.pending {
			out[mac] = append([]pendingFlow(nil), flows...)
		}
		s.mu.Unlock()
	}
	return out
}
