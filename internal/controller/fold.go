package controller

import (
	"time"

	"lazyctrl/internal/metrics"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/openflow"
)

// foldCap is the quiet answer for "indefinitely foldable" tasks; the
// simulator clamps to its own span cap.
const foldCap = 1 << 20

// wakeTask re-materializes a fold task if one is registered.
func wakeTask(t netsim.ElidableTask) {
	if t != nil {
		t.Wake()
	}
}

// WakeFoldTasks re-materializes the controller's folded timers; the
// harness calls it on every underlay fault change.
func (c *Controller) WakeFoldTasks() {
	wakeTask(c.kaTask)
	wakeTask(c.expireTask)
}

// KACreditedThrough returns the boundary through which the controller's
// keep-alive rounds were settled analytically (zero when never folded).
// Edge switches read it (via edge.FoldHooks.CtrlKACreditedThrough) so
// the degraded-mode check treats the folded broadcast as heard.
func (c *Controller) KACreditedThrough() time.Duration {
	if c.kaTask == nil {
		return 0
	}
	return c.kaTask.CreditedThrough()
}

// kaQuiet proves upcoming keep-alive rounds creditable: the underlay
// is fault-free (every probe reaches its switch and every ack returns),
// no switch is marked dead (dead switches are probed on a different
// cadence), and the failure detector holds no open evidence whose
// diagnosis window a folded check round would have closed.
func (c *Controller) kaQuiet() int {
	if c.cfg.FoldGate == nil || !c.cfg.FoldGate() {
		return 0
	}
	// Replication and the control fold do not compose: folding the
	// keep-alive task would also fold the master→standby heartbeat, and
	// the standby (a separate node with its own clock) would read the
	// silence as a dead primary and take over. Replicated runs keep
	// every keep-alive round real.
	if c.cfg.Peer != 0 {
		return 0
	}
	if len(c.dead) > 0 || c.detector.Pending() > 0 {
		return 0
	}
	return foldCap
}

// kaCredit settles folded keep-alive rounds: the probe sequence
// advances and the per-round wire bytes — one probe per switch, one
// ack back — are credited. Switch-side freshness is recovered lazily
// through KACreditedThrough; ack freshness here through the same
// boundary in checkFailures.
func (c *Controller) kaCredit(rounds int) {
	c.kaSeq += uint64(rounds)
	if c.cfg.FoldMeter == nil {
		return
	}
	n := uint64(rounds)
	ka := &openflow.KeepAlive{From: c.addr, Seq: c.kaSeq, Generation: c.generation}
	ack := &openflow.KeepAlive{Seq: c.kaSeq}
	for _, sw := range c.cfg.Switches {
		c.cfg.FoldMeter(c.addr, sw, ka, n)
		ack.From = sw
		c.cfg.FoldMeter(sw, c.addr, ack, n)
	}
}

// expireQuiet proves upcoming ARP-expiry rounds no-ops: no flow is
// pending resolution. A new pending flow wakes the task at its append
// site, so the first post-fold check runs within one timeout.
func (c *Controller) expireQuiet() int {
	if c.cfg.FoldGate == nil || !c.cfg.FoldGate() {
		return 0
	}
	if c.state.pendingLen() > 0 {
		return 0
	}
	return foldCap
}

// CreditFoldedStateReport accounts one folded empty designated-switch
// report at its round time: the same request-class bucket and counter
// a real empty report would have fed, so workload series stay
// bucket-exact across the fold.
func (c *Controller) CreditFoldedStateReport(at time.Duration) {
	if c.cfg.Recorder != nil {
		c.cfg.Recorder.CountRequest(metrics.ReqStateReport, at, 1)
	}
	c.stats.StateReports++
}
