package controller

import (
	"sync"

	"lazyctrl/internal/model"
	"lazyctrl/internal/openflow"
)

// ProcessBurst handles a packet-in storm as one burst: the shard-local
// decide phase (source learning, destination location, forwarding
// classification) fans out across one worker per state shard, then the
// apply phase (workload accounting, intensity updates, message
// emission) runs sequentially in input order. Per-shard intake means a
// worker owns every event whose destination MAC hashes to its shard,
// so per-destination decisions keep their input order; cross-shard
// source learns go through the stripe locks.
//
// The ordered apply phase is the determinism anchor: all merging into
// unsharded state (queueing model, intensity matrix, stats, message
// sends) happens in input order regardless of the shard count, so a
// burst over a stable workload — every source MAC attached to one
// switch, the storm's defining shape — leaves C-LIB, learned, and
// pending state identical to the single-shard (fully sequential) run.
// A source that migrates between switches mid-burst resolves
// last-write-wins, and a destination first introduced by another
// packet of the same burst may classify as known or unknown depending
// on worker interleaving — exactly as racing packets into any
// multi-threaded controller would. The deterministic DES emulations
// never take this path (switches deliver PacketIns one at a time), so
// their outputs stay seed-identical.
//
// The caller must not deliver other messages to the controller while a
// burst is in flight; in live mode that holds for free because bursts
// arrive as openflow.Batch messages on the serialized mailbox.
func (c *Controller) ProcessBurst(batch []openflow.PacketIn) {
	n := len(batch)
	if n == 0 {
		return
	}
	decisions := make([]pinDecision, n)
	workers := c.state.count()
	if workers == 1 || n == 1 {
		for i := range batch {
			decisions[i] = c.decide(&batch[i])
		}
	} else {
		// Route each event to the worker owning its destination shard.
		// Workers scan the shared owner index instead of draining
		// channels: the scan is branch-predictable and keeps per-shard
		// FIFO order equal to input order by construction.
		owner := make([]uint16, n)
		for i := range batch {
			owner[i] = uint16(c.state.shardIndex(batch[i].Packet.DstMAC))
		}
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(w uint16) {
				defer wg.Done()
				for i := range batch {
					if owner[i] == w {
						decisions[i] = c.decide(&batch[i])
					}
				}
			}(uint16(w))
		}
		wg.Wait()
	}
	// The ordered apply phase resolves ARP relay targets through the
	// per-burst memo: one designated-switch resolution per (VLAN,
	// grouping version) instead of one per pending flow.
	c.arpCacheOn = true
	c.arpCacheVer = c.groupingVersion
	for i := range batch {
		c.apply(&batch[i], decisions[i])
	}
	c.arpCacheOn = false
	clear(c.arpCache)
}

// StateShardCount reports the number of lock stripes backing the
// controller's per-MAC hot state.
func (c *Controller) StateShardCount() int { return c.state.count() }

// LearnedLocations returns a copy of the learning-mode location table
// (introspection and differential testing).
func (c *Controller) LearnedLocations() map[model.MAC]model.SwitchID {
	return c.state.snapshotLearned()
}

// PendingFlows reports how many flows are queued awaiting location
// resolution.
func (c *Controller) PendingFlows() int { return c.state.pendingLen() }
