package controller

import (
	"time"

	"lazyctrl/internal/failover"
	"lazyctrl/internal/metrics"
	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/openflow"
)

// HandleMessage implements netsim.Node.
func (c *Controller) HandleMessage(from model.SwitchID, msg netsim.Message) {
	if netsim.HandleTimer(msg) {
		return
	}
	switch m := msg.(type) {
	case *openflow.PacketIn:
		c.handlePacketIn(m)
	case *openflow.StateReport:
		c.handleStateReport(m)
	case *openflow.LFIBUpdate:
		c.handleLFIBAnswer(from, m)
	case *openflow.FailureReport:
		// Failure reports are control-plane housekeeping, not
		// traffic-driven workload.
		c.record(metrics.ReqKeepAlive, 1)
		c.stats.FailuresSeen++
		c.detector.Observe(m, c.env.Now())
	case *openflow.KeepAlive:
		c.lastAck[m.From] = c.env.Now()
		c.detector.Clear(m.From)
	case *openflow.EchoReply:
		// Liveness only.
	case *openflow.StatsReply:
		// Collected by tooling; nothing to do inline.
	}
}

// record accounts controller workload and feeds the queueing model's
// arrival-rate estimate.
func (c *Controller) record(class metrics.RequestClass, n uint64) {
	if n == 0 {
		n = 1
	}
	now := c.env.Now()
	if c.cfg.Recorder != nil {
		c.cfg.Recorder.CountRequest(class, now, n)
	}
	// Sliding 10-second rate window.
	const window = 10 * time.Second
	if now-c.reqWindowStart >= window {
		c.lastRate = float64(c.reqWindowCount) / (now - c.reqWindowStart).Seconds() * float64(c.cfg.LoadScale)
		c.reqWindowStart = now
		c.reqWindowCount = 0
	}
	c.reqWindowCount += n
}

// SetBackgroundLoad sets a floor on the estimated request rate used by
// the queueing model, representing control traffic outside the
// experiment's scope (e.g. the rest of a production data center during
// a cold-cache probe).
func (c *Controller) SetBackgroundLoad(rps float64) { c.backgroundRate = rps }

// queueDelay models the controller's load-dependent processing delay:
// an M/M/1-style wait at the estimated unscaled arrival rate, capped to
// keep pathological bursts bounded.
func (c *Controller) queueDelay() time.Duration {
	service := time.Duration(float64(time.Second) / c.cfg.ServiceRate)
	rate := c.lastRate
	if c.backgroundRate > rate {
		rate = c.backgroundRate
	}
	rho := rate / c.cfg.ServiceRate
	if rho > 0.98 {
		rho = 0.98
	}
	if rho < 0 {
		rho = 0
	}
	wait := time.Duration(float64(service) * rho / (1 - rho))
	const maxWait = 100 * time.Millisecond
	if wait > maxWait {
		wait = maxWait
	}
	return service + wait
}

// respond schedules fn after the controller's processing delay.
func (c *Controller) respond(fn func()) {
	c.env.After(c.queueDelay(), fn)
}

// WorkloadRate returns the controller's current estimated unscaled
// request rate (requests/second).
func (c *Controller) WorkloadRate() float64 { return c.lastRate }

// handlePacketIn is the Ctrl-IF entry point for both modes.
func (c *Controller) handlePacketIn(m *openflow.PacketIn) {
	c.record(metrics.ReqPacketIn, 1)
	c.stats.PacketIns++

	// Intensity estimation: the controller observes the flows it must
	// handle itself.
	if dst := c.locate(m.Packet.DstMAC); dst != model.NoSwitch && dst != m.Switch {
		c.intensity.Add(m.Switch, dst, 1)
	}

	switch c.cfg.Mode {
	case ModeLearning:
		c.handleLearning(m)
	default:
		c.handleLazy(m)
	}
}

// locate returns the switch hosting a MAC under the active mode's
// knowledge.
func (c *Controller) locate(mac model.MAC) model.SwitchID {
	if c.cfg.Mode == ModeLearning {
		return c.learned[mac]
	}
	if e := c.clib.Lookup(mac); e != nil {
		return e.Switch
	}
	return model.NoSwitch
}

// handleLearning reproduces the baseline OpenFlow learning switch: learn
// the source location from the PacketIn, then either install a rule to
// the known destination or flood the packet to every edge switch.
func (c *Controller) handleLearning(m *openflow.PacketIn) {
	c.learned[m.Packet.SrcMAC] = m.Switch
	dst, known := c.learned[m.Packet.DstMAC]
	if known && dst != m.Switch {
		c.respond(func() { c.installAndForward(m.Switch, dst, m.Packet) })
		return
	}
	if known && dst == m.Switch {
		// Both endpoints local: bounce the packet back for delivery.
		c.respond(func() {
			c.stats.PacketOuts++
			c.env.Send(m.Switch, &openflow.PacketOut{
				Actions: []openflow.Action{openflow.Flood()},
				Packet:  m.Packet,
			})
		})
		return
	}
	// Unknown destination: flood to all switches. Emitting one copy per
	// switch serializes on the controller CPU, which is the
	// passive-learning cost the paper's §V-E attributes OpenFlow's
	// 15 ms cold cache to: with hundreds of edge switches the average
	// copy leaves the controller half a fan-out later.
	c.stats.Floods++
	c.record(metrics.ReqFloodOut, uint64(len(c.cfg.Switches)))
	pkt := m.Packet
	service := time.Duration(float64(time.Second) / c.cfg.ServiceRate)
	base := c.queueDelay()
	for i, sw := range c.cfg.Switches {
		if sw == m.Switch {
			continue
		}
		sw := sw
		p := pkt
		c.env.After(base+time.Duration(i)*service, func() { c.env.Send(sw, &p) })
	}
}

// handleLazy serves inter-group (and stale-G-FIB) flows from the C-LIB,
// falling back to tenant-scoped ARP relay when the destination is
// unknown (§III-D3).
func (c *Controller) handleLazy(m *openflow.PacketIn) {
	if e := c.clib.Lookup(m.Packet.DstMAC); e != nil && e.Switch != m.Switch {
		dst := e.Switch
		c.respond(func() { c.installAndForward(m.Switch, dst, m.Packet) })
		return
	}
	// Unknown (or local-only) destination: relay an ARP query to the
	// designated switches of every group hosting the packet's tenant
	// (VLAN).
	c.pending[m.Packet.DstMAC] = append(c.pending[m.Packet.DstMAC], pendingFlow{
		ingress: m.Switch,
		packet:  m.Packet,
		since:   c.env.Now(),
	})
	c.relayARP(m.Packet)
}

// relayARP fans an ARP query out to designated switches of the groups
// that contain hosts of the packet's VLAN.
func (c *Controller) relayARP(p model.Packet) {
	arp := &openflow.ARPRelay{
		Tenant: c.tenants[p.VLAN],
		Packet: model.Packet{
			SrcMAC:    p.SrcMAC,
			DstMAC:    model.BroadcastMAC,
			Ether:     model.EtherTypeARP,
			ARPOp:     model.ARPRequest,
			ARPTarget: p.DstIP,
			VLAN:      p.VLAN,
			Injected:  p.Injected,
		},
	}
	targets := c.designatedForVLAN(p.VLAN)
	if len(targets) == 0 {
		// No known placement yet: query every designated switch.
		targets = c.allDesignated()
	}
	c.stats.ARPRelays += uint64(len(targets))
	c.record(metrics.ReqARPRelay, uint64(len(targets)))
	c.respond(func() {
		for _, d := range targets {
			c.env.Send(d, arp)
		}
	})
}

// designatedForVLAN returns the designated switches of groups hosting
// the VLAN.
func (c *Controller) designatedForVLAN(vlan model.VLAN) []model.SwitchID {
	groups := make(map[model.GroupID]bool)
	for _, sw := range c.clib.SwitchesWithVLAN(vlan) {
		if g := c.grp.GroupOf(sw); g != model.NoGroup {
			groups[g] = true
		}
	}
	out := make([]model.SwitchID, 0, len(groups))
	for g := range groups {
		out = append(out, c.chooseDesignated(c.grp.Members(g)))
	}
	return out
}

func (c *Controller) allDesignated() []model.SwitchID {
	ids := c.grp.GroupIDs()
	out := make([]model.SwitchID, 0, len(ids))
	for _, g := range ids {
		out = append(out, c.chooseDesignated(c.grp.Members(g)))
	}
	return out
}

// installAndForward installs the inter-group rule on the ingress switch
// and returns the buffered packet with the Encap action (extending
// OpenFlow v1.0, §IV-B).
func (c *Controller) installAndForward(ingress, dst model.SwitchID, p model.Packet) {
	c.stats.FlowModsSent++
	c.stats.PacketOuts++
	c.env.Send(ingress, &openflow.FlowMod{
		Command:     openflow.FlowAdd,
		Match:       openflow.ExactDst(p.DstMAC, p.VLAN),
		Priority:    100,
		IdleTimeout: c.cfg.RuleIdleTimeout,
		Actions:     []openflow.Action{openflow.Encap(dst)},
	})
	c.env.Send(ingress, &openflow.PacketOut{
		Actions: []openflow.Action{openflow.Encap(dst)},
		Packet:  p,
	})
}

// handleStateReport merges a designated switch's aggregated report:
// C-LIB maintenance plus intensity-matrix updates (the input to SGI).
func (c *Controller) handleStateReport(m *openflow.StateReport) {
	c.record(metrics.ReqStateReport, 1)
	c.stats.StateReports++
	for i := range m.LFIBs {
		u := &m.LFIBs[i]
		group := c.grp.GroupOf(u.Origin)
		c.clib.ApplyLFIB(u.Origin, group, u)
	}
	for _, pair := range m.Pairs {
		c.intensity.Add(pair.A, pair.B, float64(pair.NewFlows))
	}
}

// handleLFIBAnswer resolves pending flows when a switch answers an ARP
// relay with a host binding.
func (c *Controller) handleLFIBAnswer(from model.SwitchID, m *openflow.LFIBUpdate) {
	c.record(metrics.ReqPacketIn, 1)
	group := c.grp.GroupOf(m.Origin)
	c.clib.ApplyLFIB(m.Origin, group, m)
	for _, e := range m.Entries {
		flows := c.pending[e.MAC]
		if len(flows) == 0 {
			continue
		}
		delete(c.pending, e.MAC)
		for _, f := range flows {
			if m.Origin == f.ingress {
				continue // destination turned out local; switch handles it
			}
			f := f
			c.respond(func() { c.installAndForward(f.ingress, m.Origin, f.packet) })
		}
	}
	_ = from
}

// expirePending drops unresolved flows past the ARP timeout.
func (c *Controller) expirePending() {
	now := c.env.Now()
	for mac, flows := range c.pending {
		keep := flows[:0]
		for _, f := range flows {
			if now-f.since < c.cfg.ARPTimeout {
				keep = append(keep, f)
			} else {
				c.stats.Unresolved++
			}
		}
		if len(keep) == 0 {
			delete(c.pending, mac)
		} else {
			c.pending[mac] = keep
		}
	}
}

// maybeRegroup evaluates the §IV-B trigger: once the 2-minute minimum
// interval has elapsed (or earlier when workload grew ≥30%), attempt an
// incremental regrouping. Fig. 3's load thresholds inside IncUpdate
// decide whether any merge/split actually happens; only effective
// updates are counted and pushed.
func (c *Controller) maybeRegroup() {
	now := c.env.Now()
	if now-c.lastRegroupAt < c.cfg.RegroupMinInterval {
		return
	}
	if c.grp.NumGroups() == 0 {
		return
	}
	if c.rateAtRegroup == 0 {
		c.rateAtRegroup = c.lastRate
	}
	ops, err := c.sgi.IncUpdate(c.grp, c.intensity, nil)
	if err != nil || ops == 0 {
		return
	}
	c.groupingVersion++
	c.stats.Regroupings++
	c.lastRegroupAt = now
	c.rateAtRegroup = c.lastRate
	c.record(metrics.ReqRegroup, uint64(len(c.cfg.Switches)))
	c.pushGroupConfigs()
	// Age the intensity estimate gently: fresh traffic shifts the
	// balance without discarding the accumulated signal (a hard reset
	// would leave SGI re-splitting on sampling noise).
	c.intensity.Decay(0.9)
	if c.cfg.Recorder != nil {
		c.cfg.Recorder.RecordUpdate(now)
	}
	if c.cfg.OnRegroup != nil {
		c.cfg.OnRegroup(c.groupingVersion, c.grp)
	}
}

// sendKeepAlives probes every switch (the Controller→Sn stream of
// Table I).
func (c *Controller) sendKeepAlives() {
	c.kaSeq++
	for _, sw := range c.cfg.Switches {
		if c.dead[sw] {
			continue
		}
		c.env.Send(sw, &openflow.KeepAlive{From: model.ControllerNode, Seq: c.kaSeq})
	}
}

// checkFailures folds missing acks into the detector and acts on closed
// diagnoses (§III-E2/3).
func (c *Controller) checkFailures() {
	now := c.env.Now()
	deadline := 3 * c.cfg.KeepAliveInterval
	for _, sw := range c.cfg.Switches {
		if c.dead[sw] {
			continue
		}
		last, seen := c.lastAck[sw]
		if !seen {
			c.lastAck[sw] = now
			continue
		}
		if now-last >= deadline {
			c.stats.KeepAliveLost++
			c.detector.ObserveCtrlLoss(sw, now)
		}
	}
	for suspect, diag := range c.detector.Ready(now) {
		c.actOnDiagnosis(suspect, diag)
	}
}

// actOnDiagnosis performs the control-plane side of recovery.
func (c *Controller) actOnDiagnosis(suspect model.SwitchID, diag failover.Diagnosis) {
	switch diag {
	case failover.DiagSwitch:
		c.dead[suspect] = true
		// If the failed switch was its group's designated switch, select
		// a replacement and re-push the group view (§III-E3).
		gid := c.grp.GroupOf(suspect)
		if gid != model.NoGroup {
			members := c.grp.Members(gid)
			if c.chooseDesignatedWas(members, suspect) {
				c.groupingVersion++
				c.pushGroupConfigs()
			}
		}
	case failover.DiagPeerLinkUp, failover.DiagPeerLinkDown:
		// Only matters when a designated switch is an endpoint; the
		// conservative response is a config re-push selecting designated
		// switches afresh.
		if gid := c.grp.GroupOf(suspect); gid != model.NoGroup {
			c.groupingVersion++
			c.pushGroupConfigs()
		}
	case failover.DiagControlLink:
		// Relay via the ring predecessor is arranged by the harness.
	}
	if c.cfg.OnDiagnosis != nil {
		c.cfg.OnDiagnosis(suspect, diag)
	}
}

func (c *Controller) chooseDesignatedWas(members []model.SwitchID, suspect model.SwitchID) bool {
	// Before marking dead the designated would have been the first live
	// wheel member; afterwards the choice changes iff the suspect was it.
	wheel := failover.BuildWheel(members)
	for _, m := range wheel {
		if m == suspect {
			return true
		}
		if !c.dead[m] {
			return false
		}
	}
	return false
}

// MarkRecovered clears a switch's dead flag after the harness reboots
// it, and re-pushes its group configuration to trigger resynchronization
// (§III-E3 step iii).
func (c *Controller) MarkRecovered(sw model.SwitchID) {
	if !c.dead[sw] {
		return
	}
	delete(c.dead, sw)
	c.lastAck[sw] = c.env.Now()
	c.groupingVersion++
	c.pushGroupConfigs()
}
