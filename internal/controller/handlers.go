package controller

import (
	"sort"
	"time"

	"lazyctrl/internal/failover"
	"lazyctrl/internal/metrics"
	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/openflow"
	"lazyctrl/internal/telemetry"
)

// HandleMessage implements netsim.Node.
func (c *Controller) HandleMessage(from model.SwitchID, msg netsim.Message) {
	if netsim.HandleTimer(msg) {
		return
	}
	switch m := msg.(type) {
	case *openflow.PacketIn:
		c.handlePacketIn(m)
	case *openflow.PacketInBurst:
		// An edge switch's micro-batched intake window: the burst goes
		// straight into the sharded decide/apply pipeline.
		c.ProcessBurst(m.PacketIns())
	case *openflow.Batch:
		c.handleBatch(from, m)
	case *openflow.GFIBNack:
		c.handleGFIBNack(m)
	case *openflow.StateReport:
		c.handleStateReport(m)
	case *openflow.LFIBUpdate:
		c.handleLFIBAnswer(from, m)
	case *openflow.FailureReport:
		// Failure reports are control-plane housekeeping, not
		// traffic-driven workload.
		c.record(metrics.ReqKeepAlive, 1)
		c.stats.FailuresSeen++
		c.detector.Observe(m, c.env.Now())
		// Open evidence needs real check rounds to close its window.
		wakeTask(c.kaTask)
	case *openflow.KeepAlive:
		if c.cfg.Peer != 0 && m.From == c.cfg.Peer {
			// The other replica's heartbeat is replication traffic, not a
			// switch ack — it must not pollute the failure bookkeeping.
			c.handlePeerKeepAlive(m)
			return
		}
		c.lastAck[m.From] = c.env.Now()
		c.detector.Clear(m.From)
		c.resurrect(m.From)
	case *openflow.RoleAnnounce:
		c.adoptGeneration(m.Generation, m.From)
	case *openflow.StateSyncRecord:
		c.handleSyncRecord(from, m)
	case *openflow.ConfigAck:
		c.stats.ConfigAcks++
		c.lastAck[m.From] = c.env.Now()
		c.detector.Clear(m.From)
		c.resurrect(m.From)
		if p := c.pushPending[m.From]; p != nil && m.Version >= p.version {
			if p.cancel != nil {
				p.cancel()
			}
			delete(c.pushPending, m.From)
			c.endPushSpan(m.From, "acked")
		}
		if c.awaitingRepush && len(c.pushPending) == 0 {
			c.awaitingRepush = false
			if tl := c.currentTakeover(); tl != nil && tl.RepushedAt == 0 {
				tl.RepushedAt = c.env.Now()
			}
		}
	case *openflow.EchoReply:
		// Liveness only.
	case *openflow.StatsReply:
		// Collected by tooling; nothing to do inline.
	}
}

// record accounts controller workload and feeds the queueing model's
// arrival-rate estimate.
func (c *Controller) record(class metrics.RequestClass, n uint64) {
	if n == 0 {
		n = 1
	}
	now := c.env.Now()
	if c.cfg.Recorder != nil {
		c.cfg.Recorder.CountRequest(class, now, n)
	}
	// Sliding 10-second rate window.
	const window = 10 * time.Second
	if now-c.reqWindowStart >= window {
		c.lastRate = float64(c.reqWindowCount) / (now - c.reqWindowStart).Seconds() * float64(c.cfg.LoadScale)
		c.reqWindowStart = now
		c.reqWindowCount = 0
	}
	c.reqWindowCount += n
}

// SetBackgroundLoad sets a floor on the estimated request rate used by
// the queueing model, representing control traffic outside the
// experiment's scope (e.g. the rest of a production data center during
// a cold-cache probe).
func (c *Controller) SetBackgroundLoad(rps float64) { c.backgroundRate = rps }

// queueDelay models the controller's load-dependent processing delay:
// an M/M/1-style wait at the estimated unscaled arrival rate, capped to
// keep pathological bursts bounded.
func (c *Controller) queueDelay() time.Duration {
	service := time.Duration(float64(time.Second) / c.cfg.ServiceRate)
	rate := c.lastRate
	if c.backgroundRate > rate {
		rate = c.backgroundRate
	}
	rho := rate / c.cfg.ServiceRate
	if rho > 0.98 {
		rho = 0.98
	}
	if rho < 0 {
		rho = 0
	}
	wait := time.Duration(float64(service) * rho / (1 - rho))
	const maxWait = 100 * time.Millisecond
	if wait > maxWait {
		wait = maxWait
	}
	return service + wait
}

// respond schedules fn after the controller's processing delay.
func (c *Controller) respond(fn func()) {
	c.env.After(c.queueDelay(), fn)
}

// WorkloadRate returns the controller's current estimated unscaled
// request rate (requests/second).
func (c *Controller) WorkloadRate() float64 { return c.lastRate }

// handlePacketIn is the Ctrl-IF entry point for both modes: a
// shard-local decide phase followed by the ordered apply phase. The
// split is what ProcessBurst parallelizes; the sequential path runs the
// same two phases back to back so both paths share one semantics.
func (c *Controller) handlePacketIn(m *openflow.PacketIn) {
	d := c.decide(m)
	c.apply(m, d)
}

// handleBatch unpacks a coalesced message. A batch that is purely
// PacketIns is a storm burst and fans out across the state shards; any
// other content (config pushes, preloads) applies sequentially in
// order.
func (c *Controller) handleBatch(from model.SwitchID, m *openflow.Batch) {
	allPacketIns := len(m.Msgs) > 0
	for _, sub := range m.Msgs {
		if _, ok := sub.(*openflow.PacketIn); !ok {
			allPacketIns = false
			break
		}
	}
	if allPacketIns {
		batch := make([]openflow.PacketIn, len(m.Msgs))
		for i, sub := range m.Msgs {
			batch[i] = *sub.(*openflow.PacketIn)
		}
		c.ProcessBurst(batch)
		return
	}
	for _, sub := range m.Msgs {
		if _, nested := sub.(*openflow.Batch); nested {
			continue // decode rejects nesting; ignore hand-built ones
		}
		c.HandleMessage(from, sub)
	}
}

// decisionKind classifies the outcome of the decide phase.
type decisionKind uint8

const (
	// decideFlood floods an unknown destination (learning mode).
	decideFlood decisionKind = iota
	// decideInstall installs an Encap rule toward a known remote switch.
	decideInstall
	// decideBounce returns a packet whose endpoints share the ingress.
	decideBounce
	// decidePend queues the flow and relays a scoped ARP query (lazy).
	decidePend
)

// pinDecision is the shard-local outcome of one PacketIn: what to do,
// where the destination was located for rule installation, and the
// pre-learn location used for intensity accounting.
type pinDecision struct {
	kind decisionKind
	dst  model.SwitchID
	loc  model.SwitchID
}

// decide runs the shard-local half of PacketIn handling: learn the
// source (learning mode), locate the destination, classify. It takes at
// most two shard locks, never nested, and touches no unsharded state —
// which is what lets ProcessBurst run it from many goroutines at once.
func (c *Controller) decide(m *openflow.PacketIn) pinDecision {
	if c.cfg.Mode == ModeLearning {
		// The pre-learn read feeds intensity accounting (the sequential
		// path always estimated intensity before learning the source).
		loc0, _ := c.state.locate(m.Packet.DstMAC)
		c.state.learn(m.Packet.SrcMAC, m.Switch)
		dst, known := c.state.locate(m.Packet.DstMAC)
		switch {
		case known && dst != m.Switch:
			return pinDecision{kind: decideInstall, dst: dst, loc: loc0}
		case known:
			return pinDecision{kind: decideBounce, loc: loc0}
		default:
			return pinDecision{kind: decideFlood, loc: loc0}
		}
	}
	loc, ok := c.clib.Locate(m.Packet.DstMAC)
	if ok && loc != m.Switch {
		return pinDecision{kind: decideInstall, dst: loc, loc: loc}
	}
	if !ok {
		loc = model.NoSwitch
	}
	return pinDecision{kind: decidePend, loc: loc}
}

// apply performs the ordered half of PacketIn handling: workload
// accounting, intensity estimation, and message emission. ProcessBurst
// calls it sequentially in input order, which is what keeps shared
// unsharded state (queueing model, intensity matrix, stats) merged in a
// deterministic order regardless of the shard count.
func (c *Controller) apply(m *openflow.PacketIn, d pinDecision) {
	c.record(metrics.ReqPacketIn, 1)
	c.stats.PacketIns++
	c.traceCtrl(m.Span, d.kind)

	// Intensity estimation: the controller observes the flows it must
	// handle itself.
	if d.loc != model.NoSwitch && d.loc != m.Switch {
		c.intensity.Add(m.Switch, d.loc, 1)
	}

	switch d.kind {
	case decideInstall:
		ingress, dst, pkt, span := m.Switch, d.dst, m.Packet, m.Span
		c.respond(func() { c.installAndForward(ingress, dst, pkt, span) })
	case decideBounce:
		// Both endpoints local: bounce the packet back for delivery.
		ingress, pkt, span := m.Switch, m.Packet, m.Span
		c.respond(func() {
			c.stats.PacketOuts++
			c.env.Send(ingress, &openflow.PacketOut{
				Actions: []openflow.Action{openflow.Flood()},
				Packet:  pkt,
				Span:    span,
			})
		})
	case decideFlood:
		// Unknown destination: flood to all switches. Emitting one copy
		// per switch serializes on the controller CPU, which is the
		// passive-learning cost the paper's §V-E attributes OpenFlow's
		// 15 ms cold cache to: with hundreds of edge switches the average
		// copy leaves the controller half a fan-out later.
		c.stats.Floods++
		c.record(metrics.ReqFloodOut, uint64(len(c.cfg.Switches)))
		pkt := m.Packet
		service := time.Duration(float64(time.Second) / c.cfg.ServiceRate)
		base := c.queueDelay()
		for i, sw := range c.cfg.Switches {
			if sw == m.Switch {
				continue
			}
			sw := sw
			p := pkt
			c.env.After(base+time.Duration(i)*service, func() { c.env.Send(sw, &p) })
		}
	case decidePend:
		// Unknown (or local-only) destination: relay an ARP query to the
		// designated switches of every group hosting the packet's tenant
		// (VLAN).
		c.state.appendPending(m.Packet.DstMAC, pendingFlow{
			ingress: m.Switch,
			packet:  m.Packet,
			since:   c.env.Now(),
		})
		wakeTask(c.expireTask) // a pending flow needs expiry rounds
		c.relayARP(m.Packet)
	}
}

// relayARP fans an ARP query out to designated switches of the groups
// that contain hosts of the packet's VLAN.
func (c *Controller) relayARP(p model.Packet) {
	arp := &openflow.ARPRelay{
		Tenant: c.tenants[p.VLAN],
		Packet: model.Packet{
			SrcMAC:    p.SrcMAC,
			DstMAC:    model.BroadcastMAC,
			Ether:     model.EtherTypeARP,
			ARPOp:     model.ARPRequest,
			ARPTarget: p.DstIP,
			VLAN:      p.VLAN,
			Injected:  p.Injected,
		},
	}
	targets := c.designatedTargets(p.VLAN)
	c.stats.ARPRelays += uint64(len(targets))
	c.record(metrics.ReqARPRelay, uint64(len(targets)))
	c.respond(func() {
		for _, d := range targets {
			c.env.Send(d, arp)
		}
	})
}

// designatedTargets resolves the designated switches an ARP query for
// a VLAN fans out to. Inside a ProcessBurst apply phase the resolution
// is memoized per (VLAN, grouping version): a storm of unresolved
// flows on one tenant resolves the C-LIB placement scan and the
// per-group designated election once instead of per pending flow. The
// cache never outlives the burst — C-LIB placements may move between
// bursts — and is dropped if a regrouping bumps the version mid-burst.
func (c *Controller) designatedTargets(vlan model.VLAN) []model.SwitchID {
	if c.arpCacheOn {
		if c.arpCacheVer != c.groupingVersion {
			c.arpCacheVer = c.groupingVersion
			clear(c.arpCache)
		}
		if targets, ok := c.arpCache[vlan]; ok {
			return targets
		}
	}
	targets := c.designatedForVLAN(vlan)
	if len(targets) == 0 {
		// No known placement yet: query every designated switch.
		targets = c.allDesignated()
	}
	if c.arpCacheOn {
		c.arpCache[vlan] = targets
	}
	return targets
}

// handleGFIBNack answers a resync request against controller-pushed
// preloads: the receiver could not apply a preload delta (its held
// version did not match the base), so it gets the current full filters
// for exactly the peers it named.
func (c *Controller) handleGFIBNack(m *openflow.GFIBNack) {
	c.record(metrics.ReqStateReport, 1)
	update := &openflow.GFIBUpdate{Group: m.Group, Version: c.groupingVersion, Generation: c.generation}
	for _, peer := range m.Peers {
		cur := c.pfCur[peer]
		if cur == nil {
			continue
		}
		update.Filters = append(update.Filters, openflow.GFIBFilter{Switch: peer, Filter: cur.data, Version: cur.f.Version()})
		c.markPushed(m.Origin, peer, cur.f.Version())
	}
	if len(update.Filters) == 0 {
		return
	}
	c.stats.PreloadNacks += uint64(len(update.Filters))
	c.env.Send(m.Origin, update)
}

// designatedForVLAN returns the designated switches of groups hosting
// the VLAN.
func (c *Controller) designatedForVLAN(vlan model.VLAN) []model.SwitchID {
	groups := make(map[model.GroupID]bool)
	for _, sw := range c.clib.SwitchesWithVLAN(vlan) {
		if g := c.grp.GroupOf(sw); g != model.NoGroup {
			groups[g] = true
		}
	}
	out := make([]model.SwitchID, 0, len(groups))
	for g := range groups {
		out = append(out, c.chooseDesignated(c.grp.Members(g)))
	}
	return out
}

func (c *Controller) allDesignated() []model.SwitchID {
	ids := c.grp.GroupIDs()
	out := make([]model.SwitchID, 0, len(ids))
	for _, g := range ids {
		out = append(out, c.chooseDesignated(c.grp.Members(g)))
	}
	return out
}

// installAndForward installs the inter-group rule on the ingress switch
// and returns the buffered packet with the Encap action (extending
// OpenFlow v1.0, §IV-B).
func (c *Controller) installAndForward(ingress, dst model.SwitchID, p model.Packet, span telemetry.SpanContext) {
	if c.cfg.PerFlowRules {
		// Per-flow baseline: forward the buffered packet without
		// installing a rule. A 5-tuple rule would never absorb another
		// escalation here — only distinct flows' first packets reach
		// the datapath — so the omitted install is exactly the
		// always-miss cache the per-flow baseline measures (see
		// Config.PerFlowRules).
		c.stats.PacketOuts++
		c.env.Send(ingress, &openflow.PacketOut{
			Actions: []openflow.Action{openflow.Encap(dst)},
			Packet:  p,
			Span:    span,
		})
		return
	}
	c.stats.FlowModsSent++
	c.stats.PacketOuts++
	c.env.Send(ingress, &openflow.FlowMod{
		Command:     openflow.FlowAdd,
		Match:       openflow.ExactDst(p.DstMAC, p.VLAN),
		Priority:    100,
		IdleTimeout: c.cfg.RuleIdleTimeout,
		Actions:     []openflow.Action{openflow.Encap(dst)},
		Span:        span,
	})
	c.env.Send(ingress, &openflow.PacketOut{
		Actions: []openflow.Action{openflow.Encap(dst)},
		Packet:  p,
		Span:    span,
	})
}

// handleStateReport merges a designated switch's aggregated report:
// C-LIB maintenance plus intensity-matrix updates (the input to SGI).
func (c *Controller) handleStateReport(m *openflow.StateReport) {
	c.record(metrics.ReqStateReport, 1)
	c.stats.StateReports++
	for i := range m.LFIBs {
		u := &m.LFIBs[i]
		group := c.grp.GroupOf(u.Origin)
		c.clib.ApplyLFIB(u.Origin, group, u)
		c.journalLFIB(u)
	}
	for _, pair := range m.Pairs {
		c.intensity.Add(pair.A, pair.B, float64(pair.NewFlows))
	}
	// A fresh post-takeover report from this group closes its slice of
	// the residue-rebuild window.
	if len(c.rebuildPending) > 0 && c.rebuildPending[m.Group] {
		delete(c.rebuildPending, m.Group)
		if len(c.rebuildPending) == 0 {
			if tl := c.currentTakeover(); tl != nil && tl.RebuiltAt == 0 {
				tl.RebuiltAt = c.env.Now()
			}
		}
	}
}

// handleLFIBAnswer resolves pending flows when a switch answers an ARP
// relay with a host binding.
func (c *Controller) handleLFIBAnswer(from model.SwitchID, m *openflow.LFIBUpdate) {
	c.record(metrics.ReqPacketIn, 1)
	// The answer is proof of life from the sender: credit its keepalive
	// state so a switch that is busy answering ARP relays is never
	// falsely suspected just because heartbeats queued behind the
	// answers were lost.
	c.lastAck[from] = c.env.Now()
	c.detector.Clear(from)
	c.resurrect(from)
	group := c.grp.GroupOf(m.Origin)
	c.clib.ApplyLFIB(m.Origin, group, m)
	c.journalLFIB(m)
	for _, e := range m.Entries {
		flows := c.state.takePending(e.MAC)
		for _, f := range flows {
			if m.Origin == f.ingress {
				continue // destination turned out local; switch handles it
			}
			f := f
			// Lazy-mode resolutions are not traced end to end: the
			// ingress escalation's span ended at its micro-batch flush,
			// and the ARP round trip is not part of the PacketIn trace.
			c.respond(func() { c.installAndForward(f.ingress, m.Origin, f.packet, telemetry.SpanContext{}) })
		}
	}
}

// expirePending drops unresolved flows past the ARP timeout.
func (c *Controller) expirePending() {
	if n := c.state.expirePending(c.env.Now(), c.cfg.ARPTimeout); n > 0 {
		c.stats.Unresolved += uint64(n)
	}
}

// maybeRegroup evaluates the §IV-B trigger: once the 2-minute minimum
// interval has elapsed (or earlier when workload grew ≥30%), attempt an
// incremental regrouping. Fig. 3's load thresholds inside IncUpdate
// decide whether any merge/split actually happens; only effective
// updates are counted and pushed.
func (c *Controller) maybeRegroup() {
	if c.isStandby {
		return
	}
	now := c.env.Now()
	if now-c.lastRegroupAt < c.cfg.RegroupMinInterval {
		return
	}
	if c.grp.NumGroups() == 0 {
		return
	}
	if c.rateAtRegroup == 0 {
		c.rateAtRegroup = c.lastRate
	}
	root := c.cfg.Tracer.StartTrace("regroup")
	mlkp := c.cfg.Tracer.StartSpan(root.Context(), "regroup.mlkp")
	ops, err := c.sgi.IncUpdate(c.grp, c.intensity, nil)
	mlkp.Attr("ops", int64(ops)).End()
	if err != nil || ops == 0 {
		// Ineffective trigger evaluations are traced too (with sent=0):
		// Fig. 3's thresholds declining to act is part of the regroup
		// story the timeline should show.
		root.Attr("sent", 0).End()
		return
	}
	c.groupingVersion++
	c.stats.Regroupings++
	c.lastRegroupAt = now
	c.rateAtRegroup = c.lastRate
	c.journalGrouping()
	// Regroup workload scales with what the round actually ships: with
	// per-destination version tracking, switches whose group view and
	// peer filters are already current cost the controller nothing.
	c.regroupCtx = root.Context()
	sent := c.pushGroupConfigs(true)
	c.regroupCtx = telemetry.SpanContext{}
	root.Attr("sent", int64(sent)).End()
	c.record(metrics.ReqRegroup, uint64(sent))
	// Age the intensity estimate gently: fresh traffic shifts the
	// balance without discarding the accumulated signal (a hard reset
	// would leave SGI re-splitting on sampling noise).
	c.intensity.Decay(0.9)
	if c.cfg.Recorder != nil {
		c.cfg.Recorder.RecordUpdate(now)
	}
	if c.cfg.OnRegroup != nil {
		c.cfg.OnRegroup(c.groupingVersion, c.grp)
	}
}

// deadProbeEvery is how many keep-alive rounds pass between probes of
// switches marked dead. A switch falsely diagnosed dead (correlated
// loss can silence both neighbor streams of a live switch) would
// otherwise never be heard from again — the controller stops probing
// it, so its acks stop, so it stays dead. The periodic probe bounds
// false-death recovery at ~deadProbeEvery×KeepAliveInterval plus one
// round trip; probing a genuinely dead switch costs one lost message.
const deadProbeEvery = 3

// sendKeepAlives probes every switch (the Controller→Sn stream of
// Table I); switches marked dead are probed at a reduced cadence (see
// deadProbeEvery).
func (c *Controller) sendKeepAlives() {
	if c.isStandby {
		return // standby runs no switch-facing duties
	}
	c.kaSeq++
	for _, sw := range c.cfg.Switches {
		if c.dead[sw] && c.kaSeq%deadProbeEvery != 0 {
			continue
		}
		c.env.Send(sw, &openflow.KeepAlive{From: c.addr, Seq: c.kaSeq, Generation: c.generation})
	}
	if c.cfg.Peer != 0 {
		// The master→standby heartbeat: the standby's takeover timer
		// rearms on each one, and the carried generation keeps a healed
		// stale replica fenced.
		c.env.Send(c.cfg.Peer, &openflow.KeepAlive{From: c.addr, Seq: c.kaSeq, Generation: c.generation})
	}
}

// resurrect brings back a switch marked dead from which proof of life
// arrived: a false DiagSwitch (or one whose subject rebooted without a
// harness MarkRecovered) must not strand a live switch outside the
// control plane. The C-LIB and preload state evicted at diagnosis
// repopulate from the switch's own advertisements within the normal
// report rounds; the config re-push restarts its supervision.
func (c *Controller) resurrect(sw model.SwitchID) {
	if !c.dead[sw] {
		return
	}
	delete(c.dead, sw)
	c.stats.Resurrections++
	c.lastAck[sw] = c.env.Now()
	c.detector.Clear(sw)
	c.groupingVersion++
	c.journalDead(sw, false)
	c.journalGrouping()
	delete(c.pushedCfg, sw)
	delete(c.pushedFilters, sw)
	c.pushGroupConfigs(false)
}

// checkFailures folds missing acks into the detector and acts on closed
// diagnoses (§III-E2/3).
func (c *Controller) checkFailures() {
	if c.isStandby {
		// A standby receives no acks; running the check would diagnose
		// the whole fabric dead.
		return
	}
	now := c.env.Now()
	deadline := 3 * c.cfg.KeepAliveInterval
	// Folded probe rounds were credited only while the underlay was
	// fault-free, so their acks are implicitly received through the
	// credited boundary; a switch that went silent under a fault is
	// still caught, because crediting stopped at the fault.
	var credited time.Duration
	if c.kaTask != nil {
		credited = c.kaTask.CreditedThrough()
	}
	for _, sw := range c.cfg.Switches {
		if c.dead[sw] {
			continue
		}
		last, seen := c.lastAck[sw]
		if !seen {
			c.lastAck[sw] = now
			continue
		}
		if credited > last {
			last = credited
		}
		if now-last >= deadline {
			c.stats.KeepAliveLost++
			c.detector.ObserveCtrlLoss(sw, now)
			// The control link to this switch is dropping messages, so
			// the per-destination push tracking can no longer assume
			// send == delivered: forget what was pushed, and the next
			// push round re-ships the switch's config and preloads.
			// (The old protocol re-sent every config every round, which
			// repaired lost pushes implicitly; this is the targeted
			// replacement.)
			delete(c.pushedCfg, sw)
			delete(c.pushedFilters, sw)
		}
	}
	// Act in sorted switch order: recovery emits messages (evictions,
	// flow-mod reroutes), and acting in map-iteration order would make
	// the emission order — and so the whole downstream delivery
	// schedule — differ run to run.
	ready := c.detector.Ready(now)
	suspects := make([]model.SwitchID, 0, len(ready))
	for suspect := range ready {
		suspects = append(suspects, suspect)
	}
	sort.Slice(suspects, func(i, j int) bool { return suspects[i] < suspects[j] })
	for _, suspect := range suspects {
		c.actOnDiagnosis(suspect, ready[suspect])
	}
}

// actOnDiagnosis performs the control-plane side of recovery.
func (c *Controller) actOnDiagnosis(suspect model.SwitchID, diag failover.Diagnosis) {
	switch diag {
	case failover.DiagSwitch:
		c.dead[suspect] = true
		c.journalDead(suspect, true)
		// A push retry for a dead destination would be wasted sends.
		c.cancelPush(suspect)
		// Evict the per-MAC state pointing at the dead switch: learned
		// locations would keep installing rules toward a black hole
		// (flows must fall back to flooding until the host reappears),
		// pending flows with a dead ingress can never be answered, and
		// C-LIB bindings on the dead switch would keep serving it as an
		// inter-group destination. Recovery repopulates all three from
		// PacketIns and state reports.
		le, pe := c.state.evictSwitch(suspect)
		c.stats.LearnedEvicted += uint64(le)
		c.stats.PendingEvicted += uint64(pe)
		c.clib.RemoveSwitch(suspect)
		// The dead switch's preload filter must not be re-shipped, and
		// destinations' acked versions for it are moot.
		delete(c.pfCur, suspect)
		delete(c.pfPrev, suspect)
		for _, acked := range c.pushedFilters {
			delete(acked, suspect)
		}
		// Broadcast the G-FIB tombstone to the dead switch's group:
		// ring neighbors already evicted on peer evidence, but
		// non-neighbor members would otherwise keep the filter — and
		// keep encapsulating first packets into a black hole — until
		// the next membership change.
		gid := c.grp.GroupOf(suspect)
		if gid != model.NoGroup {
			tomb := &openflow.GFIBDelta{
				Group:      gid,
				Removals:   []model.SwitchID{suspect},
				Version:    c.groupingVersion,
				Generation: c.generation,
			}
			for _, member := range c.grp.Members(gid) {
				if member == suspect || c.dead[member] {
					continue
				}
				c.stats.FilterRemovalsSent++
				c.env.Send(member, tomb)
			}
		}
		// If the failed switch was its group's designated switch, select
		// a replacement and re-push the group view (§III-E3).
		if gid != model.NoGroup {
			members := c.grp.Members(gid)
			if c.chooseDesignatedWas(members, suspect) {
				c.groupingVersion++
				c.journalGrouping()
				c.pushGroupConfigs(true)
			}
		}
	case failover.DiagPeerLinkUp, failover.DiagPeerLinkDown:
		// Only matters when a designated switch is an endpoint; the
		// conservative response is a config re-push selecting designated
		// switches afresh.
		if gid := c.grp.GroupOf(suspect); gid != model.NoGroup {
			c.groupingVersion++
			c.journalGrouping()
			c.pushGroupConfigs(true)
		}
	case failover.DiagControlLink:
		// Relay via the ring predecessor is arranged by the harness.
	}
	if c.cfg.OnDiagnosis != nil {
		c.cfg.OnDiagnosis(suspect, diag)
	}
}

func (c *Controller) chooseDesignatedWas(members []model.SwitchID, suspect model.SwitchID) bool {
	// Before marking dead the designated would have been the first live
	// wheel member; afterwards the choice changes iff the suspect was it.
	wheel := failover.BuildWheel(members)
	for _, m := range wheel {
		if m == suspect {
			return true
		}
		if !c.dead[m] {
			return false
		}
	}
	return false
}

// MarkRecovered tells the controller a switch rebooted: the dead flag
// (if any) clears and the switch's group configuration is re-pushed to
// trigger resynchronization (§III-E3 step iii). The push must happen
// whether or not the failure was ever diagnosed — a transient failure
// healed before the keep-alive window closes still rebooted the
// switch, which came back with no group view and would otherwise stay
// configless forever (it answers keep-alives without one, so the
// lost-push invalidation never fires either).
func (c *Controller) MarkRecovered(sw model.SwitchID) {
	delete(c.dead, sw)
	c.lastAck[sw] = c.env.Now()
	c.groupingVersion++
	c.journalDead(sw, false)
	c.journalGrouping()
	// The rebooted switch comes back cold: forget what was pushed to it
	// so the re-push carries its config and full peer preloads — and
	// only to it, not to its whole group — instead of leaving it dark
	// until the next dissemination round.
	delete(c.pushedCfg, sw)
	delete(c.pushedFilters, sw)
	c.pushGroupConfigs(false)
}
