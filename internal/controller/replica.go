package controller

import (
	"time"

	"lazyctrl/internal/grouping"
	"lazyctrl/internal/model"
	"lazyctrl/internal/openflow"
)

// This file implements controller replication: a hot-standby replica
// mirrors the primary's C-LIB, grouping, and failure state over a
// journal of StateSyncRecords (the same versioned increments the
// designated switches already emit), watches the primary's heartbeats,
// and takes the master role deterministically when they stop. Role
// handoff is fenced by a monotonically increasing cluster generation
// ID stamped into every controller→edge push; see docs/robustness.md.

// TakeoverTimeline records one takeover's phase boundaries (simulation
// time): when the standby declared the primary dead and announced
// itself, when the residue rebuild closed (a fresh designated report
// from every group), and when every re-pushed config was acked.
type TakeoverTimeline struct {
	// Generation is the cluster generation the takeover established.
	Generation uint64
	// DetectedAt is when the miss threshold closed; AnnouncedAt is when
	// the RoleAnnounce broadcast went out (the same round here —
	// takeover is synchronous).
	DetectedAt  time.Duration
	AnnouncedAt time.Duration
	// RebuiltAt is when the last group's post-takeover designated
	// report arrived (zero while outstanding).
	RebuiltAt time.Duration
	// RepushedAt is when the last re-pushed group config was acked
	// (zero while outstanding).
	RepushedAt time.Duration
}

// Generation returns the replica's current cluster generation.
func (c *Controller) Generation() uint64 { return c.generation }

// IsMaster reports whether this replica currently holds the master
// role.
func (c *Controller) IsMaster() bool { return !c.isStandby }

// TakeoverTimelines returns the takeovers this replica performed, in
// order.
func (c *Controller) TakeoverTimelines() []TakeoverTimeline {
	out := make([]TakeoverTimeline, len(c.takeovers))
	copy(out, c.takeovers)
	return out
}

// currentTakeover returns the in-progress takeover's timeline, or nil.
func (c *Controller) currentTakeover() *TakeoverTimeline {
	if len(c.takeovers) == 0 {
		return nil
	}
	return &c.takeovers[len(c.takeovers)-1]
}

// watchPrimary is the standby's periodic duty: heartbeat the primary
// (which doubles as the bootstrap-snapshot request — a seq-1 heartbeat
// tells the master this standby holds nothing) and take over once
// TakeoverMisses heartbeat intervals pass without one back.
func (c *Controller) watchPrimary() {
	if c.cfg.Peer == 0 || !c.isStandby {
		return
	}
	now := c.env.Now()
	c.standbySeq++
	c.env.Send(c.cfg.Peer, &openflow.KeepAlive{From: c.addr, Seq: c.standbySeq, Generation: c.generation})
	if !c.peerSeen {
		// Grace period: the primary has never spoken; give it a full
		// deadline from now (mirrors the edge keep-alive grace rule).
		c.peerSeen = true
		c.peerLastKA = now
		return
	}
	deadline := time.Duration(c.cfg.TakeoverMisses) * c.cfg.KeepAliveInterval
	if now-c.peerLastKA >= deadline {
		c.becomeMaster()
	}
}

// handlePeerKeepAlive processes the other replica's heartbeat. On the
// standby it rearms the takeover timer; on the master it triggers the
// bootstrap snapshot for a standby that holds nothing (its watch
// sequence restarted at 1, or it was never synced). Either way the
// carried generation is adopted, which is what demotes a healed stale
// master the moment it hears the new one.
func (c *Controller) handlePeerKeepAlive(m *openflow.KeepAlive) {
	c.adoptGeneration(m.Generation, m.From)
	if c.isStandby {
		c.peerSeen = true
		c.peerLastKA = c.env.Now()
		return
	}
	if m.Seq <= 1 || !c.peerSynced {
		c.peerSynced = true
		c.sendSnapshot()
	}
}

// becomeMaster performs the standby→primary takeover: bump the cluster
// generation past everything previously announced, broadcast the new
// role to every switch (and the old primary, should it still be
// listening), and rebuild what the journal could not have carried by
// re-pushing every group config under the new generation — the
// kicked designated switches answer with full reports, which is the
// same anti-entropy residue repair a recovered switch gets.
func (c *Controller) becomeMaster() {
	if !c.isStandby {
		return
	}
	now := c.env.Now()
	c.isStandby = false
	c.generation = c.generation + 1
	c.stats.Takeovers++
	c.takeovers = append(c.takeovers, TakeoverTimeline{
		Generation:  c.generation,
		DetectedAt:  now,
		AnnouncedAt: now,
	})
	ann := &openflow.RoleAnnounce{From: c.addr, Generation: c.generation}
	for _, sw := range c.cfg.Switches {
		c.env.Send(sw, ann)
	}
	if c.cfg.Peer != 0 {
		c.env.Send(c.cfg.Peer, ann)
	}
	// The residue window: every group owes the new master one fresh
	// designated report before its mirrored state is known current.
	c.rebuildPending = make(map[model.GroupID]bool, c.grp.NumGroups())
	for _, gid := range c.grp.GroupIDs() {
		c.rebuildPending[gid] = true
	}
	c.awaitingRepush = true
	// Re-push everything under the new generation: forgetting the
	// per-destination tracking makes the round ship full configs and
	// preloads, exactly like MarkRecovered does for one switch.
	c.groupingVersion++
	c.pushedCfg = make(map[model.SwitchID]uint64)
	c.pushedFilters = make(map[model.SwitchID]map[model.SwitchID]uint64)
	if c.grp.NumGroups() > 0 {
		c.pushGroupConfigs(true)
	}
}

// adoptGeneration folds an observed cluster generation into this
// replica: generations only move up, and a master that sees a higher
// generation owned by someone else has been superseded and steps down.
func (c *Controller) adoptGeneration(gen uint64, owner model.SwitchID) {
	if gen <= c.generation {
		return
	}
	c.generation = gen
	if !c.isStandby && owner != c.addr {
		c.stepDown()
	}
}

// stepDown demotes this replica to standby: all switch-facing push
// supervision stops, the per-destination push tracking is dropped (it
// describes pushes the fabric will fence anyway), and the watch state
// resets so the next watch heartbeat (seq 1) requests a fresh
// bootstrap snapshot from the new master.
func (c *Controller) stepDown() {
	c.isStandby = true
	c.stats.StepDowns++
	for _, sw := range c.cfg.Switches {
		c.cancelPush(sw)
	}
	c.pushedCfg = make(map[model.SwitchID]uint64)
	c.pushedFilters = make(map[model.SwitchID]map[model.SwitchID]uint64)
	c.peerSeen = false
	c.peerSynced = false
	c.standbySeq = 0
	c.awaitingRepush = false
	c.rebuildPending = nil
}

// replicating reports whether this replica should journal state
// increments: it is the master of a replicated pair and the standby
// has been bootstrapped (records sent before the snapshot would apply
// against nothing).
func (c *Controller) replicating() bool {
	return c.cfg.Peer != 0 && !c.isStandby && c.peerSynced
}

// sendSnapshot ships the standby its bootstrap: the full grouping, a
// full L-FIB record per switch — including empty ones, so a re-syncing
// demoted replica drops ghost entries a Full replace would otherwise
// miss — and the current dead set.
func (c *Controller) sendSnapshot() {
	c.journalGrouping()
	for _, sw := range c.cfg.Switches {
		c.journalSend(&openflow.StateSyncRecord{
			Kind:            openflow.SyncLFIB,
			Generation:      c.generation,
			GroupingVersion: c.groupingVersion,
			Origin:          sw,
			Full:            true,
			Version:         c.clib.VersionOn(sw),
			Entries:         c.clib.EntriesOn(sw),
		})
	}
	for _, sw := range c.cfg.Switches {
		if c.dead[sw] {
			c.journalDead(sw, true)
		}
	}
}

// journalSend ships one journal record to the peer replica.
func (c *Controller) journalSend(rec *openflow.StateSyncRecord) {
	c.stats.SyncRecordsSent++
	c.env.Send(c.cfg.Peer, rec)
}

// journalLFIB mirrors one switch's L-FIB update to the standby, in the
// same full/increment form it arrived in.
func (c *Controller) journalLFIB(u *openflow.LFIBUpdate) {
	if !c.replicating() {
		return
	}
	c.journalSend(&openflow.StateSyncRecord{
		Kind:            openflow.SyncLFIB,
		Generation:      c.generation,
		GroupingVersion: c.groupingVersion,
		Origin:          u.Origin,
		Full:            u.Full,
		Version:         u.Version,
		Entries:         u.Entries,
	})
}

// journalGrouping mirrors the full switch→group assignment to the
// standby. Group IDs travel verbatim: the standby must reproduce them
// exactly (they appear in pushed configs), so it rebuilds rather than
// re-derives its grouping.
func (c *Controller) journalGrouping() {
	if !c.replicating() {
		return
	}
	var assign []openflow.SyncAssign
	for _, gid := range c.grp.GroupIDs() {
		for _, m := range c.grp.Members(gid) {
			assign = append(assign, openflow.SyncAssign{Switch: m, Group: gid})
		}
	}
	c.journalSend(&openflow.StateSyncRecord{
		Kind:            openflow.SyncGrouping,
		Generation:      c.generation,
		GroupingVersion: c.groupingVersion,
		Assign:          assign,
	})
}

// journalDead mirrors a switch-death diagnosis (dead=true) or its
// reversal (dead=false) to the standby; Full carries the flag.
func (c *Controller) journalDead(sw model.SwitchID, dead bool) {
	if !c.replicating() {
		return
	}
	c.journalSend(&openflow.StateSyncRecord{
		Kind:            openflow.SyncTombstone,
		Generation:      c.generation,
		GroupingVersion: c.groupingVersion,
		Origin:          sw,
		Full:            dead,
	})
}

// handleSyncRecord applies one journal record on the standby. Records
// fenced behind the replica's generation are rejected outright — a
// partitioned-then-healed stale primary cannot roll the standby back —
// and a master receiving a higher-generation record has been
// superseded (adoptGeneration demotes it first, then the record
// applies to it as the new standby).
func (c *Controller) handleSyncRecord(from model.SwitchID, m *openflow.StateSyncRecord) {
	if m.Generation < c.generation {
		c.stats.StaleSyncRejected++
		return
	}
	c.adoptGeneration(m.Generation, from)
	if !c.isStandby {
		return
	}
	c.stats.SyncRecordsApplied++
	if m.GroupingVersion > c.groupingVersion {
		c.groupingVersion = m.GroupingVersion
	}
	switch m.Kind {
	case openflow.SyncGrouping:
		assign := make(map[model.SwitchID]model.GroupID, len(m.Assign))
		for _, a := range m.Assign {
			assign[a.Switch] = a.Group
		}
		c.grp = grouping.Rebuild(assign)
		// C-LIB group tags follow the mirrored grouping, exactly as
		// pushGroupConfigs retags them on the primary.
		for _, a := range m.Assign {
			c.clib.SetGroup(a.Switch, a.Group)
		}
	case openflow.SyncLFIB:
		u := &openflow.LFIBUpdate{
			Origin:  m.Origin,
			Full:    m.Full,
			Version: m.Version,
			Entries: m.Entries,
		}
		c.clib.ApplyLFIB(m.Origin, c.grp.GroupOf(m.Origin), u)
	case openflow.SyncTombstone:
		if m.Full {
			c.dead[m.Origin] = true
			c.clib.RemoveSwitch(m.Origin)
		} else {
			delete(c.dead, m.Origin)
		}
	}
}
