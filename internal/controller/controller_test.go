package controller

import (
	"testing"
	"time"

	"lazyctrl/internal/edge"
	"lazyctrl/internal/failover"
	"lazyctrl/internal/grouping"
	"lazyctrl/internal/metrics"
	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/sim"
)

// bench wires a controller and switches over a DES network.
type bench struct {
	sim       *sim.Simulator
	net       *netsim.Network
	ctrl      *Controller
	switches  map[model.SwitchID]*edge.Switch
	delivered map[model.SwitchID]int
	rec       *metrics.Recorder
}

func newBench(t *testing.T, mode Mode, dynamic bool, ids ...model.SwitchID) *bench {
	t.Helper()
	s := sim.New(1)
	n := netsim.New(s, netsim.DefaultLatencies())
	rec := metrics.NewRecorder(24*time.Hour, 2*time.Hour)
	b := &bench{
		sim:       s,
		net:       n,
		switches:  make(map[model.SwitchID]*edge.Switch),
		delivered: make(map[model.SwitchID]int),
		rec:       rec,
	}
	ctrl, err := New(Config{
		Mode:              mode,
		Switches:          ids,
		GroupSizeLimit:    3,
		Seed:              7,
		Dynamic:           dynamic,
		Recorder:          rec,
		KeepAliveInterval: time.Second,
		SyncInterval:      2 * time.Second,
	}, n.Env(model.ControllerNode))
	if err != nil {
		t.Fatal(err)
	}
	b.ctrl = ctrl
	n.Attach(ctrl)
	n.SetSameGroup(ctrl.SameGroup)
	ctrl.Start()
	for _, id := range ids {
		id := id
		sw := edge.New(edge.Config{
			ID:                id,
			AdvertiseInterval: time.Second,
			ReportInterval:    2 * time.Second,
			OnDeliver: func(p *model.Packet, at time.Duration) {
				b.delivered[id]++
			},
		}, n.Env(id))
		n.Attach(sw)
		sw.Start()
		b.switches[id] = sw
	}
	return b
}

// groupedBench builds a lazy-mode bench with a forced two-group split:
// {1,2} and {3,4}, by seeding the intensity matrix accordingly.
func groupedBench(t *testing.T, dynamic bool) *bench {
	t.Helper()
	b := newBench(t, ModeLazy, dynamic, 1, 2, 3, 4)
	m := grouping.NewIntensity()
	m.Add(1, 2, 100)
	m.Add(3, 4, 100)
	m.Add(1, 3, 1)
	if err := b.ctrl.InitialGrouping(m); err != nil {
		t.Fatal(err)
	}
	// Hosts: 10,20 on switches 1,2 (group A); 30,40 on 3,4 (group B).
	b.switches[1].AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	b.switches[2].AttachHost(model.HostMAC(20), model.HostIP(20), 1)
	b.switches[3].AttachHost(model.HostMAC(30), model.HostIP(30), 1)
	b.switches[4].AttachHost(model.HostMAC(40), model.HostIP(40), 1)
	b.ctrl.RegisterTenant(1, 1)
	// Let group config, advertisement, dissemination, and state reports
	// settle.
	b.sim.RunFor(6 * time.Second)
	return b
}

func pkt(src, dst model.HostID) *model.Packet {
	return &model.Packet{
		SrcMAC:  model.HostMAC(src),
		DstMAC:  model.HostMAC(dst),
		SrcIP:   model.HostIP(src),
		DstIP:   model.HostIP(dst),
		VLAN:    1,
		Ether:   model.EtherTypeIPv4,
		Bytes:   1000,
		FlowSeq: 0,
	}
}

func TestInitialGroupingRespectsAffinity(t *testing.T) {
	b := groupedBench(t, false)
	g := b.ctrl.Grouping()
	if g.NumGroups() != 2 {
		t.Fatalf("NumGroups = %d, want 2", g.NumGroups())
	}
	if g.GroupOf(1) != g.GroupOf(2) || g.GroupOf(3) != g.GroupOf(4) {
		t.Error("affine switches split across groups")
	}
	if g.GroupOf(1) == g.GroupOf(3) {
		t.Error("all switches in one group despite size limit")
	}
	if !b.ctrl.SameGroup(1, 2) || b.ctrl.SameGroup(1, 3) {
		t.Error("SameGroup inconsistent with grouping")
	}
	// Switches received their configs.
	if b.switches[1].Group().Group != g.GroupOf(1) {
		t.Error("switch 1 has stale group config")
	}
	if !b.switches[1].IsDesignated() && !b.switches[2].IsDesignated() {
		t.Error("group A has no designated switch")
	}
}

func TestIntraGroupFlowBypassesController(t *testing.T) {
	b := groupedBench(t, false)
	before := b.ctrl.Stats().PacketIns
	b.switches[1].InjectLocal(pkt(10, 20))
	b.sim.RunFor(time.Second)
	if b.delivered[2] != 1 {
		t.Fatalf("intra-group packet not delivered (delivered=%v)", b.delivered)
	}
	if b.ctrl.Stats().PacketIns != before {
		t.Errorf("controller handled %d PacketIns for intra-group flow",
			b.ctrl.Stats().PacketIns-before)
	}
}

func TestInterGroupFlowViaController(t *testing.T) {
	b := groupedBench(t, false)
	b.switches[1].InjectLocal(pkt(10, 30))
	b.sim.RunFor(time.Second)
	if b.delivered[3] != 1 {
		t.Fatalf("inter-group packet not delivered")
	}
	if b.ctrl.Stats().PacketIns == 0 {
		t.Error("controller saw no PacketIn for inter-group flow")
	}
	if b.ctrl.Stats().FlowModsSent == 0 {
		t.Error("controller installed no rule")
	}
	// Second packet of the same pair: the installed rule handles it.
	pins := b.ctrl.Stats().PacketIns
	b.switches[1].InjectLocal(pkt(10, 30))
	b.sim.RunFor(time.Second)
	if b.delivered[3] != 2 {
		t.Fatalf("second packet not delivered")
	}
	if b.ctrl.Stats().PacketIns != pins {
		t.Error("second packet still reached the controller")
	}
}

func TestARPRelayResolvesUnknownDestination(t *testing.T) {
	b := groupedBench(t, false)
	// Attach a brand-new host to switch 4 without waiting for state
	// reports to reach the C-LIB.
	b.switches[4].AttachHost(model.HostMAC(99), model.HostIP(99), 1)
	b.switches[1].InjectLocal(pkt(10, 99))
	b.sim.RunFor(2 * time.Second)
	if b.delivered[4] == 0 {
		t.Fatal("flow to freshly attached host never delivered")
	}
	if b.ctrl.Stats().ARPRelays == 0 {
		t.Error("no ARP relay was used")
	}
	if b.ctrl.CLIB().Lookup(model.HostMAC(99)) == nil {
		t.Error("C-LIB not updated from ARP answer")
	}
}

func TestCLIBPopulatedFromStateReports(t *testing.T) {
	b := groupedBench(t, false)
	for _, h := range []model.HostID{10, 20, 30, 40} {
		if b.ctrl.CLIB().Lookup(model.HostMAC(h)) == nil {
			t.Errorf("C-LIB missing host %v", h)
		}
	}
	if got := b.ctrl.CLIB().Lookup(model.HostMAC(30)); got != nil && got.Switch != 3 {
		t.Errorf("host 30 located at %v, want S3", got.Switch)
	}
}

func TestLearningModeFloodsThenLearns(t *testing.T) {
	b := newBench(t, ModeLearning, false, 1, 2, 3)
	b.switches[1].AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	b.switches[2].AttachHost(model.HostMAC(20), model.HostIP(20), 1)
	b.sim.RunFor(time.Second)

	// First flow 10→20: dst unknown → flood; switch 2 delivers.
	b.switches[1].InjectLocal(pkt(10, 20))
	b.sim.RunFor(time.Second)
	if b.delivered[2] != 1 {
		t.Fatalf("flooded packet not delivered (delivered=%v)", b.delivered)
	}
	if b.ctrl.Stats().Floods != 1 {
		t.Errorf("Floods = %d, want 1", b.ctrl.Stats().Floods)
	}
	// Reverse flow 20→10: both endpoints now learned → rule install.
	b.switches[2].InjectLocal(pkt(20, 10))
	b.sim.RunFor(time.Second)
	if b.delivered[1] != 1 {
		t.Fatalf("reverse packet not delivered")
	}
	if b.ctrl.Stats().FlowModsSent == 0 {
		t.Error("learning mode installed no rule once both ends known")
	}
	if b.ctrl.Stats().Floods != 1 {
		t.Errorf("Floods = %d after learn, want still 1", b.ctrl.Stats().Floods)
	}
}

func TestWorkloadLazyBelowLearning(t *testing.T) {
	inject := func(b *bench) {
		// 20 intra-group flows, 2 inter-group flows.
		for i := 0; i < 10; i++ {
			b.switches[1].InjectLocal(pkt(10, 20))
			b.switches[3].InjectLocal(pkt(30, 40))
			b.sim.RunFor(100 * time.Millisecond)
		}
		b.switches[1].InjectLocal(pkt(10, 30))
		b.switches[2].InjectLocal(pkt(20, 40))
		b.sim.RunFor(time.Second)
	}
	lazy := groupedBench(t, false)
	inject(lazy)

	learning := newBench(t, ModeLearning, false, 1, 2, 3, 4)
	learning.switches[1].AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	learning.switches[2].AttachHost(model.HostMAC(20), model.HostIP(20), 1)
	learning.switches[3].AttachHost(model.HostMAC(30), model.HostIP(30), 1)
	learning.switches[4].AttachHost(model.HostMAC(40), model.HostIP(40), 1)
	learning.sim.RunFor(6 * time.Second)
	inject(learning)

	lazyPIs := lazy.ctrl.Stats().PacketIns
	learnPIs := learning.ctrl.Stats().PacketIns
	if lazyPIs >= learnPIs {
		t.Errorf("lazy PacketIns = %d, learning = %d; want lazy < learning", lazyPIs, learnPIs)
	}
}

func TestSwitchFailureDetectedAndDesignatedReplaced(t *testing.T) {
	b := groupedBench(t, false)
	var diagnosed []model.SwitchID
	var diagnoses []failover.Diagnosis
	b.ctrl.cfg.OnDiagnosis = func(s model.SwitchID, d failover.Diagnosis) {
		diagnosed = append(diagnosed, s)
		diagnoses = append(diagnoses, d)
	}
	// Group A = {1,2}; designated is the lowest-MAC live member (1).
	if !b.switches[1].IsDesignated() {
		t.Fatalf("precondition: switch 1 should be designated")
	}
	b.net.FailNode(1)
	b.sim.RunFor(20 * time.Second)

	found := false
	for i, s := range diagnosed {
		if s == 1 && diagnoses[i] == failover.DiagSwitch {
			found = true
		}
	}
	if !found {
		t.Fatalf("switch failure not diagnosed: %v %v", diagnosed, diagnoses)
	}
	// Switch 2 must have taken over as designated for group A.
	if !b.switches[2].IsDesignated() {
		t.Error("designated role not transferred to switch 2")
	}
}

func TestMarkRecovered(t *testing.T) {
	b := groupedBench(t, false)
	b.net.FailNode(1)
	b.sim.RunFor(20 * time.Second)
	if !b.ctrl.dead[1] {
		t.Fatal("switch 1 not marked dead")
	}
	b.net.HealNode(1)
	b.ctrl.MarkRecovered(1)
	b.sim.RunFor(5 * time.Second)
	if b.ctrl.dead[1] {
		t.Error("switch 1 still dead after recovery")
	}
	// Designated role returns to the lowest-MAC live member.
	if !b.switches[1].IsDesignated() {
		t.Error("recovered switch did not resume designated role")
	}
}

func TestConfigValidation(t *testing.T) {
	s := sim.New(1)
	n := netsim.New(s, netsim.DefaultLatencies())
	if _, err := New(Config{Mode: 99, Switches: []model.SwitchID{1}}, n.Env(model.ControllerNode)); err == nil {
		t.Error("invalid mode accepted")
	}
	if _, err := New(Config{Mode: ModeLazy}, n.Env(model.ControllerNode)); err == nil {
		t.Error("empty switch list accepted")
	}
}

func TestQueueDelayGrowsWithLoad(t *testing.T) {
	s := sim.New(1)
	n := netsim.New(s, netsim.DefaultLatencies())
	c, err := New(Config{Mode: ModeLazy, Switches: []model.SwitchID{1}, LoadScale: 1}, n.Env(model.ControllerNode))
	if err != nil {
		t.Fatal(err)
	}
	idle := c.queueDelay()
	c.lastRate = 0.9 * c.cfg.ServiceRate
	busy := c.queueDelay()
	if busy <= idle {
		t.Errorf("queueDelay: idle=%v busy=%v, want busy > idle", idle, busy)
	}
	c.lastRate = 100 * c.cfg.ServiceRate
	if got := c.queueDelay(); got > 200*time.Millisecond {
		t.Errorf("queueDelay unbounded: %v", got)
	}
}

func TestModeString(t *testing.T) {
	if ModeLazy.String() != "lazy" || ModeLearning.String() != "learning" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode has empty name")
	}
}
