// Package controller implements the LazyCtrl central controller (§IV-B):
// C-LIB maintenance, switch-grouping management driven by the SGI
// algorithm, tenant information management, ARP relay scoped by tenant,
// inter-group rule installation with the Encap action, the failover
// module, and — for the evaluation baseline — a standard OpenFlow
// "learning switch" mode that reproduces the original Floodlight
// behavior the paper compares against.
//
// # Sharded hot state
//
// The controller's per-MAC hot state — the C-LIB (fib.CLIB), the
// learning-mode location table, and the pending-flow table — is
// lock-striped into power-of-two shards keyed by a Fibonacci hash of
// the MAC (Config.StateShards stripes for the controller tables, a
// fixed 16 for the C-LIB). Packet-in handling is split into a decide
// phase (hash, shard-local reads/writes, forwarding decision) and an
// apply phase (workload accounting, intensity updates, message
// emission). ProcessBurst fans the decide phase of a packet-in storm
// out across per-shard workers and then applies the decisions
// sequentially in input order, so shared non-sharded state (queueing
// model, intensity matrix, stats) is merged in a deterministic order
// and the final table state matches the single-shard run for stable
// workloads.
//
// # Batched pushes
//
// Group reconfiguration coalesces everything a switch must receive in
// a regroup round — its GroupConfig plus L-FIB preloads of its new
// peers out of the C-LIB — into one openflow.Batch per destination, so
// each round encodes and sends at most one control message per switch.
package controller

import (
	"fmt"
	"time"

	"lazyctrl/internal/failover"
	"lazyctrl/internal/fib"
	"lazyctrl/internal/grouping"
	"lazyctrl/internal/metrics"
	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/openflow"
)

// Mode selects the control-plane behavior.
type Mode uint8

// Modes.
const (
	// ModeLazy is the LazyCtrl hybrid control plane.
	ModeLazy Mode = iota + 1
	// ModeLearning is the standard OpenFlow baseline: every flow setup
	// reaches the controller, host locations are learned passively, and
	// unknown destinations are flooded.
	ModeLearning
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeLazy:
		return "lazy"
	case ModeLearning:
		return "learning"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Config parameterizes the controller.
type Config struct {
	Mode Mode
	// Switches lists all edge switches under control.
	Switches []model.SwitchID
	// GroupSizeLimit caps LCG sizes (lazy mode). Zero selects 46 (the
	// paper's storage example).
	GroupSizeLimit int
	// Seed drives SGI and designated-switch selection.
	Seed uint64
	// ServiceRate is the controller's request-processing capacity in
	// requests/second (unscaled). Zero selects 8000, a Floodlight-class
	// controller on the paper's Core 2 Duo host.
	ServiceRate float64
	// LoadScale converts observed (scaled-down trace) request rates to
	// estimated unscaled rates for the queueing model. Zero selects 1.
	LoadScale int
	// Dynamic enables incremental regrouping (Fig. 7's "dynamic"
	// series). Static keeps the initial grouping for the whole run.
	Dynamic bool
	// RegroupMinInterval is the minimum time between regroupings (the
	// paper uses 2 minutes to prevent oscillation).
	RegroupMinInterval time.Duration
	// RegroupGrowth triggers an early regrouping when controller
	// workload has grown by this fraction since the last update (the
	// paper uses 0.30); independent of growth, a regrouping attempt is
	// made once RegroupMinInterval has elapsed, and Fig. 3's load
	// thresholds decide whether IncUpdate actually changes anything.
	RegroupGrowth float64
	// RegroupCheckInterval is how often the trigger condition is
	// evaluated. Zero selects 30 s.
	RegroupCheckInterval time.Duration
	// RegroupHighLoad and RegroupLowLoad are Fig. 3's thresholds on the
	// normalized inter-group intensity. Zero selects 0.35 and 0.30 —
	// above the scatter floor of a well-grouped data center, so updates
	// fire on genuine degradation (the expanded trace) and stay quiet on
	// a stable pattern.
	RegroupHighLoad float64
	RegroupLowLoad  float64
	// RuleIdleTimeout is the idle timeout of installed flow rules. Zero
	// selects 60 s.
	RuleIdleTimeout time.Duration
	// SyncInterval and KeepAliveInterval are handed to switches in
	// GroupConfig. Zero selects 10 s and 5 s.
	SyncInterval      time.Duration
	KeepAliveInterval time.Duration
	// ARPTimeout bounds how long an unresolved destination stays pending.
	// Zero selects 200 ms.
	ARPTimeout time.Duration
	// StateShards is the number of lock stripes for the controller's
	// per-MAC hot state (learning-mode locations, pending flows) and the
	// worker count of ProcessBurst. Rounded up to a power of two and
	// capped at 1024 (a stripe per core is plenty); zero selects 8.
	// Final table state is shard-count independent for stable burst
	// workloads (see ProcessBurst for the exact contract).
	StateShards int
	// FilterBits and FilterHashes set the Bloom geometry of G-FIB
	// preloads and must match the edge switches' configured geometry
	// (edge.Config). Zero selects the shared fib defaults.
	FilterBits   uint64
	FilterHashes uint32
	// Recorder receives workload accounting (may be nil).
	Recorder *metrics.Recorder
	// OnDiagnosis is invoked when the failover module reaches a
	// diagnosis; the harness wires recovery actions that need to touch
	// the simulated underlay (detours, reboots).
	OnDiagnosis func(suspect model.SwitchID, diag failover.Diagnosis)
	// OnRegroup is invoked after every (re)grouping with its version.
	OnRegroup func(version uint64, grp *grouping.Grouping)
}

func (c Config) withDefaults() Config {
	if c.GroupSizeLimit == 0 {
		c.GroupSizeLimit = 46
	}
	if c.ServiceRate == 0 {
		c.ServiceRate = 8000
	}
	if c.LoadScale < 1 {
		c.LoadScale = 1
	}
	if c.RegroupMinInterval == 0 {
		c.RegroupMinInterval = 2 * time.Minute
	}
	if c.RegroupGrowth == 0 {
		c.RegroupGrowth = 0.30
	}
	if c.RegroupCheckInterval == 0 {
		c.RegroupCheckInterval = 30 * time.Second
	}
	if c.RegroupHighLoad == 0 {
		c.RegroupHighLoad = 0.35
	}
	if c.RegroupLowLoad == 0 {
		c.RegroupLowLoad = 0.30
	}
	if c.RuleIdleTimeout == 0 {
		c.RuleIdleTimeout = 60 * time.Second
	}
	if c.SyncInterval == 0 {
		c.SyncInterval = 10 * time.Second
	}
	if c.KeepAliveInterval == 0 {
		c.KeepAliveInterval = 5 * time.Second
	}
	if c.ARPTimeout == 0 {
		c.ARPTimeout = 200 * time.Millisecond
	}
	if c.StateShards == 0 {
		c.StateShards = 8
	}
	if c.StateShards > 1024 {
		c.StateShards = 1024
	}
	if c.FilterBits == 0 {
		c.FilterBits = fib.DefaultFilterBits
	}
	if c.FilterHashes == 0 {
		c.FilterHashes = fib.DefaultFilterHashes
	}
	return c
}

// pendingFlow is a PacketIn awaiting host-location resolution.
type pendingFlow struct {
	ingress model.SwitchID
	packet  model.Packet
	since   time.Duration
}

// Controller is the central controller node.
type Controller struct {
	cfg Config
	env netsim.Env

	clib      *fib.CLIB
	grp       *grouping.Grouping
	sgi       *grouping.SGI
	intensity *grouping.Intensity

	// Tenant information management: VLAN → tenant.
	tenants map[model.VLAN]model.TenantID

	// Lock-striped per-MAC hot state: the learning-mode location table
	// and the pending-flow table (see shard.go).
	state *stateShards

	// Queueing model state.
	reqWindowStart time.Duration
	reqWindowCount uint64
	lastRate       float64 // unscaled estimated requests/sec
	backgroundRate float64 // floor for the rate estimate

	// Regrouping state.
	lastRegroupAt   time.Duration
	rateAtRegroup   float64
	groupingVersion uint64
	// pushedMembers fingerprints the member list last pushed per group,
	// so preloads ship only to groups whose membership actually changed
	// (unchanged groups kept their G-FIBs warm — re-preloading them
	// would rebuild every peer filter for nothing).
	pushedMembers map[model.GroupID]uint64

	// Failover.
	detector *failover.Detector
	lastAck  map[model.SwitchID]time.Duration
	kaSeq    uint64
	dead     map[model.SwitchID]bool

	cancels []func()

	// Stats.
	stats Stats
}

// Stats counts controller-side events.
type Stats struct {
	PacketIns     uint64
	FlowModsSent  uint64
	PacketOuts    uint64
	Floods        uint64
	ARPRelays     uint64
	StateReports  uint64
	Regroupings   uint64
	Unresolved    uint64
	FailuresSeen  uint64
	RulesPreload  uint64
	KeepAliveLost uint64
	// BatchedPushes counts openflow.Batch messages sent by regroup
	// rounds (≤1 per destination switch per round).
	BatchedPushes uint64
	// LearnedEvicted and PendingEvicted count entries purged from the
	// sharded tables when a switch is diagnosed dead.
	LearnedEvicted uint64
	PendingEvicted uint64
}

// New constructs a controller.
func New(cfg Config, env netsim.Env) (*Controller, error) {
	c := cfg.withDefaults()
	if c.Mode != ModeLazy && c.Mode != ModeLearning {
		return nil, fmt.Errorf("controller: invalid mode %v", c.Mode)
	}
	if len(c.Switches) == 0 {
		return nil, fmt.Errorf("controller: no switches")
	}
	sgi, err := grouping.New(grouping.Config{
		SizeLimit: c.GroupSizeLimit,
		Seed:      c.Seed,
		HighLoad:  c.RegroupHighLoad,
		LowLoad:   c.RegroupLowLoad,
	})
	if err != nil {
		return nil, fmt.Errorf("controller: %w", err)
	}
	// Pre-register every switch so the intensity matrix's dense index
	// layout is fixed from t=0: later traffic accounting is pure O(degree)
	// weight updates, and silent switches still participate in regrouping.
	intensity := grouping.NewIntensity()
	for _, sw := range c.Switches {
		intensity.AddSwitch(sw)
	}
	return &Controller{
		cfg:           c,
		env:           env,
		clib:          fib.NewCLIB(),
		grp:           grouping.NewGrouping(),
		sgi:           sgi,
		intensity:     intensity,
		tenants:       make(map[model.VLAN]model.TenantID),
		state:         newStateShards(c.StateShards),
		pushedMembers: make(map[model.GroupID]uint64),
		detector:      failover.NewDetector(3 * c.KeepAliveInterval),
		lastAck:       make(map[model.SwitchID]time.Duration),
		dead:          make(map[model.SwitchID]bool),
	}, nil
}

// NodeID implements netsim.Node.
func (c *Controller) NodeID() model.SwitchID { return model.ControllerNode }

// CLIB exposes the central location information base (read-only use).
func (c *Controller) CLIB() *fib.CLIB { return c.clib }

// Grouping returns the current grouping (read-only use).
func (c *Controller) Grouping() *grouping.Grouping { return c.grp }

// Stats returns a snapshot of the controller counters.
func (c *Controller) Stats() Stats { return c.stats }

// GroupingVersion returns the current grouping version.
func (c *Controller) GroupingVersion() uint64 { return c.groupingVersion }

// RegisterTenant records a VLAN → tenant binding (tenant information
// management module).
func (c *Controller) RegisterTenant(vlan model.VLAN, tenant model.TenantID) {
	c.tenants[vlan] = tenant
}

// Start begins periodic duties: keep-alives, failover checks, and (in
// lazy dynamic mode) regroup-trigger evaluation.
func (c *Controller) Start() {
	c.cancels = append(c.cancels,
		c.env.Every(c.cfg.KeepAliveInterval, c.sendKeepAlives),
		c.env.Every(c.cfg.KeepAliveInterval, c.checkFailures),
		c.env.Every(c.cfg.ARPTimeout, c.expirePending),
	)
	if c.cfg.Mode == ModeLazy && c.cfg.Dynamic {
		c.cancels = append(c.cancels,
			c.env.Every(c.cfg.RegroupCheckInterval, c.maybeRegroup))
	}
}

// Stop cancels periodic duties.
func (c *Controller) Stop() {
	for _, cancel := range c.cancels {
		cancel()
	}
	c.cancels = nil
}

// SameGroup reports whether two switches share a local control group —
// handed to netsim for peer-link classification.
func (c *Controller) SameGroup(a, b model.SwitchID) bool {
	ga := c.grp.GroupOf(a)
	return ga != model.NoGroup && ga == c.grp.GroupOf(b)
}

// InitialGrouping runs IniGroup on a warmup intensity matrix (the paper
// seeds grouping from the first-hour traffic) and pushes the group
// configuration to all switches. In learning mode it is a no-op.
func (c *Controller) InitialGrouping(m *grouping.Intensity) error {
	if c.cfg.Mode != ModeLazy {
		return nil
	}
	// Every switch participates even if silent during warmup.
	seeded := m.Clone()
	for _, sw := range c.cfg.Switches {
		seeded.AddSwitch(sw)
	}
	grp, err := c.sgi.IniGroup(seeded)
	if err != nil {
		return fmt.Errorf("controller: initial grouping: %w", err)
	}
	c.grp = grp
	c.intensity = seeded
	c.groupingVersion++
	c.stats.Regroupings++
	c.lastRegroupAt = c.env.Now()
	c.pushGroupConfigs()
	if c.cfg.Recorder != nil {
		c.cfg.Recorder.RecordUpdate(c.env.Now())
	}
	if c.cfg.OnRegroup != nil {
		c.cfg.OnRegroup(c.groupingVersion, c.grp)
	}
	return nil
}

// pushGroupConfigs sends every switch its group view (§III-D1 setup
// phase: designated selection, wheel ordering, timing parameters),
// coalesced with L-FIB preloads of the switch's new peers into at most
// one OpenFlow message per destination per round. The preloads let a
// regrouped switch rebuild its G-FIB immediately out of the C-LIB (the
// Appendix-B "preload for seamless grouping update") instead of
// black-holing until the first dissemination round; each peer's
// snapshot is materialized once per group, not once per destination.
func (c *Controller) pushGroupConfigs() {
	// Fingerprints are rebuilt from scratch each round: groups that
	// disappeared don't linger, and a reused group ID can't inherit a
	// stale fingerprint.
	freshFPs := make(map[model.GroupID]uint64, c.grp.NumGroups())
	defer func() { c.pushedMembers = freshFPs }()
	for _, gid := range c.grp.GroupIDs() {
		members := c.grp.Members(gid)
		wheel := failover.BuildWheel(members)
		designated := c.chooseDesignated(members)
		var backups []model.SwitchID
		if len(members) > 1 {
			for _, m := range members {
				if m != designated {
					backups = append(backups, m)
					break
				}
			}
		}
		// Preload peer state only into groups whose membership changed:
		// a switch keeps its G-FIB across regroupings that leave its
		// group intact (see edge.handleGroupConfig), so re-preloading an
		// unchanged group would rebuild every peer filter for nothing.
		// The preload is a GFIBUpdate whose filters are built once per
		// group out of the C-LIB (default geometry) and shared across
		// every destination; receivers skip their own filter.
		fp := membersFingerprint(members)
		changed := c.pushedMembers[gid] != fp
		freshFPs[gid] = fp
		var preload *openflow.GFIBUpdate
		if changed && len(members) > 1 {
			update := &openflow.GFIBUpdate{Group: gid, Version: c.groupingVersion}
			for _, m := range members {
				entries := c.clib.EntriesOn(m)
				if len(entries) == 0 {
					continue
				}
				data, err := fib.FilterBytesFromWireEntries(entries, c.cfg.FilterBits, c.cfg.FilterHashes)
				if err != nil {
					continue // cannot happen with the default geometry
				}
				update.Filters = append(update.Filters, openflow.GFIBFilter{Switch: m, Filter: data})
				c.stats.RulesPreload += uint64(len(entries))
			}
			if len(update.Filters) > 0 {
				preload = update
			}
		}
		for _, m := range members {
			prev, next := failover.Neighbors(wheel, m)
			cfgMsg := &openflow.GroupConfig{
				Group:             gid,
				Members:           members,
				Designated:        designated,
				Backups:           backups,
				RingPrev:          prev,
				RingNext:          next,
				SyncInterval:      c.cfg.SyncInterval,
				KeepAliveInterval: c.cfg.KeepAliveInterval,
				Version:           c.groupingVersion,
			}
			if preload == nil {
				c.env.Send(m, cfgMsg)
			} else {
				c.stats.BatchedPushes++
				c.env.Send(m, &openflow.Batch{Msgs: []openflow.Message{cfgMsg, preload}})
			}
		}
		// C-LIB group tags follow the new grouping; the host→switch
		// mapping itself is unchanged (§III-D3).
		for _, m := range members {
			c.clib.SetGroup(m, gid)
		}
	}
}

// membersFingerprint hashes a member list (FNV-1a over the IDs, which
// arrive in deterministic order) so pushGroupConfigs can tell whether a
// group's membership moved since its last push.
func membersFingerprint(members []model.SwitchID) uint64 {
	h := uint64(1469598103934665603)
	for _, m := range members {
		h ^= uint64(m)
		h *= 1099511628211
	}
	return h
}

// chooseDesignated picks the designated switch for a group. The paper
// allows any principle (shortest distance, response time); the
// deterministic choice here is the live member with the smallest
// management MAC.
func (c *Controller) chooseDesignated(members []model.SwitchID) model.SwitchID {
	wheel := failover.BuildWheel(members)
	for _, m := range wheel {
		if !c.dead[m] {
			return m
		}
	}
	return wheel[0]
}
