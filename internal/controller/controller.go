// Package controller implements the LazyCtrl central controller (§IV-B):
// C-LIB maintenance, switch-grouping management driven by the SGI
// algorithm, tenant information management, ARP relay scoped by tenant,
// inter-group rule installation with the Encap action, the failover
// module, and — for the evaluation baseline — a standard OpenFlow
// "learning switch" mode that reproduces the original Floodlight
// behavior the paper compares against.
//
// # Sharded hot state
//
// The controller's per-MAC hot state — the C-LIB (fib.CLIB), the
// learning-mode location table, and the pending-flow table — is
// lock-striped into power-of-two shards keyed by a Fibonacci hash of
// the MAC (Config.StateShards stripes for the controller tables, a
// fixed 16 for the C-LIB). Packet-in handling is split into a decide
// phase (hash, shard-local reads/writes, forwarding decision) and an
// apply phase (workload accounting, intensity updates, message
// emission). ProcessBurst fans the decide phase of a packet-in storm
// out across per-shard workers and then applies the decisions
// sequentially in input order, so shared non-sharded state (queueing
// model, intensity matrix, stats) is merged in a deterministic order
// and the final table state matches the single-shard run for stable
// workloads.
//
// # Batched pushes
//
// Group reconfiguration coalesces everything a switch must receive in
// a regroup round — its GroupConfig plus L-FIB preloads of its new
// peers out of the C-LIB — into one openflow.Batch per destination, so
// each round encodes and sends at most one control message per switch.
package controller

import (
	"fmt"
	"time"

	"lazyctrl/internal/bloom"
	"lazyctrl/internal/failover"
	"lazyctrl/internal/fib"
	"lazyctrl/internal/grouping"
	"lazyctrl/internal/metrics"
	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/openflow"
	"lazyctrl/internal/telemetry"
)

// Mode selects the control-plane behavior.
type Mode uint8

// Modes.
const (
	// ModeLazy is the LazyCtrl hybrid control plane.
	ModeLazy Mode = iota + 1
	// ModeLearning is the standard OpenFlow baseline: every flow setup
	// reaches the controller, host locations are learned passively, and
	// unknown destinations are flooded.
	ModeLearning
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeLazy:
		return "lazy"
	case ModeLearning:
		return "learning"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Config parameterizes the controller.
type Config struct {
	Mode Mode
	// Switches lists all edge switches under control.
	Switches []model.SwitchID
	// GroupSizeLimit caps LCG sizes (lazy mode). Zero selects 46 (the
	// paper's storage example).
	GroupSizeLimit int
	// Seed drives SGI and designated-switch selection.
	Seed uint64
	// ServiceRate is the controller's request-processing capacity in
	// requests/second (unscaled). Zero selects 8000, a Floodlight-class
	// controller on the paper's Core 2 Duo host.
	ServiceRate float64
	// LoadScale converts observed (scaled-down trace) request rates to
	// estimated unscaled rates for the queueing model. Zero selects 1.
	LoadScale int
	// Dynamic enables incremental regrouping (Fig. 7's "dynamic"
	// series). Static keeps the initial grouping for the whole run.
	Dynamic bool
	// RegroupMinInterval is the minimum time between regroupings (the
	// paper uses 2 minutes to prevent oscillation).
	RegroupMinInterval time.Duration
	// RegroupGrowth triggers an early regrouping when controller
	// workload has grown by this fraction since the last update (the
	// paper uses 0.30); independent of growth, a regrouping attempt is
	// made once RegroupMinInterval has elapsed, and Fig. 3's load
	// thresholds decide whether IncUpdate actually changes anything.
	RegroupGrowth float64
	// RegroupCheckInterval is how often the trigger condition is
	// evaluated. Zero selects 30 s.
	RegroupCheckInterval time.Duration
	// RegroupHighLoad and RegroupLowLoad are Fig. 3's thresholds on the
	// normalized inter-group intensity. Zero selects 0.35 and 0.30 —
	// above the scatter floor of a well-grouped data center, so updates
	// fire on genuine degradation (the expanded trace) and stay quiet on
	// a stable pattern.
	RegroupHighLoad float64
	RegroupLowLoad  float64
	// RuleIdleTimeout is the idle timeout of installed flow rules. Zero
	// selects 60 s.
	RuleIdleTimeout time.Duration
	// SyncInterval and KeepAliveInterval are handed to switches in
	// GroupConfig. Zero selects 10 s and 5 s.
	SyncInterval      time.Duration
	KeepAliveInterval time.Duration
	// PushRetryTimeout is the supervision deadline on GroupConfig
	// pushes: a destination that has not acknowledged its config within
	// it gets the push re-shipped, with exponential backoff (doubling
	// per attempt, capped at 8× the base). Zero selects
	// 2×KeepAliveInterval — faster than the 3-window keep-alive
	// heuristics, so a lost push no longer strands a destination until
	// the next regroup.
	PushRetryTimeout time.Duration
	// ARPTimeout bounds how long an unresolved destination stays pending.
	// Zero selects 200 ms.
	ARPTimeout time.Duration
	// Peer is the node address of the other controller replica (zero:
	// no replication). The primary journals state increments to it and
	// heartbeats it; the standby watches those heartbeats and takes the
	// master role when they stop.
	Peer model.SwitchID
	// Standby starts this replica in the standby role: it mirrors state
	// from the journal and runs no switch-facing duties until takeover.
	Standby bool
	// TakeoverMisses is how many consecutive missed primary heartbeat
	// intervals the standby tolerates before taking over. Zero selects 3
	// (matching the keep-alive failure heuristics).
	TakeoverMisses int
	// StateShards is the number of lock stripes for the controller's
	// per-MAC hot state (learning-mode locations, pending flows) and the
	// worker count of ProcessBurst. Rounded up to a power of two and
	// capped at 1024 (a stripe per core is plenty); zero selects 8.
	// Final table state is shard-count independent for stable burst
	// workloads (see ProcessBurst for the exact contract).
	StateShards int
	// FilterBits and FilterHashes set the Bloom geometry of G-FIB
	// preloads and must match the edge switches' configured geometry
	// (edge.Config). Zero selects the shared fib defaults.
	FilterBits   uint64
	FilterHashes uint32
	// PerFlowRules selects the per-flow (5-tuple) reactive baseline for
	// learning mode: the controller answers each escalation with the
	// buffered packet only and installs no flow rule. A faithful
	// per-flow rule would never be hit again inside the emulation —
	// only first packets of distinct flows reach the datapath, and two
	// flows of one host pair are indistinguishable at the MAC/IP match
	// granularity the wire model carries — so omitting the install *is*
	// the per-flow cache model: every distinct flow's first packet
	// escalates, which is what the paper's OpenFlow baseline measures.
	PerFlowRules bool
	// ControlFold enables analytic elision of the controller's
	// quiescent periodic rounds (keep-alive probing/failure checking,
	// ARP expiry): runs of provably no-op rounds collapse into one bulk
	// event crediting their aggregate effect (see fold.go). Takes
	// effect only when the environment supports elision
	// (netsim.ElidableScheduler).
	ControlFold bool
	// FoldGate reports whether folding is currently allowed; the
	// harness wires it to the underlay's fault-free predicate.
	FoldGate func() bool
	// FoldMeter credits the wire bytes of messages a folded round would
	// have sent (same contract as edge.FoldHooks.Meter).
	FoldMeter func(from, to model.SwitchID, msg openflow.Message, copies uint64)
	// Recorder receives workload accounting (may be nil).
	Recorder *metrics.Recorder
	// Tracer receives causal spans (may be nil). Spans are created only
	// in ordered code — the apply phase and periodic duties, never the
	// concurrent decide phase — so the dump stays deterministic.
	Tracer *telemetry.Tracer
	// OnDiagnosis is invoked when the failover module reaches a
	// diagnosis; the harness wires recovery actions that need to touch
	// the simulated underlay (detours, reboots).
	OnDiagnosis func(suspect model.SwitchID, diag failover.Diagnosis)
	// OnRegroup is invoked after every (re)grouping with its version.
	OnRegroup func(version uint64, grp *grouping.Grouping)
}

func (c Config) withDefaults() Config {
	if c.GroupSizeLimit == 0 {
		c.GroupSizeLimit = 46
	}
	if c.ServiceRate == 0 {
		c.ServiceRate = 8000
	}
	if c.LoadScale < 1 {
		c.LoadScale = 1
	}
	if c.RegroupMinInterval == 0 {
		c.RegroupMinInterval = 2 * time.Minute
	}
	if c.RegroupGrowth == 0 {
		c.RegroupGrowth = 0.30
	}
	if c.RegroupCheckInterval == 0 {
		c.RegroupCheckInterval = 30 * time.Second
	}
	if c.RegroupHighLoad == 0 {
		c.RegroupHighLoad = 0.35
	}
	if c.RegroupLowLoad == 0 {
		c.RegroupLowLoad = 0.30
	}
	if c.RuleIdleTimeout == 0 {
		c.RuleIdleTimeout = 60 * time.Second
	}
	if c.SyncInterval == 0 {
		c.SyncInterval = 10 * time.Second
	}
	if c.KeepAliveInterval == 0 {
		c.KeepAliveInterval = 5 * time.Second
	}
	if c.ARPTimeout == 0 {
		c.ARPTimeout = 200 * time.Millisecond
	}
	if c.TakeoverMisses == 0 {
		c.TakeoverMisses = 3
	}
	if c.PushRetryTimeout == 0 {
		c.PushRetryTimeout = 2 * c.KeepAliveInterval
	}
	if c.StateShards == 0 {
		c.StateShards = 8
	}
	if c.StateShards > 1024 {
		c.StateShards = 1024
	}
	if c.FilterBits == 0 {
		c.FilterBits = fib.DefaultFilterBits
	}
	if c.FilterHashes == 0 {
		c.FilterHashes = fib.DefaultFilterHashes
	}
	return c
}

// pendingFlow is a PacketIn awaiting host-location resolution.
type pendingFlow struct {
	ingress model.SwitchID
	packet  model.Packet
	since   time.Duration
}

// Controller is the central controller node.
type Controller struct {
	cfg Config
	env netsim.Env

	// addr is this replica's node address: model.ControllerNode for the
	// primary, model.StandbyNode for the standby.
	addr model.SwitchID

	// Replication state (see replica.go). generation is the cluster
	// generation this replica last held or observed; it is stamped into
	// every switch-bound push and only ever increases (owner-only
	// writes, enforced by the versionstamp analyzer).
	generation uint64
	isStandby  bool
	// peerLastKA/peerSeen track the primary's heartbeats (standby role);
	// peerSynced records whether the standby was sent its bootstrap
	// snapshot (master role); standbySeq numbers the standby's own
	// watch heartbeats so a fresh standby (seq 1) triggers a re-sync.
	peerLastKA time.Duration
	peerSeen   bool
	peerSynced bool
	standbySeq uint64
	// Takeover timeline instrumentation: rebuildPending holds the groups
	// whose post-takeover designated report is still outstanding;
	// awaitingRepush is set until every re-pushed config is acked.
	rebuildPending map[model.GroupID]bool
	awaitingRepush bool
	takeovers      []TakeoverTimeline

	clib      *fib.CLIB
	grp       *grouping.Grouping
	sgi       *grouping.SGI
	intensity *grouping.Intensity

	// Tenant information management: VLAN → tenant.
	tenants map[model.VLAN]model.TenantID

	// Lock-striped per-MAC hot state: the learning-mode location table
	// and the pending-flow table (see shard.go).
	state *stateShards

	// Queueing model state.
	reqWindowStart time.Duration
	reqWindowCount uint64
	lastRate       float64 // unscaled estimated requests/sec
	backgroundRate float64 // floor for the rate estimate

	// Regrouping state.
	lastRegroupAt   time.Duration
	rateAtRegroup   float64
	groupingVersion uint64
	// pushedMembers fingerprints the member list last pushed per group:
	// a moved fingerprint means the group's switches will clear their
	// G-FIBs on the incoming GroupConfig, so their per-destination
	// filter-version tracking must restart (full preloads).
	pushedMembers map[model.GroupID]uint64
	// pushedCfg fingerprints the group view last sent to each switch;
	// an unchanged view is not re-sent. pushedFilters records, per
	// destination switch, the filter version last pushed per peer —
	// assumed delivered until a GFIBNack says otherwise — which is what
	// lets a push round choose skip vs. delta vs. full per destination.
	pushedCfg     map[model.SwitchID]uint64
	pushedFilters map[model.SwitchID]map[model.SwitchID]uint64
	// pfCur and pfPrev cache the newest and previous preload filter
	// built per peer out of the C-LIB: pfCur is what full pushes ship,
	// (pfPrev → pfCur) is the diff pair behind preload deltas.
	pfCur  map[model.SwitchID]*peerFilter
	pfPrev map[model.SwitchID]*peerFilter

	// Failover.
	detector *failover.Detector
	lastAck  map[model.SwitchID]time.Duration
	kaSeq    uint64
	dead     map[model.SwitchID]bool

	// Push supervision: per destination, the retry state of the last
	// GroupConfig sent to it, cleared by its ConfigAck. pushing guards
	// against a retry timer firing inside the push round that armed it
	// (possible only under an env whose After runs callbacks
	// synchronously, as some test harnesses do).
	pushPending map[model.SwitchID]*pushRetry
	pushing     bool

	// Telemetry: open per-destination push spans (awaiting ConfigAck)
	// and the regroup-round trace context push rounds attach to (zero
	// outside a traced round). See trace.go.
	pushSpans  map[model.SwitchID]*telemetry.Span
	regroupCtx telemetry.SpanContext

	// ARP-relay target memoization, valid only inside one ProcessBurst
	// apply phase (see designatedTargets).
	arpCache    map[model.VLAN][]model.SwitchID
	arpCacheVer uint64
	arpCacheOn  bool

	cancels []func()

	// Control-fold task handles (nil without ControlFold).
	kaTask     netsim.ElidableTask
	expireTask netsim.ElidableTask

	// Stats.
	stats Stats
}

// Stats counts controller-side events.
type Stats struct {
	PacketIns     uint64
	FlowModsSent  uint64
	PacketOuts    uint64
	Floods        uint64
	ARPRelays     uint64
	StateReports  uint64
	Regroupings   uint64
	Unresolved    uint64
	FailuresSeen  uint64
	RulesPreload  uint64
	KeepAliveLost uint64
	// BatchedPushes counts openflow.Batch messages sent by regroup
	// rounds (≤1 per destination switch per round).
	BatchedPushes uint64
	// LearnedEvicted and PendingEvicted count entries purged from the
	// sharded tables when a switch is diagnosed dead.
	LearnedEvicted uint64
	PendingEvicted uint64
	// PreloadFulls and PreloadDeltas count per-destination preload
	// filter items pushed in full vs. as word deltas; PushesSkipped
	// counts destinations a push round sent nothing to (their group
	// view and peer filters were already current).
	PreloadFulls  uint64
	PreloadDeltas uint64
	PushesSkipped uint64
	// PreloadNacks counts GFIBNack resync requests answered with full
	// filters.
	PreloadNacks uint64
	// FilterRemovalsSent counts G-FIB tombstones broadcast to a dead
	// switch's group after DiagSwitch closed, so non-neighbor members
	// evict its filter immediately instead of waiting for the next
	// membership change.
	FilterRemovalsSent uint64
	// ConfigAcks counts GroupConfig acknowledgments received;
	// PushRetries counts supervised re-pushes fired by a missing ack.
	ConfigAcks  uint64
	PushRetries uint64
	// Resurrections counts falsely-diagnosed switches brought back by
	// proof of life (a keep-alive ack, config ack, or ARP answer
	// arriving while the switch was marked dead).
	Resurrections uint64
	// Replication counters: Takeovers and StepDowns count role changes
	// on this replica; SyncRecordsSent/Applied count journal traffic;
	// StaleSyncRejected counts journal records fenced behind the
	// receiver's generation.
	Takeovers          uint64
	StepDowns          uint64
	SyncRecordsSent    uint64
	SyncRecordsApplied uint64
	StaleSyncRejected  uint64
}

// New constructs a controller.
func New(cfg Config, env netsim.Env) (*Controller, error) {
	c := cfg.withDefaults()
	if c.Mode != ModeLazy && c.Mode != ModeLearning {
		return nil, fmt.Errorf("controller: invalid mode %v", c.Mode)
	}
	if len(c.Switches) == 0 {
		return nil, fmt.Errorf("controller: no switches")
	}
	sgi, err := grouping.New(grouping.Config{
		SizeLimit: c.GroupSizeLimit,
		Seed:      c.Seed,
		HighLoad:  c.RegroupHighLoad,
		LowLoad:   c.RegroupLowLoad,
	})
	if err != nil {
		return nil, fmt.Errorf("controller: %w", err)
	}
	// Pre-register every switch so the intensity matrix's dense index
	// layout is fixed from t=0: later traffic accounting is pure O(degree)
	// weight updates, and silent switches still participate in regrouping.
	intensity := grouping.NewIntensity()
	for _, sw := range c.Switches {
		intensity.AddSwitch(sw)
	}
	addr := model.ControllerNode
	if c.Standby {
		addr = model.StandbyNode
	}
	return &Controller{
		cfg:  c,
		env:  env,
		addr: addr,
		// Both replicas are born at generation 1 (not 0, the unfenced
		// sentinel): a standby that never heard the primary still takes
		// over at a strictly greater generation than the one it started
		// with, and a solo controller's pushes are fenceable from t=0.
		generation:    1,
		isStandby:     c.Standby,
		clib:          fib.NewCLIB(),
		grp:           grouping.NewGrouping(),
		sgi:           sgi,
		intensity:     intensity,
		tenants:       make(map[model.VLAN]model.TenantID),
		state:         newStateShards(c.StateShards),
		pushedMembers: make(map[model.GroupID]uint64),
		pushedCfg:     make(map[model.SwitchID]uint64),
		pushedFilters: make(map[model.SwitchID]map[model.SwitchID]uint64),
		pfCur:         make(map[model.SwitchID]*peerFilter),
		pfPrev:        make(map[model.SwitchID]*peerFilter),
		arpCache:      make(map[model.VLAN][]model.SwitchID),
		detector:      failover.NewDetector(3 * c.KeepAliveInterval),
		lastAck:       make(map[model.SwitchID]time.Duration),
		dead:          make(map[model.SwitchID]bool),
		pushPending:   make(map[model.SwitchID]*pushRetry),
		pushSpans:     make(map[model.SwitchID]*telemetry.Span),
	}, nil
}

// NodeID implements netsim.Node.
func (c *Controller) NodeID() model.SwitchID { return c.addr }

// CLIB exposes the central location information base (read-only use).
func (c *Controller) CLIB() *fib.CLIB { return c.clib }

// Grouping returns the current grouping (read-only use).
func (c *Controller) Grouping() *grouping.Grouping { return c.grp }

// Stats returns a snapshot of the controller counters.
func (c *Controller) Stats() Stats { return c.stats }

// GroupingVersion returns the current grouping version.
func (c *Controller) GroupingVersion() uint64 { return c.groupingVersion }

// IsDead reports whether the failover module currently considers a
// switch dead.
func (c *Controller) IsDead(sw model.SwitchID) bool { return c.dead[sw] }

// RegisterTenant records a VLAN → tenant binding (tenant information
// management module).
func (c *Controller) RegisterTenant(vlan model.VLAN, tenant model.TenantID) {
	c.tenants[vlan] = tenant
}

// Start begins periodic duties: keep-alives, failover checks, and (in
// lazy dynamic mode) regroup-trigger evaluation. With ControlFold the
// keep-alive send and failure check merge into one elidable task
// (send-then-check, the order the separate registrations produced) and
// ARP expiry becomes elidable; regroup evaluation always stays real —
// it reads the intensity matrix, which folding cannot reason about.
func (c *Controller) Start() {
	if c.cfg.ControlFold {
		c.kaTask = netsim.EveryElidableOrReal(c.env, c.cfg.KeepAliveInterval,
			func() { c.sendKeepAlives(); c.checkFailures() },
			c.kaQuiet, c.kaCredit)
		c.expireTask = netsim.EveryElidableOrReal(c.env, c.cfg.ARPTimeout,
			c.expirePending, c.expireQuiet, func(int) {})
		c.cancels = append(c.cancels, c.kaTask.Stop, c.expireTask.Stop)
	} else {
		c.cancels = append(c.cancels,
			c.env.Every(c.cfg.KeepAliveInterval, c.sendKeepAlives),
			c.env.Every(c.cfg.KeepAliveInterval, c.checkFailures),
			c.env.Every(c.cfg.ARPTimeout, c.expirePending),
		)
	}
	if c.cfg.Mode == ModeLazy && c.cfg.Dynamic {
		c.cancels = append(c.cancels,
			c.env.Every(c.cfg.RegroupCheckInterval, c.maybeRegroup))
	}
	if c.cfg.Peer != 0 {
		// Standby-role duty: heartbeat the primary and take over when it
		// goes silent. Registered on both replicas — it gates on the
		// current role, which changes at runtime (takeover, step-down).
		c.cancels = append(c.cancels,
			c.env.Every(c.cfg.KeepAliveInterval, c.watchPrimary))
	}
}

// Stop cancels periodic duties (elidable tasks settle pending folds).
func (c *Controller) Stop() {
	for _, cancel := range c.cancels {
		cancel()
	}
	c.cancels = nil
	c.kaTask, c.expireTask = nil, nil
}

// SameGroup reports whether two switches share a local control group —
// handed to netsim for peer-link classification.
func (c *Controller) SameGroup(a, b model.SwitchID) bool {
	ga := c.grp.GroupOf(a)
	return ga != model.NoGroup && ga == c.grp.GroupOf(b)
}

// InitialGrouping runs IniGroup on a warmup intensity matrix (the paper
// seeds grouping from the first-hour traffic) and pushes the group
// configuration to all switches. In learning mode it is a no-op.
func (c *Controller) InitialGrouping(m *grouping.Intensity) error {
	if c.cfg.Mode != ModeLazy {
		return nil
	}
	// Every switch participates even if silent during warmup.
	seeded := m.Clone()
	for _, sw := range c.cfg.Switches {
		seeded.AddSwitch(sw)
	}
	root := c.cfg.Tracer.StartTrace("regroup").Attr("initial", 1)
	mlkp := c.cfg.Tracer.StartSpan(root.Context(), "regroup.mlkp")
	grp, err := c.sgi.IniGroup(seeded)
	mlkp.End()
	if err != nil {
		root.End()
		return fmt.Errorf("controller: initial grouping: %w", err)
	}
	c.grp = grp
	c.intensity = seeded
	c.groupingVersion++
	c.stats.Regroupings++
	c.lastRegroupAt = c.env.Now()
	c.journalGrouping()
	c.regroupCtx = root.Context()
	sent := c.pushGroupConfigs(true)
	c.regroupCtx = telemetry.SpanContext{}
	root.Attr("sent", int64(sent)).End()
	if c.cfg.Recorder != nil {
		c.cfg.Recorder.RecordUpdate(c.env.Now())
	}
	if c.cfg.OnRegroup != nil {
		c.cfg.OnRegroup(c.groupingVersion, c.grp)
	}
	return nil
}

// peerFilter is one cached preload filter: the Bloom filter built from
// a switch's C-LIB entries (version-stamped with the switch's reported
// L-FIB version), its wire encoding, and the entry count it covers.
type peerFilter struct {
	f       *bloom.Filter
	data    []byte
	entries int
}

// pushGroupConfigs sends each switch its group view (§III-D1 setup
// phase: designated selection, wheel ordering, timing parameters)
// coalesced with G-FIB preloads of the switch's peers out of the C-LIB
// (the Appendix-B "preload for seamless grouping update") into at most
// one OpenFlow message per destination per round — and, new in the
// versioned protocol, possibly none: per destination the round ships
// only what that destination does not already hold. The group view is
// fingerprinted per destination; each peer filter is version-tracked
// per destination and sent as a word-level delta when the destination
// holds the previous cached version, in full when it holds nothing
// usable, and not at all when it is current.
//
// kickDesignated forces the config through to every group's designated
// switch even when its view is unchanged: receiving a GroupConfig
// makes a designated switch advertise, disseminate, and report
// promptly, so after an effective regrouping the controller's freshly
// decayed intensity matrix refills within seconds instead of waiting
// out the report interval — the §IV-B trigger then reacts to fresh
// traffic, not to decay artifacts. That is one small message per group
// per regroup, against the full fabric push it replaces.
//
// It returns the number of destinations that actually received a
// message, which is what regroup workload accounting records.
func (c *Controller) pushGroupConfigs(kickDesignated bool) int {
	c.pushing = true
	defer func() { c.pushing = false }()
	// Membership fingerprints are rebuilt from scratch each round:
	// groups that disappeared don't linger, and a reused group ID can't
	// inherit a stale fingerprint.
	freshFPs := make(map[model.GroupID]uint64, c.grp.NumGroups())
	defer func() { c.pushedMembers = freshFPs }()
	sent := 0
	for _, gid := range c.grp.GroupIDs() {
		members := c.grp.Members(gid)
		wheel := failover.BuildWheel(members)
		designated := c.chooseDesignated(members)
		var backups []model.SwitchID
		if len(members) > 1 {
			for _, m := range members {
				if m != designated {
					backups = append(backups, m)
					break
				}
			}
		}
		fp := membersFingerprint(members)
		membersChanged := c.pushedMembers[gid] != fp
		freshFPs[gid] = fp
		var memberSet map[model.SwitchID]bool
		if membersChanged {
			memberSet = make(map[model.SwitchID]bool, len(members))
			for _, m := range members {
				memberSet[m] = true
			}
		}
		// Refresh the per-peer filter cache for members whose reported
		// L-FIB version moved; each filter is built and encoded once
		// per round and shared across every destination.
		if len(members) > 1 {
			for _, m := range members {
				c.refreshPeerFilter(m)
			}
		}
		// diffs memoizes the pfPrev→pfCur word diff per peer within the
		// round (computed at most once, reused by every destination that
		// holds the previous version).
		var diffs map[model.SwitchID][]bloom.WordDelta
		for _, m := range members {
			prev, next := failover.Neighbors(wheel, m)
			cfgMsg := &openflow.GroupConfig{
				Group:             gid,
				Members:           members,
				Designated:        designated,
				Backups:           backups,
				RingPrev:          prev,
				RingNext:          next,
				SyncInterval:      c.cfg.SyncInterval,
				KeepAliveInterval: c.cfg.KeepAliveInterval,
				Version:           c.groupingVersion,
				Generation:        c.generation,
			}
			cfgFP := configFingerprint(cfgMsg)
			var msgs []openflow.Message
			sentCfg := false
			if c.pushedCfg[m] != cfgFP || (kickDesignated && m == designated) {
				msgs = append(msgs, cfgMsg)
				sentCfg = true
			}
			if membersChanged {
				// The incoming GroupConfig makes this switch drop the
				// filters of peers that left its group; filters of
				// peers that stayed survive at equal-or-newer versions
				// (edge.handleGroupConfig invalidates selectively), so
				// only the departed peers' acked versions are
				// forgotten. If a kept filter was in fact lost (peer
				// evidence eviction), the NACK/resync path repairs it.
				if acked := c.pushedFilters[m]; acked != nil {
					for peer := range acked {
						if !memberSet[peer] {
							delete(acked, peer)
						}
					}
				}
			}
			var nFull, nDelta int
			if len(members) > 1 {
				update, delta := c.buildPreload(gid, m, members, &diffs)
				if update != nil {
					msgs = append(msgs, update)
					nFull = len(update.Filters)
				}
				if delta != nil {
					msgs = append(msgs, delta)
					nDelta = len(delta.Deltas)
				}
			}
			if len(msgs) == 0 {
				c.stats.PushesSkipped++
				c.tracePushSkip(m)
				continue
			}
			c.pushedCfg[m] = cfgFP
			sent++
			if len(msgs) == 1 {
				c.env.Send(m, msgs[0])
			} else {
				c.stats.BatchedPushes++
				c.env.Send(m, &openflow.Batch{Generation: c.generation, Msgs: msgs})
			}
			c.tracePush(m, sentCfg && !c.dead[m], nFull, nDelta)
			if sentCfg && !c.dead[m] {
				c.supervisePush(m, c.groupingVersion)
			}
		}
		// C-LIB group tags follow the new grouping; the host→switch
		// mapping itself is unchanged (§III-D3).
		for _, m := range members {
			c.clib.SetGroup(m, gid)
		}
	}
	return sent
}

// pushRetry is the supervision state of one outstanding GroupConfig
// push: the grouping version it carried, how many times it has been
// retried, and the pending timer.
type pushRetry struct {
	version  uint64
	attempts int
	cancel   func()
}

// maxPushAttempts bounds supervised re-pushes per destination; a
// destination silent through every attempt is left to the keep-alive
// heuristics (it is either dead — soon diagnosed — or will recover via
// MarkRecovered or resurrection, both of which re-arm supervision).
const maxPushAttempts = 6

// supervisePush arms (or re-arms) the retry timer for a GroupConfig
// just sent to dest. The destination's ConfigAck cancels it; if it
// fires instead, the destination's push tracking is forgotten and the
// config is re-shipped, with the deadline doubling per attempt.
func (c *Controller) supervisePush(dest model.SwitchID, version uint64) {
	p := c.pushPending[dest]
	if p == nil {
		p = &pushRetry{}
		c.pushPending[dest] = p
	} else {
		if p.cancel != nil {
			p.cancel()
		}
		if p.version != version {
			p.attempts = 0
		}
	}
	p.version = version
	d := c.cfg.PushRetryTimeout << uint(p.attempts)
	if lim := c.cfg.PushRetryTimeout << 3; d > lim {
		d = lim
	}
	p.cancel = c.env.After(d, func() { c.retryPush(dest) })
}

// retryPush re-ships an unacknowledged GroupConfig.
func (c *Controller) retryPush(dest model.SwitchID) {
	if c.pushing {
		// Synchronous-After env: the timer fired inside the push round
		// that armed it. Supervision is meaningless without real time.
		delete(c.pushPending, dest)
		return
	}
	p := c.pushPending[dest]
	if p == nil {
		return
	}
	p.cancel = nil
	if c.dead[dest] || p.attempts >= maxPushAttempts {
		delete(c.pushPending, dest)
		c.endPushSpan(dest, "abandoned")
		return
	}
	p.attempts++
	c.stats.PushRetries++
	// Forget what was pushed to this destination; the push round then
	// re-ships its config and preloads — and only to it, since every
	// other destination's tracking is intact.
	delete(c.pushedCfg, dest)
	delete(c.pushedFilters, dest)
	c.pushGroupConfigs(false)
}

// cancelPush drops any pending push supervision for a switch.
func (c *Controller) cancelPush(sw model.SwitchID) {
	if p := c.pushPending[sw]; p != nil {
		if p.cancel != nil {
			p.cancel()
		}
		delete(c.pushPending, sw)
	}
	c.endPushSpan(sw, "cancelled")
}

// refreshPeerFilter rebuilds the cached preload filter for a switch
// when the C-LIB's recorded L-FIB version for it moved, rotating the
// old filter into the diff-base slot. A switch without C-LIB entries
// has no filter (and loses any cached one — e.g. after failover
// eviction).
func (c *Controller) refreshPeerFilter(sw model.SwitchID) {
	v := c.clib.VersionOn(sw)
	if cur := c.pfCur[sw]; cur != nil && cur.f.Version() == v {
		return
	}
	entries := c.clib.EntriesOn(sw)
	if len(entries) == 0 {
		delete(c.pfCur, sw)
		delete(c.pfPrev, sw)
		return
	}
	f := fib.FilterFromWireEntries(entries, c.cfg.FilterBits, c.cfg.FilterHashes)
	f.SetVersion(v)
	data, err := f.MarshalBinary()
	if err != nil {
		return // cannot happen: MarshalBinary has no failure path
	}
	if cur := c.pfCur[sw]; cur != nil {
		c.pfPrev[sw] = cur
	}
	c.pfCur[sw] = &peerFilter{f: f, data: data, entries: len(entries)}
}

// buildPreload assembles the G-FIB preload for one destination: per
// peer, skip when the destination already holds the current filter
// version, diff against the previous cached filter when it holds that,
// and fall back to the full encoding otherwise. diffs memoizes word
// diffs across destinations within the round.
func (c *Controller) buildPreload(gid model.GroupID, dest model.SwitchID, members []model.SwitchID, diffs *map[model.SwitchID][]bloom.WordDelta) (*openflow.GFIBUpdate, *openflow.GFIBDelta) {
	var update *openflow.GFIBUpdate
	var delta *openflow.GFIBDelta
	acked := c.pushedFilters[dest]
	for _, peer := range members {
		if peer == dest {
			continue
		}
		cur := c.pfCur[peer]
		if cur == nil {
			continue
		}
		curV := cur.f.Version()
		var ackedV uint64
		var has bool
		if acked != nil {
			ackedV, has = acked[peer]
		}
		if has && ackedV == curV {
			continue // destination is current for this peer
		}
		prev := c.pfPrev[peer]
		if has && prev != nil && prev.f.Version() == ackedV {
			if *diffs == nil {
				*diffs = make(map[model.SwitchID][]bloom.WordDelta)
			}
			words, ok := (*diffs)[peer]
			if !ok {
				var err error
				words, err = cur.f.DiffWords(prev.f)
				if err != nil {
					words = nil
				}
				(*diffs)[peer] = words
			}
			if words != nil && openflow.DeltaWireCost(words) < openflow.FullWireCost(len(cur.data)) {
				if delta == nil {
					delta = &openflow.GFIBDelta{Group: gid, Version: c.groupingVersion, Generation: c.generation}
				}
				delta.Deltas = append(delta.Deltas, openflow.GFIBFilterDelta{
					Switch:        peer,
					BaseVersion:   ackedV,
					TargetVersion: curV,
					Words:         words,
				})
				c.stats.PreloadDeltas++
				c.markPushed(dest, peer, curV)
				continue
			}
		}
		if update == nil {
			update = &openflow.GFIBUpdate{Group: gid, Version: c.groupingVersion, Generation: c.generation}
		}
		update.Filters = append(update.Filters, openflow.GFIBFilter{Switch: peer, Filter: cur.data, Version: curV})
		c.stats.PreloadFulls++
		c.stats.RulesPreload += uint64(cur.entries)
		c.markPushed(dest, peer, curV)
	}
	return update, delta
}

// markPushed records the filter version just shipped to a destination.
func (c *Controller) markPushed(dest, peer model.SwitchID, v uint64) {
	m := c.pushedFilters[dest]
	if m == nil {
		m = make(map[model.SwitchID]uint64)
		c.pushedFilters[dest] = m
	}
	m[peer] = v
}

// membersFingerprint hashes a member list (FNV-1a over the IDs, which
// arrive in deterministic order) so pushGroupConfigs can tell whether a
// group's membership moved since its last push.
func membersFingerprint(members []model.SwitchID) uint64 {
	h := uint64(1469598103934665603)
	for _, m := range members {
		h ^= uint64(m)
		h *= 1099511628211
	}
	return h
}

// configFingerprint hashes everything a destination learns from its
// GroupConfig except the grouping version: a regroup round that leaves
// a switch's view intact (same group, members, designated, wheel
// neighbors, timing) need not re-send it just because the global
// version counter moved.
func configFingerprint(m *openflow.GroupConfig) uint64 {
	h := uint64(1469598103934665603)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(m.Group))
	mix(uint64(m.Designated))
	mix(uint64(m.RingPrev))
	mix(uint64(m.RingNext))
	mix(uint64(m.SyncInterval))
	mix(uint64(m.KeepAliveInterval))
	mix(uint64(len(m.Members)))
	for _, id := range m.Members {
		mix(uint64(id))
	}
	mix(uint64(len(m.Backups)))
	for _, id := range m.Backups {
		mix(uint64(id))
	}
	return h
}

// chooseDesignated picks the designated switch for a group. The paper
// allows any principle (shortest distance, response time); the
// deterministic choice here is the live member with the smallest
// management MAC.
func (c *Controller) chooseDesignated(members []model.SwitchID) model.SwitchID {
	wheel := failover.BuildWheel(members)
	for _, m := range wheel {
		if !c.dead[m] {
			return m
		}
	}
	return wheel[0]
}
