package controller

import (
	"reflect"
	"testing"

	"lazyctrl/internal/failover"
	"lazyctrl/internal/grouping"
	"lazyctrl/internal/model"
	"lazyctrl/internal/openflow"
)

// lazyGrouped builds a lazy controller with an initial grouping and a
// warm C-LIB (4 hosts per switch at L-FIB version 1).
func lazyGrouped(t *testing.T) (*Controller, *recordingEnv) {
	t.Helper()
	c, env := newDirectController(t, ModeLazy, 4)
	m := grouping.NewIntensity()
	m.Add(1, 2, 100)
	m.Add(3, 4, 100)
	m.Add(1, 3, 1)
	if err := c.InitialGrouping(m); err != nil {
		t.Fatal(err)
	}
	for sw := model.SwitchID(1); sw <= 16; sw++ {
		var entries []openflow.LFIBEntry
		for j := 0; j < 4; j++ {
			h := model.HostID(uint32(sw)*100 + uint32(j))
			entries = append(entries, openflow.LFIBEntry{MAC: model.HostMAC(h), IP: model.HostIP(h), VLAN: 1})
		}
		c.clib.ApplyLFIB(sw, c.grp.GroupOf(sw), &openflow.LFIBUpdate{Full: true, Entries: entries, Version: 1})
	}
	env.reset()
	return c, env
}

// TestPacketInBurstViaHandleMessage checks the PacketInBurst mailbox
// entry point fans out through ProcessBurst.
func TestPacketInBurstViaHandleMessage(t *testing.T) {
	c, _ := newDirectController(t, ModeLearning, 8)
	warmLearning(c)
	batch := stormBatch(64, 3)
	burst := &openflow.PacketInBurst{Switch: batch[0].Switch}
	for i := range batch {
		pi := batch[i]
		pi.Switch = burst.Switch
		burst.Items = append(burst.Items, openflow.BurstPacket{Reason: pi.Reason, Packet: pi.Packet})
	}
	before := c.Stats().PacketIns
	c.HandleMessage(burst.Switch, burst)
	if got := c.Stats().PacketIns - before; got != 64 {
		t.Errorf("burst of 64 counted %d PacketIns", got)
	}
}

// TestPushSkipsCurrentDestinations pins the per-destination version
// tracking: a push round in which nothing changed for anyone sends
// nothing at all.
func TestPushSkipsCurrentDestinations(t *testing.T) {
	c, env := lazyGrouped(t)
	// First post-warm round ships the preloads (configs are already
	// current from InitialGrouping).
	if sent := c.pushGroupConfigs(false); sent == 0 {
		t.Fatal("warm push sent nothing despite fresh C-LIB state")
	}
	env.reset()
	// Nothing moved since: the next round must ship nothing.
	skippedBefore := c.Stats().PushesSkipped
	if sent := c.pushGroupConfigs(false); sent != 0 {
		t.Errorf("idle push round sent to %d destinations, want 0", sent)
	}
	if len(env.sendCounts()) != 0 {
		t.Errorf("idle push round still sent messages: %v", env.sendCounts())
	}
	if c.Stats().PushesSkipped == skippedBefore {
		t.Error("skipped destinations not counted")
	}
}

// TestPreloadDeltaAndNack drives the controller's C-LIB delta path: a
// single-host change ships as a GFIBDelta to already-preloaded
// destinations, and a NACK gets exactly the named peers back in full.
func TestPreloadDeltaAndNack(t *testing.T) {
	c, env := lazyGrouped(t)
	c.pushGroupConfigs(false) // full preloads, seeds per-destination versions
	env.reset()

	// One host arrives on switch 1; the designated switch's next full
	// report carries the grown snapshot at L-FIB version 2 (only full
	// snapshots advance the C-LIB's preload version stamp).
	var entries []openflow.LFIBEntry
	for j := 0; j < 4; j++ {
		hh := model.HostID(100 + uint32(j))
		entries = append(entries, openflow.LFIBEntry{MAC: model.HostMAC(hh), IP: model.HostIP(hh), VLAN: 1})
	}
	h := model.HostID(199)
	entries = append(entries, openflow.LFIBEntry{MAC: model.HostMAC(h), IP: model.HostIP(h), VLAN: 1})
	c.clib.ApplyLFIB(1, c.grp.GroupOf(1), &openflow.LFIBUpdate{Full: true, Entries: entries, Version: 2})
	if sent := c.pushGroupConfigs(false); sent == 0 {
		t.Fatal("push after C-LIB change sent nothing")
	}
	if c.Stats().PreloadDeltas == 0 {
		t.Error("changed filter did not ship as a delta")
	}
	// Only switch 1's group peers hear about it.
	gid := c.grp.GroupOf(1)
	env.mu.Lock()
	for to, msgs := range env.sends {
		if c.grp.GroupOf(to) != gid {
			t.Errorf("destination %v outside group %v received %d messages", to, gid, len(msgs))
			continue
		}
		d, ok := msgs[0].(*openflow.GFIBDelta)
		if !ok {
			t.Errorf("destination %v got %T, want *openflow.GFIBDelta", to, msgs[0])
			continue
		}
		if len(d.Deltas) != 1 || d.Deltas[0].Switch != 1 || d.Deltas[0].BaseVersion != 1 || d.Deltas[0].TargetVersion != 2 {
			t.Errorf("delta to %v = %+v", to, d.Deltas[0])
		}
		if len(d.Deltas[0].Words) == 0 {
			t.Errorf("delta to %v carries no words", to)
		}
	}
	env.mu.Unlock()

	// A member that lost its state NACKs; it gets the full filter.
	env.reset()
	var member model.SwitchID
	for _, m := range c.grp.Members(gid) {
		if m != 1 {
			member = m
			break
		}
	}
	c.handleGFIBNack(&openflow.GFIBNack{Group: gid, Origin: member, Peers: []model.SwitchID{1}})
	env.mu.Lock()
	defer env.mu.Unlock()
	msgs := env.sends[member]
	if len(msgs) != 1 {
		t.Fatalf("NACK answered with %d messages, want 1", len(msgs))
	}
	u, ok := msgs[0].(*openflow.GFIBUpdate)
	if !ok || len(u.Filters) != 1 || u.Filters[0].Switch != 1 || u.Filters[0].Version != 2 {
		t.Fatalf("NACK resync = %+v, want full filter for switch 1 at version 2", msgs[0])
	}
	if c.Stats().PreloadNacks == 0 {
		t.Error("resync not counted")
	}
}

// TestMarkRecoveredPushesOnlyRecovered asserts recovery re-pushes tell
// only the rebooted switch, not its whole group.
func TestMarkRecoveredPushesOnlyRecovered(t *testing.T) {
	c, env := lazyGrouped(t)
	c.pushGroupConfigs(false)
	c.actOnDiagnosis(2, failover.DiagSwitch)
	env.reset()
	c.MarkRecovered(2)
	counts := env.sendCounts()
	if len(counts) != 1 || counts[2] != 1 {
		t.Fatalf("recovery push went to %v, want exactly one message to switch 2", counts)
	}
	env.mu.Lock()
	defer env.mu.Unlock()
	b, ok := env.sends[2][0].(*openflow.Batch)
	if !ok {
		t.Fatalf("recovery push = %T, want a Batch (config + preloads)", env.sends[2][0])
	}
	if _, ok := b.Msgs[0].(*openflow.GroupConfig); !ok {
		t.Error("recovery batch does not lead with the GroupConfig")
	}
}

// TestBurstMatchesSequentialWithARPMemo proves the per-burst ARP-target
// memo changes nothing observable: the same lazy-mode storm through the
// sequential path and through ProcessBurst yields identical stats,
// sends, and pending state.
func TestBurstMatchesSequentialWithARPMemo(t *testing.T) {
	batch := stormBatch(1024, 23)
	warm := func() (*Controller, *recordingEnv) {
		c, env := newDirectController(t, ModeLazy, 4)
		for h := model.HostID(1); h <= 256; h++ {
			c.CLIB().Update(model.HostMAC(h), model.HostIP(h), 1, model.SwitchID(uint32(h)%16+1), 1)
		}
		env.reset()
		return c, env
	}
	seqC, seqEnv := warm()
	for i := range batch {
		pi := batch[i]
		seqC.HandleMessage(pi.Switch, &pi)
	}
	burstC, burstEnv := warm()
	burstC.ProcessBurst(batch)

	if seqC.Stats() != burstC.Stats() {
		t.Errorf("stats differ:\nseq:   %+v\nburst: %+v", seqC.Stats(), burstC.Stats())
	}
	if !reflect.DeepEqual(seqEnv.sendCounts(), burstEnv.sendCounts()) {
		t.Error("send counts differ between sequential and burst paths")
	}
	if !reflect.DeepEqual(seqC.state.snapshotPending(), burstC.state.snapshotPending()) {
		t.Error("pending tables differ between sequential and burst paths")
	}
	if burstC.arpCacheOn || len(burstC.arpCache) != 0 {
		t.Error("ARP memo leaked past the burst")
	}
}
