package sim

import "time"

// maxElideRounds bounds how many rounds a single bulk event may cover,
// keeping credit loops bounded and re-materialization latency finite
// even for tasks that are quiet for the whole run.
const maxElideRounds = 4096

// Elider is a periodic task that can collapse runs of quiescent rounds
// into a single bulk event. It behaves like Every(interval, run) —
// same phase, same fire times — except that after each real run the
// task's quiet predicate is consulted: a return of n > 0 means "the
// next n rounds are provably no-ops whose aggregate effect is known in
// closed form", and the simulator schedules one event n+1 intervals
// out that first credits the n folded rounds analytically and then
// runs round n+1 for real. Wake re-materializes the timer early when
// state changes: rounds whose boundary has already passed are credited,
// and the next round runs as a real event.
//
// The credit callback observes CreditedThrough(): when credit(n) is
// invoked the elider has already advanced its round clock, so the n
// settled rounds fired at CreditedThrough() − (n−1)·interval, …,
// CreditedThrough().
type Elider struct {
	sim      *Simulator
	interval Time
	run      func()
	quiet    func() int
	credit   func(rounds int)

	// lastFire is the logical time of the last completed round
	// (creation time before the first round). Round k fires at
	// creation + k·interval regardless of folding, so folding never
	// shifts the task's phase.
	lastFire Time
	// creditedThrough is the last round boundary settled analytically
	// (never advanced by real runs): liveness readers may treat
	// heartbeats as implicitly delivered up to this time, because
	// rounds are only ever credited while the quiet predicate held.
	creditedThrough Time
	// elided is the number of folded rounds covered by the pending
	// bulk event; 0 means the next fire is an ordinary real round.
	elided  int
	timer   Timer
	stopped bool
}

// EveryElidable schedules an elidable periodic task. run fires every
// interval starting one interval from now, exactly like Every, but
// whenever quiet() reports n > 0 after a real run, the next n rounds
// are folded into one bulk event that calls credit(n) and then run().
// quiet and credit may be nil (the task then never folds).
func (s *Simulator) EveryElidable(interval time.Duration, run func(), quiet func() int, credit func(rounds int)) *Elider {
	if interval <= 0 {
		panic("sim: EveryElidable requires a positive interval")
	}
	e := &Elider{
		sim:      s,
		interval: Time(interval),
		run:      run,
		quiet:    quiet,
		credit:   credit,
		lastFire: s.now,
	}
	e.timer = s.At(e.lastFire+e.interval, e.fire)
	return e
}

func (e *Elider) fire() {
	if e.stopped {
		return
	}
	if n := e.elided; n > 0 {
		e.elided = 0
		e.lastFire += Time(n) * e.interval
		e.creditedThrough = e.lastFire
		e.credit(n)
	}
	e.lastFire += e.interval
	e.run()
	if e.stopped {
		return // run may have stopped the task
	}
	n := 0
	if e.quiet != nil && e.credit != nil {
		n = e.quiet()
	}
	if n > maxElideRounds {
		n = maxElideRounds
	}
	if n > 0 {
		e.elided = n
		e.timer = e.sim.At(e.lastFire+Time(n+1)*e.interval, e.fire)
	} else {
		e.timer = e.sim.At(e.lastFire+e.interval, e.fire)
	}
}

// settle credits the folded rounds whose boundaries have passed and
// clears the fold. It returns whether a fold was pending.
func (e *Elider) settle() bool {
	n := e.elided
	if n == 0 {
		return false
	}
	e.elided = 0
	done := int((e.sim.now - e.lastFire) / e.interval)
	if done > n {
		done = n
	}
	if done > 0 {
		e.lastFire += Time(done) * e.interval
		e.creditedThrough = e.lastFire
		e.credit(done)
	}
	return true
}

// Wake re-materializes an elided task: folded rounds already in the
// past are credited, and the next round is scheduled as a real event
// one interval after the last settled round (phase preserved). After a
// wake at least one real round runs before the task can fold again —
// the quiet predicate is only consulted after real runs, so it always
// sees post-change state. Waking a task that is not elided is a no-op,
// making wake hooks safe on hot paths.
func (e *Elider) Wake() {
	if e == nil || e.stopped || e.elided == 0 {
		return
	}
	e.settle()
	e.timer.Stop()
	e.timer = e.sim.At(e.lastFire+e.interval, e.fire)
}

// Stop cancels the task. Folded rounds whose boundaries have passed
// are settled first, so analytic aggregates stay exact up to the stop
// time; callers tearing down task state should therefore Stop (or
// Wake) eliders before resetting the state the credit callback writes.
func (e *Elider) Stop() {
	if e == nil || e.stopped {
		return
	}
	e.settle()
	e.stopped = true
	e.timer.Stop()
}

// CreditedThrough returns the round boundary through which the task's
// per-round effects — e.g. heartbeats reaching their destinations —
// are analytically accounted (zero if the task never folded). While a
// fold is pending, boundaries already in the past count even though
// the settling bulk event hasn't run yet: those rounds WILL be
// credited verbatim at the next settle, because any state change that
// could invalidate them (a fault, a report) wakes the task and settles
// exactly the pre-change rounds first. Real (unfolded) rounds never
// advance this boundary.
func (e *Elider) CreditedThrough() Time {
	if e.elided > 0 {
		done := int((e.sim.now - e.lastFire) / e.interval)
		if done > e.elided {
			done = e.elided
		}
		if done > 0 {
			return e.lastFire + Time(done)*e.interval
		}
	}
	return e.creditedThrough
}

// Elided reports whether the task currently has rounds folded into a
// pending bulk event.
func (e *Elider) Elided() bool { return e != nil && e.elided > 0 }
