package sim

import (
	"testing"
	"time"
)

func TestAfterOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.After(3*time.Millisecond, func() { got = append(got, 3) })
	s.After(1*time.Millisecond, func() { got = append(got, 1) })
	s.After(2*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", got, want)
		}
	}
	if s.Now() != Time(3*time.Millisecond) {
		t.Errorf("Now() = %v, want 3ms", s.Now())
	}
}

func TestFIFOAmongEqualTimestamps(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(Time(5*time.Millisecond), func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-timestamp order = %v, want ascending", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var fired []string
	s.After(time.Millisecond, func() {
		fired = append(fired, "outer")
		s.After(time.Millisecond, func() {
			fired = append(fired, "inner")
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != "outer" || fired[1] != "inner" {
		t.Fatalf("fired = %v", fired)
	}
	if s.Now() != Time(2*time.Millisecond) {
		t.Errorf("Now() = %v, want 2ms", s.Now())
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	s := New(1)
	var at Time
	s.After(10*time.Millisecond, func() {
		s.At(Time(time.Millisecond), func() { at = s.Now() })
	})
	s.Run()
	if at != Time(10*time.Millisecond) {
		t.Errorf("past event ran at %v, want 10ms (clamped)", at)
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	ran := false
	tm := s.After(time.Millisecond, func() { ran = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false, want true for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	s.Run()
	if ran {
		t.Error("canceled timer fired")
	}
	if s.Pending() != 0 {
		t.Errorf("Pending() = %d, want 0", s.Pending())
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := New(1)
	tm := s.After(time.Millisecond, func() {})
	s.Run()
	if tm.Stop() {
		t.Error("Stop() after fire = true, want false")
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var count int
	for i := 1; i <= 5; i++ {
		s.After(time.Duration(i)*time.Second, func() { count++ })
	}
	s.RunUntil(Time(3 * time.Second))
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
	if s.Now() != Time(3*time.Second) {
		t.Errorf("Now() = %v, want 3s", s.Now())
	}
	s.RunUntil(Time(10 * time.Second))
	if count != 5 {
		t.Errorf("count = %d after full run, want 5", count)
	}
	if s.Now() != Time(10*time.Second) {
		t.Errorf("Now() = %v, want 10s (advanced to bound)", s.Now())
	}
}

func TestRunFor(t *testing.T) {
	s := New(1)
	var count int
	s.Every(time.Second, func() { count++ })
	s.RunFor(10*time.Second + time.Millisecond)
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
}

func TestTickerStop(t *testing.T) {
	s := New(1)
	var count int
	var tk *Ticker
	tk = s.Every(time.Second, func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	s.RunFor(10 * time.Second)
	if count != 3 {
		t.Errorf("count = %d, want 3 (ticker stopped)", count)
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := New(1)
	var count int
	s.Every(time.Second, func() {
		count++
		if count == 2 {
			s.Stop()
		}
	})
	s.RunFor(time.Hour)
	if count != 2 {
		t.Errorf("count = %d, want 2 (Stop() honored)", count)
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Uint64() != b.Rand().Uint64() {
			t.Fatal("same seed produced different random streams")
		}
	}
	c := New(43)
	same := true
	for i := 0; i < 10; i++ {
		if a.Rand().Uint64() != c.Rand().Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestExecutedCount(t *testing.T) {
	s := New(1)
	for i := 0; i < 7; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	s.Run()
	if s.Executed() != 7 {
		t.Errorf("Executed() = %d, want 7", s.Executed())
	}
}

func TestNegativeAfterRunsImmediately(t *testing.T) {
	s := New(1)
	ran := false
	s.After(-time.Second, func() { ran = true })
	s.Run()
	if !ran {
		t.Error("negative-delay event did not run")
	}
	if s.Now() != 0 {
		t.Errorf("Now() = %v, want 0", s.Now())
	}
}

func TestManyEventsHeapStress(t *testing.T) {
	s := New(7)
	const n = 10000
	var last Time = -1
	for i := 0; i < n; i++ {
		d := time.Duration(s.Rand().IntN(1000)) * time.Microsecond
		s.After(d, func() {
			if s.Now() < last {
				t.Fatalf("time went backwards: %v after %v", s.Now(), last)
			}
			last = s.Now()
		})
	}
	s.Run()
	if s.Executed() != n {
		t.Errorf("Executed() = %d, want %d", s.Executed(), n)
	}
}
