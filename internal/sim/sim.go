// Package sim provides a deterministic discrete-event simulator with a
// virtual clock. All LazyCtrl experiments run on top of it so that a
// 24-hour trace replays in seconds and every run is reproducible from a
// seed.
//
// The simulator is single-threaded: events execute one at a time in
// timestamp order (ties broken by scheduling order). Components built on
// the simulator are therefore written as plain state machines without
// internal locking.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand/v2"
	"time"
)

// Time is a point in virtual time, measured as a duration since the start
// of the simulation.
type Time time.Duration

// String formats the virtual time like a duration.
func (t Time) String() string { return time.Duration(t).String() }

// Duration converts the virtual time to a time.Duration since simulation
// start.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports the virtual time in seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// event is a scheduled callback. Events are pooled: once executed or
// collected after cancellation they return to the simulator's free list
// and are recycled by later At/After calls, so steady-state scheduling
// does not allocate. The generation counter distinguishes a recycled
// event from the one a Timer was issued for.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among equal timestamps
	fn  func()

	canceled bool
	index    int    // heap index, maintained by eventHeap
	gen      uint32 // incremented on every recycle
}

// eventHeap is a min-heap of events ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		panic(fmt.Sprintf("sim: eventHeap.Push got %T, want *event", x))
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Simulator is a discrete-event simulation kernel. The zero value is not
// usable; construct with New.
type Simulator struct {
	now     Time
	seq     uint64
	queue   eventHeap
	rng     *rand.Rand
	stopped bool
	free    []*event // recycled events (see event)

	// Stats.
	executed uint64
}

// alloc takes an event from the free list, or a fresh one.
func (s *Simulator) alloc() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	return &event{}
}

// release recycles an executed or collected event. The generation bump
// invalidates any Timer still pointing at it; dropping fn releases the
// captured closure.
func (s *Simulator) release(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.canceled = false
	ev.index = -1
	s.free = append(s.free, ev)
}

// New returns a simulator whose random source is seeded deterministically
// from seed.
func New(seed uint64) *Simulator {
	return &Simulator{
		rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
	}
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulator's deterministic random source. It must only
// be used from event callbacks (the simulator is single-threaded).
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Executed reports how many events have run so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending reports how many events are scheduled and not yet executed or
// canceled.
func (s *Simulator) Pending() int {
	n := 0
	for _, ev := range s.queue {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// Timer is a handle to a scheduled event that can be canceled. The zero
// value is inert. Timers are values: holding one does not keep the
// underlying event alive, and a Timer whose event already fired (and was
// recycled for a later schedule) is detected via the generation counter.
type Timer struct {
	ev  *event
	gen uint32
}

// Stop cancels the timer. It reports whether the timer was still pending
// (false if it already fired or was already stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.gen != t.gen || t.ev.canceled || t.ev.index == -1 {
		return false
	}
	t.ev.canceled = true
	return true
}

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past (at < Now) runs the event at the current time, preserving order.
func (s *Simulator) At(at Time, fn func()) Timer {
	if at < s.now {
		at = s.now
	}
	ev := s.alloc()
	ev.at = at
	ev.seq = s.seq
	ev.fn = fn
	s.seq++
	heap.Push(&s.queue, ev)
	return Timer{ev: ev, gen: ev.gen}
}

// After schedules fn to run d after the current virtual time.
func (s *Simulator) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+Time(d), fn)
}

// Every schedules fn to run every interval, starting one interval from
// now, until the returned Ticker is stopped.
func (s *Simulator) Every(interval time.Duration, fn func()) *Ticker {
	if interval <= 0 {
		panic("sim: Every requires a positive interval")
	}
	tk := &Ticker{sim: s, interval: interval, fn: fn}
	tk.schedule()
	return tk
}

// Ticker repeatedly fires a callback at a fixed virtual-time interval.
type Ticker struct {
	sim      *Simulator
	interval time.Duration
	fn       func()
	timer    Timer
	stopped  bool
}

func (tk *Ticker) schedule() {
	tk.timer = tk.sim.After(tk.interval, func() {
		if tk.stopped {
			return
		}
		tk.fn()
		if !tk.stopped {
			tk.schedule()
		}
	})
}

// Stop cancels future ticks.
func (tk *Ticker) Stop() {
	tk.stopped = true
	tk.timer.Stop()
}

// Stop halts Run/RunUntil after the current event completes.
func (s *Simulator) Stop() { s.stopped = true }

// step executes the next pending event, if any, and reports whether one ran.
func (s *Simulator) step(limit Time, bounded bool) bool {
	for len(s.queue) > 0 {
		next := s.queue[0]
		if next.canceled {
			heap.Pop(&s.queue)
			s.release(next)
			continue
		}
		if bounded && next.at > limit {
			return false
		}
		heap.Pop(&s.queue)
		s.now = next.at
		s.executed++
		fn := next.fn
		// Recycle before running so fn's own scheduling can reuse the
		// slot; the generation bump already invalidated its Timers.
		s.release(next)
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Stop is called.
func (s *Simulator) Run() {
	s.stopped = false
	for !s.stopped && s.step(0, false) {
	}
}

// RunUntil executes events with timestamps ≤ until, then advances the
// clock to until. It stops early if Stop is called.
func (s *Simulator) RunUntil(until Time) {
	s.stopped = false
	for !s.stopped && s.step(until, true) {
	}
	if !s.stopped && s.now < until {
		s.now = until
	}
}

// RunFor executes events for d of virtual time from the current instant.
func (s *Simulator) RunFor(d time.Duration) {
	s.RunUntil(s.now + Time(d))
}
