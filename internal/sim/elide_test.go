package sim

import (
	"testing"
	"time"
)

// TestElideFoldsQuietRounds pins the core contract: a task that is
// always quiet fires its rounds at exactly the Every phase, every
// round is either run or credited exactly once, and the executed event
// count collapses by the fold factor.
func TestElideFoldsQuietRounds(t *testing.T) {
	s := New(1)
	const interval = time.Second
	var ran, credited []Time
	var el *Elider
	el = s.EveryElidable(interval,
		func() { ran = append(ran, s.Now()) },
		func() int { return 9 },
		func(rounds int) {
			for i := rounds - 1; i >= 0; i-- {
				credited = append(credited, el.CreditedThrough()-Time(i)*Time(interval))
			}
		})
	s.RunUntil(Time(100 * time.Second))
	el.Stop() // settle the tail fold at the horizon, as harnesses do

	// Rounds 1..100 at t=1s..100s: each accounted exactly once.
	seen := make(map[Time]int)
	for _, at := range ran {
		seen[at] += 1
	}
	for _, at := range credited {
		seen[at] += 1
	}
	for k := 1; k <= 100; k++ {
		at := Time(k) * Time(interval)
		if seen[at] != 1 {
			t.Fatalf("round at %v accounted %d times", at, seen[at])
		}
	}
	if len(seen) != 100 {
		t.Fatalf("accounted %d distinct rounds, want 100", len(seen))
	}
	// 100 rounds at fold 9 → 10 real fires (1 real + 9 credited each).
	if len(ran) != 10 {
		t.Fatalf("ran %d real rounds, want 10", len(ran))
	}
	if got := s.Executed(); got != 10 {
		t.Fatalf("executed %d events, want 10", got)
	}
}

// TestElideWakeRematerializes pins wake semantics: completed folded
// rounds are credited at their true boundaries, the next round runs as
// a real event one interval after the last settled round, and at least
// one real round runs before the task folds again.
func TestElideWakeRematerializes(t *testing.T) {
	s := New(1)
	const interval = time.Second
	var ran []Time
	creditedRounds := 0
	quietRounds := 1000
	var el *Elider
	el = s.EveryElidable(interval,
		func() { ran = append(ran, s.Now()) },
		func() int { return quietRounds },
		func(rounds int) { creditedRounds += rounds })

	// First round runs real at 1s, then folds 1000 rounds.
	s.RunUntil(Time(1 * time.Second))
	if len(ran) != 1 || el.Elided() != true {
		t.Fatalf("after first round: ran=%v elided=%v", ran, el.Elided())
	}
	// Wake mid-fold at 5.5s: rounds at 2,3,4,5s are settled.
	s.At(Time(5500*time.Millisecond), func() { el.Wake() })
	s.RunUntil(Time(5500 * time.Millisecond))
	if creditedRounds != 4 {
		t.Fatalf("credited %d rounds at wake, want 4", creditedRounds)
	}
	if got := el.CreditedThrough(); got != Time(5*time.Second) {
		t.Fatalf("CreditedThrough %v, want 5s", got)
	}
	if el.Elided() {
		t.Fatal("still elided after wake")
	}
	// The next round is real at 6s — phase preserved.
	s.RunUntil(Time(6 * time.Second))
	if len(ran) != 2 || ran[1] != Time(6*time.Second) {
		t.Fatalf("post-wake real round at %v, want 6s", ran)
	}
	// A wake on a non-elided task is a no-op.
	before := s.Pending()
	el.Wake()
	if s.Pending() != before {
		t.Fatal("wake on non-elided task rescheduled")
	}
}

// TestElideStopSettles pins that Stop credits passed boundaries, so
// aggregate accounting stays exact when timers are torn down mid-fold.
func TestElideStopSettles(t *testing.T) {
	s := New(1)
	credited := 0
	el := s.EveryElidable(time.Second,
		func() {},
		func() int { return 100 },
		func(rounds int) { credited += rounds })
	s.RunUntil(Time(1 * time.Second)) // real round, then fold 100
	s.At(Time(7300*time.Millisecond), func() { el.Stop() })
	s.RunUntil(Time(10 * time.Second))
	if credited != 6 {
		t.Fatalf("stop settled %d rounds, want 6 (boundaries 2s..7s)", credited)
	}
	if got := len(simPendingReal(s)); got != 0 {
		t.Fatalf("stopped task left %d live events", got)
	}
}

func simPendingReal(s *Simulator) []*event {
	var out []*event
	for _, ev := range s.queue {
		if !ev.canceled {
			out = append(out, ev)
		}
	}
	return out
}

// TestElideCapBounds pins the fold-span cap: an unbounded quiet answer
// is clamped, so credit batches stay bounded.
func TestElideCapBounds(t *testing.T) {
	s := New(1)
	maxBatch := 0
	s.EveryElidable(time.Second,
		func() {},
		func() int { return 1 << 30 },
		func(rounds int) {
			if rounds > maxBatch {
				maxBatch = rounds
			}
		})
	s.RunUntil(Time(3 * maxElideRounds * int64(time.Second)))
	if maxBatch != maxElideRounds {
		t.Fatalf("largest credit batch %d, want cap %d", maxBatch, maxElideRounds)
	}
}

// TestElideNeverQuietMatchesEvery pins that a task whose quiet answer
// is always zero is indistinguishable from Every.
func TestElideNeverQuietMatchesEvery(t *testing.T) {
	a, b := New(7), New(7)
	var fromEvery, fromElide []Time
	a.Every(3*time.Second, func() { fromEvery = append(fromEvery, a.Now()) })
	b.EveryElidable(3*time.Second,
		func() { fromElide = append(fromElide, b.Now()) },
		func() int { return 0 },
		func(int) { t.Fatal("credited with quiet=0") })
	a.RunUntil(Time(time.Minute))
	b.RunUntil(Time(time.Minute))
	if len(fromEvery) != len(fromElide) {
		t.Fatalf("fired %d vs Every's %d", len(fromElide), len(fromEvery))
	}
	for i := range fromEvery {
		if fromEvery[i] != fromElide[i] {
			t.Fatalf("round %d at %v, Every at %v", i, fromElide[i], fromEvery[i])
		}
	}
}
