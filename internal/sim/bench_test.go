package sim

import (
	"testing"
	"time"
)

// BenchmarkEventChurn measures steady-state schedule/fire cost: each
// executed event schedules its successor, which is the dominant pattern
// of the emulation harness. With the event free-list this loop should
// not grow the heap per event.
func BenchmarkEventChurn(b *testing.B) {
	b.ReportAllocs()
	s := New(1)
	remaining := b.N
	var tick func()
	tick = func() {
		if remaining--; remaining > 0 {
			s.After(time.Millisecond, tick)
		}
	}
	s.After(time.Millisecond, tick)
	b.ResetTimer()
	s.Run()
}

// BenchmarkTimerStopChurn measures the schedule-then-cancel pattern
// (rule idle timeouts, ARP expiry): canceled events must also recycle.
func BenchmarkTimerStopChurn(b *testing.B) {
	b.ReportAllocs()
	s := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := s.After(time.Second, func() {})
		t.Stop()
		s.RunFor(2 * time.Second)
	}
}
