package netsim

import (
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"lazyctrl/internal/model"
	"lazyctrl/internal/openflow"
)

// LiveNetwork runs nodes as goroutines with mailbox serialization, in
// real time. Control messages (openflow.Message) are round-tripped
// through the binary codec on every hop, exercising the wire protocol
// exactly as the prototype's TCP control channels would. It is used by
// integration tests; experiments use the deterministic Network.
type LiveNetwork struct {
	lat Latencies

	mu        sync.Mutex
	nodes     map[model.SwitchID]*liveNode
	downLinks map[model.SwitchPair]bool
	downNodes map[model.SwitchID]bool
	sameGroup func(a, b model.SwitchID) bool
	start     time.Time
	closed    bool
	wg        sync.WaitGroup

	// CodecErrors counts messages that failed the encode/decode round
	// trip (always 0 unless the codec is broken).
	CodecErrors uint64
	// wireBytes accumulates the encoded size of every control message
	// crossing the transport — the live counterpart of the bytes-on-
	// wire metric the dissemination benchmarks report.
	wireBytes uint64
}

// WireBytes reports the total encoded bytes of control messages sent
// over the live transport so far.
func (n *LiveNetwork) WireBytes() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.wireBytes
}

type liveEnvelope struct {
	from model.SwitchID
	msg  Message
}

type liveNode struct {
	node Node
	in   chan liveEnvelope
	quit chan struct{}
}

// NewLive creates a live underlay.
func NewLive(lat Latencies) *LiveNetwork {
	return &LiveNetwork{
		lat:       lat,
		nodes:     make(map[model.SwitchID]*liveNode),
		downLinks: make(map[model.SwitchPair]bool),
		downNodes: make(map[model.SwitchID]bool),
		start:     time.Now(), //lazyvet:allow determinism live transport epoch: wall-clock is the live underlay's whole point
	}
}

// SetSameGroup installs the peer-link predicate.
func (n *LiveNetwork) SetSameGroup(fn func(a, b model.SwitchID) bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sameGroup = fn
}

// Attach registers a node and starts its mailbox goroutine.
func (n *LiveNetwork) Attach(node Node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	id := node.NodeID()
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %v", id))
	}
	ln := &liveNode{
		node: node,
		in:   make(chan liveEnvelope, 1024),
		quit: make(chan struct{}),
	}
	n.nodes[id] = ln
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			select {
			case env := <-ln.in:
				ln.node.HandleMessage(env.from, env.msg)
			case <-ln.quit:
				return
			}
		}
	}()
}

// Close stops all mailbox goroutines and waits for them to exit.
func (n *LiveNetwork) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	for _, ln := range n.nodes {
		close(ln.quit)
	}
	n.mu.Unlock()
	n.wg.Wait()
}

// FailLink takes a link down.
func (n *LiveNetwork) FailLink(a, b model.SwitchID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.downLinks[model.MakeSwitchPair(a, b)] = true
}

// HealLink restores a link.
func (n *LiveNetwork) HealLink(a, b model.SwitchID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.downLinks, model.MakeSwitchPair(a, b))
}

// roundTripCodec pushes openflow messages through the binary codec,
// returning the reconstructed message. Non-openflow messages (data
// packets) pass through untouched.
func (n *LiveNetwork) roundTripCodec(msg Message) Message {
	ofMsg, ok := msg.(openflow.Message)
	if !ok {
		return msg
	}
	data, err := openflow.Encode(ofMsg, 0)
	if err != nil {
		n.mu.Lock()
		n.CodecErrors++
		n.mu.Unlock()
		return msg
	}
	n.mu.Lock()
	n.wireBytes += uint64(len(data))
	n.mu.Unlock()
	decoded, _, err := openflow.Decode(data)
	if err != nil {
		n.mu.Lock()
		n.CodecErrors++
		n.mu.Unlock()
		return msg
	}
	return decoded
}

func (n *LiveNetwork) send(from, to model.SwitchID, msg Message) {
	n.mu.Lock()
	if n.closed || n.downNodes[from] || n.downNodes[to] || n.downLinks[model.MakeSwitchPair(from, to)] {
		n.mu.Unlock()
		return
	}
	dst, ok := n.nodes[to]
	kind := classify(from, to, n.sameGroup)
	n.mu.Unlock()
	if !ok {
		return
	}
	msg = n.roundTripCodec(msg)
	delay := n.lat.delay(kind, liveRand())
	//lazyvet:allow determinism live delivery delay is real elapsed time by design
	time.AfterFunc(delay, func() {
		select {
		case dst.in <- liveEnvelope{from: from, msg: msg}:
		case <-dst.quit:
		}
	})
}

// Env returns the live environment for a node address. Timer callbacks
// are serialized through the node's mailbox, preserving the
// single-threaded handler invariant.
func (n *LiveNetwork) Env(id model.SwitchID) Env {
	return &liveEnv{net: n, id: id}
}

// timerMsg wraps a timer callback for mailbox delivery.
type timerMsg struct{ fn func() }

type liveEnv struct {
	net *LiveNetwork
	id  model.SwitchID
}

func (e *liveEnv) Now() time.Duration { return time.Since(e.net.start) } //lazyvet:allow determinism the live Env.Now IS the wall clock; deterministic runs use the sim Env instead

func (e *liveEnv) deliverTimer(fn func()) {
	e.net.mu.Lock()
	ln, ok := e.net.nodes[e.id]
	closed := e.net.closed
	e.net.mu.Unlock()
	if !ok || closed {
		return
	}
	select {
	case ln.in <- liveEnvelope{from: e.id, msg: timerMsg{fn: fn}}:
	case <-ln.quit:
	}
}

func (e *liveEnv) After(d time.Duration, fn func()) func() {
	t := time.AfterFunc(d, func() { e.deliverTimer(fn) }) //lazyvet:allow determinism live Env timers fire on real elapsed time by design
	return func() { t.Stop() }
}

func (e *liveEnv) Every(d time.Duration, fn func()) func() {
	stop := make(chan struct{})
	var once sync.Once
	go func() {
		ticker := time.NewTicker(d) //lazyvet:allow determinism live Env tickers fire on real elapsed time by design
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				e.deliverTimer(fn)
			case <-stop:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(stop) }) }
}

func (e *liveEnv) Send(to model.SwitchID, msg Message) { e.net.send(e.id, to, msg) }

func (e *liveEnv) Rand() *rand.Rand { return liveRand() }

var (
	liveRandMu  sync.Mutex
	liveRandSrc = rand.New(rand.NewPCG(0x1e55, 0xcafe))
)

// liveRand returns a shared source; live mode does not promise
// determinism, only safety.
func liveRand() *rand.Rand {
	liveRandMu.Lock()
	defer liveRandMu.Unlock()
	// rand.Rand is not safe for concurrent use; derive a fresh
	// per-call source from the shared one.
	return rand.New(rand.NewPCG(liveRandSrc.Uint64(), liveRandSrc.Uint64()))
}

// HandleTimer must be called by nodes that receive timerMsg envelopes.
// Nodes embed NodeBase to get this for free.
func HandleTimer(msg Message) bool {
	if tm, ok := msg.(timerMsg); ok {
		tm.fn()
		return true
	}
	return false
}
