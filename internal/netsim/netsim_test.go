package netsim

import (
	"sync"
	"testing"
	"time"

	"lazyctrl/internal/bloom"
	"lazyctrl/internal/model"
	"lazyctrl/internal/openflow"
	"lazyctrl/internal/sim"
)

// recorder is a test node capturing deliveries.
type recorder struct {
	id   model.SwitchID
	mu   sync.Mutex
	got  []Message
	from []model.SwitchID
}

func (r *recorder) NodeID() model.SwitchID { return r.id }

func (r *recorder) HandleMessage(from model.SwitchID, msg Message) {
	if HandleTimer(msg) {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.got = append(r.got, msg)
	r.from = append(r.from, from)
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.got)
}

func TestSimDelivery(t *testing.T) {
	s := sim.New(1)
	n := New(s, DefaultLatencies())
	a := &recorder{id: 1}
	b := &recorder{id: 2}
	n.Attach(a)
	n.Attach(b)

	n.Env(1).Send(2, "hello")
	s.Run()
	if b.count() != 1 {
		t.Fatalf("b received %d messages, want 1", b.count())
	}
	if b.from[0] != 1 {
		t.Errorf("from = %v, want 1", b.from[0])
	}
	if n.Delivered != 1 || n.Drops.Total() != 0 {
		t.Errorf("Delivered=%d Drops=%d", n.Delivered, n.Drops.Total())
	}
	// Latency applied: clock advanced by ≥ Data latency.
	if s.Now().Duration() < 350*time.Microsecond {
		t.Errorf("clock = %v, want ≥ 350µs", s.Now())
	}
}

func TestSimLinkFailure(t *testing.T) {
	s := sim.New(1)
	n := New(s, DefaultLatencies())
	a := &recorder{id: 1}
	b := &recorder{id: 2}
	n.Attach(a)
	n.Attach(b)
	n.FailLink(1, 2)
	n.Env(1).Send(2, "lost")
	s.Run()
	if b.count() != 0 {
		t.Fatal("message delivered over failed link")
	}
	if n.Drops.DownAtSend != 1 {
		t.Errorf("Drops.DownAtSend = %d, want 1", n.Drops.DownAtSend)
	}
	n.HealLink(1, 2)
	n.Env(1).Send(2, "ok")
	s.Run()
	if b.count() != 1 {
		t.Fatal("message not delivered after heal")
	}
}

func TestSimNodeFailure(t *testing.T) {
	s := sim.New(1)
	n := New(s, DefaultLatencies())
	a := &recorder{id: 1}
	b := &recorder{id: 2}
	n.Attach(a)
	n.Attach(b)
	n.FailNode(2)
	if !n.NodeDown(2) {
		t.Error("NodeDown(2) = false")
	}
	n.Env(1).Send(2, "lost")
	s.Run()
	if b.count() != 0 {
		t.Fatal("failed node received message")
	}
	n.HealNode(2)
	n.Env(1).Send(2, "ok")
	s.Run()
	if b.count() != 1 {
		t.Fatal("healed node did not receive")
	}
}

func TestSimFailureAtDeliveryTime(t *testing.T) {
	s := sim.New(1)
	n := New(s, DefaultLatencies())
	a := &recorder{id: 1}
	b := &recorder{id: 2}
	n.Attach(a)
	n.Attach(b)
	// Send, then fail the node before the in-flight delivery.
	n.Env(1).Send(2, "in-flight")
	n.FailNode(2)
	s.Run()
	if b.count() != 0 {
		t.Error("in-flight message delivered to node that failed before arrival")
	}
	if n.Drops.DownAtDelivery != 1 {
		t.Errorf("Drops.DownAtDelivery = %d, want 1", n.Drops.DownAtDelivery)
	}
}

func TestFaultRuleLoss(t *testing.T) {
	s := sim.New(1)
	n := New(s, DefaultLatencies())
	a := &recorder{id: 1}
	b := &recorder{id: 2}
	n.Attach(a)
	n.Attach(b)

	remove := n.AddFault(FaultRule{A: 1, B: 2, Loss: 1.0})
	for i := 0; i < 5; i++ {
		n.Env(1).Send(2, i)
		n.Env(2).Send(1, i) // rules match both directions
	}
	s.Run()
	if b.count() != 0 || a.count() != 0 {
		t.Fatalf("deliveries = %d/%d under Loss=1.0, want 0/0", a.count(), b.count())
	}
	if n.Drops.InjectedLoss != 10 {
		t.Errorf("Drops.InjectedLoss = %d, want 10", n.Drops.InjectedLoss)
	}
	remove()
	n.Env(1).Send(2, "ok")
	s.Run()
	if b.count() != 1 {
		t.Fatal("message not delivered after rule removal")
	}
}

func TestFaultRuleWildcard(t *testing.T) {
	s := sim.New(1)
	n := New(s, DefaultLatencies())
	for _, id := range []model.SwitchID{1, 2, 3} {
		n.Attach(&recorder{id: id})
	}
	// Wildcard endpoint: every link touching switch 2 is lossy.
	n.AddFault(FaultRule{A: 2, B: model.NoSwitch, Loss: 1.0})
	n.Env(1).Send(2, "lost")
	n.Env(2).Send(3, "lost")
	n.Env(1).Send(3, "ok")
	s.Run()
	if n.Drops.InjectedLoss != 2 {
		t.Errorf("Drops.InjectedLoss = %d, want 2", n.Drops.InjectedLoss)
	}
	if n.Delivered != 1 {
		t.Errorf("Delivered = %d, want 1 (1→3 unaffected)", n.Delivered)
	}
}

func TestFaultRuleExtraDelay(t *testing.T) {
	lat := Latencies{Data: time.Millisecond}
	s := sim.New(1)
	n := New(s, lat)
	n.Attach(&recorder{id: 1})
	n.Attach(&recorder{id: 2})
	n.AddFault(FaultRule{A: 1, B: 2, ExtraDelay: 10 * time.Millisecond})
	n.Env(1).Send(2, "slow")
	s.Run()
	if got := s.Now().Duration(); got != 11*time.Millisecond {
		t.Errorf("delivery at %v, want 11ms (1ms base + 10ms injected)", got)
	}
}

func TestFaultRuleReorder(t *testing.T) {
	lat := Latencies{Data: time.Millisecond}
	s := sim.New(1)
	n := New(s, lat)
	a := &recorder{id: 1}
	b := &recorder{id: 2}
	n.Attach(a)
	n.Attach(b)
	// Force a reordering delay on the first message only, so the second
	// overtakes it deterministically.
	remove := n.AddFault(FaultRule{A: 1, B: 2, ReorderProb: 1.0, ReorderDelay: 50 * time.Millisecond})
	n.Env(1).Send(2, "first")
	remove()
	n.Env(1).Send(2, "second")
	s.Run()
	if b.count() != 2 {
		t.Fatalf("delivered %d, want 2", b.count())
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.got[0] != "second" || b.got[1] != "first" {
		t.Errorf("delivery order = %v, want [second first]", b.got)
	}
}

func TestPartition(t *testing.T) {
	s := sim.New(1)
	n := New(s, DefaultLatencies())
	for _, id := range []model.SwitchID{1, 2, 3, 4} {
		n.Attach(&recorder{id: id})
	}
	heal := n.Partition([]model.SwitchID{1, 2}, []model.SwitchID{3, 4})
	n.Env(1).Send(3, "cut")
	n.Env(4).Send(2, "cut")
	n.Env(1).Send(2, "same side")
	n.Env(3).Send(4, "same side")
	s.Run()
	if n.Drops.Partition != 2 {
		t.Errorf("Drops.Partition = %d, want 2", n.Drops.Partition)
	}
	if n.Delivered != 2 {
		t.Errorf("Delivered = %d, want 2 (intra-side traffic unaffected)", n.Delivered)
	}
	heal()
	n.Env(1).Send(3, "ok")
	s.Run()
	if n.Delivered != 3 {
		t.Error("message not delivered after heal")
	}
}

func TestSimUnknownDestination(t *testing.T) {
	s := sim.New(1)
	n := New(s, DefaultLatencies())
	a := &recorder{id: 1}
	n.Attach(a)
	n.Env(1).Send(99, "void")
	s.Run()
	if n.Drops.NoRoute != 1 {
		t.Errorf("Drops.NoRoute = %d, want 1", n.Drops.NoRoute)
	}
}

func TestLinkClassLatencies(t *testing.T) {
	lat := Latencies{Data: time.Millisecond, Control: 2 * time.Millisecond, Peer: 500 * time.Microsecond}
	s := sim.New(1)
	n := New(s, lat)
	n.SetSameGroup(func(a, b model.SwitchID) bool { return a <= 2 && b <= 2 })
	a := &recorder{id: 1}
	b := &recorder{id: 2}
	c := &recorder{id: 3}
	ctrl := &recorder{id: model.ControllerNode}
	n.Attach(a)
	n.Attach(b)
	n.Attach(c)
	n.Attach(ctrl)

	// Peer link 1→2 (same group): 500µs.
	n.Env(1).Send(2, "peer")
	s.Run()
	if got := s.Now().Duration(); got != 500*time.Microsecond {
		t.Errorf("peer delivery at %v, want 500µs", got)
	}
	// Data link 1→3: +1ms.
	n.Env(1).Send(3, "data")
	s.Run()
	if got := s.Now().Duration(); got != 1500*time.Microsecond {
		t.Errorf("data delivery at %v, want 1.5ms total", got)
	}
	// Control link 1→controller: +2ms.
	n.Env(1).Send(model.ControllerNode, "ctrl")
	s.Run()
	if got := s.Now().Duration(); got != 3500*time.Microsecond {
		t.Errorf("control delivery at %v, want 3.5ms total", got)
	}
}

func TestEnvTimers(t *testing.T) {
	s := sim.New(1)
	n := New(s, DefaultLatencies())
	a := &recorder{id: 1}
	n.Attach(a)
	env := n.Env(1)

	fired := 0
	env.After(time.Second, func() { fired++ })
	cancel := env.After(2*time.Second, func() { fired += 100 })
	cancel()
	ticks := 0
	stopTick := env.Every(time.Second, func() {
		ticks++
		if ticks == 3 {
			// Cancel from within the callback.
			// (stopTick captured below.)
		}
	})
	s.RunFor(3500 * time.Millisecond)
	stopTick()
	s.RunFor(10 * time.Second)
	if fired != 1 {
		t.Errorf("fired = %d, want 1 (canceled timer must not run)", fired)
	}
	if ticks != 3 {
		t.Errorf("ticks = %d, want 3", ticks)
	}
}

func TestAttachDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Attach did not panic")
		}
	}()
	s := sim.New(1)
	n := New(s, DefaultLatencies())
	n.Attach(&recorder{id: 1})
	n.Attach(&recorder{id: 1})
}

func TestLiveDeliveryAndCodec(t *testing.T) {
	n := NewLive(Latencies{Data: time.Millisecond, Control: time.Millisecond, Peer: time.Millisecond})
	defer n.Close()
	a := &recorder{id: 1}
	b := &recorder{id: 2}
	n.Attach(a)
	n.Attach(b)

	// An openflow message must round-trip the codec.
	ka := &openflow.KeepAlive{From: 1, Seq: 42}
	n.Env(1).Send(2, ka)
	// A raw data packet passes through as-is.
	pkt := &model.Packet{SrcMAC: model.HostMAC(1), DstMAC: model.HostMAC(2), Bytes: 100}
	n.Env(1).Send(2, pkt)

	deadline := time.Now().Add(2 * time.Second)
	for b.count() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if b.count() != 2 {
		t.Fatalf("b received %d messages, want 2", b.count())
	}
	if n.CodecErrors != 0 {
		t.Errorf("CodecErrors = %d", n.CodecErrors)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	foundKA := false
	for _, m := range b.got {
		if got, ok := m.(*openflow.KeepAlive); ok {
			foundKA = true
			if got.From != 1 || got.Seq != 42 {
				t.Errorf("KeepAlive = %+v after codec round trip", got)
			}
			if got == ka {
				t.Error("message not round-tripped through codec (same pointer)")
			}
		}
	}
	if !foundKA {
		t.Error("KeepAlive not delivered")
	}
}

func TestLiveTimers(t *testing.T) {
	n := NewLive(Latencies{Data: time.Millisecond})
	defer n.Close()
	a := &recorder{id: 1}
	n.Attach(a)
	env := n.Env(1)

	var mu sync.Mutex
	var oneShot, canceled, ticks int
	env.After(10*time.Millisecond, func() { mu.Lock(); oneShot++; mu.Unlock() })
	cancel := env.After(20*time.Millisecond, func() { mu.Lock(); canceled++; mu.Unlock() })
	cancel()
	stop := env.Every(10*time.Millisecond, func() { mu.Lock(); ticks++; mu.Unlock() })
	time.Sleep(120 * time.Millisecond)
	stop()
	time.Sleep(30 * time.Millisecond)

	mu.Lock()
	defer mu.Unlock()
	if oneShot != 1 {
		t.Errorf("oneShot = %d, want 1", oneShot)
	}
	if canceled != 0 {
		t.Error("canceled timer ran")
	}
	if ticks < 5 {
		t.Errorf("ticks = %d, want ≥ 5", ticks)
	}
}

func TestLiveLinkFailure(t *testing.T) {
	n := NewLive(Latencies{Data: time.Millisecond})
	defer n.Close()
	a := &recorder{id: 1}
	b := &recorder{id: 2}
	n.Attach(a)
	n.Attach(b)
	n.FailLink(1, 2)
	n.Env(1).Send(2, "lost")
	time.Sleep(20 * time.Millisecond)
	if b.count() != 0 {
		t.Error("message delivered over failed live link")
	}
	n.HealLink(1, 2)
	n.Env(1).Send(2, "ok")
	deadline := time.Now().Add(time.Second)
	for b.count() < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if b.count() != 1 {
		t.Error("message not delivered after live heal")
	}
}

func TestLiveCloseIdempotent(t *testing.T) {
	n := NewLive(Latencies{Data: time.Millisecond})
	n.Attach(&recorder{id: 1})
	n.Close()
	n.Close() // must not panic or deadlock
}

// TestLiveBatchDelivery pushes a coalesced regroup message through the
// live transport: the Batch must survive the codec round trip with its
// sub-messages intact and in order, arriving as one delivery.
func TestLiveBatchDelivery(t *testing.T) {
	n := NewLive(Latencies{Data: time.Millisecond, Control: time.Millisecond, Peer: time.Millisecond})
	defer n.Close()
	a := &recorder{id: 1}
	b := &recorder{id: 2}
	n.Attach(a)
	n.Attach(b)

	batch := &openflow.Batch{Msgs: []openflow.Message{
		&openflow.GroupConfig{Group: 1, Members: []model.SwitchID{1, 2}, Designated: 1, Version: 3},
		&openflow.LFIBUpdate{Origin: 2, Full: true, Entries: []openflow.LFIBEntry{
			{MAC: model.HostMAC(20), IP: model.HostIP(20), VLAN: 1},
		}, Version: 3},
	}}
	n.Env(1).Send(2, batch)

	deadline := time.Now().Add(2 * time.Second)
	for b.count() < 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if b.count() != 1 {
		t.Fatalf("b received %d messages, want 1 (the batch)", b.count())
	}
	if n.CodecErrors != 0 {
		t.Errorf("CodecErrors = %d", n.CodecErrors)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	got, ok := b.got[0].(*openflow.Batch)
	if !ok {
		t.Fatalf("delivered %T, want *openflow.Batch", b.got[0])
	}
	if got == batch {
		t.Fatal("batch not round-tripped through codec (same pointer)")
	}
	if len(got.Msgs) != 2 {
		t.Fatalf("batch decoded %d sub-messages, want 2", len(got.Msgs))
	}
	if cfg, ok := got.Msgs[0].(*openflow.GroupConfig); !ok || cfg.Version != 3 {
		t.Errorf("first sub-message = %+v, want the GroupConfig", got.Msgs[0])
	}
	if u, ok := got.Msgs[1].(*openflow.LFIBUpdate); !ok || len(u.Entries) != 1 {
		t.Errorf("second sub-message = %+v, want the preload", got.Msgs[1])
	}
}

// TestLiveDeltaProtocolDelivery round-trips the delta-protocol message
// set through the live codec path — a coalesced GFIBUpdate+GFIBDelta
// pair and a PacketInBurst — and checks the transport's bytes-on-wire
// meter moves.
func TestLiveDeltaProtocolDelivery(t *testing.T) {
	n := NewLive(Latencies{Data: time.Millisecond, Control: time.Millisecond, Peer: time.Millisecond})
	defer n.Close()
	a := &recorder{id: 1}
	b := &recorder{id: 2}
	n.Attach(a)
	n.Attach(b)

	n.Env(1).Send(2, &openflow.Batch{Msgs: []openflow.Message{
		&openflow.GFIBUpdate{Group: 1, Filters: []openflow.GFIBFilter{{Switch: 3, Filter: []byte{1}, Version: 4}}},
		&openflow.GFIBDelta{Group: 1, Deltas: []openflow.GFIBFilterDelta{
			{Switch: 4, BaseVersion: 1, TargetVersion: 2, Words: []bloom.WordDelta{{Index: 7, Word: 42}}},
		}},
	}})
	n.Env(2).Send(1, &openflow.PacketInBurst{Switch: 2, Items: []openflow.BurstPacket{
		{Reason: openflow.ReasonNoMatch, Packet: model.Packet{SrcMAC: model.HostMAC(1), DstMAC: model.HostMAC(2), VLAN: 1}},
	}})

	deadline := time.Now().Add(2 * time.Second)
	for (a.count() < 1 || b.count() < 1) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if a.count() != 1 || b.count() != 1 {
		t.Fatalf("deliveries = %d/%d, want 1/1", a.count(), b.count())
	}
	if n.CodecErrors != 0 {
		t.Fatalf("CodecErrors = %d", n.CodecErrors)
	}
	if n.WireBytes() == 0 {
		t.Error("WireBytes() = 0 after two control messages")
	}
	b.mu.Lock()
	batch, ok := b.got[0].(*openflow.Batch)
	b.mu.Unlock()
	if !ok || len(batch.Msgs) != 2 {
		t.Fatalf("delivered %T, want the 2-message batch", b.got[0])
	}
	d, ok := batch.Msgs[1].(*openflow.GFIBDelta)
	if !ok || len(d.Deltas) != 1 || d.Deltas[0].Words[0].Word != 42 {
		t.Errorf("delta after codec = %+v", batch.Msgs[1])
	}
	a.mu.Lock()
	burst, ok := a.got[0].(*openflow.PacketInBurst)
	a.mu.Unlock()
	if !ok || burst.Switch != 2 || len(burst.Items) != 1 {
		t.Errorf("burst after codec = %+v", a.got[0])
	}
}
