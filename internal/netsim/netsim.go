// Package netsim provides the simulated network underlay of the LazyCtrl
// prototype: a core–edge separated IP fabric giving one-hop logical
// distance between edge switches (§III-B1), with configurable link
// latencies, link/node failure injection, and two interchangeable
// runtimes — a deterministic discrete-event mode used by all experiments
// and a live goroutine mode (see live.go) that exercises the OpenFlow
// codec and the concurrency behavior of the node state machines.
package netsim

import (
	"fmt"
	"math/rand/v2"
	"time"

	"lazyctrl/internal/model"
	"lazyctrl/internal/sim"
)

// Message is anything delivered between nodes: a data-plane packet
// (*model.Packet) or a control message (openflow.Message).
type Message any

// Node is a network element attached to the underlay. Handlers run
// single-threaded in both runtimes.
type Node interface {
	// NodeID returns the node's address. The controller uses
	// model.ControllerNode.
	NodeID() model.SwitchID
	// HandleMessage processes one delivered message.
	HandleMessage(from model.SwitchID, msg Message)
}

// Env is the runtime handed to a node: virtual (or real) time, timers,
// and message sending. Implementations guarantee all callbacks and
// HandleMessage invocations of one node never run concurrently.
type Env interface {
	// Now returns the time since simulation start.
	Now() time.Duration
	// After schedules fn after d. The returned cancel function stops a
	// pending callback.
	After(d time.Duration, fn func()) (cancel func())
	// Every schedules fn at a fixed period until canceled.
	Every(d time.Duration, fn func()) (cancel func())
	// Send delivers msg to the node with the given address, applying
	// link latency and loss.
	Send(to model.SwitchID, msg Message)
	// Rand returns a deterministic random source (sim mode) or a
	// process-wide one (live mode).
	Rand() *rand.Rand
}

// LinkKind classifies a logical channel for latency selection and
// failure injection.
type LinkKind uint8

// Link kinds per §III-B3: the data path through the core, the control
// link (switch ↔ controller), the state link (designated ↔ controller),
// and peer links within a group. State links share the control-link
// latency class.
const (
	LinkData LinkKind = iota + 1
	LinkControl
	LinkPeer
)

// Latencies configures one-way delays per link kind plus per-message
// jitter.
type Latencies struct {
	// Data is the one-way edge→edge delay through the IP core.
	Data time.Duration
	// Control is the one-way switch↔controller delay.
	Control time.Duration
	// Peer is the one-way delay between switches in the same group.
	Peer time.Duration
	// JitterFrac adds uniform jitter in [0, JitterFrac·base).
	JitterFrac float64
}

// DefaultLatencies reflects the paper's prototype: GigE edges over a
// 10GigE full-mesh core, controller on a separate PC. Calibrated so the
// steady-state one-way datapath is ≈0.4 ms (Fig. 9) and a cold-cache
// intra-group first packet lands at ≈0.8 ms (§V-E).
func DefaultLatencies() Latencies {
	return Latencies{
		Data:       350 * time.Microsecond,
		Control:    400 * time.Microsecond,
		Peer:       300 * time.Microsecond,
		JitterFrac: 0.10,
	}
}

func (l Latencies) delay(kind LinkKind, rng *rand.Rand) time.Duration {
	var base time.Duration
	switch kind {
	case LinkControl:
		base = l.Control
	case LinkPeer:
		base = l.Peer
	default:
		base = l.Data
	}
	if l.JitterFrac > 0 {
		base += time.Duration(rng.Float64() * l.JitterFrac * float64(base))
	}
	return base
}

// classify selects the link kind for a (from, to) pair.
func classify(from, to model.SwitchID, samegroup func(a, b model.SwitchID) bool) LinkKind {
	if model.IsControllerAddr(from) || model.IsControllerAddr(to) {
		return LinkControl
	}
	if samegroup != nil && samegroup(from, to) {
		return LinkPeer
	}
	return LinkData
}

// DropStats breaks message losses down by cause, so scenario
// assertions can distinguish injected faults from collateral drops.
type DropStats struct {
	// DownAtSend counts messages dropped because the sender, receiver,
	// or link was failed when the message was sent.
	DownAtSend uint64
	// DownAtDelivery counts messages that were in flight when the
	// receiver failed.
	DownAtDelivery uint64
	// NoRoute counts messages addressed to an unattached node.
	NoRoute uint64
	// InjectedLoss counts messages dropped by a FaultRule loss draw.
	InjectedLoss uint64
	// Partition counts messages dropped by an active Partition.
	Partition uint64
}

// Total sums all drop causes.
func (d DropStats) Total() uint64 {
	return d.DownAtSend + d.DownAtDelivery + d.NoRoute + d.InjectedLoss + d.Partition
}

// FaultRule describes a per-link fault-injection rule: probabilistic
// loss, extra fixed delay, uniform extra jitter, and probabilistic
// reordering (an additional uniform delay in [0, ReorderDelay) that
// lets later messages overtake). Rules match in both directions;
// model.NoSwitch acts as a wildcard endpoint, so {A: x, B: NoSwitch}
// matches every link touching x and {NoSwitch, NoSwitch} matches all
// traffic. All random draws use the simulator's seeded source, so a
// fault schedule is reproducible from the run seed.
type FaultRule struct {
	A, B         model.SwitchID
	Loss         float64       // drop probability in [0, 1]
	ExtraDelay   time.Duration // added to every matching message
	ExtraJitter  time.Duration // uniform extra delay in [0, ExtraJitter)
	ReorderProb  float64       // probability of a reordering delay
	ReorderDelay time.Duration // max reordering delay when drawn
}

func (r *FaultRule) matches(from, to model.SwitchID) bool {
	switch {
	case r.A == model.NoSwitch && r.B == model.NoSwitch:
		return true
	case r.A == model.NoSwitch:
		return from == r.B || to == r.B
	case r.B == model.NoSwitch:
		return from == r.A || to == r.A
	default:
		return (from == r.A && to == r.B) || (from == r.B && to == r.A)
	}
}

// partition is a bidirectional cut between two node sets.
type partition struct {
	a, b map[model.SwitchID]bool
}

func (p *partition) separates(from, to model.SwitchID) bool {
	return (p.a[from] && p.b[to]) || (p.a[to] && p.b[from])
}

// Network is the discrete-event underlay.
type Network struct {
	sim        *sim.Simulator
	lat        Latencies
	nodes      map[model.SwitchID]Node
	downLinks  map[model.SwitchPair]bool
	downNodes  map[model.SwitchID]bool
	sameGroup  func(a, b model.SwitchID) bool
	faults     []*FaultRule
	partitions []*partition

	// Delivered counts messages delivered; Drops counts messages lost,
	// by cause.
	Delivered uint64
	Drops     DropStats

	// Meter, when set, observes every message put on the wire (after
	// send-side drop checks). Harnesses that byte-meter the control
	// channel install it; analytic fold credits flow into the same
	// accounting on the harness side.
	Meter func(from, to model.SwitchID, msg Message)
	// Observer, when set, sees every control-plane message put on the
	// wire right after Meter and, at delivery time, every one handed
	// to its destination (delivered=true). Data-plane transits
	// (*model.Packet) are excluded in the send path itself: they
	// outnumber control messages by orders of magnitude, every
	// consumer filters them out anyway, and the closure call per
	// packet-hop is measurable (BenchmarkTelemetryOverhead). The
	// telemetry flight recorders hang off this hook: the eval harness
	// installs one observer that appends the event to both endpoints'
	// rings.
	Observer func(from, to model.SwitchID, msg Message, delivered bool)
	// OnFaultChange, when set, fires whenever the underlay's fault
	// state changes (link/node failure or heal, fault rules, partitions)
	// — the signal control-plane elision uses to re-materialize timers.
	OnFaultChange func()
}

// New creates a DES underlay on the given simulator.
func New(s *sim.Simulator, lat Latencies) *Network {
	return &Network{
		sim:       s,
		lat:       lat,
		nodes:     make(map[model.SwitchID]Node),
		downLinks: make(map[model.SwitchPair]bool),
		downNodes: make(map[model.SwitchID]bool),
	}
}

// SetSameGroup installs the predicate used to classify peer links (the
// controller's grouping decides which switches share a group).
func (n *Network) SetSameGroup(fn func(a, b model.SwitchID) bool) { n.sameGroup = fn }

// Attach registers a node. It panics on duplicate addresses
// (a configuration bug, not a runtime condition).
func (n *Network) Attach(node Node) {
	id := node.NodeID()
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %v", id))
	}
	n.nodes[id] = node
}

// Node returns a registered node, or nil.
func (n *Network) Node(id model.SwitchID) Node { return n.nodes[id] }

// faultChanged notifies the fault-change hook.
func (n *Network) faultChanged() {
	if n.OnFaultChange != nil {
		n.OnFaultChange()
	}
}

// FailLink takes the (a,b) link down in both directions.
func (n *Network) FailLink(a, b model.SwitchID) {
	n.downLinks[model.MakeSwitchPair(a, b)] = true
	n.faultChanged()
}

// HealLink restores the (a,b) link.
func (n *Network) HealLink(a, b model.SwitchID) {
	delete(n.downLinks, model.MakeSwitchPair(a, b))
	n.faultChanged()
}

// FailNode takes a node down: all its traffic is dropped.
func (n *Network) FailNode(id model.SwitchID) {
	n.downNodes[id] = true
	n.faultChanged()
}

// HealNode restores a node.
func (n *Network) HealNode(id model.SwitchID) {
	delete(n.downNodes, id)
	n.faultChanged()
}

// NodeDown reports whether a node is failed.
func (n *Network) NodeDown(id model.SwitchID) bool { return n.downNodes[id] }

// Faulted reports whether any fault is active on the underlay: failed
// links or nodes, fault-injection rules, or partitions. While false,
// every message sent is delivered (messages to unattached nodes
// aside), which is what licenses analytic folding of periodic
// heartbeats.
func (n *Network) Faulted() bool {
	return len(n.downLinks) > 0 || len(n.downNodes) > 0 ||
		len(n.faults) > 0 || len(n.partitions) > 0
}

// AddFault installs a fault-injection rule and returns a function that
// removes it. Multiple matching rules compose: loss draws are taken per
// rule and extra delays accumulate.
func (n *Network) AddFault(r FaultRule) (remove func()) {
	rule := &r
	n.faults = append(n.faults, rule)
	n.faultChanged()
	return func() {
		for i, f := range n.faults {
			if f == rule {
				n.faults = append(n.faults[:i], n.faults[i+1:]...)
				n.faultChanged()
				return
			}
		}
	}
}

// Partition cuts all traffic between the two node sets in both
// directions (links within a side are unaffected) and returns a heal
// function.
func (n *Network) Partition(sideA, sideB []model.SwitchID) (heal func()) {
	p := &partition{
		a: make(map[model.SwitchID]bool, len(sideA)),
		b: make(map[model.SwitchID]bool, len(sideB)),
	}
	for _, id := range sideA {
		p.a[id] = true
	}
	for _, id := range sideB {
		p.b[id] = true
	}
	n.partitions = append(n.partitions, p)
	n.faultChanged()
	return func() {
		for i, q := range n.partitions {
			if q == p {
				n.partitions = append(n.partitions[:i], n.partitions[i+1:]...)
				n.faultChanged()
				return
			}
		}
	}
}

// send delivers msg from → to with latency; drops on failed links,
// failed nodes, active partitions, and injected loss.
func (n *Network) send(from, to model.SwitchID, msg Message) {
	if n.downNodes[from] || n.downNodes[to] || n.downLinks[model.MakeSwitchPair(from, to)] {
		n.Drops.DownAtSend++
		return
	}
	dst, ok := n.nodes[to]
	if !ok {
		n.Drops.NoRoute++
		return
	}
	for _, p := range n.partitions {
		if p.separates(from, to) {
			n.Drops.Partition++
			return
		}
	}
	var extra time.Duration
	for _, r := range n.faults {
		if !r.matches(from, to) {
			continue
		}
		if r.Loss > 0 && n.sim.Rand().Float64() < r.Loss {
			n.Drops.InjectedLoss++
			return
		}
		extra += r.ExtraDelay
		if r.ExtraJitter > 0 {
			extra += time.Duration(n.sim.Rand().Float64() * float64(r.ExtraJitter))
		}
		if r.ReorderProb > 0 && n.sim.Rand().Float64() < r.ReorderProb {
			extra += time.Duration(n.sim.Rand().Float64() * float64(r.ReorderDelay))
		}
	}
	if n.Meter != nil {
		n.Meter(from, to, msg)
	}
	observe := n.Observer != nil
	if observe {
		if _, dataPlane := msg.(*model.Packet); dataPlane {
			observe = false
		} else {
			n.Observer(from, to, msg, false)
		}
	}
	kind := classify(from, to, n.sameGroup)
	d := n.lat.delay(kind, n.sim.Rand()) + extra
	n.sim.After(d, func() {
		// Re-check failure state at delivery time.
		if n.downNodes[to] {
			n.Drops.DownAtDelivery++
			return
		}
		n.Delivered++
		if observe {
			n.Observer(from, to, msg, true)
		}
		dst.HandleMessage(from, msg)
	})
}

// Env returns the environment for a node address.
func (n *Network) Env(id model.SwitchID) Env {
	return &simEnv{net: n, id: id}
}

// simEnv adapts the DES network to the Env interface.
type simEnv struct {
	net *Network
	id  model.SwitchID
}

func (e *simEnv) Now() time.Duration { return e.net.sim.Now().Duration() }

func (e *simEnv) After(d time.Duration, fn func()) func() {
	t := e.net.sim.After(d, fn)
	return func() { t.Stop() }
}

func (e *simEnv) Every(d time.Duration, fn func()) func() {
	t := e.net.sim.Every(d, fn)
	return func() { t.Stop() }
}

func (e *simEnv) Send(to model.SwitchID, msg Message) { e.net.send(e.id, to, msg) }

func (e *simEnv) Rand() *rand.Rand { return e.net.sim.Rand() }

// ElidableTask is the handle of a periodic task that may fold
// quiescent rounds analytically (see sim.Elider). The zero-cost
// fallback returned for environments without elision support never
// folds, so Wake is a no-op and CreditedThrough stays zero.
type ElidableTask interface {
	// Wake re-materializes the task's timer: past folded rounds are
	// credited and the next round runs as a real event.
	Wake()
	// Stop settles any pending fold and cancels the task.
	Stop()
	// CreditedThrough returns the last round boundary settled
	// analytically (zero if the task never folded).
	CreditedThrough() time.Duration
}

// ElidableScheduler is implemented by environments (the DES simEnv)
// that support periodic-round elision. quiet reports, after each real
// round, how many upcoming rounds are provably no-ops; credit settles
// that many rounds analytically.
type ElidableScheduler interface {
	EveryElidable(d time.Duration, run func(), quiet func() int, credit func(rounds int)) ElidableTask
}

// EveryElidableOrReal registers run as an elidable periodic task when
// env supports it, degrading to a plain Every otherwise. Nodes use it
// so elision stays an optimization: behavior with the fallback is the
// pre-elision behavior exactly.
func EveryElidableOrReal(env Env, d time.Duration, run func(), quiet func() int, credit func(rounds int)) ElidableTask {
	if es, ok := env.(ElidableScheduler); ok {
		return es.EveryElidable(d, run, quiet, credit)
	}
	cancel := env.Every(d, run)
	return &realTask{cancel: cancel}
}

// realTask is the non-eliding fallback of EveryElidableOrReal.
type realTask struct{ cancel func() }

func (t *realTask) Wake() {}
func (t *realTask) Stop() {
	if t.cancel != nil {
		t.cancel()
		t.cancel = nil
	}
}
func (t *realTask) CreditedThrough() time.Duration { return 0 }

// elidedTask adapts sim.Elider to ElidableTask.
type elidedTask struct{ el *sim.Elider }

func (t *elidedTask) Wake() { t.el.Wake() }
func (t *elidedTask) Stop() { t.el.Stop() }
func (t *elidedTask) CreditedThrough() time.Duration {
	return t.el.CreditedThrough().Duration()
}

// EveryElidable implements ElidableScheduler on the DES environment.
func (e *simEnv) EveryElidable(d time.Duration, run func(), quiet func() int, credit func(rounds int)) ElidableTask {
	return &elidedTask{el: e.net.sim.EveryElidable(d, run, quiet, credit)}
}
