// Package netsim provides the simulated network underlay of the LazyCtrl
// prototype: a core–edge separated IP fabric giving one-hop logical
// distance between edge switches (§III-B1), with configurable link
// latencies, link/node failure injection, and two interchangeable
// runtimes — a deterministic discrete-event mode used by all experiments
// and a live goroutine mode (see live.go) that exercises the OpenFlow
// codec and the concurrency behavior of the node state machines.
package netsim

import (
	"fmt"
	"math/rand/v2"
	"time"

	"lazyctrl/internal/model"
	"lazyctrl/internal/sim"
)

// Message is anything delivered between nodes: a data-plane packet
// (*model.Packet) or a control message (openflow.Message).
type Message any

// Node is a network element attached to the underlay. Handlers run
// single-threaded in both runtimes.
type Node interface {
	// NodeID returns the node's address. The controller uses
	// model.ControllerNode.
	NodeID() model.SwitchID
	// HandleMessage processes one delivered message.
	HandleMessage(from model.SwitchID, msg Message)
}

// Env is the runtime handed to a node: virtual (or real) time, timers,
// and message sending. Implementations guarantee all callbacks and
// HandleMessage invocations of one node never run concurrently.
type Env interface {
	// Now returns the time since simulation start.
	Now() time.Duration
	// After schedules fn after d. The returned cancel function stops a
	// pending callback.
	After(d time.Duration, fn func()) (cancel func())
	// Every schedules fn at a fixed period until canceled.
	Every(d time.Duration, fn func()) (cancel func())
	// Send delivers msg to the node with the given address, applying
	// link latency and loss.
	Send(to model.SwitchID, msg Message)
	// Rand returns a deterministic random source (sim mode) or a
	// process-wide one (live mode).
	Rand() *rand.Rand
}

// LinkKind classifies a logical channel for latency selection and
// failure injection.
type LinkKind uint8

// Link kinds per §III-B3: the data path through the core, the control
// link (switch ↔ controller), the state link (designated ↔ controller),
// and peer links within a group. State links share the control-link
// latency class.
const (
	LinkData LinkKind = iota + 1
	LinkControl
	LinkPeer
)

// Latencies configures one-way delays per link kind plus per-message
// jitter.
type Latencies struct {
	// Data is the one-way edge→edge delay through the IP core.
	Data time.Duration
	// Control is the one-way switch↔controller delay.
	Control time.Duration
	// Peer is the one-way delay between switches in the same group.
	Peer time.Duration
	// JitterFrac adds uniform jitter in [0, JitterFrac·base).
	JitterFrac float64
}

// DefaultLatencies reflects the paper's prototype: GigE edges over a
// 10GigE full-mesh core, controller on a separate PC. Calibrated so the
// steady-state one-way datapath is ≈0.4 ms (Fig. 9) and a cold-cache
// intra-group first packet lands at ≈0.8 ms (§V-E).
func DefaultLatencies() Latencies {
	return Latencies{
		Data:       350 * time.Microsecond,
		Control:    400 * time.Microsecond,
		Peer:       300 * time.Microsecond,
		JitterFrac: 0.10,
	}
}

func (l Latencies) delay(kind LinkKind, rng *rand.Rand) time.Duration {
	var base time.Duration
	switch kind {
	case LinkControl:
		base = l.Control
	case LinkPeer:
		base = l.Peer
	default:
		base = l.Data
	}
	if l.JitterFrac > 0 {
		base += time.Duration(rng.Float64() * l.JitterFrac * float64(base))
	}
	return base
}

// classify selects the link kind for a (from, to) pair.
func classify(from, to model.SwitchID, samegroup func(a, b model.SwitchID) bool) LinkKind {
	if from == model.ControllerNode || to == model.ControllerNode {
		return LinkControl
	}
	if samegroup != nil && samegroup(from, to) {
		return LinkPeer
	}
	return LinkData
}

// Network is the discrete-event underlay.
type Network struct {
	sim       *sim.Simulator
	lat       Latencies
	nodes     map[model.SwitchID]Node
	downLinks map[model.SwitchPair]bool
	downNodes map[model.SwitchID]bool
	sameGroup func(a, b model.SwitchID) bool

	// Delivered counts messages delivered; Dropped counts messages lost
	// to failed links or nodes.
	Delivered uint64
	Dropped   uint64
}

// New creates a DES underlay on the given simulator.
func New(s *sim.Simulator, lat Latencies) *Network {
	return &Network{
		sim:       s,
		lat:       lat,
		nodes:     make(map[model.SwitchID]Node),
		downLinks: make(map[model.SwitchPair]bool),
		downNodes: make(map[model.SwitchID]bool),
	}
}

// SetSameGroup installs the predicate used to classify peer links (the
// controller's grouping decides which switches share a group).
func (n *Network) SetSameGroup(fn func(a, b model.SwitchID) bool) { n.sameGroup = fn }

// Attach registers a node. It panics on duplicate addresses
// (a configuration bug, not a runtime condition).
func (n *Network) Attach(node Node) {
	id := node.NodeID()
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("netsim: duplicate node %v", id))
	}
	n.nodes[id] = node
}

// Node returns a registered node, or nil.
func (n *Network) Node(id model.SwitchID) Node { return n.nodes[id] }

// FailLink takes the (a,b) link down in both directions.
func (n *Network) FailLink(a, b model.SwitchID) { n.downLinks[model.MakeSwitchPair(a, b)] = true }

// HealLink restores the (a,b) link.
func (n *Network) HealLink(a, b model.SwitchID) { delete(n.downLinks, model.MakeSwitchPair(a, b)) }

// FailNode takes a node down: all its traffic is dropped.
func (n *Network) FailNode(id model.SwitchID) { n.downNodes[id] = true }

// HealNode restores a node.
func (n *Network) HealNode(id model.SwitchID) { delete(n.downNodes, id) }

// NodeDown reports whether a node is failed.
func (n *Network) NodeDown(id model.SwitchID) bool { return n.downNodes[id] }

// send delivers msg from → to with latency; drops on failed links or
// nodes.
func (n *Network) send(from, to model.SwitchID, msg Message) {
	if n.downNodes[from] || n.downNodes[to] || n.downLinks[model.MakeSwitchPair(from, to)] {
		n.Dropped++
		return
	}
	dst, ok := n.nodes[to]
	if !ok {
		n.Dropped++
		return
	}
	kind := classify(from, to, n.sameGroup)
	d := n.lat.delay(kind, n.sim.Rand())
	n.sim.After(d, func() {
		// Re-check failure state at delivery time.
		if n.downNodes[to] {
			n.Dropped++
			return
		}
		n.Delivered++
		dst.HandleMessage(from, msg)
	})
}

// Env returns the environment for a node address.
func (n *Network) Env(id model.SwitchID) Env {
	return &simEnv{net: n, id: id}
}

// simEnv adapts the DES network to the Env interface.
type simEnv struct {
	net *Network
	id  model.SwitchID
}

func (e *simEnv) Now() time.Duration { return e.net.sim.Now().Duration() }

func (e *simEnv) After(d time.Duration, fn func()) func() {
	t := e.net.sim.After(d, fn)
	return func() { t.Stop() }
}

func (e *simEnv) Every(d time.Duration, fn func()) func() {
	t := e.net.sim.Every(d, fn)
	return func() { t.Stop() }
}

func (e *simEnv) Send(to model.SwitchID, msg Message) { e.net.send(e.id, to, msg) }

func (e *simEnv) Rand() *rand.Rand { return e.net.sim.Rand() }
