package chaos

import (
	"fmt"
	"math/rand/v2"
	"time"

	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
)

// Scenario builders: each returns a pure-data Plan for one of the
// failure cascades the robustness harness exercises
// (docs/robustness.md §Scenarios). All times are absolute virtual
// times on the emulation clock.

// ControllerOutage blacks out the controller for dur starting at.
// Edges ride it out in degraded mode: existing G-FIB/L-FIB state keeps
// forwarding, no-match packets flood within the group, and the
// degradation window is metered.
func ControllerOutage(at, dur time.Duration) *Plan {
	p := &Plan{Name: "controller-outage"}
	return p.Add(at, dur, ControllerBlackout{})
}

// FlappingControlLink flaps the sw<->controller link: flaps windows of
// period/2 down, period/2 up. Exercises the push-retry/backoff
// supervision and the false-suspicion paths of the Table I inference.
func FlappingControlLink(sw model.SwitchID, at, period time.Duration, flaps int) *Plan {
	p := &Plan{Name: fmt.Sprintf("flapping-control-link-S%d", sw)}
	for i := 0; i < flaps; i++ {
		p.Add(at+time.Duration(i)*period, period/2, LinkDown{A: sw, B: model.ControllerNode})
	}
	return p
}

// RackCascade staggers crash-restarts across a rack of switches while
// a correlated loss storm degrades every link touching the rack — the
// classic rolling-failure cascade. Each switch is down for downFor;
// crashes start stagger apart.
func RackCascade(rack []model.SwitchID, at, stagger, downFor time.Duration, loss float64) *Plan {
	p := &Plan{Name: "rack-cascade"}
	stormLen := time.Duration(len(rack))*stagger + downFor
	if loss > 0 {
		for _, sw := range rack {
			p.Add(at, stormLen, Fault{Rule: netsim.FaultRule{A: sw, B: model.NoSwitch, Loss: loss}})
		}
	}
	for i, sw := range rack {
		p.Add(at+time.Duration(i)*stagger, downFor, Crash{Switch: sw})
	}
	return p
}

// DesignatedChurnStorm repeatedly crashes whichever switch currently
// holds the designated role of seed's group: every period a fresh
// CrashDesignated fires, the victim stays down for downFor, and by the
// time it restarts failover has rotated the role onto the next wheel
// member — which the next round then kills.
func DesignatedChurnStorm(seed model.SwitchID, at, period, downFor time.Duration, rounds int) *Plan {
	p := &Plan{Name: fmt.Sprintf("designated-churn-S%d", seed)}
	for i := 0; i < rounds; i++ {
		p.Add(at+time.Duration(i)*period, downFor, CrashDesignated{Of: seed})
	}
	return p
}

// Cascade is the acceptance scenario: burst loss across seed's group's
// peer links, a control-link partition cutting the whole group off the
// controller, and a designated-switch crash landing mid-regroup while
// both are still active. The windows are sized against the emulation
// cadences (1 min keep-alive, 3-miss detector): the designated stays
// down long enough for the wheel to diagnose it, and its failure
// reports race the control-link partition. Convergence back to the
// fault-free fixpoint after End() is the tentpole invariant.
func Cascade(seed model.SwitchID, at time.Duration) *Plan {
	p := &Plan{Name: fmt.Sprintf("cascade-S%d", seed)}
	// Burst loss on every peer link of the group for 8 min.
	p.Add(at, 8*time.Minute, GroupLoss{Of: seed, Loss: 0.4})
	// 2 min in: the whole group loses its control links for 5 min —
	// failure reports and config pushes black-hole.
	p.Add(at+2*time.Minute, 5*time.Minute, ControlCut{Of: seed})
	// 3 min in — mid-regroup, inside both windows — the designated
	// dies for 6 min, restarting after everything else has healed.
	p.Add(at+3*time.Minute, 6*time.Minute, CrashDesignated{Of: seed})
	return p
}

// ControllerFailoverPlan kills the master replica at for dur: the
// standby takes over, rules alone, and the healed old master must be
// fenced, demoted, and re-synced. A switch crash one keep-alive round
// before the kill puts the failover mid-recovery — the new master
// inherits an open diagnosis.
func ControllerFailoverPlan(at, dur time.Duration) *Plan {
	p := &Plan{Name: "controller-failover"}
	return p.Add(at, dur, ControllerFailover{})
}

// SplitBrainPlan isolates the master replica entirely for dur.
func SplitBrainPlan(at, dur time.Duration) *Plan {
	p := &Plan{Name: "split-brain"}
	return p.Add(at, dur, SplitBrain{})
}

// StaleMasterStormPlan cuts only the replica link for dur, producing
// dueling masters until the fabric's fence demotes the stale one.
func StaleMasterStormPlan(at, dur time.Duration) *Plan {
	p := &Plan{Name: "stale-master-storm"}
	return p.Add(at, dur, StaleMasterStorm{})
}

// Randomized expands a seed into a concrete fault schedule over the
// given switches: loss windows, delay/jitter windows, control-link
// flaps, switch crash-restarts (never overlapping per switch), at
// most one controller blackout, and the replicated-controller moves
// (failover, split-brain, stale-master storm — no-ops on a stack
// without a standby). The schedule spans [start, start+span] and is a
// pure function of its arguments — same seed, same plan.
func Randomized(seed uint64, switches []model.SwitchID, start, span time.Duration, events int) *Plan {
	p := &Plan{Name: fmt.Sprintf("randomized-%d", seed)}
	if len(switches) == 0 || events <= 0 || span <= 0 {
		return p
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	pick := func() model.SwitchID { return switches[rng.IntN(len(switches))] }
	busyUntil := make(map[model.SwitchID]time.Duration)
	usedBlackout := false
	for i := 0; i < events; i++ {
		at := start + time.Duration(rng.Int64N(int64(span)))
		dur := 10*time.Second + time.Duration(rng.Int64N(int64(50*time.Second)))
		switch rng.IntN(9) {
		case 0: // loss window on one link
			p.Add(at, dur, Fault{Rule: netsim.FaultRule{A: pick(), B: pick(), Loss: 0.3 + 0.7*rng.Float64()}})
		case 1: // wildcard loss around one switch
			p.Add(at, dur, Fault{Rule: netsim.FaultRule{A: pick(), B: model.NoSwitch, Loss: 0.2 + 0.5*rng.Float64()}})
		case 2: // delay + jitter + reordering window
			p.Add(at, dur, Fault{Rule: netsim.FaultRule{
				A: pick(), B: model.NoSwitch,
				ExtraDelay:   time.Duration(rng.Int64N(int64(20 * time.Millisecond))),
				ExtraJitter:  time.Duration(rng.Int64N(int64(10 * time.Millisecond))),
				ReorderProb:  0.3 * rng.Float64(),
				ReorderDelay: 5 * time.Millisecond,
			}})
		case 3: // control-link flap
			p.Add(at, dur, LinkDown{A: pick(), B: model.ControllerNode})
		case 4: // crash-restart, never overlapping per switch
			sw := pick()
			if at < busyUntil[sw] {
				continue
			}
			busyUntil[sw] = at + dur + time.Second
			p.Add(at, dur, Crash{Switch: sw})
		case 5: // at most one controller blackout per plan
			if usedBlackout {
				continue
			}
			usedBlackout = true
			p.Add(at, dur/2, ControllerBlackout{})
		case 6: // master replica failover (no-op without a standby)
			p.Add(at, dur, ControllerFailover{})
		case 7: // full master isolation
			p.Add(at, dur, SplitBrain{})
		case 8: // replica-link cut: dueling masters
			p.Add(at, dur, StaleMasterStorm{})
		}
	}
	return p
}
