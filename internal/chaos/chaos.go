// Package chaos is the deterministic fault-injection layer for the
// LazyCtrl control plane: a scripted scenario engine that drives the
// netsim underlay's fault hooks (per-link loss, delay, jitter,
// reordering, bidirectional partitions, node crash/restart) on a
// virtual-time schedule, plus a convergence-invariant checker that
// asserts the distributed state — every edge G-FIB and L-FIB view, the
// controller's C-LIB, and per-peer version state — returns to the
// fault-free fixpoint after the faults end (docs/robustness.md).
//
// Everything is seed-reproducible: a Plan is pure data, actions draw no
// randomness of their own (the Randomized builder expands a seed into a
// concrete Plan up front), and the underlay's loss draws come from the
// simulator's PCG stream. Two runs with the same seed, trace, and plan
// execute the same faults at the same virtual instants.
package chaos

import (
	"fmt"
	"sort"
	"time"

	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
)

// Harness is the world-manipulation surface a Plan executes against.
// Both the eval emulation harness and the top-level DataCenter rig
// implement it; actions stay agnostic of which stack they are breaking.
type Harness interface {
	// Now returns the current virtual time.
	Now() time.Duration
	// After schedules fn after d on the harness's simulator.
	After(d time.Duration, fn func())
	// Net exposes the underlay for link-level fault hooks.
	Net() *netsim.Network
	// Switches lists every edge switch, sorted by ID.
	Switches() []model.SwitchID
	// GroupPeers returns the members of sw's current group (including
	// sw itself), or nil if sw is ungrouped.
	GroupPeers(sw model.SwitchID) []model.SwitchID
	// Designated resolves the designated switch of sw's group as sw
	// currently understands it (model.NoSwitch if unknown).
	Designated(sw model.SwitchID) model.SwitchID
	// Crash fails an edge switch in place: the node drops off the
	// underlay but keeps its volatile state until Restart reboots it.
	Crash(sw model.SwitchID)
	// Restart heals and reboots a crashed switch: volatile tables are
	// wiped, the L-FIB incarnation epoch advances, hosts re-attach,
	// and the controller is told to re-push the group view.
	Restart(sw model.SwitchID)
	// CrashController blacks out the central controller: every message
	// to or from it is dropped until RestartController.
	CrashController()
	// RestartController brings the controller back onto the underlay.
	RestartController()
	// Replicas lists the controller replica addresses, the replica
	// currently holding the master role first (a single-controller
	// stack returns just the controller address). Resolved at call
	// time: after a failover the order changes, so a second
	// ControllerFailover kills the new master, not the old address.
	Replicas() []model.SwitchID
}

// Action is one reversible world mutation. Apply installs the fault
// and returns an undo that removes it (nil when there is nothing to
// reverse). Actions must be deterministic: any choice that depends on
// live state (e.g. "the current designated switch") is resolved at
// Apply time from the Harness, never from a private random source.
type Action interface {
	Apply(h Harness) (undo func())
	String() string
}

// Event places an Action on the plan timeline. At is the virtual time
// the action applies; For is how long it stays applied before the undo
// runs (0 = permanent for actions with no natural end, e.g. Func).
type Event struct {
	At     time.Duration
	For    time.Duration
	Action Action
}

// Plan is a scripted fault scenario: a named, ordered set of timed
// events. Plans are pure data — build them up front, then Schedule
// against a Harness.
type Plan struct {
	Name   string
	Events []Event
}

// Add appends an event and returns the plan for chaining.
func (p *Plan) Add(at, dur time.Duration, a Action) *Plan {
	p.Events = append(p.Events, Event{At: at, For: dur, Action: a})
	return p
}

// Merge appends every event of the given plans onto p.
func (p *Plan) Merge(plans ...*Plan) *Plan {
	for _, q := range plans {
		p.Events = append(p.Events, q.Events...)
	}
	return p
}

// End returns the virtual time the last fault is undone — the earliest
// moment the convergence clock may start.
func (p *Plan) End() time.Duration {
	var end time.Duration
	for _, ev := range p.Events {
		if t := ev.At + ev.For; t > end {
			end = t
		}
	}
	return end
}

// Schedule arms every event on the harness's simulator. Event times
// are absolute virtual times; events already in the past apply
// immediately. Undo callbacks are scheduled when the fault fires, so a
// crash of a switch resolved at fire time restarts that same switch.
func (p *Plan) Schedule(h Harness) {
	now := h.Now()
	for i := range p.Events {
		ev := p.Events[i]
		delay := ev.At - now
		if delay < 0 {
			delay = 0
		}
		h.After(delay, func() {
			undo := ev.Action.Apply(h)
			if undo != nil && ev.For > 0 {
				h.After(ev.For, undo)
			}
		})
	}
}

// Describe renders the timeline for logs and docs.
func (p *Plan) Describe() string {
	evs := make([]Event, len(p.Events))
	copy(evs, p.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	s := fmt.Sprintf("plan %q (%d events, ends %v):\n", p.Name, len(evs), p.End())
	for _, ev := range evs {
		if ev.For > 0 {
			s += fmt.Sprintf("  %8v +%v  %s\n", ev.At, ev.For, ev.Action)
		} else {
			s += fmt.Sprintf("  %8v       %s\n", ev.At, ev.Action)
		}
	}
	return s
}
