package chaos

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"strings"
	"time"

	"lazyctrl/internal/controller"
	"lazyctrl/internal/edge"
	"lazyctrl/internal/fib"
	"lazyctrl/internal/model"
	"lazyctrl/internal/openflow"
)

// DefaultRecoveryRoundBound is the documented convergence bound, in
// dissemination/report rounds (one round = max(advertise interval,
// report interval)), within which every view must reach the fault-free
// fixpoint after the last fault is undone. Derivation
// (docs/robustness.md): the slowest repair path is a full-snapshot
// refresh that only fires every refreshEveryRounds(=10) advertisement
// rounds — idle anti-entropy for a lost bootstrap, advSinceFull for a
// lost increment chain — and up to three such cycles can stack
// (member→designated advertisement, designated→member dissemination,
// designated→controller report), plus a few rounds of slack for
// push-retry backoff and keep-alive-driven resurrection.
const DefaultRecoveryRoundBound = 35

// World wires the convergence-invariant checker to a running stack.
// The checker compares every live view against the ground truth the
// host directory defines, so it detects both missing state (a lost
// snapshot never repaired) and ghost state (a tombstoned filter
// resurrected, a dead switch's bindings lingering in the C-LIB).
type World struct {
	Controller *controller.Controller
	// Replicas lists the controller replicas of a replicated stack;
	// when set, the controller-side invariants resolve the active
	// master dynamically (and Diverged asserts exactly one replica
	// holds the role at the fixpoint). Leave empty for a
	// single-controller stack driven through Controller.
	Replicas []*controller.Controller
	Switches map[model.SwitchID]*edge.Switch
	// Hosts returns the ground-truth bindings attached to a switch
	// (the hypervisor's view — what every converged table must show).
	Hosts func(sw model.SwitchID) []openflow.LFIBEntry
	// Down reports whether a switch is currently crashed; down
	// switches are exempt from the live invariants.
	Down func(sw model.SwitchID) bool
	// Flight, when set, returns a node's flight-recorder tail (its last
	// protocol events, oldest first — telemetry.Flight.Tail). Diverged
	// appends each violating node's tail to its report, so an invariant
	// violation dumps the wire history that led up to it.
	Flight func(sw model.SwitchID) []string
	// FilterBits/FilterHashes override the G-FIB Bloom geometry used
	// to build reference filters (zero = fib defaults).
	FilterBits   uint64
	FilterHashes uint32

	// maxSeen tracks the highest G-FIB filter version each holder ever
	// held per peer, and the highest C-LIB version per switch (keyed by
	// replica address), across Probe calls — the
	// no-stale-epoch-adoption invariant is "these never regress".
	maxSeen map[[2]model.SwitchID]uint64
	// genSeen tracks the highest cluster generation each holder (edge
	// or replica) ever observed; the failover fencing invariant is
	// "generations never regress within an incarnation" (an edge reboot
	// legitimately resets its fence, detected via the L-FIB epoch).
	genSeen map[model.SwitchID]genMark
	// emptyRef caches the empty-set filter encoding (see emptyFilter).
	emptyRef []byte
}

// genMark is one holder's generation high-water mark, tagged with the
// L-FIB incarnation epoch it was observed in (always 0 for replicas —
// controller replicas do not reboot).
type genMark struct {
	epoch uint64
	gen   uint64
}

// activeController resolves the controller whose state the invariants
// compare against: the single static controller, or — replicated — the
// unique replica holding the master role (nil while zero or several
// do; Diverged reports that separately).
func (w *World) activeController() *controller.Controller {
	if len(w.Replicas) == 0 {
		return w.Controller
	}
	var m *controller.Controller
	for _, r := range w.Replicas {
		if r.IsMaster() {
			if m != nil {
				return nil
			}
			m = r
		}
	}
	return m
}

func (w *World) geometry() (uint64, uint32) {
	bits, hashes := w.FilterBits, w.FilterHashes
	if bits == 0 {
		bits = fib.DefaultFilterBits
	}
	if hashes == 0 {
		hashes = fib.DefaultFilterHashes
	}
	return bits, hashes
}

func (w *World) down(sw model.SwitchID) bool { return w.Down != nil && w.Down(sw) }

// emptyFilter returns (and caches) the byte encoding of the empty-set
// Bloom filter at the world's geometry.
func (w *World) emptyFilter() []byte {
	if w.emptyRef == nil {
		bits, hashes := w.geometry()
		w.emptyRef, _ = fib.FilterBytesFromWireEntries(nil, bits, hashes)
	}
	return w.emptyRef
}

func (w *World) ids() []model.SwitchID {
	out := make([]model.SwitchID, 0, len(w.Switches))
	for id := range w.Switches {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func entriesEqual(a, b []openflow.LFIBEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedEntries(in []openflow.LFIBEntry) []openflow.LFIBEntry {
	out := make([]openflow.LFIBEntry, len(in))
	copy(out, in)
	sort.Slice(out, func(i, j int) bool { return out[i].MAC.Uint64() < out[j].MAC.Uint64() })
	return out
}

// Diverged compares every live view against the fault-free fixpoint
// and returns one line per divergence (empty = converged). The
// fixpoint invariants, per live switch S with ground truth H(S):
//
//  1. S's L-FIB holds exactly H(S).
//  2. The C-LIB attributes exactly H(S) to S, at S's current L-FIB
//     version (content and version coherence).
//  3. The controller considers S alive and grouped, and S's group view
//     agrees with the controller's grouping on membership.
//  4. S's G-FIB holds exactly one filter per live, host-bearing group
//     peer, byte-identical to the filter computed from H(peer), tagged
//     with the peer's current L-FIB version — no missing filters, no
//     ghosts for dead or evicted peers, no stale content.
//
// A replicated stack (Replicas set) adds the role-handoff fixpoint:
// exactly one replica holds the master role, and every live switch
// follows that replica at its generation.
func (w *World) Diverged() []string {
	var out []string
	ctrl := w.activeController()
	if len(w.Replicas) > 0 {
		masters := 0
		for _, r := range w.Replicas {
			if r.IsMaster() {
				masters++
			}
		}
		if masters != 1 {
			out = append(out, fmt.Sprintf("controller: %d replicas hold the master role, want exactly 1", masters))
		}
	}
	bits, hashes := w.geometry()
	for _, id := range w.ids() {
		if w.down(id) {
			continue
		}
		sw := w.Switches[id]
		want := sortedEntries(w.Hosts(id))

		if got := sortedEntries(sw.LFIB().WireEntries()); !entriesEqual(got, want) {
			out = append(out, fmt.Sprintf("S%d: L-FIB has %d entries, ground truth %d", id, len(got), len(want)))
		}
		if ctrl != nil {
			if len(w.Replicas) > 0 {
				if m := sw.Master(); m != ctrl.NodeID() {
					out = append(out, fmt.Sprintf("S%d: follows controller %d, active master is %d", id, m, ctrl.NodeID()))
				}
				if g := sw.CtrlGeneration(); g != ctrl.Generation() {
					out = append(out, fmt.Sprintf("S%d: at generation %d, active master at %d", id, g, ctrl.Generation()))
				}
			}
			if got := ctrl.CLIB().EntriesOn(id); !entriesEqual(sortedEntries(got), want) {
				out = append(out, fmt.Sprintf("S%d: C-LIB attributes %d entries, ground truth %d", id, len(got), len(want)))
			}
			if v, lv := ctrl.CLIB().VersionOn(id), sw.LFIB().Version(); v != lv {
				out = append(out, fmt.Sprintf("S%d: C-LIB version %#x != L-FIB version %#x", id, v, lv))
			}
			if ctrl.IsDead(id) {
				out = append(out, fmt.Sprintf("S%d: controller still marks it dead", id))
			}
			if ctrl.Grouping().GroupOf(id) == model.NoGroup {
				out = append(out, fmt.Sprintf("S%d: ungrouped at the controller", id))
				continue
			}
		}

		group := sw.Group()
		if len(group.Members) == 0 {
			out = append(out, fmt.Sprintf("S%d: has no group view", id))
			continue
		}
		if ctrl != nil {
			ctrlMembers := ctrl.Grouping().Members(ctrl.Grouping().GroupOf(id))
			if !switchSetEqual(group.Members, ctrlMembers) {
				out = append(out, fmt.Sprintf("S%d: group view %v != controller grouping %v", id, group.Members, ctrlMembers))
			}
		}

		// G-FIB: exactly the live host-bearing peers, right bytes,
		// right versions.
		wantPeers := make(map[model.SwitchID]bool)
		memberSet := make(map[model.SwitchID]bool)
		for _, peer := range group.Members {
			memberSet[peer] = true
			if peer == id || w.down(peer) {
				continue
			}
			if _, ok := w.Switches[peer]; !ok {
				continue
			}
			if len(w.Hosts(peer)) == 0 {
				continue // a hostless peer never advertises, so no filter
			}
			wantPeers[peer] = true
		}
		held := sw.GFIB().SnapshotBytes()
		for peer := range wantPeers {
			data, ok := held[peer]
			if !ok {
				out = append(out, fmt.Sprintf("S%d: G-FIB missing filter for peer S%d", id, peer))
				continue
			}
			ref, err := fib.FilterBytesFromWireEntries(w.Hosts(peer), bits, hashes)
			if err != nil {
				out = append(out, fmt.Sprintf("S%d: reference filter for S%d: %v", id, peer, err))
				continue
			}
			if string(data) != string(ref) {
				out = append(out, fmt.Sprintf("S%d: G-FIB filter for S%d diverges from ground-truth bytes", id, peer))
			}
			if v, _ := sw.GFIB().PeerVersion(peer); v != w.Switches[peer].LFIB().Version() {
				out = append(out, fmt.Sprintf("S%d: G-FIB version for S%d is %#x, peer L-FIB at %#x",
					id, peer, v, w.Switches[peer].LFIB().Version()))
			}
		}
		for peer, data := range held {
			if wantPeers[peer] {
				continue
			}
			// The controller preloads an *empty* filter for a live,
			// hostless member (its C-LIB slice is empty). An empty
			// filter matches nothing, so it is semantically absence —
			// not a ghost.
			if _, live := w.Switches[peer]; live && !w.down(peer) && memberSet[peer] &&
				len(w.Hosts(peer)) == 0 && string(data) == string(w.emptyFilter()) {
				continue
			}
			out = append(out, fmt.Sprintf("S%d: G-FIB holds ghost filter for S%d", id, peer))
		}
	}
	sort.Strings(out)
	// With a flight recorder wired, follow the sorted violations with
	// each violating switch's protocol tail — the wire history that led
	// up to the bad state. Tails come after all violations (and only
	// when there are violations), so "no divergence" stays len == 0.
	if w.Flight != nil {
		var ids []model.SwitchID
		seen := make(map[model.SwitchID]bool)
		for _, v := range out {
			var id int
			if n, _ := fmt.Sscanf(v, "S%d:", &id); n == 1 && !seen[model.SwitchID(id)] {
				seen[model.SwitchID(id)] = true
				ids = append(ids, model.SwitchID(id))
			}
		}
		for _, id := range ids {
			for _, line := range w.Flight(id) {
				out = append(out, fmt.Sprintf("flight S%d: %s", id, line))
			}
		}
	}
	return out
}

func switchSetEqual(a, b []model.SwitchID) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]model.SwitchID(nil), a...)
	bs := append([]model.SwitchID(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// Probe samples the version state mid-run and returns violations of
// the no-stale-adoption invariant: a G-FIB filter version or C-LIB
// switch version that regressed since an earlier Probe means a view
// adopted a snapshot from a superseded epoch/version, and a cluster
// generation that regressed within a holder's incarnation means a view
// applied a fenced (stale-master) message. Call it periodically while
// faults are active; absence of state (an evicted filter, a removed
// C-LIB switch) is not a regression — only adopting *older* state is,
// and an edge reboot (detected by its advanced L-FIB epoch)
// legitimately restarts its generation fence at zero.
func (w *World) Probe() []string {
	if w.maxSeen == nil {
		w.maxSeen = make(map[[2]model.SwitchID]uint64)
	}
	if w.genSeen == nil {
		w.genSeen = make(map[model.SwitchID]genMark)
	}
	var out []string
	ctrls := w.Replicas
	if len(ctrls) == 0 && w.Controller != nil {
		ctrls = []*controller.Controller{w.Controller}
	}
	for _, id := range w.ids() {
		if w.down(id) {
			continue
		}
		sw := w.Switches[id]
		for _, peer := range sw.GFIB().Peers() {
			v, _ := sw.GFIB().PeerVersion(peer)
			key := [2]model.SwitchID{id, peer}
			if prev := w.maxSeen[key]; v < prev {
				out = append(out, fmt.Sprintf("S%d: adopted stale filter for S%d: %#x after %#x (epoch %d < %d)",
					id, peer, v, prev, v>>fib.VersionEpochShift, prev>>fib.VersionEpochShift))
			} else {
				w.maxSeen[key] = v
			}
		}
		// C-LIB versions are tracked per replica: each mirror advances
		// on its own journal/report stream, and a standby legitimately
		// lags the master it mirrors.
		for _, r := range ctrls {
			key := [2]model.SwitchID{r.NodeID(), id}
			if v := r.CLIB().VersionOn(id); v != 0 {
				if prev := w.maxSeen[key]; v < prev {
					out = append(out, fmt.Sprintf("C-LIB(%d): adopted stale version for S%d: %#x after %#x", r.NodeID(), id, v, prev))
				} else {
					w.maxSeen[key] = v
				}
			}
		}
		if g := sw.CtrlGeneration(); g != 0 {
			ep := sw.LFIB().Version() >> fib.VersionEpochShift
			m, known := w.genSeen[id]
			switch {
			case known && ep == m.epoch && g < m.gen:
				out = append(out, fmt.Sprintf("S%d: regressed to generation %d after %d — applied a fenced message", id, g, m.gen))
			default:
				w.genSeen[id] = genMark{epoch: ep, gen: g}
			}
		}
	}
	// Replica generations are strictly monotone: controllers do not
	// reboot, and adoptGeneration only moves up.
	for _, r := range w.Replicas {
		g := r.Generation()
		if m, known := w.genSeen[r.NodeID()]; known && g < m.gen {
			out = append(out, fmt.Sprintf("controller %d: generation regressed to %d after %d", r.NodeID(), g, m.gen))
		} else {
			w.genSeen[r.NodeID()] = genMark{gen: g}
		}
	}
	sort.Strings(out)
	return out
}

// ResetProbe forgets the version and generation high-water marks —
// call after a deliberate epoch reset that legitimately rewinds
// versions (none of the shipped scenarios need it; reboots only
// advance epochs).
func (w *World) ResetProbe() { w.maxSeen, w.genSeen = nil, nil }

// Snapshot renders the content fixpoint as a canonical string:
// grouping structure, designated roles, every L-FIB binding, C-LIB
// attribution, and G-FIB filter bytes (hashed), all in sorted order.
// Versions and epochs are deliberately excluded — a faulted run reaches
// the same *content* fixpoint at higher epochs — and so are the master
// identity and cluster generation: a failover run converges with the
// standby ruling at a higher generation, yet must reach the same
// content fixpoint as the fault-free run. So a fault-free run and a
// faulted run of the same seed must produce byte-identical snapshots
// once converged (the differential acceptance test). Version, role,
// and generation coherence are checked separately, within-run, by
// Diverged and Probe.
func (w *World) Snapshot() string {
	ctrl := w.activeController()
	var b strings.Builder
	for _, id := range w.ids() {
		if w.down(id) {
			continue
		}
		sw := w.Switches[id]
		group := sw.Group()
		members := append([]model.SwitchID(nil), group.Members...)
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		fmt.Fprintf(&b, "S%d group=%d designated=%d members=%v\n", id, group.Group, group.Designated, members)
		for _, e := range sortedEntries(sw.LFIB().WireEntries()) {
			fmt.Fprintf(&b, "  lfib %s %s %d\n", e.MAC, e.IP, e.VLAN)
		}
		held := sw.GFIB().SnapshotBytes()
		peers := make([]model.SwitchID, 0, len(held))
		for p := range held {
			// An empty filter is semantically absence (see Diverged);
			// whether one lingers depends on preload/tombstone history,
			// so it must not influence the content fixpoint.
			if string(held[p]) == string(w.emptyFilter()) {
				continue
			}
			peers = append(peers, p)
		}
		sort.Slice(peers, func(i, j int) bool { return peers[i] < peers[j] })
		for _, p := range peers {
			fmt.Fprintf(&b, "  gfib S%d %x\n", p, sha256.Sum256(held[p]))
		}
		if ctrl != nil {
			for _, e := range sortedEntries(ctrl.CLIB().EntriesOn(id)) {
				fmt.Fprintf(&b, "  clib %s %s %d\n", e.MAC, e.IP, e.VLAN)
			}
		}
	}
	return b.String()
}

// Settle runs the convergence loop: advance the clock one round at a
// time (via step) until Diverged returns empty or maxRounds is
// exhausted. Returns the rounds consumed, whether the world converged,
// and the last divergence list (nil when converged).
func (w *World) Settle(maxRounds int, step func(round time.Duration), round time.Duration) (int, bool, []string) {
	var last []string
	for r := 1; r <= maxRounds; r++ {
		step(round)
		last = w.Diverged()
		if len(last) == 0 {
			return r, true, nil
		}
	}
	return maxRounds, false, last
}
