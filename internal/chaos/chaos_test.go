package chaos

import (
	"strings"
	"testing"
	"time"

	"lazyctrl/internal/edge"
	"lazyctrl/internal/failover"
	"lazyctrl/internal/fib"
	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/openflow"
	"lazyctrl/internal/sim"
	"lazyctrl/internal/telemetry"
)

// fakeHarness drives plans against a bare simulator, recording the
// crash/restart sequence.
type fakeHarness struct {
	s          *sim.Simulator
	net        *netsim.Network
	crashed    []model.SwitchID
	restarted  []model.SwitchID
	ctrlDown   int
	ctrlUp     int
	designated model.SwitchID
}

func newFakeHarness() *fakeHarness {
	s := sim.New(1)
	return &fakeHarness{s: s, net: netsim.New(s, netsim.DefaultLatencies()), designated: 2}
}

func (h *fakeHarness) Now() time.Duration               { return h.s.Now().Duration() }
func (h *fakeHarness) After(d time.Duration, fn func()) { h.s.After(d, fn) }
func (h *fakeHarness) Net() *netsim.Network             { return h.net }
func (h *fakeHarness) Switches() []model.SwitchID       { return []model.SwitchID{1, 2, 3} }
func (h *fakeHarness) GroupPeers(model.SwitchID) []model.SwitchID {
	return []model.SwitchID{1, 2, 3}
}
func (h *fakeHarness) Designated(model.SwitchID) model.SwitchID { return h.designated }
func (h *fakeHarness) Crash(sw model.SwitchID)                  { h.crashed = append(h.crashed, sw) }
func (h *fakeHarness) Restart(sw model.SwitchID)                { h.restarted = append(h.restarted, sw) }
func (h *fakeHarness) CrashController()                         { h.ctrlDown++ }
func (h *fakeHarness) RestartController()                       { h.ctrlUp++ }
func (h *fakeHarness) Replicas() []model.SwitchID {
	return []model.SwitchID{model.ControllerNode}
}

func TestPlanScheduleAppliesAndUndoes(t *testing.T) {
	h := newFakeHarness()
	p := &Plan{Name: "t"}
	p.Add(10*time.Second, 5*time.Second, Crash{Switch: 1})
	p.Add(12*time.Second, 3*time.Second, ControllerBlackout{})
	if got := p.End(); got != 15*time.Second {
		t.Fatalf("End() = %v, want 15s", got)
	}
	p.Schedule(h)

	h.s.RunFor(11 * time.Second)
	if len(h.crashed) != 1 || h.crashed[0] != 1 || len(h.restarted) != 0 {
		t.Fatalf("at 11s: crashed=%v restarted=%v", h.crashed, h.restarted)
	}
	h.s.RunFor(9 * time.Second)
	if len(h.restarted) != 1 || h.restarted[0] != 1 {
		t.Fatalf("crash not undone: restarted=%v", h.restarted)
	}
	if h.ctrlDown != 1 || h.ctrlUp != 1 {
		t.Fatalf("controller blackout down=%d up=%d, want 1/1", h.ctrlDown, h.ctrlUp)
	}
}

func TestCrashDesignatedResolvesAtFireTime(t *testing.T) {
	h := newFakeHarness()
	p := (&Plan{}).Add(10*time.Second, 5*time.Second, CrashDesignated{Of: 1})
	p.Schedule(h)
	// The designated role rotates before the event fires; the action
	// must kill (and later restart) the role holder at fire time.
	h.s.After(5*time.Second, func() { h.designated = 3 })
	h.s.RunFor(20 * time.Second)
	if len(h.crashed) != 1 || h.crashed[0] != 3 {
		t.Fatalf("crashed %v, want [3]", h.crashed)
	}
	if len(h.restarted) != 1 || h.restarted[0] != 3 {
		t.Fatalf("restarted %v, want [3]", h.restarted)
	}
}

func TestRandomizedDeterministic(t *testing.T) {
	sw := []model.SwitchID{1, 2, 3, 4, 5}
	a := Randomized(42, sw, 0, time.Hour, 40).Describe()
	b := Randomized(42, sw, 0, time.Hour, 40).Describe()
	if a != b {
		t.Fatal("same seed produced different plans")
	}
	c := Randomized(43, sw, 0, time.Hour, 40).Describe()
	if a == c {
		t.Fatal("different seeds produced identical plans")
	}
	if !strings.Contains(a, "crash") && !strings.Contains(a, "fault") {
		t.Fatalf("randomized plan looks empty:\n%s", a)
	}
}

func TestMergeAndDescribe(t *testing.T) {
	p := (&Plan{Name: "merged"}).Merge(
		ControllerOutage(time.Minute, 30*time.Second),
		FlappingControlLink(7, 0, 10*time.Second, 3),
	)
	if len(p.Events) != 4 {
		t.Fatalf("merged %d events, want 4", len(p.Events))
	}
	d := p.Describe()
	if !strings.Contains(d, "controller blackout") || !strings.Contains(d, "S7") {
		t.Fatalf("Describe missing actions:\n%s", d)
	}
}

// miniWorld wires a 3-switch group (no live controller) for the
// checker tests, mirroring the edge test rig.
type ctrlSink struct{}

func (ctrlSink) NodeID() model.SwitchID { return model.ControllerNode }
func (ctrlSink) HandleMessage(from model.SwitchID, msg netsim.Message) {
	netsim.HandleTimer(msg)
}

func miniWorld(t *testing.T) (*sim.Simulator, *netsim.Network, *World) {
	t.Helper()
	s := sim.New(1)
	n := netsim.New(s, netsim.DefaultLatencies())
	n.Attach(ctrlSink{})
	members := []model.SwitchID{1, 2, 3}
	switches := make(map[model.SwitchID]*edge.Switch)
	hosts := make(map[model.SwitchID][]openflow.LFIBEntry)
	for _, id := range members {
		sw := edge.New(edge.Config{ID: id}, n.Env(id))
		h := model.HostID(10 * uint64(id))
		sw.AttachHost(model.HostMAC(h), model.HostIP(h), 1)
		hosts[id] = []openflow.LFIBEntry{{MAC: model.HostMAC(h), IP: model.HostIP(h), VLAN: 1}}
		n.Attach(sw)
		sw.Start()
		switches[id] = sw
	}
	wheel := failover.BuildWheel(members)
	for _, id := range members {
		prev, next := failover.Neighbors(wheel, id)
		switches[id].HandleMessage(model.ControllerNode, &openflow.GroupConfig{
			Group: 1, Members: members, Designated: 2,
			RingPrev: prev, RingNext: next,
			SyncInterval: 5 * time.Second, KeepAliveInterval: time.Second,
			Version: 1,
		})
	}
	w := &World{
		Switches: switches,
		Hosts:    func(sw model.SwitchID) []openflow.LFIBEntry { return hosts[sw] },
		Down:     n.NodeDown,
	}
	return s, n, w
}

func TestWorldConvergesAndDetectsTampering(t *testing.T) {
	s, _, w := miniWorld(t)
	s.RunFor(30 * time.Second)
	if div := w.Diverged(); len(div) != 0 {
		t.Fatalf("fault-free world diverged:\n%s", strings.Join(div, "\n"))
	}
	snap := w.Snapshot()
	if !strings.Contains(snap, "S1 group=1") || !strings.Contains(snap, "gfib S2") {
		t.Fatalf("snapshot missing structure:\n%s", snap)
	}

	// Ghost filter: a tombstoned peer resurrected out of thin air.
	ghost, err := fib.FilterBytesFromWireEntries(w.Hosts(2), fib.DefaultFilterBits, fib.DefaultFilterHashes)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Switches[1].GFIB().SetFilterBytes(99, ghost, 1); err != nil {
		t.Fatal(err)
	}
	div := w.Diverged()
	if len(div) == 0 || !strings.Contains(strings.Join(div, "\n"), "ghost") {
		t.Fatalf("ghost filter not detected: %v", div)
	}
	w.Switches[1].GFIB().RemoveFilter(99)

	// Missing filter.
	w.Switches[1].GFIB().RemoveFilter(3)
	div = w.Diverged()
	if len(div) == 0 || !strings.Contains(strings.Join(div, "\n"), "missing filter") {
		t.Fatalf("missing filter not detected: %v", div)
	}
}

func TestWorldProbeFlagsVersionRegression(t *testing.T) {
	s, _, w := miniWorld(t)
	s.RunFor(30 * time.Second)
	if v := w.Probe(); len(v) != 0 {
		t.Fatalf("first probe flagged: %v", v)
	}
	// Rewind S1's view of S3 to a pre-epoch version: a stale-snapshot
	// adoption the invariant forbids.
	cur, _ := w.Switches[1].GFIB().PeerVersion(3)
	data := w.Switches[1].GFIB().SnapshotBytes()[3]
	if err := w.Switches[1].GFIB().SetFilterBytes(3, data, cur-1); err != nil {
		t.Fatal(err)
	}
	v := w.Probe()
	if len(v) == 0 || !strings.Contains(v[0], "stale") {
		t.Fatalf("version regression not flagged: %v", v)
	}
}

// TestDivergedEmbedsFlightTail forces an invariant violation in a world
// with flight recorders wired and checks that the report embeds the
// violating node's protocol tail — and that the whole dump, tail
// included, is deterministic across identical runs.
func TestDivergedEmbedsFlightTail(t *testing.T) {
	run := func() []string {
		s, n, w := miniWorld(t)
		flights := make(map[model.SwitchID]*telemetry.Flight)
		ring := func(id model.SwitchID) *telemetry.Flight {
			f := flights[id]
			if f == nil {
				f = telemetry.NewFlight(0)
				flights[id] = f
			}
			return f
		}
		n.Observer = func(from, to model.SwitchID, msg netsim.Message, delivered bool) {
			om, ok := msg.(openflow.Message)
			if !ok {
				return
			}
			ev := telemetry.FlightEvent{At: s.Now().Duration(), Type: uint8(om.MsgType())}
			if delivered {
				ev.Peer = int64(from)
				ring(to).Record(ev)
			} else {
				ev.Sent, ev.Peer = true, int64(to)
				ring(from).Record(ev)
			}
		}
		w.Flight = func(sw model.SwitchID) []string { return flights[sw].Tail() }
		s.RunFor(30 * time.Second)
		w.Switches[1].GFIB().RemoveFilter(3)
		return w.Diverged()
	}

	div := run()
	joined := strings.Join(div, "\n")
	if !strings.Contains(joined, "missing filter") {
		t.Fatalf("violation not detected:\n%s", joined)
	}
	var tail int
	for _, line := range div {
		if strings.HasPrefix(line, "flight S1: ") {
			tail++
		}
	}
	if tail == 0 {
		t.Fatalf("no flight tail for the violating switch:\n%s", joined)
	}
	if again := strings.Join(run(), "\n"); again != joined {
		t.Fatalf("flight dump not deterministic:\n--- first\n%s\n--- second\n%s", joined, again)
	}
}
