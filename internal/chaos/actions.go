package chaos

import (
	"fmt"

	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
)

// Fault installs a netsim.FaultRule (loss, extra delay/jitter,
// reordering) for the event window. Zero endpoints wildcard.
type Fault struct {
	Rule netsim.FaultRule
}

func (a Fault) Apply(h Harness) func() { return h.Net().AddFault(a.Rule) }

func (a Fault) String() string {
	return fmt.Sprintf("fault S%d<->S%d loss=%.2f delay=%v reorder=%.2f",
		a.Rule.A, a.Rule.B, a.Rule.Loss, a.Rule.ExtraDelay, a.Rule.ReorderProb)
}

// Partition splits the underlay bidirectionally: no message crosses
// between side A and side B while the event is active.
type Partition struct {
	A, B []model.SwitchID
}

func (a Partition) Apply(h Harness) func() { return h.Net().Partition(a.A, a.B) }

func (a Partition) String() string {
	return fmt.Sprintf("partition %v | %v", a.A, a.B)
}

// ControlCut partitions the members of Of's group (resolved at fire
// time) from the controller: keep-alives, reports, pushes, and
// PacketIns all black-hole while active. Peer links stay up, so the
// group keeps disseminating among itself — the scenario the edge
// degraded mode (flood fallback, serve-stale-while-resyncing) exists
// for.
type ControlCut struct {
	Of model.SwitchID
}

func (a ControlCut) Apply(h Harness) func() {
	members := h.GroupPeers(a.Of)
	if len(members) == 0 {
		members = []model.SwitchID{a.Of}
	}
	return h.Net().Partition(members, []model.SwitchID{model.ControllerNode})
}

func (a ControlCut) String() string {
	return fmt.Sprintf("control-link cut for S%d's group", a.Of)
}

// LinkDown hard-fails one link for the event window.
type LinkDown struct {
	A, B model.SwitchID
}

func (a LinkDown) Apply(h Harness) func() {
	h.Net().FailLink(a.A, a.B)
	return func() { h.Net().HealLink(a.A, a.B) }
}

func (a LinkDown) String() string { return fmt.Sprintf("link S%d<->S%d down", a.A, a.B) }

// Crash fails an edge switch; the undo restarts it cold (volatile
// state wiped, L-FIB epoch advanced, hosts re-attached).
type Crash struct {
	Switch model.SwitchID
}

func (a Crash) Apply(h Harness) func() {
	h.Crash(a.Switch)
	return func() { h.Restart(a.Switch) }
}

func (a Crash) String() string { return fmt.Sprintf("crash S%d", a.Switch) }

// CrashDesignated crashes whichever switch is the designated of Of's
// group at fire time — the "designated dies mid-regroup" move, where
// the victim cannot be named when the plan is built because failover
// may already have rotated the role.
type CrashDesignated struct {
	Of model.SwitchID
}

func (a CrashDesignated) Apply(h Harness) func() {
	d := h.Designated(a.Of)
	if d == model.NoSwitch {
		d = a.Of
	}
	h.Crash(d)
	return func() { h.Restart(d) }
}

func (a CrashDesignated) String() string {
	return fmt.Sprintf("crash designated of S%d's group", a.Of)
}

// ControllerBlackout takes the central controller off the underlay for
// the event window.
type ControllerBlackout struct{}

func (ControllerBlackout) Apply(h Harness) func() {
	h.CrashController()
	return func() { h.RestartController() }
}

func (ControllerBlackout) String() string { return "controller blackout" }

// ControllerFailover fails the replica currently holding the master
// role (resolved at fire time) off the underlay: its timers keep
// running but every message to or from it drops, the standby's watch
// heartbeats go unanswered, and after TakeoverMisses intervals the
// standby takes over under a bumped cluster generation. The undo heals
// the old master, which returns believing it still rules — the fabric
// fences its stale pushes and its corrective demotion is the
// generation-handoff invariant under test. No-op without a standby.
type ControllerFailover struct{}

func (ControllerFailover) Apply(h Harness) func() {
	reps := h.Replicas()
	if len(reps) < 2 {
		return nil
	}
	master := reps[0]
	h.Net().FailNode(master)
	return func() { h.Net().HealNode(master) }
}

func (ControllerFailover) String() string { return "controller failover (fail master replica)" }

// SplitBrain isolates the master replica from everything — standby and
// fabric alike. The standby takes over; the old master keeps "ruling" a
// world that cannot hear it. On heal the stale master's first contact
// (peer heartbeat, journal record, or fenced push) carries the higher
// generation back and demotes it. No-op without a standby.
type SplitBrain struct{}

func (SplitBrain) Apply(h Harness) func() {
	reps := h.Replicas()
	if len(reps) < 2 {
		return nil
	}
	others := append([]model.SwitchID(nil), reps[1:]...)
	others = append(others, h.Switches()...)
	return h.Net().Partition(reps[:1], others)
}

func (SplitBrain) String() string { return "split-brain (isolate master replica)" }

// StaleMasterStorm partitions the master from its standby only: both
// replicas keep full fabric connectivity, the standby declares the
// master dead and takes over, and two masters push concurrently. Edges
// must follow the higher generation, fence every push of the stale one,
// and the corrective RoleAnnounce echo — not the (cut) replica link —
// is what demotes the loser. No-op without a standby.
type StaleMasterStorm struct{}

func (StaleMasterStorm) Apply(h Harness) func() {
	reps := h.Replicas()
	if len(reps) < 2 {
		return nil
	}
	return h.Net().Partition(reps[:1], reps[1:])
}

func (StaleMasterStorm) String() string { return "stale-master storm (cut replica link)" }

// Func is an escape hatch for bespoke scenario steps. Run may return
// nil when there is nothing to undo.
type Func struct {
	Name string
	Run  func(h Harness) (undo func())
}

func (a Func) Apply(h Harness) func() { return a.Run(h) }

func (a Func) String() string { return a.Name }

// GroupLoss installs correlated burst loss on every peer link of Of's
// group (membership resolved at fire time) without touching control
// links — the in-group loss storm of the cascade scenario.
type GroupLoss struct {
	Of   model.SwitchID
	Loss float64
}

func (a GroupLoss) Apply(h Harness) func() {
	members := h.GroupPeers(a.Of)
	var undos []func()
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			undos = append(undos, h.Net().AddFault(netsim.FaultRule{
				A: members[i], B: members[j], Loss: a.Loss,
			}))
		}
	}
	return func() {
		for _, u := range undos {
			u()
		}
	}
}

func (a GroupLoss) String() string {
	return fmt.Sprintf("burst loss %.2f across S%d's group", a.Loss, a.Of)
}
