package trace

import (
	"testing"
	"time"

	"lazyctrl/internal/model"
)

func smallTrace(t testing.TB, seed uint64) *Trace {
	t.Helper()
	tr, err := Generate(SmallConfig("small", seed))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return tr
}

func TestGenerateBasicShape(t *testing.T) {
	tr := smallTrace(t, 1)
	if tr.NumFlows() != 40_000 {
		t.Errorf("NumFlows = %d, want 40000", tr.NumFlows())
	}
	if tr.Directory.NumTenants() != 12 {
		t.Errorf("tenants = %d, want 12", tr.Directory.NumTenants())
	}
	// Sorted by start, all within duration.
	for i := 1; i < len(tr.Flows); i++ {
		if tr.Flows[i].Start < tr.Flows[i-1].Start {
			t.Fatal("flows not sorted by start time")
		}
	}
	for i := range tr.Flows {
		f := &tr.Flows[i]
		if f.Start < 0 || f.Start >= tr.Duration {
			t.Fatalf("flow %d start %v outside [0,%v)", i, f.Start, tr.Duration)
		}
		if f.Src == f.Dst {
			t.Fatalf("flow %d is a self-flow", i)
		}
		if f.Bytes <= 0 || f.Packets <= 0 {
			t.Fatalf("flow %d has empty payload", i)
		}
		if tr.Directory.Host(f.Src) == nil || tr.Directory.Host(f.Dst) == nil {
			t.Fatalf("flow %d references unknown hosts", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := smallTrace(t, 9), smallTrace(t, 9)
	if a.NumFlows() != b.NumFlows() {
		t.Fatal("flow counts differ")
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatalf("flow %d differs: %+v vs %+v", i, a.Flows[i], b.Flows[i])
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	cfg := SmallConfig("bad", 1)
	cfg.Switches = 1
	if _, err := Generate(cfg); err == nil {
		t.Error("1 switch accepted")
	}
	cfg = SmallConfig("bad", 1)
	cfg.Scale = 0
	if _, err := Generate(cfg); err == nil {
		t.Error("Scale 0 accepted")
	}
	cfg = SmallConfig("bad", 1)
	cfg.P = 120
	if _, err := Generate(cfg); err == nil {
		t.Error("P=120 accepted")
	}
	cfg = SmallConfig("bad", 1)
	cfg.CommunicatingPairs = 1
	if _, err := Generate(cfg); err == nil {
		t.Error("1 communicating pair accepted")
	}
}

func TestWindowAndReplay(t *testing.T) {
	tr := smallTrace(t, 2)
	h := tr.Duration / 24
	w := tr.Window(8*h, 10*h)
	for i := range w {
		if w[i].Start < 8*h || w[i].Start >= 10*h {
			t.Fatalf("window flow at %v outside [8h,10h)", w[i].Start)
		}
	}
	count := 0
	tr.Replay(8*h, 10*h, func(f Flow) { count++ })
	if count != len(w) {
		t.Errorf("Replay visited %d, want %d", count, len(w))
	}
	// Full-span window covers everything.
	if got := len(tr.Window(0, tr.Duration)); got != tr.NumFlows() {
		t.Errorf("full window = %d, want %d", got, tr.NumFlows())
	}
}

func TestDiurnalShape(t *testing.T) {
	tr := smallTrace(t, 3)
	h := tr.Duration / 24
	night := len(tr.Window(2*h, 4*h))
	evening := len(tr.Window(17*h, 19*h))
	if evening <= night {
		t.Errorf("diurnal profile missing: night=%d evening=%d", night, evening)
	}
}

func TestTopPairsShare(t *testing.T) {
	tr := smallTrace(t, 4)
	st := ComputeStats(tr)
	// p=90/q≈10 recipe: the pool-relative decile (10% of 500 pairs)
	// should carry ≈90% of flows.
	if share := TopPairsShare(tr, 50); share < 0.80 || share > 0.99 {
		t.Errorf("TopPairsShare(50) = %.3f, want ≈0.90", share)
	}
	if st.DistinctPairs == 0 || st.Flows != tr.NumFlows() {
		t.Errorf("stats = %+v", st)
	}
	if st.PossiblePairs <= int64(st.DistinctPairs) {
		t.Errorf("PossiblePairs = %d ≤ DistinctPairs = %d", st.PossiblePairs, st.DistinctPairs)
	}
	if st.TopDecileShare <= 0 || st.TopDecileShare > 1 {
		t.Errorf("TopDecileShare = %v outside (0,1]", st.TopDecileShare)
	}
	// Asking for more pairs than exist returns the full share.
	if share := TopPairsShare(tr, 1<<30); share != 1 {
		t.Errorf("TopPairsShare(all) = %v, want 1", share)
	}
}

func TestAverageCentralityHighForLocalTrace(t *testing.T) {
	tr := smallTrace(t, 5)
	c, err := AverageCentrality(tr, 5, 1)
	if err != nil {
		t.Fatalf("AverageCentrality: %v", err)
	}
	if c < 0.60 || c > 1.0 {
		t.Errorf("centrality = %.3f, want high (local trace)", c)
	}
}

// TestCentralityStable pins the determinism fix lazyvet's maporder
// analyzer forced: centrality accumulates floats and inserts graph
// edges in sorted pair order, never map-iteration order, so repeated
// runs over the same trace are bit-identical. (Before the fix, Go's
// per-range map order randomization made the low bits wander.)
func TestCentralityStable(t *testing.T) {
	tr := smallTrace(t, 9)
	first, err := AverageCentrality(tr, 5, 1)
	if err != nil {
		t.Fatalf("AverageCentrality: %v", err)
	}
	for i := 0; i < 5; i++ {
		c, err := AverageCentrality(tr, 5, 1)
		if err != nil {
			t.Fatalf("AverageCentrality run %d: %v", i, err)
		}
		if c != first {
			t.Fatalf("run %d: centrality = %v, want bit-identical %v", i, c, first)
		}
	}
}

func TestAverageCentralityValidation(t *testing.T) {
	tr := smallTrace(t, 6)
	if _, err := AverageCentrality(tr, 1, 1); err == nil {
		t.Error("k=1 accepted")
	}
}

func TestSwitchIntensity(t *testing.T) {
	tr := smallTrace(t, 7)
	m := SwitchIntensity(tr, 0, tr.Duration)
	if m.NumSwitches() != 24 {
		t.Errorf("NumSwitches = %d, want 24 (all registered)", m.NumSwitches())
	}
	if m.Total() <= 0 {
		t.Error("no intensity recorded")
	}
	// Total rate ≈ inter-switch flows / seconds.
	interSwitch := 0
	for i := range tr.Flows {
		f := &tr.Flows[i]
		if tr.Directory.Host(f.Src).Switch != tr.Directory.Host(f.Dst).Switch {
			interSwitch++
		}
	}
	want := float64(interSwitch) / tr.Duration.Seconds()
	if diff := m.Total() - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Total = %v, want %v", m.Total(), want)
	}
	// Empty window yields empty matrix.
	if m := SwitchIntensity(tr, time.Hour, time.Hour); m.Total() != 0 {
		t.Error("empty window has intensity")
	}
}

func TestExpand(t *testing.T) {
	base := smallTrace(t, 8)
	exp, err := Expand(base, 0.30, 8, 24, 99)
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	wantExtra := int(float64(base.NumFlows()) * 0.30)
	if got := exp.NumFlows() - base.NumFlows(); got != wantExtra {
		t.Errorf("extra flows = %d, want %d", got, wantExtra)
	}
	// Extra flows are all in hours [8,24) and between previously silent
	// pairs.
	baseKeys := make(map[model.FlowKey]struct{})
	for i := range base.Flows {
		baseKeys[model.FlowKey{Src: base.Flows[i].Src, Dst: base.Flows[i].Dst}.Canonical()] = struct{}{}
	}
	h := base.Duration / 24
	extraSeen := 0
	for i := range exp.Flows {
		f := &exp.Flows[i]
		key := model.FlowKey{Src: f.Src, Dst: f.Dst}.Canonical()
		if _, old := baseKeys[key]; old {
			continue
		}
		extraSeen++
		if f.Start < 8*h {
			t.Fatalf("extra flow at %v, want ≥ 8h", f.Start)
		}
	}
	if extraSeen != wantExtra {
		t.Errorf("extra flows between new pairs = %d, want %d", extraSeen, wantExtra)
	}
	// Expanded trace is sorted too.
	for i := 1; i < len(exp.Flows); i++ {
		if exp.Flows[i].Start < exp.Flows[i-1].Start {
			t.Fatal("expanded flows not sorted")
		}
	}
	if _, err := Expand(base, -1, 8, 24, 1); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := Expand(base, 0.3, 20, 8, 1); err == nil {
		t.Error("inverted hour window accepted")
	}
}

func TestExpandLowersLocality(t *testing.T) {
	base := smallTrace(t, 10)
	exp, err := Expand(base, 0.5, 0, 24, 11)
	if err != nil {
		t.Fatal(err)
	}
	cBase, err := AverageCentrality(base, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	cExp, err := AverageCentrality(exp, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cExp >= cBase {
		t.Errorf("expanded centrality %.3f ≥ base %.3f, want lower", cExp, cBase)
	}
}
