// Package trace models data-center traffic traces: the flow records the
// LazyCtrl evaluation replays, generators reproducing the paper's
// datasets (§V-B, Table II), and the analysis routines (centrality,
// locality, switch-pair intensity) behind the motivation section and
// every figure.
//
// The paper's "real" trace is proprietary; RealLike synthesizes a trace
// from its published statistics (272 switches, 6509 hosts, ~11.6k
// communicating pairs out of >20M, 90% of flows from 10% of pairs,
// 5-way centrality ≈ 0.85, day-long diurnal profile). Syn-A/B/C follow
// the paper's own recipe: p% of flows from a hot set of q% of the
// communicating pairs, the rest uniform over all host pairs, at 10×
// scale.
package trace

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"lazyctrl/internal/model"
	"lazyctrl/internal/tenant"
)

// Flow is one flow record: the first packet arrives at Start; the flow
// carries Bytes in Packets packets.
type Flow struct {
	Start   time.Duration
	Src     model.HostID
	Dst     model.HostID
	Bytes   int32
	Packets int16
}

// Trace is a complete traffic trace plus the topology it runs over.
type Trace struct {
	Name string
	// Duration is the trace span (24h for all paper traces).
	Duration time.Duration
	// Flows are sorted by Start.
	Flows []Flow
	// Directory holds tenants, hosts, and host→switch placement.
	Directory *tenant.Directory
	// P and Q are the Table II parameters (zero for the real-like trace).
	P, Q int
	// Scale is the divisor applied to the paper's flow count.
	Scale int
}

// NumFlows returns the number of flow records.
func (t *Trace) NumFlows() int { return len(t.Flows) }

// Window returns the flows with Start in [from, to), which are
// contiguous because flows are sorted.
func (t *Trace) Window(from, to time.Duration) []Flow {
	lo := sort.Search(len(t.Flows), func(i int) bool { return t.Flows[i].Start >= from })
	hi := sort.Search(len(t.Flows), func(i int) bool { return t.Flows[i].Start >= to })
	return t.Flows[lo:hi]
}

// Replay invokes fn for every flow in [from, to) in time order.
func (t *Trace) Replay(from, to time.Duration, fn func(f Flow)) {
	for _, f := range t.Window(from, to) {
		fn(f)
	}
}

// hourWeights is the diurnal load profile used by all generators: a
// production-DC shape with a night trough and business-hour plateau
// rising to an evening peak.
var hourWeights = [24]float64{
	0.45, 0.38, 0.34, 0.32, 0.33, 0.40, // 00–05
	0.55, 0.75, 0.95, 1.10, 1.20, 1.25, // 06–11
	1.22, 1.18, 1.20, 1.25, 1.30, 1.35, // 12–17
	1.40, 1.38, 1.25, 1.00, 0.75, 0.55, // 18–23
}

// sampleStart draws a flow start time from the diurnal profile.
func sampleStart(rng *rand.Rand, duration time.Duration, cum []float64) time.Duration {
	u := rng.Float64() * cum[len(cum)-1]
	hour := sort.SearchFloat64s(cum, u)
	if hour >= 24 {
		hour = 23
	}
	hourLen := duration / 24
	return time.Duration(hour)*hourLen + time.Duration(rng.Float64()*float64(hourLen))
}

func cumWeights() []float64 {
	cum := make([]float64, 24)
	acc := 0.0
	for i, w := range hourWeights {
		acc += w
		cum[i] = acc
	}
	return cum
}

// samplePayload draws a flow size: a heavy-tailed mix of short RPC-like
// flows and occasional bulk transfers, matching data-center flow-size
// measurements.
func samplePayload(rng *rand.Rand) (int32, int16) {
	u := rng.Float64()
	var bytes int32
	switch {
	case u < 0.70: // mice
		bytes = int32(200 + rng.IntN(2000))
	case u < 0.95: // medium
		bytes = int32(4_000 + rng.IntN(60_000))
	default: // elephants
		bytes = int32(100_000 + rng.IntN(1_900_000))
	}
	packets := int16(bytes/1400 + 1)
	if packets > 64 {
		packets = 64
	}
	return bytes, packets
}

// GeneratorConfig drives synthetic trace generation. Presets (RealLike,
// SynA/B/C) fill it with the paper's parameters.
type GeneratorConfig struct {
	Name     string
	Switches int
	Tenants  int
	// MinVMs/MaxVMs bound tenant sizes (paper: 20–100).
	MinVMs, MaxVMs int
	// TargetHosts trims or pads tenant sizes so that the topology holds
	// approximately this many hosts (0 = whatever Populate yields).
	TargetHosts int
	// PaperFlows is the unscaled flow count of the dataset; the
	// generator emits PaperFlows/Scale flows.
	PaperFlows int64
	Scale      int
	// CommunicatingPairs is the size of the communicating pair pool.
	CommunicatingPairs int
	// P is the percentage of flows drawn from the hot pair set; Q is the
	// hot set's share of the communicating pool (Table II labels).
	P, Q int
	// Locality splits the communicating pool into an intra-tenant band
	// (clusterable) and a scatter band modeling shared-service traffic:
	// pairs of (service hub, uniformly random host). Hub fan-out pins
	// hub edges across any balanced partition, so scatter flows are
	// structurally inter-group at every scale — the paper's full-scale
	// uniform "rest" flows have the same property through sheer density.
	// The hot set is Q% of the pool, drawn from the intra band.
	Locality float64
	// ScatterFlowFraction is the share of flows placed on the scatter
	// band's fixed pairs. NoiseFraction is the share of flows on pairs
	// drawn uniformly from all host pairs (one-off pairs, as in the
	// paper's synthetic recipe). The remaining
	// 1 − ScatterFlowFraction − NoiseFraction share is split between the
	// hot set (P%) and the cold intra band (100−P%). Scatter and noise
	// are what a balanced partition cannot avoid cutting; their shares
	// are calibrated per preset to reproduce the paper's measured
	// centralities at laptop scale (at the paper's full scale the
	// uniform rest is dense enough to be unclusterable by itself; at
	// reduced scale it degenerates into isolated clusterable edges, so
	// the share is carried by hub pairs instead).
	ScatterFlowFraction float64
	NoiseFraction       float64
	// ScatterPinExponent damps the coupling between scatter endpoints
	// and hot-pair pin weight: endpoints are sampled ∝ pinWeight^exp.
	// 1.0 pins scatter to the traffic core (right for the huge hot sets
	// of the synthetic traces); 0.5 spreads it to the mid-tier (right
	// for the compact hot set of the real trace, whose heaviest pairs
	// would otherwise be woven into an unclusterable core). Zero
	// defaults to 1.0.
	ScatterPinExponent float64
	// DriftAmplitude in [0,1) makes each hot pair wax and wane over the
	// day around a random phase, so the traffic pattern drifts and a
	// grouping computed from the first hour degrades over time (the
	// effect behind the static-vs-dynamic gap in Fig. 7). Zero disables
	// drift.
	DriftAmplitude float64
	// Colocation is passed to tenant placement.
	Colocation float64
	Duration   time.Duration
	Seed       uint64
}

func (c GeneratorConfig) validate() error {
	if c.Switches < 2 {
		return errors.New("trace: need ≥ 2 switches")
	}
	if c.Tenants < 1 || c.MinVMs < 2 || c.MaxVMs < c.MinVMs {
		return errors.New("trace: invalid tenant sizing")
	}
	if c.Scale < 1 {
		return errors.New("trace: Scale must be ≥ 1")
	}
	if c.PaperFlows < 1 {
		return errors.New("trace: PaperFlows must be ≥ 1")
	}
	if c.P < 0 || c.P > 100 || c.Q < 0 || c.Q > 100 {
		return errors.New("trace: P and Q are percentages")
	}
	if c.CommunicatingPairs < 2 {
		return errors.New("trace: need ≥ 2 communicating pairs")
	}
	if c.Locality < 0 || c.Locality > 1 {
		return errors.New("trace: Locality must lie in [0,1]")
	}
	if c.ScatterFlowFraction < 0 || c.NoiseFraction < 0 ||
		c.ScatterFlowFraction+c.NoiseFraction > 1+1e-9 {
		return errors.New("trace: ScatterFlowFraction + NoiseFraction must be ≤ 1")
	}
	if c.DriftAmplitude < 0 || c.DriftAmplitude >= 1 {
		return errors.New("trace: DriftAmplitude must lie in [0,1)")
	}
	return nil
}

// Generate produces a trace from the configuration.
func Generate(cfg GeneratorConfig) (*Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Duration == 0 {
		cfg.Duration = 24 * time.Hour
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x5bd1e9955bd1e995))

	// Topology: tenants and placement.
	switches := make([]model.SwitchID, cfg.Switches)
	for i := range switches {
		switches[i] = model.SwitchID(i + 1)
	}
	dir := tenant.NewDirectory(switches)
	if err := dir.Populate(tenant.PopulateConfig{
		Tenants:    cfg.Tenants,
		MinVMs:     cfg.MinVMs,
		MaxVMs:     cfg.MaxVMs,
		Colocation: cfg.Colocation,
		Seed:       cfg.Seed ^ 0xabcdef,
	}); err != nil {
		return nil, fmt.Errorf("trace: populate: %w", err)
	}
	numHosts := dir.NumHosts()

	// Communicating pair pool: an intra-tenant band (clusterable) and a
	// scatter band of uniformly random pairs (expander-like).
	seen := make(map[model.FlowKey]struct{}, cfg.CommunicatingPairs)
	tenantIDs := dir.TenantIDs()
	intraCount := int(float64(cfg.CommunicatingPairs) * cfg.Locality)
	scatterCount := cfg.CommunicatingPairs - intraCount
	addPair := func(dst []model.FlowKey, a, b model.HostID) []model.FlowKey {
		if a == b {
			return dst
		}
		k := model.FlowKey{Src: a, Dst: b}.Canonical()
		if _, dup := seen[k]; dup {
			return dst
		}
		seen[k] = struct{}{}
		return append(dst, k)
	}
	intra := make([]model.FlowKey, 0, intraCount)
	for len(intra) < intraCount {
		tn := dir.Tenant(tenantIDs[rng.IntN(len(tenantIDs))])
		if len(tn.Hosts) < 2 {
			continue
		}
		a := tn.Hosts[rng.IntN(len(tn.Hosts))]
		b := tn.Hosts[rng.IntN(len(tn.Hosts))]
		intra = addPair(intra, a, b)
	}
	rng.Shuffle(len(intra), func(i, j int) { intra[i], intra[j] = intra[j], intra[i] })

	hotCount := cfg.CommunicatingPairs * cfg.Q / 100
	if hotCount < 1 {
		hotCount = 1
	}
	if hotCount > len(intra) {
		hotCount = len(intra)
	}
	hot := intra[:hotCount]
	cold := intra[hotCount:]

	// Zipf(1) weights within the hot set: the heaviest communicating
	// pairs dominate, as in the real trace ("over 90% of the flows are
	// contributed by about 10% of the host pairs").
	hotCum := make([]float64, len(hot))
	acc := 0.0
	for i := range hot {
		acc += 1 / float64(i+1)
		hotCum[i] = acc
	}
	// Drift phases: each hot pair's activity is modulated by
	// 1 + A·cos(2π(t−φ)/D) around a per-pair random phase φ.
	var hotPhase []float64
	if cfg.DriftAmplitude > 0 {
		hotPhase = make([]float64, len(hot))
		for i := range hotPhase {
			hotPhase[i] = rng.Float64()
		}
	}
	sampleHot := func(at time.Duration) model.FlowKey {
		for {
			u := rng.Float64() * hotCum[len(hotCum)-1]
			i := sort.SearchFloat64s(hotCum, u)
			if hotPhase == nil {
				return hot[i]
			}
			frac := float64(at) / float64(cfg.Duration)
			mod := (1 + cfg.DriftAmplitude*math.Cos(2*math.Pi*(frac-hotPhase[i]))) / (1 + cfg.DriftAmplitude)
			if rng.Float64() < mod {
				return hot[i]
			}
		}
	}

	// Scatter band: cross-tenant service dependencies between uniformly
	// random tenant pairs, with endpoints drawn from hosts pinned by
	// heavy hot-pair traffic. At the tenant level this is a random
	// (expander) graph, so no balanced partition can co-locate more than
	// a small fraction of the dependent tenant pairs — the scatter flows
	// are structurally inter-group at every scale, mirroring the effect
	// of the paper's full-scale uniform "rest" flows, whose sheer
	// density makes them equally unclusterable.
	// Pin weight of a host: its expected hot-flow volume under the Zipf
	// ranking. Scatter endpoints are sampled proportionally to the
	// square root of pin weight: strong enough that no host (or tenant
	// block) profitably flips groups to dodge scatter edges, damped
	// enough that the heaviest hot pairs do not get woven into a single
	// unclusterable core whose split would cut hot traffic as well.
	pinWeight := make(map[model.HostID]float64, 2*len(hot))
	for r, k := range hot {
		w := 1 / float64(r+1)
		pinWeight[k.Src] += w
		pinWeight[k.Dst] += w
	}
	pinExp := cfg.ScatterPinExponent
	if pinExp == 0 {
		pinExp = 1
	}
	if pinExp != 1 {
		for h, w := range pinWeight {
			pinWeight[h] = math.Pow(w, pinExp)
		}
	}
	type tenantPins struct {
		id    model.TenantID
		hosts []model.HostID
		cum   []float64 // cumulative pin weights over hosts
		total float64
	}
	byTenant := make(map[model.TenantID]*tenantPins)
	for h := range pinWeight {
		tid := dir.Host(h).Tenant
		tp := byTenant[tid]
		if tp == nil {
			tp = &tenantPins{id: tid}
			byTenant[tid] = tp
		}
		tp.hosts = append(tp.hosts, h)
	}
	tenants := make([]*tenantPins, 0, len(byTenant))
	for _, tp := range byTenant {
		tenants = append(tenants, tp)
	}
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].id < tenants[j].id })
	tenantCum := make([]float64, len(tenants))
	var tenantTotal float64
	for i, tp := range tenants {
		sort.Slice(tp.hosts, func(a, b int) bool { return tp.hosts[a] < tp.hosts[b] })
		tp.cum = make([]float64, len(tp.hosts))
		for j, h := range tp.hosts {
			tp.total += pinWeight[h]
			tp.cum[j] = tp.total
		}
		tenantTotal += tp.total
		tenantCum[i] = tenantTotal
	}
	sampleTenant := func() *tenantPins {
		u := rng.Float64() * tenantTotal
		return tenants[sort.SearchFloat64s(tenantCum, u)]
	}
	sampleHost := func(tp *tenantPins) model.HostID {
		u := rng.Float64() * tp.total
		return tp.hosts[sort.SearchFloat64s(tp.cum, u)]
	}
	scatter := make([]model.FlowKey, 0, scatterCount)
	if len(tenants) >= 2 {
		for len(scatter) < scatterCount {
			ta, tb := sampleTenant(), sampleTenant()
			if ta.id == tb.id {
				continue
			}
			scatter = addPair(scatter, sampleHost(ta), sampleHost(tb))
		}
	}

	// Flow emission: p% hot, ScatterFlowFraction on the scatter band,
	// NoiseFraction uniform over all host pairs, remainder on the cold
	// intra band.
	total := int(cfg.PaperFlows / int64(cfg.Scale))
	if total < 1 {
		total = 1
	}
	scatterCut := cfg.ScatterFlowFraction
	noiseCut := scatterCut + cfg.NoiseFraction
	hotCut := noiseCut + (1-noiseCut)*float64(cfg.P)/100
	flows := make([]Flow, 0, total)
	cum := cumWeights()
	for i := 0; i < total; i++ {
		start := sampleStart(rng, cfg.Duration, cum)
		var key model.FlowKey
		u := rng.Float64()
		switch {
		case u < scatterCut && len(scatter) > 0:
			key = scatter[rng.IntN(len(scatter))]
		case u < noiseCut:
			for {
				a := model.HostID(1 + rng.IntN(numHosts))
				b := model.HostID(1 + rng.IntN(numHosts))
				if a != b {
					key = model.FlowKey{Src: a, Dst: b}
					break
				}
			}
		case u < hotCut || len(cold) == 0:
			key = sampleHot(start)
		default:
			key = cold[rng.IntN(len(cold))]
		}
		// Randomize direction.
		if rng.IntN(2) == 0 {
			key = model.FlowKey{Src: key.Dst, Dst: key.Src}
		}
		bytes, packets := samplePayload(rng)
		flows = append(flows, Flow{
			Start:   start,
			Src:     key.Src,
			Dst:     key.Dst,
			Bytes:   bytes,
			Packets: packets,
		})
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].Start < flows[j].Start })

	return &Trace{
		Name:      cfg.Name,
		Duration:  cfg.Duration,
		Flows:     flows,
		Directory: dir,
		P:         cfg.P,
		Q:         cfg.Q,
		Scale:     cfg.Scale,
	}, nil
}
