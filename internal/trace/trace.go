// Package trace models data-center traffic traces: the flow records the
// LazyCtrl evaluation replays, generators reproducing the paper's
// datasets (§V-B, Table II), and the analysis routines (centrality,
// locality, switch-pair intensity) behind the motivation section and
// every figure.
//
// The paper's "real" trace is proprietary; RealLike synthesizes a trace
// from its published statistics (272 switches, 6509 hosts, ~11.6k
// communicating pairs out of >20M, 90% of flows from 10% of pairs,
// 5-way centrality ≈ 0.85, day-long diurnal profile). Syn-A/B/C follow
// the paper's own recipe: p% of flows from a hot set of q% of the
// communicating pairs, the rest uniform over all host pairs, at 10×
// scale.
//
// Traces are produced as streams (see stream.go): the topology and
// communicating-pair pools are built once and shared read-only, while
// flows are emitted one time window at a time from a per-window random
// stream, so generation memory is flat in trace length. Generate is
// the materialized form — NewStream followed by Materialize.
package trace

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"slices"
	"sort"
	"time"

	"lazyctrl/internal/model"
	"lazyctrl/internal/tenant"
)

// Flow is one flow record: the first packet arrives at Start; the flow
// carries Bytes in Packets packets.
type Flow struct {
	Start   time.Duration
	Src     model.HostID
	Dst     model.HostID
	Bytes   int32
	Packets int16
}

// FlowBytes is the in-memory footprint of one Flow record, the unit of
// the streaming pipeline's peak-memory accounting (the benchmarks'
// peak-B/op metric, tracegen's peak-window figure). A test pins it to
// unsafe.Sizeof(Flow{}).
const FlowBytes = 24

// Trace is a complete traffic trace plus the topology it runs over.
type Trace struct {
	Name string
	// Duration is the trace span (24h for all paper traces).
	Duration time.Duration
	// Flows are sorted by Start.
	Flows []Flow
	// Directory holds tenants, hosts, and host→switch placement.
	Directory *tenant.Directory
	// P and Q are the Table II parameters (zero for the real-like trace).
	P, Q int
	// Scale is the divisor applied to the paper's flow count.
	Scale int
}

// NumFlows returns the number of flow records.
func (t *Trace) NumFlows() int { return len(t.Flows) }

// Window returns the flows with Start in [from, to), which are
// contiguous because flows are sorted.
func (t *Trace) Window(from, to time.Duration) []Flow {
	lo := sort.Search(len(t.Flows), func(i int) bool { return t.Flows[i].Start >= from })
	hi := sort.Search(len(t.Flows), func(i int) bool { return t.Flows[i].Start >= to })
	return t.Flows[lo:hi]
}

// Replay invokes fn for every flow in [from, to) in time order.
func (t *Trace) Replay(from, to time.Duration, fn func(f Flow)) {
	for _, f := range t.Window(from, to) {
		fn(f)
	}
}

// hourWeights is the diurnal load profile used by all generators: a
// production-DC shape with a night trough and business-hour plateau
// rising to an evening peak.
var hourWeights = [24]float64{
	0.45, 0.38, 0.34, 0.32, 0.33, 0.40, // 00–05
	0.55, 0.75, 0.95, 1.10, 1.20, 1.25, // 06–11
	1.22, 1.18, 1.20, 1.25, 1.30, 1.35, // 12–17
	1.40, 1.38, 1.25, 1.00, 0.75, 0.55, // 18–23
}

// samplePayload draws a flow size: a heavy-tailed mix of short RPC-like
// flows and occasional bulk transfers, matching data-center flow-size
// measurements.
func samplePayload(rng *rand.Rand) (int32, int16) {
	u := rng.Float64()
	var bytes int32
	switch {
	case u < 0.70: // mice
		bytes = int32(200 + rng.IntN(2000))
	case u < 0.95: // medium
		bytes = int32(4_000 + rng.IntN(60_000))
	default: // elephants
		bytes = int32(100_000 + rng.IntN(1_900_000))
	}
	packets := int16(bytes/1400 + 1)
	if packets > 64 {
		packets = 64
	}
	return bytes, packets
}

// GeneratorConfig drives synthetic trace generation. Presets (RealLike,
// SynA/B/C) fill it with the paper's parameters.
type GeneratorConfig struct {
	Name     string
	Switches int
	Tenants  int
	// MinVMs/MaxVMs bound tenant sizes (paper: 20–100).
	MinVMs, MaxVMs int
	// TargetHosts trims or pads tenant sizes so that the topology holds
	// approximately this many hosts (0 = whatever Populate yields).
	TargetHosts int
	// PaperFlows is the unscaled flow count of the dataset; the
	// generator emits PaperFlows/Scale flows.
	PaperFlows int64
	Scale      int
	// CommunicatingPairs is the size of the communicating pair pool.
	CommunicatingPairs int
	// P is the percentage of flows drawn from the hot pair set; Q is the
	// hot set's share of the communicating pool (Table II labels).
	P, Q int
	// Locality splits the communicating pool into an intra-tenant band
	// (clusterable) and a scatter band modeling shared-service traffic:
	// pairs of (service hub, uniformly random host). Hub fan-out pins
	// hub edges across any balanced partition, so scatter flows are
	// structurally inter-group at every scale — the paper's full-scale
	// uniform "rest" flows have the same property through sheer density.
	// The hot set is Q% of the pool, drawn from the intra band.
	Locality float64
	// ScatterFlowFraction is the share of flows placed on the scatter
	// band's fixed pairs. NoiseFraction is the share of flows on pairs
	// drawn uniformly from all host pairs (one-off pairs, as in the
	// paper's synthetic recipe). The remaining
	// 1 − ScatterFlowFraction − NoiseFraction share is split between the
	// hot set (P%) and the cold intra band (100−P%). Scatter and noise
	// are what a balanced partition cannot avoid cutting; their shares
	// are calibrated per preset to reproduce the paper's measured
	// centralities at laptop scale (at the paper's full scale the
	// uniform rest is dense enough to be unclusterable by itself; at
	// reduced scale it degenerates into isolated clusterable edges, so
	// the share is carried by hub pairs instead).
	ScatterFlowFraction float64
	NoiseFraction       float64
	// ScatterPinExponent damps the coupling between scatter endpoints
	// and hot-pair pin weight: endpoints are sampled ∝ pinWeight^exp.
	// 1.0 pins scatter to the traffic core (right for the huge hot sets
	// of the synthetic traces); 0.5 spreads it to the mid-tier (right
	// for the compact hot set of the real trace, whose heaviest pairs
	// would otherwise be woven into an unclusterable core). Zero
	// defaults to 1.0.
	ScatterPinExponent float64
	// DriftAmplitude in [0,1) makes each hot pair wax and wane over the
	// day around a random phase, so the traffic pattern drifts and a
	// grouping computed from the first hour degrades over time (the
	// effect behind the static-vs-dynamic gap in Fig. 7). Zero disables
	// drift.
	DriftAmplitude float64
	// Colocation is passed to tenant placement.
	Colocation float64
	Duration   time.Duration
	Seed       uint64
	// WindowsPerHour sets the streaming granularity: the trace is
	// partitioned into 24·WindowsPerHour windows. Zero selects the
	// smallest count that keeps the expected window under
	// targetWindowFlows (at least 1), so the per-window buffer stays a
	// few MB no matter how long the trace is. The window count is part
	// of the trace identity: equal (config, seed) ⇒ identical flows,
	// window by window.
	WindowsPerHour int
}

// targetWindowFlows is the auto-selected per-window flow budget: 64 Ki
// flows ≈ 1.5 MB of Flow records.
const targetWindowFlows = 1 << 16

// maxWindowsPerHour caps the window count (the per-window fixed costs —
// seeding, sorting dispatch — must stay negligible); beyond the cap
// windows simply grow past the target.
const maxWindowsPerHour = 4096

func (c GeneratorConfig) validate() error {
	if c.Switches < 2 {
		return errors.New("trace: need ≥ 2 switches")
	}
	if c.Tenants < 1 || c.MinVMs < 2 || c.MaxVMs < c.MinVMs {
		return errors.New("trace: invalid tenant sizing")
	}
	if c.Scale < 1 {
		return errors.New("trace: Scale must be ≥ 1")
	}
	if c.PaperFlows < 1 {
		return errors.New("trace: PaperFlows must be ≥ 1")
	}
	if c.P < 0 || c.P > 100 || c.Q < 0 || c.Q > 100 {
		return errors.New("trace: P and Q are percentages")
	}
	if c.CommunicatingPairs < 2 {
		return errors.New("trace: need ≥ 2 communicating pairs")
	}
	if c.Locality < 0 || c.Locality > 1 {
		return errors.New("trace: Locality must lie in [0,1]")
	}
	if c.ScatterFlowFraction < 0 || c.NoiseFraction < 0 ||
		c.ScatterFlowFraction+c.NoiseFraction > 1+1e-9 {
		return errors.New("trace: ScatterFlowFraction + NoiseFraction must be ≤ 1")
	}
	if c.DriftAmplitude < 0 || c.DriftAmplitude >= 1 {
		return errors.New("trace: DriftAmplitude must lie in [0,1)")
	}
	if c.WindowsPerHour < 0 || c.WindowsPerHour > maxWindowsPerHour {
		return fmt.Errorf("trace: WindowsPerHour must lie in [0,%d]", maxWindowsPerHour)
	}
	return nil
}

// genStream is the generator-backed Stream: the topology and pair
// pools built once at construction (read-only from then on), flow
// counts apportioned per window, and a per-window random stream for
// emission. GenWindow is safe to call concurrently for distinct
// windows.
type genStream struct {
	cfg  GeneratorConfig
	info StreamInfo
	// counts is the deterministic per-window flow apportionment over
	// the diurnal profile.
	counts []int

	// Pair pools (see Generate's original construction, unchanged in
	// distribution): hot/cold intra-tenant bands, the scatter band, and
	// the Zipf weights + drift phases of the hot set.
	hot, cold, scatter []model.FlowKey
	hotCum             []float64
	hotPhase           []float64
	numHosts           int

	// Flow-class thresholds precomputed from the config.
	scatterCut, noiseCut, hotCut float64

	// noiseSalt hash-splits the all-pairs space when NoiseFraction > 0:
	// noise flows draw only from the half whose salted pair hash is
	// even, so the Expand combinator can place extra flows on the odd
	// half and provably never duplicate a realized one-off noise pair —
	// without either side enumerating the other's realizations.
	noiseSalt uint64
}

// flowSalt separates the per-window flow-emission streams from any
// other consumer of the trace seed.
const flowSalt = 0x5bd1e9955bd1e995

// noiseSplitSalt derives the noise-space partition salt from the trace
// seed (stable across windows and window order).
const noiseSplitSalt = 0x6e6f697365 // "noise"

// pairHash64 folds a canonical flow key into the 64-bit value the
// noise split hashes.
func pairHash64(k model.FlowKey) uint64 {
	k = k.Canonical()
	return uint64(k.Src)<<32 | uint64(k.Dst)
}

// noiseEligible reports whether a pair lies in the generator's noise
// half of the all-pairs space.
func (g *genStream) noiseEligible(k model.FlowKey) bool {
	return splitmix64(pairHash64(k)^g.noiseSalt)&1 == 0
}

// noisePairExcluded implements the Expand combinator's exclusion hook:
// with a noise band configured, any pair the generator could realize
// as one-off noise is off limits for expansion extras.
func (g *genStream) noisePairExcluded(k model.FlowKey) bool {
	return g.cfg.NoiseFraction > 0 && g.noiseEligible(k)
}

// NewStream builds the generator-backed stream for a configuration:
// topology, tenant placement, and communicating-pair pools are
// materialized (they are O(pairs + hosts), independent of trace
// length); flows are not — they are emitted per window by GenWindow.
func NewStream(cfg GeneratorConfig) (Stream, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Duration == 0 {
		cfg.Duration = 24 * time.Hour
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x5bd1e9955bd1e995))

	// Topology: tenants and placement.
	switches := make([]model.SwitchID, cfg.Switches)
	for i := range switches {
		switches[i] = model.SwitchID(i + 1)
	}
	dir := tenant.NewDirectory(switches)
	if err := dir.Populate(tenant.PopulateConfig{
		Tenants:    cfg.Tenants,
		MinVMs:     cfg.MinVMs,
		MaxVMs:     cfg.MaxVMs,
		Colocation: cfg.Colocation,
		Seed:       cfg.Seed ^ 0xabcdef,
	}); err != nil {
		return nil, fmt.Errorf("trace: populate: %w", err)
	}
	g := &genStream{
		cfg:       cfg,
		numHosts:  dir.NumHosts(),
		noiseSalt: splitmix64(cfg.Seed ^ noiseSplitSalt),
	}

	// Communicating pair pool: an intra-tenant band (clusterable) and a
	// scatter band of uniformly random pairs (expander-like).
	seen := make(map[model.FlowKey]struct{}, cfg.CommunicatingPairs)
	tenantIDs := dir.TenantIDs()
	intraCount := int(float64(cfg.CommunicatingPairs) * cfg.Locality)
	scatterCount := cfg.CommunicatingPairs - intraCount
	addPair := func(dst []model.FlowKey, a, b model.HostID) []model.FlowKey {
		if a == b {
			return dst
		}
		k := model.FlowKey{Src: a, Dst: b}.Canonical()
		if _, dup := seen[k]; dup {
			return dst
		}
		seen[k] = struct{}{}
		return append(dst, k)
	}
	intra := make([]model.FlowKey, 0, intraCount)
	for len(intra) < intraCount {
		tn := dir.Tenant(tenantIDs[rng.IntN(len(tenantIDs))])
		if len(tn.Hosts) < 2 {
			continue
		}
		a := tn.Hosts[rng.IntN(len(tn.Hosts))]
		b := tn.Hosts[rng.IntN(len(tn.Hosts))]
		intra = addPair(intra, a, b)
	}
	rng.Shuffle(len(intra), func(i, j int) { intra[i], intra[j] = intra[j], intra[i] })

	hotCount := cfg.CommunicatingPairs * cfg.Q / 100
	if hotCount < 1 {
		hotCount = 1
	}
	if hotCount > len(intra) {
		hotCount = len(intra)
	}
	g.hot = intra[:hotCount]
	g.cold = intra[hotCount:]

	// Zipf(1) weights within the hot set: the heaviest communicating
	// pairs dominate, as in the real trace ("over 90% of the flows are
	// contributed by about 10% of the host pairs").
	g.hotCum = make([]float64, len(g.hot))
	acc := 0.0
	for i := range g.hot {
		acc += 1 / float64(i+1)
		g.hotCum[i] = acc
	}
	// Drift phases: each hot pair's activity is modulated by
	// 1 + A·cos(2π(t−φ)/D) around a per-pair random phase φ.
	if cfg.DriftAmplitude > 0 {
		g.hotPhase = make([]float64, len(g.hot))
		for i := range g.hotPhase {
			g.hotPhase[i] = rng.Float64()
		}
	}

	// Scatter band: cross-tenant service dependencies between uniformly
	// random tenant pairs, with endpoints drawn from hosts pinned by
	// heavy hot-pair traffic. At the tenant level this is a random
	// (expander) graph, so no balanced partition can co-locate more than
	// a small fraction of the dependent tenant pairs — the scatter flows
	// are structurally inter-group at every scale, mirroring the effect
	// of the paper's full-scale uniform "rest" flows, whose sheer
	// density makes them equally unclusterable.
	// Pin weight of a host: its expected hot-flow volume under the Zipf
	// ranking. Scatter endpoints are sampled proportionally to
	// pinWeight^ScatterPinExponent: strong enough that no host (or
	// tenant block) profitably flips groups to dodge scatter edges,
	// damped enough that the heaviest hot pairs do not get woven into a
	// single unclusterable core whose split would cut hot traffic as
	// well.
	pinWeight := make(map[model.HostID]float64, 2*len(g.hot))
	for r, k := range g.hot {
		w := 1 / float64(r+1)
		pinWeight[k.Src] += w
		pinWeight[k.Dst] += w
	}
	pinExp := cfg.ScatterPinExponent
	if pinExp == 0 {
		pinExp = 1
	}
	if pinExp != 1 {
		for h, w := range pinWeight {
			pinWeight[h] = math.Pow(w, pinExp)
		}
	}
	type tenantPins struct {
		id    model.TenantID
		hosts []model.HostID
		cum   []float64 // cumulative pin weights over hosts
		total float64
	}
	byTenant := make(map[model.TenantID]*tenantPins)
	for h := range pinWeight {
		tid := dir.Host(h).Tenant
		tp := byTenant[tid]
		if tp == nil {
			tp = &tenantPins{id: tid}
			byTenant[tid] = tp
		}
		tp.hosts = append(tp.hosts, h)
	}
	tenants := make([]*tenantPins, 0, len(byTenant))
	for _, tp := range byTenant {
		tenants = append(tenants, tp)
	}
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].id < tenants[j].id })
	tenantCum := make([]float64, len(tenants))
	var tenantTotal float64
	for i, tp := range tenants {
		sort.Slice(tp.hosts, func(a, b int) bool { return tp.hosts[a] < tp.hosts[b] })
		tp.cum = make([]float64, len(tp.hosts))
		for j, h := range tp.hosts {
			tp.total += pinWeight[h]
			tp.cum[j] = tp.total
		}
		tenantTotal += tp.total
		tenantCum[i] = tenantTotal
	}
	sampleTenant := func(rng *rand.Rand) *tenantPins {
		u := rng.Float64() * tenantTotal
		return tenants[sort.SearchFloat64s(tenantCum, u)]
	}
	sampleHost := func(rng *rand.Rand, tp *tenantPins) model.HostID {
		u := rng.Float64() * tp.total
		return tp.hosts[sort.SearchFloat64s(tp.cum, u)]
	}
	g.scatter = make([]model.FlowKey, 0, scatterCount)
	if len(tenants) >= 2 {
		for len(g.scatter) < scatterCount {
			ta, tb := sampleTenant(rng), sampleTenant(rng)
			if ta.id == tb.id {
				continue
			}
			g.scatter = addPair(g.scatter, sampleHost(rng, ta), sampleHost(rng, tb))
		}
	}

	// Flow emission plan: p% hot, ScatterFlowFraction on the scatter
	// band, NoiseFraction uniform over all host pairs, remainder on the
	// cold intra band.
	total := int(cfg.PaperFlows / int64(cfg.Scale))
	if total < 1 {
		total = 1
	}
	g.scatterCut = cfg.ScatterFlowFraction
	g.noiseCut = g.scatterCut + cfg.NoiseFraction
	g.hotCut = g.noiseCut + (1-g.noiseCut)*float64(cfg.P)/100

	// Window plan: 24·WindowsPerHour hour-aligned windows, flow counts
	// apportioned deterministically over the diurnal profile (each
	// window inherits its hour's weight). The apportionment replaces
	// the sequential sampler's multinomial hour draw with its exact
	// expectation, which is what lets any window be generated without
	// its predecessors.
	wph := cfg.WindowsPerHour
	if wph == 0 {
		wph = (total + 24*targetWindowFlows - 1) / (24 * targetWindowFlows)
		if wph < 1 {
			wph = 1
		}
		if wph > maxWindowsPerHour {
			wph = maxWindowsPerHour
		}
	}
	windows := 24 * wph
	weights := make([]float64, windows)
	for w := range weights {
		weights[w] = hourWeights[w/wph]
	}
	g.counts = apportion(total, weights)

	g.info = StreamInfo{
		Name:           cfg.Name,
		Duration:       cfg.Duration,
		Directory:      dir,
		P:              cfg.P,
		Q:              cfg.Q,
		Scale:          cfg.Scale,
		Windows:        windows,
		TotalFlows:     total,
		MaxWindowFlows: maxInts(g.counts),
	}
	return g, nil
}

// Info implements Stream.
func (g *genStream) Info() StreamInfo { return g.info }

// basePairKeys exposes the communicating-pair pool for the Expand
// combinator: every flow the generator emits outside the noise band
// lands on one of these pairs.
func (g *genStream) basePairKeys() map[model.FlowKey]struct{} {
	pool := make(map[model.FlowKey]struct{}, len(g.hot)+len(g.cold)+len(g.scatter))
	for _, band := range [][]model.FlowKey{g.hot, g.cold, g.scatter} {
		for _, k := range band {
			pool[k] = struct{}{}
		}
	}
	return pool
}

// sampleHot draws a hot pair, drift-modulated at time at.
func (g *genStream) sampleHot(rng *rand.Rand, at time.Duration) model.FlowKey {
	for {
		u := rng.Float64() * g.hotCum[len(g.hotCum)-1]
		i := sort.SearchFloat64s(g.hotCum, u)
		if g.hotPhase == nil {
			return g.hot[i]
		}
		frac := float64(at) / float64(g.cfg.Duration)
		mod := (1 + g.cfg.DriftAmplitude*math.Cos(2*math.Pi*(frac-g.hotPhase[i]))) / (1 + g.cfg.DriftAmplitude)
		if rng.Float64() < mod {
			return g.hot[i]
		}
	}
}

// GenWindow implements Stream: window w's flows from the per-window
// random stream, appended into buf and sorted by Start.
func (g *genStream) GenWindow(w int, buf []Flow) []Flow {
	if w < 0 || w >= g.info.Windows {
		return buf
	}
	s1, s2 := windowSeeds(g.cfg.Seed, flowSalt, w)
	rng := rand.New(rand.NewPCG(s1, s2))
	from, to := g.info.WindowBounds(w)
	span := float64(to - from)
	base := len(buf)
	for i := 0; i < g.counts[w]; i++ {
		start := from + time.Duration(rng.Float64()*span)
		var key model.FlowKey
		u := rng.Float64()
		switch {
		case u < g.scatterCut && len(g.scatter) > 0:
			key = g.scatter[rng.IntN(len(g.scatter))]
		case u < g.noiseCut:
			// One-off noise pairs draw from the noise half of the pair
			// space (see noiseEligible); the rejection loop is bounded
			// for degenerate topologies where the half could be empty.
			for tries := 0; ; tries++ {
				a := model.HostID(1 + rng.IntN(g.numHosts))
				b := model.HostID(1 + rng.IntN(g.numHosts))
				if a == b {
					continue
				}
				key = model.FlowKey{Src: a, Dst: b}
				if g.noiseEligible(key) || tries >= 256 {
					break
				}
			}
		case u < g.hotCut || len(g.cold) == 0:
			key = g.sampleHot(rng, start)
		default:
			key = g.cold[rng.IntN(len(g.cold))]
		}
		// Randomize direction.
		if rng.IntN(2) == 0 {
			key = model.FlowKey{Src: key.Dst, Dst: key.Src}
		}
		bytes, packets := samplePayload(rng)
		buf = append(buf, Flow{
			Start:   start,
			Src:     key.Src,
			Dst:     key.Dst,
			Bytes:   bytes,
			Packets: packets,
		})
	}
	win := buf[base:]
	// slices.SortFunc, not sort.Slice: the reflective swapper was the
	// single hottest call of full-scale generation.
	slices.SortFunc(win, func(a, b Flow) int { return cmp.Compare(a.Start, b.Start) })
	return buf
}

// Generate produces a materialized trace from the configuration: the
// stream's windows collected into one flow slice. Large-scale
// consumers should use NewStream directly and stay windowed.
func Generate(cfg GeneratorConfig) (*Trace, error) {
	s, err := NewStream(cfg)
	if err != nil {
		return nil, err
	}
	return Materialize(s), nil
}
