package trace

import (
	"testing"

	"lazyctrl/internal/model"
)

// TestAggWindowTotals pins the aggregate form's exactness contract:
// every window's cell counts sum to exactly the per-flow window's flow
// count, for the plain and noisy presets.
func TestAggWindowTotals(t *testing.T) {
	for _, cfg := range []GeneratorConfig{
		SmallConfig("small", 7),
		SmallNoisyConfig("small-noisy", 7),
	} {
		s, err := NewStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		as, ok := s.(AggStream)
		if !ok {
			t.Fatalf("%s: generator stream is not an AggStream", cfg.Name)
		}
		info := s.Info()
		var flowTotal, aggTotal int
		for w := 0; w < info.Windows; w++ {
			flows := s.GenWindow(w, nil)
			aggs := as.AggWindow(w, nil)
			var sum int
			for _, a := range aggs {
				if a.Flows <= 0 {
					t.Fatalf("%s w=%d: non-positive cell count %d", cfg.Name, w, a.Flows)
				}
				if a.Src == a.Dst {
					t.Fatalf("%s w=%d: self-pair cell %v", cfg.Name, w, a.Src)
				}
				sum += int(a.Flows)
			}
			if sum != len(flows) {
				t.Fatalf("%s w=%d: agg total %d, per-flow total %d", cfg.Name, w, sum, len(flows))
			}
			flowTotal += len(flows)
			aggTotal += sum
		}
		if aggTotal != info.TotalFlows {
			t.Fatalf("%s: agg total %d, want %d", cfg.Name, aggTotal, info.TotalFlows)
		}
	}
}

// TestAggWindowDeterministic pins per-window reproducibility: equal
// (config, seed, window) must yield identical cells.
func TestAggWindowDeterministic(t *testing.T) {
	cfg := SmallConfig("det", 11)
	s1, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a1, a2 := s1.(AggStream), s2.(AggStream)
	for _, w := range []int{0, 3, s1.Info().Windows - 1} {
		x := a1.AggWindow(w, nil)
		y := a2.AggWindow(w, nil)
		// Out-of-order regeneration must match too.
		z := a1.AggWindow(w, nil)
		if len(x) != len(y) || len(x) != len(z) {
			t.Fatalf("w=%d: lengths diverge %d/%d/%d", w, len(x), len(y), len(z))
		}
		for i := range x {
			if x[i] != y[i] || x[i] != z[i] {
				t.Fatalf("w=%d cell %d: %v vs %v vs %v", w, i, x[i], y[i], z[i])
			}
		}
	}
}

// TestAggWindowPairPlacement checks that non-noise cells land on the
// generator's communicating pool (the same invariant the per-flow
// windows satisfy), and that the aggregate per-pair distribution tracks
// the per-flow realization at the pool level: the hot set must carry
// its configured share in both forms.
func TestAggWindowPairPlacement(t *testing.T) {
	cfg := SmallConfig("placement", 3)
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g := s.(*genStream)
	pool := g.basePairKeys()
	hot := make(map[model.FlowKey]struct{}, len(g.hot))
	for _, k := range g.hot {
		hot[k] = struct{}{}
	}
	info := s.Info()
	var total, hotFlows, hotFlowsPF int
	for w := 0; w < info.Windows; w++ {
		for _, a := range g.AggWindow(w, nil) {
			key := model.FlowKey{Src: a.Src, Dst: a.Dst}.Canonical()
			if _, ok := pool[key]; !ok {
				t.Fatalf("w=%d: cell pair %v outside the communicating pool", w, key)
			}
			total += int(a.Flows)
			if _, ok := hot[key]; ok {
				hotFlows += int(a.Flows)
			}
		}
		for _, f := range s.GenWindow(w, nil) {
			key := model.FlowKey{Src: f.Src, Dst: f.Dst}.Canonical()
			if _, ok := hot[key]; ok {
				hotFlowsPF++
			}
		}
	}
	aggShare := float64(hotFlows) / float64(total)
	pfShare := float64(hotFlowsPF) / float64(info.TotalFlows)
	if diff := aggShare - pfShare; diff < -0.02 || diff > 0.02 {
		t.Fatalf("hot share diverges: agg %.3f vs per-flow %.3f", aggShare, pfShare)
	}
}

// TestExpandAggWindow pins the Expand combinator's aggregate form: the
// base cells plus exactly the window's apportioned extras, every extra
// on a previously silent pair.
func TestExpandAggWindow(t *testing.T) {
	base, err := NewStream(SmallNoisyConfig("expand-agg", 5))
	if err != nil {
		t.Fatal(err)
	}
	exp, err := ExpandStream(base, 0.30, 8, 24, 99)
	if err != nil {
		t.Fatal(err)
	}
	e := exp.(*expandStream)
	excl := e.exclusion()
	info := exp.Info()
	var extraTotal int
	for w := 0; w < info.Windows; w++ {
		baseCells := base.(AggStream).AggWindow(w, nil)
		cells := e.AggWindow(w, nil)
		extras := cells[len(baseCells):]
		for i := range baseCells {
			if cells[i] != baseCells[i] {
				t.Fatalf("w=%d: base cell %d diverges", w, i)
			}
		}
		for _, a := range extras {
			key := model.FlowKey{Src: a.Src, Dst: a.Dst}.Canonical()
			if _, dup := excl[key]; dup {
				t.Fatalf("w=%d: extra cell on base pair %v", w, key)
			}
			if a.Flows != 1 {
				t.Fatalf("w=%d: extra cell count %d, want 1", w, a.Flows)
			}
			extraTotal++
		}
		if len(extras) != e.extraCounts[w] {
			t.Fatalf("w=%d: %d extras, want %d", w, len(extras), e.extraCounts[w])
		}
	}
	want := info.TotalFlows - base.Info().TotalFlows
	if extraTotal != want {
		t.Fatalf("extras total %d, want %d", extraTotal, want)
	}
}
