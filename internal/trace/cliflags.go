package trace

import (
	"errors"
	"flag"
	"fmt"
	"os"
)

// ErrUnknownTrace reports a trace name outside the Table II set.
var ErrUnknownTrace = errors.New("trace: unknown trace")

// ConfigByName returns the preset generator configuration for a CLI
// trace name: "real", "syn-a", "syn-b", or "syn-c".
func ConfigByName(name string, scale int, seed uint64) (GeneratorConfig, error) {
	switch name {
	case "real":
		return RealLikeConfig(scale, seed), nil
	case "syn-a":
		return SynAConfig(scale, seed), nil
	case "syn-b":
		return SynBConfig(scale, seed), nil
	case "syn-c":
		return SynCConfig(scale, seed), nil
	default:
		return GeneratorConfig{}, fmt.Errorf("%w %q (want real, syn-a, syn-b, or syn-c)", ErrUnknownTrace, name)
	}
}

// ByName generates one of the Table II traces by CLI name,
// materialized. Large-scale consumers should use StreamByName.
func ByName(name string, scale int, seed uint64) (*Trace, error) {
	cfg, err := ConfigByName(name, scale, seed)
	if err != nil {
		return nil, err
	}
	return Generate(cfg)
}

// StreamByName builds the streaming form of a Table II trace by CLI
// name: flows are generated one window at a time, so memory stays flat
// in trace length.
func StreamByName(name string, scale int, seed uint64) (Stream, error) {
	cfg, err := ConfigByName(name, scale, seed)
	if err != nil {
		return nil, err
	}
	return NewStream(cfg)
}

// CLI bundles the trace-selection flags the cmd mains share (-trace,
// -scale, -seed), so flag registration, trace generation, and error
// handling live in one place and the binaries cannot drift apart.
type CLI struct {
	name  *string
	scale *int
	seed  *uint64
}

// RegisterCLI registers the shared flags on fs (flag.CommandLine when
// nil) with the given defaults. Call flag.Parse (or fs.Parse) before
// using the returned CLI.
func RegisterCLI(fs *flag.FlagSet, defaultTrace string, defaultScale int) *CLI {
	if fs == nil {
		fs = flag.CommandLine
	}
	return &CLI{
		name:  fs.String("trace", defaultTrace, "trace to generate: real, syn-a, syn-b, syn-c"),
		scale: fs.Int("scale", defaultScale, "divisor applied to the paper's flow count"),
		seed:  fs.Uint64("seed", 1, "random seed"),
	}
}

// Trace generates the selected trace, materialized.
func (c *CLI) Trace() (*Trace, error) { return ByName(*c.name, *c.scale, *c.seed) }

// Stream builds the selected trace's stream (lazy, windowed flows).
func (c *CLI) Stream() (Stream, error) { return StreamByName(*c.name, *c.scale, *c.seed) }

// MustTrace generates the selected trace, printing the error to stderr
// and exiting non-zero on failure (exit 2 for an unknown trace name,
// matching flag-usage errors; 1 for generation failures).
func (c *CLI) MustTrace() *Trace {
	tr, err := c.Trace()
	if err != nil {
		exitTraceErr(err)
	}
	return tr
}

// MustStream is MustTrace's streaming counterpart.
func (c *CLI) MustStream() Stream {
	s, err := c.Stream()
	if err != nil {
		exitTraceErr(err)
	}
	return s
}

func exitTraceErr(err error) {
	fmt.Fprintln(os.Stderr, err)
	if errors.Is(err, ErrUnknownTrace) {
		os.Exit(2)
	}
	os.Exit(1)
}

// Name returns the selected trace name.
func (c *CLI) Name() string { return *c.name }

// Scale returns the selected flow-count divisor.
func (c *CLI) Scale() int { return *c.scale }

// Seed returns the selected random seed.
func (c *CLI) Seed() uint64 { return *c.seed }
