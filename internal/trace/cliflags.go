package trace

import (
	"errors"
	"flag"
	"fmt"
	"os"
)

// ErrUnknownTrace reports a trace name outside the Table II set.
var ErrUnknownTrace = errors.New("trace: unknown trace")

// ByName generates one of the Table II traces by CLI name: "real",
// "syn-a", "syn-b", or "syn-c".
func ByName(name string, scale int, seed uint64) (*Trace, error) {
	switch name {
	case "real":
		return RealLike(scale, seed)
	case "syn-a":
		return SynA(scale, seed)
	case "syn-b":
		return SynB(scale, seed)
	case "syn-c":
		return SynC(scale, seed)
	default:
		return nil, fmt.Errorf("%w %q (want real, syn-a, syn-b, or syn-c)", ErrUnknownTrace, name)
	}
}

// CLI bundles the trace-selection flags the cmd mains share (-trace,
// -scale, -seed), so flag registration, trace generation, and error
// handling live in one place and the binaries cannot drift apart.
type CLI struct {
	name  *string
	scale *int
	seed  *uint64
}

// RegisterCLI registers the shared flags on fs (flag.CommandLine when
// nil) with the given defaults. Call flag.Parse (or fs.Parse) before
// using the returned CLI.
func RegisterCLI(fs *flag.FlagSet, defaultTrace string, defaultScale int) *CLI {
	if fs == nil {
		fs = flag.CommandLine
	}
	return &CLI{
		name:  fs.String("trace", defaultTrace, "trace to generate: real, syn-a, syn-b, syn-c"),
		scale: fs.Int("scale", defaultScale, "divisor applied to the paper's flow count"),
		seed:  fs.Uint64("seed", 1, "random seed"),
	}
}

// Trace generates the selected trace.
func (c *CLI) Trace() (*Trace, error) { return ByName(*c.name, *c.scale, *c.seed) }

// MustTrace generates the selected trace, printing the error to stderr
// and exiting non-zero on failure (exit 2 for an unknown trace name,
// matching flag-usage errors; 1 for generation failures).
func (c *CLI) MustTrace() *Trace {
	tr, err := c.Trace()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, ErrUnknownTrace) {
			os.Exit(2)
		}
		os.Exit(1)
	}
	return tr
}

// Name returns the selected trace name.
func (c *CLI) Name() string { return *c.name }

// Scale returns the selected flow-count divisor.
func (c *CLI) Scale() int { return *c.scale }

// Seed returns the selected random seed.
func (c *CLI) Seed() uint64 { return *c.seed }
