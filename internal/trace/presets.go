package trace

import "time"

// Paper dataset constants (Table II and §V-A/B).
const (
	// RealSwitches and RealHosts describe the production trace topology.
	RealSwitches = 272
	RealHosts    = 6509
	// RealPaperFlows is the flow count of the day-long real trace.
	RealPaperFlows = 271_000_000
	// RealCommunicatingPairs is the number of distinct host pairs that
	// exchanged traffic in the real trace.
	RealCommunicatingPairs = 11_602

	// SynScaleUp is the ×10 scaling factor of the synthetic traces.
	SynScaleUp    = 10
	SynSwitches   = 2713
	SynHosts      = 65090
	SynAFlows     = 2_720_000_000
	SynBFlows     = 3_806_000_000
	SynCFlows     = 5_071_000_000
	SynCommPairs  = RealCommunicatingPairs * SynScaleUp
	TraceDuration = 24 * time.Hour
)

// realTenants approximates 6509 hosts with tenants of 20–100 VMs
// (average 60): ~108 tenants.
const realTenants = 108

// synTenants scales tenancy ×10 with the synthetic topologies.
const synTenants = realTenants * SynScaleUp

// RealLike synthesizes the paper's production trace from its published
// statistics. Scale divides the flow count (Scale=1 would emit 271M
// flows; tests use 10⁴–10⁶). All flows stay within the ~11.6k
// communicating pairs; the scatter band carries the unclusterable
// cross-group share that yields the measured 5-way centrality of 0.85.
func RealLike(scale int, seed uint64) (*Trace, error) {
	return Generate(RealLikeConfig(scale, seed))
}

// RealLikeConfig is the real-like preset's generator configuration;
// pass it to NewStream to consume the trace windowed instead of
// materialized.
func RealLikeConfig(scale int, seed uint64) GeneratorConfig {
	return GeneratorConfig{
		Name:                "real",
		Switches:            RealSwitches,
		Tenants:             realTenants,
		MinVMs:              20,
		MaxVMs:              100,
		PaperFlows:          RealPaperFlows,
		Scale:               scale,
		CommunicatingPairs:  RealCommunicatingPairs,
		P:                   97, // the cold pairs of the real trace carry negligible volume
		Q:                   12, // hot = ~10% of the pool, all intra band
		Locality:            0.80,
		ScatterFlowFraction: 0.11,
		NoiseFraction:       0,
		ScatterPinExponent:  0.5,
		DriftAmplitude:      0.25,
		Colocation:          0.97,
		Duration:            TraceDuration,
		Seed:                seed,
	}
}

// SynA generates the Syn-A trace of Table II: p=90, q=10, average
// centrality ≈ 0.85.
func SynA(scale int, seed uint64) (*Trace, error) {
	return Generate(SynAConfig(scale, seed))
}

// SynAConfig is the Syn-A preset's generator configuration.
func SynAConfig(scale int, seed uint64) GeneratorConfig {
	return synConfig("syn-a", SynAFlows, 90, 10, 0.17, 0, scale, seed)
}

// SynB generates the Syn-B trace of Table II: p=70, q=20, average
// centrality ≈ 0.72.
func SynB(scale int, seed uint64) (*Trace, error) {
	return Generate(SynBConfig(scale, seed))
}

// SynBConfig is the Syn-B preset's generator configuration.
func SynBConfig(scale int, seed uint64) GeneratorConfig {
	return synConfig("syn-b", SynBFlows, 70, 20, 0.38, 0, scale, seed)
}

// SynC generates the Syn-C trace of Table II: p=70, q=30, average
// centrality ≈ 0.61.
func SynC(scale int, seed uint64) (*Trace, error) {
	return Generate(SynCConfig(scale, seed))
}

// SynCConfig is the Syn-C preset's generator configuration.
func SynCConfig(scale int, seed uint64) GeneratorConfig {
	return synConfig("syn-c", SynCFlows, 70, 30, 0.54, 0, scale, seed)
}

func synConfig(name string, flows int64, p, q int, scatterFlow, noise float64, scale int, seed uint64) GeneratorConfig {
	return GeneratorConfig{
		Name:                name,
		Switches:            SynSwitches,
		Tenants:             synTenants,
		MinVMs:              20,
		MaxVMs:              100,
		PaperFlows:          flows,
		Scale:               scale,
		CommunicatingPairs:  SynCommPairs,
		P:                   p,
		Q:                   q,
		Locality:            0.80,
		ScatterFlowFraction: scatterFlow,
		NoiseFraction:       noise,
		Colocation:          0.98,
		Duration:            TraceDuration,
		Seed:                seed,
	}
}

// SynANoisyConfig is the Syn-A preset with part of the uniform "rest"
// carried as true one-off noise pairs instead of fixed scatter pairs —
// the paper's literal synthetic recipe, exercising the noise band
// (NoiseFraction > 0) none of the plain presets use. Noise flows draw
// from the hash-split noise half of the pair space, so the Expand
// combinator stays sound on this preset (see ExpandStream).
func SynANoisyConfig(scale int, seed uint64) GeneratorConfig {
	cfg := SynAConfig(scale, seed)
	cfg.Name = "syn-a-noisy"
	cfg.ScatterFlowFraction = 0.12
	cfg.NoiseFraction = 0.05
	return cfg
}

// SmallNoisyConfig is SmallConfig with a noise band, the test-scale
// twin of SynANoisyConfig.
func SmallNoisyConfig(name string, seed uint64) GeneratorConfig {
	cfg := SmallConfig(name, seed)
	cfg.ScatterFlowFraction = 0.06
	cfg.NoiseFraction = 0.05
	return cfg
}

// SmallConfig returns a laptop-scale configuration with the same shape
// as the real trace, for unit tests and examples.
func SmallConfig(name string, seed uint64) GeneratorConfig {
	return GeneratorConfig{
		Name:                name,
		Switches:            24,
		Tenants:             12,
		MinVMs:              8,
		MaxVMs:              24,
		PaperFlows:          40_000,
		Scale:               1,
		CommunicatingPairs:  500,
		P:                   97,
		Q:                   12,
		Locality:            0.80,
		ScatterFlowFraction: 0.11,
		NoiseFraction:       0,
		ScatterPinExponent:  0.5,
		DriftAmplitude:      0.25,
		Colocation:          0.90,
		Duration:            TraceDuration,
		Seed:                seed,
	}
}
