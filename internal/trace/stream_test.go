package trace

import (
	"os"
	"runtime"
	"testing"
	"time"
	"unsafe"

	"lazyctrl/internal/grouping"
	"lazyctrl/internal/model"
)

func smallStream(t testing.TB, seed uint64) Stream {
	t.Helper()
	s, err := NewStream(SmallConfig("small", seed))
	if err != nil {
		t.Fatalf("NewStream: %v", err)
	}
	return s
}

// TestStreamWindowPartition pins the window plan: counts sum to the
// total, every window's flows stay inside its bounds and sorted, and
// the concatenation is globally sorted.
func TestStreamWindowPartition(t *testing.T) {
	s := smallStream(t, 1)
	info := s.Info()
	if info.Windows%24 != 0 {
		t.Fatalf("windows = %d, want a multiple of 24 (hour-aligned)", info.Windows)
	}
	total := 0
	var prev time.Duration = -1
	var buf []Flow
	maxWin := 0
	for w := 0; w < info.Windows; w++ {
		buf = s.GenWindow(w, buf[:0])
		if len(buf) > maxWin {
			maxWin = len(buf)
		}
		from, to := info.WindowBounds(w)
		for i := range buf {
			if buf[i].Start < from || buf[i].Start >= to {
				t.Fatalf("window %d flow at %v outside [%v,%v)", w, buf[i].Start, from, to)
			}
			if buf[i].Start < prev {
				t.Fatalf("window %d not sorted/continuous at %v (prev %v)", w, buf[i].Start, prev)
			}
			prev = buf[i].Start
		}
		total += len(buf)
	}
	if total != info.TotalFlows {
		t.Errorf("windows sum to %d flows, want %d", total, info.TotalFlows)
	}
	if maxWin != info.MaxWindowFlows {
		t.Errorf("observed peak window %d, info says %d", maxWin, info.MaxWindowFlows)
	}
}

// TestStreamWindowIndependence pins the tentpole property: any window
// regenerated out of order, from a fresh stream, is identical to the
// in-order generation — windows depend only on (config, seed, index).
func TestStreamWindowIndependence(t *testing.T) {
	a := smallStream(t, 7)
	b := smallStream(t, 7)
	info := a.Info()
	for _, w := range []int{info.Windows - 1, 0, info.Windows / 2, 3} {
		wa := a.GenWindow(w, nil)
		wb := b.GenWindow(w, nil)
		if len(wa) != len(wb) {
			t.Fatalf("window %d: %d vs %d flows", w, len(wa), len(wb))
		}
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("window %d flow %d differs: %+v vs %+v", w, i, wa[i], wb[i])
			}
		}
	}
}

// TestMaterializeMatchesStream pins that Materialize is exactly the
// stream's windows concatenated — the foundation of every streamed-vs-
// materialized differential below.
func TestMaterializeMatchesStream(t *testing.T) {
	s := smallStream(t, 3)
	tr := Materialize(s)
	if tr.NumFlows() != s.Info().TotalFlows {
		t.Fatalf("materialized %d flows, info says %d", tr.NumFlows(), s.Info().TotalFlows)
	}
	var buf []Flow
	i := 0
	for w := 0; w < s.Info().Windows; w++ {
		buf = s.GenWindow(w, buf[:0])
		for j := range buf {
			if tr.Flows[i] != buf[j] {
				t.Fatalf("flow %d differs from window %d[%d]", i, w, j)
			}
			i++
		}
	}
}

// intensityEqual compares two intensity matrices for byte identity via
// their sorted pair iteration.
func intensityEqual(t *testing.T, a, b *grouping.Intensity) {
	t.Helper()
	if a.NumSwitches() != b.NumSwitches() || a.NumPairs() != b.NumPairs() {
		t.Fatalf("shape differs: %d/%d switches, %d/%d pairs",
			a.NumSwitches(), b.NumSwitches(), a.NumPairs(), b.NumPairs())
	}
	type pw struct {
		p model.SwitchPair
		w float64
	}
	collect := func(m *grouping.Intensity) []pw {
		var out []pw
		m.ForEachPair(func(p model.SwitchPair, w float64) {
			out = append(out, pw{p, w})
		})
		return out
	}
	pa, pb := collect(a), collect(b)
	if len(pa) != len(pb) {
		t.Fatalf("pair counts differ: %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("pair %d differs: %+v vs %+v (want bit-identical weights)", i, pa[i], pb[i])
		}
	}
}

// TestStreamIntensityByteIdentical pins acceptance criterion 4 for the
// intensity matrix: streamed windows produce a matrix bit-identical to
// the slice path at equal (seed, scale), for the full span and for
// partial (warmup-style) spans.
func TestStreamIntensityByteIdentical(t *testing.T) {
	s := smallStream(t, 11)
	tr := Materialize(s)
	spans := [][2]time.Duration{
		{0, tr.Duration},
		{0, time.Hour},
		{3*time.Hour + 17*time.Minute, 9 * time.Hour},
	}
	for _, span := range spans {
		ms := StreamIntensity(s, span[0], span[1])
		mt := SwitchIntensity(tr, span[0], span[1])
		intensityEqual(t, ms, mt)
	}
	// The materialized adapter must agree too.
	intensityEqual(t,
		StreamIntensity(tr.Stream(0), 0, tr.Duration),
		SwitchIntensity(tr, 0, tr.Duration))
}

// TestStreamStatsAndCentralityMatch pins acceptance criterion 4 for
// stats and grouping-relevant outputs: streamed stats equal slice
// stats, and groupings computed from the streamed intensity are
// byte-identical to those from the slice intensity.
func TestStreamStatsAndCentralityMatch(t *testing.T) {
	s := smallStream(t, 5)
	tr := Materialize(s)

	st := StreamStats(s)
	mt := ComputeStats(tr)
	if st != mt {
		t.Errorf("stats differ: stream %+v vs slice %+v", st, mt)
	}

	cs, err := StreamCentrality(s, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := AverageCentrality(tr, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if cs != cm {
		t.Errorf("centrality differs: stream %v vs slice %v", cs, cm)
	}

	// Grouping differential: identical intensity input ⇒ identical
	// groups (IniGroup is deterministic per seed).
	group := func(m *grouping.Intensity) string {
		sgi, err := grouping.New(grouping.Config{SizeLimit: 6, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		grp, err := sgi.IniGroup(m)
		if err != nil {
			t.Fatal(err)
		}
		return grp.String()
	}
	gs := group(StreamIntensity(s, 0, tr.Duration))
	gm := group(SwitchIntensity(tr, 0, tr.Duration))
	if gs != gm {
		t.Errorf("groupings differ:\nstream: %s\nslice:  %s", gs, gm)
	}
}

// TestPrefetcherMatchesSequential pins that the parallel prefetch
// pipeline hands out exactly the sequential windows, in order, at any
// depth.
func TestPrefetcherMatchesSequential(t *testing.T) {
	s := smallStream(t, 13)
	info := s.Info()
	var want [][]Flow
	var buf []Flow
	for w := 0; w < info.Windows; w++ {
		buf = s.GenWindow(w, buf[:0])
		want = append(want, append([]Flow(nil), buf...))
	}
	for _, depth := range []int{1, 3, 8} {
		p := NewPrefetcher(s, 0, info.Windows-1, depth)
		for w := 0; w < info.Windows; w++ {
			flows, idx, ok := p.Next()
			if !ok {
				t.Fatalf("depth %d: pipeline ended at window %d", depth, w)
			}
			if idx != w {
				t.Fatalf("depth %d: got window %d, want %d", depth, idx, w)
			}
			if len(flows) != len(want[w]) {
				t.Fatalf("depth %d window %d: %d flows, want %d", depth, w, len(flows), len(want[w]))
			}
			for i := range flows {
				if flows[i] != want[w][i] {
					t.Fatalf("depth %d window %d flow %d differs", depth, w, i)
				}
			}
			p.Recycle(flows)
		}
		if _, _, ok := p.Next(); ok {
			t.Fatalf("depth %d: pipeline did not end", depth)
		}
		p.Close()
	}
}

// TestPrefetcherEarlyClose pins that abandoning a pipeline mid-stream
// does not leak goroutines.
func TestPrefetcherEarlyClose(t *testing.T) {
	s := smallStream(t, 17)
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		p := NewPrefetcher(s, 0, s.Info().Windows-1, 4)
		_, _, _ = p.Next()
		p.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines grew %d -> %d after Close", before, n)
	}
}

// TestExpandStreamMatchesMaterialized pins the combinator differential:
// Expand (materialized) is exactly ExpandStream's windows concatenated,
// and the streamed intensity of the expanded trace is byte-identical
// to the slice path.
func TestExpandStreamMatchesMaterialized(t *testing.T) {
	base := Materialize(smallStream(t, 8))
	es, err := ExpandStream(base.Stream(0), 0.30, 8, 24, 99)
	if err != nil {
		t.Fatal(err)
	}
	exp := Materialize(es)
	if got, want := exp.NumFlows(), es.Info().TotalFlows; got != want {
		t.Fatalf("materialized %d flows, info says %d", got, want)
	}
	intensityEqual(t,
		StreamIntensity(es, 0, exp.Duration),
		SwitchIntensity(exp, 0, exp.Duration))

	// Generator-backed bases compose too.
	gs := smallStream(t, 8)
	egs, err := ExpandStream(gs, 0.30, 8, 24, 99)
	if err != nil {
		t.Fatal(err)
	}
	gexp := Materialize(egs)
	intensityEqual(t,
		StreamIntensity(egs, 0, gexp.Duration),
		SwitchIntensity(gexp, 0, gexp.Duration))
}

// TestStreamFlatMemory generates many windows through one reused
// buffer and checks the heap does not grow with the number of windows
// consumed — the flat-memory property at test scale.
func TestStreamFlatMemory(t *testing.T) {
	cfg := SmallConfig("flat", 21)
	cfg.PaperFlows = 2_000_000
	cfg.WindowsPerHour = 8 // 192 windows ≈ 10.4k flows each
	s, err := NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	info := s.Info()
	var buf []Flow
	// Warm the buffer to its peak before measuring.
	buf = s.GenWindow(0, buf[:0])
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	for w := 0; w < info.Windows; w++ {
		buf = s.GenWindow(w, buf[:0])
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	grew := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	// The whole trace would be ~48 MB of Flow records; a flat pipeline
	// retains about one window (≤ ~0.5 MB) plus noise.
	if grew > 8<<20 {
		t.Errorf("heap grew %d bytes across %d windows; streaming should stay flat", grew, info.Windows)
	}
	if info.TotalFlows != int(cfg.PaperFlows) {
		t.Fatalf("total flows = %d", info.TotalFlows)
	}
}

// TestSynAFullScaleStream is the full-scale smoke: the paper's Syn-A
// trace at Scale=1 — 2.72B flows, unreachable materialized (87 GB of
// flow records) — is constructible and consumable as a stream under a
// fixed memory budget. The ungated run checks the window plan end to
// end and generates sample windows across the day; set
// LAZYCTRL_FULLSCALE=1 to sweep every window.
func TestSynAFullScaleStream(t *testing.T) {
	if testing.Short() {
		t.Skip("full Syn-A topology")
	}
	s, err := NewStream(SynAConfig(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	info := s.Info()
	if info.TotalFlows != int(SynAFlows) {
		t.Fatalf("TotalFlows = %d, want %d", info.TotalFlows, SynAFlows)
	}
	if info.MaxWindowFlows > 4*targetWindowFlows {
		t.Errorf("peak window = %d flows, want ≤ %d (flat windows at full scale)",
			info.MaxWindowFlows, 4*targetWindowFlows)
	}
	t.Logf("Syn-A scale=1: %d flows in %d windows (peak window %d flows ≈ %.1f MB)",
		info.TotalFlows, info.Windows, info.MaxWindowFlows,
		float64(info.MaxWindowFlows*FlowBytes)/(1<<20))

	windows := []int{0, info.Windows / 4, info.Windows / 2, 3 * info.Windows / 4, info.Windows - 1}
	if os.Getenv("LAZYCTRL_FULLSCALE") != "" {
		windows = windows[:0]
		for w := 0; w < info.Windows; w++ {
			windows = append(windows, w)
		}
	}
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	var buf []Flow
	generated := 0
	for _, w := range windows {
		buf = s.GenWindow(w, buf[:0])
		generated += len(buf)
		from, to := info.WindowBounds(w)
		for i := range buf {
			if buf[i].Start < from || buf[i].Start >= to {
				t.Fatalf("window %d flow outside bounds", w)
			}
		}
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	grew := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	const budget = 64 << 20 // one window buffer is ~2.3 MB; allow slack
	if grew > budget {
		t.Errorf("heap grew %d bytes over %d windows, budget %d", grew, len(windows), budget)
	}
	t.Logf("generated %d flows over %d windows, heap growth %d bytes", generated, len(windows), grew)
}

// TestStreamProfileMatchesIndividualSweeps pins the one-sweep profile
// against the individual streamed consumers.
func TestStreamProfileMatchesIndividualSweeps(t *testing.T) {
	s := smallStream(t, 6)
	prof, err := StreamProfile(s, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got := StreamStats(s); prof.Stats != got {
		t.Errorf("profile stats %+v != StreamStats %+v", prof.Stats, got)
	}
	c, err := StreamCentrality(s, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Centrality != c {
		t.Errorf("profile centrality %v != StreamCentrality %v", prof.Centrality, c)
	}
	intensityEqual(t, prof.Intensity, StreamIntensity(s, 0, s.Info().Duration))
}

// TestFlowBytesMatchesStruct pins the exported memory-accounting
// constant to the actual Flow footprint.
func TestFlowBytesMatchesStruct(t *testing.T) {
	if got := int(unsafe.Sizeof(Flow{})); got != FlowBytes {
		t.Fatalf("unsafe.Sizeof(Flow{}) = %d, FlowBytes = %d — update the constant", got, FlowBytes)
	}
}
