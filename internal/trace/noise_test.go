package trace

import (
	"testing"
	"time"

	"lazyctrl/internal/model"
)

// realizedPairs collects the canonical pairs of every flow in a trace.
func realizedPairs(tr *Trace) map[model.FlowKey]struct{} {
	out := make(map[model.FlowKey]struct{})
	for i := range tr.Flows {
		f := &tr.Flows[i]
		out[model.FlowKey{Src: f.Src, Dst: f.Dst}.Canonical()] = struct{}{}
	}
	return out
}

// TestNoisyGeneratorRealizesOneOffPairs sanity-checks the noisy preset:
// it actually realizes pairs outside the communicating pool (the case
// the exclusion machinery exists for), all of them inside the noise
// half of the pair space.
func TestNoisyGeneratorRealizesOneOffPairs(t *testing.T) {
	s, err := NewStream(SmallNoisyConfig("noisy", 3))
	if err != nil {
		t.Fatal(err)
	}
	g := s.(*genStream)
	pool := g.basePairKeys()
	tr := Materialize(s)
	oneOff := 0
	for k := range realizedPairs(tr) {
		if _, inPool := pool[k]; inPool {
			continue
		}
		oneOff++
		if !g.noiseEligible(k) {
			t.Fatalf("noise pair %v realized outside the noise half", k)
		}
	}
	if oneOff == 0 {
		t.Fatal("noisy preset realized no one-off pairs; the test exercises nothing")
	}
	t.Logf("noisy preset realized %d one-off pairs", oneOff)
}

// TestExpandExcludesNoisePairs pins the ExpandStream exclusion on a
// noisy generator base: no expansion extra may land on any pair the
// base realized — including one-off noise pairs outside the
// communicating pool, which the hash split reserves for the generator.
func TestExpandExcludesNoisePairs(t *testing.T) {
	base, err := NewStream(SmallNoisyConfig("noisy", 11))
	if err != nil {
		t.Fatal(err)
	}
	exp, err := ExpandStream(base, 0.30, 8, 24, 99)
	if err != nil {
		t.Fatal(err)
	}
	baseRealized := realizedPairs(Materialize(base))

	info := exp.Info()
	var bbuf, ebuf []Flow
	extras := 0
	for w := 0; w < info.Windows; w++ {
		bbuf = base.GenWindow(w, bbuf[:0])
		ebuf = exp.GenWindow(w, ebuf[:0])
		// The expanded window is the base window plus extras, re-sorted;
		// identify extras as the multiset difference.
		seen := make(map[Flow]int, len(bbuf))
		for _, f := range bbuf {
			seen[f]++
		}
		for _, f := range ebuf {
			if n := seen[f]; n > 0 {
				seen[f] = n - 1
				continue
			}
			extras++
			k := model.FlowKey{Src: f.Src, Dst: f.Dst}.Canonical()
			if _, dup := baseRealized[k]; dup {
				t.Fatalf("window %d: extra flow landed on realized base pair %v", w, k)
			}
		}
	}
	if want := info.TotalFlows - base.Info().TotalFlows; extras != want {
		t.Errorf("identified %d extras, want %d", extras, want)
	}
}

// TestNoisyWindowsIndependent re-pins window independence under the
// rejection-sampled noise band: out-of-order regeneration must be
// byte-identical.
func TestNoisyWindowsIndependent(t *testing.T) {
	mk := func() Stream {
		s, err := NewStream(SmallNoisyConfig("noisy", 7))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(), mk()
	info := a.Info()
	for _, w := range []int{info.Windows - 1, 0, info.Windows / 3} {
		wa := a.GenWindow(w, nil)
		wb := b.GenWindow(w, nil)
		if len(wa) != len(wb) {
			t.Fatalf("window %d: %d vs %d flows", w, len(wa), len(wb))
		}
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("window %d flow %d differs", w, i)
			}
		}
	}
}

// allNoiseBase is a degenerate stub base whose noise predicate rejects
// every pair: the worst case for the expansion's rejection loop.
type allNoiseBase struct {
	Stream
}

func (allNoiseBase) basePairKeys() map[model.FlowKey]struct{} {
	return map[model.FlowKey]struct{}{}
}
func (allNoiseBase) noisePairExcluded(model.FlowKey) bool { return true }

// TestExpandTerminatesUnderTotalNoiseExclusion pins the bounded escape
// of the extras rejection loop: even when the base reserves the entire
// pair space for noise, GenWindow must terminate (mirroring the
// generator's own bounded noise draw) instead of spinning forever.
func TestExpandTerminatesUnderTotalNoiseExclusion(t *testing.T) {
	inner, err := NewStream(SmallConfig("degenerate", 5))
	if err != nil {
		t.Fatal(err)
	}
	exp, err := ExpandStream(allNoiseBase{inner}, 0.10, 8, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	info := exp.Info()
	done := make(chan int, 1)
	go func() { done <- len(exp.GenWindow(info.Windows-1, nil)) }()
	select {
	case n := <-done:
		if n == 0 {
			t.Error("window generated no flows")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("GenWindow hung under total noise exclusion")
	}
}
