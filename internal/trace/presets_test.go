package trace

import (
	"testing"
)

// TestTableIICalibration regenerates the Table II datasets at reduced
// scale and checks that the average 5-way centrality lands in the
// paper's bands: real ≈ 0.85, Syn-A ≈ 0.85, Syn-B ≈ 0.72, Syn-C ≈ 0.61,
// with strict ordering A > B > C.
func TestTableIICalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs full-topology generators")
	}
	type target struct {
		name string
		gen  func() (*Trace, error)
		want float64
		tol  float64
	}
	targets := []target{
		{"real", func() (*Trace, error) { return RealLike(5000, 1) }, 0.85, 0.10},
		{"syn-a", func() (*Trace, error) { return SynA(50_000, 1) }, 0.85, 0.10},
		{"syn-b", func() (*Trace, error) { return SynB(70_000, 1) }, 0.72, 0.10},
		{"syn-c", func() (*Trace, error) { return SynC(100_000, 1) }, 0.61, 0.10},
	}
	got := make(map[string]float64, len(targets))
	for _, tgt := range targets {
		tr, err := tgt.gen()
		if err != nil {
			t.Fatalf("%s: %v", tgt.name, err)
		}
		c, err := AverageCentrality(tr, 5, 7)
		if err != nil {
			t.Fatalf("%s centrality: %v", tgt.name, err)
		}
		got[tgt.name] = c
		t.Logf("%s: centrality=%.3f (paper %.2f)", tgt.name, c, tgt.want)
		if c < tgt.want-tgt.tol || c > tgt.want+tgt.tol {
			t.Errorf("%s centrality = %.3f, want %.2f ± %.2f", tgt.name, c, tgt.want, tgt.tol)
		}
	}
	if !(got["syn-a"] > got["syn-b"] && got["syn-b"] > got["syn-c"]) {
		t.Errorf("centrality ordering violated: A=%.3f B=%.3f C=%.3f",
			got["syn-a"], got["syn-b"], got["syn-c"])
	}
}

func TestRealLikePairStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("full real-like topology")
	}
	tr, err := RealLike(5000, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := ComputeStats(tr)
	// §II-A: ~11.6k communicating pairs out of >20M, over 90% of flows
	// from about 10% of the pairs that exchanged traffic.
	if st.DistinctPairs > RealCommunicatingPairs {
		t.Errorf("DistinctPairs = %d, want ≤ %d", st.DistinctPairs, RealCommunicatingPairs)
	}
	if st.PossiblePairs < 18_000_000 {
		t.Errorf("PossiblePairs = %d, want tens of millions", st.PossiblePairs)
	}
	if share := TopPairsShare(tr, RealCommunicatingPairs/10); share < 0.80 {
		t.Errorf("TopPairsShare(10%% of pool) = %.3f, want ≈ 0.90", share)
	}
	if tr.Directory.NumHosts() < 6000 || tr.Directory.NumHosts() > 7000 {
		t.Errorf("hosts = %d, want ≈ 6509", tr.Directory.NumHosts())
	}
}
