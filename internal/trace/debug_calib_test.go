package trace

import (
	"sort"
	"testing"

	"lazyctrl/internal/graph"
	"lazyctrl/internal/model"
)

// TestDebugCutComposition is a calibration diagnostic: it reports which
// flow classes the balanced 5-way partition actually cuts.
func TestDebugCutComposition(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	tr, err := RealLike(5000, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[model.FlowKey]int64)
	hostSet := make(map[model.HostID]struct{})
	for i := range tr.Flows {
		f := &tr.Flows[i]
		counts[model.FlowKey{Src: f.Src, Dst: f.Dst}.Canonical()]++
		hostSet[f.Src] = struct{}{}
		hostSet[f.Dst] = struct{}{}
	}
	hosts := make([]model.HostID, 0, len(hostSet))
	for h := range hostSet {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	index := make(map[model.HostID]int, len(hosts))
	for i, h := range hosts {
		index[h] = i
	}
	b := graph.NewBuilder(len(hosts))
	for key, c := range counts {
		b.AddEdge(index[key.Src], index[key.Dst], c)
	}
	g := b.Build()
	even := (g.TotalVertexWeight() + 4) / 5
	part, err := graph.PartitionKWay(g, graph.PartitionOptions{K: 5, MaxPartWeight: even + even/50 + 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Classify pairs: same tenant vs cross tenant; heavy (≥3 flows) vs
	// light.
	var totalW, cutW, crossTenantW, crossTenantCutW, intraTenantW, intraTenantCutW int64
	for key, c := range counts {
		cut := part[index[key.Src]] != part[index[key.Dst]]
		totalW += c
		if cut {
			cutW += c
		}
		sameTenant := tr.Directory.Host(key.Src).Tenant == tr.Directory.Host(key.Dst).Tenant
		if sameTenant {
			intraTenantW += c
			if cut {
				intraTenantCutW += c
			}
		} else {
			crossTenantW += c
			if cut {
				crossTenantCutW += c
			}
		}
	}
	t.Logf("flows=%d active hosts=%d pairs=%d", totalW, len(hosts), len(counts))
	t.Logf("cut share total: %.3f", float64(cutW)/float64(totalW))
	t.Logf("cross-tenant: weight share %.3f, cut within class %.3f",
		float64(crossTenantW)/float64(totalW), float64(crossTenantCutW)/float64(crossTenantW))
	t.Logf("intra-tenant: weight share %.3f, cut within class %.3f",
		float64(intraTenantW)/float64(totalW), float64(intraTenantCutW)/float64(intraTenantW))
	// Per-group centrality and sizes.
	intra := make([]int64, 5)
	touch := make([]int64, 5)
	size := make([]int, 5)
	for _, p := range part {
		size[p]++
	}
	for key, c := range counts {
		pa, pb := part[index[key.Src]], part[index[key.Dst]]
		if pa == pb {
			intra[pa] += c
			touch[pa] += c
		} else {
			touch[pa] += c
			touch[pb] += c
		}
	}
	for p := 0; p < 5; p++ {
		t.Logf("group %d: size=%d intra=%d touch=%d centrality=%.3f",
			p, size[p], intra[p], touch[p], float64(intra[p])/float64(touch[p]))
	}
}
