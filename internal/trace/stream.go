package trace

import (
	"sync"
	"time"

	"lazyctrl/internal/model"
	"lazyctrl/internal/tenant"
)

// This file is the streaming half of the trace pipeline. A Stream
// yields time-ordered flow windows on demand instead of materializing
// the whole flow slice, so the emulation's resident set is O(window)
// regardless of trace length — which is what makes the paper's
// full-scale synthetic traces (2.7–5.1B flows, §V) reachable at all.
// Each generator window is re-seeded deterministically from
// (seed, window index) via splitmix64, so any window is synthesizable
// independently of its predecessors: windows can be generated lazily,
// out of order, or in parallel on a bounded prefetch pipeline while
// the consumer drains the previous one, and the result is always the
// same flows in the same order.

// StreamInfo is a stream's static metadata: everything a consumer
// needs without generating a single flow.
type StreamInfo struct {
	Name string
	// Duration is the trace span (24h for all paper traces).
	Duration time.Duration
	// Directory holds tenants, hosts, and host→switch placement.
	Directory *tenant.Directory
	// P, Q, and Scale are the Table II parameters of the generator.
	P, Q  int
	Scale int
	// Windows is the number of time windows the trace is partitioned
	// into; window w spans [WindowStart(w), WindowStart(w+1)).
	Windows int
	// TotalFlows is the exact flow count across all windows.
	TotalFlows int
	// MaxWindowFlows is the largest per-window flow count — the
	// streaming pipeline's peak flow-buffer footprint, in flows.
	MaxWindowFlows int
}

// WindowStart returns the start of window w. Integer arithmetic keeps
// the boundaries exact (no accumulated drift): window w spans
// [Duration·w/Windows, Duration·(w+1)/Windows).
func (i StreamInfo) WindowStart(w int) time.Duration {
	if i.Windows <= 0 {
		return 0
	}
	return i.Duration * time.Duration(w) / time.Duration(i.Windows)
}

// WindowBounds returns window w's [from, to) span.
func (i StreamInfo) WindowBounds(w int) (from, to time.Duration) {
	return i.WindowStart(w), i.WindowStart(w + 1)
}

// Stream is a lazily generable flow source: the trace's flows
// partitioned into time-ordered windows, each synthesizable on demand.
// Implementations must be deterministic per window and safe for
// concurrent GenWindow calls with distinct windows (the prefetch
// pipeline generates ahead while the consumer drains).
type Stream interface {
	// Info returns the stream's static metadata.
	Info() StreamInfo
	// GenWindow appends window w's flows, sorted by Start, to buf and
	// returns the extended slice. buf is a reusable scratch slice:
	// passing the previous window's buffer re-sliced to [:0] keeps the
	// pipeline's flow memory flat at one window.
	GenWindow(w int, buf []Flow) []Flow
}

// SplitMix64 is the SplitMix64 mixer: the window seeding below runs it
// over (seed, window) so every window owns an independent, reproducible
// random stream, and the replay engines hash pair keys through the same
// mixer (exported so there is exactly one copy of the bit pattern the
// pipeline's determinism claims rest on).
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func splitmix64(x uint64) uint64 { return SplitMix64(x) }

// windowSeeds derives the two PCG seed words of window w from the
// stream seed: splitmix over (seed, window), per-purpose salted so
// combinators (Expand) draw from streams disjoint from the base
// generator's.
func windowSeeds(seed, salt uint64, w int) (uint64, uint64) {
	x := splitmix64(seed ^ salt ^ (uint64(w)+1)*0x9e3779b97f4a7c15)
	return x, splitmix64(x ^ 0xbf58476d1ce4e5b9)
}

// apportion splits total across len(weights) windows proportionally to
// the weights, deterministically and exactly (the counts sum to
// total): cumulative-rounding assignment, so a window's count depends
// only on the cumulative weight up to it, never on sampling noise.
func apportion(total int, weights []float64) []int {
	counts := make([]int, len(weights))
	if len(weights) == 0 {
		return counts
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	if sum <= 0 {
		counts[0] = total
		return counts
	}
	var cum float64
	prev := 0
	for i, w := range weights {
		cum += w
		next := int(float64(total)*cum/sum + 0.5)
		if i == len(weights)-1 {
			next = total // absorb rounding residue exactly
		}
		counts[i] = next - prev
		prev = next
	}
	return counts
}

// maxInts returns the largest element (0 for empty).
func maxInts(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Materialize collects every window of a stream into a conventional
// *Trace — the thin materialized adapter kept for small tests and for
// consumers that genuinely need random access. The flow order is the
// stream's window order (windows are time-disjoint and internally
// sorted, so the result is globally sorted without a re-sort), which
// is what makes streamed and materialized consumption byte-identical.
func Materialize(s Stream) *Trace {
	info := s.Info()
	flows := make([]Flow, 0, info.TotalFlows)
	for w := 0; w < info.Windows; w++ {
		flows = s.GenWindow(w, flows)
	}
	return &Trace{
		Name:      info.Name,
		Duration:  info.Duration,
		Flows:     flows,
		Directory: info.Directory,
		P:         info.P,
		Q:         info.Q,
		Scale:     info.Scale,
	}
}

// sliceStream adapts a materialized *Trace to the Stream interface:
// GenWindow returns sub-slices of the flow slice (zero copy).
type sliceStream struct {
	t       *Trace
	windows int

	pairsOnce sync.Once
	pairs     map[model.FlowKey]struct{}
}

// Stream returns a slice-backed stream over the materialized trace,
// partitioned into the given number of windows (0 selects one per
// hour). Windows are served as sub-slices of Flows, so the adapter
// adds no memory; it exists so stream consumers and combinators can
// run over small materialized traces in tests.
func (t *Trace) Stream(windows int) Stream {
	if windows <= 0 {
		windows = 24
	}
	return &sliceStream{t: t, windows: windows}
}

func (s *sliceStream) Info() StreamInfo {
	info := StreamInfo{
		Name:       s.t.Name,
		Duration:   s.t.Duration,
		Directory:  s.t.Directory,
		P:          s.t.P,
		Q:          s.t.Q,
		Scale:      s.t.Scale,
		Windows:    s.windows,
		TotalFlows: len(s.t.Flows),
	}
	for w := 0; w < s.windows; w++ {
		from, to := info.WindowBounds(w)
		if n := len(s.t.Window(from, to)); n > info.MaxWindowFlows {
			info.MaxWindowFlows = n
		}
	}
	return info
}

func (s *sliceStream) GenWindow(w int, buf []Flow) []Flow {
	info := StreamInfo{Duration: s.t.Duration, Windows: s.windows}
	from, to := info.WindowBounds(w)
	return append(buf, s.t.Window(from, to)...)
}

// basePairKeys implements the pair-pool hook ExpandStream uses to
// place extra flows on previously silent pairs: for a materialized
// trace the realized pairs are known exactly.
func (s *sliceStream) basePairKeys() map[model.FlowKey]struct{} {
	s.pairsOnce.Do(func() {
		s.pairs = make(map[model.FlowKey]struct{})
		for i := range s.t.Flows {
			f := &s.t.Flows[i]
			s.pairs[model.FlowKey{Src: f.Src, Dst: f.Dst}.Canonical()] = struct{}{}
		}
	})
	return s.pairs
}

// Prefetcher generates a stream's windows ahead of the consumer on a
// bounded pipeline: up to depth windows are in flight concurrently,
// and Next hands them out strictly in window order. Window contents
// are independent of scheduling (each window owns its rng), so the
// pipeline changes wall-clock, never results. Buffers returned by
// Next should be handed back via Recycle to keep the pipeline's
// memory flat at ~depth windows.
type Prefetcher struct {
	s     Stream
	slots chan chan []Flow
	free  chan []Flow
	sem   chan struct{}
	done  chan struct{}
	once  sync.Once
	next  int
}

// NewPrefetcher starts a pipeline over windows [first, last] of s with
// the given concurrency depth (values < 1 select 1).
func NewPrefetcher(s Stream, first, last, depth int) *Prefetcher {
	if depth < 1 {
		depth = 1
	}
	p := &Prefetcher{
		s:     s,
		slots: make(chan chan []Flow, depth),
		free:  make(chan []Flow, depth+1),
		sem:   make(chan struct{}, depth),
		done:  make(chan struct{}),
		next:  first,
	}
	go func() {
		defer close(p.slots)
		for w := first; w <= last; w++ {
			select {
			case p.sem <- struct{}{}:
			case <-p.done:
				return
			}
			slot := make(chan []Flow, 1)
			select {
			case p.slots <- slot:
			case <-p.done:
				return
			}
			go func(w int) {
				var buf []Flow
				select {
				case buf = <-p.free:
				default:
				}
				slot <- p.s.GenWindow(w, buf[:0])
			}(w)
		}
	}()
	return p
}

// Next returns the next window's flows and index, or ok=false when the
// range is exhausted. The slice is valid until it is recycled.
func (p *Prefetcher) Next() (flows []Flow, w int, ok bool) {
	slot, open := <-p.slots
	if !open {
		return nil, 0, false
	}
	flows = <-slot
	<-p.sem
	w = p.next
	p.next++
	return flows, w, true
}

// Recycle hands a window buffer back to the pipeline for reuse.
func (p *Prefetcher) Recycle(buf []Flow) {
	if cap(buf) == 0 {
		return
	}
	select {
	case p.free <- buf:
	default:
	}
}

// Close stops the pipeline; in-flight windows finish into their
// buffered slots and are collected. Safe to call more than once.
func (p *Prefetcher) Close() {
	p.once.Do(func() { close(p.done) })
}
