package trace

import (
	"math"
	"math/rand/v2"
	"sync"
	"time"

	"lazyctrl/internal/model"
)

// This file is the aggregate (analytic) form of the trace pipeline.
//
// A per-flow window materializes every flow record; at the paper's full
// scale that is 2.7–5.1B records per run, and the five-series Fig. 7
// sweep touches the population three traces × five runs over — no
// per-record pipeline fits a CI budget at that volume. But the replay
// engines' fluid fold never looks at individual flow arrivals beyond
// their (pair, window) placement: the cache model is a function of how
// many flows land on a pair within a window. AggWindow therefore emits
// one (pair, flow-count) cell per active pair per window — O(active
// pairs), not O(flows) — and replay.Fluid.FoldAggWindow consumes it
// with a closed-form per-pair cache model. The expectation-apportioned
// class budgets mirror GenWindow's per-flow classifier exactly, so the
// aggregate form is the per-flow population's expectation, not a new
// workload.
//
// The aggregate form is its own deterministic realization: equal
// (config, seed, window) ⇒ identical cells, but the cells are NOT the
// collapse of GenWindow's flows (the per-flow and aggregate random
// streams are salted apart). Consumers compare the two forms
// statistically — totals exactly, per-pair placement in expectation —
// never record by record.

// PairAgg is one aggregate population cell: Flows flow records between
// Src and Dst (canonical order, both directions combined — the fold
// splits the count evenly) within the window that emitted the cell.
type PairAgg struct {
	Src, Dst model.HostID
	Flows    int32
}

// AggStream is a Stream that can also emit its windows in aggregate
// (pair, count) form. The generator stream and the Expand combinator
// over it implement it; materialized adapters do not (a materialized
// trace is already paid for — fold it per flow).
type AggStream interface {
	Stream
	// AggWindow appends window w's aggregate cells to buf and returns
	// the extended slice. Cell counts sum exactly to the window's flow
	// count. Like GenWindow, it is safe to call concurrently for
	// distinct windows.
	AggWindow(w int, buf []PairAgg) []PairAgg
}

// BackgroundStream is an AggStream whose aggregate windows can separate
// a pair-resolved foreground from a background of independent one-off
// draws. The Expand combinator implements it: its extra flows land on
// fresh, previously silent pairs (ExpandIntraTenantShare of the draws
// inside a uniformly chosen tenant, the rest uniform over all hosts),
// so materializing them as count-1 cells is per-flow work in disguise —
// at paper scale the extras alone are billions of cells. Splitting them
// off lets the fluid fold count the background in closed form (the
// draws are i.i.d., so only their number and mixture matter) while the
// foreground keeps its exact per-pair cells.
type BackgroundStream interface {
	AggStream
	// AggWindowSplit appends window w's foreground cells to buf and
	// returns the extended slice plus the number of background flows in
	// the window. Foreground cells plus background count sum exactly to
	// the window's flow count.
	AggWindowSplit(w int, buf []PairAgg) ([]PairAgg, int)
	// BackgroundSample draws k independent flows from window w's
	// background population (same pair mixture, start span, and payload
	// law as the per-flow form) using the caller's rng — the
	// aggregate-population probe's thinned materialization.
	BackgroundSample(w, k int, rng *rand.Rand) []Flow
}

// SamplePayload draws one flow's payload from the generators' shared
// flow-size mix. Exported for the aggregate-population probe emitter,
// which materializes the sampled probe flows itself and still needs
// per-flow sizes for the fast-path latency accounting.
func SamplePayload(rng *rand.Rand) (bytes int32, packets int16) {
	return samplePayload(rng)
}

// aggFlowSalt separates the aggregate emission's per-window random
// streams from the per-flow generator's (and every other consumer's).
const aggFlowSalt = 0xa99a77a99a77a99a

// expandAggSalt is the Expand combinator's aggregate-mode counterpart
// of expandSalt.
const expandAggSalt = 0x0ddc0ffa

// aggDrawFactor selects the per-class emission strategy: a class whose
// window budget is below aggDrawFactor × pool size is emitted by
// per-flow random draws (preserving the multinomial repeat statistics
// the cache model keys on — a cold pair seen twice in one window is a
// different cache story than two pairs seen once); a denser class is
// emitted as its exact expectation apportionment, where the per-pair
// counts are large enough that sampling noise is immaterial.
const aggDrawFactor = 4

// aggScratch is the reusable per-call emission scratch. Pooled because
// AggWindow must stay safe for concurrent distinct-window calls.
type aggScratch struct {
	counts  []int32
	touched []int32
}

var aggScratchPool = sync.Pool{New: func() any { return &aggScratch{} }}

// emitApportioned distributes total flows over a pool proportionally to
// weightAt, deterministically and exactly (cumulative rounding, as in
// apportion). The walk starts at the rotating offset off so the
// rounding residue does not land on the same pairs every window.
func emitApportioned(total int, poolLen, off int, weightAt func(int) float64, emit func(i int, n int32)) {
	if total <= 0 || poolLen == 0 {
		return
	}
	var sum float64
	for i := 0; i < poolLen; i++ {
		sum += weightAt(i)
	}
	if sum <= 0 {
		emit(off%poolLen, int32(total))
		return
	}
	var cum float64
	prev := 0
	for j := 0; j < poolLen; j++ {
		p := j + off
		if p >= poolLen {
			p -= poolLen
		}
		cum += weightAt(p)
		next := int(float64(total)*cum/sum + 0.5)
		if j == poolLen-1 {
			next = total
		}
		if n := next - prev; n > 0 {
			emit(p, int32(n))
		}
		prev = next
	}
}

// emitDrawn distributes total flows by independent per-flow draws,
// binned per pair (first-touch emission order, deterministic under the
// window RNG).
func emitDrawn(total, poolLen int, draw func() int, emit func(i int, n int32)) {
	if total <= 0 || poolLen == 0 {
		return
	}
	sc := aggScratchPool.Get().(*aggScratch)
	if cap(sc.counts) < poolLen {
		sc.counts = make([]int32, poolLen)
	}
	counts := sc.counts[:poolLen]
	touched := sc.touched[:0]
	for j := 0; j < total; j++ {
		i := draw()
		if counts[i] == 0 {
			touched = append(touched, int32(i))
		}
		counts[i]++
	}
	for _, i := range touched {
		emit(int(i), counts[i])
		counts[i] = 0
	}
	sc.touched = touched[:0]
	aggScratchPool.Put(sc)
}

// rotOffset derives a per-window starting offset for the apportionment
// walk (Fibonacci multiplicative hash of the window index).
func rotOffset(w, poolLen int) int {
	if poolLen <= 0 {
		return 0
	}
	return int((uint64(w) * 2654435761) % uint64(poolLen))
}

// AggWindow implements AggStream: window w's flow budget split over the
// flow classes exactly as GenWindow's per-flow classifier splits it in
// expectation, then over each class's pair pool.
func (g *genStream) AggWindow(w int, buf []PairAgg) []PairAgg {
	if w < 0 || w >= g.info.Windows {
		return buf
	}
	count := g.counts[w]
	if count == 0 {
		return buf
	}
	s1, s2 := windowSeeds(g.cfg.Seed, aggFlowSalt, w)
	rng := rand.New(rand.NewPCG(s1, s2))
	from, to := g.info.WindowBounds(w)
	mid := from + (to-from)/2

	// Class shares mirror GenWindow's switch, including the fall-through
	// of an empty scatter pool into the noise band and of an empty cold
	// band into the hot set.
	scatterShare := 0.0
	if len(g.scatter) > 0 {
		scatterShare = g.scatterCut
	}
	noiseShare := g.noiseCut - scatterShare
	hotShare := g.hotCut - g.noiseCut
	coldShare := 1 - g.hotCut
	if len(g.cold) == 0 {
		hotShare += coldShare
		coldShare = 0
	}
	shares := apportion(count, []float64{scatterShare, noiseShare, hotShare, coldShare})
	nScatter, nNoise, nHot, nCold := shares[0], shares[1], shares[2], shares[3]

	emitPair := func(k model.FlowKey, n int32) {
		buf = append(buf, PairAgg{Src: k.Src, Dst: k.Dst, Flows: n})
	}

	// Scatter: uniform over the scatter band.
	if nScatter > 0 {
		if nScatter < aggDrawFactor*len(g.scatter) {
			emitDrawn(nScatter, len(g.scatter),
				func() int { return rng.IntN(len(g.scatter)) },
				func(i int, n int32) { emitPair(g.scatter[i], n) })
		} else {
			emitApportioned(nScatter, len(g.scatter), rotOffset(w, len(g.scatter)),
				func(int) float64 { return 1 },
				func(i int, n int32) { emitPair(g.scatter[i], n) })
		}
	}

	// Noise: one-off pairs from the noise half of the pair space, each a
	// count-1 cell (GenWindow's own rejection loop, minus the payload).
	for j := 0; j < nNoise; j++ {
		var key model.FlowKey
		for tries := 0; ; tries++ {
			a := model.HostID(1 + rng.IntN(g.numHosts))
			b := model.HostID(1 + rng.IntN(g.numHosts))
			if a == b {
				continue
			}
			key = model.FlowKey{Src: a, Dst: b}
			if g.noiseEligible(key) || tries >= 256 {
				break
			}
		}
		emitPair(key.Canonical(), 1)
	}

	// Hot: Zipf weights, drift-modulated at the window midpoint (the
	// window spans are minutes against a day-period drift, so the
	// midpoint modulation is sampleHot's acceptance rate to first
	// order).
	if nHot > 0 {
		mod := func(i int) float64 { return 1 }
		if g.hotPhase != nil {
			frac := float64(mid) / float64(g.cfg.Duration)
			amp := g.cfg.DriftAmplitude
			mod = func(i int) float64 {
				return (1 + amp*math.Cos(2*math.Pi*(frac-g.hotPhase[i]))) / (1 + amp)
			}
		}
		if nHot < aggDrawFactor*len(g.hot) {
			emitDrawn(nHot, len(g.hot),
				func() int {
					for {
						u := rng.Float64() * g.hotCum[len(g.hotCum)-1]
						i := searchFloat64s(g.hotCum, u)
						if g.hotPhase == nil || rng.Float64() < mod(i) {
							return i
						}
					}
				},
				func(i int, n int32) { emitPair(g.hot[i], n) })
		} else {
			emitApportioned(nHot, len(g.hot), rotOffset(w, len(g.hot)),
				func(i int) float64 { return mod(i) / float64(i+1) },
				func(i int, n int32) { emitPair(g.hot[i], n) })
		}
	}

	// Cold: uniform over the cold intra band. At paper scale the
	// per-pair expectation is O(1) flows per window, so this class runs
	// on the draw path and keeps its multinomial repeats.
	if nCold > 0 {
		if nCold < aggDrawFactor*len(g.cold) {
			emitDrawn(nCold, len(g.cold),
				func() int { return rng.IntN(len(g.cold)) },
				func(i int, n int32) { emitPair(g.cold[i], n) })
		} else {
			emitApportioned(nCold, len(g.cold), rotOffset(w, len(g.cold)),
				func(int) float64 { return 1 },
				func(i int, n int32) { emitPair(g.cold[i], n) })
		}
	}
	return buf
}

// searchFloat64s is sort.SearchFloat64s without the package dependency
// drift — kept local so the draw path's inner loop inlines.
func searchFloat64s(a []float64, x float64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if a[m] < x {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// AggWindow implements AggStream for the Expand combinator: the base
// window's cells plus this window's extra flows as count-1 cells on
// previously silent pairs (the same pair-draw loop as the per-flow
// extras, minus start times and payloads). Duplicate pairs within a
// window may emit multiple cells; the fold's per-key aggregation merges
// them. Panics if the base stream cannot emit aggregate windows.
func (e *expandStream) AggWindow(w int, buf []PairAgg) []PairAgg {
	as, ok := e.base.(AggStream)
	if !ok {
		panic("trace: expand base does not support aggregate windows")
	}
	buf = as.AggWindow(w, buf)
	n := e.extraCounts[w]
	if n == 0 {
		return buf
	}
	excl := e.exclusion()
	dir := e.info.Directory
	numHosts := dir.NumHosts()
	tenantIDs := dir.TenantIDs()
	s1, s2 := windowSeeds(e.seed, expandAggSalt, w)
	rng := rand.New(rand.NewPCG(s1, s2))
	for added, tries := 0, 0; added < n; tries++ {
		var a, b model.HostID
		if rng.Float64() < ExpandIntraTenantShare && len(tenantIDs) > 0 {
			tn := dir.Tenant(tenantIDs[rng.IntN(len(tenantIDs))])
			if len(tn.Hosts) < 2 {
				continue
			}
			a = tn.Hosts[rng.IntN(len(tn.Hosts))]
			b = tn.Hosts[rng.IntN(len(tn.Hosts))]
		} else {
			a = model.HostID(1 + rng.IntN(numHosts))
			b = model.HostID(1 + rng.IntN(numHosts))
		}
		if a == b {
			continue
		}
		key := model.FlowKey{Src: a, Dst: b}.Canonical()
		if _, dup := excl[key]; dup {
			continue
		}
		if e.noiseExcl != nil && e.noiseExcl(key) && tries < 256 {
			continue
		}
		buf = append(buf, PairAgg{Src: key.Src, Dst: key.Dst, Flows: 1})
		added++
		tries = -1
	}
	return buf
}

// AggWindowSplit implements BackgroundStream: the base's cells as
// foreground (recursing through stacked expansions) and this window's
// extra flows as the background count.
func (e *expandStream) AggWindowSplit(w int, buf []PairAgg) ([]PairAgg, int) {
	if bs, ok := e.base.(BackgroundStream); ok {
		cells, bg := bs.AggWindowSplit(w, buf)
		return cells, bg + e.extraCounts[w]
	}
	as, ok := e.base.(AggStream)
	if !ok {
		panic("trace: expand base does not support aggregate windows")
	}
	return as.AggWindow(w, buf), e.extraCounts[w]
}

// BackgroundSample implements BackgroundStream: k independent draws
// from the window's extra-flow population — the same silent-pair
// mixture, start span, and payload law as GenWindow's extras, but under
// the caller's rng (the probe thins the background, so its draws are a
// uniform subsample of an i.i.d. population either way).
func (e *expandStream) BackgroundSample(w, k int, rng *rand.Rand) []Flow {
	if k <= 0 || e.extraCounts[w] == 0 {
		return nil
	}
	excl := e.exclusion()
	dir := e.info.Directory
	numHosts := dir.NumHosts()
	tenantIDs := dir.TenantIDs()
	wFrom, wTo := e.info.WindowBounds(w)
	spanFrom, spanTo := max(wFrom, e.from), min(wTo, e.to)
	span := float64(spanTo - spanFrom)
	out := make([]Flow, 0, k)
	for added, tries := 0, 0; added < k; tries++ {
		var a, b model.HostID
		if rng.Float64() < ExpandIntraTenantShare && len(tenantIDs) > 0 {
			tn := dir.Tenant(tenantIDs[rng.IntN(len(tenantIDs))])
			if len(tn.Hosts) < 2 {
				continue
			}
			a = tn.Hosts[rng.IntN(len(tn.Hosts))]
			b = tn.Hosts[rng.IntN(len(tn.Hosts))]
		} else {
			a = model.HostID(1 + rng.IntN(numHosts))
			b = model.HostID(1 + rng.IntN(numHosts))
		}
		if a == b {
			continue
		}
		key := model.FlowKey{Src: a, Dst: b}.Canonical()
		if _, dup := excl[key]; dup {
			continue
		}
		if e.noiseExcl != nil && e.noiseExcl(key) && tries < 256 {
			continue
		}
		bytes, packets := samplePayload(rng)
		out = append(out, Flow{
			Start:   spanFrom + time.Duration(rng.Float64()*span),
			Src:     a,
			Dst:     b,
			Bytes:   bytes,
			Packets: packets,
		})
		added++
		tries = -1
	}
	return out
}
