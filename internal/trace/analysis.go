package trace

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"lazyctrl/internal/graph"
	"lazyctrl/internal/grouping"
	"lazyctrl/internal/model"
)

// Expand produces the paper's "expanded" trace (§V-D): the base trace
// plus extraFraction (0.30) additional flows among host pairs that did
// NOT communicate in the base trace, injected during [fromHour, toHour)
// (8–24). Most new communication appears within tenants (applications
// growing inside their slices); the rest is uniform across the data
// center. The extra flows keep breaking traffic skewness over time,
// forcing grouping updates.
func Expand(base *Trace, extraFraction float64, fromHour, toHour int, seed uint64) (*Trace, error) {
	if extraFraction <= 0 {
		return nil, errors.New("trace: extraFraction must be positive")
	}
	if fromHour < 0 || toHour > 24 || fromHour >= toHour {
		return nil, fmt.Errorf("trace: invalid hour window [%d,%d)", fromHour, toHour)
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x0ddc0ffee))

	existing := make(map[model.FlowKey]struct{}, len(base.Flows))
	for i := range base.Flows {
		existing[model.FlowKey{Src: base.Flows[i].Src, Dst: base.Flows[i].Dst}.Canonical()] = struct{}{}
	}
	dir := base.Directory
	numHosts := dir.NumHosts()
	tenantIDs := dir.TenantIDs()
	extra := int(float64(len(base.Flows)) * extraFraction)
	hourLen := base.Duration / 24
	windowStart := time.Duration(fromHour) * hourLen
	windowLen := time.Duration(toHour-fromHour) * hourLen

	// intraShare of the extra flows connect previously silent pairs
	// within a tenant; the rest are uniform over all host pairs.
	const intraShare = 0.7

	flows := make([]Flow, 0, len(base.Flows)+extra)
	flows = append(flows, base.Flows...)
	for added := 0; added < extra; {
		var a, b model.HostID
		if rng.Float64() < intraShare && len(tenantIDs) > 0 {
			tn := dir.Tenant(tenantIDs[rng.IntN(len(tenantIDs))])
			if len(tn.Hosts) < 2 {
				continue
			}
			a = tn.Hosts[rng.IntN(len(tn.Hosts))]
			b = tn.Hosts[rng.IntN(len(tn.Hosts))]
		} else {
			a = model.HostID(1 + rng.IntN(numHosts))
			b = model.HostID(1 + rng.IntN(numHosts))
		}
		if a == b {
			continue
		}
		key := model.FlowKey{Src: a, Dst: b}.Canonical()
		if _, dup := existing[key]; dup {
			continue
		}
		bytes, packets := samplePayload(rng)
		flows = append(flows, Flow{
			Start:   windowStart + time.Duration(rng.Float64()*float64(windowLen)),
			Src:     a,
			Dst:     b,
			Bytes:   bytes,
			Packets: packets,
		})
		added++
	}
	sort.Slice(flows, func(i, j int) bool { return flows[i].Start < flows[j].Start })

	return &Trace{
		Name:      base.Name + "-expanded",
		Duration:  base.Duration,
		Flows:     flows,
		Directory: base.Directory,
		P:         base.P,
		Q:         base.Q,
		Scale:     base.Scale,
	}, nil
}

// Stats summarizes a trace the way §II-A characterizes the real one.
type Stats struct {
	Flows int
	// DistinctPairs is the number of host pairs that exchanged traffic.
	DistinctPairs int
	// PossiblePairs is n·(n-1)/2 over all hosts.
	PossiblePairs int64
	// TopDecileShare is the fraction of flows contributed by the top 10%
	// of communicating pairs.
	TopDecileShare float64
}

// ComputeStats scans the trace.
func ComputeStats(t *Trace) Stats {
	perPair := pairCountsDescending(t)
	top := len(perPair) / 10
	if top < 1 && len(perPair) > 0 {
		top = 1
	}
	n := int64(t.Directory.NumHosts())
	return Stats{
		Flows:          len(t.Flows),
		DistinctPairs:  len(perPair),
		PossiblePairs:  n * (n - 1) / 2,
		TopDecileShare: topShare(t, perPair, top),
	}
}

// TopPairsShare returns the fraction of flows carried by the n busiest
// host pairs. Use n = 10% of the communicating-pair pool to check the
// paper's skew statistic independently of trace scale (at reduced scale
// the cold pairs under-sample, so a realized-pair decile understates the
// skew).
func TopPairsShare(t *Trace, n int) float64 {
	return topShare(t, pairCountsDescending(t), n)
}

func pairCountsDescending(t *Trace) []int {
	counts := make(map[model.FlowKey]int)
	for i := range t.Flows {
		counts[model.FlowKey{Src: t.Flows[i].Src, Dst: t.Flows[i].Dst}.Canonical()]++
	}
	perPair := make([]int, 0, len(counts))
	for _, c := range counts {
		perPair = append(perPair, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(perPair)))
	return perPair
}

func topShare(t *Trace, perPair []int, n int) float64 {
	if len(t.Flows) == 0 {
		return 0
	}
	if n > len(perPair) {
		n = len(perPair)
	}
	sum := 0
	for i := 0; i < n; i++ {
		sum += perPair[i]
	}
	return float64(sum) / float64(len(t.Flows))
}

// AverageCentrality partitions the hosts into k balanced groups
// (k-way partitioning of the host traffic graph, as in §II-A) and
// returns the average group centrality: for each group, intra-group
// traffic divided by all traffic touching the group's hosts.
func AverageCentrality(t *Trace, k int, seed uint64) (float64, error) {
	if k < 2 {
		return 0, errors.New("trace: centrality needs k ≥ 2")
	}
	counts := make(map[model.FlowKey]int64)
	hostSet := make(map[model.HostID]struct{})
	for i := range t.Flows {
		f := &t.Flows[i]
		counts[model.FlowKey{Src: f.Src, Dst: f.Dst}.Canonical()]++
		hostSet[f.Src] = struct{}{}
		hostSet[f.Dst] = struct{}{}
	}
	if len(hostSet) < k {
		return 0, fmt.Errorf("trace: only %d active hosts for k=%d", len(hostSet), k)
	}
	hosts := make([]model.HostID, 0, len(hostSet))
	for h := range hostSet {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	index := make(map[model.HostID]int, len(hosts))
	for i, h := range hosts {
		index[h] = i
	}
	b := graph.NewBuilder(len(hosts))
	for key, c := range counts {
		b.AddEdge(index[key.Src], index[key.Dst], c)
	}
	g := b.Build()
	// The paper partitions the hosts "evenly": enforce tight balance
	// (2%) so the partitioner cannot dodge shared-service traffic by
	// skewing group sizes.
	even := (g.TotalVertexWeight() + int64(k) - 1) / int64(k)
	part, err := graph.PartitionKWay(g, graph.PartitionOptions{
		K:             k,
		MaxPartWeight: even + even/50 + 1,
		Seed:          seed,
	})
	if err != nil {
		return 0, fmt.Errorf("trace: centrality partition: %w", err)
	}
	intra := make([]float64, k)
	touch := make([]float64, k)
	for key, c := range counts {
		pa, pb := part[index[key.Src]], part[index[key.Dst]]
		w := float64(c)
		if pa == pb {
			intra[pa] += w
			touch[pa] += w
		} else {
			touch[pa] += w
			touch[pb] += w
		}
	}
	var sum float64
	groups := 0
	for p := 0; p < k; p++ {
		if touch[p] > 0 {
			sum += intra[p] / touch[p]
			groups++
		}
	}
	if groups == 0 {
		return 0, errors.New("trace: no traffic")
	}
	return sum / float64(groups), nil
}

// SwitchIntensity aggregates the flows in [from, to) into the switch-pair
// intensity matrix W (new flows per second between edge switches), using
// the trace's host placement. Every switch is registered even if idle.
func SwitchIntensity(t *Trace, from, to time.Duration) *grouping.Intensity {
	m := grouping.NewIntensity()
	for _, sw := range t.Directory.Switches() {
		m.AddSwitch(sw)
	}
	seconds := (to - from).Seconds()
	if seconds <= 0 {
		return m
	}
	perFlow := 1.0 / seconds
	for _, f := range t.Window(from, to) {
		src := t.Directory.Host(f.Src)
		dst := t.Directory.Host(f.Dst)
		if src == nil || dst == nil || src.Switch == dst.Switch {
			continue
		}
		m.Add(src.Switch, dst.Switch, perFlow)
	}
	return m
}
