package trace

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"lazyctrl/internal/graph"
	"lazyctrl/internal/grouping"
	"lazyctrl/internal/model"
	"lazyctrl/internal/tenant"
)

// Stats summarizes a trace the way §II-A characterizes the real one.
type Stats struct {
	Flows int
	// DistinctPairs is the number of host pairs that exchanged traffic.
	DistinctPairs int
	// PossiblePairs is n·(n-1)/2 over all hosts.
	PossiblePairs int64
	// TopDecileShare is the fraction of flows contributed by the top 10%
	// of communicating pairs.
	TopDecileShare float64
}

// StatsAccumulator folds flows one window at a time into the pair
// statistics behind Stats and TopPairsShare, so a streamed trace is
// characterized in O(distinct pairs) memory — bounded by the
// communicating-pair pool, not the flow count.
type StatsAccumulator struct {
	counts map[model.FlowKey]int
	flows  int
}

// NewStatsAccumulator returns an empty accumulator.
func NewStatsAccumulator() *StatsAccumulator {
	return &StatsAccumulator{counts: make(map[model.FlowKey]int)}
}

// Add folds one flow.
func (a *StatsAccumulator) Add(f Flow) {
	a.counts[model.FlowKey{Src: f.Src, Dst: f.Dst}.Canonical()]++
	a.flows++
}

// AddWindow folds a whole window.
func (a *StatsAccumulator) AddWindow(flows []Flow) {
	for i := range flows {
		a.Add(flows[i])
	}
}

// Flows returns the number of flows folded so far.
func (a *StatsAccumulator) Flows() int { return a.flows }

// pairCountsDescending returns the per-pair flow counts, largest first.
func (a *StatsAccumulator) pairCountsDescending() []int {
	perPair := make([]int, 0, len(a.counts))
	for _, c := range a.counts {
		perPair = append(perPair, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(perPair)))
	return perPair
}

// TopShare returns the fraction of flows carried by the n busiest host
// pairs.
func (a *StatsAccumulator) TopShare(n int) float64 {
	if a.flows == 0 {
		return 0
	}
	perPair := a.pairCountsDescending()
	if n > len(perPair) {
		n = len(perPair)
	}
	sum := 0
	for i := 0; i < n; i++ {
		sum += perPair[i]
	}
	return float64(sum) / float64(a.flows)
}

// Stats finalizes the accumulated statistics against a topology.
func (a *StatsAccumulator) Stats(dir *tenant.Directory) Stats {
	top := len(a.counts) / 10
	if top < 1 && len(a.counts) > 0 {
		top = 1
	}
	n := int64(dir.NumHosts())
	return Stats{
		Flows:          a.flows,
		DistinctPairs:  len(a.counts),
		PossiblePairs:  n * (n - 1) / 2,
		TopDecileShare: a.TopShare(top),
	}
}

// ComputeStats scans a materialized trace.
func ComputeStats(t *Trace) Stats {
	a := NewStatsAccumulator()
	a.AddWindow(t.Flows)
	return a.Stats(t.Directory)
}

// StreamStats characterizes a stream window by window, never holding
// more than one window of flows.
func StreamStats(s Stream) Stats {
	info := s.Info()
	a := NewStatsAccumulator()
	buf := make([]Flow, 0, info.MaxWindowFlows)
	for w := 0; w < info.Windows; w++ {
		buf = s.GenWindow(w, buf[:0])
		a.AddWindow(buf)
	}
	return a.Stats(info.Directory)
}

// TopPairsShare returns the fraction of flows carried by the n busiest
// host pairs. Use n = 10% of the communicating-pair pool to check the
// paper's skew statistic independently of trace scale (at reduced scale
// the cold pairs under-sample, so a realized-pair decile understates the
// skew).
func TopPairsShare(t *Trace, n int) float64 {
	a := NewStatsAccumulator()
	a.AddWindow(t.Flows)
	return a.TopShare(n)
}

// pairCounter folds flows into canonical-pair weights and the active
// host set — the shared input of the centrality computations.
type pairCounter struct {
	counts map[model.FlowKey]int64
	hosts  map[model.HostID]struct{}
}

func newPairCounter() *pairCounter {
	return &pairCounter{
		counts: make(map[model.FlowKey]int64),
		hosts:  make(map[model.HostID]struct{}),
	}
}

func (p *pairCounter) addWindow(flows []Flow) {
	for i := range flows {
		f := &flows[i]
		p.counts[model.FlowKey{Src: f.Src, Dst: f.Dst}.Canonical()]++
		p.hosts[f.Src] = struct{}{}
		p.hosts[f.Dst] = struct{}{}
	}
}

// topPairs returns the k heaviest canonical pairs, weight-descending,
// ties broken by (Src, Dst) so the result is deterministic.
func (p *pairCounter) topPairs(k int) []model.FlowKey {
	pairs := make([]model.FlowKey, 0, len(p.counts))
	for key := range p.counts {
		pairs = append(pairs, key)
	}
	sort.Slice(pairs, func(i, j int) bool {
		ci, cj := p.counts[pairs[i]], p.counts[pairs[j]]
		if ci != cj {
			return ci > cj
		}
		if pairs[i].Src != pairs[j].Src {
			return pairs[i].Src < pairs[j].Src
		}
		return pairs[i].Dst < pairs[j].Dst
	})
	if len(pairs) > k {
		pairs = pairs[:k:k]
	}
	return pairs
}

// centrality partitions the accumulated host traffic graph into k
// balanced groups and returns the average group centrality.
func (p *pairCounter) centrality(k int, seed uint64) (float64, error) {
	if len(p.hosts) < k {
		return 0, fmt.Errorf("trace: only %d active hosts for k=%d", len(p.hosts), k)
	}
	hosts := make([]model.HostID, 0, len(p.hosts))
	for h := range p.hosts {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i] < hosts[j] })
	index := make(map[model.HostID]int, len(hosts))
	for i, h := range hosts {
		index[h] = i
	}
	// Iterate pairs in sorted order everywhere below: edge insertion
	// order shapes the builder's adjacency layout (and thus the
	// partitioner's tie-breaking), and float accumulation is not
	// associative, so map-iteration order would change results run to
	// run (TestCentralityStable pins this).
	pairs := make([]model.FlowKey, 0, len(p.counts))
	for key := range p.counts {
		pairs = append(pairs, key)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Src != pairs[j].Src {
			return pairs[i].Src < pairs[j].Src
		}
		return pairs[i].Dst < pairs[j].Dst
	})
	b := graph.NewBuilder(len(hosts))
	for _, key := range pairs {
		b.AddEdge(index[key.Src], index[key.Dst], p.counts[key])
	}
	g := b.Build()
	// The paper partitions the hosts "evenly": enforce tight balance
	// (2%) so the partitioner cannot dodge shared-service traffic by
	// skewing group sizes.
	even := (g.TotalVertexWeight() + int64(k) - 1) / int64(k)
	part, err := graph.PartitionKWay(g, graph.PartitionOptions{
		K:             k,
		MaxPartWeight: even + even/50 + 1,
		Seed:          seed,
	})
	if err != nil {
		return 0, fmt.Errorf("trace: centrality partition: %w", err)
	}
	intra := make([]float64, k)
	touch := make([]float64, k)
	for _, key := range pairs {
		pa, pb := part[index[key.Src]], part[index[key.Dst]]
		w := float64(p.counts[key])
		if pa == pb {
			intra[pa] += w
			touch[pa] += w
		} else {
			touch[pa] += w
			touch[pb] += w
		}
	}
	var sum float64
	groups := 0
	for g := 0; g < k; g++ {
		if touch[g] > 0 {
			sum += intra[g] / touch[g]
			groups++
		}
	}
	if groups == 0 {
		return 0, errors.New("trace: no traffic")
	}
	return sum / float64(groups), nil
}

// AverageCentrality partitions the hosts into k balanced groups
// (k-way partitioning of the host traffic graph, as in §II-A) and
// returns the average group centrality: for each group, intra-group
// traffic divided by all traffic touching the group's hosts.
func AverageCentrality(t *Trace, k int, seed uint64) (float64, error) {
	if k < 2 {
		return 0, errors.New("trace: centrality needs k ≥ 2")
	}
	p := newPairCounter()
	p.addWindow(t.Flows)
	return p.centrality(k, seed)
}

// StreamCentrality is AverageCentrality over a stream: the pair-weight
// graph accumulates window by window (O(pairs) memory), then partitions
// exactly as the materialized path does.
func StreamCentrality(s Stream, k int, seed uint64) (float64, error) {
	if k < 2 {
		return 0, errors.New("trace: centrality needs k ≥ 2")
	}
	info := s.Info()
	p := newPairCounter()
	buf := make([]Flow, 0, info.MaxWindowFlows)
	for w := 0; w < info.Windows; w++ {
		buf = s.GenWindow(w, buf[:0])
		p.addWindow(buf)
	}
	return p.centrality(k, seed)
}

// Profile characterizes a stream completely in a single window sweep:
// pair statistics, k-way average centrality, and the full-span
// switch-intensity matrix. Tools that report all three (cmd/tracegen)
// use it so a full-scale trace is generated once, not three times.
type Profile struct {
	Stats      Stats
	Centrality float64
	Intensity  *grouping.Intensity
	// TopPairs is the TopPairsK heaviest host pairs (weight-descending,
	// deterministic tie-break) — the sampled engines' take-all stratum
	// (replay.TakeAllKeys).
	TopPairs []model.FlowKey
}

// TopPairsK is how many heaviest pairs StreamProfile surfaces for the
// sampled engines' take-all stratum.
const TopPairsK = 16

// StreamProfile runs the one-sweep characterization.
func StreamProfile(s Stream, k int, seed uint64) (Profile, error) {
	info := s.Info()
	a := NewStatsAccumulator()
	p := newPairCounter()
	m := grouping.NewIntensity()
	for _, sw := range info.Directory.Switches() {
		m.AddSwitch(sw)
	}
	perFlow := 0.0
	if secs := info.Duration.Seconds(); secs > 0 {
		perFlow = 1.0 / secs
	}
	buf := make([]Flow, 0, info.MaxWindowFlows)
	for w := 0; w < info.Windows; w++ {
		buf = s.GenWindow(w, buf[:0])
		a.AddWindow(buf)
		p.addWindow(buf)
		intensityFold(m, info.Directory, buf, 0, info.Duration, perFlow)
	}
	prof := Profile{Stats: a.Stats(info.Directory), Intensity: m, TopPairs: p.topPairs(TopPairsK)}
	c, err := p.centrality(k, seed)
	if err != nil {
		// Stats and intensity are still valid (centrality needs ≥ k
		// active hosts; tiny traces legitimately fail it).
		return prof, err
	}
	prof.Centrality = c
	return prof, nil
}

// intensityFold adds one window's flows to the intensity matrix.
func intensityFold(m *grouping.Intensity, dir *tenant.Directory, flows []Flow, from, to time.Duration, perFlow float64) {
	for i := range flows {
		f := &flows[i]
		if f.Start < from || f.Start >= to {
			continue
		}
		src := dir.Host(f.Src)
		dst := dir.Host(f.Dst)
		if src == nil || dst == nil || src.Switch == dst.Switch {
			continue
		}
		m.Add(src.Switch, dst.Switch, perFlow)
	}
}

// SwitchIntensity aggregates the flows in [from, to) into the switch-pair
// intensity matrix W (new flows per second between edge switches), using
// the trace's host placement. Every switch is registered even if idle.
func SwitchIntensity(t *Trace, from, to time.Duration) *grouping.Intensity {
	m := grouping.NewIntensity()
	for _, sw := range t.Directory.Switches() {
		m.AddSwitch(sw)
	}
	seconds := (to - from).Seconds()
	if seconds <= 0 {
		return m
	}
	intensityFold(m, t.Directory, t.Window(from, to), from, to, 1.0/seconds)
	return m
}

// StreamIntensity is SwitchIntensity over a stream: only the windows
// overlapping [from, to) are generated, one reused buffer deep, so the
// matrix for any span costs O(window) flow memory — and a warmup span
// of one hour costs one 24th of the generation work, not a whole
// trace. The accumulation order matches the materialized path flow for
// flow, so the resulting matrix is byte-identical to
// SwitchIntensity(Materialize(s), from, to).
func StreamIntensity(s Stream, from, to time.Duration) *grouping.Intensity {
	info := s.Info()
	m := grouping.NewIntensity()
	for _, sw := range info.Directory.Switches() {
		m.AddSwitch(sw)
	}
	seconds := (to - from).Seconds()
	if seconds <= 0 {
		return m
	}
	perFlow := 1.0 / seconds
	buf := make([]Flow, 0, info.MaxWindowFlows)
	for w := 0; w < info.Windows; w++ {
		wFrom, wTo := info.WindowBounds(w)
		if wTo <= from {
			continue
		}
		if wFrom >= to {
			break
		}
		buf = s.GenWindow(w, buf[:0])
		intensityFold(m, info.Directory, buf, from, to, perFlow)
	}
	return m
}
