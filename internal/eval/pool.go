package eval

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(0..n-1) on a bounded worker pool (at most
// GOMAXPROCS goroutines) and returns the first recorded error in index
// order. After any job fails, unclaimed jobs are skipped. Each index
// runs at most once; results must be written to caller-preallocated
// slots so output order is deterministic regardless of scheduling.
func parallelFor(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
