package eval

import (
	"fmt"
	"reflect"
	"testing"

	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/openflow"
)

// snapshotAll collects every switch's G-FIB filter bytes.
func snapshotAll(d *Dissem) map[model.SwitchID]map[model.SwitchID][]byte {
	out := make(map[model.SwitchID]map[model.SwitchID][]byte, len(d.Switches))
	for id, sw := range d.Switches {
		out[id] = sw.GFIB().SnapshotBytes()
	}
	return out
}

// TestDissemDeltaFullDifferential drives the same churn workload (host
// arrivals and departures across switches) through a delta-protocol
// fabric and a full-push fabric and asserts after every round that the
// two leave byte-identical G-FIB state on every switch: applying word
// deltas reproduces exactly the filters a full push would install.
func TestDissemDeltaFullDifferential(t *testing.T) {
	cfg := DissemConfig{Switches: 64, GroupSize: 8, HostsPerSwitch: 6}
	mk := func(full bool) *Dissem {
		c := cfg
		c.FullPush = full
		d, err := NewDissem(c)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	delta, fullp := mk(false), mk(true)

	churn := func(d *Dissem, round int) {
		sw := model.SwitchID(round*7%cfg.Switches + 1)
		d.Arrive(sw)
		if round%3 == 0 {
			d.Depart(model.SwitchID(round*5%cfg.Switches + 1))
		}
		d.Round()
	}
	for round := 1; round <= 12; round++ {
		churn(delta, round)
		churn(fullp, round)
		if got, want := snapshotAll(delta), snapshotAll(fullp); !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: delta-applied G-FIB state diverged from full push", round)
		}
	}
	if delta.CodecErrors() != 0 || fullp.CodecErrors() != 0 {
		t.Fatalf("codec errors: delta=%d full=%d", delta.CodecErrors(), fullp.CodecErrors())
	}
	// Sanity: the delta fabric actually took the delta path.
	var deltasApplied uint64
	for _, sw := range delta.Switches {
		deltasApplied += sw.Stats().GFIBDeltasApplied
	}
	if deltasApplied == 0 {
		t.Error("differential never exercised the delta path")
	}
}

// TestDissemDeltaByteReduction pins the acceptance target: on the
// paper-scale fabric (1024 switches, 46-switch groups), a single host
// arrival ships ≥10.5× fewer control-channel bytes under the delta
// protocol than under full push. (The varint count fields on GFIBDelta
// and StateReport moved the measured ratio from 10.1× to 11.2×; the
// pin sits below that with margin above the original 10× target.)
func TestDissemDeltaByteReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-switch fabric in -short mode")
	}
	run := func(full bool) uint64 {
		d, err := NewDissem(DissemConfig{FullPush: full})
		if err != nil {
			t.Fatal(err)
		}
		d.Arrive(100)
		d.Round()
		if d.CodecErrors() != 0 {
			t.Fatalf("codec errors: %d", d.CodecErrors())
		}
		return d.WireBytes()
	}
	deltaBytes, fullBytes := run(false), run(true)
	t.Logf("single host arrival: delta=%dB full=%dB (%.1f×)",
		deltaBytes, fullBytes, float64(fullBytes)/float64(deltaBytes))
	if deltaBytes == 0 || 2*fullBytes < 21*deltaBytes {
		t.Errorf("delta path ships %dB vs %dB full: want ≥10.5× reduction", deltaBytes, fullBytes)
	}
}

// TestDissemDroppedDeltaResync drops a delta to one member and proves
// the NACK/resync path reconverges on the next delta that member sees,
// without any periodic full refresh.
func TestDissemDroppedDeltaResync(t *testing.T) {
	d, err := NewDissem(DissemConfig{Switches: 8, GroupSize: 8, HostsPerSwitch: 4})
	if err != nil {
		t.Fatal(err)
	}
	victim := model.SwitchID(5)
	origin := model.SwitchID(3)

	// Round 1: drop the delta carrying origin's change to the victim.
	dropped := 0
	d.SetDrop(func(from, to model.SwitchID, msg netsim.Message) bool {
		if to != victim {
			return false
		}
		if _, isDelta := msg.(*openflow.GFIBDelta); isDelta {
			dropped++
			return true
		}
		return false
	})
	d.Arrive(origin)
	d.Round()
	d.SetDrop(nil)
	if dropped == 0 {
		t.Fatal("drop hook never saw a GFIBDelta — churn did not take the delta path")
	}
	designated := model.SwitchID(1)
	refBytes := d.Switches[designated].GFIB().SnapshotBytes()[origin]
	if got := d.Switches[victim].GFIB().SnapshotBytes()[origin]; reflect.DeepEqual(got, refBytes) {
		t.Fatal("victim converged despite the dropped delta; the test setup is wrong")
	}

	// Round 2: the next delta has a base the victim does not hold; it
	// must NACK and be resynced with a full filter within the round.
	d.Arrive(origin)
	d.Round()
	refBytes = d.Switches[designated].GFIB().SnapshotBytes()[origin]
	if got := d.Switches[victim].GFIB().SnapshotBytes()[origin]; !reflect.DeepEqual(got, refBytes) {
		t.Error("victim did not reconverge through NACK/resync")
	}
	if d.Switches[victim].Stats().GFIBNacksSent == 0 {
		t.Error("victim never sent a NACK")
	}
	if d.Switches[designated].Stats().GFIBResyncs == 0 {
		t.Error("designated switch answered no resync")
	}
}

// TestDissemBeaconRepairsIdleStaleness covers the tail case the old
// anti-entropy crutch existed for: the dropped delta is the *last*
// change, so no later delta exposes the staleness. The periodic
// version beacon (every refreshEveryRounds-th dissemination round)
// must surface it and trigger the resync.
func TestDissemBeaconRepairsIdleStaleness(t *testing.T) {
	d, err := NewDissem(DissemConfig{Switches: 8, GroupSize: 8, HostsPerSwitch: 4})
	if err != nil {
		t.Fatal(err)
	}
	victim := model.SwitchID(7)
	origin := model.SwitchID(2)
	d.SetDrop(func(from, to model.SwitchID, msg netsim.Message) bool {
		_, isDelta := msg.(*openflow.GFIBDelta)
		return to == victim && isDelta
	})
	d.Arrive(origin)
	d.Round()
	d.SetDrop(nil)

	designated := model.SwitchID(1)
	converged := func() bool {
		ref := d.Switches[designated].GFIB().SnapshotBytes()[origin]
		got := d.Switches[victim].GFIB().SnapshotBytes()[origin]
		return reflect.DeepEqual(got, ref)
	}
	if converged() {
		t.Fatal("victim converged despite the dropped delta")
	}
	// No further churn: only the beacon can repair the victim.
	for round := 0; round < 12 && !converged(); round++ {
		d.Round()
	}
	if !converged() {
		t.Error("version beacon never repaired the idle-stale victim")
	}
	if d.Switches[victim].Stats().GFIBNacksSent == 0 {
		t.Error("beacon repair did not go through the NACK path")
	}
}

// benchmarkDissem measures the control-channel cost of single-host-
// arrival churn rounds on the paper-scale fabric, reporting bytes on
// the wire per arrival alongside the usual time/allocs.
func benchmarkDissem(b *testing.B, full bool) {
	d, err := NewDissem(DissemConfig{FullPush: full})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Arrive(model.SwitchID(i%1024 + 1))
		d.Round()
	}
	b.StopTimer()
	if d.CodecErrors() != 0 {
		b.Fatalf("codec errors: %d", d.CodecErrors())
	}
	b.ReportMetric(float64(d.WireBytes())/float64(b.N), "wire-B/op")
	b.ReportMetric(float64(d.Messages())/float64(b.N), "msgs/op")
}

// BenchmarkDissemDelta is the headline delta-protocol benchmark (gated
// in cmd/bench); BenchmarkDissemFull is its full-push baseline — the
// wire-B/op ratio between the two is the protocol's win.
func BenchmarkDissemDelta(b *testing.B) { benchmarkDissem(b, false) }

// BenchmarkDissemFull measures the same churn under full-filter pushes.
func BenchmarkDissemFull(b *testing.B) { benchmarkDissem(b, true) }

// ExampleNewDissem keeps the harness API visible in docs.
func ExampleNewDissem() {
	d, _ := NewDissem(DissemConfig{Switches: 4, GroupSize: 4, HostsPerSwitch: 2})
	d.Arrive(1)
	d.Round()
	fmt.Println(d.Messages() > 0, d.CodecErrors())
	// Output: true 0
}
