package eval

import (
	"math"
	"testing"
	"time"

	"lazyctrl/internal/controller"
	"lazyctrl/internal/replay"
	"lazyctrl/internal/trace"
)

// busyConfig is the differential-test workload: dense enough that
// traffic-driven requests dominate the periodic classes, with a pair
// pool large enough that the sampled engines keep a meaningful stratum
// even at p = 0.01.
func busyConfig(seed uint64) trace.GeneratorConfig {
	cfg := trace.SmallConfig("busy", seed)
	cfg.PaperFlows = 300_000
	cfg.CommunicatingPairs = 4000
	// The default small topology cannot supply 3200 distinct
	// intra-tenant pairs; grow the tenants so the pool fits with room.
	cfg.MinVMs, cfg.MaxVMs = 24, 40
	cfg.Colocation = 0.97
	cfg.ScatterFlowFraction = 0.06
	return cfg
}

func runEngine(t *testing.T, cfg trace.GeneratorConfig, mode controller.Mode,
	engine replay.Engine, p float64, seed uint64) *EmulationResult {
	t.Helper()
	s, err := trace.NewStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunEmulation(EmulationConfig{
		Source:         s,
		Mode:           mode,
		GroupSizeLimit: 8,
		Horizon:        4 * time.Hour,
		BucketWidth:    time.Hour,
		Seed:           seed,
		ReportInterval: 5 * time.Minute,
		Engine:         engine,
		SampleProb:     p,
	})
	if err != nil {
		t.Fatalf("%v/%v: %v", mode, engine, err)
	}
	return res
}

// trafficMean is the mean traffic-driven workload (the periodic
// classes are identical across engines by construction, so the
// differential compares what the engines actually estimate).
func trafficMean(res *EmulationResult) float64 { return Mean(res.WorkloadKrps) }

// TestSampledWithinConfidenceBands is the seed-swept sampled-vs-DES
// differential of the acceptance criteria: at p ∈ {0.1, 0.01} the
// sampled engine's workload estimate must agree with the full DES
// within its own reported confidence bands (3σ on the mean, plus the
// documented small-sample floor at p = 0.01).
func TestSampledWithinConfidenceBands(t *testing.T) {
	if testing.Short() {
		t.Skip("several full emulations")
	}
	for _, p := range []float64{0.1, 0.01} {
		for _, seed := range []uint64{1, 2, 3} {
			cfg := busyConfig(seed)
			des := runEngine(t, cfg, controller.ModeLazy, replay.EngineDES, 0, seed)
			smp := runEngine(t, cfg, controller.ModeLazy, replay.EngineSampled, p, seed)

			if smp.SampleProb != p || smp.Engine != replay.EngineSampled {
				t.Fatalf("result does not echo engine/p: %+v/%v", smp.Engine, smp.SampleProb)
			}
			if smp.FlowsInjected >= des.FlowsInjected {
				t.Fatalf("p=%v seed=%d: sampled injected %d ≥ DES %d",
					p, seed, smp.FlowsInjected, des.FlowsInjected)
			}
			if smp.PopulationFlows != des.FlowsInjected {
				t.Errorf("p=%v seed=%d: population %d != DES injected %d",
					p, seed, smp.PopulationFlows, des.FlowsInjected)
			}
			// 1σ of the mean over n buckets: √(Σσᵢ²)/n.
			var varSum float64
			for _, se := range smp.WorkloadStdErrKrps {
				varSum += se * se
			}
			n := float64(len(smp.WorkloadStdErrKrps))
			seMean := math.Sqrt(varSum) / n
			dm, sm := trafficMean(des), trafficMean(smp)
			diff := math.Abs(dm - sm)
			// 3σ band plus a relative floor for the p=0.01 small-sample
			// regime (≈40 sampled pairs; the HT variance estimate itself
			// is noisy there — the error model documented in
			// docs/emulation.md).
			band := 3*seMean + 0.15*dm
			t.Logf("p=%v seed=%d: DES %.4g Krps, sampled %.4g ± %.4g (3σ band %.4g)",
				p, seed, dm, sm, seMean, band)
			if diff > band {
				t.Errorf("p=%v seed=%d: |%.4g − %.4g| = %.4g exceeds band %.4g",
					p, seed, dm, sm, diff, band)
			}
			// Latency: the sampled subpopulation rides the same stack, so
			// cold-cache CDF quantiles track the DES — but only once the
			// sample holds enough pairs that the intra/inter mixture is
			// represented. docs/emulation.md pins the guidance at
			// p·pairs ≳ 200; below it (the p=0.01 row here) quantiles are
			// small-sample artifacts and only the workload bands hold.
			if p*4000 >= 200 {
				for _, q := range []float64{0.5, 0.9} {
					dq := des.Recorder.ColdLatencyQuantile(q)
					sq := smp.Recorder.ColdLatencyQuantile(q)
					if dq == 0 || sq == 0 {
						t.Fatalf("p=%v seed=%d: empty cold-latency histogram", p, seed)
					}
					ratio := float64(sq) / float64(dq)
					if ratio < 0.6 || ratio > 1.67 {
						t.Errorf("p=%v seed=%d: cold q%v = %v vs DES %v", p, seed, q, sq, dq)
					}
				}
			}
		}
	}
}

// TestFluidMatchesDES is the fluid-vs-DES differential: the aggregated
// workload must land within the documented tolerance band of the full
// DES in both modes, and the probe population's latency must track the
// DES latency figures.
func TestFluidMatchesDES(t *testing.T) {
	if testing.Short() {
		t.Skip("several full emulations")
	}
	for _, mode := range []controller.Mode{controller.ModeLazy, controller.ModeLearning} {
		for _, seed := range []uint64{1, 2} {
			cfg := busyConfig(seed)
			des := runEngine(t, cfg, mode, replay.EngineDES, 0, seed)
			fl := runEngine(t, cfg, mode, replay.EngineFluid, 0.05, seed)

			if fl.PopulationFlows != des.FlowsInjected {
				t.Errorf("mode=%v seed=%d: fluid population %d != DES injected %d",
					mode, seed, fl.PopulationFlows, des.FlowsInjected)
			}
			dm, fm := trafficMean(des), trafficMean(fl)
			rel := math.Abs(dm-fm) / dm
			t.Logf("mode=%v seed=%d: workload DES %.4g vs fluid %.4g Krps (%.1f%% off); "+
				"cold DES %v vs fluid %v",
				mode, seed, dm, fm, 100*rel, des.ColdCacheLatency, fl.ColdCacheLatency)
			// The pinned fluid tolerance band (docs/emulation.md).
			if rel > 0.15 {
				t.Errorf("mode=%v seed=%d: fluid workload %.4g vs DES %.4g Krps (%.1f%% > 15%%)",
					mode, seed, fm, dm, 100*rel)
			}
			// Steady-state latency (dominated by fast-path packets) must
			// track in both modes; the learning baseline gets a wider
			// band because the probe's flood-vs-rule-hit mix is biased
			// by the host-coupled learning dynamics (see below).
			da, fa := Mean(des.AvgLatencyMs), Mean(fl.AvgLatencyMs)
			lo, hi := 0.8, 1.25
			if mode != controller.ModeLazy {
				lo, hi = 0.7, 1.6
			}
			if r := fa / da; r < lo || r > hi {
				t.Errorf("mode=%v seed=%d: fluid avg latency %.4gms vs DES %.4gms",
					mode, seed, fa, da)
			}
			// Cold-cache latency comes from the probe population. The
			// pins apply to lazy mode only: the learning baseline's
			// MAC-learning couples pairs through hosts (a destination is
			// known only once it has sent), which pair sampling breaks —
			// the probe floods where the full DES hits rules, biasing
			// its cold CDF high. docs/emulation.md documents the bias.
			if mode != controller.ModeLazy {
				continue
			}
			lr := float64(fl.ColdCacheLatency) / float64(des.ColdCacheLatency)
			if lr < 0.6 || lr > 1.67 {
				t.Errorf("mode=%v seed=%d: fluid cold latency %v vs DES %v",
					mode, seed, fl.ColdCacheLatency, des.ColdCacheLatency)
			}
			for _, q := range []float64{0.5, 0.9} {
				dq := des.Recorder.ColdLatencyQuantile(q)
				fq := fl.Recorder.ColdLatencyQuantile(q)
				if dq == 0 || fq == 0 {
					t.Fatalf("mode=%v seed=%d: empty cold-latency histogram", mode, seed)
				}
				if r := float64(fq) / float64(dq); r < 0.6 || r > 1.67 {
					t.Errorf("mode=%v seed=%d: cold q%v = %v vs DES %v", mode, seed, q, fq, dq)
				}
			}
		}
	}
}

// TestBatchingDelayAccounted pins the §V-E micro-batching term: with
// the window on (the emulation default now), the measured mean batch
// residence must match the modeled expectation, and the cold-cache
// latency must shift against an unbatched run by exactly that term
// diluted over the non-escalated first packets.
func TestBatchingDelayAccounted(t *testing.T) {
	if testing.Short() {
		t.Skip("two full emulations")
	}
	cfg := busyConfig(7)
	s := func() trace.Stream {
		st, err := trace.NewStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	run := func(batchMax int) *EmulationResult {
		res, err := RunEmulation(EmulationConfig{
			Source: s(), Mode: controller.ModeLazy, GroupSizeLimit: 8,
			Horizon: 4 * time.Hour, BucketWidth: time.Hour, Seed: 7,
			ReportInterval:   5 * time.Minute,
			PacketInBatchMax: batchMax,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	off := run(-1)
	on := run(0) // default: on

	if off.BatchDelayObserved != 0 || off.BatchDelayModeled != 0 {
		t.Errorf("unbatched run reports batch delay %v/%v", off.BatchDelayObserved, off.BatchDelayModeled)
	}
	if on.BatchDelayObserved == 0 || on.BatchDelayModeled == 0 {
		t.Fatalf("batched run reports no batch delay (observed %v, modeled %v)",
			on.BatchDelayObserved, on.BatchDelayModeled)
	}
	// Model vs measurement: the emulation lives in the deadline-
	// dominated regime, where both sit near the 1 ms window.
	mr := float64(on.BatchDelayObserved) / float64(on.BatchDelayModeled)
	t.Logf("batch delay: observed %v, modeled %v", on.BatchDelayObserved, on.BatchDelayModeled)
	if mr < 0.75 || mr > 1.33 {
		t.Errorf("modeled batch delay %v vs observed %v (ratio %.2f)",
			on.BatchDelayModeled, on.BatchDelayObserved, mr)
	}
	// Fig. 9 shift: mean cold latency moves by the batch term diluted
	// over all delivered first packets (only escalated ones wait).
	escalated := float64(on.ControllerStats.PacketIns)
	predicted := time.Duration(float64(on.BatchDelayObserved) * escalated / float64(on.FlowsDelivered))
	shift := on.ColdCacheLatency - off.ColdCacheLatency
	t.Logf("cold latency: off %v, on %v (shift %v, predicted %v)",
		off.ColdCacheLatency, on.ColdCacheLatency, shift, predicted)
	if shift <= 0 {
		t.Fatalf("batching did not shift cold latency (%v)", shift)
	}
	if d := math.Abs(float64(shift - predicted)); d > 0.25*float64(predicted) {
		t.Errorf("cold-latency shift %v vs modeled %v (>25%% apart)", shift, predicted)
	}
}
