package eval

import (
	"testing"

	"lazyctrl/internal/replay"
	"lazyctrl/internal/trace"
)

// TestAggregatePopulationDifferential pins the analytic population fold
// against the per-flow fluid fold it replaces: the same five-series
// Fig. 7 sweep, run once with per-flow windows and once with aggregate
// (pair, window) cells. The populations must agree exactly (both forms
// apportion the same total), and every series' mean workload must agree
// within the aggregation tolerance — the two forms draw different
// realizations of the same distribution (per-flow multinomials vs their
// expectation plus a closed-form cache model), so the comparison is
// statistical, not bit-exact.
func TestAggregatePopulationDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep differential")
	}
	for _, tc := range []struct {
		name string
		cfg  trace.GeneratorConfig
	}{
		// Syn-A exercises the synthetic recipe (no drift); the real-like
		// config exercises drift-modulated hot weights.
		{"syn-a", trace.SynAConfig(20_000, 1)},
		{"real", trace.RealLikeConfig(2_000, 1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(agg bool) *Fig789Result {
				t.Helper()
				res, err := RunFig789(Fig789Config{
					Scale:               1,
					Seed:                1,
					Engine:              replay.EngineFluid,
					SampleProb:          0.02,
					Trace:               &tc.cfg,
					PerFlowBaseline:     true,
					ControlFold:         true,
					AggregatePopulation: agg,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			pf := run(false)
			ag := run(true)
			for _, name := range []string{
				SeriesOpenFlow, SeriesRealStatic, SeriesRealDynamic,
				SeriesExpandedStatic, SeriesExpandedDynamic,
			} {
				p, a := pf.Series[name], ag.Series[name]
				if p.PopulationFlows != a.PopulationFlows {
					t.Errorf("%s: population %d (per-flow) vs %d (aggregate)",
						name, p.PopulationFlows, a.PopulationFlows)
				}
				mp, ma := Mean(p.WorkloadKrps), Mean(a.WorkloadKrps)
				t.Logf("%-28s workload %.3f vs %.3f Krps, population %d",
					name, mp, ma, a.PopulationFlows)
				if mp == 0 {
					continue
				}
				if rel := (ma - mp) / mp; rel < -0.15 || rel > 0.15 {
					t.Errorf("%s: aggregate workload diverges %.1f%% (%.3f vs %.3f Krps)",
						name, 100*rel, ma, mp)
				}
			}
			for _, pair := range [][2]float64{
				{pf.ReductionRealStatic, ag.ReductionRealStatic},
				{pf.ReductionRealDynamic, ag.ReductionRealDynamic},
				{pf.ReductionExpandedStatic, ag.ReductionExpandedStatic},
				{pf.ReductionExpandedDynamic, ag.ReductionExpandedDynamic},
			} {
				if d := pair[1] - pair[0]; d < -0.08 || d > 0.08 {
					t.Errorf("reduction diverges: per-flow %.3f vs aggregate %.3f", pair[0], pair[1])
				}
			}
		})
	}
}
