package eval

import (
	"testing"
	"time"

	"lazyctrl/internal/controller"
	"lazyctrl/internal/edge"
	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
)

// TestLiveBurstPathEndToEnd wires the burst path end to end over the
// live (goroutine + codec) transport: an edge switch with the
// micro-batching window enabled escalates a storm of unknown
// destinations, the PacketInBursts cross the control link through the
// codec, and the controller fans each burst through its sharded
// ProcessBurst intake.
func TestLiveBurstPathEndToEnd(t *testing.T) {
	net := netsim.NewLive(netsim.Latencies{
		Data:    200 * time.Microsecond,
		Control: 200 * time.Microsecond,
		Peer:    200 * time.Microsecond,
	})
	defer net.Close()

	switches := []model.SwitchID{1, 2}
	ctrl, err := controller.New(controller.Config{
		Mode:        controller.ModeLearning,
		Switches:    switches,
		Seed:        1,
		StateShards: 4,
	}, net.Env(model.ControllerNode))
	if err != nil {
		t.Fatal(err)
	}
	net.Attach(ctrl)
	net.SetSameGroup(ctrl.SameGroup)

	sw := edge.New(edge.Config{
		ID:                  1,
		PacketInBatchMax:    16,
		PacketInBatchWindow: 2 * time.Millisecond,
	}, net.Env(1))
	net.Attach(sw)
	sw.AttachHost(model.HostMAC(1), model.HostIP(1), 1)

	const storm = 64
	for i := 0; i < storm; i++ {
		p := &model.Packet{
			SrcMAC: model.HostMAC(1),
			DstMAC: model.HostMAC(model.HostID(1000 + i)),
			VLAN:   1,
			Ether:  model.EtherTypeIPv4,
			Bytes:  100,
		}
		// InjectLocal is not safe to call from outside the mailbox in
		// live mode; go through the switch's own goroutine via a timer.
		net.Env(1).After(0, func() { sw.InjectLocal(p) })
	}

	// Node state must be read from inside the node's own mailbox; a
	// zero-delay timer serializes the read with message handling.
	ctrlStats := func() controller.Stats {
		done := make(chan controller.Stats, 1)
		net.Env(model.ControllerNode).After(0, func() { done <- ctrl.Stats() })
		return <-done
	}
	swStats := func() edge.Stats {
		done := make(chan edge.Stats, 1)
		net.Env(1).After(0, func() { done <- sw.Stats() })
		return <-done
	}
	deadline := time.Now().Add(5 * time.Second)
	for ctrlStats().PacketIns < storm && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := ctrlStats().PacketIns; got != storm {
		t.Fatalf("controller counted %d PacketIns, want %d", got, storm)
	}
	if net.CodecErrors != 0 {
		t.Fatalf("CodecErrors = %d", net.CodecErrors)
	}
	if net.WireBytes() == 0 {
		t.Error("live transport metered no wire bytes")
	}
	// The storm crossed the wire as bursts, not singletons: with a
	// window of 16 and 64 events, the switch sent at most a handful of
	// control messages for them.
	if bursts := swStats().PacketInBursts; bursts == 0 {
		t.Error("micro-batching window never flushed a burst")
	}
}
