package eval

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"lazyctrl/internal/chaos"
	"lazyctrl/internal/controller"
)

// soakSeeds expands LAZYCTRL_CHAOS_SOAK=N into N extra soak seeds —
// the CI long-soak job's knob.
func soakSeeds() []uint64 {
	n, _ := strconv.Atoi(os.Getenv("LAZYCTRL_CHAOS_SOAK"))
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, 100+uint64(i))
	}
	return out
}

// chaosConfig is the shared base for the chaos runs: static grouping
// (so both sides of a differential pair group identically), one hour
// of the small synthetic trace.
func chaosConfig(t testing.TB, seed uint64, plan *chaos.Plan) EmulationConfig {
	t.Helper()
	tr := smallTrace(t, seed)
	return EmulationConfig{
		Source:         tr.Stream(0),
		Mode:           controller.ModeLazy,
		GroupSizeLimit: 6,
		Horizon:        time.Hour,
		BucketWidth:    30 * time.Minute,
		Seed:           seed,
		Chaos:          plan,
	}
}

// TestChaosCascadeDifferential is the acceptance test: a scripted
// cascade — burst loss across the target group's peer links, a
// control-link partition cutting the group off the controller, and a
// designated-switch crash landing mid-regroup — must converge to the
// byte-identical content fixpoint of a fault-free run of the same
// seed, within the documented round bound, with no stale-epoch
// snapshot ever adopted. Swept over seeds (one in -short).
func TestChaosCascadeDifferential(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		base, err := RunEmulation(chaosConfig(t, seed, &chaos.Plan{Name: "fault-free"}))
		if err != nil {
			t.Fatalf("seed %d fault-free: %v", seed, err)
		}
		if !base.Converged {
			t.Fatalf("seed %d: fault-free run did not converge:\n%s",
				seed, strings.Join(base.Divergences, "\n"))
		}
		if base.Fixpoint == "" {
			t.Fatalf("seed %d: empty fault-free fixpoint", seed)
		}

		faulted, err := RunEmulation(chaosConfig(t, seed, chaos.Cascade(1, 30*time.Minute)))
		if err != nil {
			t.Fatalf("seed %d cascade: %v", seed, err)
		}
		// The faults must actually have fired.
		if faulted.Drops.InjectedLoss == 0 {
			t.Errorf("seed %d: burst loss dropped nothing", seed)
		}
		if faulted.Drops.Partition == 0 {
			t.Errorf("seed %d: control-link partition dropped nothing", seed)
		}
		if faulted.Drops.DownAtSend+faulted.Drops.DownAtDelivery == 0 {
			t.Errorf("seed %d: designated crash dropped nothing", seed)
		}
		if !faulted.Converged {
			t.Fatalf("seed %d: cascade did not converge within %d rounds:\n%s",
				seed, chaos.DefaultRecoveryRoundBound, strings.Join(faulted.Divergences, "\n"))
		}
		if faulted.RecoveryRounds > chaos.DefaultRecoveryRoundBound {
			t.Errorf("seed %d: recovery took %d rounds, bound %d",
				seed, faulted.RecoveryRounds, chaos.DefaultRecoveryRoundBound)
		}
		if len(faulted.StaleAdoptions) != 0 {
			t.Errorf("seed %d: stale-epoch adoptions:\n%s",
				seed, strings.Join(faulted.StaleAdoptions, "\n"))
		}
		if faulted.Fixpoint != base.Fixpoint {
			t.Errorf("seed %d: faulted fixpoint differs from fault-free fixpoint:\n--- fault-free ---\n%s\n--- faulted ---\n%s",
				seed, base.Fixpoint, faulted.Fixpoint)
		}
	}
}

// TestChaosSoakRandomized is the randomized chaos soak (run under
// -race in CI): per-seed random fault schedules — loss, delay,
// reordering, control-link flaps, crash-restarts, a controller
// blackout — must always settle back to a converged world with no
// stale adoptions. One seed in -short, more otherwise; the long-soak
// CI job sweeps further via LAZYCTRL_CHAOS_SOAK.
func TestChaosSoakRandomized(t *testing.T) {
	seeds := []uint64{11, 12}
	if testing.Short() {
		seeds = seeds[:1]
	}
	seeds = append(seeds, soakSeeds()...)
	for _, seed := range seeds {
		tr := smallTrace(t, 5)
		switches := tr.Stream(0).Info().Directory.Switches()
		plan := chaos.Randomized(seed, switches, 20*time.Minute, 30*time.Minute, 20)
		cfg := chaosConfig(t, 5, plan)
		cfg.Source = tr.Stream(0)
		res, err := RunEmulation(cfg)
		if err != nil {
			t.Fatalf("soak seed %d: %v", seed, err)
		}
		if !res.Converged {
			t.Errorf("soak seed %d: not converged after %d rounds:\n%s\n%s",
				seed, res.RecoveryRounds, strings.Join(res.Divergences, "\n"), plan.Describe())
		}
		if len(res.StaleAdoptions) != 0 {
			t.Errorf("soak seed %d: stale adoptions:\n%s", seed, strings.Join(res.StaleAdoptions, "\n"))
		}
	}
}

// BenchmarkConvergence runs the acceptance cascade end-to-end —
// fault injection, degraded-mode ride-through, and the settle loop —
// and reports the recovery-round count and total degradation window
// as extra metrics alongside the usual time/allocs (gated in
// cmd/bench: the rounds metric regressing means the repair paths got
// slower in protocol rounds, not just wall time).
func BenchmarkConvergence(b *testing.B) {
	tr := smallTrace(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	var last *EmulationResult
	for i := 0; i < b.N; i++ {
		// The horizon lands one minute after the cascade's last undo,
		// so the settle loop measures real recovery rounds instead of
		// crediting recovery that happened during slack replay time.
		res, err := RunEmulation(EmulationConfig{
			Source:         tr.Stream(0),
			Mode:           controller.ModeLazy,
			GroupSizeLimit: 6,
			Horizon:        40 * time.Minute,
			BucketWidth:    20 * time.Minute,
			Seed:           1,
			Chaos:          chaos.Cascade(1, 30*time.Minute),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatalf("cascade did not converge:\n%s", strings.Join(res.Divergences, "\n"))
		}
		last = res
	}
	b.StopTimer()
	b.ReportMetric(float64(last.RecoveryRounds), "recovery-rounds")
	b.ReportMetric(float64(last.DegradedWindow.Milliseconds()), "degraded-window-ms")
}

// TestChaosFailoverDifferential is the replicated-controller
// acceptance test: each failover scenario — master crash, full master
// isolation, replica-link cut (dueling masters) — overlapped with a
// switch crash must converge to the byte-identical content fixpoint of
// a fault-free replicated run of the same seed, within the documented
// round bound, with no stale-generation message ever applied and
// exactly one replica holding the master role at the fixpoint (the
// world checker enforces the last two as convergence invariants).
// Swept over seeds (one in -short).
func TestChaosFailoverDifferential(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		for _, plan := range FailoverPlans(30 * time.Minute) {
			res, err := ChaosFailover(seed, plan)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, plan.Name, err)
			}
			base, faulted := res.Base, res.Faulted
			if !base.Converged {
				t.Fatalf("seed %d: fault-free replicated run did not converge:\n%s",
					seed, strings.Join(base.Divergences, "\n"))
			}
			if base.Takeovers != 0 {
				t.Errorf("seed %d: fault-free run performed %d takeovers", seed, base.Takeovers)
			}
			if faulted.Takeovers == 0 {
				t.Errorf("seed %d %s: no takeover happened", seed, plan.Name)
			}
			if !faulted.Converged {
				t.Fatalf("seed %d %s: not converged within %d rounds:\n%s",
					seed, plan.Name, chaos.DefaultRecoveryRoundBound,
					strings.Join(faulted.Divergences, "\n"))
			}
			if faulted.RecoveryRounds > chaos.DefaultRecoveryRoundBound {
				t.Errorf("seed %d %s: recovery took %d rounds, bound %d",
					seed, plan.Name, faulted.RecoveryRounds, chaos.DefaultRecoveryRoundBound)
			}
			if len(faulted.StaleAdoptions) != 0 {
				t.Errorf("seed %d %s: stale adoptions/fence violations:\n%s",
					seed, plan.Name, strings.Join(faulted.StaleAdoptions, "\n"))
			}
			if !res.FixpointMatch {
				t.Errorf("seed %d %s: faulted fixpoint differs from fault-free fixpoint:\n--- fault-free ---\n%s\n--- faulted ---\n%s",
					seed, plan.Name, base.Fixpoint, faulted.Fixpoint)
			}
			// The stale-master storm leaves the old master serving the
			// fabric under a superseded generation: the fence must have
			// actually rejected something before demoting it.
			if plan.Name == "stale-master-storm" && faulted.StaleGenRejected == 0 {
				t.Errorf("seed %d: stale-master storm fenced nothing", seed)
			}
		}
	}
}

// TestChaosFailoverSoakRandomized is the failover soak lane: random
// fault schedules against the replicated stack, where the randomized
// pool now includes master failover, split-brain, and stale-master
// storms. Same convergence contract as the cascade soak; the CI
// long-soak job sweeps further via LAZYCTRL_CHAOS_SOAK.
func TestChaosFailoverSoakRandomized(t *testing.T) {
	seeds := []uint64{21, 22}
	if testing.Short() {
		seeds = seeds[:1]
	}
	seeds = append(seeds, soakSeeds()...)
	for _, seed := range seeds {
		tr := smallTrace(t, 5)
		switches := tr.Stream(0).Info().Directory.Switches()
		plan := chaos.Randomized(seed, switches, 20*time.Minute, 30*time.Minute, 20)
		cfg := chaosConfig(t, 5, plan)
		cfg.Source = tr.Stream(0)
		cfg.Standby = true
		res, err := RunEmulation(cfg)
		if err != nil {
			t.Fatalf("failover soak seed %d: %v", seed, err)
		}
		if !res.Converged {
			t.Errorf("failover soak seed %d: not converged after %d rounds:\n%s\n%s",
				seed, res.RecoveryRounds, strings.Join(res.Divergences, "\n"), plan.Describe())
		}
		if len(res.StaleAdoptions) != 0 {
			t.Errorf("failover soak seed %d: stale adoptions:\n%s",
				seed, strings.Join(res.StaleAdoptions, "\n"))
		}
	}
}

// BenchmarkFailover runs the master-crash scenario end-to-end —
// detection, generation-fenced takeover, residue rebuild, re-push, and
// the healed old master's demotion — and reports the takeover length
// in protocol rounds and the fabric's degraded window as extra metrics
// (gated in cmd/bench alongside the wall-time/alloc gates).
func BenchmarkFailover(b *testing.B) {
	tr := smallTrace(b, 1)
	plan := FailoverPlans(30 * time.Minute)[0]
	b.ReportAllocs()
	b.ResetTimer()
	var last *EmulationResult
	for i := 0; i < b.N; i++ {
		// The horizon lands one minute after the last undo, so the
		// settle loop measures real recovery rounds.
		res, err := RunEmulation(EmulationConfig{
			Source:         tr.Stream(0),
			Mode:           controller.ModeLazy,
			GroupSizeLimit: 6,
			Horizon:        43 * time.Minute,
			BucketWidth:    43 * time.Minute,
			Seed:           1,
			Standby:        true,
			Chaos:          plan,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Converged {
			b.Fatalf("failover did not converge:\n%s", strings.Join(res.Divergences, "\n"))
		}
		if len(res.TakeoverTimelines) == 0 {
			b.Fatal("no takeover happened")
		}
		last = res
	}
	b.StopTimer()
	tl := last.TakeoverTimelines[len(last.TakeoverTimelines)-1]
	b.ReportMetric(float64(TakeoverRounds(tl)), "takeover-rounds")
	b.ReportMetric(float64(last.DegradedWindow.Milliseconds()), "degraded-window-ms")
	b.ReportMetric(float64(last.DupEscalationsSuppressed), "dup-escalations-suppressed")
}

// TestChaosControllerBlackout: a 10-minute controller outage must not
// strand the control plane — pushes retry with backoff, edges ride it
// out on existing state (degraded flood for cold flows), and the world
// converges once the controller is back.
func TestChaosControllerBlackout(t *testing.T) {
	res, err := RunEmulation(chaosConfig(t, 4, chaos.ControllerOutage(10*time.Minute, 10*time.Minute)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Drops.DownAtSend+res.Drops.DownAtDelivery == 0 {
		t.Error("blackout dropped no controller traffic")
	}
	if !res.Converged {
		t.Fatalf("not converged after blackout:\n%s", strings.Join(res.Divergences, "\n"))
	}
	if len(res.StaleAdoptions) != 0 {
		t.Errorf("stale adoptions:\n%s", strings.Join(res.StaleAdoptions, "\n"))
	}
}
