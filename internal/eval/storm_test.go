package eval

import (
	"runtime"
	"testing"
	"time"
)

func TestStormDeterministic(t *testing.T) {
	run := func() (pins, floods, mods uint64, out uint64) {
		st, err := NewStorm(StormConfig{Switches: 16, Hosts: 512, Events: 2048, Shards: 8, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		st.Run()
		stats := st.Ctrl.Stats()
		return stats.PacketIns, stats.Floods, stats.FlowModsSent, st.MessagesOut()
	}
	p1, f1, m1, o1 := run()
	p2, f2, m2, o2 := run()
	if p1 != p2 || f1 != f2 || m1 != m2 || o1 != o2 {
		t.Errorf("storm not deterministic: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			p1, f1, m1, o1, p2, f2, m2, o2)
	}
	if p1 != 512+2048 { // warmup + burst
		t.Errorf("PacketIns = %d, want %d", p1, 512+2048)
	}
	if m1 == 0 || o1 == 0 {
		t.Error("storm emitted nothing")
	}
}

func benchmarkStorm(b *testing.B, procs int) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
	st, err := NewStorm(StormConfig{Shards: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Run()
	}
	b.ReportMetric(float64(len(st.Batch))*float64(b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkPacketInStormP1 and ...P4 measure the sharded packet-in
// intake pinned to one and four cores; the P4/P1 ratio is the scaling
// the sharding buys (meaningful only on a machine with ≥4 cores).
func BenchmarkPacketInStormP1(b *testing.B) { benchmarkStorm(b, 1) }

// BenchmarkPacketInStormP4 — see BenchmarkPacketInStormP1.
func BenchmarkPacketInStormP4(b *testing.B) { benchmarkStorm(b, 4) }

// TestStormScalesAcrossCores asserts the acceptance target: the burst
// intake at GOMAXPROCS=4 is ≥1.5× faster than at GOMAXPROCS=1. The
// demonstration needs real parallel hardware, so the test skips on
// fewer than four cores and under the race detector (whose serialized
// shadow memory flattens any scaling).
func TestStormScalesAcrossCores(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector serializes the workers")
	}
	if testing.Short() {
		t.Skip("timing test")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("NumCPU = %d; scaling demonstration needs ≥4 cores", runtime.NumCPU())
	}
	measure := func(procs int) time.Duration {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
		st, err := NewStorm(StormConfig{Shards: 8, Events: 16384})
		if err != nil {
			t.Fatal(err)
		}
		st.Run() // warm caches and the branch predictor
		best := time.Duration(1<<63 - 1)
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			for i := 0; i < 5; i++ {
				st.Run()
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	t1 := measure(1)
	t4 := measure(4)
	ratio := float64(t1) / float64(t4)
	t.Logf("storm: 1 core %v, 4 cores %v, speedup %.2f×", t1, t4, ratio)
	if ratio < 1.5 {
		t.Errorf("speedup %.2f× < 1.5× from GOMAXPROCS=1 to 4", ratio)
	}
}
