// Package eval implements the experiment drivers that regenerate every
// table and figure of the LazyCtrl evaluation (§V): the trace-driven
// emulation harness (controller + edge switches over the DES underlay)
// and one driver per artifact — Table II, Fig. 6(a)/(b), Fig. 7, Fig. 8,
// Fig. 9, the §V-E cold-cache comparison, and the §V-D storage analysis.
package eval

import (
	"fmt"
	"math"
	"math/rand/v2"
	"time"

	"lazyctrl/internal/chaos"
	"lazyctrl/internal/controller"
	"lazyctrl/internal/edge"
	"lazyctrl/internal/grouping"
	"lazyctrl/internal/metrics"
	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/openflow"
	"lazyctrl/internal/replay"
	"lazyctrl/internal/sim"
	"lazyctrl/internal/telemetry"
	"lazyctrl/internal/tenant"
	"lazyctrl/internal/trace"
)

// EmulationConfig drives one trace replay over the full stack.
type EmulationConfig struct {
	// Source supplies the replayed flows as time-ordered windows. Pass
	// a generator stream (trace.NewStream) to keep the replay's flow
	// memory flat in trace length, or a materialized trace's adapter
	// (Trace.Stream) for small tests.
	Source trace.Stream
	// Mode selects LazyCtrl or the OpenFlow learning baseline.
	Mode controller.Mode
	// Dynamic enables incremental regrouping (lazy mode).
	Dynamic bool
	// GroupSizeLimit caps LCG sizes. Zero selects 46.
	GroupSizeLimit int
	// Horizon truncates the replay (0 = full trace duration).
	Horizon time.Duration
	// BucketWidth sets the metrics bucket (0 = 2h, the paper's x-axis).
	BucketWidth time.Duration
	// Seed drives the simulator and grouping.
	Seed uint64
	// WarmupWindow is the intensity window used for the initial grouping
	// (the paper uses the first hour). Zero selects 1h.
	WarmupWindow time.Duration
	// WarmupIntensity overrides the initial-grouping input. The paper's
	// controller sees the full unscaled first hour (~11M flows); a
	// scaled-down replay under-samples it, so RunFig789 supplies an
	// intensity sampled from a denser generation of the same traffic
	// distribution.
	WarmupIntensity *grouping.Intensity
	// ReportInterval overrides the designated switches' state-link
	// cadence. Zero selects 30 s.
	ReportInterval time.Duration
	// Latencies overrides the underlay latency model (zero value =
	// defaults).
	Latencies netsim.Latencies

	// Engine selects the replay engine (docs/emulation.md): EngineDES
	// (the default) injects every flow into the discrete-event
	// underlay; EngineSampled injects a deterministic hash-sampled pair
	// subpopulation and reweights the traffic-driven estimators by 1/p,
	// with confidence bands; EngineFluid folds the full population into
	// per-(group-pair, bucket) rate aggregates for workload and injects
	// only a sampled latency-probe population.
	Engine replay.Engine
	// SampleProb is the pair-sampling probability p of EngineSampled,
	// and the latency-probe population of EngineFluid. Zero selects 0.1
	// (sampled) / 0.02 (fluid); ignored by EngineDES.
	SampleProb float64
	// HostSampling switches EngineSampled from independent pair
	// sampling to host-level sampling: each host is hash-kept with
	// probability q = √SampleProb and a pair is injected iff both
	// endpoints are kept, so SampleProb keeps its meaning as the pair
	// inclusion probability (π = q²). A kept host then contributes its
	// complete flow fan-out within the kept subpopulation, which
	// shrinks the learning-baseline latency bias of destination
	// silencing: the baseline locates hosts passively, so a host whose
	// every outbound pair is sampled out is never learned and all
	// traffic toward it floods forever. Each outbound pair survives
	// with q = √SampleProb instead of SampleProb
	// (BenchmarkHostSamplingBias pins the measured reduction; see
	// docs/emulation.md). Estimator confidence bands widen to account
	// for the host-level correlation. Requires EngineSampled.
	HostSampling bool
	// PacketInBatchMax and PacketInBatchWindow configure the edge
	// switches' control-link micro-batching window. Zero selects the
	// default — on, 8 packets / 1 ms, now that the batching delay is
	// modeled explicitly in the latency accounting (see
	// replay.ExpectedBatchDelay); a negative PacketInBatchMax disables
	// batching.
	PacketInBatchMax    int
	PacketInBatchWindow time.Duration

	// ControlFold folds quiescent control-plane background rounds
	// (keep-alives, idle advertisements/beacons, empty reports) into
	// closed-form credits, leaving only state-changing control events
	// in the DES (docs/emulation.md, "control-plane fold"). Any
	// underlay fault re-materializes every folded timer, so fault
	// scenarios see real rounds throughout.
	ControlFold bool
	// MeterWire meters the encoded wire bytes of every control-plane
	// message — real sends and folded credits alike — into the
	// result's ControlMsgs/ControlBytes, the folded-vs-full
	// differential's byte-exactness probe. Off by default: it encodes
	// each metered message once.
	MeterWire bool
	// PerFlowBaseline selects the per-flow (5-tuple) reactive rule
	// mode for the learning baseline: every distinct flow's first
	// packet escalates to the controller instead of riding a warm
	// exact-dst rule (controller.Config.PerFlowRules and
	// replay.FluidConfig.PerFlowBaseline).
	PerFlowBaseline bool
	// AggregatePopulation switches the fluid engine's population input
	// from per-flow windows to analytic (pair, window) aggregate cells
	// (trace.AggStream → replay.Fluid.FoldAggWindow): the population
	// cost per window becomes O(active pairs) instead of O(flows),
	// which is what makes the Scale=1 Syn-A/B/C sweeps reachable
	// inside a CI budget. The latency-probe subpopulation is still
	// materialized flow by flow from the kept pairs' cells. Requires
	// EngineFluid and a Source implementing trace.AggStream.
	AggregatePopulation bool

	// Standby attaches a hot-standby controller replica at
	// model.StandbyNode: the primary journals C-LIB/grouping/failure
	// state to it, heartbeats it, and every controller→edge push is
	// fenced by the cluster generation (docs/robustness.md#failover).
	// Edges track in-flight escalations for dedup across a takeover.
	Standby bool

	// Chaos schedules a fault scenario against the run and arms the
	// convergence checker: after the horizon and the last fault's undo,
	// the run settles in dissemination/report rounds until every edge
	// G-FIB/L-FIB view, the C-LIB, and all per-peer version state match
	// the fault-free fixpoint (docs/robustness.md). An empty plan is
	// valid and useful: it runs the checker and captures the fixpoint
	// snapshot without injecting anything — the fault-free side of the
	// differential test.
	Chaos *chaos.Plan
	// ChaosSettleRounds bounds the settle loop (0 selects
	// chaos.DefaultRecoveryRoundBound).
	ChaosSettleRounds int
	// ChaosProbeInterval samples the no-stale-adoption probe while the
	// run is live (0 = every dissemination round).
	ChaosProbeInterval time.Duration

	// StateShards overrides the controller's lock-stripe count (0 =
	// controller default). Results are shard-count-independent; the
	// telemetry differential tests pin that span trees are too.
	StateShards int
	// TraceSample enables the causal span tracer at the given
	// head-sampling rate in (0,1]: kept traces follow each PacketIn
	// (and regroup round, and failover) through the control stack on
	// the sim clock. 0 disables tracing entirely (the default; every
	// instrumentation site then costs one nil check).
	TraceSample float64
	// FlightDepth arms per-node flight recorders of the last N wire
	// events (negative = off). 0 selects telemetry.DefaultFlightDepth
	// when a Chaos plan is present — the chaos checker embeds the
	// recorder tails in its invariant-violation reports — and off
	// otherwise.
	FlightDepth int
}

func (c EmulationConfig) withDefaults() (EmulationConfig, error) {
	if c.Source == nil {
		return c, fmt.Errorf("eval: nil flow source")
	}
	if c.Mode == 0 {
		c.Mode = controller.ModeLazy
	}
	if c.GroupSizeLimit == 0 {
		c.GroupSizeLimit = 46
	}
	if d := c.Source.Info().Duration; c.Horizon == 0 || c.Horizon > d {
		c.Horizon = d
	}
	if c.BucketWidth == 0 {
		c.BucketWidth = 2 * time.Hour
	}
	if c.WarmupWindow == 0 {
		c.WarmupWindow = time.Hour
	}
	if c.WarmupWindow > c.Horizon {
		c.WarmupWindow = c.Horizon
	}
	if c.Latencies == (netsim.Latencies{}) {
		c.Latencies = netsim.DefaultLatencies()
	}
	if c.ReportInterval == 0 {
		c.ReportInterval = 30 * time.Second
	}
	if c.SampleProb == 0 {
		switch c.Engine {
		case replay.EngineSampled:
			c.SampleProb = 0.1
		case replay.EngineFluid:
			c.SampleProb = 0.02
		}
	}
	if c.Engine == replay.EngineDES {
		c.SampleProb = 1
	}
	if c.AggregatePopulation {
		if c.Engine != replay.EngineFluid {
			return c, fmt.Errorf("eval: AggregatePopulation requires the fluid engine")
		}
		if _, ok := c.Source.(trace.AggStream); !ok {
			return c, fmt.Errorf("eval: AggregatePopulation requires an aggregate-capable source (trace.AggStream)")
		}
	}
	if c.SampleProb <= 0 || c.SampleProb > 1 {
		return c, fmt.Errorf("eval: SampleProb %v outside (0,1]", c.SampleProb)
	}
	if c.HostSampling && c.Engine != replay.EngineSampled {
		return c, fmt.Errorf("eval: HostSampling requires the sampled engine")
	}
	if c.TraceSample < 0 || c.TraceSample > 1 {
		return c, fmt.Errorf("eval: TraceSample %v outside [0,1]", c.TraceSample)
	}
	if c.PacketInBatchMax == 0 {
		c.PacketInBatchMax = 8
	}
	if c.PacketInBatchMax < 0 {
		c.PacketInBatchMax = 1 // ≤1 ships every PacketIn immediately
	}
	if c.PacketInBatchMax > 1 && c.PacketInBatchWindow == 0 {
		// Keep the modeled window in lockstep with edge.Config's default.
		c.PacketInBatchWindow = time.Millisecond
	}
	return c, nil
}

// EmulationResult aggregates everything the figures need from one run.
type EmulationResult struct {
	Mode    controller.Mode
	Dynamic bool
	// Engine echoes the engine that produced the result; SampleProb is
	// the realized pair-sampling probability (1 for the DES engine).
	Engine     replay.Engine
	SampleProb float64
	// Recorder holds bucketed workload, latency, and update series
	// (including the cold-latency histogram behind
	// Recorder.ColdLatencyQuantile).
	Recorder *metrics.Recorder
	// WorkloadKrps is the Fig. 7 series: controller requests per second
	// (unscaled via the trace's Scale and, for the sampled engines, the
	// sampling probability), per bucket, in thousands.
	WorkloadKrps []float64
	// WorkloadStdErrKrps is the per-bucket 1σ sampling error of the
	// traffic-driven part of WorkloadKrps (EngineSampled only; nil
	// otherwise — the fluid engine's workload aggregates the full
	// population and carries no sampling error).
	WorkloadStdErrKrps []float64
	// AvgLatencyMs is the Fig. 9 series per bucket.
	AvgLatencyMs []float64
	// UpdatesPerHour is the Fig. 8 series.
	UpdatesPerHour []uint64
	// ColdCacheLatency is the mean first-packet latency.
	ColdCacheLatency time.Duration
	// FlowsInjected and FlowsDelivered count the first packets the DES
	// actually carried (the sampled subpopulation under the sampled and
	// fluid engines); PopulationFlows counts every in-horizon flow the
	// engine accounted for, injected or aggregated.
	FlowsInjected   int
	FlowsDelivered  int
	PopulationFlows int
	// BatchDelayObserved is the measured mean residence of a PacketIn
	// in the edge micro-batching window; BatchDelayModeled is the
	// analytic expectation (replay.ExpectedBatchDelay) at the realized
	// arrival rate. Both zero with batching disabled.
	BatchDelayObserved time.Duration
	BatchDelayModeled  time.Duration
	// SimEvents is how many discrete events the underlying simulator
	// executed (the scaled engines' cost metric).
	SimEvents uint64
	// ControlMsgs and ControlBytes count control-plane messages and
	// their encoded wire bytes across the control and peer links —
	// real sends plus folded credits — populated when
	// EmulationConfig.MeterWire is set.
	ControlMsgs  uint64
	ControlBytes uint64
	// IdleRefreshes aggregates the edges' idle version beacons (real
	// plus fold-credited), a fold-differential observable.
	IdleRefreshes uint64
	// Drops breaks the underlay's dropped messages down by cause:
	// down-at-send, down-at-delivery, no-route, injected loss, and
	// partitions.
	Drops netsim.DropStats
	// DegradedFloods and DegradedWindow aggregate the edges' degraded
	// mode across the run: packets flooded on the controller-silent
	// fallback path and total wall time spent degraded.
	DegradedFloods uint64
	DegradedWindow time.Duration
	// Chaos results (zero unless EmulationConfig.Chaos was set):
	// RecoveryRounds is how many settle rounds the world needed after
	// the last fault to re-reach the fixpoint; Converged reports
	// whether it did within the bound; Divergences carries the
	// remaining violations when it did not; StaleAdoptions lists
	// no-stale-adoption probe violations observed mid-run; Fixpoint is
	// the canonical content snapshot (chaos.World.Snapshot) for
	// cross-run differential comparison.
	RecoveryRounds int
	Converged      bool
	Divergences    []string
	StaleAdoptions []string
	Fixpoint       string
	// Failover results (zero unless EmulationConfig.Standby):
	// Takeovers/StepDowns count role transitions across both replicas,
	// TakeoverTimelines carries each takeover's phase boundaries in
	// order, and the three edge aggregates meter the fence
	// (StaleGenRejected) and the escalation dedup across the handoff
	// (DupEscalationsSuppressed, EscalationsReflushed).
	Takeovers                uint64
	StepDowns                uint64
	TakeoverTimelines        []controller.TakeoverTimeline
	StaleGenRejected         uint64
	DupEscalationsSuppressed uint64
	EscalationsReflushed     uint64
	// ControllerStats is the controller's own view.
	ControllerStats controller.Stats
	// FinalGroups is the group count at the end of the run.
	FinalGroups int
	// Metrics is the unified telemetry registry: every counter above is
	// also exposed through it as a snapshot-time view (WriteProm /
	// WriteJSONL for exposition). Always non-nil.
	Metrics *telemetry.Registry
	// Spans holds the completed causal spans when
	// EmulationConfig.TraceSample was set (nil otherwise). Takeover
	// timelines are absorbed into it as "failover" trees.
	Spans *telemetry.Tracer
}

// emulationPrefetchDepth bounds the replay's generate-ahead pipeline:
// a couple of windows generate in the background while the simulator
// drains the current one. Deeper pipelines buy nothing — the DES
// consumes one window per virtual window span — and cost memory.
const emulationPrefetchDepth = 2

// fastPathLatency is the steady-state per-packet forwarding latency for
// packets that hit an installed rule or the L-FIB: datapath processing
// plus one core traversal.
func fastPathLatency(lat netsim.Latencies, sameSwitch bool) time.Duration {
	const datapath = 40 * time.Microsecond
	if sameSwitch {
		return datapath
	}
	return datapath + lat.Data + time.Duration(lat.JitterFrac*float64(lat.Data)/2)
}

// RunEmulation replays a trace against the full control stack and
// collects the evaluation metrics. Flows are drawn from the source one
// window at a time — the next window generates on the prefetch
// pipeline while the simulator drains the current one — so the
// replay's flow memory is O(window), not O(trace). The Engine field
// selects how flows become load: exact per-flow events (DES), a
// reweighted sampled subpopulation, or fluid rate aggregation with a
// DES probe population (see package replay and docs/emulation.md).
func RunEmulation(cfg EmulationConfig) (*EmulationResult, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	src := c.Source
	info := src.Info()
	dir := info.Directory

	s := sim.New(c.Seed)
	net := netsim.New(s, c.Latencies)
	rec := metrics.NewRecorder(c.Horizon, c.BucketWidth)
	simNow := func() time.Duration { return s.Now().Duration() }

	// Telemetry: the span tracer (nil unless sampled on — every
	// instrumentation site downstream is nil-safe), the unified metrics
	// registry, and the per-node flight recorders. FlightDepth 0 arms
	// the recorders exactly when a chaos plan will want their tails.
	var tracer *telemetry.Tracer
	if c.TraceSample > 0 {
		tracer = telemetry.NewTracer(simNow, c.TraceSample, c.Seed)
	}
	reg := telemetry.NewRegistry()
	flightDepth := c.FlightDepth
	if flightDepth == 0 && c.Chaos != nil {
		flightDepth = telemetry.DefaultFlightDepth
	}
	var flights map[model.SwitchID]*telemetry.Flight
	if flightDepth > 0 {
		flights = installFlightRecorders(net, simNow, flightDepth)
	}

	res := &EmulationResult{
		Mode: c.Mode, Dynamic: c.Dynamic, Engine: c.Engine,
		SampleProb: c.SampleProb, Recorder: rec,
		Metrics: reg, Spans: tracer,
	}

	// Wire metering: the encoded bytes of every control-plane message,
	// from real sends (netsim's meter hook) and folded credits (the
	// fold hooks below) through one accumulator, so folded and full
	// runs are comparable byte for byte.
	var meterMsg func(msg openflow.Message, copies uint64)
	if c.MeterWire {
		meterMsg = func(msg openflow.Message, copies uint64) {
			data, err := openflow.Encode(msg, 0)
			if err != nil {
				return
			}
			res.ControlMsgs += copies
			res.ControlBytes += copies * uint64(len(data))
		}
		net.Meter = func(from, to model.SwitchID, msg netsim.Message) {
			if om, ok := msg.(openflow.Message); ok {
				meterMsg(om, 1)
			}
		}
	}
	// The control fold's global gate: elision is only sound while every
	// sent control message is guaranteed delivered.
	var foldGate func() bool
	var foldMeter func(from, to model.SwitchID, msg openflow.Message, copies uint64)
	if c.ControlFold {
		foldGate = func() bool { return !net.Faulted() }
		if meterMsg != nil {
			foldMeter = func(from, to model.SwitchID, msg openflow.Message, copies uint64) {
				meterMsg(msg, copies)
			}
		}
	}
	switches := make(map[model.SwitchID]*edge.Switch, len(dir.Switches()))

	// The scaled engines inject only a p-fraction of the pairs; the
	// controller's queueing model must still see the unscaled arrival
	// rate, so the sampling probability folds into its load scale
	// alongside the trace's flow-count divisor.
	loadScale := info.Scale
	var sampler *replay.PairSampler
	var estimator *replay.Estimator
	if c.SampleProb < 1 {
		if c.HostSampling {
			// Host-level mode: keep hosts at q = √p so the pair
			// inclusion probability — and hence loadScale — is still p.
			q := math.Sqrt(c.SampleProb)
			sampler = replay.NewHostSampler(q, c.Seed)
			if c.Engine == replay.EngineSampled {
				estimator = replay.NewHostEstimator(q, rec.Buckets())
			}
		} else {
			sampler = replay.NewPairSampler(c.SampleProb, c.Seed)
			if c.Engine == replay.EngineSampled {
				estimator = replay.NewEstimator(c.SampleProb, rec.Buckets())
			}
		}
		loadScale = int(float64(info.Scale)/c.SampleProb + 0.5)
	}

	// The fluid engine folds every window's full flow population into
	// per-bucket rate aggregates under the live grouping; its warm-up
	// constants mirror the harness cadences (C-LIB fills at the first
	// state report, G-FIBs one advertise + dissemination round after
	// that).
	const advertiseInterval = 10 * time.Second
	var fluid *replay.Fluid
	if c.Engine == replay.EngineFluid {
		fluid = replay.NewFluid(replay.FluidConfig{
			Directory:       dir,
			Lazy:            c.Mode == controller.ModeLazy,
			Horizon:         c.Horizon,
			BucketWidth:     c.BucketWidth,
			RuleIdleTimeout: 60 * time.Second,
			GFIBWarm:        advertiseInterval + c.ReportInterval,
			// The initial grouping push kicks every designated switch
			// into reporting immediately, so the C-LIB knows all
			// attached hosts a couple of control round-trips in — long
			// before the periodic report cadence.
			CLIBWarm:        2 * time.Second,
			PerFlowBaseline: c.PerFlowBaseline,
		})
	}
	// Every (re)grouping lands on the fluid's epoch timeline as an
	// immutable snapshot, so window folds attribute each flow to the
	// assignment in force at its start time.
	var onRegroup func(uint64, *grouping.Grouping)
	if fluid != nil && c.Mode == controller.ModeLazy {
		onRegroup = func(version uint64, grp *grouping.Grouping) {
			fluid.NoteRegroup(s.Now().Duration(), grp.Clone(), version)
		}
	}

	var ctrlPeer model.SwitchID
	if c.Standby {
		ctrlPeer = model.StandbyNode
	}
	ctrl, err := controller.New(controller.Config{
		Mode:              c.Mode,
		Switches:          dir.Switches(),
		GroupSizeLimit:    c.GroupSizeLimit,
		Seed:              c.Seed,
		LoadScale:         loadScale,
		Dynamic:           c.Dynamic,
		Recorder:          rec,
		KeepAliveInterval: time.Minute,
		SyncInterval:      30 * time.Second,
		PerFlowRules:      c.PerFlowBaseline,
		ControlFold:       c.ControlFold,
		FoldGate:          foldGate,
		FoldMeter:         foldMeter,
		OnRegroup:         onRegroup,
		Peer:              ctrlPeer,
		StateShards:       c.StateShards,
		Tracer:            tracer,
	}, net.Env(model.ControllerNode))
	if err != nil {
		return nil, err
	}
	net.Attach(ctrl)
	net.SetSameGroup(ctrl.SameGroup)

	// The hot-standby replica: same directory and cadences, mirrored
	// state only — it runs no switch-facing duties until takeover, so
	// it carries no fold/regroup hooks (the fold's keep-alive elision
	// already yields to replication on the primary).
	var standby *controller.Controller
	if c.Standby {
		standby, err = controller.New(controller.Config{
			Mode:              c.Mode,
			Switches:          dir.Switches(),
			GroupSizeLimit:    c.GroupSizeLimit,
			Seed:              c.Seed,
			LoadScale:         loadScale,
			Dynamic:           c.Dynamic,
			Recorder:          rec,
			KeepAliveInterval: time.Minute,
			SyncInterval:      30 * time.Second,
			PerFlowRules:      c.PerFlowBaseline,
			Peer:              model.ControllerNode,
			Standby:           true,
			StateShards:       c.StateShards,
			Tracer:            tracer,
		}, net.Env(model.StandbyNode))
		if err != nil {
			return nil, err
		}
		net.Attach(standby)
	}

	// The fold's cross-node oracles close over the switch map (filled
	// below) and the controller; any fault change wakes every folded
	// timer in deterministic switch order.
	var foldHooks *edge.FoldHooks
	if c.ControlFold {
		foldHooks = &edge.FoldHooks{
			Gate: foldGate,
			BeaconCurrent: func(designated, member model.SwitchID, version uint64) bool {
				d := switches[designated]
				return d != nil && d.MemberVersionCurrent(member, version)
			},
			PeerNeedsLiveKA: func(neighbor, self model.SwitchID) bool {
				n := switches[neighbor]
				return n == nil || n.NeedsLiveKAFrom(self)
			},
			PeerKACreditedThrough: func(neighbor model.SwitchID) time.Duration {
				if n := switches[neighbor]; n != nil {
					return n.KACreditedThrough()
				}
				return 0
			},
			CtrlKACreditedThrough: ctrl.KACreditedThrough,
			Meter:                 foldMeter,
			CreditStateReport:     ctrl.CreditFoldedStateReport,
		}
		net.OnFaultChange = func() {
			ctrl.WakeFoldTasks()
			for _, id := range dir.Switches() {
				if sw := switches[id]; sw != nil {
					sw.WakeFoldTasks()
				}
			}
		}
	}

	// Edge switches with attached hosts.
	for _, id := range dir.Switches() {
		sw := edge.New(edge.Config{
			ID:                  id,
			AdvertiseInterval:   advertiseInterval,
			ReportInterval:      c.ReportInterval,
			PacketInBatchMax:    c.PacketInBatchMax,
			PacketInBatchWindow: c.PacketInBatchWindow,
			ControlFold:         c.ControlFold,
			Fold:                foldHooks,
			TrackEscalations:    c.Standby,
			Tracer:              tracer,
			OnDeliver: func(p *model.Packet, at time.Duration) {
				if p.FlowSeq == 0 {
					res.FlowsDelivered++
					rec.RecordColdLatency(at, at-p.Injected)
				}
			},
		}, net.Env(id))
		for _, h := range dir.HostsOn(id) {
			host := dir.Host(h)
			sw.AttachHost(host.MAC, host.IP, host.VLAN)
		}
		net.Attach(sw)
		sw.Start()
		switches[id] = sw
	}
	for _, tid := range dir.TenantIDs() {
		ctrl.RegisterTenant(dir.Tenant(tid).VLAN, tid)
		if standby != nil {
			standby.RegisterTenant(dir.Tenant(tid).VLAN, tid)
		}
	}
	registerMetrics(reg, ctrl, switches, net, tracer, res)
	ctrl.Start()
	if standby != nil {
		standby.Start()
	}

	// Initial grouping from the warmup window (the paper seeds grouping
	// with the first-hour traffic pattern). Only the warmup window's
	// trace windows are generated.
	if c.Mode == controller.ModeLazy {
		warm := c.WarmupIntensity
		if warm == nil {
			warm = trace.StreamIntensity(src, 0, c.WarmupWindow)
		}
		if err := ctrl.InitialGrouping(warm); err != nil {
			return nil, err
		}
	}

	// Chaos: schedule the fault plan against the live stack and arm
	// the no-stale-adoption probe for the fault window. The plan is
	// scheduled after the initial grouping so actions that resolve
	// group structure at fire time (ControlCut, CrashDesignated) see
	// real groups.
	var world *chaos.World
	if c.Chaos != nil {
		harness := &chaosHarness{s: s, net: net, ctrl: ctrl, standby: standby, dir: dir, switches: switches, flights: flights}
		world = harness.world()
		c.Chaos.Schedule(harness)
		if len(c.Chaos.Events) > 0 {
			probeEvery := c.ChaosProbeInterval
			if probeEvery == 0 {
				probeEvery = advertiseInterval
			}
			chaosEnd := c.Chaos.End()
			var probe func()
			probe = func() {
				res.StaleAdoptions = append(res.StaleAdoptions, world.Probe()...)
				if s.Now().Duration() < chaosEnd {
					s.After(probeEvery, probe)
				}
			}
			s.After(probeEvery, probe)
		}
	}

	// Windowed flow injection: window w's first packets are scheduled
	// when the clock reaches the start of window w−1 — one full window
	// of lead, so every flow event is in the heap before its time comes
	// while the heap never holds more than ~two windows of flows. The
	// remaining packets of each flow are accounted analytically at the
	// fast-path latency, as before.
	lastWindow := -1
	for w := 0; w < info.Windows; w++ {
		if start, _ := info.WindowBounds(w); start >= c.Horizon {
			break
		}
		lastWindow = w
	}
	var pf *trace.Prefetcher
	if lastWindow >= 0 && !c.AggregatePopulation {
		pf = trace.NewPrefetcher(src, 0, lastWindow, emulationPrefetchDepth)
		defer pf.Close()
	}
	// Fluid folds are deferred to each window's END (not load time, a
	// full window early): by then every regroup inside the window is on
	// the epoch timeline, so mid-window regroups attribute exactly. The
	// flow slices stay alive until their fold and are recycled there;
	// windows whose end lies at or past the horizon flush after the run.
	type pendingFold struct {
		flows []trace.Flow
		done  bool
	}
	var pendingFolds []*pendingFold
	foldPending := func(p *pendingFold) {
		if p.done {
			return
		}
		p.done = true
		var view replay.View
		var version uint64
		if c.Mode == controller.ModeLazy {
			view, version = ctrl.Grouping(), ctrl.GroupingVersion()
		}
		fluid.FoldWindow(p.flows, view, version)
		pf.Recycle(p.flows)
		p.flows = nil
	}
	scheduleWindow := func(flows []trace.Flow, w int) {
		if fluid != nil {
			p := &pendingFold{flows: flows}
			pendingFolds = append(pendingFolds, p)
			if _, end := info.WindowBounds(w); end < c.Horizon {
				s.At(sim.Time(end), func() { foldPending(p) })
			}
		}
		for i := range flows {
			f := flows[i]
			if f.Start >= c.Horizon {
				break // windows are sorted; the rest is past the horizon
			}
			src := dir.Host(f.Src)
			dst := dir.Host(f.Dst)
			if src == nil || dst == nil {
				continue
			}
			if fluid == nil {
				res.PopulationFlows++
			}
			if sampler != nil && !sampler.Keep(f.Src, f.Dst) {
				continue
			}
			if estimator != nil {
				estimator.Observe(int(f.Start/c.BucketWidth), replay.PairKey(f.Src, f.Dst))
			}
			res.FlowsInjected++
			sameSwitch := src.Switch == dst.Switch
			if f.Packets > 1 {
				rec.RecordLatency(f.Start, fastPathLatency(c.Latencies, sameSwitch), int(f.Packets)-1)
			}
			s.At(sim.Time(f.Start), func() {
				p := &model.Packet{
					SrcMAC:   src.MAC,
					DstMAC:   dst.MAC,
					SrcIP:    src.IP,
					DstIP:    dst.IP,
					VLAN:     src.VLAN,
					Ether:    model.EtherTypeIPv4,
					Bytes:    1400,
					FlowSeq:  0,
					Injected: time.Duration(s.Now()),
				}
				switches[src.Switch].InjectLocal(p)
			})
		}
	}
	var loadNext func()
	loadNext = func() {
		flows, w, ok := pf.Next()
		if !ok {
			return
		}
		scheduleWindow(flows, w)
		if fluid == nil {
			pf.Recycle(flows)
		}
		if w > 0 && w < lastWindow {
			// Load window w+1 once the clock reaches the start of
			// window w: its flows are still strictly in the future.
			// (Window 0 starts no chain — windows 0 and 1 both load
			// before the clock does, and window 1 carries the chain.)
			from, _ := info.WindowBounds(w)
			s.At(sim.Time(from), loadNext)
		}
	}
	if pf != nil {
		// Windows 0 and 1 load before the clock starts; window 1's
		// completion schedules window 2 at the start of window 1, and
		// so on.
		loadNext()
		loadNext()
	}

	// Aggregate-population pipeline: the same load cadence and deferred
	// window-end folds as the per-flow path, but each window is one
	// AggWindow call (O(active pairs)) folded analytically, and the
	// probe flows are materialized here from the kept pairs' cells. On
	// the single-threaded DES there is nothing to overlap with, so the
	// cells generate synchronously at load time — no prefetch pipeline.
	type pendingAggFold struct {
		aggs []trace.PairAgg
		bg   int
		w    int
		done bool
	}
	var pendingAggFolds []*pendingAggFold
	var aggSrc trace.AggStream
	var bgSrc trace.BackgroundStream
	if c.AggregatePopulation {
		aggSrc = src.(trace.AggStream) // checked in withDefaults
		bgSrc, _ = src.(trace.BackgroundStream)
	}
	foldAggPending := func(p *pendingAggFold) {
		if p.done {
			return
		}
		p.done = true
		var view replay.View
		var version uint64
		if c.Mode == controller.ModeLazy {
			view, version = ctrl.Grouping(), ctrl.GroupingVersion()
		}
		wFrom, wTo := info.WindowBounds(p.w)
		fluid.FoldAggWindow(p.aggs, wFrom, wTo, view, version)
		if p.bg > 0 {
			fluid.FoldBackgroundWindow(p.bg, trace.ExpandIntraTenantShare, wFrom, wTo, view, version)
		}
		p.aggs = nil
	}
	scheduleAggWindow := func(w int) {
		// The background count (an expanded trace's one-off extras) folds
		// in closed form; only the pair-resolved foreground materializes
		// cells.
		var aggs []trace.PairAgg
		bg := 0
		if bgSrc != nil {
			aggs, bg = bgSrc.AggWindowSplit(w, nil)
		} else {
			aggs = aggSrc.AggWindow(w, nil)
		}
		p := &pendingAggFold{aggs: aggs, bg: bg, w: w}
		pendingAggFolds = append(pendingAggFolds, p)
		wFrom, wTo := info.WindowBounds(w)
		if wTo < c.Horizon {
			s.At(sim.Time(wTo), func() { foldAggPending(p) })
		}
		// Probe emission: kept pairs inject their full per-window flow
		// count, with starts, directions, and payloads drawn from a
		// probe-only window stream (the population fold never sees
		// these — they exist to exercise the DES latency path).
		const probeSalt = 0x9a0be5a17 // probe flows' per-window stream
		s1 := trace.SplitMix64(c.Seed ^ probeSalt ^ (uint64(w)+1)*0x9e3779b97f4a7c15)
		rng := rand.New(rand.NewPCG(s1, trace.SplitMix64(s1^0xbf58476d1ce4e5b9)))
		span := float64(wTo - wFrom)
		injectProbe := func(start time.Duration, sh, dh *tenant.Host, packets int16, sameSwitch bool) {
			if start >= c.Horizon {
				return
			}
			res.FlowsInjected++
			if packets > 1 {
				rec.RecordLatency(start, fastPathLatency(c.Latencies, sameSwitch), int(packets)-1)
			}
			s.At(sim.Time(start), func() {
				p := &model.Packet{
					SrcMAC:   sh.MAC,
					DstMAC:   dh.MAC,
					SrcIP:    sh.IP,
					DstIP:    dh.IP,
					VLAN:     sh.VLAN,
					Ether:    model.EtherTypeIPv4,
					Bytes:    1400,
					FlowSeq:  0,
					Injected: time.Duration(s.Now()),
				}
				switches[sh.Switch].InjectLocal(p)
			})
		}
		for i := range aggs {
			r := aggs[i]
			if sampler != nil && !sampler.Keep(r.Src, r.Dst) {
				continue
			}
			srcH := dir.Host(r.Src)
			dstH := dir.Host(r.Dst)
			if srcH == nil || dstH == nil {
				continue
			}
			sameSwitch := srcH.Switch == dstH.Switch
			for j := int32(0); j < r.Flows; j++ {
				start := wFrom + time.Duration(rng.Float64()*span)
				sh, dh := srcH, dstH
				if rng.IntN(2) == 0 {
					sh, dh = dh, sh
				}
				_, packets := trace.SamplePayload(rng)
				injectProbe(start, sh, dh, packets, sameSwitch)
			}
		}
		// Background probe: the one-off background draws are i.i.d., so a
		// flow-level Bernoulli thinning at the same probability matches
		// the pair sampler's expectation (every background pair carries
		// one flow).
		if bg > 0 && sampler != nil {
			x := float64(bg) * c.SampleProb
			k := int(x)
			if rng.Float64() < x-float64(k) {
				k++
			}
			for _, fl := range bgSrc.BackgroundSample(w, k, rng) {
				sh := dir.Host(fl.Src)
				dh := dir.Host(fl.Dst)
				if sh == nil || dh == nil {
					continue
				}
				injectProbe(fl.Start, sh, dh, fl.Packets, sh.Switch == dh.Switch)
			}
		}
	}
	if aggSrc != nil && lastWindow >= 0 {
		nextAgg := 0
		var loadNextAgg func()
		loadNextAgg = func() {
			if nextAgg > lastWindow {
				return
			}
			w := nextAgg
			nextAgg++
			scheduleAggWindow(w)
			if w > 0 && w < lastWindow {
				from, _ := info.WindowBounds(w)
				s.At(sim.Time(from), loadNextAgg)
			}
		}
		loadNextAgg()
		loadNextAgg()
	}

	s.RunUntil(sim.Time(c.Horizon))

	// Tail flush: fold the windows whose end never arrived inside the
	// horizon, under the final grouping and the full epoch timeline.
	for _, p := range pendingFolds {
		foldPending(p)
	}
	for _, p := range pendingAggFolds {
		foldAggPending(p)
	}

	// Convergence check: run past the last fault's undo, then settle
	// in dissemination/report rounds until every view matches the
	// fault-free fixpoint or the round bound is exhausted
	// (docs/robustness.md).
	if world != nil {
		if end := c.Chaos.End(); end > c.Horizon {
			s.RunUntil(sim.Time(end))
		}
		round := advertiseInterval
		if c.ReportInterval > round {
			round = c.ReportInterval
		}
		maxRounds := c.ChaosSettleRounds
		if maxRounds == 0 {
			maxRounds = chaos.DefaultRecoveryRoundBound
		}
		res.RecoveryRounds, res.Converged, res.Divergences =
			world.Settle(maxRounds, func(r time.Duration) { s.RunFor(r) }, round)
		res.Fixpoint = world.Snapshot()
	}

	// Settle every folded timer at the horizon so credited rounds, wire
	// bytes, and report buckets are exact through the end of the run
	// before any aggregate below is read. (Wake schedules one real round
	// past the horizon; it never executes.)
	if c.ControlFold {
		ctrl.WakeFoldTasks()
		for _, id := range dir.Switches() {
			if sw := switches[id]; sw != nil {
				sw.WakeFoldTasks()
			}
		}
	}

	// Traffic-driven requests scale with the trace's flow-count divisor
	// (and the inverse sampling probability under the sampled engines);
	// periodic control work (state reports, regroup pushes) does not —
	// a real deployment sends the same handful per interval regardless
	// of traffic volume.
	var traffic []float64
	if fluid != nil {
		// The fluid engine's traffic series comes from the aggregated
		// rates of the full population, not from the probe DES.
		res.PopulationFlows = fluid.Population()
		counts := fluid.TrafficRequests()
		traffic = make([]float64, rec.Buckets())
		sec := c.BucketWidth.Seconds()
		for i := 0; i < len(traffic) && i < len(counts); i++ {
			traffic[i] = counts[i] * float64(info.Scale) / sec
		}
	} else {
		traffic = rec.WorkloadRPSForScaled(float64(info.Scale)/c.SampleProb,
			metrics.ReqPacketIn, metrics.ReqARPRelay)
	}
	periodic := rec.WorkloadRPSFor(1, metrics.ReqStateReport, metrics.ReqRegroup)
	combined := make([]float64, len(traffic))
	for i := range combined {
		combined[i] = traffic[i] + periodic[i]
	}
	res.WorkloadKrps = krps(combined)
	if estimator != nil {
		rel := estimator.RelStdErr()
		res.WorkloadStdErrKrps = make([]float64, len(traffic))
		for i := range traffic {
			res.WorkloadStdErrKrps[i] = traffic[i] * rel[i] / 1000
		}
	}
	res.AvgLatencyMs = toMs(rec.AvgLatencyPerBucket())
	res.UpdatesPerHour = rec.UpdatesPerHour()
	res.ColdCacheLatency = rec.AvgColdLatency()
	res.ControllerStats = ctrl.Stats()
	res.FinalGroups = ctrl.Grouping().NumGroups()
	res.SimEvents = s.Executed()
	res.Drops = net.Drops
	for _, sw := range switches {
		st := sw.Stats()
		res.DegradedFloods += st.DegradedFloods
		res.DegradedWindow += st.DegradedWindow
		res.IdleRefreshes += st.IdleRefreshes
		res.StaleGenRejected += st.StaleGenRejected
		res.DupEscalationsSuppressed += st.DupEscalationsSuppressed
		res.EscalationsReflushed += st.EscalationsReflushed
	}
	if standby != nil {
		for _, r := range []*controller.Controller{ctrl, standby} {
			st := r.Stats()
			res.Takeovers += st.Takeovers
			res.StepDowns += st.StepDowns
			res.TakeoverTimelines = append(res.TakeoverTimelines, r.TakeoverTimelines()...)
		}
		if tracer != nil {
			for _, tl := range res.TakeoverTimelines {
				absorbTakeover(tracer, tl)
			}
		}
	}

	// Batching-delay accounting: the measured mean residence of a
	// PacketIn in the micro-batching window, and the modeled
	// expectation at the realized per-switch arrival rate.
	if c.PacketInBatchMax > 1 {
		var wait time.Duration
		var waited uint64
		for _, sw := range switches {
			st := sw.Stats()
			wait += st.PinBatchWait
			waited += st.PinBatchWaited
		}
		if waited > 0 {
			res.BatchDelayObserved = wait / time.Duration(waited)
			rate := float64(waited) / (float64(len(switches)) * c.Horizon.Seconds())
			res.BatchDelayModeled = replay.ExpectedBatchDelay(rate, c.PacketInBatchWindow, c.PacketInBatchMax)
		}
	}
	return res, nil
}

func krps(rps []float64) []float64 {
	out := make([]float64, len(rps))
	for i, v := range rps {
		out[i] = v / 1000
	}
	return out
}

func toMs(d []time.Duration) []float64 {
	out := make([]float64, len(d))
	for i, v := range d {
		out[i] = float64(v) / float64(time.Millisecond)
	}
	return out
}

// Mean returns the average of a series (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Reduction returns 1 − mean(b)/mean(a): the workload reduction of b
// relative to baseline a.
func Reduction(baseline, improved []float64) float64 {
	mb := Mean(baseline)
	if mb == 0 {
		return 0
	}
	return 1 - Mean(improved)/mb
}
