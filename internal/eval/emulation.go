// Package eval implements the experiment drivers that regenerate every
// table and figure of the LazyCtrl evaluation (§V): the trace-driven
// emulation harness (controller + edge switches over the DES underlay)
// and one driver per artifact — Table II, Fig. 6(a)/(b), Fig. 7, Fig. 8,
// Fig. 9, the §V-E cold-cache comparison, and the §V-D storage analysis.
package eval

import (
	"fmt"
	"time"

	"lazyctrl/internal/chaos"
	"lazyctrl/internal/controller"
	"lazyctrl/internal/edge"
	"lazyctrl/internal/grouping"
	"lazyctrl/internal/metrics"
	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/replay"
	"lazyctrl/internal/sim"
	"lazyctrl/internal/trace"
)

// EmulationConfig drives one trace replay over the full stack.
type EmulationConfig struct {
	// Source supplies the replayed flows as time-ordered windows. Pass
	// a generator stream (trace.NewStream) to keep the replay's flow
	// memory flat in trace length, or a materialized trace's adapter
	// (Trace.Stream) for small tests.
	Source trace.Stream
	// Mode selects LazyCtrl or the OpenFlow learning baseline.
	Mode controller.Mode
	// Dynamic enables incremental regrouping (lazy mode).
	Dynamic bool
	// GroupSizeLimit caps LCG sizes. Zero selects 46.
	GroupSizeLimit int
	// Horizon truncates the replay (0 = full trace duration).
	Horizon time.Duration
	// BucketWidth sets the metrics bucket (0 = 2h, the paper's x-axis).
	BucketWidth time.Duration
	// Seed drives the simulator and grouping.
	Seed uint64
	// WarmupWindow is the intensity window used for the initial grouping
	// (the paper uses the first hour). Zero selects 1h.
	WarmupWindow time.Duration
	// WarmupIntensity overrides the initial-grouping input. The paper's
	// controller sees the full unscaled first hour (~11M flows); a
	// scaled-down replay under-samples it, so RunFig789 supplies an
	// intensity sampled from a denser generation of the same traffic
	// distribution.
	WarmupIntensity *grouping.Intensity
	// ReportInterval overrides the designated switches' state-link
	// cadence. Zero selects 30 s.
	ReportInterval time.Duration
	// Latencies overrides the underlay latency model (zero value =
	// defaults).
	Latencies netsim.Latencies

	// Engine selects the replay engine (docs/emulation.md): EngineDES
	// (the default) injects every flow into the discrete-event
	// underlay; EngineSampled injects a deterministic hash-sampled pair
	// subpopulation and reweights the traffic-driven estimators by 1/p,
	// with confidence bands; EngineFluid folds the full population into
	// per-(group-pair, bucket) rate aggregates for workload and injects
	// only a sampled latency-probe population.
	Engine replay.Engine
	// SampleProb is the pair-sampling probability p of EngineSampled,
	// and the latency-probe population of EngineFluid. Zero selects 0.1
	// (sampled) / 0.02 (fluid); ignored by EngineDES.
	SampleProb float64
	// PacketInBatchMax and PacketInBatchWindow configure the edge
	// switches' control-link micro-batching window. Zero selects the
	// default — on, 8 packets / 1 ms, now that the batching delay is
	// modeled explicitly in the latency accounting (see
	// replay.ExpectedBatchDelay); a negative PacketInBatchMax disables
	// batching.
	PacketInBatchMax    int
	PacketInBatchWindow time.Duration

	// Chaos schedules a fault scenario against the run and arms the
	// convergence checker: after the horizon and the last fault's undo,
	// the run settles in dissemination/report rounds until every edge
	// G-FIB/L-FIB view, the C-LIB, and all per-peer version state match
	// the fault-free fixpoint (docs/robustness.md). An empty plan is
	// valid and useful: it runs the checker and captures the fixpoint
	// snapshot without injecting anything — the fault-free side of the
	// differential test.
	Chaos *chaos.Plan
	// ChaosSettleRounds bounds the settle loop (0 selects
	// chaos.DefaultRecoveryRoundBound).
	ChaosSettleRounds int
	// ChaosProbeInterval samples the no-stale-adoption probe while the
	// run is live (0 = every dissemination round).
	ChaosProbeInterval time.Duration
}

func (c EmulationConfig) withDefaults() (EmulationConfig, error) {
	if c.Source == nil {
		return c, fmt.Errorf("eval: nil flow source")
	}
	if c.Mode == 0 {
		c.Mode = controller.ModeLazy
	}
	if c.GroupSizeLimit == 0 {
		c.GroupSizeLimit = 46
	}
	if d := c.Source.Info().Duration; c.Horizon == 0 || c.Horizon > d {
		c.Horizon = d
	}
	if c.BucketWidth == 0 {
		c.BucketWidth = 2 * time.Hour
	}
	if c.WarmupWindow == 0 {
		c.WarmupWindow = time.Hour
	}
	if c.WarmupWindow > c.Horizon {
		c.WarmupWindow = c.Horizon
	}
	if c.Latencies == (netsim.Latencies{}) {
		c.Latencies = netsim.DefaultLatencies()
	}
	if c.ReportInterval == 0 {
		c.ReportInterval = 30 * time.Second
	}
	if c.SampleProb == 0 {
		switch c.Engine {
		case replay.EngineSampled:
			c.SampleProb = 0.1
		case replay.EngineFluid:
			c.SampleProb = 0.02
		}
	}
	if c.Engine == replay.EngineDES {
		c.SampleProb = 1
	}
	if c.SampleProb <= 0 || c.SampleProb > 1 {
		return c, fmt.Errorf("eval: SampleProb %v outside (0,1]", c.SampleProb)
	}
	if c.PacketInBatchMax == 0 {
		c.PacketInBatchMax = 8
	}
	if c.PacketInBatchMax < 0 {
		c.PacketInBatchMax = 1 // ≤1 ships every PacketIn immediately
	}
	if c.PacketInBatchMax > 1 && c.PacketInBatchWindow == 0 {
		// Keep the modeled window in lockstep with edge.Config's default.
		c.PacketInBatchWindow = time.Millisecond
	}
	return c, nil
}

// EmulationResult aggregates everything the figures need from one run.
type EmulationResult struct {
	Mode    controller.Mode
	Dynamic bool
	// Engine echoes the engine that produced the result; SampleProb is
	// the realized pair-sampling probability (1 for the DES engine).
	Engine     replay.Engine
	SampleProb float64
	// Recorder holds bucketed workload, latency, and update series
	// (including the cold-latency histogram behind
	// Recorder.ColdLatencyQuantile).
	Recorder *metrics.Recorder
	// WorkloadKrps is the Fig. 7 series: controller requests per second
	// (unscaled via the trace's Scale and, for the sampled engines, the
	// sampling probability), per bucket, in thousands.
	WorkloadKrps []float64
	// WorkloadStdErrKrps is the per-bucket 1σ sampling error of the
	// traffic-driven part of WorkloadKrps (EngineSampled only; nil
	// otherwise — the fluid engine's workload aggregates the full
	// population and carries no sampling error).
	WorkloadStdErrKrps []float64
	// AvgLatencyMs is the Fig. 9 series per bucket.
	AvgLatencyMs []float64
	// UpdatesPerHour is the Fig. 8 series.
	UpdatesPerHour []uint64
	// ColdCacheLatency is the mean first-packet latency.
	ColdCacheLatency time.Duration
	// FlowsInjected and FlowsDelivered count the first packets the DES
	// actually carried (the sampled subpopulation under the sampled and
	// fluid engines); PopulationFlows counts every in-horizon flow the
	// engine accounted for, injected or aggregated.
	FlowsInjected   int
	FlowsDelivered  int
	PopulationFlows int
	// BatchDelayObserved is the measured mean residence of a PacketIn
	// in the edge micro-batching window; BatchDelayModeled is the
	// analytic expectation (replay.ExpectedBatchDelay) at the realized
	// arrival rate. Both zero with batching disabled.
	BatchDelayObserved time.Duration
	BatchDelayModeled  time.Duration
	// SimEvents is how many discrete events the underlying simulator
	// executed (the scaled engines' cost metric).
	SimEvents uint64
	// Drops breaks the underlay's dropped messages down by cause:
	// down-at-send, down-at-delivery, no-route, injected loss, and
	// partitions.
	Drops netsim.DropStats
	// DegradedFloods and DegradedWindow aggregate the edges' degraded
	// mode across the run: packets flooded on the controller-silent
	// fallback path and total wall time spent degraded.
	DegradedFloods uint64
	DegradedWindow time.Duration
	// Chaos results (zero unless EmulationConfig.Chaos was set):
	// RecoveryRounds is how many settle rounds the world needed after
	// the last fault to re-reach the fixpoint; Converged reports
	// whether it did within the bound; Divergences carries the
	// remaining violations when it did not; StaleAdoptions lists
	// no-stale-adoption probe violations observed mid-run; Fixpoint is
	// the canonical content snapshot (chaos.World.Snapshot) for
	// cross-run differential comparison.
	RecoveryRounds int
	Converged      bool
	Divergences    []string
	StaleAdoptions []string
	Fixpoint       string
	// ControllerStats is the controller's own view.
	ControllerStats controller.Stats
	// FinalGroups is the group count at the end of the run.
	FinalGroups int
}

// emulationPrefetchDepth bounds the replay's generate-ahead pipeline:
// a couple of windows generate in the background while the simulator
// drains the current one. Deeper pipelines buy nothing — the DES
// consumes one window per virtual window span — and cost memory.
const emulationPrefetchDepth = 2

// fastPathLatency is the steady-state per-packet forwarding latency for
// packets that hit an installed rule or the L-FIB: datapath processing
// plus one core traversal.
func fastPathLatency(lat netsim.Latencies, sameSwitch bool) time.Duration {
	const datapath = 40 * time.Microsecond
	if sameSwitch {
		return datapath
	}
	return datapath + lat.Data + time.Duration(lat.JitterFrac*float64(lat.Data)/2)
}

// RunEmulation replays a trace against the full control stack and
// collects the evaluation metrics. Flows are drawn from the source one
// window at a time — the next window generates on the prefetch
// pipeline while the simulator drains the current one — so the
// replay's flow memory is O(window), not O(trace). The Engine field
// selects how flows become load: exact per-flow events (DES), a
// reweighted sampled subpopulation, or fluid rate aggregation with a
// DES probe population (see package replay and docs/emulation.md).
func RunEmulation(cfg EmulationConfig) (*EmulationResult, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	src := c.Source
	info := src.Info()
	dir := info.Directory

	s := sim.New(c.Seed)
	net := netsim.New(s, c.Latencies)
	rec := metrics.NewRecorder(c.Horizon, c.BucketWidth)

	res := &EmulationResult{
		Mode: c.Mode, Dynamic: c.Dynamic, Engine: c.Engine,
		SampleProb: c.SampleProb, Recorder: rec,
	}

	// The scaled engines inject only a p-fraction of the pairs; the
	// controller's queueing model must still see the unscaled arrival
	// rate, so the sampling probability folds into its load scale
	// alongside the trace's flow-count divisor.
	loadScale := info.Scale
	var sampler *replay.PairSampler
	var estimator *replay.Estimator
	if c.SampleProb < 1 {
		sampler = replay.NewPairSampler(c.SampleProb, c.Seed)
		loadScale = int(float64(info.Scale)/c.SampleProb + 0.5)
		if c.Engine == replay.EngineSampled {
			estimator = replay.NewEstimator(c.SampleProb, rec.Buckets())
		}
	}

	ctrl, err := controller.New(controller.Config{
		Mode:              c.Mode,
		Switches:          dir.Switches(),
		GroupSizeLimit:    c.GroupSizeLimit,
		Seed:              c.Seed,
		LoadScale:         loadScale,
		Dynamic:           c.Dynamic,
		Recorder:          rec,
		KeepAliveInterval: time.Minute,
		SyncInterval:      30 * time.Second,
	}, net.Env(model.ControllerNode))
	if err != nil {
		return nil, err
	}
	net.Attach(ctrl)
	net.SetSameGroup(ctrl.SameGroup)

	// Edge switches with attached hosts.
	const advertiseInterval = 10 * time.Second
	switches := make(map[model.SwitchID]*edge.Switch, len(dir.Switches()))
	for _, id := range dir.Switches() {
		sw := edge.New(edge.Config{
			ID:                  id,
			AdvertiseInterval:   advertiseInterval,
			ReportInterval:      c.ReportInterval,
			PacketInBatchMax:    c.PacketInBatchMax,
			PacketInBatchWindow: c.PacketInBatchWindow,
			OnDeliver: func(p *model.Packet, at time.Duration) {
				if p.FlowSeq == 0 {
					res.FlowsDelivered++
					rec.RecordColdLatency(at, at-p.Injected)
				}
			},
		}, net.Env(id))
		for _, h := range dir.HostsOn(id) {
			host := dir.Host(h)
			sw.AttachHost(host.MAC, host.IP, host.VLAN)
		}
		net.Attach(sw)
		sw.Start()
		switches[id] = sw
	}
	for _, tid := range dir.TenantIDs() {
		ctrl.RegisterTenant(dir.Tenant(tid).VLAN, tid)
	}
	ctrl.Start()

	// Initial grouping from the warmup window (the paper seeds grouping
	// with the first-hour traffic pattern). Only the warmup window's
	// trace windows are generated.
	if c.Mode == controller.ModeLazy {
		warm := c.WarmupIntensity
		if warm == nil {
			warm = trace.StreamIntensity(src, 0, c.WarmupWindow)
		}
		if err := ctrl.InitialGrouping(warm); err != nil {
			return nil, err
		}
	}

	// Chaos: schedule the fault plan against the live stack and arm
	// the no-stale-adoption probe for the fault window. The plan is
	// scheduled after the initial grouping so actions that resolve
	// group structure at fire time (ControlCut, CrashDesignated) see
	// real groups.
	var world *chaos.World
	if c.Chaos != nil {
		harness := &chaosHarness{s: s, net: net, ctrl: ctrl, dir: dir, switches: switches}
		world = harness.world()
		c.Chaos.Schedule(harness)
		if len(c.Chaos.Events) > 0 {
			probeEvery := c.ChaosProbeInterval
			if probeEvery == 0 {
				probeEvery = advertiseInterval
			}
			chaosEnd := c.Chaos.End()
			var probe func()
			probe = func() {
				res.StaleAdoptions = append(res.StaleAdoptions, world.Probe()...)
				if s.Now().Duration() < chaosEnd {
					s.After(probeEvery, probe)
				}
			}
			s.After(probeEvery, probe)
		}
	}

	// The fluid engine folds every window's full flow population into
	// per-bucket rate aggregates under the live grouping; its warm-up
	// constants mirror the harness cadences above (C-LIB fills at the
	// first state report, G-FIBs one advertise + dissemination round
	// after that).
	var fluid *replay.Fluid
	if c.Engine == replay.EngineFluid {
		fluid = replay.NewFluid(replay.FluidConfig{
			Directory:       dir,
			Lazy:            c.Mode == controller.ModeLazy,
			Horizon:         c.Horizon,
			BucketWidth:     c.BucketWidth,
			RuleIdleTimeout: 60 * time.Second,
			GFIBWarm:        advertiseInterval + c.ReportInterval,
			// The initial grouping push kicks every designated switch
			// into reporting immediately, so the C-LIB knows all
			// attached hosts a couple of control round-trips in — long
			// before the periodic report cadence.
			CLIBWarm: 2 * time.Second,
		})
	}

	// Windowed flow injection: window w's first packets are scheduled
	// when the clock reaches the start of window w−1 — one full window
	// of lead, so every flow event is in the heap before its time comes
	// while the heap never holds more than ~two windows of flows. The
	// remaining packets of each flow are accounted analytically at the
	// fast-path latency, as before.
	lastWindow := -1
	for w := 0; w < info.Windows; w++ {
		if start, _ := info.WindowBounds(w); start >= c.Horizon {
			break
		}
		lastWindow = w
	}
	var pf *trace.Prefetcher
	if lastWindow >= 0 {
		pf = trace.NewPrefetcher(src, 0, lastWindow, emulationPrefetchDepth)
		defer pf.Close()
	}
	scheduleWindow := func(flows []trace.Flow) {
		if fluid != nil {
			var view replay.View
			var version uint64
			if c.Mode == controller.ModeLazy {
				view, version = ctrl.Grouping(), ctrl.GroupingVersion()
			}
			fluid.FoldWindow(flows, view, version)
		}
		for i := range flows {
			f := flows[i]
			if f.Start >= c.Horizon {
				break // windows are sorted; the rest is past the horizon
			}
			src := dir.Host(f.Src)
			dst := dir.Host(f.Dst)
			if src == nil || dst == nil {
				continue
			}
			if fluid == nil {
				res.PopulationFlows++
			}
			if sampler != nil && !sampler.Keep(f.Src, f.Dst) {
				continue
			}
			if estimator != nil {
				estimator.Observe(int(f.Start/c.BucketWidth), replay.PairKey(f.Src, f.Dst))
			}
			res.FlowsInjected++
			sameSwitch := src.Switch == dst.Switch
			if f.Packets > 1 {
				rec.RecordLatency(f.Start, fastPathLatency(c.Latencies, sameSwitch), int(f.Packets)-1)
			}
			s.At(sim.Time(f.Start), func() {
				p := &model.Packet{
					SrcMAC:   src.MAC,
					DstMAC:   dst.MAC,
					SrcIP:    src.IP,
					DstIP:    dst.IP,
					VLAN:     src.VLAN,
					Ether:    model.EtherTypeIPv4,
					Bytes:    1400,
					FlowSeq:  0,
					Injected: time.Duration(s.Now()),
				}
				switches[src.Switch].InjectLocal(p)
			})
		}
	}
	var loadNext func()
	loadNext = func() {
		flows, w, ok := pf.Next()
		if !ok {
			return
		}
		scheduleWindow(flows)
		pf.Recycle(flows)
		if w > 0 && w < lastWindow {
			// Load window w+1 once the clock reaches the start of
			// window w: its flows are still strictly in the future.
			// (Window 0 starts no chain — windows 0 and 1 both load
			// before the clock does, and window 1 carries the chain.)
			from, _ := info.WindowBounds(w)
			s.At(sim.Time(from), loadNext)
		}
	}
	if pf != nil {
		// Windows 0 and 1 load before the clock starts; window 1's
		// completion schedules window 2 at the start of window 1, and
		// so on.
		loadNext()
		loadNext()
	}

	s.RunUntil(sim.Time(c.Horizon))

	// Convergence check: run past the last fault's undo, then settle
	// in dissemination/report rounds until every view matches the
	// fault-free fixpoint or the round bound is exhausted
	// (docs/robustness.md).
	if world != nil {
		if end := c.Chaos.End(); end > c.Horizon {
			s.RunUntil(sim.Time(end))
		}
		round := advertiseInterval
		if c.ReportInterval > round {
			round = c.ReportInterval
		}
		maxRounds := c.ChaosSettleRounds
		if maxRounds == 0 {
			maxRounds = chaos.DefaultRecoveryRoundBound
		}
		res.RecoveryRounds, res.Converged, res.Divergences =
			world.Settle(maxRounds, func(r time.Duration) { s.RunFor(r) }, round)
		res.Fixpoint = world.Snapshot()
	}

	// Traffic-driven requests scale with the trace's flow-count divisor
	// (and the inverse sampling probability under the sampled engines);
	// periodic control work (state reports, regroup pushes) does not —
	// a real deployment sends the same handful per interval regardless
	// of traffic volume.
	var traffic []float64
	if fluid != nil {
		// The fluid engine's traffic series comes from the aggregated
		// rates of the full population, not from the probe DES.
		res.PopulationFlows = fluid.Population()
		counts := fluid.TrafficRequests()
		traffic = make([]float64, rec.Buckets())
		sec := c.BucketWidth.Seconds()
		for i := 0; i < len(traffic) && i < len(counts); i++ {
			traffic[i] = counts[i] * float64(info.Scale) / sec
		}
	} else {
		traffic = rec.WorkloadRPSForScaled(float64(info.Scale)/c.SampleProb,
			metrics.ReqPacketIn, metrics.ReqARPRelay)
	}
	periodic := rec.WorkloadRPSFor(1, metrics.ReqStateReport, metrics.ReqRegroup)
	combined := make([]float64, len(traffic))
	for i := range combined {
		combined[i] = traffic[i] + periodic[i]
	}
	res.WorkloadKrps = krps(combined)
	if estimator != nil {
		rel := estimator.RelStdErr()
		res.WorkloadStdErrKrps = make([]float64, len(traffic))
		for i := range traffic {
			res.WorkloadStdErrKrps[i] = traffic[i] * rel[i] / 1000
		}
	}
	res.AvgLatencyMs = toMs(rec.AvgLatencyPerBucket())
	res.UpdatesPerHour = rec.UpdatesPerHour()
	res.ColdCacheLatency = rec.AvgColdLatency()
	res.ControllerStats = ctrl.Stats()
	res.FinalGroups = ctrl.Grouping().NumGroups()
	res.SimEvents = s.Executed()
	res.Drops = net.Drops
	for _, sw := range switches {
		st := sw.Stats()
		res.DegradedFloods += st.DegradedFloods
		res.DegradedWindow += st.DegradedWindow
	}

	// Batching-delay accounting: the measured mean residence of a
	// PacketIn in the micro-batching window, and the modeled
	// expectation at the realized per-switch arrival rate.
	if c.PacketInBatchMax > 1 {
		var wait time.Duration
		var waited uint64
		for _, sw := range switches {
			st := sw.Stats()
			wait += st.PinBatchWait
			waited += st.PinBatchWaited
		}
		if waited > 0 {
			res.BatchDelayObserved = wait / time.Duration(waited)
			rate := float64(waited) / (float64(len(switches)) * c.Horizon.Seconds())
			res.BatchDelayModeled = replay.ExpectedBatchDelay(rate, c.PacketInBatchWindow, c.PacketInBatchMax)
		}
	}
	return res, nil
}

func krps(rps []float64) []float64 {
	out := make([]float64, len(rps))
	for i, v := range rps {
		out[i] = v / 1000
	}
	return out
}

func toMs(d []time.Duration) []float64 {
	out := make([]float64, len(d))
	for i, v := range d {
		out[i] = float64(v) / float64(time.Millisecond)
	}
	return out
}

// Mean returns the average of a series (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Reduction returns 1 − mean(b)/mean(a): the workload reduction of b
// relative to baseline a.
func Reduction(baseline, improved []float64) float64 {
	mb := Mean(baseline)
	if mb == 0 {
		return 0
	}
	return 1 - Mean(improved)/mb
}
