// Package eval implements the experiment drivers that regenerate every
// table and figure of the LazyCtrl evaluation (§V): the trace-driven
// emulation harness (controller + edge switches over the DES underlay)
// and one driver per artifact — Table II, Fig. 6(a)/(b), Fig. 7, Fig. 8,
// Fig. 9, the §V-E cold-cache comparison, and the §V-D storage analysis.
package eval

import (
	"fmt"
	"time"

	"lazyctrl/internal/controller"
	"lazyctrl/internal/edge"
	"lazyctrl/internal/grouping"
	"lazyctrl/internal/metrics"
	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/sim"
	"lazyctrl/internal/trace"
)

// EmulationConfig drives one trace replay over the full stack.
type EmulationConfig struct {
	// Source supplies the replayed flows as time-ordered windows. Pass
	// a generator stream (trace.NewStream) to keep the replay's flow
	// memory flat in trace length, or a materialized trace's adapter
	// (Trace.Stream) for small tests.
	Source trace.Stream
	// Mode selects LazyCtrl or the OpenFlow learning baseline.
	Mode controller.Mode
	// Dynamic enables incremental regrouping (lazy mode).
	Dynamic bool
	// GroupSizeLimit caps LCG sizes. Zero selects 46.
	GroupSizeLimit int
	// Horizon truncates the replay (0 = full trace duration).
	Horizon time.Duration
	// BucketWidth sets the metrics bucket (0 = 2h, the paper's x-axis).
	BucketWidth time.Duration
	// Seed drives the simulator and grouping.
	Seed uint64
	// WarmupWindow is the intensity window used for the initial grouping
	// (the paper uses the first hour). Zero selects 1h.
	WarmupWindow time.Duration
	// WarmupIntensity overrides the initial-grouping input. The paper's
	// controller sees the full unscaled first hour (~11M flows); a
	// scaled-down replay under-samples it, so RunFig789 supplies an
	// intensity sampled from a denser generation of the same traffic
	// distribution.
	WarmupIntensity *grouping.Intensity
	// ReportInterval overrides the designated switches' state-link
	// cadence. Zero selects 30 s.
	ReportInterval time.Duration
	// Latencies overrides the underlay latency model (zero value =
	// defaults).
	Latencies netsim.Latencies
}

func (c EmulationConfig) withDefaults() (EmulationConfig, error) {
	if c.Source == nil {
		return c, fmt.Errorf("eval: nil flow source")
	}
	if c.Mode == 0 {
		c.Mode = controller.ModeLazy
	}
	if c.GroupSizeLimit == 0 {
		c.GroupSizeLimit = 46
	}
	if d := c.Source.Info().Duration; c.Horizon == 0 || c.Horizon > d {
		c.Horizon = d
	}
	if c.BucketWidth == 0 {
		c.BucketWidth = 2 * time.Hour
	}
	if c.WarmupWindow == 0 {
		c.WarmupWindow = time.Hour
	}
	if c.WarmupWindow > c.Horizon {
		c.WarmupWindow = c.Horizon
	}
	if c.Latencies == (netsim.Latencies{}) {
		c.Latencies = netsim.DefaultLatencies()
	}
	if c.ReportInterval == 0 {
		c.ReportInterval = 30 * time.Second
	}
	return c, nil
}

// EmulationResult aggregates everything the figures need from one run.
type EmulationResult struct {
	Mode    controller.Mode
	Dynamic bool
	// Recorder holds bucketed workload, latency, and update series.
	Recorder *metrics.Recorder
	// WorkloadKrps is the Fig. 7 series: controller requests per second
	// (unscaled via the trace's Scale), per bucket, in thousands.
	WorkloadKrps []float64
	// AvgLatencyMs is the Fig. 9 series per bucket.
	AvgLatencyMs []float64
	// UpdatesPerHour is the Fig. 8 series.
	UpdatesPerHour []uint64
	// ColdCacheLatency is the mean first-packet latency.
	ColdCacheLatency time.Duration
	// FlowsInjected and FlowsDelivered count first packets.
	FlowsInjected  int
	FlowsDelivered int
	// ControllerStats is the controller's own view.
	ControllerStats controller.Stats
	// FinalGroups is the group count at the end of the run.
	FinalGroups int
}

// emulationPrefetchDepth bounds the replay's generate-ahead pipeline:
// a couple of windows generate in the background while the simulator
// drains the current one. Deeper pipelines buy nothing — the DES
// consumes one window per virtual window span — and cost memory.
const emulationPrefetchDepth = 2

// fastPathLatency is the steady-state per-packet forwarding latency for
// packets that hit an installed rule or the L-FIB: datapath processing
// plus one core traversal.
func fastPathLatency(lat netsim.Latencies, sameSwitch bool) time.Duration {
	const datapath = 40 * time.Microsecond
	if sameSwitch {
		return datapath
	}
	return datapath + lat.Data + time.Duration(lat.JitterFrac*float64(lat.Data)/2)
}

// RunEmulation replays a trace against the full control stack and
// collects the evaluation metrics. Flows are drawn from the source one
// window at a time — the next window generates on the prefetch
// pipeline while the simulator drains the current one — so the
// replay's flow memory is O(window), not O(trace).
func RunEmulation(cfg EmulationConfig) (*EmulationResult, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	src := c.Source
	info := src.Info()
	dir := info.Directory

	s := sim.New(c.Seed)
	net := netsim.New(s, c.Latencies)
	rec := metrics.NewRecorder(c.Horizon, c.BucketWidth)

	res := &EmulationResult{Mode: c.Mode, Dynamic: c.Dynamic, Recorder: rec}

	ctrl, err := controller.New(controller.Config{
		Mode:              c.Mode,
		Switches:          dir.Switches(),
		GroupSizeLimit:    c.GroupSizeLimit,
		Seed:              c.Seed,
		LoadScale:         info.Scale,
		Dynamic:           c.Dynamic,
		Recorder:          rec,
		KeepAliveInterval: time.Minute,
		SyncInterval:      30 * time.Second,
	}, net.Env(model.ControllerNode))
	if err != nil {
		return nil, err
	}
	net.Attach(ctrl)
	net.SetSameGroup(ctrl.SameGroup)

	// Edge switches with attached hosts.
	switches := make(map[model.SwitchID]*edge.Switch, len(dir.Switches()))
	for _, id := range dir.Switches() {
		sw := edge.New(edge.Config{
			ID:                id,
			AdvertiseInterval: 10 * time.Second,
			ReportInterval:    c.ReportInterval,
			OnDeliver: func(p *model.Packet, at time.Duration) {
				if p.FlowSeq == 0 {
					res.FlowsDelivered++
					rec.RecordColdLatency(at, at-p.Injected)
				}
			},
		}, net.Env(id))
		for _, h := range dir.HostsOn(id) {
			host := dir.Host(h)
			sw.AttachHost(host.MAC, host.IP, host.VLAN)
		}
		net.Attach(sw)
		sw.Start()
		switches[id] = sw
	}
	for _, tid := range dir.TenantIDs() {
		ctrl.RegisterTenant(dir.Tenant(tid).VLAN, tid)
	}
	ctrl.Start()

	// Initial grouping from the warmup window (the paper seeds grouping
	// with the first-hour traffic pattern). Only the warmup window's
	// trace windows are generated.
	if c.Mode == controller.ModeLazy {
		warm := c.WarmupIntensity
		if warm == nil {
			warm = trace.StreamIntensity(src, 0, c.WarmupWindow)
		}
		if err := ctrl.InitialGrouping(warm); err != nil {
			return nil, err
		}
	}

	// Windowed flow injection: window w's first packets are scheduled
	// when the clock reaches the start of window w−1 — one full window
	// of lead, so every flow event is in the heap before its time comes
	// while the heap never holds more than ~two windows of flows. The
	// remaining packets of each flow are accounted analytically at the
	// fast-path latency, as before.
	lastWindow := -1
	for w := 0; w < info.Windows; w++ {
		if start, _ := info.WindowBounds(w); start >= c.Horizon {
			break
		}
		lastWindow = w
	}
	var pf *trace.Prefetcher
	if lastWindow >= 0 {
		pf = trace.NewPrefetcher(src, 0, lastWindow, emulationPrefetchDepth)
		defer pf.Close()
	}
	scheduleWindow := func(flows []trace.Flow) {
		for i := range flows {
			f := flows[i]
			if f.Start >= c.Horizon {
				break // windows are sorted; the rest is past the horizon
			}
			src := dir.Host(f.Src)
			dst := dir.Host(f.Dst)
			if src == nil || dst == nil {
				continue
			}
			res.FlowsInjected++
			sameSwitch := src.Switch == dst.Switch
			if f.Packets > 1 {
				rec.RecordLatency(f.Start, fastPathLatency(c.Latencies, sameSwitch), int(f.Packets)-1)
			}
			s.At(sim.Time(f.Start), func() {
				p := &model.Packet{
					SrcMAC:   src.MAC,
					DstMAC:   dst.MAC,
					SrcIP:    src.IP,
					DstIP:    dst.IP,
					VLAN:     src.VLAN,
					Ether:    model.EtherTypeIPv4,
					Bytes:    1400,
					FlowSeq:  0,
					Injected: time.Duration(s.Now()),
				}
				switches[src.Switch].InjectLocal(p)
			})
		}
	}
	var loadNext func()
	loadNext = func() {
		flows, w, ok := pf.Next()
		if !ok {
			return
		}
		scheduleWindow(flows)
		pf.Recycle(flows)
		if w > 0 && w < lastWindow {
			// Load window w+1 once the clock reaches the start of
			// window w: its flows are still strictly in the future.
			// (Window 0 starts no chain — windows 0 and 1 both load
			// before the clock does, and window 1 carries the chain.)
			from, _ := info.WindowBounds(w)
			s.At(sim.Time(from), loadNext)
		}
	}
	if pf != nil {
		// Windows 0 and 1 load before the clock starts; window 1's
		// completion schedules window 2 at the start of window 1, and
		// so on.
		loadNext()
		loadNext()
	}

	s.RunUntil(sim.Time(c.Horizon))

	// Traffic-driven requests scale with the trace's flow-count divisor;
	// periodic control work (state reports, regroup pushes) does not —
	// a real deployment sends the same handful per interval regardless
	// of traffic volume.
	traffic := rec.WorkloadRPSFor(info.Scale, metrics.ReqPacketIn, metrics.ReqARPRelay)
	periodic := rec.WorkloadRPSFor(1, metrics.ReqStateReport, metrics.ReqRegroup)
	combined := make([]float64, len(traffic))
	for i := range combined {
		combined[i] = traffic[i] + periodic[i]
	}
	res.WorkloadKrps = krps(combined)
	res.AvgLatencyMs = toMs(rec.AvgLatencyPerBucket())
	res.UpdatesPerHour = rec.UpdatesPerHour()
	res.ColdCacheLatency = rec.AvgColdLatency()
	res.ControllerStats = ctrl.Stats()
	res.FinalGroups = ctrl.Grouping().NumGroups()
	return res, nil
}

func krps(rps []float64) []float64 {
	out := make([]float64, len(rps))
	for i, v := range rps {
		out[i] = v / 1000
	}
	return out
}

func toMs(d []time.Duration) []float64 {
	out := make([]float64, len(d))
	for i, v := range d {
		out[i] = float64(v) / float64(time.Millisecond)
	}
	return out
}

// Mean returns the average of a series (0 for empty).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Reduction returns 1 − mean(b)/mean(a): the workload reduction of b
// relative to baseline a.
func Reduction(baseline, improved []float64) float64 {
	mb := Mean(baseline)
	if mb == 0 {
		return 0
	}
	return 1 - Mean(improved)/mb
}
