//go:build !race

package eval

// raceEnabled reports whether the race detector instrumented this
// build; timing-sensitive tests skip under it.
const raceEnabled = false
