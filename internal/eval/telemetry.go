package eval

import (
	"time"

	"lazyctrl/internal/controller"
	"lazyctrl/internal/edge"
	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/openflow"
	"lazyctrl/internal/telemetry"
)

// This file wires the emulation stack to internal/telemetry: the
// unified metrics registry (re-homing the scattered edge/controller/
// underlay counters as snapshot-time Func gauges — the hot paths are
// untouched), the per-node flight recorders hanging off the underlay's
// Observer hook, and the absorption of controller takeover timelines
// into failover span trees. Naming conventions: docs/observability.md.

// registerMetrics re-homes the stack's counters onto a registry. Every
// instrument is a Func gauge reading the owning struct at snapshot
// time, so registration costs the run nothing; the EmulationResult
// fields stay populated as before and remain the compatible view.
func registerMetrics(reg *telemetry.Registry, ctrl *controller.Controller,
	switches map[model.SwitchID]*edge.Switch, net *netsim.Network,
	tracer *telemetry.Tracer, res *EmulationResult) {
	cf := func(name, help string, fn func(controller.Stats) uint64) {
		reg.Func(name, help, func() float64 { return float64(fn(ctrl.Stats())) })
	}
	cf("lazyctrl_ctrl_packetins_total", "PacketIns the controller handled", func(s controller.Stats) uint64 { return s.PacketIns })
	cf("lazyctrl_ctrl_flowmods_total", "flow rules installed", func(s controller.Stats) uint64 { return s.FlowModsSent })
	cf("lazyctrl_ctrl_packetouts_total", "buffered packets returned", func(s controller.Stats) uint64 { return s.PacketOuts })
	cf("lazyctrl_ctrl_floods_total", "learning-mode floods", func(s controller.Stats) uint64 { return s.Floods })
	cf("lazyctrl_ctrl_arp_relays_total", "scoped ARP relays", func(s controller.Stats) uint64 { return s.ARPRelays })
	cf("lazyctrl_ctrl_state_reports_total", "designated state reports merged", func(s controller.Stats) uint64 { return s.StateReports })
	cf("lazyctrl_ctrl_regroupings_total", "effective (re)groupings", func(s controller.Stats) uint64 { return s.Regroupings })
	cf("lazyctrl_ctrl_config_acks_total", "GroupConfig acks received", func(s controller.Stats) uint64 { return s.ConfigAcks })
	cf("lazyctrl_ctrl_push_retries_total", "supervised config re-pushes", func(s controller.Stats) uint64 { return s.PushRetries })
	cf("lazyctrl_ctrl_pushes_skipped_total", "push-round destinations already current", func(s controller.Stats) uint64 { return s.PushesSkipped })
	cf("lazyctrl_ctrl_preload_fulls_total", "preload filters pushed in full", func(s controller.Stats) uint64 { return s.PreloadFulls })
	cf("lazyctrl_ctrl_preload_deltas_total", "preload filters pushed as word deltas", func(s controller.Stats) uint64 { return s.PreloadDeltas })
	cf("lazyctrl_ctrl_keepalive_lost_total", "keep-alive deadlines missed", func(s controller.Stats) uint64 { return s.KeepAliveLost })
	cf("lazyctrl_ctrl_takeovers_total", "standby takeovers on this replica", func(s controller.Stats) uint64 { return s.Takeovers })

	ef := func(name, help string, fn func(edge.Stats) uint64) {
		reg.Func(name, help, func() float64 {
			var sum uint64
			for _, sw := range switches {
				sum += fn(sw.Stats())
			}
			return float64(sum)
		})
	}
	ef("lazyctrl_edge_packets_seen_total", "data-plane packets seen by edges", func(s edge.Stats) uint64 { return s.PacketsSeen })
	ef("lazyctrl_edge_delivered_total", "packets delivered to attached hosts", func(s edge.Stats) uint64 { return s.Delivered })
	ef("lazyctrl_edge_packetins_total", "escalations sent by edges", func(s edge.Stats) uint64 { return s.PacketIns })
	ef("lazyctrl_edge_packetin_bursts_total", "micro-batched escalation bursts", func(s edge.Stats) uint64 { return s.PacketInBursts })
	ef("lazyctrl_edge_encap_sent_total", "G-FIB encap forwards", func(s edge.Stats) uint64 { return s.EncapSent })
	ef("lazyctrl_edge_degraded_floods_total", "degraded-mode group floods", func(s edge.Stats) uint64 { return s.DegradedFloods })
	ef("lazyctrl_edge_idle_refreshes_total", "idle version beacons (real + credited)", func(s edge.Stats) uint64 { return s.IdleRefreshes })
	ef("lazyctrl_edge_stale_gen_rejected_total", "pushes rejected by the generation fence", func(s edge.Stats) uint64 { return s.StaleGenRejected })
	ef("lazyctrl_edge_dup_escalations_total", "duplicate escalations suppressed", func(s edge.Stats) uint64 { return s.DupEscalationsSuppressed })
	ef("lazyctrl_edge_escalations_reflushed_total", "pending escalations re-sent post-takeover", func(s edge.Stats) uint64 { return s.EscalationsReflushed })
	reg.Func("lazyctrl_edge_degraded_window_seconds", "total wall time edges spent degraded", func() float64 {
		var sum time.Duration
		for _, sw := range switches {
			sum += sw.Stats().DegradedWindow
		}
		return sum.Seconds()
	})

	reg.Func("lazyctrl_net_delivered_total", "messages the underlay delivered", func() float64 { return float64(net.Delivered) })
	df := func(name, help string, fn func(netsim.DropStats) uint64) {
		reg.Func(name, help, func() float64 { return float64(fn(net.Drops)) })
	}
	df("lazyctrl_net_drops_down_at_send_total", "drops: endpoint/link down at send", func(d netsim.DropStats) uint64 { return d.DownAtSend })
	df("lazyctrl_net_drops_down_at_delivery_total", "drops: receiver down at delivery", func(d netsim.DropStats) uint64 { return d.DownAtDelivery })
	df("lazyctrl_net_drops_injected_loss_total", "drops: injected loss", func(d netsim.DropStats) uint64 { return d.InjectedLoss })
	df("lazyctrl_net_drops_partition_total", "drops: active partition", func(d netsim.DropStats) uint64 { return d.Partition })

	reg.Func("lazyctrl_replay_flows_injected_total", "first packets the DES carried", func() float64 { return float64(res.FlowsInjected) })
	reg.Func("lazyctrl_replay_flows_delivered_total", "first packets delivered end to end", func() float64 { return float64(res.FlowsDelivered) })

	if tracer != nil {
		reg.Func("lazyctrl_trace_spans_kept_total", "root spans kept by head sampling", func() float64 { return float64(tracer.Kept.Value()) })
		reg.Func("lazyctrl_trace_spans_dropped_total", "root spans dropped by head sampling", func() float64 { return float64(tracer.Dropped.Value()) })
		reg.Func("lazyctrl_trace_spans_completed_total", "completed spans held for dump", func() float64 { return float64(tracer.Len()) })
	}
}

// flightEvent extracts the flight-recorder coordinates of one
// control-plane message. It runs twice per wire event (send and
// delivery) on every control message of a run — ~2M times in a Fig7
// emulation — so the cases are ordered by measured steady-state
// frequency (keep-alives are >80% of wire events, state reports and
// G-FIB deltas most of the rest) and event types are stored as the
// wire MsgType code (openflow registers the render names with
// telemetry at init; TestFlightEventNamesMatchWire pins the mapping),
// keeping the event pointer-free and the hot path free of dynamic
// dispatch. The rare second return is false for a non-control
// message (the underlay excludes data-plane packets already; this is
// defense against new message kinds).
func flightEvent(at time.Duration, msg netsim.Message) (telemetry.FlightEvent, bool) {
	ev := telemetry.FlightEvent{At: at}
	switch m := msg.(type) {
	case *openflow.KeepAlive:
		ev.Type, ev.Gen = uint8(openflow.TypeKeepAlive), m.Generation
	case *openflow.StateReport:
		ev.Type = uint8(openflow.TypeStateReport)
	case *openflow.GFIBDelta:
		ev.Type, ev.Gen, ev.Ver = uint8(openflow.TypeGFIBDelta), m.Generation, m.Version
	case *openflow.ConfigAck:
		ev.Type, ev.Ver = uint8(openflow.TypeConfigAck), m.Version
	case *openflow.GFIBUpdate:
		ev.Type, ev.Gen, ev.Ver = uint8(openflow.TypeGFIBUpdate), m.Generation, m.Version
	case *openflow.Batch:
		ev.Type, ev.Gen = uint8(openflow.TypeBatch), m.Generation
	case *openflow.GroupConfig:
		ev.Type, ev.Gen, ev.Ver = uint8(openflow.TypeGroupConfig), m.Generation, m.Version
	case *openflow.PacketIn:
		ev.Type, ev.Span = uint8(openflow.TypePacketIn), m.Span.Span
	case *openflow.PacketOut:
		ev.Type, ev.Span = uint8(openflow.TypePacketOut), m.Span.Span
	case *openflow.FlowMod:
		ev.Type, ev.Span = uint8(openflow.TypeFlowMod), m.Span.Span
	case *openflow.LFIBUpdate:
		ev.Type, ev.Gen, ev.Ver = uint8(openflow.TypeLFIBUpdate), m.Generation, m.Version
	case *openflow.RoleAnnounce:
		ev.Type, ev.Gen = uint8(openflow.TypeRoleAnnounce), m.Generation
	case *openflow.StateSyncRecord:
		ev.Type, ev.Gen, ev.Ver = uint8(openflow.TypeStateSyncRecord), m.Generation, m.GroupingVersion
	default:
		om, ok := msg.(openflow.Message)
		if !ok {
			return ev, false
		}
		ev.Type = uint8(om.MsgType())
	}
	return ev, true
}

// flightTable resolves an edge switch ID to its flight ring on the
// observer hot path. Edge switch IDs are small and dense, so the
// common case is one bounds check and a slice load. The map mirror is
// the consumer-facing view (chaos post-mortems) and is only touched
// when a ring materializes.
type flightTable struct {
	edges []*telemetry.Flight
	depth int
	all   map[model.SwitchID]*telemetry.Flight
}

func (t *flightTable) ring(id model.SwitchID) *telemetry.Flight {
	if int64(id) < int64(len(t.edges)) {
		if f := t.edges[id]; f != nil {
			return f
		}
	}
	return t.materialize(id)
}

func (t *flightTable) materialize(id model.SwitchID) *telemetry.Flight {
	for int64(id) >= int64(len(t.edges)) {
		t.edges = append(t.edges, make([]*telemetry.Flight, len(t.edges)+64)...)
	}
	f := t.edges[id]
	if f == nil {
		f = telemetry.NewFlight(t.depth)
		t.edges[id] = f
		t.all[id] = f
	}
	return f
}

// installFlightRecorders hangs per-edge-switch flight rings off the
// underlay's Observer hook: each wire event lands in the sending
// switch's ring at send time and the receiving switch's at delivery
// time. The controller replicas deliberately get no rings: every
// post-mortem consumer reads per-switch tails (chaos.World violations
// name switches), a controller ring would wrap several times per
// keep-alive round at any sane depth (the controller touches every
// switch every round), and skipping it halves the observer's hot-path
// work — the controller's half of each exchange is still visible in
// the peer switch's ring. Returns the ring map (rings materialize
// lazily per switch).
func installFlightRecorders(net *netsim.Network, now func() time.Duration, depth int) map[model.SwitchID]*telemetry.Flight {
	t := &flightTable{
		edges: make([]*telemetry.Flight, 256),
		depth: depth,
		all:   make(map[model.SwitchID]*telemetry.Flight),
	}
	net.Observer = func(from, to model.SwitchID, msg netsim.Message, delivered bool) {
		owner := from
		if delivered {
			owner = to
		}
		if model.IsControllerAddr(owner) {
			return
		}
		ev, ok := flightEvent(now(), msg)
		if !ok {
			return
		}
		if delivered {
			ev.Sent, ev.Peer = false, int64(from)
		} else {
			ev.Sent, ev.Peer = true, int64(to)
		}
		t.ring(owner).Record(ev)
	}
	return t.all
}

// absorbTakeover folds one controller.TakeoverTimeline into the trace
// as a "failover" span tree: the root spans detection through the last
// closed phase, with one child per phase (announce, residue rebuild,
// config re-push). Takeovers are rare and load-bearing, so the root
// bypasses head sampling (Tracer.EmitRoot).
func absorbTakeover(tr *telemetry.Tracer, tl controller.TakeoverTimeline) {
	end := tl.AnnouncedAt
	if tl.RebuiltAt > end {
		end = tl.RebuiltAt
	}
	if tl.RepushedAt > end {
		end = tl.RepushedAt
	}
	root := tr.EmitRoot("failover", tl.DetectedAt, end,
		telemetry.Attr{Key: "gen", Val: int64(tl.Generation)})
	tr.Emit(root, "failover.announce", tl.DetectedAt, tl.AnnouncedAt)
	if tl.RebuiltAt > 0 {
		tr.Emit(root, "failover.rebuild", tl.AnnouncedAt, tl.RebuiltAt)
	}
	if tl.RepushedAt > 0 {
		tr.Emit(root, "failover.repush", tl.AnnouncedAt, tl.RepushedAt)
	}
}
