package eval

import (
	"testing"
	"time"

	"lazyctrl/internal/controller"
	"lazyctrl/internal/trace"
)

func smallTrace(t testing.TB, seed uint64) *trace.Trace {
	t.Helper()
	tr, err := trace.Generate(trace.SmallConfig("small", seed))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunEmulationLazySmoke(t *testing.T) {
	tr := smallTrace(t, 1)
	res, err := RunEmulation(EmulationConfig{
		Source:         tr.Stream(0),
		Mode:           controller.ModeLazy,
		GroupSizeLimit: 6,
		Horizon:        2 * time.Hour,
		BucketWidth:    time.Hour,
		Seed:           1,
	})
	if err != nil {
		t.Fatalf("RunEmulation: %v", err)
	}
	if res.FlowsInjected == 0 {
		t.Fatal("no flows injected")
	}
	// The overwhelming majority of first packets must be delivered.
	ratio := float64(res.FlowsDelivered) / float64(res.FlowsInjected)
	if ratio < 0.95 {
		t.Errorf("delivery ratio = %.3f (injected=%d delivered=%d)", ratio, res.FlowsInjected, res.FlowsDelivered)
	}
	if res.FinalGroups == 0 {
		t.Error("no groups formed")
	}
	if res.ColdCacheLatency <= 0 {
		t.Error("no cold-cache latency measured")
	}
	if len(res.WorkloadKrps) != 2 {
		t.Errorf("workload buckets = %d, want 2", len(res.WorkloadKrps))
	}
}

func TestRunEmulationLearningSmoke(t *testing.T) {
	tr := smallTrace(t, 2)
	res, err := RunEmulation(EmulationConfig{
		Source:      tr.Stream(0),
		Mode:        controller.ModeLearning,
		Horizon:     2 * time.Hour,
		BucketWidth: time.Hour,
		Seed:        2,
	})
	if err != nil {
		t.Fatalf("RunEmulation: %v", err)
	}
	ratio := float64(res.FlowsDelivered) / float64(res.FlowsInjected)
	if ratio < 0.95 {
		t.Errorf("delivery ratio = %.3f", ratio)
	}
	if res.ControllerStats.PacketIns == 0 {
		t.Error("baseline saw no PacketIns")
	}
	if res.ControllerStats.Floods == 0 {
		t.Error("baseline never flooded")
	}
}

func TestLazyReducesWorkload(t *testing.T) {
	cfg := trace.SmallConfig("busy", 3)
	cfg.PaperFlows = 400_000 // dense enough that flow setups dominate periodic state reports
	cfg.Colocation = 0.97    // tenants fit inside single groups at this tiny scale
	cfg.ScatterFlowFraction = 0.06
	tr, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	horizon := 4 * time.Hour
	lazy, err := RunEmulation(EmulationConfig{
		Source: tr.Stream(0), Mode: controller.ModeLazy, GroupSizeLimit: 8,
		Horizon: horizon, BucketWidth: time.Hour, Seed: 3,
		ReportInterval: 5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunEmulation(EmulationConfig{
		Source: tr.Stream(0), Mode: controller.ModeLearning,
		Horizon: horizon, BucketWidth: time.Hour, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	red := Reduction(base.WorkloadKrps, lazy.WorkloadKrps)
	t.Logf("workload reduction = %.1f%% (base PacketIns=%d lazy PacketIns=%d lazy ARPRelays=%d lazy StateReports=%d)",
		100*red, base.ControllerStats.PacketIns, lazy.ControllerStats.PacketIns,
		lazy.ControllerStats.ARPRelays, lazy.ControllerStats.StateReports)
	if red < 0.40 {
		t.Errorf("workload reduction = %.2f, want ≥ 0.40", red)
	}
	// Latency: lazy average at or below baseline.
	if Mean(lazy.AvgLatencyMs) > Mean(base.AvgLatencyMs)*1.05 {
		t.Errorf("lazy latency %.3fms > baseline %.3fms",
			Mean(lazy.AvgLatencyMs), Mean(base.AvgLatencyMs))
	}
}

func TestTableIISmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full-topology generators")
	}
	rows, err := TableII(20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.MeasuredFlows == 0 {
			t.Errorf("%s: no flows", r.Name)
		}
		if r.AvgCentrality < r.PaperC-0.12 || r.AvgCentrality > r.PaperC+0.12 {
			t.Errorf("%s: centrality %.3f vs paper %.2f", r.Name, r.AvgCentrality, r.PaperC)
		}
	}
	if !(rows[1].AvgCentrality > rows[2].AvgCentrality && rows[2].AvgCentrality > rows[3].AvgCentrality) {
		t.Errorf("centrality ordering violated: %+v", rows)
	}
}

func TestFig6aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-topology generators")
	}
	points, err := Fig6a(30_000, 7, []int{10, 40, 80})
	if err != nil {
		t.Fatal(err)
	}
	// For each trace, Winter grows with the group count.
	byTrace := map[string][]Fig6aPoint{}
	for _, p := range points {
		byTrace[p.Trace] = append(byTrace[p.Trace], p)
	}
	for name, ps := range byTrace {
		if len(ps) < 3 {
			t.Fatalf("%s: %d points", name, len(ps))
		}
		if !(ps[0].WinterPct < ps[len(ps)-1].WinterPct) {
			t.Errorf("%s: Winter not increasing with groups: %+v", name, ps)
		}
	}
	// Higher-centrality traces have lower Winter at the same k.
	if len(byTrace["Syn-A"]) > 0 && len(byTrace["Syn-C"]) > 0 {
		if byTrace["Syn-A"][0].WinterPct >= byTrace["Syn-C"][0].WinterPct {
			t.Errorf("Syn-A Winter %.1f%% ≥ Syn-C %.1f%% at k=10",
				byTrace["Syn-A"][0].WinterPct, byTrace["Syn-C"][0].WinterPct)
		}
	}
}

func TestFig6bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-topology generators")
	}
	points, err := Fig6b(200_000, 7, []int{50, 300})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Elapsed <= 0 {
			t.Errorf("%s limit=%d: zero elapsed", p.Trace, p.SizeLimit)
		}
		if p.Elapsed > 10*time.Second {
			t.Errorf("%s limit=%d: %v, want < 10s", p.Trace, p.SizeLimit, p.Elapsed)
		}
	}
}

func TestColdCacheOrdering(t *testing.T) {
	res, err := ColdCache(ColdCacheConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("cold cache: intra=%v inter=%v openflow=%v (paper: 0.83ms / 5.38ms / 15.06ms)",
		res.LazyIntra, res.LazyInter, res.OpenFlow)
	if !(res.LazyIntra < res.LazyInter && res.LazyInter < res.OpenFlow) {
		t.Errorf("ordering violated: intra=%v inter=%v openflow=%v",
			res.LazyIntra, res.LazyInter, res.OpenFlow)
	}
	// Intra-group must be an order of magnitude below OpenFlow (§V-E).
	if res.OpenFlow < 10*res.LazyIntra {
		t.Errorf("OpenFlow/intra ratio = %.1f, want ≥ 10",
			float64(res.OpenFlow)/float64(res.LazyIntra))
	}
	if res.LazyIntra < 300*time.Microsecond || res.LazyIntra > 3*time.Millisecond {
		t.Errorf("intra latency %v outside the sub-ms band", res.LazyIntra)
	}
}

func TestStorageTable(t *testing.T) {
	rows := Storage([]int{10, 46, 100}, 24)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's example: 46 switches → 45 × 2048 B = 92,160 B.
	if rows[1].GroupSize != 46 || rows[1].GFIBBytes != 92160 {
		t.Errorf("46-switch row = %+v, want 92160 bytes", rows[1])
	}
	if rows[1].FPP >= 0.001 {
		t.Errorf("FPP = %v, want < 0.1%%", rows[1].FPP)
	}
	// Linear growth in group size.
	if rows[2].GFIBBytes != 99*2048 {
		t.Errorf("100-switch row = %d bytes, want %d", rows[2].GFIBBytes, 99*2048)
	}
	if got := Storage([]int{1}, 0); len(got) != 0 {
		t.Error("degenerate group size accepted")
	}
}

func TestMeanAndReduction(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Reduction([]float64{10, 10}, []float64{2, 2}); got != 0.8 {
		t.Errorf("Reduction = %v, want 0.8", got)
	}
	if Reduction(nil, []float64{1}) != 0 {
		t.Error("Reduction with empty baseline != 0")
	}
}
