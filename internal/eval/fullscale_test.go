package eval

import (
	"os"
	"testing"
	"time"

	"lazyctrl/internal/replay"
)

// TestFig7FullScaleSweep is the paper-scale acceptance run: the Fig. 7
// five-series sweep on the REAL trace at Scale=1 — 271M flows per run,
// 1.5B flow records across the sweep — end to end through the fluid
// engine, under a fixed wall-clock budget. The full population is
// folded into the fluid workload aggregates; a hash-sampled probe
// population rides the DES for latency.
//
// The run is gated behind LAZYCTRL_FULLSCALE=1 (a non-blocking CI job;
// pass -timeout 90m). LAZYCTRL_FULLSCALE_BUDGET overrides the default
// budget (a Go duration, e.g. "20m") for slower or faster boxes.
func TestFig7FullScaleSweep(t *testing.T) {
	if os.Getenv("LAZYCTRL_FULLSCALE") == "" {
		t.Skip("set LAZYCTRL_FULLSCALE=1 to run the Scale=1 Fig. 7 sweep")
	}
	budget := 45 * time.Minute
	if s := os.Getenv("LAZYCTRL_FULLSCALE_BUDGET"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("LAZYCTRL_FULLSCALE_BUDGET: %v", err)
		}
		budget = d
	}
	start := time.Now()
	res, err := RunFig789(Fig789Config{
		Scale:      1,
		Seed:       1,
		Engine:     replay.EngineFluid,
		SampleProb: 0.005,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	for _, name := range []string{
		SeriesOpenFlow, SeriesRealStatic, SeriesRealDynamic,
		SeriesExpandedStatic, SeriesExpandedDynamic,
	} {
		r := res.Series[name]
		if r == nil {
			t.Fatalf("missing series %q", name)
		}
		t.Logf("%-28s population=%d probe=%d/%d events=%d mean workload=%.2f Krps cold=%v",
			name, r.PopulationFlows, r.FlowsDelivered, r.FlowsInjected,
			r.SimEvents, Mean(r.WorkloadKrps), r.ColdCacheLatency)
		if r.PopulationFlows < 200_000_000 {
			t.Errorf("%s: population %d, want the full 271M-flow day", name, r.PopulationFlows)
		}
		if r.FlowsInjected == 0 || r.FlowsDelivered == 0 {
			t.Errorf("%s: empty probe population", name)
		}
	}
	t.Logf("sweep completed in %v (budget %v); reductions: real %.0f%%/%.0f%%, expanded %.0f%%/%.0f%%",
		elapsed, budget,
		100*res.ReductionRealStatic, 100*res.ReductionRealDynamic,
		100*res.ReductionExpandedStatic, 100*res.ReductionExpandedDynamic)
	if elapsed > budget {
		t.Errorf("sweep took %v, budget %v", elapsed, budget)
	}
	// Same-trace ordering: LazyCtrl must undercut the OpenFlow baseline
	// on the real trace at full scale (measured 43%/39% on the
	// reference box). The pins stop there deliberately: at Scale=1 the
	// real trace's 11.6k pairs keep the exact-dst flow rules
	// perpetually warm, so the learning baseline's absolute workload
	// collapses relative to the paper's per-flow reactive rules, and
	// the expanded extras (fresh pairs at sub-idle-timeout rates)
	// dominate the expanded series — the rule-granularity density
	// artifact recorded in docs/emulation.md and the ROADMAP, not an
	// engine error (the fluid fold reproduces the DES's own cache
	// model; the small-scale differentials pin that agreement).
	if res.ReductionRealStatic < 0.25 || res.ReductionRealDynamic < 0.20 {
		t.Errorf("real-trace reductions %.2f/%.2f, want ≥ 0.25/0.20",
			res.ReductionRealStatic, res.ReductionRealDynamic)
	}
	for _, name := range []string{SeriesExpandedStatic, SeriesExpandedDynamic} {
		if Mean(res.Series[name].WorkloadKrps) <= 0 {
			t.Errorf("%s: empty workload series", name)
		}
	}
}
