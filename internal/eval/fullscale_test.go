package eval

import (
	"fmt"
	"os"
	"testing"
	"time"

	"lazyctrl/internal/replay"
	"lazyctrl/internal/trace"
)

// fullScaleBudget reads the LAZYCTRL_FULLSCALE gate and budget.
func fullScaleBudget(t *testing.T) time.Duration {
	t.Helper()
	if os.Getenv("LAZYCTRL_FULLSCALE") == "" {
		t.Skip("set LAZYCTRL_FULLSCALE=1 to run the Scale=1 Fig. 7 sweeps")
	}
	budget := 45 * time.Minute
	if s := os.Getenv("LAZYCTRL_FULLSCALE_BUDGET"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			t.Fatalf("LAZYCTRL_FULLSCALE_BUDGET: %v", err)
		}
		budget = d
	}
	return budget
}

// synSweep runs one five-series Fig. 7 sweep on a synthetic trace
// through the fluid engine with both analytic folds on. The per-window
// fold cost is scale-invariant (the Syn topology and pair pools never
// shrink with Scale; Scale only divides the flow budget), so the window
// cadence is pinned: auto-sizing at Scale=1 would cut ~1,730 windows
// per hour for no fidelity gain. WarmupScale=100 likewise — the warmup
// intensity only seeds the initial grouping, and ~27M first-hour flows
// rank the pairs as well as 2.7B.
func synSweep(cfgT trace.GeneratorConfig) (*Fig789Result, error) {
	cfgT.WindowsPerHour = 12
	return RunFig789(Fig789Config{
		Scale:               1,
		Seed:                1,
		Engine:              replay.EngineFluid,
		SampleProb:          0.0003,
		Trace:               &cfgT,
		PerFlowBaseline:     true,
		ControlFold:         true,
		AggregatePopulation: true,
		WarmupScale:         100,
	})
}

// checkSweepSeries pins the invariants every full-scale series must
// satisfy: the exact closed-form population (base for the three real
// series, +30% for the expanded pair), and a live latency probe.
func checkSweepSeries(t *testing.T, label string, res *Fig789Result, basePop int64) {
	t.Helper()
	expandedPop := basePop + 3*basePop/10
	for _, name := range []string{
		SeriesOpenFlow, SeriesRealStatic, SeriesRealDynamic,
		SeriesExpandedStatic, SeriesExpandedDynamic,
	} {
		r := res.Series[name]
		if r == nil {
			t.Fatalf("%s: missing series %q", label, name)
		}
		t.Logf("%s %-28s population=%d probe=%d/%d events=%d mean workload=%.2f Krps",
			label, name, r.PopulationFlows, r.FlowsDelivered, r.FlowsInjected,
			r.SimEvents, Mean(r.WorkloadKrps))
		want := basePop
		if name == SeriesExpandedStatic || name == SeriesExpandedDynamic {
			want = expandedPop
		}
		if int64(r.PopulationFlows) != want {
			t.Errorf("%s %s: population %d, want the exact closed-form %d",
				label, name, r.PopulationFlows, want)
		}
		if r.FlowsInjected == 0 || r.FlowsDelivered == 0 {
			t.Errorf("%s %s: empty probe population", label, name)
		}
	}
}

// TestFig7FullScaleSweep is the paper-scale acceptance run: the Fig. 7
// five-series sweep on each synthetic topology at Scale=1 — Syn-A/B/C,
// 2,713 switches, 2.72/3.81/5.07B flows per run, ~46B flow records
// across the three sweeps — end to end through the fluid engine under
// one wall-clock budget. The populations are folded analytically
// (aggregate pair cells + closed-form background, control-plane fold);
// a hash-sampled probe population rides the DES for latency.
//
// All five series run per-flow (5-tuple) reactive baseline rules — the
// paper's rule granularity — so the reduction measures the fraction of
// escalations the group-local controllers absorb, not rule-cache
// density (the retired artifact, docs/emulation.md). Reduction then
// tracks each trace's centrality: Syn-A (0.85, the topology the
// paper's band was read from) lands inside the paper's 61–82% band;
// Syn-B (0.72) and Syn-C (0.61) scatter progressively more traffic
// across groups and land below it, in strict centrality order.
//
// The run is gated behind LAZYCTRL_FULLSCALE=1 (a non-blocking CI job;
// pass -timeout 90m). LAZYCTRL_FULLSCALE_BUDGET overrides the default
// budget (a Go duration, e.g. "20m") for slower or faster boxes.
// Reference-box timings (1 core): ~3m/3m30s/5m per sweep, ~12m total.
func TestFig7FullScaleSweep(t *testing.T) {
	budget := fullScaleBudget(t)
	sweeps := []struct {
		label string
		cfg   trace.GeneratorConfig
		pop   int64 // exact closed-form base population at Scale=1
		// Reduction band for the real-trace static/dynamic series
		// (fractions of the OpenFlow baseline workload).
		minReal, maxReal float64
		// Floor for the expanded static/dynamic series (the +30%
		// one-off extras dilute group locality, so expanded < real;
		// the ceiling is the realMax band edge).
		minExpanded float64
	}{
		// Measured on the reference box (seed 1): 62.2%/62.1% real,
		// 41.3%/40.6% expanded — inside the paper's 61–82% band.
		{"Syn-A", trace.SynAConfig(1, 1), 2_720_000_000, 0.61, 0.82, 0.30},
		// Measured: 41.6%/41.1% real, 21.4%/19.9% expanded.
		{"Syn-B", trace.SynBConfig(1, 1), 3_806_000_000, 0.35, 0.61, 0.12},
		// Measured: 29.9%/29.7% real, 9.6%/8.7% expanded.
		{"Syn-C", trace.SynCConfig(1, 1), 5_071_000_000, 0.22, 0.35, 0.06},
	}
	start := time.Now()
	prevStatic := 1.0
	for _, sw := range sweeps {
		res, err := synSweep(sw.cfg)
		if err != nil {
			t.Fatal(err)
		}
		checkSweepSeries(t, sw.label, res, sw.pop)
		t.Logf("%s reductions: real %.1f%%/%.1f%%, expanded %.1f%%/%.1f%% (elapsed %v)",
			sw.label,
			100*res.ReductionRealStatic, 100*res.ReductionRealDynamic,
			100*res.ReductionExpandedStatic, 100*res.ReductionExpandedDynamic,
			time.Since(start))
		for series, red := range map[string]float64{
			"real static":  res.ReductionRealStatic,
			"real dynamic": res.ReductionRealDynamic,
		} {
			if red < sw.minReal || red > sw.maxReal {
				t.Errorf("%s %s reduction %.3f outside [%.2f, %.2f]",
					sw.label, series, red, sw.minReal, sw.maxReal)
			}
		}
		for series, red := range map[string]float64{
			"expanded static":  res.ReductionExpandedStatic,
			"expanded dynamic": res.ReductionExpandedDynamic,
		} {
			if red < sw.minExpanded || red > sw.maxReal {
				t.Errorf("%s %s reduction %.3f outside [%.2f, %.2f]",
					sw.label, series, red, sw.minExpanded, sw.maxReal)
			}
			if red >= res.ReductionRealStatic {
				t.Errorf("%s %s reduction %.3f ≥ real static %.3f — extras must dilute locality",
					sw.label, series, red, res.ReductionRealStatic)
			}
		}
		// Reduction falls strictly with centrality: A > B > C.
		if res.ReductionRealStatic >= prevStatic {
			t.Errorf("%s real static reduction %.3f does not fall below the previous trace's %.3f",
				sw.label, res.ReductionRealStatic, prevStatic)
		}
		prevStatic = res.ReductionRealStatic
	}
	elapsed := time.Since(start)
	t.Logf("three sweeps completed in %v (budget %v)", elapsed, budget)
	if elapsed > budget {
		t.Errorf("sweeps took %v, budget %v", elapsed, budget)
	}
}

// TestFig7SynBSmoke is the reduced-scale pre-flight for the full-scale
// job: the same five-series Syn-B sweep, same folds and rule mode, at
// Scale=100 (38M flows per run) — ~2 minutes on the reference box, and
// reductions within a point of the Scale=1 numbers (the folds are
// scale-invariant; only the probe thins). It pins
// the same structural invariants (exact population split, live probe,
// expanded < real) with looser reduction floors, so a fold regression
// surfaces before the Scale=1 sweeps burn their budget.
func TestFig7SynBSmoke(t *testing.T) {
	fullScaleBudget(t)
	const scale = 100
	cfgT := trace.SynBConfig(scale, 1)
	start := time.Now()
	res, err := synSweep(cfgT)
	if err != nil {
		t.Fatal(err)
	}
	checkSweepSeries(t, fmt.Sprintf("Syn-B/%d", scale), res, 3_806_000_000/scale)
	t.Logf("Syn-B scale=%d reductions: real %.1f%%/%.1f%%, expanded %.1f%%/%.1f%% (elapsed %v)",
		scale,
		100*res.ReductionRealStatic, 100*res.ReductionRealDynamic,
		100*res.ReductionExpandedStatic, 100*res.ReductionExpandedDynamic,
		time.Since(start))
	if res.ReductionRealStatic < 0.30 || res.ReductionRealDynamic < 0.30 {
		t.Errorf("real reductions %.3f/%.3f, want ≥ 0.30",
			res.ReductionRealStatic, res.ReductionRealDynamic)
	}
	if res.ReductionExpandedStatic >= res.ReductionRealStatic {
		t.Errorf("expanded static reduction %.3f ≥ real static %.3f",
			res.ReductionExpandedStatic, res.ReductionRealStatic)
	}
}
