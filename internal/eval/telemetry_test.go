package eval

import (
	"strings"
	"testing"
	"time"

	"lazyctrl/internal/controller"
	"lazyctrl/internal/model"
	"lazyctrl/internal/openflow"
	"lazyctrl/internal/replay"
	"lazyctrl/internal/telemetry"
)

// telemetryDump renders everything the exposition layer can emit from
// one run — span JSONL, metrics JSONL, and the Prometheus-style text
// snapshot — as one string, so the determinism tests compare the full
// surface byte for byte.
func telemetryDump(t *testing.T, res *EmulationResult) string {
	t.Helper()
	var b strings.Builder
	if err := res.Spans.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if err := res.Metrics.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if err := res.Metrics.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestTelemetryDumpDeterministic runs the same seed and config twice
// per engine and pins the full telemetry dump byte-identical — the
// observability acceptance criterion of ROADMAP.md.
func TestTelemetryDumpDeterministic(t *testing.T) {
	for _, engine := range []replay.Engine{replay.EngineDES, replay.EngineSampled} {
		run := func() string {
			tr := smallTrace(t, 7)
			res, err := RunEmulation(EmulationConfig{
				Source:         tr.Stream(0),
				Mode:           controller.ModeLazy,
				GroupSizeLimit: 6,
				Horizon:        2 * time.Hour,
				BucketWidth:    time.Hour,
				Seed:           7,
				Engine:         engine,
				SampleProb:     0.5,
				TraceSample:    1,
				FlightDepth:    16,
			})
			if err != nil {
				t.Fatalf("engine %v: %v", engine, err)
			}
			if res.Spans.Len() == 0 {
				t.Fatalf("engine %v: no spans completed", engine)
			}
			return telemetryDump(t, res)
		}
		a, b := run(), run()
		if a != b {
			t.Errorf("engine %v: telemetry dump differs between identical runs", engine)
		}
		if !strings.Contains(a, `"name":"pktin"`) {
			t.Errorf("engine %v: no pktin trace in dump", engine)
		}
		if !strings.Contains(a, "lazyctrl_ctrl_packetins_total") {
			t.Errorf("engine %v: registry missing re-homed controller counter", engine)
		}
	}
}

// TestSpanTreeShardIndependent pins the causal span structure
// shard-count-independent: the controller's decide phase is the only
// concurrent region, and spans are created exclusively in ordered code,
// so a 1-stripe and an 8-stripe run must produce identical trees.
func TestSpanTreeShardIndependent(t *testing.T) {
	run := func(shards int) string {
		tr := smallTrace(t, 11)
		res, err := RunEmulation(EmulationConfig{
			Source:         tr.Stream(0),
			Mode:           controller.ModeLazy,
			GroupSizeLimit: 6,
			Horizon:        2 * time.Hour,
			BucketWidth:    time.Hour,
			Seed:           11,
			TraceSample:    1,
			StateShards:    shards,
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		tree := res.Spans.TreeString()
		if tree == "" {
			t.Fatalf("shards=%d: empty span forest", shards)
		}
		return tree
	}
	if a, b := run(1), run(8); a != b {
		t.Errorf("span trees differ between 1 and 8 shards:\n--- 1 shard\n%.2000s\n--- 8 shards\n%.2000s", a, b)
	}
}

// TestHostSamplingEngineMode exercises satellite host-level sampling
// end to end: the mode runs under EngineSampled, keeps SampleProb's
// meaning as the pair inclusion probability, and is rejected outside
// the sampled engine.
func TestHostSamplingEngineMode(t *testing.T) {
	tr := smallTrace(t, 3)
	res, err := RunEmulation(EmulationConfig{
		Source:         tr.Stream(0),
		Mode:           controller.ModeLearning,
		GroupSizeLimit: 6,
		Horizon:        2 * time.Hour,
		BucketWidth:    time.Hour,
		Seed:           3,
		Engine:         replay.EngineSampled,
		SampleProb:     0.5,
		HostSampling:   true,
	})
	if err != nil {
		t.Fatalf("host-sampled run: %v", err)
	}
	if res.FlowsInjected == 0 {
		t.Fatal("host sampling injected nothing")
	}
	if ratio := float64(res.FlowsDelivered) / float64(res.FlowsInjected); ratio < 0.95 {
		t.Errorf("delivery ratio = %.3f", ratio)
	}
	if res.WorkloadStdErrKrps == nil {
		t.Error("host-sampled engine reported no confidence bands")
	}

	tr2 := smallTrace(t, 3)
	if _, err := RunEmulation(EmulationConfig{
		Source:       tr2.Stream(0),
		Mode:         controller.ModeLearning,
		Horizon:      time.Hour,
		Seed:         3,
		HostSampling: true,
	}); err == nil {
		t.Error("HostSampling accepted outside the sampled engine")
	}
}

// TestFlightEventNamesMatchWire pins flightEvent's case-local type
// names to the wire codec's own MsgType name table: the hot path
// inlines the strings to skip two dynamic dispatches per event, and
// this is the tripwire if either side is renamed.
func TestFlightEventNamesMatchWire(t *testing.T) {
	msgs := []openflow.Message{
		&openflow.KeepAlive{}, &openflow.StateReport{},
		&openflow.GFIBDelta{}, &openflow.ConfigAck{},
		&openflow.GFIBUpdate{}, &openflow.Batch{},
		&openflow.GroupConfig{}, &openflow.PacketIn{},
		&openflow.PacketOut{}, &openflow.FlowMod{},
		&openflow.LFIBUpdate{}, &openflow.RoleAnnounce{},
		&openflow.StateSyncRecord{},
	}
	for _, m := range msgs {
		ev, ok := flightEvent(0, m)
		if !ok {
			t.Fatalf("%T: flightEvent rejected a control message", m)
		}
		if got, want := telemetry.FlightTypeName(ev.Type), m.MsgType().String(); got != want {
			t.Errorf("%T: flight type renders %q, wire name %q", m, got, want)
		}
	}
	if _, ok := flightEvent(0, &model.Packet{}); ok {
		t.Error("flightEvent accepted a data-plane packet")
	}
}
