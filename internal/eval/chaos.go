package eval

import (
	"time"

	"lazyctrl/internal/chaos"
	"lazyctrl/internal/controller"
	"lazyctrl/internal/edge"
	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/openflow"
	"lazyctrl/internal/sim"
	"lazyctrl/internal/telemetry"
	"lazyctrl/internal/tenant"
	"lazyctrl/internal/trace"
)

// chaosHarness adapts the emulation stack to the chaos.Harness
// surface: crash = node failure on the underlay, restart = the
// §III-E3 reboot-and-resync path (volatile tables wiped, L-FIB epoch
// advanced, hosts re-attached, controller told to re-push).
type chaosHarness struct {
	s        *sim.Simulator
	net      *netsim.Network
	ctrl     *controller.Controller
	standby  *controller.Controller // nil without EmulationConfig.Standby
	dir      *tenant.Directory
	switches map[model.SwitchID]*edge.Switch
	flights  map[model.SwitchID]*telemetry.Flight // nil without flight recorders
}

func (h *chaosHarness) Now() time.Duration               { return h.s.Now().Duration() }
func (h *chaosHarness) After(d time.Duration, fn func()) { h.s.After(d, fn) }
func (h *chaosHarness) Net() *netsim.Network             { return h.net }
func (h *chaosHarness) Switches() []model.SwitchID       { return h.dir.Switches() }

func (h *chaosHarness) GroupPeers(sw model.SwitchID) []model.SwitchID {
	g := h.ctrl.Grouping()
	return g.Members(g.GroupOf(sw))
}

func (h *chaosHarness) Designated(sw model.SwitchID) model.SwitchID {
	if s := h.switches[sw]; s != nil {
		return s.Group().Designated
	}
	return model.NoSwitch
}

func (h *chaosHarness) Crash(sw model.SwitchID) { h.net.FailNode(sw) }

func (h *chaosHarness) Restart(sw model.SwitchID) {
	h.net.HealNode(sw)
	s := h.switches[sw]
	if s == nil {
		return
	}
	s.Reboot()
	for _, hid := range h.dir.HostsOn(sw) {
		host := h.dir.Host(hid)
		s.AttachHost(host.MAC, host.IP, host.VLAN)
	}
	// The recovery signal goes to the current master role holder(s) —
	// after a takeover that is the promoted standby; a stale master's
	// re-pushes are fenced by the fabric.
	if h.standby == nil {
		h.ctrl.MarkRecovered(sw)
		return
	}
	for _, r := range []*controller.Controller{h.ctrl, h.standby} {
		if r.IsMaster() {
			r.MarkRecovered(sw)
		}
	}
}

func (h *chaosHarness) CrashController()   { h.net.FailNode(model.ControllerNode) }
func (h *chaosHarness) RestartController() { h.net.HealNode(model.ControllerNode) }

func (h *chaosHarness) Replicas() []model.SwitchID {
	if h.standby == nil {
		return []model.SwitchID{model.ControllerNode}
	}
	// Master-first, resolved at fire time; during a dispute both claim
	// the role and the original primary sorts first (deterministic).
	out := make([]model.SwitchID, 0, 2)
	for _, r := range []*controller.Controller{h.ctrl, h.standby} {
		if r.IsMaster() {
			out = append(out, r.NodeID())
		}
	}
	for _, r := range []*controller.Controller{h.ctrl, h.standby} {
		if !r.IsMaster() {
			out = append(out, r.NodeID())
		}
	}
	return out
}

// world builds the convergence checker over the harness's stack: the
// host directory is the ground truth, the underlay's node state the
// liveness oracle.
func (h *chaosHarness) world() *chaos.World {
	var replicas []*controller.Controller
	if h.standby != nil {
		replicas = []*controller.Controller{h.ctrl, h.standby}
	}
	return &chaos.World{
		Controller: h.ctrl,
		Switches:   h.switches,
		Down:       h.net.NodeDown,
		Replicas:   replicas,
		Hosts: func(sw model.SwitchID) []openflow.LFIBEntry {
			ids := h.dir.HostsOn(sw)
			out := make([]openflow.LFIBEntry, 0, len(ids))
			for _, hid := range ids {
				host := h.dir.Host(hid)
				out = append(out, openflow.LFIBEntry{MAC: host.MAC, IP: host.IP, VLAN: host.VLAN})
			}
			return out
		},
		Flight: func(sw model.SwitchID) []string {
			return h.flights[sw].Tail() // nil-map lookup and nil Tail are both fine
		},
	}
}

// ChaosCascadeResult pairs a fault-free run with a faulted run of the
// same seed, for the cascade differential (cmd/experiments -run chaos;
// the same comparison TestChaosCascadeDifferential pins in CI).
type ChaosCascadeResult struct {
	// Base is the fault-free run; Faulted ran the acceptance cascade
	// (correlated group loss + control-link partition + designated
	// crash mid-regroup, docs/robustness.md).
	Base, Faulted *EmulationResult
	// FixpointMatch reports whether the faulted run settled on the
	// byte-identical content fixpoint of the fault-free run.
	FixpointMatch bool
}

// ChaosCascade runs the acceptance cascade differential on the small
// synthetic trace: one fault-free run and one run under the scripted
// cascade, both with static grouping so the fixpoints are comparable.
func ChaosCascade(seed uint64) (*ChaosCascadeResult, error) {
	tr, err := trace.Generate(trace.SmallConfig("small", seed))
	if err != nil {
		return nil, err
	}
	run := func(plan *chaos.Plan) (*EmulationResult, error) {
		return RunEmulation(EmulationConfig{
			Source:         tr.Stream(0),
			Mode:           controller.ModeLazy,
			GroupSizeLimit: 6,
			Horizon:        time.Hour,
			BucketWidth:    30 * time.Minute,
			Seed:           seed,
			Chaos:          plan,
		})
	}
	base, err := run(&chaos.Plan{Name: "fault-free"})
	if err != nil {
		return nil, err
	}
	faulted, err := run(chaos.Cascade(1, 30*time.Minute))
	if err != nil {
		return nil, err
	}
	return &ChaosCascadeResult{
		Base: base, Faulted: faulted,
		FixpointMatch: faulted.Fixpoint == base.Fixpoint,
	}, nil
}

// ChaosFailoverResult pairs a fault-free replicated run with a faulted
// run of the same seed under one of the controller-failover scenarios
// (cmd/experiments -run failover; the same comparison
// TestChaosFailoverDifferential pins in CI).
type ChaosFailoverResult struct {
	// Base ran fault-free with the standby attached; Faulted ran one of
	// the FailoverPlans scenarios.
	Base, Faulted *EmulationResult
	// FixpointMatch reports whether the faulted run settled on the
	// byte-identical content fixpoint of the fault-free run (the
	// snapshot excludes master identity and generation, so runs that
	// end under different masters still compare).
	FixpointMatch bool
}

// FailoverPlans returns the three replicated-controller acceptance
// scenarios, sized against the emulation cadences (1 min replica
// keep-alive, 3-miss takeover): each fault opens at, the standby
// takes over ~3-4 keep-alive rounds later, and the old master heals
// with enough horizon left to be fenced, demoted, and re-synced. Each
// plan overlaps a switch crash one keep-alive round before the fault,
// so the takeover lands mid-recovery and the new master inherits an
// open diagnosis.
func FailoverPlans(at time.Duration) []*chaos.Plan {
	crash := func() *chaos.Plan {
		return (&chaos.Plan{}).Add(at-time.Minute, 6*time.Minute, chaos.Crash{Switch: 1})
	}
	return []*chaos.Plan{
		chaos.ControllerFailoverPlan(at, 12*time.Minute).Merge(crash()),
		chaos.SplitBrainPlan(at, 12*time.Minute).Merge(crash()),
		chaos.StaleMasterStormPlan(at, 12*time.Minute).Merge(crash()),
	}
}

// TakeoverRounds converts a takeover timeline into dissemination
// rounds (the 10 s advertise cadence), detection through the last
// re-pushed config ack; zero while the re-push is still open.
func TakeoverRounds(t controller.TakeoverTimeline) int {
	if t.RepushedAt == 0 {
		return 0
	}
	const round = 10 * time.Second
	return int((t.RepushedAt - t.DetectedAt + round - 1) / round)
}

// ChaosFailover runs one failover-scenario differential on the small
// synthetic trace: a fault-free replicated run and a faulted run with
// identical flow schedules and static grouping, so the fixpoints are
// comparable byte for byte.
func ChaosFailover(seed uint64, plan *chaos.Plan) (*ChaosFailoverResult, error) {
	tr, err := trace.Generate(trace.SmallConfig("small", seed))
	if err != nil {
		return nil, err
	}
	run := func(p *chaos.Plan) (*EmulationResult, error) {
		return RunEmulation(EmulationConfig{
			Source:         tr.Stream(0),
			Mode:           controller.ModeLazy,
			GroupSizeLimit: 6,
			Horizon:        time.Hour,
			BucketWidth:    30 * time.Minute,
			Seed:           seed,
			Standby:        true,
			Chaos:          p,
		})
	}
	base, err := run(&chaos.Plan{Name: "fault-free"})
	if err != nil {
		return nil, err
	}
	faulted, err := run(plan)
	if err != nil {
		return nil, err
	}
	return &ChaosFailoverResult{
		Base: base, Faulted: faulted,
		FixpointMatch: faulted.Fixpoint == base.Fixpoint,
	}, nil
}
