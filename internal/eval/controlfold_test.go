package eval

import (
	"math"
	"strings"
	"testing"
	"time"

	"lazyctrl/internal/chaos"
	"lazyctrl/internal/controller"
	"lazyctrl/internal/trace"
)

// foldRun is the shared driver of the control-fold differentials: one
// emulation with wire metering on, fold on or off.
func foldRun(t *testing.T, src trace.Stream, fold bool, plan *chaos.Plan, seed uint64) *EmulationResult {
	t.Helper()
	// 5s past the cadence lattice (10s/30s/60s): a horizon landing
	// exactly on a keep-alive round truncates the real run's acks
	// in flight while the fold credits the whole round — the one
	// boundary artifact of the analytic model (docs/emulation.md).
	res, err := foldRunAt(src, fold, plan, seed, 2*time.Hour+5*time.Second, 30*time.Minute)
	if err != nil {
		t.Fatalf("fold=%v: %v", fold, err)
	}
	return res
}

func foldRunAt(src trace.Stream, fold bool, plan *chaos.Plan, seed uint64, horizon, bucket time.Duration) (*EmulationResult, error) {
	return RunEmulation(EmulationConfig{
		Source:         src,
		Mode:           controller.ModeLazy,
		GroupSizeLimit: 6,
		Horizon:        horizon,
		BucketWidth:    bucket,
		Seed:           seed,
		MeterWire:      true,
		ControlFold:    fold,
		Chaos:          plan,
	})
}

// quiescentStream strips the small trace's flows: pure control-plane
// background (advertise beacons, peer and controller keep-alives,
// G-FIB dissemination rounds, empty state reports).
func quiescentStream(t testing.TB, seed uint64) trace.Stream {
	t.Helper()
	tr := smallTrace(t, seed)
	tr.Flows = nil
	return tr.Stream(0)
}

// synQuiescentStream is the paper's full 2,713-switch Syn topology with
// (essentially) no traffic: the generator's flow budget is divided away
// by a huge scale divisor and the leftovers stripped, leaving the pure
// periodic control-plane background at paper scale.
func synQuiescentStream(tb testing.TB, seed uint64) trace.Stream {
	tb.Helper()
	tr, err := trace.Generate(trace.SynAConfig(1<<30, seed))
	if err != nil {
		tb.Fatal(err)
	}
	tr.Flows = nil
	return tr.Stream(0)
}

// TestControlFoldFullTopology pins the fold's headline claim where it
// matters — the full 2,713-switch topology the Scale=1 sweeps run on:
// byte- and count-identical control-plane background at ≥10× fewer DES
// events. BenchmarkControlFold tracks the same run's wall clock.
func TestControlFoldFullTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("full-topology DES comparison run")
	}
	const seed = 7
	// 20 minutes is cadence-representative (40 keep-alive rounds); +5s
	// clears the horizon-boundary artifact, as in foldRun.
	const horizon = 20*time.Minute + 5*time.Second
	full, err := foldRunAt(synQuiescentStream(t, seed), false, nil, seed, horizon, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	folded, err := foldRunAt(synQuiescentStream(t, seed), true, nil, seed, horizon, 10*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if folded.ControlMsgs != full.ControlMsgs || folded.ControlBytes != full.ControlBytes {
		t.Errorf("folded %d msgs / %d B, full DES %d msgs / %d B (must be identical)",
			folded.ControlMsgs, folded.ControlBytes, full.ControlMsgs, full.ControlBytes)
	}
	t.Logf("2713 switches, %v quiescent: %d control msgs / %d B; events full=%d folded=%d (%.1fx)",
		horizon, full.ControlMsgs, full.ControlBytes, full.SimEvents, folded.SimEvents,
		float64(full.SimEvents)/float64(folded.SimEvents))
	if folded.SimEvents*10 > full.SimEvents {
		t.Errorf("folded run executed %d events, full DES %d — want ≥10× reduction",
			folded.SimEvents, full.SimEvents)
	}
}

// BenchmarkControlFold is the folded quiescent 2,713-switch emulation —
// the fixed per-sweep control-plane cost every Scale=1 series pays.
// events/op and wire-B/op pin the fold's event elision and the metered
// background volume; cmd/bench gates it against the previous report.
func BenchmarkControlFold(b *testing.B) {
	const seed = 7
	const horizon = 20*time.Minute + 5*time.Second
	src := synQuiescentStream(b, seed)
	b.ResetTimer()
	var last *EmulationResult
	for i := 0; i < b.N; i++ {
		res, err := foldRunAt(src, true, nil, seed, horizon, 10*time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.SimEvents), "events/op")
	b.ReportMetric(float64(last.ControlBytes), "wire-B/op")
}

// TestControlFoldDifferential pins the tentpole's correctness contract
// (docs/emulation.md "control-plane fold"):
//
//   - on a quiescent topology the folded run's control-plane
//     background is byte- and count-identical to the full DES while
//     executing at least 10× fewer events;
//   - under traffic churn the folded totals stay within 5% (the fold
//     re-materializes around every state change, but the two runs'
//     RNG streams diverge, shifting message timing near the horizon);
//   - under a fault cascade the folded run converges to the same
//     content fixpoint as its fault-free twin — failure suspicion and
//     recovery ride real rounds, never folded ones.
func TestControlFoldDifferential(t *testing.T) {
	const seed = 5

	full := foldRun(t, quiescentStream(t, seed), false, nil, seed)
	folded := foldRun(t, quiescentStream(t, seed), true, nil, seed)
	if full.ControlMsgs == 0 || full.ControlBytes == 0 {
		t.Fatal("quiescent full DES metered no control traffic")
	}
	if folded.ControlMsgs != full.ControlMsgs {
		t.Errorf("quiescent: folded %d control msgs, full DES %d (must be identical)",
			folded.ControlMsgs, full.ControlMsgs)
	}
	if folded.ControlBytes != full.ControlBytes {
		t.Errorf("quiescent: folded %d control bytes, full DES %d (must be identical)",
			folded.ControlBytes, full.ControlBytes)
	}
	if folded.ControllerStats.StateReports != full.ControllerStats.StateReports {
		t.Errorf("quiescent: folded %d state reports, full DES %d",
			folded.ControllerStats.StateReports, full.ControllerStats.StateReports)
	}
	if folded.IdleRefreshes != full.IdleRefreshes {
		t.Errorf("quiescent: folded %d idle refreshes, full DES %d",
			folded.IdleRefreshes, full.IdleRefreshes)
	}
	t.Logf("quiescent: %d control msgs / %d B; events full=%d folded=%d (%.1fx)",
		full.ControlMsgs, full.ControlBytes, full.SimEvents, folded.SimEvents,
		float64(full.SimEvents)/float64(folded.SimEvents))
	if folded.SimEvents*10 > full.SimEvents {
		t.Errorf("quiescent: folded run executed %d events, full DES %d — want ≥10× reduction",
			folded.SimEvents, full.SimEvents)
	}

	// Churn: real traffic wakes the folded timers continuously; counts
	// must track within 5% even though the RNG streams diverge.
	churnSrc := func() trace.Stream { return smallTrace(t, seed).Stream(0) }
	fullC := foldRun(t, churnSrc(), false, nil, seed)
	foldC := foldRun(t, churnSrc(), true, nil, seed)
	relMsgs := math.Abs(float64(foldC.ControlMsgs)-float64(fullC.ControlMsgs)) / float64(fullC.ControlMsgs)
	relBytes := math.Abs(float64(foldC.ControlBytes)-float64(fullC.ControlBytes)) / float64(fullC.ControlBytes)
	t.Logf("churn: msgs full=%d folded=%d (%.2f%%); bytes full=%d folded=%d (%.2f%%)",
		fullC.ControlMsgs, foldC.ControlMsgs, 100*relMsgs,
		fullC.ControlBytes, foldC.ControlBytes, 100*relBytes)
	if relMsgs > 0.05 {
		t.Errorf("churn: control msg count diverges %.2f%% (> 5%%)", 100*relMsgs)
	}
	if relBytes > 0.05 {
		t.Errorf("churn: control byte count diverges %.2f%% (> 5%%)", 100*relBytes)
	}

	// Faults: the cascade re-materializes every folded timer; the run
	// must converge to the same fixpoint as its folded fault-free twin.
	base := foldRun(t, churnSrc(), true, &chaos.Plan{Name: "fault-free"}, seed)
	if !base.Converged {
		t.Fatalf("folded fault-free run did not converge:\n%s", strings.Join(base.Divergences, "\n"))
	}
	faulted := foldRun(t, churnSrc(), true, chaos.Cascade(1, 30*time.Minute), seed)
	if faulted.Drops.InjectedLoss == 0 && faulted.Drops.Partition == 0 {
		t.Error("cascade dropped nothing — faults did not fire")
	}
	if !faulted.Converged {
		t.Fatalf("folded cascade did not converge:\n%s", strings.Join(faulted.Divergences, "\n"))
	}
	if faulted.Fixpoint != base.Fixpoint {
		t.Errorf("folded cascade fixpoint differs from folded fault-free fixpoint:\n--- fault-free ---\n%s\n--- faulted ---\n%s",
			base.Fixpoint, faulted.Fixpoint)
	}
}
