package eval

import (
	"fmt"
	"time"

	"lazyctrl/internal/bloom"
	"lazyctrl/internal/controller"
	"lazyctrl/internal/fib"
	"lazyctrl/internal/grouping"
	"lazyctrl/internal/model"
	"lazyctrl/internal/replay"
	"lazyctrl/internal/trace"
)

// TableIIRow is one dataset row of Table II.
type TableIIRow struct {
	Name string
	// PaperFlows is the unscaled flow count the paper reports; Measured
	// is this run's generated count (PaperFlows / Scale).
	PaperFlows    int64
	MeasuredFlows int
	// AvgCentrality is the measured 5-way average centrality; PaperC is
	// the value Table II reports.
	AvgCentrality float64
	PaperC        float64
	P, Q          int
}

// TableII regenerates the trace-characteristics table at the given
// scale, streaming each dataset through the centrality accumulator
// instead of materializing its flows.
func TableII(scale int, seed uint64) ([]TableIIRow, error) {
	type spec struct {
		name   string
		cfg    trace.GeneratorConfig
		flows  int64
		paperC float64
	}
	specs := []spec{
		{"Real", trace.RealLikeConfig(scale, seed), trace.RealPaperFlows, 0.85},
		{"Syn-A", trace.SynAConfig(scale*10, seed), trace.SynAFlows, 0.85},
		{"Syn-B", trace.SynBConfig(scale*14, seed), trace.SynBFlows, 0.72},
		{"Syn-C", trace.SynCConfig(scale*19, seed), trace.SynCFlows, 0.61},
	}
	rows := make([]TableIIRow, 0, len(specs))
	for _, sp := range specs {
		s, err := trace.NewStream(sp.cfg)
		if err != nil {
			return nil, fmt.Errorf("eval: %s: %w", sp.name, err)
		}
		c, err := trace.StreamCentrality(s, 5, seed)
		if err != nil {
			return nil, fmt.Errorf("eval: %s centrality: %w", sp.name, err)
		}
		info := s.Info()
		rows = append(rows, TableIIRow{
			Name:          sp.name,
			PaperFlows:    sp.flows,
			MeasuredFlows: info.TotalFlows,
			AvgCentrality: c,
			PaperC:        sp.paperC,
			P:             info.P,
			Q:             info.Q,
		})
	}
	return rows, nil
}

// Fig6aPoint is one (trace, #groups) → W_inter sample of Fig. 6(a).
type Fig6aPoint struct {
	Trace     string
	Groups    int
	WinterPct float64
}

// synConfigs names the three synthetic workloads shared by the Fig. 6
// sweeps.
func synConfigs(scale int, seed uint64) []struct {
	name string
	cfg  trace.GeneratorConfig
} {
	return []struct {
		name string
		cfg  trace.GeneratorConfig
	}{
		{"Syn-A", trace.SynAConfig(scale, seed)},
		{"Syn-B", trace.SynBConfig(scale*14/10, seed)},
		{"Syn-C", trace.SynCConfig(scale*19/10, seed)},
	}
}

// synIntensities streams the three synthetic traces concurrently and
// reduces each to its switch-intensity matrix — the flows are never
// materialized, only folded window by window. The returned matrices
// are read-only from that point on, so sweep points can share them
// across the worker pool.
func synIntensities(scale int, seed uint64) ([]string, []*grouping.Intensity, error) {
	cfgs := synConfigs(scale, seed)
	names := make([]string, len(cfgs))
	ms := make([]*grouping.Intensity, len(cfgs))
	err := parallelFor(len(cfgs), func(i int) error {
		s, err := trace.NewStream(cfgs[i].cfg)
		if err != nil {
			return err
		}
		names[i] = cfgs[i].name
		ms[i] = trace.StreamIntensity(s, 0, s.Info().Duration)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return names, ms, nil
}

// Fig6a sweeps the number of groups for each synthetic trace and
// reports the normalized inter-group traffic intensity, reproducing
// Fig. 6(a): W_inter grows roughly linearly with the group count and is
// lower for traces with higher centrality. Every (trace, k) point is an
// independent partitioning problem, so the sweep fans out across the
// worker pool; output order matches the sequential sweep.
func Fig6a(scale int, seed uint64, groupCounts []int) ([]Fig6aPoint, error) {
	names, ms, err := synIntensities(scale, seed)
	if err != nil {
		return nil, err
	}
	type job struct{ ti, k int }
	var jobs []job
	for ti := range ms {
		n := ms[ti].NumSwitches()
		for _, k := range groupCounts {
			if k < 1 || k > n {
				continue
			}
			jobs = append(jobs, job{ti, k})
		}
	}
	out := make([]Fig6aPoint, len(jobs))
	err = parallelFor(len(jobs), func(j int) error {
		ti, k := jobs[j].ti, jobs[j].k
		m := ms[ti]
		n := m.NumSwitches()
		limit := (n + k - 1) / k
		// Allow slack so the partitioner can express affinity while
		// still producing ≈k groups.
		limit += limit / 5
		sgi, err := grouping.New(grouping.Config{SizeLimit: limit, Seed: seed})
		if err != nil {
			return err
		}
		grp, err := sgi.IniGroup(m)
		if err != nil {
			return fmt.Errorf("eval: fig6a %s k=%d: %w", names[ti], k, err)
		}
		out[j] = Fig6aPoint{
			Trace:     names[ti],
			Groups:    grp.NumGroups(),
			WinterPct: 100 * grouping.Winter(grp, m),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig6bPoint is one (trace, size limit) → IniGroup wall time sample of
// Fig. 6(b).
type Fig6bPoint struct {
	Trace     string
	SizeLimit int
	Elapsed   time.Duration
	// IncElapsed is the IncUpdate time on the same instance (the paper
	// notes it is more than an order of magnitude faster).
	IncElapsed time.Duration
}

// Fig6b measures switch-grouping computation time against the group
// size limit. Trace generation fans out across the worker pool, but
// the timed points themselves run sequentially: Fig. 6(b) is a
// computation-time figure, and wall-clock measured under CPU
// contention from sibling points would not be comparable across runs
// or machines.
func Fig6b(scale int, seed uint64, sizeLimits []int) ([]Fig6bPoint, error) {
	names, ms, err := synIntensities(scale, seed)
	if err != nil {
		return nil, err
	}
	var out []Fig6bPoint
	for ti := range ms {
		m := ms[ti]
		for _, limit := range sizeLimits {
			if limit < 1 {
				continue
			}
			sgi, err := grouping.New(grouping.Config{SizeLimit: limit, Seed: seed})
			if err != nil {
				return nil, err
			}
			start := time.Now() //lazyvet:allow determinism fig6b measures real IniGroup compute time; the duration is reported, never fed back into simulated state
			grp, err := sgi.IniGroup(m)
			if err != nil {
				return nil, fmt.Errorf("eval: fig6b %s limit=%d: %w", names[ti], limit, err)
			}
			elapsed := time.Since(start) //lazyvet:allow determinism fig6b reports wall time of the computation itself
			// One IncUpdate round for the speed comparison.
			start = time.Now() //lazyvet:allow determinism fig6b measures real IncUpdate compute time
			if _, err := sgi.IncUpdate(grp, m, nil); err != nil {
				return nil, err
			}
			incElapsed := time.Since(start) //lazyvet:allow determinism fig6b reports wall time of the computation itself
			out = append(out, Fig6bPoint{
				Trace:      names[ti],
				SizeLimit:  limit,
				Elapsed:    elapsed,
				IncElapsed: incElapsed,
			})
		}
	}
	return out, nil
}

// Series names for Fig. 7/8/9.
const (
	SeriesOpenFlow        = "OpenFlow"
	SeriesRealStatic      = "LazyCtrl (real, static)"
	SeriesRealDynamic     = "LazyCtrl (real, dynamic)"
	SeriesExpandedStatic  = "LazyCtrl (expanded, static)"
	SeriesExpandedDynamic = "LazyCtrl (expanded, dynamic)"
)

// Fig789Config drives the three trace-replay figures, which share the
// same five emulation runs.
type Fig789Config struct {
	// Scale divides the real trace's 271M flows. Benchmarks use 5000
	// (54k flows); unit tests use much larger divisors. Scale 1 is the
	// paper's full trace — reachable end to end through the sampled or
	// fluid engine.
	Scale int
	Seed  uint64
	// Horizon truncates the day (0 = 24h).
	Horizon time.Duration
	// GroupSizeLimit for LazyCtrl runs. Zero selects 46.
	GroupSizeLimit int
	// Engine and SampleProb select the replay engine for all five runs
	// (see EmulationConfig).
	Engine     replay.Engine
	SampleProb float64
	// Trace overrides the replayed workload (nil selects the real
	// day-long trace at Scale). The expanded series still derive from
	// it by the +30% silent-pair expansion, and the warmup intensity
	// samples a 10×-denser generation of the same config.
	Trace *trace.GeneratorConfig
	// PerFlowBaseline switches all five series to per-flow (5-tuple)
	// reactive rules — the paper's rule granularity, applied uniformly
	// so the comparison is between control planes, not rule shapes.
	// Without it, exact-dst rules with a 60s idle timeout stay
	// perpetually warm at full pair density and both sides' workloads
	// collapse (the density artifact, docs/emulation.md); with it, the
	// reduction measures what LazyCtrl actually changes — the fraction
	// of escalations the group-local controllers absorb — and lands in
	// the paper's 61–82% band, tracking each trace's centrality.
	PerFlowBaseline bool
	// ControlFold folds the quiescent control-plane background
	// analytically in all five runs (EmulationConfig.ControlFold).
	ControlFold bool
	// AggregatePopulation folds the traffic population analytically in
	// all five runs (EmulationConfig.AggregatePopulation; fluid engine
	// only). Required for the Scale=1 synthetic sweeps.
	AggregatePopulation bool
	// WarmupScale overrides the warmup-intensity generation's scale
	// divisor (0 keeps the default Scale/10, min 1). Full-scale sweeps
	// set a coarser divisor: the warmup intensity only seeds the
	// initial grouping, and tens of millions of first-hour flows pin
	// the pair ranking just as well as hundreds of millions.
	WarmupScale int
	// HostSampling and TraceSample pass through to every series' run
	// (EmulationConfig.HostSampling / TraceSample): host-level
	// sampling for the sampled engine, and the causal span tracer's
	// head-sampling rate (0 = tracing off).
	HostSampling bool
	TraceSample  float64
}

// Fig789Result carries one named series per emulation run.
type Fig789Result struct {
	Series map[string]*EmulationResult
	// ReductionStatic/Dynamic are the Fig. 7 headline numbers: workload
	// reduction of LazyCtrl vs OpenFlow on the real trace.
	ReductionRealStatic      float64
	ReductionRealDynamic     float64
	ReductionExpandedStatic  float64
	ReductionExpandedDynamic float64
}

// RunFig789 executes the five runs of Fig. 7 (which also produce Fig. 8
// and Fig. 9): OpenFlow on the real trace, LazyCtrl static/dynamic on
// the real trace, and LazyCtrl static/dynamic on the expanded trace
// (+30% flows among previously silent pairs during hours 8–24).
func RunFig789(cfg Fig789Config) (*Fig789Result, error) {
	if cfg.Scale < 1 {
		return nil, fmt.Errorf("eval: Scale must be ≥ 1")
	}
	// The real→expanded stream chain and the warmup-intensity generation
	// are independent: overlap them. Warmup sees the full (unscaled)
	// first hour; sample it from a 10×-denser generation of the same
	// traffic distribution (identical topology and pair pools under the
	// same seed) — streamed, so only the first hour's windows of the
	// denser trace are ever generated.
	var (
		real, expanded trace.Stream
		warm           *grouping.Intensity
	)
	baseCfg := trace.RealLikeConfig(cfg.Scale, cfg.Seed)
	if cfg.Trace != nil {
		baseCfg = *cfg.Trace
	}
	err := parallelFor(2, func(i int) error {
		switch i {
		case 0:
			var err error
			real, err = trace.NewStream(baseCfg)
			if err != nil {
				return err
			}
			expanded, err = trace.ExpandStream(real, 0.30, 8, 24, cfg.Seed^0xe)
			return err
		default:
			warmCfg := baseCfg
			warmCfg.Scale = baseCfg.Scale / 10
			if warmCfg.Scale < 1 {
				warmCfg.Scale = 1
			}
			if cfg.WarmupScale > 0 {
				warmCfg.Scale = cfg.WarmupScale
			}
			warmCfg.WindowsPerHour = 0 // auto-size the warmup windows independently
			warmStream, err := trace.NewStream(warmCfg)
			if err != nil {
				return err
			}
			warm = trace.StreamIntensity(warmStream, 0, time.Hour)
			return nil
		}
	})
	if err != nil {
		return nil, err
	}
	runs := []struct {
		name    string
		src     trace.Stream
		mode    controller.Mode
		dynamic bool
	}{
		{SeriesOpenFlow, real, controller.ModeLearning, false},
		{SeriesRealStatic, real, controller.ModeLazy, false},
		{SeriesRealDynamic, real, controller.ModeLazy, true},
		{SeriesExpandedStatic, expanded, controller.ModeLazy, false},
		{SeriesExpandedDynamic, expanded, controller.ModeLazy, true},
	}
	// The five emulations are deterministic per seed and share no mutable
	// state (each owns its simulator; stream windows regenerate
	// per-consumer from read-only pools, and the warmup matrix is
	// read-only), so they fan out across the worker pool.
	results := make([]*EmulationResult, len(runs))
	err = parallelFor(len(runs), func(i int) error {
		r := runs[i]
		res, err := RunEmulation(EmulationConfig{
			Source:              r.src,
			Mode:                r.mode,
			Dynamic:             r.dynamic,
			GroupSizeLimit:      cfg.GroupSizeLimit,
			Horizon:             cfg.Horizon,
			Seed:                cfg.Seed,
			WarmupIntensity:     warm,
			Engine:              cfg.Engine,
			SampleProb:          cfg.SampleProb,
			PerFlowBaseline:     cfg.PerFlowBaseline,
			ControlFold:         cfg.ControlFold,
			AggregatePopulation: cfg.AggregatePopulation,
			HostSampling:        cfg.HostSampling,
			TraceSample:         cfg.TraceSample,
		})
		if err != nil {
			return fmt.Errorf("eval: %s: %w", r.name, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &Fig789Result{Series: make(map[string]*EmulationResult, len(runs))}
	for i, r := range runs {
		out.Series[r.name] = results[i]
	}
	base := out.Series[SeriesOpenFlow].WorkloadKrps
	out.ReductionRealStatic = Reduction(base, out.Series[SeriesRealStatic].WorkloadKrps)
	out.ReductionRealDynamic = Reduction(base, out.Series[SeriesRealDynamic].WorkloadKrps)
	out.ReductionExpandedStatic = Reduction(base, out.Series[SeriesExpandedStatic].WorkloadKrps)
	out.ReductionExpandedDynamic = Reduction(base, out.Series[SeriesExpandedDynamic].WorkloadKrps)
	return out, nil
}

// ColdCacheResult reproduces the §V-E cold-cache comparison: 45 fresh
// flows among 5 newly deployed hosts.
type ColdCacheResult struct {
	// LazyIntra is the mean first-packet latency for intra-group flows
	// under LazyCtrl (paper: 0.83 ms).
	LazyIntra time.Duration
	// LazyInter is the inter-group cold-cache latency (paper: 5.38 ms).
	LazyInter time.Duration
	// OpenFlow is the baseline cold-cache latency (paper: 15.06 ms).
	OpenFlow time.Duration
}

// StorageRow is one group-size row of the §V-D storage analysis.
type StorageRow struct {
	GroupSize int
	// GFIBBytes is the per-switch G-FIB footprint: (groupSize−1)
	// filters of 16 128-byte entries.
	GFIBBytes int
	// FPP is the false-positive probability at the given hosts/switch
	// occupancy.
	FPP float64
	// HostsPerSwitch used for the FPP estimate.
	HostsPerSwitch int
}

// Storage computes the Bloom-filter storage table for the given group
// sizes (the paper's example: 46 switches → 92,160 bytes, FPP < 0.1%).
func Storage(groupSizes []int, hostsPerSwitch int) []StorageRow {
	if hostsPerSwitch <= 0 {
		hostsPerSwitch = 24 // 6509 hosts / 272 switches
	}
	rows := make([]StorageRow, 0, len(groupSizes))
	for _, size := range groupSizes {
		if size < 2 {
			continue
		}
		g := fib.NewGFIB()
		for i := 1; i < size; i++ {
			g.SetFilter(model.SwitchID(i), bloom.New(fib.DefaultFilterBits, fib.DefaultFilterHashes))
		}
		rows = append(rows, StorageRow{
			GroupSize:      size,
			GFIBBytes:      g.SizeBytes(),
			FPP:            bloom.FPPFor(fib.DefaultFilterBits, fib.DefaultFilterHashes, uint64(2*hostsPerSwitch)),
			HostsPerSwitch: hostsPerSwitch,
		})
	}
	return rows
}
