package eval

import (
	"fmt"
	"math/rand/v2"
	"sync/atomic"
	"time"

	"lazyctrl/internal/controller"
	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/openflow"
)

// StormConfig parameterizes a packet-in storm against a standalone
// controller (no underlay): the worst case of §IV-B, where every flow
// setup in the data center lands on the central controller at once.
type StormConfig struct {
	// Switches is the number of edge switches (zero selects 64).
	Switches int
	// Hosts is the number of warm hosts spread over the switches (zero
	// selects 4096).
	Hosts int
	// Events is the burst size handed to one ProcessBurst call (zero
	// selects 8192).
	Events int
	// UnknownFrac is the fraction of events whose destination was never
	// learned, forcing the flood path (zero selects 0.02).
	UnknownFrac float64
	// Shards is the controller's StateShards.
	Shards int
	// Seed drives the deterministic event mix.
	Seed uint64
}

func (c StormConfig) withDefaults() StormConfig {
	if c.Switches == 0 {
		c.Switches = 64
	}
	if c.Hosts == 0 {
		c.Hosts = 4096
	}
	if c.Events == 0 {
		c.Events = 8192
	}
	if c.UnknownFrac == 0 {
		c.UnknownFrac = 0.02
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Storm is a reusable packet-in-storm driver: a learning-mode
// controller warmed with every host location plus a deterministic
// burst. Run replays the burst through the sharded intake; the
// controller's outputs land in a message-counting sink, so the work
// measured is exactly the controller hot path (hashing, shard locks,
// table reads/writes, decision application).
type Storm struct {
	Ctrl  *controller.Controller
	Batch []openflow.PacketIn
	sink  *sinkEnv
}

// NewStorm builds a storm driver.
func NewStorm(cfg StormConfig) (*Storm, error) {
	c := cfg.withDefaults()
	switches := make([]model.SwitchID, c.Switches)
	for i := range switches {
		switches[i] = model.SwitchID(i + 1)
	}
	sink := &sinkEnv{rng: rand.New(rand.NewPCG(c.Seed, 0x57f))}
	ctrl, err := controller.New(controller.Config{
		Mode:        controller.ModeLearning,
		Switches:    switches,
		Seed:        c.Seed,
		StateShards: c.Shards,
	}, sink)
	if err != nil {
		return nil, fmt.Errorf("storm: %w", err)
	}
	hostSwitch := func(h model.HostID) model.SwitchID {
		return model.SwitchID(uint32(h)%uint32(c.Switches) + 1)
	}
	// Warm sequentially: every host location learned before the storm,
	// so burst results are interleaving-independent.
	for h := model.HostID(1); h <= model.HostID(c.Hosts); h++ {
		ctrl.HandleMessage(hostSwitch(h), &openflow.PacketIn{
			Switch: hostSwitch(h),
			Packet: model.Packet{SrcMAC: model.HostMAC(h), DstMAC: model.BroadcastMAC, VLAN: 1},
		})
	}
	rng := rand.New(rand.NewPCG(c.Seed, c.Seed^0xbeef))
	batch := make([]openflow.PacketIn, c.Events)
	for i := range batch {
		src := model.HostID(1 + rng.IntN(c.Hosts))
		dst := model.HostID(1 + rng.IntN(c.Hosts))
		if rng.Float64() < c.UnknownFrac {
			dst = model.HostID(1_000_000 + rng.IntN(1000))
		}
		batch[i] = openflow.PacketIn{
			Switch: hostSwitch(src),
			Reason: openflow.ReasonNoMatch,
			Packet: model.Packet{
				SrcMAC: model.HostMAC(src),
				DstMAC: model.HostMAC(dst),
				SrcIP:  model.HostIP(src),
				DstIP:  model.HostIP(dst),
				VLAN:   1,
				Ether:  model.EtherTypeIPv4,
				Bytes:  1000,
			},
		}
	}
	return &Storm{Ctrl: ctrl, Batch: batch, sink: sink}, nil
}

// Run replays the burst once.
func (s *Storm) Run() { s.Ctrl.ProcessBurst(s.Batch) }

// MessagesOut reports how many messages the controller emitted.
func (s *Storm) MessagesOut() uint64 { return s.sink.sends.Load() }

// sinkEnv is a netsim.Env that counts emitted messages and fires
// timers inline, isolating the controller hot path from any underlay.
type sinkEnv struct {
	sends atomic.Uint64
	rng   *rand.Rand
}

func (e *sinkEnv) Now() time.Duration { return 0 }

func (e *sinkEnv) After(d time.Duration, fn func()) func() {
	fn()
	return func() {}
}

func (e *sinkEnv) Every(d time.Duration, fn func()) func() { return func() {} }

func (e *sinkEnv) Send(to model.SwitchID, msg netsim.Message) { e.sends.Add(1) }

func (e *sinkEnv) Rand() *rand.Rand { return e.rng }
