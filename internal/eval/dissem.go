package eval

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"time"

	"lazyctrl/internal/edge"
	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/openflow"
)

// DissemConfig parameterizes the G-FIB distribution harness: a fabric
// of edge switches partitioned into local control groups, driven round
// by round with every control message metered through the OpenFlow
// codec. It isolates exactly the protocol cost the delta path attacks:
// what a host arrival puts on the control channel.
type DissemConfig struct {
	// Switches is the fabric size (zero selects 1024).
	Switches int
	// GroupSize is the LCG size (zero selects 46, the paper's storage
	// example; the last group takes the remainder).
	GroupSize int
	// HostsPerSwitch warms each L-FIB (zero selects 24, the paper's
	// average VM density).
	HostsPerSwitch int
	// FullPush disables the word-delta path (the measurement baseline):
	// every changed filter ships in full.
	FullPush bool
	// Seed drives nothing random today but keeps the config stable as
	// the harness grows.
	Seed uint64
}

func (c DissemConfig) withDefaults() DissemConfig {
	if c.Switches == 0 {
		c.Switches = 1024
	}
	if c.GroupSize == 0 {
		c.GroupSize = 46
	}
	if c.HostsPerSwitch == 0 {
		c.HostsPerSwitch = 24
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Dissem is the constructed harness.
type Dissem struct {
	cfg      DissemConfig
	net      *dissemNet
	Switches map[model.SwitchID]*edge.Switch
	ids      []model.SwitchID
	nextHost model.HostID
	// hosts tracks attachments per switch so churn can also remove.
	hosts map[model.SwitchID][]model.HostID
}

// dissemNet is a synchronous single-threaded underlay for the
// dissemination harness: every control message is encoded (metering
// bytes on the wire), decoded, and delivered inline; periodic timers
// are collected per node and fired explicitly by Round in registration
// passes, so one Round is exactly "every member advertises, then every
// designated switch disseminates and reports".
type dissemNet struct {
	nodes    map[model.SwitchID]netsim.Node
	periodic map[model.SwitchID][]func()
	deferred []func()
	now      time.Duration
	rng      *rand.Rand

	// Drop, when set, discards a message (after metering zero bytes
	// for it — a dropped message never crossed the wire). The NACK/
	// resync tests inject losses with it.
	Drop func(from, to model.SwitchID, msg netsim.Message) bool

	wireBytes uint64
	messages  uint64
	codecErrs uint64
	maxPasses int
}

func newDissemNet(seed uint64) *dissemNet {
	return &dissemNet{
		nodes:    make(map[model.SwitchID]netsim.Node),
		periodic: make(map[model.SwitchID][]func()),
		rng:      rand.New(rand.NewPCG(seed, 0xd155)),
	}
}

func (n *dissemNet) attach(node netsim.Node) { n.nodes[node.NodeID()] = node }

func (n *dissemNet) send(from, to model.SwitchID, msg netsim.Message) {
	ofMsg, ok := msg.(openflow.Message)
	if !ok {
		if dst := n.nodes[to]; dst != nil {
			dst.HandleMessage(from, msg)
		}
		return
	}
	if n.Drop != nil && n.Drop(from, to, msg) {
		return
	}
	data, err := openflow.Encode(ofMsg, 0)
	if err != nil {
		n.codecErrs++
		return
	}
	n.wireBytes += uint64(len(data))
	n.messages++
	decoded, _, err := openflow.Decode(data)
	if err != nil {
		n.codecErrs++
		return
	}
	if dst := n.nodes[to]; dst != nil {
		dst.HandleMessage(from, decoded)
	}
	// Messages to unattached nodes (the controller) are metered but
	// discarded: the harness has no controller, yet its state-link
	// bytes belong in the control-channel total.
}

// dissemEnv adapts one node address to netsim.Env.
type dissemEnv struct {
	net *dissemNet
	id  model.SwitchID
}

func (e *dissemEnv) Now() time.Duration { return e.net.now }

func (e *dissemEnv) After(d time.Duration, fn func()) func() {
	canceled := false
	e.net.deferred = append(e.net.deferred, func() {
		if !canceled {
			fn()
		}
	})
	return func() { canceled = true }
}

func (e *dissemEnv) Every(d time.Duration, fn func()) func() {
	slots := e.net.periodic[e.id]
	idx := len(slots)
	e.net.periodic[e.id] = append(slots, fn)
	if idx+1 > e.net.maxPasses {
		e.net.maxPasses = idx + 1
	}
	return func() { e.net.periodic[e.id][idx] = nil }
}

func (e *dissemEnv) Send(to model.SwitchID, msg netsim.Message) { e.net.send(e.id, to, msg) }

func (e *dissemEnv) Rand() *rand.Rand { return e.net.rng }

// drainDeferred runs callbacks scheduled with After, including any
// they schedule in turn.
func (n *dissemNet) drainDeferred() {
	for len(n.deferred) > 0 {
		batch := n.deferred
		n.deferred = nil
		for _, fn := range batch {
			fn()
		}
	}
}

// NewDissem builds the fabric, configures the groups, warms every
// L-FIB, and runs distribution rounds until the G-FIBs are fully
// populated, then zeroes the wire counters: what the caller measures
// from here on is pure churn cost.
func NewDissem(cfg DissemConfig) (*Dissem, error) {
	c := cfg.withDefaults()
	if c.Switches < 2 || c.GroupSize < 2 {
		return nil, fmt.Errorf("eval: dissem needs ≥2 switches in ≥1 group of ≥2")
	}
	d := &Dissem{
		cfg:      c,
		net:      newDissemNet(c.Seed),
		Switches: make(map[model.SwitchID]*edge.Switch, c.Switches),
		hosts:    make(map[model.SwitchID][]model.HostID),
	}
	for i := 1; i <= c.Switches; i++ {
		id := model.SwitchID(i)
		sw := edge.New(edge.Config{
			ID:           id,
			GFIBFullPush: c.FullPush,
		}, &dissemEnv{net: d.net, id: id})
		d.net.attach(sw)
		d.Switches[id] = sw
		d.ids = append(d.ids, id)
	}
	// Warm hosts before group configuration so the first dissemination
	// rounds carry the steady-state filters.
	for _, id := range d.ids {
		for j := 0; j < c.HostsPerSwitch; j++ {
			d.Arrive(id)
		}
	}
	// Partition into contiguous groups; the first member is designated.
	for start := 0; start < len(d.ids); start += c.GroupSize {
		end := start + c.GroupSize
		if end > len(d.ids) {
			end = len(d.ids)
		}
		members := append([]model.SwitchID(nil), d.ids[start:end]...)
		gid := model.GroupID(start/c.GroupSize + 1)
		for i, m := range members {
			prev := members[(i-1+len(members))%len(members)]
			next := members[(i+1)%len(members)]
			d.Switches[m].HandleMessage(model.ControllerNode, &openflow.GroupConfig{
				Group:      gid,
				Members:    members,
				Designated: members[0],
				RingPrev:   prev,
				RingNext:   next,
				// KeepAliveInterval 0: the harness drives only the
				// advertisement/dissemination/report timers.
				SyncInterval: 10 * time.Second,
				Version:      1,
			})
		}
	}
	d.net.drainDeferred()
	// Two rounds populate every G-FIB (advertise, then disseminate).
	d.Round()
	d.Round()
	d.ResetCounters()
	return d, nil
}

// Arrive attaches a fresh host to the given switch — the single-host-
// arrival churn event of the benchmark — and returns its ID.
func (d *Dissem) Arrive(sw model.SwitchID) model.HostID {
	d.nextHost++
	d.Switches[sw].AttachHost(model.HostMAC(d.nextHost), model.HostIP(d.nextHost), 1)
	d.hosts[sw] = append(d.hosts[sw], d.nextHost)
	return d.nextHost
}

// Depart detaches the most recently attached host of a switch (no-op
// when none remain), exercising deltas that clear bits.
func (d *Dissem) Depart(sw model.SwitchID) {
	hs := d.hosts[sw]
	if len(hs) == 0 {
		return
	}
	h := hs[len(hs)-1]
	d.hosts[sw] = hs[:len(hs)-1]
	d.Switches[sw].DetachHost(model.HostMAC(h))
}

// Round fires one full periodic cycle: pass 0 is every switch's
// advertisement; later passes are the designated switches'
// dissemination and controller reporting. Timer callbacks scheduled
// during the round run before it returns.
func (d *Dissem) Round() {
	d.net.now += 30 * time.Second
	for pass := 0; pass < d.net.maxPasses; pass++ {
		for _, id := range d.ids {
			slots := d.net.periodic[id]
			if pass < len(slots) && slots[pass] != nil {
				slots[pass]()
			}
		}
		d.net.drainDeferred()
	}
}

// WireBytes returns the encoded control-channel bytes since the last
// reset; Messages the message count; CodecErrors must stay zero.
func (d *Dissem) WireBytes() uint64   { return d.net.wireBytes }
func (d *Dissem) Messages() uint64    { return d.net.messages }
func (d *Dissem) CodecErrors() uint64 { return d.net.codecErrs }

// ResetCounters zeroes the wire meters.
func (d *Dissem) ResetCounters() {
	d.net.wireBytes, d.net.messages = 0, 0
}

// SetDrop installs a message-drop hook (nil removes it).
func (d *Dissem) SetDrop(fn func(from, to model.SwitchID, msg netsim.Message) bool) {
	d.net.Drop = fn
}

// GroupOf returns the sorted member list of the group containing sw
// (contiguous partitioning makes this arithmetic).
func (d *Dissem) GroupOf(sw model.SwitchID) []model.SwitchID {
	start := (int(sw) - 1) / d.cfg.GroupSize * d.cfg.GroupSize
	end := start + d.cfg.GroupSize
	if end > len(d.ids) {
		end = len(d.ids)
	}
	members := append([]model.SwitchID(nil), d.ids[start:end]...)
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	return members
}
