package eval

import (
	"fmt"
	"time"

	"lazyctrl/internal/controller"
	"lazyctrl/internal/edge"
	"lazyctrl/internal/grouping"
	"lazyctrl/internal/metrics"
	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/sim"
)

// ColdCacheConfig drives the §V-E cold-cache experiment: fresh flows
// among newly deployed hosts, so no flow rule, C-LIB entry, or learned
// location exists yet.
type ColdCacheConfig struct {
	// Switches is the edge-switch count (paper testbed: 272). Zero
	// selects 272.
	Switches int
	// GroupSizeLimit for the lazy grouping. Zero selects 46.
	GroupSizeLimit int
	// FreshHosts is the number of newly deployed hosts (paper: 5). Zero
	// selects 5.
	FreshHosts int
	// Seed drives the simulator.
	Seed uint64
	// BackgroundRPS is the unscaled controller load during the probe
	// (the production controller is busy with the rest of the data
	// center). Zero selects 7000 — near the paper's observed peak.
	BackgroundRPS float64
}

func (c ColdCacheConfig) withDefaults() ColdCacheConfig {
	if c.Switches == 0 {
		c.Switches = 272
	}
	if c.GroupSizeLimit == 0 {
		c.GroupSizeLimit = 46
	}
	if c.FreshHosts == 0 {
		c.FreshHosts = 5
	}
	if c.BackgroundRPS == 0 {
		c.BackgroundRPS = 7000
	}
	return c
}

// runColdCase measures the mean first-packet latency of fresh flows
// among newly deployed hosts. For intra-group placement all hosts land
// inside one LCG; otherwise they spread across groups.
func runColdCase(mode controller.Mode, intraGroup bool, cfg ColdCacheConfig) (time.Duration, error) {
	c := cfg.withDefaults()
	s := sim.New(c.Seed)
	net := netsim.New(s, netsim.DefaultLatencies())
	rec := metrics.NewRecorder(time.Hour, time.Hour)

	switchIDs := make([]model.SwitchID, c.Switches)
	for i := range switchIDs {
		switchIDs[i] = model.SwitchID(i + 1)
	}
	ctrl, err := controller.New(controller.Config{
		Mode:              mode,
		Switches:          switchIDs,
		GroupSizeLimit:    c.GroupSizeLimit,
		Seed:              c.Seed,
		LoadScale:         1,
		Recorder:          rec,
		KeepAliveInterval: time.Minute,
	}, net.Env(model.ControllerNode))
	if err != nil {
		return 0, err
	}
	net.Attach(ctrl)
	net.SetSameGroup(ctrl.SameGroup)
	ctrl.Start()

	var latencies []time.Duration
	switches := make(map[model.SwitchID]*edge.Switch, len(switchIDs))
	for _, id := range switchIDs {
		sw := edge.New(edge.Config{
			ID:                id,
			AdvertiseInterval: 500 * time.Millisecond,
			GFIBInterval:      time.Second,
			// State reports reach the controller on a production cadence
			// (minutes): freshly deployed hosts are not yet in the C-LIB
			// when the probe flows launch, exactly the paper's scenario.
			ReportInterval: 10 * time.Minute,
			OnDeliver: func(p *model.Packet, at time.Duration) {
				if p.FlowSeq == 0 && p.Injected > 0 {
					latencies = append(latencies, at-p.Injected)
				}
			},
		}, net.Env(id))
		net.Attach(sw)
		sw.Start()
		switches[id] = sw
	}
	ctrl.RegisterTenant(1, 1)

	if mode == controller.ModeLazy {
		// Block affinity: consecutive switches form natural groups.
		m := grouping.NewIntensity()
		limit := c.GroupSizeLimit
		for i := 0; i < len(switchIDs); i++ {
			m.AddSwitch(switchIDs[i])
			if (i+1)%limit != 0 && i+1 < len(switchIDs) {
				m.Add(switchIDs[i], switchIDs[i+1], 100)
			}
		}
		if err := ctrl.InitialGrouping(m); err != nil {
			return 0, err
		}
	}

	// Background load on the controller's queueing model.
	ctrl.SetBackgroundLoad(c.BackgroundRPS)

	// Let the setup-phase state reports drain BEFORE the fresh hosts
	// appear: the C-LIB then genuinely does not know them, as in the
	// paper's newly-deployed-host scenario.
	s.RunFor(2 * time.Second)

	// Deploy fresh hosts: intra-group on the first few switches of
	// group 1; inter-group spread one per group.
	type fresh struct {
		id model.HostID
		sw model.SwitchID
	}
	hosts := make([]fresh, c.FreshHosts)
	for i := range hosts {
		var swid model.SwitchID
		if intraGroup {
			swid = switchIDs[i%c.GroupSizeLimit]
		} else {
			swid = switchIDs[(i*c.GroupSizeLimit+i)%len(switchIDs)]
		}
		h := model.HostID(100000 + i)
		switches[swid].AttachHost(model.HostMAC(h), model.HostIP(h), 1)
		hosts[i] = fresh{id: h, sw: swid}
	}

	// Let intra-group dissemination complete (G-FIBs know the fresh
	// hosts; the controller's C-LIB does not).
	s.RunFor(5 * time.Second)

	// Launch fresh flows between all distinct-switch pairs (the paper's
	// 45 flows among 5 hosts).
	injected := 0
	for i, src := range hosts {
		for j, dst := range hosts {
			if i == j || src.sw == dst.sw {
				continue
			}
			if mode == controller.ModeLazy && intraGroup != ctrl.SameGroup(src.sw, dst.sw) {
				continue
			}
			p := &model.Packet{
				SrcMAC:   model.HostMAC(src.id),
				DstMAC:   model.HostMAC(dst.id),
				SrcIP:    model.HostIP(src.id),
				DstIP:    model.HostIP(dst.id),
				VLAN:     1,
				Ether:    model.EtherTypeIPv4,
				Bytes:    1400,
				Injected: time.Duration(s.Now()),
			}
			switches[src.sw].InjectLocal(p)
			injected++
			s.RunFor(100 * time.Millisecond)
		}
	}
	s.RunFor(2 * time.Second)

	if len(latencies) == 0 {
		return 0, fmt.Errorf("eval: cold-cache %v intra=%v: no deliveries (%d injected)", mode, intraGroup, injected)
	}
	var sum time.Duration
	for _, l := range latencies {
		sum += l
	}
	return sum / time.Duration(len(latencies)), nil
}

// ColdCache runs the three §V-E cases.
func ColdCache(cfg ColdCacheConfig) (*ColdCacheResult, error) {
	intra, err := runColdCase(controller.ModeLazy, true, cfg)
	if err != nil {
		return nil, fmt.Errorf("eval: intra: %w", err)
	}
	inter, err := runColdCase(controller.ModeLazy, false, cfg)
	if err != nil {
		return nil, fmt.Errorf("eval: inter: %w", err)
	}
	of, err := runColdCase(controller.ModeLearning, false, cfg)
	if err != nil {
		return nil, fmt.Errorf("eval: openflow: %w", err)
	}
	return &ColdCacheResult{LazyIntra: intra, LazyInter: inter, OpenFlow: of}, nil
}
