package replay

import (
	"math"
	"sort"
)

// Estimator carries the Horvitz–Thompson accounting of a sampled
// replay: per time bucket, how many flows each sampled pair
// contributed. Pairs are the sampling unit (inclusion probability p
// each, independent across pairs by hash), so the per-bucket flow
// total T̂ = Σ nᵢ/p is unbiased and its variance estimate is the
// standard HT form Var̂(T̂) = (1−p)/p² · Σ nᵢ² over the sampled pairs.
//
// The error model inherits pair sampling's weakness on heavy-tailed
// pair masses: when a dominant pair is excluded, both the estimate and
// the variance estimate miss its mass, so bands are trustworthy only
// when p·(#pairs) is large enough that the top pairs are represented
// in expectation — see docs/emulation.md for the guidance the
// differential tests pin.
type Estimator struct {
	p       float64
	buckets []map[uint64]uint64 // per bucket: pair key → sampled flows
	total   uint64
}

// NewEstimator builds an estimator over the given bucket count for
// sampling probability p.
func NewEstimator(p float64, buckets int) *Estimator {
	if buckets < 1 {
		buckets = 1
	}
	return &Estimator{p: p, buckets: make([]map[uint64]uint64, buckets)}
}

// Observe records one sampled flow on pair key in the given bucket.
func (e *Estimator) Observe(bucket int, key uint64) {
	if bucket < 0 {
		bucket = 0
	}
	if bucket >= len(e.buckets) {
		bucket = len(e.buckets) - 1
	}
	m := e.buckets[bucket]
	if m == nil {
		m = make(map[uint64]uint64)
		e.buckets[bucket] = m
	}
	m[key]++
	e.total++
}

// SampledFlows returns the number of flows observed (the DES
// population of the sampled run).
func (e *Estimator) SampledFlows() int { return int(e.total) }

// RelStdErr returns the per-bucket relative standard error of the HT
// flow-total estimate: σ̂(T̂)/T̂, or 0 for empty buckets. Traffic-driven
// workload classes scale with the flow total, so the same relative
// error applies to their reweighted estimates.
func (e *Estimator) RelStdErr() []float64 {
	out := make([]float64, len(e.buckets))
	if e.p <= 0 || e.p >= 1 {
		return out // exhaustive (or empty) sample: no sampling error
	}
	for i, m := range e.buckets {
		// Sum in sorted key order: float addition is not associative,
		// so map-iteration order would perturb the error estimate's low
		// bits between runs.
		keys := make([]uint64, 0, len(m))
		for key := range m {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		var n, sq float64
		for _, key := range keys {
			c := m[key]
			n += float64(c)
			sq += float64(c) * float64(c)
		}
		if n == 0 {
			continue
		}
		// Var̂(T̂) = (1−p)/p²·Σnᵢ²; T̂ = n/p ⇒ rel = √((1−p)·Σnᵢ²)/n.
		out[i] = math.Sqrt((1-e.p)*sq) / n
	}
	return out
}
