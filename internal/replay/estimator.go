package replay

import (
	"math"
	"sort"
)

// Estimator carries the Horvitz–Thompson accounting of a sampled
// replay: per time bucket, how many flows each sampled pair
// contributed. Pairs are the sampling unit (inclusion probability p
// each, independent across pairs by hash), so the per-bucket flow
// total T̂ = Σ nᵢ/p is unbiased and its variance estimate is the
// standard HT form Var̂(T̂) = (1−p)/p² · Σ nᵢ² over the sampled pairs.
//
// The error model inherits pair sampling's weakness on heavy-tailed
// pair masses: when a dominant pair is excluded, both the estimate and
// the variance estimate miss its mass. The take-all stratum
// (SetTakeAll) removes exactly that failure mode: the top-K pairs of
// the trace profile are always sampled and counted at weight 1, so
// only the light tail carries sampling error — the standard
// certainty-stratum split of stratified HT estimation. See
// docs/emulation.md for the guidance the differential tests pin.
type Estimator struct {
	p       float64
	buckets []map[uint64]uint64 // per bucket: pair key → sampled flows
	cert    []uint64            // per bucket: take-all (certainty) flows
	takeAll map[uint64]bool
	total   uint64

	// hostQ, when non-zero, marks host-level sampling (NewHostSampler):
	// hosts were kept independently with probability q and a pair is in
	// the sample iff both endpoints are, so p = q² but inclusions of
	// pairs sharing a host are positively correlated (joint probability
	// q³). EstimatedTotal is unchanged — HT unbiasedness needs only the
	// first-order π = q² — but the variance picks up a cross term, which
	// RelStdErr accounts for.
	hostQ float64
}

// NewEstimator builds an estimator over the given bucket count for
// sampling probability p.
func NewEstimator(p float64, buckets int) *Estimator {
	if buckets < 1 {
		buckets = 1
	}
	return &Estimator{
		p:       p,
		buckets: make([]map[uint64]uint64, buckets),
		cert:    make([]uint64, buckets),
	}
}

// NewHostEstimator builds the estimator paired with NewHostSampler(q,
// seed): pair inclusion probability q², host-correlation-aware
// variance. Estimates reweight by 1/q² exactly as the pair-level form
// does by 1/p.
func NewHostEstimator(q float64, buckets int) *Estimator {
	e := NewEstimator(q*q, buckets)
	e.hostQ = q
	return e
}

// SetTakeAll declares the certainty stratum: pair keys that the
// sampler keeps with probability 1 (PairSampler.SetTakeAll must get
// the same set). Their flows count exactly — no 1/p reweighting and no
// variance contribution. Call before the first Observe.
func (e *Estimator) SetTakeAll(keys map[uint64]bool) { e.takeAll = keys }

// Observe records one sampled flow on pair key in the given bucket.
func (e *Estimator) Observe(bucket int, key uint64) {
	if bucket < 0 {
		bucket = 0
	}
	if bucket >= len(e.buckets) {
		bucket = len(e.buckets) - 1
	}
	e.total++
	if e.takeAll[key] {
		e.cert[bucket]++
		return
	}
	m := e.buckets[bucket]
	if m == nil {
		m = make(map[uint64]uint64)
		e.buckets[bucket] = m
	}
	m[key]++
}

// SampledFlows returns the number of flows observed (the DES
// population of the sampled run), certainty stratum included.
func (e *Estimator) SampledFlows() int { return int(e.total) }

// EstimatedTotal returns the stratified HT estimate of the full flow
// population: certainty-stratum flows count exactly, sampled flows
// scale by 1/p.
func (e *Estimator) EstimatedTotal() float64 {
	var cert, sampled uint64
	for i, m := range e.buckets {
		cert += e.cert[i]
		for _, c := range m {
			sampled += c
		}
	}
	out := float64(cert)
	if e.p > 0 {
		out += float64(sampled) / e.p
	}
	return out
}

// RelStdErr returns the per-bucket relative standard error of the HT
// flow-total estimate: σ̂(T̂)/T̂, or 0 for empty buckets. Traffic-driven
// workload classes scale with the flow total, so the same relative
// error applies to their reweighted estimates.
func (e *Estimator) RelStdErr() []float64 {
	out := make([]float64, len(e.buckets))
	if e.p <= 0 || e.p >= 1 {
		return out // exhaustive (or empty) sample: no sampling error
	}
	for i, m := range e.buckets {
		// Sum in sorted key order: float addition is not associative,
		// so map-iteration order would perturb the error estimate's low
		// bits between runs.
		keys := make([]uint64, 0, len(m))
		for key := range m {
			keys = append(keys, key)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		var n, sq float64
		for _, key := range keys {
			c := m[key]
			n += float64(c)
			sq += float64(c) * float64(c)
		}
		nc := float64(e.cert[i])
		if n == 0 {
			continue // empty, or certainty-only: no sampling error
		}
		if e.hostQ > 0 {
			out[i] = math.Sqrt(e.hostVariance(keys, m, sq)) / (nc + n/e.p)
			continue
		}
		// Var̂(T̂) = (1−p)/p²·Σnᵢ² over the sampled stratum only;
		// T̂ = N_cert + n/p ⇒ rel = √((1−p)·Σnᵢ²)/(p·N_cert + n).
		out[i] = math.Sqrt((1-e.p)*sq) / (e.p*nc + n)
	}
	return out
}

// hostVariance evaluates the Horvitz–Thompson variance estimator for
// host-level sampling over one bucket's sampled pairs. With hosts kept
// independently at probability q, a pair's inclusion probability is
// π = q² and the joint probability for two distinct pairs is q³ when
// they share a host, q⁴ when disjoint. Plugging those into the HT
// variance estimator, the disjoint cross terms vanish and
//
//	Var̂(T̂) = (1−q²)/q⁴ · Σᵢ nᵢ² + (1−q)/q⁴ · Σ_h (S_h² − Q_h)
//
// where S_h (Q_h) is the sum of nᵢ (nᵢ²) over sampled pairs incident
// to host h — the second term is exactly Σ over ordered pair-pairs
// sharing a host of nᵢ·nⱼ, the positive correlation pair-level
// sampling does not have. keys must be sorted (float determinism) and
// sq must already hold Σ nᵢ².
func (e *Estimator) hostVariance(keys []uint64, m map[uint64]uint64, sq float64) float64 {
	hostN := make(map[uint64]float64, 2*len(keys))
	hostSq := make(map[uint64]float64, 2*len(keys))
	for _, key := range keys {
		c := float64(m[key])
		a, b := key>>32, key&0xffffffff
		hostN[a] += c
		hostSq[a] += c * c
		if b != a {
			hostN[b] += c
			hostSq[b] += c * c
		}
	}
	hosts := make([]uint64, 0, len(hostN))
	for h := range hostN {
		hosts = append(hosts, h)
	}
	sort.Slice(hosts, func(a, b int) bool { return hosts[a] < hosts[b] })
	var cross float64
	for _, h := range hosts {
		cross += hostN[h]*hostN[h] - hostSq[h]
	}
	q := e.hostQ
	q4 := q * q * q * q
	return (1-q*q)/q4*sq + (1-q)/q4*cross
}
