package replay

import (
	"math"
	"testing"
	"time"

	"lazyctrl/internal/model"
)

// TestPairSamplerDeterministicFraction pins the sampler's two load-
// bearing properties: membership is a pure function of (seed, pair) —
// identical across sampler instances and call order — and the kept
// fraction concentrates around p over many pairs.
func TestPairSamplerDeterministicFraction(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.5} {
		a := NewPairSampler(p, 42)
		b := NewPairSampler(p, 42)
		kept := 0
		const pairs = 200_000
		for i := 0; i < pairs; i++ {
			x := model.HostID(i + 1)
			y := model.HostID(i + 7 + (i % 13))
			if a.Keep(x, y) != b.Keep(x, y) {
				t.Fatalf("p=%v: samplers disagree on (%v,%v)", p, x, y)
			}
			if a.Keep(x, y) != a.Keep(y, x) {
				t.Fatalf("p=%v: direction changed membership of (%v,%v)", p, x, y)
			}
			if a.Keep(x, y) {
				kept++
			}
		}
		got := float64(kept) / pairs
		// 5σ binomial band.
		band := 5 * math.Sqrt(p*(1-p)/pairs)
		if math.Abs(got-p) > band {
			t.Errorf("p=%v: kept fraction %v outside ±%v", p, got, band)
		}
	}
	if s := NewPairSampler(1, 9); !s.Keep(1, 2) {
		t.Error("p=1 must keep everything")
	}
	if s := NewPairSampler(0, 9); s.Keep(1, 2) {
		t.Error("p=0 must keep nothing")
	}
}

// TestPairSamplerSeedsDiffer guards against a degenerate salt: two
// seeds must select visibly different samples.
func TestPairSamplerSeedsDiffer(t *testing.T) {
	a, b := NewPairSampler(0.2, 1), NewPairSampler(0.2, 2)
	differ := 0
	for i := 0; i < 10_000; i++ {
		if a.Keep(model.HostID(i+1), model.HostID(i+500)) != b.Keep(model.HostID(i+1), model.HostID(i+500)) {
			differ++
		}
	}
	if differ == 0 {
		t.Error("seeds 1 and 2 selected identical samples")
	}
}

// TestHostSamplerClosure pins the host-mode contract: membership is
// decided per host, a pair is kept iff both endpoints are, so the kept
// pairs are exactly all pairs of the sampled hosts — and P() reports
// the pair inclusion probability q².
func TestHostSamplerClosure(t *testing.T) {
	const q = 0.3
	s := NewHostSampler(q, 7)
	s2 := NewHostSampler(q, 7)
	if got := s.P(); math.Abs(got-q*q) > 1e-12 {
		t.Fatalf("P() = %v, want q² = %v", got, q*q)
	}
	const hosts = 5000
	kept := make(map[model.HostID]bool)
	for h := model.HostID(1); h <= hosts; h++ {
		if s.keepHost(h) {
			kept[h] = true
		}
	}
	frac := float64(len(kept)) / hosts
	if band := 5 * math.Sqrt(q*(1-q)/hosts); math.Abs(frac-q) > band {
		t.Errorf("kept host fraction %v outside %v±%v", frac, q, band)
	}
	for a := model.HostID(1); a <= 200; a++ {
		for b := a + 1; b <= 200; b++ {
			want := kept[a] && kept[b]
			if got := s.Keep(a, b); got != want {
				t.Fatalf("Keep(%v,%v) = %v, want %v (host membership: %v,%v)",
					a, b, got, want, kept[a], kept[b])
			}
			if s.Keep(b, a) != want || s2.Keep(a, b) != want {
				t.Fatalf("host sampling not deterministic/symmetric on (%v,%v)", a, b)
			}
		}
	}
	if s := NewHostSampler(1, 9); !s.Keep(1, 2) {
		t.Error("q=1 must keep everything")
	}
	if s := NewHostSampler(0, 9); s.Keep(1, 2) {
		t.Error("q=0 must keep nothing")
	}
}

// estimatorTrial runs one seeded sampling draw over a synthetic pair
// population and reports the stratified HT estimate and its 3σ
// half-width. takeAll (may be nil) is the certainty stratum, applied
// to sampler and estimator alike.
func estimatorTrial(weights []uint64, p float64, seed uint64, takeAll map[uint64]bool) (est, half float64) {
	s := NewPairSampler(p, seed)
	s.SetTakeAll(takeAll)
	e := NewEstimator(p, 1)
	e.SetTakeAll(takeAll)
	for i, w := range weights {
		a, b := model.HostID(2*i+1), model.HostID(2*i+2)
		if !s.Keep(a, b) {
			continue
		}
		for k := uint64(0); k < w; k++ {
			e.Observe(0, PairKey(a, b))
		}
	}
	est = e.EstimatedTotal()
	return est, 3 * e.RelStdErr()[0] * est
}

// hostPairList enumerates all unordered pairs over a 64-host
// population — the shared-endpoint topology host-level sampling
// exists for (every host appears in 63 pairs).
func hostPairList() []model.FlowKey {
	const universe = 64
	var out []model.FlowKey
	for a := 1; a <= universe; a++ {
		for b := a + 1; b <= universe; b++ {
			out = append(out, model.FlowKey{Src: model.HostID(a), Dst: model.HostID(b)})
		}
	}
	return out
}

// estimatorTrialHost is estimatorTrial for the host-level design:
// hosts sampled at q, pairs kept iff both endpoints are, estimates
// reweighted by 1/q² with the correlation-aware variance.
func estimatorTrialHost(weights []uint64, q float64, seed uint64) (est, half float64) {
	pairs := hostPairList()
	s := NewHostSampler(q, seed)
	e := NewHostEstimator(q, 1)
	for i, w := range weights {
		a, b := pairs[i].Src, pairs[i].Dst
		if !s.Keep(a, b) {
			continue
		}
		for k := uint64(0); k < w; k++ {
			e.Observe(0, PairKey(a, b))
		}
	}
	est = e.EstimatedTotal()
	return est, 3 * e.RelStdErr()[0] * est
}

// TestRelStdErrStable pins the determinism fix lazyvet's maporder
// analyzer forced: the error estimate sums floats in sorted key order
// (per pair, and per host in host mode), so repeated evaluations over
// the same buckets are bit-identical.
func TestRelStdErrStable(t *testing.T) {
	for name, e := range map[string]*Estimator{
		"pair": NewEstimator(0.1, 1),
		// Key i decomposes as hosts (0, i): one hub host shared by every
		// sampled pair, the worst case for the cross-term summation.
		"host": NewHostEstimator(0.3, 1),
	} {
		for i := uint64(0); i < 500; i++ {
			for k := uint64(0); k <= i%7; k++ {
				e.Observe(0, i)
			}
		}
		first := e.RelStdErr()[0]
		for i := 0; i < 5; i++ {
			if got := e.RelStdErr()[0]; got != first {
				t.Fatalf("%s run %d: RelStdErr = %v, want bit-identical %v", name, i, got, first)
			}
		}
	}
}

// TestEstimatorUnbiasedAndCovered simulates the estimator's own
// contract directly over synthetic pair populations: the HT estimate
// must be unbiased across seeds, 3σ bands on a moderately skewed
// population must cover the truth in ≳90% of draws, and on a
// population whose top pair alone carries ~12% of the mass — the
// documented worst case for pair-level HT — plain sampling degrades to
// the ≥75% level while the take-all stratum over the top-K pairs
// (trace.Profile.TopPairs in production) restores ≳95% coverage.
//
// The host-mode cases run the same contract for host-level sampling
// (NewHostSampler/NewHostEstimator, π = q²) over an all-pairs 64-host
// population, where pairs share endpoints and inclusions are
// correlated: the estimate must stay unbiased and the
// correlation-aware variance must keep 3σ coverage — a pair-level
// variance formula applied to host sampling underestimates the error
// exactly because of the shared-host cross terms.
func TestEstimatorUnbiasedAndCovered(t *testing.T) {
	const pairs = 2000
	const p = 0.1
	const trials = 200
	const topK = 16
	// The certainty stratum the profile would surface: the synthetic
	// weights are strictly decreasing in i, so the top-K pairs are
	// exactly indices 0..topK-1.
	takeAll := make(map[uint64]bool, topK)
	for i := 0; i < topK; i++ {
		takeAll[PairKey(model.HostID(2*i+1), model.HostID(2*i+2))] = true
	}
	cases := []struct {
		name        string
		weight      func(i int) uint64
		takeAll     map[uint64]bool
		hostQ       float64 // 0 = pair-level sampling
		minCoverage int
	}{
		{"moderate-skew", func(i int) uint64 { return uint64(1 + 200/(i+5)) }, nil, 0, trials * 88 / 100},
		{"heavy-tail", func(i int) uint64 { return uint64(1 + 5000/(i+1)) }, nil, 0, trials * 75 / 100},
		{"heavy-tail-take-all", func(i int) uint64 { return uint64(1 + 5000/(i+1)) }, takeAll, 0, trials * 95 / 100},
		// Host mode at q≈√p keeps a comparable pair fraction. The index
		// ordering of hostPairList makes host 1 the hub of the heaviest
		// 63 pairs, so the correlated-inclusion cross terms matter.
		{"host-moderate-skew", func(i int) uint64 { return uint64(1 + 200/(i+5)) }, nil, 0.35, trials * 88 / 100},
		{"host-uniform", func(i int) uint64 { return uint64(3 + i%5) }, nil, 0.35, trials * 90 / 100},
	}
	for _, tc := range cases {
		n := pairs
		if tc.hostQ > 0 {
			n = len(hostPairList())
		}
		weights := make([]uint64, n)
		var truth float64
		for i := range weights {
			weights[i] = tc.weight(i)
			truth += float64(weights[i])
		}
		covered := 0
		var sumEst float64
		for seed := uint64(1); seed <= trials; seed++ {
			var est, half float64
			if tc.hostQ > 0 {
				est, half = estimatorTrialHost(weights, tc.hostQ, seed)
			} else {
				est, half = estimatorTrial(weights, p, seed, tc.takeAll)
			}
			sumEst += est
			if math.Abs(est-truth) <= half {
				covered++
			}
		}
		if mean := sumEst / trials; math.Abs(mean-truth)/truth > 0.10 {
			t.Errorf("%s: estimator biased: mean %v vs truth %v", tc.name, mean, truth)
		}
		t.Logf("%s: 3σ coverage %d/%d", tc.name, covered, trials)
		if covered < tc.minCoverage {
			t.Errorf("%s: 3σ band covered truth in %d/%d trials, want ≥ %d",
				tc.name, covered, trials, tc.minCoverage)
		}
	}
}

// TestExpectedBatchDelayRegimes pins the model's shape: a lone packet
// waits out the deadline, the sparse limit tends to the window, and
// the count-dominated regime shrinks with the arrival rate.
func TestExpectedBatchDelayRegimes(t *testing.T) {
	const w = time.Millisecond
	if got := ExpectedBatchDelay(0, w, 8); got != w {
		t.Errorf("zero rate: %v, want %v", got, w)
	}
	if got := ExpectedBatchDelay(1, w, 8); got < 9*w/10 || got > w {
		t.Errorf("sparse regime: %v, want ≈%v", got, w)
	}
	// 100k pins/s against an 8-packet cap: the window fills in 80 µs;
	// mean position wait is (B−1)/(2λ) = 35 µs.
	if got := ExpectedBatchDelay(100_000, w, 8); got < 30*time.Microsecond || got > 40*time.Microsecond {
		t.Errorf("count regime: %v, want ≈35µs", got)
	}
	if got := ExpectedBatchDelay(1000, w, 1); got != 0 {
		t.Errorf("batching disabled: %v, want 0", got)
	}
	// Monotone: more traffic never increases the expected wait.
	prev := ExpectedBatchDelay(0, w, 8)
	for _, rate := range []float64{10, 100, 1000, 7000, 50_000, 500_000} {
		cur := ExpectedBatchDelay(rate, w, 8)
		if cur > prev {
			t.Errorf("delay grew with rate at λ=%v: %v > %v", rate, cur, prev)
		}
		prev = cur
	}
}
