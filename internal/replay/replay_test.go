package replay

import (
	"math"
	"testing"
	"time"

	"lazyctrl/internal/model"
)

// TestPairSamplerDeterministicFraction pins the sampler's two load-
// bearing properties: membership is a pure function of (seed, pair) —
// identical across sampler instances and call order — and the kept
// fraction concentrates around p over many pairs.
func TestPairSamplerDeterministicFraction(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.5} {
		a := NewPairSampler(p, 42)
		b := NewPairSampler(p, 42)
		kept := 0
		const pairs = 200_000
		for i := 0; i < pairs; i++ {
			x := model.HostID(i + 1)
			y := model.HostID(i + 7 + (i % 13))
			if a.Keep(x, y) != b.Keep(x, y) {
				t.Fatalf("p=%v: samplers disagree on (%v,%v)", p, x, y)
			}
			if a.Keep(x, y) != a.Keep(y, x) {
				t.Fatalf("p=%v: direction changed membership of (%v,%v)", p, x, y)
			}
			if a.Keep(x, y) {
				kept++
			}
		}
		got := float64(kept) / pairs
		// 5σ binomial band.
		band := 5 * math.Sqrt(p*(1-p)/pairs)
		if math.Abs(got-p) > band {
			t.Errorf("p=%v: kept fraction %v outside ±%v", p, got, band)
		}
	}
	if s := NewPairSampler(1, 9); !s.Keep(1, 2) {
		t.Error("p=1 must keep everything")
	}
	if s := NewPairSampler(0, 9); s.Keep(1, 2) {
		t.Error("p=0 must keep nothing")
	}
}

// TestPairSamplerSeedsDiffer guards against a degenerate salt: two
// seeds must select visibly different samples.
func TestPairSamplerSeedsDiffer(t *testing.T) {
	a, b := NewPairSampler(0.2, 1), NewPairSampler(0.2, 2)
	differ := 0
	for i := 0; i < 10_000; i++ {
		if a.Keep(model.HostID(i+1), model.HostID(i+500)) != b.Keep(model.HostID(i+1), model.HostID(i+500)) {
			differ++
		}
	}
	if differ == 0 {
		t.Error("seeds 1 and 2 selected identical samples")
	}
}

// estimatorTrial runs one seeded sampling draw over a synthetic pair
// population and reports the stratified HT estimate and its 3σ
// half-width. takeAll (may be nil) is the certainty stratum, applied
// to sampler and estimator alike.
func estimatorTrial(weights []uint64, p float64, seed uint64, takeAll map[uint64]bool) (est, half float64) {
	s := NewPairSampler(p, seed)
	s.SetTakeAll(takeAll)
	e := NewEstimator(p, 1)
	e.SetTakeAll(takeAll)
	for i, w := range weights {
		a, b := model.HostID(2*i+1), model.HostID(2*i+2)
		if !s.Keep(a, b) {
			continue
		}
		for k := uint64(0); k < w; k++ {
			e.Observe(0, PairKey(a, b))
		}
	}
	est = e.EstimatedTotal()
	return est, 3 * e.RelStdErr()[0] * est
}

// TestRelStdErrStable pins the determinism fix lazyvet's maporder
// analyzer forced: the error estimate sums floats in sorted key order,
// so repeated evaluations over the same buckets are bit-identical.
func TestRelStdErrStable(t *testing.T) {
	e := NewEstimator(0.1, 1)
	for i := uint64(0); i < 500; i++ {
		for k := uint64(0); k <= i%7; k++ {
			e.Observe(0, i)
		}
	}
	first := e.RelStdErr()[0]
	for i := 0; i < 5; i++ {
		if got := e.RelStdErr()[0]; got != first {
			t.Fatalf("run %d: RelStdErr = %v, want bit-identical %v", i, got, first)
		}
	}
}

// TestEstimatorUnbiasedAndCovered simulates the estimator's own
// contract directly over synthetic pair populations: the HT estimate
// must be unbiased across seeds, 3σ bands on a moderately skewed
// population must cover the truth in ≳90% of draws, and on a
// population whose top pair alone carries ~12% of the mass — the
// documented worst case for pair-level HT — plain sampling degrades to
// the ≥75% level while the take-all stratum over the top-K pairs
// (trace.Profile.TopPairs in production) restores ≳95% coverage.
func TestEstimatorUnbiasedAndCovered(t *testing.T) {
	const pairs = 2000
	const p = 0.1
	const trials = 200
	const topK = 16
	// The certainty stratum the profile would surface: the synthetic
	// weights are strictly decreasing in i, so the top-K pairs are
	// exactly indices 0..topK-1.
	takeAll := make(map[uint64]bool, topK)
	for i := 0; i < topK; i++ {
		takeAll[PairKey(model.HostID(2*i+1), model.HostID(2*i+2))] = true
	}
	cases := []struct {
		name        string
		weight      func(i int) uint64
		takeAll     map[uint64]bool
		minCoverage int
	}{
		{"moderate-skew", func(i int) uint64 { return uint64(1 + 200/(i+5)) }, nil, trials * 88 / 100},
		{"heavy-tail", func(i int) uint64 { return uint64(1 + 5000/(i+1)) }, nil, trials * 75 / 100},
		{"heavy-tail-take-all", func(i int) uint64 { return uint64(1 + 5000/(i+1)) }, takeAll, trials * 95 / 100},
	}
	for _, tc := range cases {
		weights := make([]uint64, pairs)
		var truth float64
		for i := range weights {
			weights[i] = tc.weight(i)
			truth += float64(weights[i])
		}
		covered := 0
		var sumEst float64
		for seed := uint64(1); seed <= trials; seed++ {
			est, half := estimatorTrial(weights, p, seed, tc.takeAll)
			sumEst += est
			if math.Abs(est-truth) <= half {
				covered++
			}
		}
		if mean := sumEst / trials; math.Abs(mean-truth)/truth > 0.10 {
			t.Errorf("%s: estimator biased: mean %v vs truth %v", tc.name, mean, truth)
		}
		t.Logf("%s: 3σ coverage %d/%d", tc.name, covered, trials)
		if covered < tc.minCoverage {
			t.Errorf("%s: 3σ band covered truth in %d/%d trials, want ≥ %d",
				tc.name, covered, trials, tc.minCoverage)
		}
	}
}

// TestExpectedBatchDelayRegimes pins the model's shape: a lone packet
// waits out the deadline, the sparse limit tends to the window, and
// the count-dominated regime shrinks with the arrival rate.
func TestExpectedBatchDelayRegimes(t *testing.T) {
	const w = time.Millisecond
	if got := ExpectedBatchDelay(0, w, 8); got != w {
		t.Errorf("zero rate: %v, want %v", got, w)
	}
	if got := ExpectedBatchDelay(1, w, 8); got < 9*w/10 || got > w {
		t.Errorf("sparse regime: %v, want ≈%v", got, w)
	}
	// 100k pins/s against an 8-packet cap: the window fills in 80 µs;
	// mean position wait is (B−1)/(2λ) = 35 µs.
	if got := ExpectedBatchDelay(100_000, w, 8); got < 30*time.Microsecond || got > 40*time.Microsecond {
		t.Errorf("count regime: %v, want ≈35µs", got)
	}
	if got := ExpectedBatchDelay(1000, w, 1); got != 0 {
		t.Errorf("batching disabled: %v, want 0", got)
	}
	// Monotone: more traffic never increases the expected wait.
	prev := ExpectedBatchDelay(0, w, 8)
	for _, rate := range []float64{10, 100, 1000, 7000, 50_000, 500_000} {
		cur := ExpectedBatchDelay(rate, w, 8)
		if cur > prev {
			t.Errorf("delay grew with rate at λ=%v: %v > %v", rate, cur, prev)
		}
		prev = cur
	}
}
