package replay

import (
	"time"

	"lazyctrl/internal/model"
	"lazyctrl/internal/tenant"
	"lazyctrl/internal/trace"
)

// View is the group assignment the fluid fold classifies flows under.
// *grouping.Grouping satisfies it; the eval harness passes the live
// controller's grouping so the classification tracks dynamic regroups
// at window granularity. A nil View means the learning-mode baseline
// (no groups: classification runs on the learned-host model instead).
type View interface {
	GroupOf(s model.SwitchID) model.GroupID
}

// FluidConfig parameterizes the analytic fold. The warm-up and timeout
// constants mirror the DES harness's cadences; the fluid error model
// (docs/emulation.md) is exactly the places this analytic picture
// diverges from the event-level machinery.
type FluidConfig struct {
	// Directory resolves hosts to switches and tenants.
	Directory *tenant.Directory
	// Lazy selects the LazyCtrl control plane; false models the
	// OpenFlow learning baseline.
	Lazy bool
	// Horizon and BucketWidth shape the per-bucket rate segments
	// (matching the emulation recorder's buckets).
	Horizon     time.Duration
	BucketWidth time.Duration
	// RuleIdleTimeout is the installed flow rules' idle timeout: a
	// (ingress switch, destination host) pair with a live rule
	// escalates nothing.
	RuleIdleTimeout time.Duration
	// GFIBWarm is when intra-group destinations become reachable
	// through the disseminated G-FIBs (advertise + dissemination
	// cadence); intra-group flows before it escalate like inter-group
	// ones.
	GFIBWarm time.Duration
	// CLIBWarm is when the controller's C-LIB has absorbed the first
	// state reports; escalations before it pend and fan an ARP relay
	// out to the tenant's designated switches.
	CLIBWarm time.Duration
	// PerFlowBaseline models per-flow (5-tuple) reactive rules: the
	// controller never installs an aggregating (ingress, dst) rule, so
	// every distinct flow's first packet escalates — an exact-match
	// rule installed for one flow cannot absorb a later flow, even on
	// the same host pair. Mirrors controller.Config.PerFlowRules.
	PerFlowBaseline bool
}

// regroupEpoch pins one immutable group assignment to the instant it
// took effect.
type regroupEpoch struct {
	at      time.Duration
	view    View
	version uint64
}

// Fluid folds a trace's full flow population into per-bucket
// controller-load aggregates without discrete events: each flow is one
// O(1) cache-model update, so a billion-flow trace costs seconds, not
// hours. The model reproduces what the DES's per-flow pipeline does to
// the controller:
//
//   - same-switch flows never escalate (L-FIB delivers locally);
//   - a live flow rule on (ingress, dst) absorbs first packets and
//     refreshes its idle timeout;
//   - intra-group flows after G-FIB warm-up ride the slow path,
//     escalating nothing;
//   - everything else is a PacketIn, plus an ARP relay per designated
//     switch of the tenant's groups while the C-LIB is cold (lazy), or
//     a learned-host check deciding install vs. flood (learning);
//   - an escalation installs the rule (resolution treated as
//     instantaneous — the fluid model's main approximation).
type Fluid struct {
	cfg     FluidConfig
	buckets int

	packetIns []float64
	arpRelays []float64

	// cache: (ingress switch, dst host) → last rule touch. Entry
	// presence means a rule was installed; liveness is the idle check.
	cache map[uint64]time.Duration
	// known: hosts the learning controller has learned (appeared as the
	// source of an escalated flow).
	known map[model.HostID]struct{}

	// targets memoizes the ARP fan-out per tenant under one grouping
	// version (distinct groups over the tenant's hosts).
	targets        map[model.TenantID]int
	targetsVersion uint64

	// epochs is the regroup timeline (NoteRegroup); epochCursor
	// amortizes the per-flow lookup since folds arrive time-ordered.
	epochs      []regroupEpoch
	epochCursor int

	population int
	// agg is the aggregate-population fold's state (fluidagg.go), nil
	// until the first FoldAggWindow call; a Fluid consumes either flow
	// windows or aggregate windows, never both.
	agg *aggFold
}

// NewFluid builds the aggregator.
func NewFluid(cfg FluidConfig) *Fluid {
	if cfg.BucketWidth <= 0 {
		cfg.BucketWidth = 2 * time.Hour
	}
	n := int((cfg.Horizon + cfg.BucketWidth - 1) / cfg.BucketWidth)
	if n < 1 {
		n = 1
	}
	return &Fluid{
		cfg:       cfg,
		buckets:   n,
		packetIns: make([]float64, n),
		arpRelays: make([]float64, n),
		cache:     make(map[uint64]time.Duration),
		known:     make(map[model.HostID]struct{}),
		targets:   make(map[model.TenantID]int),
	}
}

func (f *Fluid) bucket(at time.Duration) int {
	i := int(at / f.cfg.BucketWidth)
	if i < 0 {
		i = 0
	}
	if i >= f.buckets {
		i = f.buckets - 1
	}
	return i
}

// arpTargets returns how many designated switches a pend's ARP relay
// fans out to: the distinct groups hosting the tenant.
func (f *Fluid) arpTargets(tid model.TenantID, view View, version uint64) int {
	if view == nil {
		return 0
	}
	if version != f.targetsVersion || f.targets == nil {
		f.targets = make(map[model.TenantID]int, len(f.targets))
		f.targetsVersion = version
	}
	if n, ok := f.targets[tid]; ok {
		return n
	}
	tn := f.cfg.Directory.Tenant(tid)
	seen := make(map[model.GroupID]struct{}, 8)
	if tn != nil {
		for _, h := range tn.Hosts {
			if host := f.cfg.Directory.Host(h); host != nil {
				seen[view.GroupOf(host.Switch)] = struct{}{}
			}
		}
	}
	f.targets[tid] = len(seen)
	return len(seen)
}

// NoteRegroup records that a (re)grouping took effect at time at. The
// fold then classifies each flow under the assignment in force at the
// flow's start, so a mid-window regroup lands on exactly the flows it
// governed instead of smearing across the whole window. Assignments
// must be immutable snapshots (e.g. grouping.Clone) noted in
// nondecreasing time order.
func (f *Fluid) NoteRegroup(at time.Duration, view View, version uint64) {
	f.epochs = append(f.epochs, regroupEpoch{at: at, view: view, version: version})
}

// viewAt resolves the assignment in force at time at: the newest noted
// epoch not after it, else the caller's fold-time fallback (covers
// runs that never note epochs, and flows predating the first note).
func (f *Fluid) viewAt(at time.Duration, view View, version uint64) (View, uint64) {
	i := f.epochCursor
	for i+1 < len(f.epochs) && f.epochs[i+1].at <= at {
		i++
	}
	for i > 0 && f.epochs[i].at > at {
		i--
	}
	f.epochCursor = i
	if len(f.epochs) == 0 || f.epochs[i].at > at {
		return view, version
	}
	return f.epochs[i].view, f.epochs[i].version
}

// FoldWindow folds one time window of flows (sorted by Start) under
// the given group assignment. version stamps the assignment so the
// ARP-target memo invalidates across regroups; when a regroup timeline
// was noted (NoteRegroup) it overrides the passed assignment per flow.
// Flows past the horizon are ignored.
func (f *Fluid) FoldWindow(flows []trace.Flow, view View, version uint64) {
	dir := f.cfg.Directory
	for i := range flows {
		fl := &flows[i]
		if fl.Start >= f.cfg.Horizon {
			break // windows are sorted; the rest is past the horizon
		}
		src := dir.Host(fl.Src)
		dst := dir.Host(fl.Dst)
		if src == nil || dst == nil {
			continue
		}
		f.population++
		if src.Switch == dst.Switch {
			continue // L-FIB delivers locally in both modes
		}
		key := uint64(src.Switch)<<32 | uint64(dst.ID)
		if !f.cfg.PerFlowBaseline {
			if last, ok := f.cache[key]; ok && fl.Start-last <= f.cfg.RuleIdleTimeout {
				f.cache[key] = fl.Start // rule hit refreshes the idle timer
				continue
			}
		}
		if f.cfg.Lazy {
			v, ver := f.viewAt(fl.Start, view, version)
			if v != nil && fl.Start >= f.cfg.GFIBWarm &&
				v.GroupOf(src.Switch) == v.GroupOf(dst.Switch) {
				continue // G-FIB slow path, no controller involved
			}
			b := f.bucket(fl.Start)
			f.packetIns[b]++
			if fl.Start < f.cfg.CLIBWarm {
				f.arpRelays[b] += float64(f.arpTargets(dst.Tenant, v, ver))
			}
			if !f.cfg.PerFlowBaseline {
				f.cache[key] = fl.Start
			}
			continue
		}
		// Learning baseline: every rule miss escalates; the controller
		// learns the source, and installs a rule only when the
		// destination was already learned (else it floods, leaving the
		// next flow on this pair to escalate again).
		f.packetIns[f.bucket(fl.Start)]++
		if _, ok := f.known[dst.ID]; ok && !f.cfg.PerFlowBaseline {
			f.cache[key] = fl.Start
		}
		f.known[src.ID] = struct{}{}
	}
}

// Population returns how many in-horizon flows were folded (per-flow
// plus aggregate-cell counts; horizon-clipped cells contribute their
// in-horizon expectation).
func (f *Fluid) Population() int {
	p := f.population
	if f.agg != nil {
		p += int(f.agg.popF + 0.5)
	}
	return p
}

// TrafficRequests returns the per-bucket traffic-driven controller
// request counts (PacketIns + ARP relays) the aggregated rates imply,
// in sampled-trace units (multiply by the trace scale to undo the
// generator's flow-count divisor, exactly like the DES recorder's
// traffic classes).
func (f *Fluid) TrafficRequests() []float64 {
	out := make([]float64, f.buckets)
	for i := range out {
		out[i] = f.packetIns[i] + f.arpRelays[i]
	}
	return out
}

// PacketIns returns the per-bucket PacketIn counts.
func (f *Fluid) PacketIns() []float64 { return append([]float64(nil), f.packetIns...) }

// ARPRelays returns the per-bucket ARP-relay counts.
func (f *Fluid) ARPRelays() []float64 { return append([]float64(nil), f.arpRelays...) }
