package replay

import (
	"math"
	"slices"
	"time"

	"lazyctrl/internal/model"
	"lazyctrl/internal/tenant"
	"lazyctrl/internal/trace"
)

// This file is the aggregate-population half of the fluid engine:
// FoldAggWindow consumes trace.PairAgg cells — one (pair, flow count)
// per active pair per window — instead of individual flow records, and
// replaces the per-flow cache walk with a closed-form model of the same
// cache. FoldWindow's per-flow semantics are the reference; every
// branch below mirrors one of its branches, in expectation:
//
//   - flows scatter uniformly over the window, so a cell's nd flows on
//     one direction of a pair form (approximately) a Poisson stream of
//     rate λ = nd/span;
//   - the rule cache keyed (ingress switch, dst host) is shared by
//     every cell mapping to the key, so cells are first aggregated per
//     directional key (colocated sources feeding one destination share
//     one rule — the coupling that makes aggregating rules effective);
//   - a rule live at the window's first expected arrival absorbs it;
//     each later arrival misses iff its gap exceeds the idle timeout,
//     P(gap > T) = exp(−λT), so expected misses are
//     (live ? 0 : min(nd,1)) + max(nd−1,0)·exp(−λT);
//   - per-flow-baseline mode has no rule aggregation: every flow of
//     the cell is a miss;
//   - lazy intra-group segments refresh a live rule (or let it die)
//     and never install or escalate, exactly like FoldWindow's
//     ordering (cache hit first, then the G-FIB path);
//   - windows are cut into segments at the warm-up marks, bucket
//     boundaries, and regroup epochs, so every segment has one bucket,
//     one group view, and one warm-up phase.
//
// The learning baseline's known-host set advances at window
// granularity: endpoints of every escalating cell are learned at the
// window's end (per-flow learning converges within the first window at
// any realistic density, so the transient divergence is confined to
// window 0).

// rotAggCache bounds the fold's rule-cache memory over unbounded key
// churn (the expanded traces' extras realize hundreds of millions of
// one-off keys at full scale). Entries older than two rotation widths
// are dropped wholesale; with width ≥ the idle timeout a dropped entry
// could never satisfy a liveness check anyway, so eviction is
// semantically invisible.
type rotAggCache struct {
	cur, prev map[uint64]time.Duration
	epoch     time.Duration
	width     time.Duration
}

func newRotAggCache(width time.Duration) *rotAggCache {
	if width < time.Second {
		width = time.Second
	}
	return &rotAggCache{
		cur:   make(map[uint64]time.Duration),
		prev:  make(map[uint64]time.Duration),
		width: width,
	}
}

func (c *rotAggCache) get(k uint64) (time.Duration, bool) {
	if t, ok := c.cur[k]; ok {
		return t, true
	}
	t, ok := c.prev[k]
	return t, ok
}

func (c *rotAggCache) set(k uint64, at time.Duration) {
	switch {
	case at >= c.epoch+2*c.width:
		// Both generations are entirely older than the retention floor.
		clear(c.cur)
		clear(c.prev)
		c.epoch = at - at%c.width
	case at >= c.epoch+c.width:
		c.prev, c.cur = c.cur, c.prev
		clear(c.cur)
		c.epoch += c.width
	}
	c.cur[k] = at
}

// aggEntry is one directional rule key's per-window accumulation.
type aggEntry struct {
	key    uint64
	srcSw  model.SwitchID
	dstSw  model.SwitchID
	dstID  model.HostID
	tenant model.TenantID
	flows  float64
}

// aggSeg is one constant-context slice of a window.
type aggSeg struct {
	a, b     time.Duration
	frac     float64
	bucket   int
	view     View
	version  uint64
	preCLIB  bool
	postGFIB bool
}

// aggFold is the aggregate fold's reusable state, attached to a Fluid
// on first FoldAggWindow call.
type aggFold struct {
	idx     map[uint64]int32
	entries []aggEntry
	cache   *rotAggCache
	segs    []aggSeg
	cutBuf  []time.Duration
	popF    float64
	// bgMemo caches the background classification per grouping version;
	// bgNil is the view-less (learning / pre-note) entry.
	bgMemo map[uint64]bgClass
	bgNil  *bgClass
}

func (f *Fluid) aggState() *aggFold {
	if f.agg == nil {
		f.agg = &aggFold{
			idx:   make(map[uint64]int32),
			cache: newRotAggCache(f.cfg.RuleIdleTimeout),
		}
	}
	return f.agg
}

// aggSegments cuts [from, to) at the warm-up marks, bucket boundaries,
// and regroup epochs, resolving each segment's bucket and group view
// once (shared by every key).
func (f *Fluid) aggSegments(from, to time.Duration, view View, version uint64) []aggSeg {
	a := f.agg
	cuts := a.cutBuf[:0]
	add := func(t time.Duration) {
		if t > from && t < to {
			cuts = append(cuts, t)
		}
	}
	add(f.cfg.GFIBWarm)
	add(f.cfg.CLIBWarm)
	bw := f.cfg.BucketWidth
	for t := (from/bw + 1) * bw; t < to; t += bw {
		add(t)
	}
	for _, e := range f.epochs {
		add(e.at)
	}
	// Insertion sort: the cut list is tiny (usually empty) and nearly
	// sorted already.
	for i := 1; i < len(cuts); i++ {
		for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
			cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
		}
	}
	a.cutBuf = cuts
	span := float64(to - from)
	segs := a.segs[:0]
	prev := from
	emit := func(b time.Duration) {
		if b <= prev {
			return
		}
		mid := prev + (b-prev)/2
		v, ver := f.viewAt(mid, view, version)
		segs = append(segs, aggSeg{
			a: prev, b: b,
			frac:     float64(b-prev) / span,
			bucket:   f.bucket(mid),
			view:     v,
			version:  ver,
			preCLIB:  mid < f.cfg.CLIBWarm,
			postGFIB: mid >= f.cfg.GFIBWarm,
		})
		prev = b
	}
	for _, c := range cuts {
		emit(c)
	}
	emit(to)
	a.segs = segs
	return segs
}

// FoldAggWindow folds one window's aggregate population cells, emitted
// by a trace.AggStream for the [from, to) span, under the given group
// assignment (overridden per segment by the NoteRegroup timeline, like
// FoldWindow). Cells wholly or partly past the horizon are clipped
// proportionally.
func (f *Fluid) FoldAggWindow(aggs []trace.PairAgg, from, to time.Duration, view View, version uint64) {
	if to <= from || from >= f.cfg.Horizon {
		return
	}
	a := f.aggState()
	clipTo := to
	if clipTo > f.cfg.Horizon {
		clipTo = f.cfg.Horizon
	}
	clip := float64(clipTo-from) / float64(to-from)
	segs := f.aggSegments(from, clipTo, view, version)

	// Pass 1: aggregate cells by directional rule key. A cell's count
	// covers both directions; each direction contributes half to its
	// (ingress switch, dst host) key.
	dir := f.cfg.Directory
	clear(a.idx)
	a.entries = a.entries[:0]
	addDir := func(sw model.SwitchID, h *tenant.Host, hSw model.SwitchID, n float64) {
		key := uint64(sw)<<32 | uint64(h.ID)
		if j, ok := a.idx[key]; ok {
			a.entries[j].flows += n
			return
		}
		a.idx[key] = int32(len(a.entries))
		a.entries = append(a.entries, aggEntry{
			key: key, srcSw: sw, dstSw: hSw, dstID: h.ID, tenant: h.Tenant, flows: n,
		})
	}
	for i := range aggs {
		r := &aggs[i]
		src := dir.Host(r.Src)
		dst := dir.Host(r.Dst)
		if src == nil || dst == nil {
			continue
		}
		n := float64(r.Flows) * clip
		a.popF += n
		if src.Switch == dst.Switch {
			continue // L-FIB delivers locally in both modes
		}
		addDir(src.Switch, dst, dst.Switch, n/2)
		addDir(dst.Switch, src, src.Switch, n/2)
	}

	// Pass 2: the closed-form cache model per key per segment.
	T := f.cfg.RuleIdleTimeout
	Tf := float64(T)
	for i := range a.entries {
		e := &a.entries[i]
		for s := range segs {
			seg := &segs[s]
			nSeg := e.flows * seg.frac
			if nSeg <= 0 {
				continue
			}
			segSpan := float64(seg.b - seg.a)
			dt := time.Duration(segSpan / (nSeg + 1))
			first := seg.a + dt
			if f.cfg.Lazy && seg.postGFIB && seg.view != nil &&
				seg.view.GroupOf(e.srcSw) == seg.view.GroupOf(e.dstSw) {
				// Intra-group slow path: a live rule keeps absorbing and
				// refreshing while the gaps stay inside the idle timeout;
				// once it dies nothing reinstalls it (the G-FIB path
				// escalates nothing), matching FoldWindow's hit-then-intra
				// ordering.
				if f.cfg.PerFlowBaseline {
					continue
				}
				if last, ok := a.cache.get(e.key); ok && first-last <= T {
					alive := 1.0
					if nSeg > 1 {
						q := 1 - math.Exp(-Tf*nSeg/segSpan)
						alive = math.Pow(q, nSeg-1)
					}
					if alive >= 0.5 {
						a.cache.set(e.key, seg.b-dt)
					}
				}
				continue
			}
			var miss float64
			if f.cfg.PerFlowBaseline {
				miss = nSeg // exact-match rules: every flow's first packet escalates
			} else {
				last, ok := a.cache.get(e.key)
				live := ok && first-last <= T
				if !live {
					miss = math.Min(nSeg, 1)
				}
				if nSeg > 1 {
					miss += (nSeg - 1) * math.Exp(-Tf*nSeg/segSpan)
				}
				install := f.cfg.Lazy
				if !install {
					_, known := f.known[e.dstID]
					install = known
				}
				if install {
					a.cache.set(e.key, seg.b-dt)
				}
			}
			f.packetIns[seg.bucket] += miss
			if f.cfg.Lazy && seg.preCLIB {
				f.arpRelays[seg.bucket] += miss * float64(f.arpTargets(e.tenant, seg.view, seg.version))
			}
		}
	}
	if !f.cfg.Lazy {
		// Window-granular learning: each directional entry's reverse
		// direction sourced flows from this entry's dst host, so every
		// entry endpoint has escalated (or hit a rule its own earlier
		// escalation installed) by the window's end.
		for i := range a.entries {
			f.known[a.entries[i].dstID] = struct{}{}
		}
	}
}

// bgClass is the background population's classification under one group
// assignment: the probability a background draw's endpoints share a
// switch (local, L-FIB delivery) and a group (local ⊆ group). Both are
// mixtures over the draw law — intraShare of the draws pick a uniform
// tenant then a uniform host pair inside it, the rest a uniform host
// pair — evaluated from the directory's host placement.
type bgClass struct {
	local, group float64
}

// bgClassFor computes (and memoizes per grouping version) the
// background classification under view. A nil view has no groups; its
// entry carries the placement-only local probability.
func (f *Fluid) bgClassFor(view View, version uint64, intraShare float64) bgClass {
	a := f.aggState()
	if view == nil {
		if a.bgNil == nil {
			c := f.bgClassify(nil, intraShare)
			a.bgNil = &c
		}
		return *a.bgNil
	}
	if c, ok := a.bgMemo[version]; ok {
		return c
	}
	if a.bgMemo == nil {
		a.bgMemo = make(map[uint64]bgClass, 8)
	}
	c := f.bgClassify(view, intraShare)
	a.bgMemo[version] = c
	return c
}

func (f *Fluid) bgClassify(view View, intraShare float64) bgClass {
	dir := f.cfg.Directory
	numHosts := dir.NumHosts()
	if numHosts == 0 {
		return bgClass{}
	}
	var keys []uint64
	collision := func(counts map[uint64]int, total int) float64 {
		keys = keys[:0]
		for k := range counts {
			keys = append(keys, k)
		}
		slices.Sort(keys)
		var p float64
		t := float64(total)
		for _, k := range keys {
			q := float64(counts[k]) / t
			p += q * q
		}
		return p
	}
	swOf := make(map[uint64]int, 64)
	grOf := make(map[uint64]int, 16)
	// Uniform part: every host, weighted by placement.
	for id := 1; id <= numHosts; id++ {
		h := dir.Host(model.HostID(id))
		if h == nil {
			continue
		}
		swOf[uint64(h.Switch)]++
		if view != nil {
			grOf[uint64(view.GroupOf(h.Switch))]++
		}
	}
	uni := bgClass{local: collision(swOf, numHosts)}
	uni.group = uni.local
	if view != nil {
		uni.group = collision(grOf, numHosts)
	}
	// Intra-tenant part: a uniform eligible tenant, then uniform hosts
	// inside it.
	var intra bgClass
	eligible := 0
	for _, tid := range dir.TenantIDs() {
		tn := dir.Tenant(tid)
		if tn == nil || len(tn.Hosts) < 2 {
			continue
		}
		clear(swOf)
		clear(grOf)
		for _, hid := range tn.Hosts {
			h := dir.Host(hid)
			if h == nil {
				continue
			}
			swOf[uint64(h.Switch)]++
			if view != nil {
				grOf[uint64(view.GroupOf(h.Switch))]++
			}
		}
		l := collision(swOf, len(tn.Hosts))
		intra.local += l
		if view != nil {
			intra.group += collision(grOf, len(tn.Hosts))
		} else {
			intra.group += l
		}
		eligible++
	}
	if eligible == 0 {
		return uni
	}
	intra.local /= float64(eligible)
	intra.group /= float64(eligible)
	return bgClass{
		local: intraShare*intra.local + (1-intraShare)*uni.local,
		group: intraShare*intra.group + (1-intraShare)*uni.group,
	}
}

// bgARPTargets is the expected ARP fan-out of a background draw's
// destination tenant: uniform-tenant weighting for the intra-tenant
// share, host weighting for the uniform share. Only pre-C-LIB-warm
// segments consult it, and the expansion span starts hours later, so
// this stays off every real run's hot path.
func (f *Fluid) bgARPTargets(view View, version uint64, intraShare float64) float64 {
	dir := f.cfg.Directory
	numHosts := dir.NumHosts()
	if view == nil || numHosts == 0 {
		return 0
	}
	var uniform, intra float64
	eligible := 0
	for _, tid := range dir.TenantIDs() {
		tn := dir.Tenant(tid)
		if tn == nil || len(tn.Hosts) == 0 {
			continue
		}
		t := float64(f.arpTargets(tid, view, version))
		uniform += t * float64(len(tn.Hosts)) / float64(numHosts)
		if len(tn.Hosts) >= 2 {
			intra += t
			eligible++
		}
	}
	if eligible > 0 {
		intra /= float64(eligible)
	}
	return intraShare*intra + (1-intraShare)*uniform
}

// FoldBackgroundWindow folds n background flows — independent draws on
// previously silent pairs, as a trace.BackgroundStream counts them —
// for the [from, to) span. Each draw's pair is (almost surely) fresh,
// so no rule ever absorbs a later flow and no installed rule outlives
// its draw usefully: the fold reduces to counting. In-horizon flows
// classify per segment by the group view in force — local delivery
// (skipped), intra-group slow path after G-FIB warm-up (skipped under
// lazy control), everything else a PacketIn — with probabilities
// computed once per grouping version from the directory. Under the
// learning baseline every non-local background flow escalates (its pair
// has no rule); the known-host marking is skipped, since the endpoints
// are existing hosts the foreground population has long since learned.
// Per-flow-baseline mode needs no branch at all: on one-off pairs the
// exact-match and aggregating rule models count identically.
func (f *Fluid) FoldBackgroundWindow(n int, intraShare float64, from, to time.Duration, view View, version uint64) {
	if n <= 0 || to <= from || from >= f.cfg.Horizon {
		return
	}
	a := f.aggState()
	clipTo := to
	if clipTo > f.cfg.Horizon {
		clipTo = f.cfg.Horizon
	}
	nf := float64(n) * float64(clipTo-from) / float64(to-from)
	a.popF += nf
	for _, seg := range f.aggSegments(from, clipTo, view, version) {
		nSeg := nf * seg.frac
		if nSeg <= 0 {
			continue
		}
		c := f.bgClassFor(seg.view, seg.version, intraShare)
		pass := c.local
		if f.cfg.Lazy && seg.postGFIB && seg.view != nil {
			pass = c.group
		}
		miss := nSeg * (1 - pass)
		f.packetIns[seg.bucket] += miss
		if f.cfg.Lazy && seg.preCLIB {
			f.arpRelays[seg.bucket] += miss * f.bgARPTargets(seg.view, seg.version, intraShare)
		}
	}
}
