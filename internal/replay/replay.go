// Package replay implements the scaled emulation engines behind
// eval.RunEmulation, the machinery that makes the paper's full-scale
// traces (§V-B: 271M–5.1B flows) replayable end to end. The full
// discrete-event replay is exact but compute-bound on billions of
// per-flow events; the two engines here trade per-flow fidelity for
// tractable cost under an explicit, testable error model (see
// docs/emulation.md):
//
//   - Sampled replay (EngineSampled): a deterministic hash-sampled
//     subpopulation of host pairs runs through the unmodified DES, and
//     the traffic-driven estimators are reweighted by 1/p
//     (Horvitz–Thompson over pair strata, with per-bucket confidence
//     bands). Pair-level sampling keeps every flow of a kept pair, so
//     flow-table cache dynamics — the thing that determines the
//     controller's PacketIn rate — are exact within the sample.
//
//   - Fluid model (EngineFluid): every flow of the full population is
//     folded into per-(group-pair, bucket) rate aggregates through an
//     analytic cache/warm-up model, so controller and designated-switch
//     load derive from aggregated rates instead of per-flow events; the
//     per-flow DES runs only a sampled latency-probe population.
//
// The package also owns the explicit micro-batching delay model
// (ExpectedBatchDelay): the expected control-link residence time a
// PacketIn spends in the edge switch's batching window, which the
// latency accounting adds so §V-E cold-cache latencies stay correct
// with micro-batching enabled.
package replay

import (
	"fmt"

	"lazyctrl/internal/trace"
)

// Engine selects how eval.RunEmulation turns trace flows into
// controller load and latency estimates.
type Engine uint8

const (
	// EngineDES is the exact engine: every flow becomes discrete
	// events on the simulated underlay.
	EngineDES Engine = iota
	// EngineSampled replays a hash-sampled pair subpopulation through
	// the DES and reweights workload estimators by 1/p.
	EngineSampled
	// EngineFluid aggregates the full population into rate segments
	// for workload and uses the DES only for a latency-probe sample.
	EngineFluid
)

// String names the engine (CLI form).
func (e Engine) String() string {
	switch e {
	case EngineDES:
		return "des"
	case EngineSampled:
		return "sampled"
	case EngineFluid:
		return "fluid"
	default:
		return fmt.Sprintf("Engine(%d)", uint8(e))
	}
}

// ParseEngine maps a CLI name to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "des", "":
		return EngineDES, nil
	case "sampled":
		return EngineSampled, nil
	case "fluid":
		return EngineFluid, nil
	default:
		return EngineDES, fmt.Errorf("replay: unknown engine %q (want des, sampled, or fluid)", s)
	}
}

// splitmix64 is trace.SplitMix64 — the mixer the trace pipeline seeds
// windows with; here it hashes pair keys so the sampling decision for
// a pair is a pure function of (seed, pair) — stable across windows,
// window order, and engines.
func splitmix64(x uint64) uint64 { return trace.SplitMix64(x) }
