package replay

import (
	"lazyctrl/internal/model"
)

// PairSampler keeps a deterministic p-fraction of host pairs: a pair is
// in the sample iff splitmix64 of its canonical key (salted by the run
// seed) lands below p·2⁶⁴. Membership is decided per pair, not per
// flow — every flow of a kept pair is kept, in both directions — so the
// flow-table and C-LIB cache dynamics that drive the controller's
// PacketIn rate are exact within the sampled subpopulation, and the
// sample is identical no matter how the trace's windows are generated
// or ordered.
type PairSampler struct {
	p         float64
	threshold uint64
	salt      uint64
}

// NewPairSampler builds a sampler keeping pairs with probability p
// (clamped to [0,1]), salted by seed.
func NewPairSampler(p float64, seed uint64) *PairSampler {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	s := &PairSampler{p: p, salt: splitmix64(seed ^ 0x70616972 /* "pair" */)}
	if p >= 1 {
		s.threshold = ^uint64(0)
	} else {
		s.threshold = uint64(p * float64(1<<63) * 2)
	}
	return s
}

// P returns the sampling probability.
func (s *PairSampler) P() float64 { return s.p }

// PairKey folds a host pair into its canonical 64-bit key (direction-
// independent), the unit of sampling and of the estimator's strata.
func PairKey(a, b model.HostID) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// Keep reports whether the pair (a, b) is in the sample.
func (s *PairSampler) Keep(a, b model.HostID) bool {
	if s.threshold == ^uint64(0) {
		return true
	}
	return splitmix64(PairKey(a, b)^s.salt) < s.threshold
}
