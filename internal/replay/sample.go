package replay

import (
	"lazyctrl/internal/model"
)

// PairSampler keeps a deterministic p-fraction of host pairs: a pair is
// in the sample iff splitmix64 of its canonical key (salted by the run
// seed) lands below p·2⁶⁴. Membership is decided per pair, not per
// flow — every flow of a kept pair is kept, in both directions — so the
// flow-table and C-LIB cache dynamics that drive the controller's
// PacketIn rate are exact within the sampled subpopulation, and the
// sample is identical no matter how the trace's windows are generated
// or ordered.
type PairSampler struct {
	p         float64
	threshold uint64
	salt      uint64
	takeAll   map[uint64]bool

	// host switches the sampling unit from pairs to hosts: a pair is
	// kept iff BOTH endpoint hosts are hash-sampled, each with
	// probability q (threshold is then the per-host cut and p = q²).
	host bool
}

// NewPairSampler builds a sampler keeping pairs with probability p
// (clamped to [0,1]), salted by seed.
func NewPairSampler(p float64, seed uint64) *PairSampler {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	s := &PairSampler{p: p, salt: splitmix64(seed ^ 0x70616972 /* "pair" */)}
	if p >= 1 {
		s.threshold = ^uint64(0)
	} else {
		s.threshold = uint64(p * float64(1<<63) * 2)
	}
	return s
}

// NewHostSampler builds a host-level sampler: each host is kept with
// probability q (clamped to [0,1]), salted by seed, and a pair is in
// the sample iff both of its endpoints are kept. All pairs among the
// sampled hosts survive together, so host-local structure — fan-out,
// per-host flow-table pressure, a host's full traffic matrix row — is
// exact within the sample, which pair-level sampling destroys. The
// price is correlated inclusion: a pair's inclusion probability is
// π = q², but two pairs sharing a host are kept or dropped together
// through that host (joint probability q³, not q⁴), so the paired
// estimator must be built with NewHostEstimator, not NewEstimator.
func NewHostSampler(q float64, seed uint64) *PairSampler {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := &PairSampler{p: q * q, host: true, salt: splitmix64(seed ^ 0x686f7374 /* "host" */)}
	if q >= 1 {
		s.threshold = ^uint64(0)
	} else {
		s.threshold = uint64(q * float64(1<<63) * 2)
	}
	return s
}

// P returns the pair inclusion probability: p for a pair-level
// sampler, q² for a host-level one.
func (s *PairSampler) P() float64 { return s.p }

// keepHost reports whether a single host is in a host-level sample.
func (s *PairSampler) keepHost(h model.HostID) bool {
	return splitmix64(uint64(h)^s.salt) < s.threshold
}

// PairKey folds a host pair into its canonical 64-bit key (direction-
// independent), the unit of sampling and of the estimator's strata.
func PairKey(a, b model.HostID) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// SetTakeAll declares pairs kept with probability 1 regardless of the
// hash draw — the certainty stratum of the heavy-tail fix. The paired
// Estimator must get the same set (Estimator.SetTakeAll) so these
// pairs' flows are not reweighted by 1/p.
func (s *PairSampler) SetTakeAll(keys map[uint64]bool) { s.takeAll = keys }

// TakeAllKeys folds profile pairs (e.g. trace.Profile.TopPairs) into
// the take-all key set SetTakeAll expects.
func TakeAllKeys(pairs []model.FlowKey) map[uint64]bool {
	if len(pairs) == 0 {
		return nil
	}
	m := make(map[uint64]bool, len(pairs))
	for _, k := range pairs {
		m[PairKey(k.Src, k.Dst)] = true
	}
	return m
}

// Keep reports whether the pair (a, b) is in the sample.
func (s *PairSampler) Keep(a, b model.HostID) bool {
	if s.threshold == ^uint64(0) {
		return true
	}
	key := PairKey(a, b)
	if s.takeAll[key] {
		return true
	}
	if s.host {
		return s.keepHost(a) && s.keepHost(b)
	}
	return splitmix64(key^s.salt) < s.threshold
}
