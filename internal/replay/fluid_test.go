package replay

import (
	"testing"
	"time"

	"lazyctrl/internal/grouping"
	"lazyctrl/internal/model"
	"lazyctrl/internal/tenant"
	"lazyctrl/internal/trace"
)

// fluidTestDir builds four switches with one host each, all in one
// tenant: host i lives on switch i.
func fluidTestDir(t *testing.T) *tenant.Directory {
	t.Helper()
	dir := tenant.NewDirectory([]model.SwitchID{1, 2, 3, 4})
	if _, err := dir.AddTenant(1, 100); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if _, err := dir.AddHost(model.HostID(i), 1, model.SwitchID(i)); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestFluidRegroupSplit pins the mid-window regroup fix: with the
// regroup timeline noted, each flow is classified under the assignment
// in force at its start time, so the fold is EXACT (0% error) across a
// regroup landing mid-window — well inside the 0.5% budget. The legacy
// path (no timeline: one fold-time view for the whole window)
// misattributes every pre-regroup flow, which is the 2–3% error this
// PR removes.
func TestFluidRegroupSplit(t *testing.T) {
	dir := fluidTestDir(t)
	// Assignment A groups {1,2}; B regroups to {1,3}. Flows are all
	// host1→host2: intra-group (no escalation) under A, inter-group
	// (one PacketIn each) under B.
	viewA := grouping.NewGrouping()
	viewA.AddGroup([]model.SwitchID{1, 2})
	viewA.AddGroup([]model.SwitchID{3, 4})
	viewB := grouping.NewGrouping()
	viewB.AddGroup([]model.SwitchID{1, 3})
	viewB.AddGroup([]model.SwitchID{2, 4})

	const (
		horizon = 100 * time.Second
		bucket  = 10 * time.Second
		regroup = 50 * time.Second
	)
	cfg := FluidConfig{
		Directory:   dir,
		Lazy:        true,
		Horizon:     horizon,
		BucketWidth: bucket,
		// 1ns idle timeout: installed rules never absorb the next flow,
		// so escalation counts depend only on the classification.
		RuleIdleTimeout: 1,
	}
	var flows []trace.Flow
	for sec := 0; sec < 100; sec++ {
		flows = append(flows, trace.Flow{
			Start: time.Duration(sec) * time.Second,
			Src:   1, Dst: 2, Packets: 1,
		})
	}

	// Epoch-timeline fold: one window spanning the regroup, folded (as
	// the harness does) at window end under the newest view.
	f := NewFluid(cfg)
	f.NoteRegroup(0, viewA, 1)
	f.NoteRegroup(regroup, viewB, 2)
	f.FoldWindow(flows, viewB, 2)
	got := f.PacketIns()
	for b, want := range []float64{0, 0, 0, 0, 0, 10, 10, 10, 10, 10} {
		if got[b] != want {
			t.Errorf("bucket %d: got %.0f PacketIns, want %.0f (exact)", b, got[b], want)
		}
	}

	// The legacy path (no timeline) smears the fold-time view across
	// the window; keep it pinned as wrong so the regression is visible.
	legacy := NewFluid(cfg)
	legacy.FoldWindow(flows, viewB, 2)
	var legacyTotal float64
	for _, v := range legacy.PacketIns() {
		legacyTotal += v
	}
	if legacyTotal != 100 {
		t.Errorf("legacy fold: got %.0f PacketIns, want 100 (every flow misattributed to view B)", legacyTotal)
	}
}

// TestFluidPerFlowBaseline pins the per-flow (5-tuple) rule model: no
// installed rule ever absorbs a later flow, so every distinct flow on
// the same host pair escalates, in both control modes.
func TestFluidPerFlowBaseline(t *testing.T) {
	dir := fluidTestDir(t)
	cfg := FluidConfig{
		Directory:       dir,
		Lazy:            false,
		Horizon:         100 * time.Second,
		BucketWidth:     10 * time.Second,
		RuleIdleTimeout: time.Hour, // aggregate rule would absorb everything
	}
	flows := []trace.Flow{
		{Start: 1 * time.Second, Src: 1, Dst: 2, Packets: 1},
		{Start: 2 * time.Second, Src: 2, Dst: 1, Packets: 1},
		{Start: 3 * time.Second, Src: 1, Dst: 2, Packets: 1},
		{Start: 4 * time.Second, Src: 1, Dst: 2, Packets: 1},
	}

	agg := NewFluid(cfg)
	agg.FoldWindow(flows, nil, 0)
	perFlow := NewFluid(FluidConfig{
		Directory:       cfg.Directory,
		Lazy:            cfg.Lazy,
		Horizon:         cfg.Horizon,
		BucketWidth:     cfg.BucketWidth,
		RuleIdleTimeout: cfg.RuleIdleTimeout,
		PerFlowBaseline: true,
	})
	perFlow.FoldWindow(flows, nil, 0)

	sum := func(f *Fluid) (n float64) {
		for _, v := range f.PacketIns() {
			n += v
		}
		return n
	}
	// Aggregate MAC-granularity rules: flow 1 escalates and floods
	// (dst 2 unknown), flow 2 escalates and installs (dst 1 learned
	// from flow 1), flow 3 escalates and installs (dst 2 learned from
	// flow 2), flow 4 hits the rule. Per-flow rules: all four escalate.
	if got := sum(agg); got != 3 {
		t.Errorf("aggregate baseline: got %.0f PacketIns, want 3", got)
	}
	if got := sum(perFlow); got != 4 {
		t.Errorf("per-flow baseline: got %.0f PacketIns, want 4", got)
	}
}
