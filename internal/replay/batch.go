package replay

import "time"

// ExpectedBatchDelay models the extra control-link delay a PacketIn
// incurs in the edge switch's micro-batching window
// (edge.Config.PacketInBatchMax/Window): the expected residual window
// plus burst position. rate is the per-switch PacketIn arrival rate in
// packets/second (Poisson approximation).
//
// Two regimes:
//
//   - Deadline-dominated (expected arrivals per window < batchMax): the
//     window opener waits out the full deadline W; each follower
//     arriving at offset u waits W−u, i.e. W/2 on average. With n̄ = λW
//     expected followers the mean wait is W·(1 + n̄/2)/(1 + n̄) — which
//     tends to W as traffic thins out, the regime the trace-driven
//     emulations live in (every cold packet waits out the deadline).
//
//   - Count-dominated (n̄ ≥ batchMax−1): the buffer fills before the
//     deadline; the k-th of B packets waits (B−k)/λ, a mean of
//     (B−1)/(2λ).
//
// The §V-E cold-cache latency shifts by exactly this term per escalated
// packet when micro-batching is enabled, which is what lets the DES
// emulation configs keep the window on by default (the eval tests pin
// the modeled term against the DES's measured batch residence).
func ExpectedBatchDelay(rate float64, window time.Duration, batchMax int) time.Duration {
	if batchMax <= 1 || window <= 0 {
		return 0
	}
	if rate <= 0 {
		return window // a lone packet always waits out the deadline
	}
	n := rate * window.Seconds() // expected followers per open window
	if n >= float64(batchMax-1) {
		return time.Duration(float64(batchMax-1) / (2 * rate) * float64(time.Second))
	}
	mean := window.Seconds() * (1 + n/2) / (1 + n)
	return time.Duration(mean * float64(time.Second))
}
