package edge

import (
	"time"

	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/openflow"
)

// FoldHooks are the harness-side oracles of the control-plane fold.
// Elision of a switch's periodic rounds is only sound with global
// knowledge the switch itself lacks — whether the underlay is
// fault-free, whether a peer's bookkeeping still needs a real
// heartbeat, how far a peer's folded heartbeats were credited — so the
// emulation harness, which owns every node, supplies these oracles.
// Every field is optional; a nil oracle disables the folds that need
// it (the conservative direction: rounds stay real).
type FoldHooks struct {
	// Gate reports whether folding is currently allowed at all. The
	// harness wires it to the underlay's fault-free predicate
	// (netsim.Network.Faulted): while no fault is active, every sent
	// heartbeat is delivered, which is what makes quiescent rounds
	// provable no-ops.
	Gate func() bool
	// BeaconCurrent reports whether the designated switch's
	// aggregation holds exactly this member's L-FIB version — the
	// O(1) check that makes an idle-advertisement version beacon a
	// guaranteed receiver no-op, foldable without sending. A mismatch
	// keeps beacon rounds real so the resync repair path fires.
	BeaconCurrent func(designated, member model.SwitchID, version uint64) bool
	// PeerNeedsLiveKA reports whether neighbor's failure bookkeeping
	// needs a real keep-alive from self: it has self reported as a
	// suspect (the resumed heartbeat is the false-alarm unwind) or
	// evicted from its aggregation. While false, a keep-alive's only
	// receiver effect is freshening a timestamp — creditable.
	PeerNeedsLiveKA func(neighbor, self model.SwitchID) bool
	// PeerKACreditedThrough returns the round boundary through which
	// neighbor's keep-alive sends were settled analytically. Liveness
	// checks treat the neighbor as heard up to this time: rounds are
	// only credited while the fault-free gate held, so those
	// heartbeats would have been delivered.
	PeerKACreditedThrough func(neighbor model.SwitchID) time.Duration
	// CtrlKACreditedThrough is the same oracle for the controller's
	// keep-alive broadcast, read by the degraded-mode check.
	CtrlKACreditedThrough func() time.Duration
	// Meter credits the wire bytes of messages a folded round would
	// have sent: msg is what one round puts on the (from, to) channel,
	// copies how many folded rounds are being settled. It feeds the
	// same accounting as netsim's send-path meter, so folded and full
	// runs report identical control-channel bytes.
	Meter func(from, to model.SwitchID, msg openflow.Message, copies uint64)
	// CreditStateReport credits one folded empty designated-switch
	// report at its round time: the controller-side request accounting
	// (workload buckets, report counters) stays bucket-exact.
	CreditStateReport func(at time.Duration)
}

// foldCap is the quiet answer for "indefinitely foldable" tasks; the
// simulator clamps to its own span cap anyway.
const foldCap = 1 << 20

// foldGateOpen reports whether the global fold gate allows elision.
func (s *Switch) foldGateOpen() bool {
	h := s.cfg.Fold
	return h != nil && h.Gate != nil && h.Gate()
}

// wakeTask re-materializes a fold task if one is registered.
func wakeTask(t netsim.ElidableTask) {
	if t != nil {
		t.Wake()
	}
}

// noteLFIBChanged re-materializes every task whose quiet proof depends
// on the local L-FIB version: the next advertisement has content, and
// a designated switch's own snapshot is stale for dissemination and
// reporting. Cheap no-op when nothing is folded.
func (s *Switch) noteLFIBChanged() {
	wakeTask(s.advTask)
	wakeTask(s.dissemTask)
	wakeTask(s.reportTask)
}

// settleFoldTasks wakes every fold task so rounds already passed are
// credited under the current state — called before a reconfiguration
// mutates the state the credit callbacks read.
func (s *Switch) settleFoldTasks() {
	wakeTask(s.advTask)
	wakeTask(s.kaSendTask)
	wakeTask(s.kaCheckTask)
	wakeTask(s.dissemTask)
	wakeTask(s.reportTask)
}

// WakeFoldTasks re-materializes all of the switch's folded timers. The
// harness calls it on every underlay fault change: any folded round
// whose boundary has passed was still under fault-free conditions and
// is credited; everything after the change runs as real events.
func (s *Switch) WakeFoldTasks() { s.settleFoldTasks() }

// MemberVersionCurrent reports whether this (designated) switch's
// aggregation holds exactly the given member L-FIB version — the
// oracle behind FoldHooks.BeaconCurrent.
func (s *Switch) MemberVersionCurrent(member model.SwitchID, version uint64) bool {
	if !s.IsDesignated() {
		return false
	}
	if _, ok := s.memberLFIBs[member]; !ok {
		return false
	}
	return s.memberLFIBVersions[member] == version && !s.evictedMembers[member]
}

// NeedsLiveKAFrom reports whether this switch's failure bookkeeping
// needs a real keep-alive from peer — the oracle behind
// FoldHooks.PeerNeedsLiveKA.
func (s *Switch) NeedsLiveKAFrom(peer model.SwitchID) bool {
	if s.reported[peer] {
		return true
	}
	return s.IsDesignated() && s.evictedMembers[peer]
}

// KACreditedThrough returns the boundary through which this switch's
// keep-alive sends were settled analytically (zero when never folded)
// — the oracle behind FoldHooks.PeerKACreditedThrough.
func (s *Switch) KACreditedThrough() time.Duration {
	if s.kaSendTask == nil {
		return 0
	}
	return s.kaSendTask.CreditedThrough()
}

// ringNeighbors yields the valid wheel-heartbeat targets.
func (s *Switch) ringNeighbors(yield func(model.SwitchID)) {
	if n := s.group.RingPrev; n != model.NoSwitch && n != s.cfg.ID {
		yield(n)
	}
	if n := s.group.RingNext; n != model.NoSwitch && n != s.cfg.ID {
		yield(n)
	}
}

// advertiseQuiet proves upcoming advertise rounds no-ops: nothing to
// say (L-FIB unchanged, no pair stats), and either nothing was ever
// advertised (pure early return) or the designated switch's
// aggregation is current, making even the every-Nth idle version
// beacon a receiver no-op. Without the beacon proof, folding stops one
// round short of the next beacon so the repair path stays live.
func (s *Switch) advertiseQuiet() int {
	if !s.foldGateOpen() {
		return 0
	}
	if !s.haveGroup {
		// Nothing happens until a group config arrives, and that
		// rebuilds the timers.
		return foldCap
	}
	if s.lfib.Version() != s.lastAdvertisedVersion || len(s.pairFlows) > 0 {
		return 0
	}
	if s.lastAdvertisedVersion == 0 {
		return foldCap // advertise() returns before doing anything
	}
	h := s.cfg.Fold
	if s.group.Designated != model.NoSwitch &&
		h.BeaconCurrent != nil && h.BeaconCurrent(s.group.Designated, s.cfg.ID, s.lfib.Version()) {
		return foldCap
	}
	return refreshEveryRounds - s.idleAdvRounds - 1
}

// advertiseCredit settles folded idle rounds: the idle-round counter
// advances, and every refreshEveryRounds-th credited round was a
// version beacon whose stats and wire bytes are credited (its receiver
// effect was a proven no-op).
func (s *Switch) advertiseCredit(rounds int) {
	if !s.haveGroup || s.lastAdvertisedVersion == 0 {
		return // the folded rounds were pure early returns
	}
	beacons := (s.idleAdvRounds + rounds) / refreshEveryRounds
	s.idleAdvRounds = (s.idleAdvRounds + rounds) % refreshEveryRounds
	if beacons == 0 {
		return
	}
	s.stats.IdleRefreshes += uint64(beacons)
	if s.IsDesignated() || s.group.Designated == model.NoSwitch {
		return // local hand-off, no wire traffic
	}
	if h := s.cfg.Fold; h != nil && h.Meter != nil {
		beacon := &openflow.StateReport{
			Group:   s.group.Group,
			Version: s.group.Version,
			LFIBs: []openflow.LFIBUpdate{{
				Origin:  s.cfg.ID,
				Version: s.lfib.Version(),
			}},
		}
		h.Meter(s.cfg.ID, s.group.Designated, beacon, uint64(beacons))
	}
}

// kaSendQuiet proves upcoming heartbeat rounds creditable: the
// underlay is fault-free (delivery guaranteed) and no ring neighbor's
// bookkeeping needs a real heartbeat from this switch.
func (s *Switch) kaSendQuiet() int {
	if !s.foldGateOpen() || !s.haveGroup {
		return 0
	}
	h := s.cfg.Fold
	if h.PeerNeedsLiveKA == nil {
		return 0
	}
	needed := false
	s.ringNeighbors(func(n model.SwitchID) {
		if h.PeerNeedsLiveKA(n, s.cfg.ID) {
			needed = true
		}
	})
	if needed {
		return 0
	}
	return foldCap
}

// kaSendCredit settles folded heartbeat rounds: the sequence counter
// advances and the wire bytes are credited. Receivers' freshness is
// recovered lazily through PeerKACreditedThrough, so no cross-node
// state is touched here.
func (s *Switch) kaSendCredit(rounds int) {
	if !s.haveGroup {
		return
	}
	s.kaSeq += uint64(rounds)
	h := s.cfg.Fold
	if h == nil || h.Meter == nil {
		return
	}
	ka := &openflow.KeepAlive{From: s.cfg.ID, Seq: s.kaSeq}
	s.ringNeighbors(func(n model.SwitchID) {
		h.Meter(s.cfg.ID, n, ka, uint64(rounds))
	})
}

// kaCheckQuiet proves upcoming liveness-check rounds no-ops: while the
// underlay is fault-free no neighbor can go silent, nothing is
// currently reported, and every neighbor has an initialized baseline
// (the grace-period branch writes state, so it must have run). The
// next real check recovers freshness via PeerKACreditedThrough.
func (s *Switch) kaCheckQuiet() int {
	if !s.foldGateOpen() {
		return 0
	}
	if !s.haveGroup || s.group.KeepAliveInterval <= 0 {
		return 0
	}
	if len(s.reported) > 0 {
		return 0
	}
	uninit := false
	s.ringNeighbors(func(n model.SwitchID) {
		if _, seen := s.lastFrom[n]; !seen {
			uninit = true
		}
	})
	if uninit {
		return 0
	}
	return foldCap
}

// membersChangedSince is the non-mutating form of changedMembers' gate:
// it reports whether any member's aggregated snapshot moved past what
// the sent-map recorded.
func (s *Switch) membersChangedSince(sent map[model.SwitchID]uint64) bool {
	for _, member := range s.group.Members {
		if _, ok := s.memberLFIBs[member]; !ok {
			continue
		}
		if prev, seen := sent[member]; !seen || prev != s.memberLFIBVersions[member] {
			return true
		}
	}
	return false
}

// dissemQuiet proves upcoming dissemination rounds no-ops: no member
// filter changed and no eviction is pending, so a non-beacon round
// sends nothing. Beacon rounds always run real — they are the
// NACK/resync repair trigger, and receiver staleness is exactly what
// this switch cannot prove away.
func (s *Switch) dissemQuiet() int {
	if !s.foldGateOpen() || !s.IsDesignated() {
		return 0
	}
	if len(s.evictedMembers) > 0 {
		return 0
	}
	if s.lfib.Version() != s.memberLFIBVersions[s.cfg.ID] {
		return 0 // own snapshot refresh pending
	}
	if s.membersChangedSince(s.gfibSent) {
		return 0
	}
	return refreshEveryRounds - int(s.gfibRound%refreshEveryRounds) - 1
}

// dissemCredit settles folded dissemination rounds; all were proven
// empty non-beacon rounds, so only the round counter advances.
func (s *Switch) dissemCredit(rounds int) {
	s.gfibRound += uint64(rounds)
}

// reportQuiet proves upcoming controller-report rounds creditable: no
// aggregated state or pair statistics are pending, so each round sends
// the constant empty report (the state link's liveness signal), whose
// controller-side effect is a per-round counter. Anti-entropy full
// rounds stay real.
func (s *Switch) reportQuiet() int {
	if !s.foldGateOpen() || !s.IsDesignated() {
		return 0
	}
	h := s.cfg.Fold
	if h.CreditStateReport == nil || s.ctrlRelay {
		return 0
	}
	if len(s.memberPairs) > 0 || len(s.evictedMembers) > 0 {
		return 0
	}
	if s.lfib.Version() != s.memberLFIBVersions[s.cfg.ID] {
		return 0
	}
	if s.membersChangedSince(s.ctrlSent) || len(s.ctrlPending) > 0 {
		return 0
	}
	return refreshEveryRounds - int(s.ctrlRound%refreshEveryRounds) - 1
}

// reportCredit settles folded empty-report rounds bucket-exactly: each
// round's report is credited at its own boundary time, and the round's
// wire bytes once per round.
func (s *Switch) reportCredit(rounds int) {
	if !s.IsDesignated() || s.reportTask == nil {
		return
	}
	s.ctrlRound += uint64(rounds)
	h := s.cfg.Fold
	if h == nil {
		return
	}
	ct := s.reportTask.CreditedThrough()
	if h.CreditStateReport != nil {
		for i := rounds - 1; i >= 0; i-- {
			h.CreditStateReport(ct - time.Duration(i)*s.cfg.ReportInterval)
		}
	}
	if h.Meter != nil {
		empty := &openflow.StateReport{Group: s.group.Group, Version: s.group.Version}
		h.Meter(s.cfg.ID, model.ControllerNode, empty, uint64(rounds))
	}
}
