package edge

import (
	"time"

	"lazyctrl/internal/bloom"
	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/openflow"
	"lazyctrl/internal/telemetry"
)

// HandleMessage implements netsim.Node: the Ctrl-IF and peer/state link
// endpoints of the switch.
func (s *Switch) HandleMessage(from model.SwitchID, msg netsim.Message) {
	if netsim.HandleTimer(msg) {
		return
	}
	switch m := msg.(type) {
	case *model.Packet:
		if m.Encapsulated() {
			s.handleOverlay(m)
		} else {
			s.handleFlood(m)
		}
	case *openflow.FlowMod:
		s.handleFlowMod(m)
		s.emitApplySpan(m.Span)
	case *openflow.PacketOut:
		s.clearEscalation(&m.Packet)
		pkt := m.Packet
		s.applyActions(m.Actions, &pkt)
		s.emitApplySpan(m.Span)
	case *openflow.GroupConfig:
		if s.fenced(m.Generation, from) {
			return
		}
		s.handleGroupConfig(m)
	case *openflow.StateReport:
		s.handleMemberReport(from, m)
	case *openflow.GFIBUpdate:
		if s.fenced(m.Generation, from) {
			return
		}
		s.handleGFIBUpdate(m)
	case *openflow.GFIBDelta:
		if s.fenced(m.Generation, from) {
			return
		}
		s.handleGFIBDelta(from, m)
	case *openflow.GFIBNack:
		s.handleGFIBNack(m)
	case *openflow.LFIBUpdate:
		if s.fenced(m.Generation, from) {
			return
		}
		s.handleLFIBUpdate(from, m)
	case *openflow.RoleAnnounce:
		s.adoptGeneration(m.Generation, m.From)
	case *openflow.ARPRelay:
		s.handleARPRelay(m)
	case *openflow.KeepAlive:
		s.handleKeepAlive(from, m)
	case *openflow.EchoRequest:
		s.env.Send(from, &openflow.EchoReply{Data: m.Data})
	case *openflow.StatsRequest:
		s.env.Send(from, s.statsReply())
	case *relayEnvelope:
		// Pass a neighbor's control message on to the controller this
		// switch follows (§III-E2 control-link failover).
		s.env.Send(s.master, m.Msg)
	case *openflow.Batch:
		// A regroup round's coalesced push: fence the whole batch once
		// before anything applies — a stale master's push must not
		// partially land — then apply in order, so the GroupConfig that
		// resets G-FIB/aggregation state lands before the L-FIB
		// preloads that repopulate it.
		if s.fenced(m.Generation, from) {
			return
		}
		for _, sub := range m.Msgs {
			if _, nested := sub.(*openflow.Batch); nested {
				continue // decode rejects nesting; ignore hand-built ones
			}
			s.HandleMessage(from, sub)
		}
	}
}

// emitApplySpan closes a sampled escalation's trace with the edge-side
// apply instant: the leaf span of the PacketIn taxonomy (ingress →
// batch → controller → apply — docs/observability.md).
func (s *Switch) emitApplySpan(ctx telemetry.SpanContext) {
	if tr := s.cfg.Tracer; tr != nil && ctx.Sampled() {
		now := s.env.Now()
		tr.Emit(ctx, "pktin.apply", now, now, telemetry.Attr{Key: "sw", Val: int64(s.cfg.ID)})
	}
}

func (s *Switch) handleFlowMod(m *openflow.FlowMod) {
	switch m.Command {
	case openflow.FlowAdd, openflow.FlowModify:
		s.flows.install(&flowRule{
			match:       m.Match,
			priority:    m.Priority,
			actions:     append([]openflow.Action(nil), m.Actions...),
			idleTimeout: m.IdleTimeout,
			hardTimeout: m.HardTimeout,
			installedAt: s.env.Now(),
			lastHit:     s.env.Now(),
		})
	case openflow.FlowDelete:
		s.flows.remove(m.Match)
	}
}

// handleGroupConfig adopts a (re)grouping decision from the controller
// (§III-D1): group membership, designated switch, wheel neighbors, and
// timing. The G-FIB is cleared and rebuilt by the next dissemination
// round; the switch immediately advertises its L-FIB so the designated
// switch can rebuild quickly (the "preload" window is covered by
// controller-installed rules).
func (s *Switch) handleGroupConfig(m *openflow.GroupConfig) {
	// Settle folded rounds under the old group view before anything is
	// mutated: credit callbacks read the state the fold was proven
	// against.
	s.settleFoldTasks()
	membersChanged := !sameMembers(s.group.Members, m.Members) || !s.haveGroup
	ringChanged := s.group.RingPrev != m.RingPrev || s.group.RingNext != m.RingNext
	s.group = *m
	s.haveGroup = true
	if membersChanged || ringChanged {
		// Fresh keep-alive bookkeeping: new wheel neighbors get a full
		// grace period instead of inheriting stale timestamps.
		s.lastFrom = make(map[model.SwitchID]time.Duration)
		s.reported = make(map[model.SwitchID]bool)
	}
	// Only a membership change invalidates G-FIB state, and even then
	// only selectively: filters of peers that stayed in the group are
	// kept — they are version-stamped, usually fresher than the
	// controller's C-LIB preload (which lags by up to a report
	// interval), and the stale-version guard in handleGFIBUpdate
	// protects them from being downgraded by it — while filters of
	// departed peers are dropped (those hosts are inter-group now and
	// must go through the controller). Regroupings that leave this
	// group intact (the common case) keep everything warm — the
	// Appendix-B "preload for seamless grouping update" effect. The
	// designated-switch aggregation and diff-base caches reset
	// wholesale: a possibly-new designated rebuilds them from the
	// members' bootstrap advertisements.
	if membersChanged {
		current := make(map[model.SwitchID]bool, len(m.Members))
		for _, member := range m.Members {
			current[member] = true
		}
		for _, peer := range s.gfib.Peers() {
			if !current[peer] {
				s.gfib.RemoveFilter(peer)
			}
		}
		s.memberLFIBs = make(map[model.SwitchID][]openflow.LFIBEntry)
		s.memberLFIBVersions = make(map[model.SwitchID]uint64)
		s.memberPairs = make(map[model.SwitchPair]uint32)
		s.gfibPrev = make(map[model.SwitchID]*bloom.Filter)
		s.ctrlPending = make(map[model.SwitchID][]openflow.LFIBEntry)
		s.ctrlNeedFull = make(map[model.SwitchID]bool)
		s.evictedMembers = make(map[model.SwitchID]bool)
	}
	// Any reconfiguration restarts delta tracking: the next dissemination
	// and controller report re-examine every member (peers may have
	// cleared their G-FIBs, and the controller re-tags C-LIB groups).
	// Where the diff base survived (members unchanged), the re-send
	// degrades to cheap deltas or version beacons, and receivers that
	// lost state anyway recover through the NACK/resync path.
	s.gfibSent = make(map[model.SwitchID]uint64)
	s.ctrlSent = make(map[model.SwitchID]uint64)
	// Restart group timers.
	s.restartGroupTimers()
	// Acknowledge the push: the controller supervises configs with a
	// retry timer, and this is what cancels it.
	s.sendCtrl(&openflow.ConfigAck{From: s.cfg.ID, Version: m.Version})
	// Immediate advertisement bootstraps the new group's state.
	s.lastAdvertisedVersion = 0
	s.idleAdvRounds = 0
	s.advertise()
	if s.IsDesignated() {
		// First dissemination shortly after members advertise.
		s.env.After(s.cfg.AdvertiseInterval/2+time.Millisecond, func() {
			s.disseminateGFIB()
			s.reportToController()
		})
	}
}

func sameMembers(a, b []model.SwitchID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var _ = time.Second // keep time imported when defaults change

func (s *Switch) restartGroupTimers() {
	for _, c := range s.cancels {
		c()
	}
	s.cancels = s.cancels[:0]
	s.advTask, s.kaSendTask, s.kaCheckTask, s.dissemTask, s.reportTask = nil, nil, nil, nil, nil
	s.advTask = s.registerPeriodic(s.cfg.AdvertiseInterval, s.advertise,
		s.advertiseQuiet, s.advertiseCredit)
	if s.group.KeepAliveInterval > 0 && len(s.group.Members) > 1 {
		s.kaSendTask = s.registerPeriodic(s.group.KeepAliveInterval, s.sendKeepAlives,
			s.kaSendQuiet, s.kaSendCredit)
		s.kaCheckTask = s.registerPeriodic(s.group.KeepAliveInterval, s.checkKeepAlives,
			s.kaCheckQuiet, func(int) {})
	}
	if s.IsDesignated() {
		s.dissemTask = s.registerPeriodic(s.cfg.GFIBInterval, s.disseminateGFIB,
			s.dissemQuiet, s.dissemCredit)
		s.reportTask = s.registerPeriodic(s.cfg.ReportInterval, s.reportToController,
			s.reportQuiet, s.reportCredit)
	}
}

// advertise implements the state-advertisement module: push the local
// L-FIB changes and window traffic statistics to the designated switch
// when something moved. The L-FIB leg is incremental — only bindings
// changed since the last advertisement travel — falling back to a full
// snapshot on the first advertisement after (re)configuration, after a
// removal (increments cannot express those), and every
// refreshEveryRounds-th changed advertisement (anti-entropy against a
// lost increment). A round where only pair statistics moved carries no
// L-FIB payload at all.
func (s *Switch) advertise() {
	if !s.haveGroup {
		return
	}
	changed := s.lfib.Version() != s.lastAdvertisedVersion
	beacon := false
	if !changed && len(s.pairFlows) == 0 {
		if s.lastAdvertisedVersion == 0 {
			return // nothing ever advertised, nothing to repair
		}
		// Idle anti-entropy: advSinceFull only guards *changed*
		// advertisements, so a bootstrap full advertisement lost on a
		// faulty peer link would never be repaired — the member goes
		// quiet once lfib.Version() == lastAdvertisedVersion and the
		// designated switch holds nothing for it. Every
		// refreshEveryRounds-th idle interval sends a version beacon: a
		// zero-entry increment asserting the current L-FIB version. A
		// designated switch whose aggregation is current no-ops; one
		// that lost the member's state resyncs it (group-view re-send →
		// full bootstrap advertisement). The common idle case costs a
		// version comparison, not a snapshot.
		s.idleAdvRounds++
		if s.idleAdvRounds < refreshEveryRounds {
			return
		}
		beacon = true
		s.stats.IdleRefreshes++
	}
	s.idleAdvRounds = 0
	report := &openflow.StateReport{
		Group:   s.group.Group,
		Pairs:   s.drainPairStats(),
		Version: s.group.Version,
	}
	if beacon {
		report.LFIBs = []openflow.LFIBUpdate{{
			Origin:  s.cfg.ID,
			Version: s.lfib.Version(),
		}}
	}
	if changed {
		entries, full := s.lfib.DrainChanges()
		s.advSinceFull++
		if s.lastAdvertisedVersion == 0 || s.advSinceFull >= refreshEveryRounds {
			entries, full = s.lfib.WireEntries(), true
		}
		if full {
			s.advSinceFull = 0
		}
		report.LFIBs = []openflow.LFIBUpdate{{
			Origin:  s.cfg.ID,
			Full:    full,
			Entries: entries,
			Version: s.lfib.Version(),
		}}
		s.lastAdvertisedVersion = s.lfib.Version()
	}
	if s.IsDesignated() {
		s.handleMemberReport(s.cfg.ID, report)
		return
	}
	if s.group.Designated != model.NoSwitch {
		s.env.Send(s.group.Designated, report)
	}
}

func (s *Switch) drainPairStats() []openflow.PairStat {
	if len(s.pairFlows) == 0 {
		return nil
	}
	out := make([]openflow.PairStat, 0, len(s.pairFlows))
	for other, n := range s.pairFlows {
		out = append(out, openflow.PairStat{A: s.cfg.ID, B: other, NewFlows: n})
	}
	s.pairFlows = make(map[model.SwitchID]uint32)
	return out
}

// handleMemberReport records a member's advertisement (designated
// switch only): full snapshots replace the member's aggregated state,
// increments merge into it, and the same increments queue for the next
// controller report so the state link forwards them instead of
// re-snapshotting.
func (s *Switch) handleMemberReport(from model.SwitchID, m *openflow.StateReport) {
	if !s.IsDesignated() || m.Group != s.group.Group {
		return
	}
	for i := range m.LFIBs {
		u := &m.LFIBs[i]
		if u.Full {
			s.memberLFIBs[u.Origin] = u.Entries
			s.ctrlNeedFull[u.Origin] = true
			delete(s.ctrlPending, u.Origin)
			delete(s.evictedMembers, u.Origin)
		} else {
			base, known := s.memberLFIBs[u.Origin]
			if len(u.Entries) == 0 {
				// Idle version beacon: the member asserts its current
				// L-FIB version without shipping entries. Current
				// aggregation → no-op; anything else (no snapshot held,
				// stale version) means advertisements were lost — resync
				// the member so its next advertisement is a full
				// bootstrap snapshot.
				if !known || s.memberLFIBVersions[u.Origin] != u.Version {
					s.resyncMember(u.Origin)
				}
				continue
			}
			if !known {
				// An increment without a base snapshot (the member was
				// evicted on peer evidence, or its bootstrap full
				// advertisement was lost) must not be adopted as the
				// member's whole state: version-stamping an incomplete
				// entry set would poison everything built from it. The
				// member stays absent until its next full advertisement
				// (keep-alive resumption or member-side anti-entropy
				// triggers one).
				continue
			}
			s.memberLFIBs[u.Origin] = mergeWireEntries(base, u.Entries)
			s.ctrlPending[u.Origin] = append(s.ctrlPending[u.Origin], u.Entries...)
		}
		s.memberLFIBVersions[u.Origin] = u.Version
	}
	for _, p := range m.Pairs {
		s.memberPairs[model.MakeSwitchPair(p.A, p.B)] += p.NewFlows
	}
	// A member spoke: aggregated versions or pair stats may have moved,
	// so folded dissemination/report rounds must re-prove quietness.
	wakeTask(s.dissemTask)
	wakeTask(s.reportTask)
}

// mergeWireEntries merges an increment into a MAC-sorted snapshot,
// replacing bindings for MACs the increment re-announces. Both inputs
// are sorted by MAC (LFIB.DrainChanges guarantees it); the result is a
// fresh slice, never aliasing the old snapshot.
func mergeWireEntries(old, inc []openflow.LFIBEntry) []openflow.LFIBEntry {
	out := make([]openflow.LFIBEntry, 0, len(old)+len(inc))
	i, j := 0, 0
	for i < len(old) && j < len(inc) {
		a, b := old[i].MAC.Uint64(), inc[j].MAC.Uint64()
		switch {
		case a < b:
			out = append(out, old[i])
			i++
		case a > b:
			out = append(out, inc[j])
			j++
		default:
			out = append(out, inc[j])
			i++
			j++
		}
	}
	out = append(out, old[i:]...)
	out = append(out, inc[j:]...)
	return out
}

// refreshOwnSnapshot folds the designated switch's own L-FIB into the
// aggregation state, re-materializing the wire snapshot only when the
// L-FIB actually changed.
func (s *Switch) refreshOwnSnapshot() {
	v := s.lfib.Version()
	if s.memberLFIBs[s.cfg.ID] == nil || s.memberLFIBVersions[s.cfg.ID] != v {
		s.memberLFIBs[s.cfg.ID] = s.lfib.WireEntries()
		s.memberLFIBVersions[s.cfg.ID] = v
	}
}

// changedMembers yields every member whose aggregated L-FIB snapshot
// must be included this round — its advertised version moved past what
// the given sent-map recorded, or full is set (anti-entropy refresh) —
// and records the yielded version in the sent-map. The gate is shared
// by G-FIB dissemination and controller reporting so the two delta
// paths cannot diverge.
func (s *Switch) changedMembers(sent map[model.SwitchID]uint64, full bool, yield func(member model.SwitchID, entries []openflow.LFIBEntry, v uint64)) {
	for _, member := range s.group.Members {
		entries, ok := s.memberLFIBs[member]
		if !ok {
			continue
		}
		v := s.memberLFIBVersions[member]
		if prev, seen := sent[member]; !full && seen && prev == v {
			continue // unchanged since the last round
		}
		yield(member, entries, v)
		sent[member] = v
	}
}

// refreshEveryRounds is the staleness-bounding cadence of the two
// designated-switch fan-out paths. On the controller-report path every
// Nth round ignores the sent-version gate and resends full state
// (anti-entropy). On the G-FIB dissemination path the Nth round sends
// only a version beacon — zero-word deltas asserting every member's
// current filter version — and receivers that do not hold a version
// NACK for exactly the filters they miss, which the sender then
// resends in full. A lost delta is therefore repaired within N rounds
// at the cost of a version comparison, not a full re-push.
const refreshEveryRounds = 10

// disseminateGFIB distributes the group's Bloom filters to every member
// over peer links (multiple unicasts — no native multicast assumed,
// §III-B3). Distribution is versioned and incremental: a member's
// filter is re-examined only when its advertised L-FIB version moved,
// and a changed filter ships as a word-level delta against the last
// disseminated version whenever that is smaller than the full filter —
// a single host arrival costs O(k) changed words instead of the whole
// array. Full filters and deltas for one round coalesce into at most
// one message per receiver. A round with no changed filters sends
// nothing, except every refreshEveryRounds-th round, which sends the
// version beacon that bounds staleness after a lost delta (see
// refreshEveryRounds).
func (s *Switch) disseminateGFIB() {
	if !s.IsDesignated() {
		return
	}
	// Own L-FIB participates too.
	s.refreshOwnSnapshot()

	s.gfibRound++
	beacon := s.gfibRound%refreshEveryRounds == 0
	update := &openflow.GFIBUpdate{Group: s.group.Group, Version: s.group.Version}
	delta := &openflow.GFIBDelta{Group: s.group.Group, Version: s.group.Version}
	s.changedMembers(s.gfibSent, false, func(member model.SwitchID, entries []openflow.LFIBEntry, v uint64) {
		f := filterFromEntries(entries, s.cfg.FilterBits, s.cfg.FilterHashes)
		f.SetVersion(v)
		prev := s.gfibPrev[member]
		s.gfibPrev[member] = f
		if prev != nil && !s.cfg.GFIBFullPush {
			if words, err := f.DiffWords(prev); err == nil && openflow.DeltaWireCost(words) < openflow.FullWireCost(f.SizeBytes()) {
				s.stats.GFIBDeltasSent++
				delta.Deltas = append(delta.Deltas, openflow.GFIBFilterDelta{
					Switch:        member,
					BaseVersion:   prev.Version(),
					TargetVersion: v,
					Words:         words,
				})
				return
			}
		}
		data, err := f.MarshalBinary()
		if err != nil {
			return // cannot happen with valid geometry
		}
		s.stats.GFIBFullsSent++
		update.Filters = append(update.Filters, openflow.GFIBFilter{Switch: member, Filter: data, Version: v})
	})
	if beacon {
		// Version beacon: assert the current version of every member
		// filter not already covered by this round's items. Holders
		// no-op; stale or empty receivers NACK and get a full resync.
		covered := make(map[model.SwitchID]bool, len(update.Filters)+len(delta.Deltas))
		for _, f := range update.Filters {
			covered[f.Switch] = true
		}
		for _, d := range delta.Deltas {
			covered[d.Switch] = true
		}
		for _, member := range s.group.Members {
			f := s.gfibPrev[member]
			if f == nil || covered[member] {
				continue
			}
			delta.Deltas = append(delta.Deltas, openflow.GFIBFilterDelta{
				Switch:        member,
				BaseVersion:   f.Version(),
				TargetVersion: f.Version(),
			})
		}
	}
	var msgs []openflow.Message
	if len(update.Filters) > 0 {
		msgs = append(msgs, update)
	}
	if len(delta.Deltas) > 0 {
		msgs = append(msgs, delta)
	}
	if len(msgs) == 0 {
		return
	}
	var out netsim.Message = msgs[0]
	if len(msgs) > 1 {
		out = &openflow.Batch{Msgs: msgs}
	}
	// onlyOwn reports whether every item of the round concerns the
	// receiver's own filter — such a message tells it nothing (a switch
	// never installs its own filter), so it is not sent.
	onlyOwn := func(member model.SwitchID) bool {
		for _, f := range update.Filters {
			if f.Switch != member {
				return false
			}
		}
		for _, d := range delta.Deltas {
			if d.Switch != member {
				return false
			}
		}
		return true
	}
	for _, member := range s.group.Members {
		if member == s.cfg.ID {
			// Apply locally without a network hop; sub-messages in order.
			for _, m := range msgs {
				s.HandleMessage(s.cfg.ID, m)
			}
			continue
		}
		if onlyOwn(member) {
			continue
		}
		s.env.Send(member, out)
	}
}

// reportToController implements the state-reporting module of the
// designated switch: the aggregated L-FIB changes and pair statistics
// go to the controller over the state link.
func (s *Switch) reportToController() {
	if !s.IsDesignated() {
		return
	}
	s.refreshOwnSnapshot()
	s.ctrlRound++
	fullRound := s.ctrlRound%refreshEveryRounds == 0
	report := &openflow.StateReport{Group: s.group.Group, Version: s.group.Version}
	// The report itself goes out every interval (it is the state link's
	// liveness and carries the pair statistics), but an L-FIB leg is
	// attached only for members whose version moved since the last
	// report — and as the queued increments where possible, falling
	// back to the full snapshot when the member itself advertised one
	// (bootstrap, removals) or when no increment trail exists. Every
	// refreshEveryRounds-th report is full for every member, bounding
	// staleness after a report lost on a failing control link.
	s.changedMembers(s.ctrlSent, fullRound, func(member model.SwitchID, entries []openflow.LFIBEntry, v uint64) {
		u := openflow.LFIBUpdate{Origin: member, Full: true, Entries: entries, Version: v}
		if pending := s.ctrlPending[member]; !fullRound && !s.ctrlNeedFull[member] && len(pending) > 0 {
			u.Full, u.Entries = false, pending
		}
		delete(s.ctrlPending, member)
		delete(s.ctrlNeedFull, member)
		report.LFIBs = append(report.LFIBs, u)
	})
	for pair, n := range s.memberPairs {
		report.Pairs = append(report.Pairs, openflow.PairStat{A: pair.A, B: pair.B, NewFlows: n})
	}
	s.memberPairs = make(map[model.SwitchPair]uint32)
	s.sendCtrl(report)
}

// handleGFIBUpdate rebuilds the G-FIB from disseminated full filters
// (FIB maintenance module). The filter for this switch itself is
// skipped — the L-FIB answers local questions. Each installed filter
// adopts the origin version it was built at, seeding delta tracking.
func (s *Switch) handleGFIBUpdate(m *openflow.GFIBUpdate) {
	if !s.haveGroup || m.Group != s.group.Group {
		return
	}
	for _, f := range m.Filters {
		if f.Switch == s.cfg.ID {
			continue
		}
		// A full filter older than what this switch already holds is a
		// late arrival from the slower of the two senders (controller
		// preloads lag designated dissemination when the state link
		// lags the peer links); installing it would regress the G-FIB
		// to a pre-churn view and open a false-negative window.
		if held, ok := s.gfib.PeerVersion(f.Switch); ok && held > f.Version {
			continue
		}
		// Ignore undecodable filters; the next round repairs them.
		_ = s.gfib.SetFilterBytes(f.Switch, f.Filter, f.Version)
	}
}

// handleGFIBDelta patches the G-FIB with word-level filter deltas. An
// item whose base version this switch does not hold (missed round,
// cleared G-FIB, reboot) is left untouched and NACKed back to the
// sender, which answers with full filters for exactly the stale peers
// — the explicit resync path that replaces periodic anti-entropy on
// the dissemination path.
func (s *Switch) handleGFIBDelta(from model.SwitchID, m *openflow.GFIBDelta) {
	if !s.haveGroup || m.Group != s.group.Group {
		return
	}
	// Tombstones first: a removal is unconditional (no base version,
	// never NACKed). A designated switch also drops the member's
	// aggregation state — a controller-issued removal may be its first
	// notice when the dead member is not among its wheel neighbors.
	for _, peer := range m.Removals {
		if peer == s.cfg.ID {
			continue
		}
		if _, held := s.gfib.PeerVersion(peer); held {
			s.gfib.RemoveFilter(peer)
			s.stats.GFIBRemovalsApplied++
		}
		if s.IsDesignated() {
			s.dropMemberAggregation(peer)
		}
	}
	var stale []model.SwitchID
	for _, d := range m.Deltas {
		if d.Switch == s.cfg.ID {
			continue
		}
		if err := s.gfib.ApplyDelta(d.Switch, d.BaseVersion, d.TargetVersion, d.Words); err != nil {
			// Base mismatch or a malformed patch: either way this
			// filter needs the full state.
			stale = append(stale, d.Switch)
			continue
		}
		s.stats.GFIBDeltasApplied++
	}
	if len(stale) == 0 {
		return
	}
	s.stats.GFIBNacksSent++
	nack := &openflow.GFIBNack{Group: s.group.Group, Origin: s.cfg.ID, Peers: stale}
	if from == s.cfg.ID {
		s.handleGFIBNack(nack)
		return
	}
	s.env.Send(from, nack)
}

// handleGFIBNack re-sends full filters for the peers a receiver could
// not patch. Only the group's designated switch holds the disseminated
// filter cache; NACKs against controller preloads are answered by the
// controller itself.
func (s *Switch) handleGFIBNack(m *openflow.GFIBNack) {
	if !s.haveGroup || m.Group != s.group.Group || !s.IsDesignated() {
		return
	}
	update := &openflow.GFIBUpdate{Group: s.group.Group, Version: s.group.Version}
	for _, peer := range m.Peers {
		f := s.gfibPrev[peer]
		if f == nil {
			continue // nothing disseminated for this peer yet
		}
		data, err := f.MarshalBinary()
		if err != nil {
			continue
		}
		update.Filters = append(update.Filters, openflow.GFIBFilter{Switch: peer, Filter: data, Version: f.Version()})
	}
	if len(update.Filters) == 0 {
		return
	}
	s.stats.GFIBResyncs += uint64(len(update.Filters))
	if m.Origin == s.cfg.ID {
		s.handleGFIBUpdate(update)
		return
	}
	s.env.Send(m.Origin, update)
}

// handleLFIBUpdate merges a peer's incremental L-FIB push (used by the
// controller when preloading state after regrouping).
func (s *Switch) handleLFIBUpdate(from model.SwitchID, m *openflow.LFIBUpdate) {
	if !s.haveGroup {
		return
	}
	// Build a filter from the update and install it for the origin at
	// the update's version, so later deltas have a defined base.
	f := filterFromEntriesWire(m.Entries, s.cfg.FilterBits, s.cfg.FilterHashes)
	f.SetVersion(m.Version)
	if m.Origin != s.cfg.ID {
		s.gfib.SetFilter(m.Origin, f)
	}
}

// handleARPRelay processes a controller-relayed ARP query (§III-D3
// level iii). The designated switch fans the query out to group members;
// every switch owning the target answers the controller directly with
// its binding (standing in for the host's ARP reply, which the
// controller observes).
func (s *Switch) handleARPRelay(m *openflow.ARPRelay) {
	if s.answerARP(&m.Packet) {
		return
	}
	if s.IsDesignated() {
		for _, member := range s.group.Members {
			if member != s.cfg.ID {
				s.env.Send(member, m)
			}
		}
	}
}

// answerARP responds to an ARP query if a local host owns the target.
func (s *Switch) answerARP(p *model.Packet) bool {
	e := s.lfib.LookupIP(p.ARPTarget)
	if e == nil {
		return false
	}
	s.sendCtrl(&openflow.LFIBUpdate{
		Origin:  s.cfg.ID,
		Entries: []openflow.LFIBEntry{{MAC: e.MAC, IP: e.IP, VLAN: e.VLAN}},
		Version: s.lfib.Version(),
	})
	return true
}

func (s *Switch) statsReply() *openflow.StatsReply {
	return &openflow.StatsReply{
		Switch:       s.cfg.ID,
		FlowCount:    uint32(s.flows.len()),
		PacketsSeen:  s.stats.PacketsSeen,
		BytesSeen:    s.stats.BytesSeen,
		LFIBEntries:  uint32(s.lfib.Len()),
		GFIBFilters:  uint32(s.gfib.Len()),
		GFIBBytes:    uint64(s.gfib.SizeBytes()),
		EncapPackets: s.stats.EncapSent,
	}
}
