package edge

import (
	"time"

	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/openflow"
)

// HandleMessage implements netsim.Node: the Ctrl-IF and peer/state link
// endpoints of the switch.
func (s *Switch) HandleMessage(from model.SwitchID, msg netsim.Message) {
	if netsim.HandleTimer(msg) {
		return
	}
	switch m := msg.(type) {
	case *model.Packet:
		if m.Encapsulated() {
			s.handleOverlay(m)
		} else {
			s.handleFlood(m)
		}
	case *openflow.FlowMod:
		s.handleFlowMod(m)
	case *openflow.PacketOut:
		pkt := m.Packet
		s.applyActions(m.Actions, &pkt)
	case *openflow.GroupConfig:
		s.handleGroupConfig(m)
	case *openflow.StateReport:
		s.handleMemberReport(from, m)
	case *openflow.GFIBUpdate:
		s.handleGFIBUpdate(m)
	case *openflow.LFIBUpdate:
		s.handleLFIBUpdate(from, m)
	case *openflow.ARPRelay:
		s.handleARPRelay(m)
	case *openflow.KeepAlive:
		s.handleKeepAlive(from, m)
	case *openflow.EchoRequest:
		s.env.Send(from, &openflow.EchoReply{Data: m.Data})
	case *openflow.StatsRequest:
		s.env.Send(from, s.statsReply())
	case *relayEnvelope:
		// Pass a neighbor's control message on to the controller
		// (§III-E2 control-link failover).
		s.env.Send(model.ControllerNode, m.Msg)
	case *openflow.Batch:
		// A regroup round's coalesced push: apply in order, so the
		// GroupConfig that resets G-FIB/aggregation state lands before
		// the L-FIB preloads that repopulate it.
		for _, sub := range m.Msgs {
			if _, nested := sub.(*openflow.Batch); nested {
				continue // decode rejects nesting; ignore hand-built ones
			}
			s.HandleMessage(from, sub)
		}
	}
}

func (s *Switch) handleFlowMod(m *openflow.FlowMod) {
	switch m.Command {
	case openflow.FlowAdd, openflow.FlowModify:
		s.flows.install(&flowRule{
			match:       m.Match,
			priority:    m.Priority,
			actions:     append([]openflow.Action(nil), m.Actions...),
			idleTimeout: m.IdleTimeout,
			hardTimeout: m.HardTimeout,
			installedAt: s.env.Now(),
			lastHit:     s.env.Now(),
		})
	case openflow.FlowDelete:
		s.flows.remove(m.Match)
	}
}

// handleGroupConfig adopts a (re)grouping decision from the controller
// (§III-D1): group membership, designated switch, wheel neighbors, and
// timing. The G-FIB is cleared and rebuilt by the next dissemination
// round; the switch immediately advertises its L-FIB so the designated
// switch can rebuild quickly (the "preload" window is covered by
// controller-installed rules).
func (s *Switch) handleGroupConfig(m *openflow.GroupConfig) {
	membersChanged := !sameMembers(s.group.Members, m.Members) || !s.haveGroup
	ringChanged := s.group.RingPrev != m.RingPrev || s.group.RingNext != m.RingNext
	s.group = *m
	s.haveGroup = true
	if membersChanged || ringChanged {
		// Fresh keep-alive bookkeeping: new wheel neighbors get a full
		// grace period instead of inheriting stale timestamps.
		s.lastFrom = make(map[model.SwitchID]time.Duration)
		s.reported = make(map[model.SwitchID]bool)
	}
	// Only a membership change invalidates the G-FIB and the designated
	// switch's aggregation state; regroupings that leave this group
	// intact (the common case) keep forwarding warm — the Appendix-B
	// "preload for seamless grouping update" effect.
	if membersChanged {
		s.gfib.Clear()
		s.memberLFIBs = make(map[model.SwitchID][]openflow.LFIBEntry)
		s.memberLFIBVersions = make(map[model.SwitchID]uint64)
		s.memberPairs = make(map[model.SwitchPair]uint32)
	}
	// Any reconfiguration restarts delta tracking: the next dissemination
	// and controller report carry full state again (peers may have
	// cleared their G-FIBs, and the controller re-tags C-LIB groups).
	s.gfibSent = make(map[model.SwitchID]uint64)
	s.ctrlSent = make(map[model.SwitchID]uint64)
	// Restart group timers.
	s.restartGroupTimers()
	// Immediate advertisement bootstraps the new group's state.
	s.lastAdvertisedVersion = 0
	s.advertise()
	if s.IsDesignated() {
		// First dissemination shortly after members advertise.
		s.env.After(s.cfg.AdvertiseInterval/2+time.Millisecond, func() {
			s.disseminateGFIB()
			s.reportToController()
		})
	}
}

func sameMembers(a, b []model.SwitchID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var _ = time.Second // keep time imported when defaults change

func (s *Switch) restartGroupTimers() {
	for _, c := range s.cancels {
		c()
	}
	s.cancels = s.cancels[:0]
	s.cancels = append(s.cancels,
		s.env.Every(s.cfg.AdvertiseInterval, s.advertise))
	if s.group.KeepAliveInterval > 0 && len(s.group.Members) > 1 {
		s.cancels = append(s.cancels,
			s.env.Every(s.group.KeepAliveInterval, s.sendKeepAlives),
			s.env.Every(s.group.KeepAliveInterval, s.checkKeepAlives))
	}
	if s.IsDesignated() {
		s.cancels = append(s.cancels,
			s.env.Every(s.cfg.GFIBInterval, s.disseminateGFIB),
			s.env.Every(s.cfg.ReportInterval, s.reportToController))
	}
}

// advertise implements the state-advertisement module: push the local
// L-FIB snapshot and window traffic statistics to the designated switch
// when something changed.
func (s *Switch) advertise() {
	if !s.haveGroup {
		return
	}
	changed := s.lfib.Version() != s.lastAdvertisedVersion
	if !changed && len(s.pairFlows) == 0 {
		return
	}
	report := &openflow.StateReport{
		Group: s.group.Group,
		LFIBs: []openflow.LFIBUpdate{{
			Origin:  s.cfg.ID,
			Full:    true,
			Entries: s.lfib.WireEntries(),
			Version: s.lfib.Version(),
		}},
		Pairs:   s.drainPairStats(),
		Version: s.group.Version,
	}
	s.lastAdvertisedVersion = s.lfib.Version()
	if s.IsDesignated() {
		s.handleMemberReport(s.cfg.ID, report)
		return
	}
	if s.group.Designated != model.NoSwitch {
		s.env.Send(s.group.Designated, report)
	}
}

func (s *Switch) drainPairStats() []openflow.PairStat {
	if len(s.pairFlows) == 0 {
		return nil
	}
	out := make([]openflow.PairStat, 0, len(s.pairFlows))
	for other, n := range s.pairFlows {
		out = append(out, openflow.PairStat{A: s.cfg.ID, B: other, NewFlows: n})
	}
	s.pairFlows = make(map[model.SwitchID]uint32)
	return out
}

// handleMemberReport records a member's advertisement (designated
// switch only).
func (s *Switch) handleMemberReport(from model.SwitchID, m *openflow.StateReport) {
	if !s.IsDesignated() || m.Group != s.group.Group {
		return
	}
	for i := range m.LFIBs {
		u := &m.LFIBs[i]
		s.memberLFIBs[u.Origin] = u.Entries
		s.memberLFIBVersions[u.Origin] = u.Version
	}
	for _, p := range m.Pairs {
		s.memberPairs[model.MakeSwitchPair(p.A, p.B)] += p.NewFlows
	}
}

// refreshOwnSnapshot folds the designated switch's own L-FIB into the
// aggregation state, re-materializing the wire snapshot only when the
// L-FIB actually changed.
func (s *Switch) refreshOwnSnapshot() {
	v := s.lfib.Version()
	if s.memberLFIBs[s.cfg.ID] == nil || s.memberLFIBVersions[s.cfg.ID] != v {
		s.memberLFIBs[s.cfg.ID] = s.lfib.WireEntries()
		s.memberLFIBVersions[s.cfg.ID] = v
	}
}

// changedMembers yields every member whose aggregated L-FIB snapshot
// must be included this round — its advertised version moved past what
// the given sent-map recorded, or full is set (anti-entropy refresh) —
// and records the yielded version in the sent-map. The gate is shared
// by G-FIB dissemination and controller reporting so the two delta
// paths cannot diverge.
func (s *Switch) changedMembers(sent map[model.SwitchID]uint64, full bool, yield func(member model.SwitchID, entries []openflow.LFIBEntry, v uint64)) {
	for _, member := range s.group.Members {
		entries, ok := s.memberLFIBs[member]
		if !ok {
			continue
		}
		v := s.memberLFIBVersions[member]
		if prev, seen := sent[member]; !full && seen && prev == v {
			continue // unchanged since the last round
		}
		yield(member, entries, v)
		sent[member] = v
	}
}

// refreshEveryRounds is the anti-entropy cadence of the delta
// dissemination/report paths: deltas assume the previous send arrived,
// which a down link or a not-yet-configured receiver can violate, so
// every Nth round resends full state. Staleness after a lost delta is
// therefore bounded by N×interval (5 min at the 30 s default) instead
// of "until the origin's L-FIB next changes".
const refreshEveryRounds = 10

// disseminateGFIB rebuilds the group's Bloom filters from member L-FIBs
// and sends them to every member over peer links (multiple unicasts —
// no native multicast assumed, §III-B3). Dissemination is incremental:
// a member's filter is rebuilt and resent only when its advertised
// L-FIB version moved, and a round with no changed filters sends
// nothing — in steady state (hosts don't move) the periodic cost drops
// to a version comparison per member, with a full refresh every
// refreshEveryRounds rounds.
func (s *Switch) disseminateGFIB() {
	if !s.IsDesignated() {
		return
	}
	// Own L-FIB participates too.
	s.refreshOwnSnapshot()

	s.gfibRound++
	update := &openflow.GFIBUpdate{Group: s.group.Group, Version: s.group.Version}
	s.changedMembers(s.gfibSent, s.gfibRound%refreshEveryRounds == 0, func(member model.SwitchID, entries []openflow.LFIBEntry, _ uint64) {
		f := filterFromEntries(entries, s.cfg.FilterBits, s.cfg.FilterHashes)
		data, err := f.MarshalBinary()
		if err != nil {
			return // cannot happen with valid geometry
		}
		update.Filters = append(update.Filters, openflow.GFIBFilter{Switch: member, Filter: data})
	})
	if len(update.Filters) == 0 {
		return
	}
	for _, member := range s.group.Members {
		if member == s.cfg.ID {
			s.handleGFIBUpdate(update)
			continue
		}
		s.env.Send(member, update)
	}
}

// reportToController implements the state-reporting module of the
// designated switch: the aggregated L-FIBs and pair statistics go to
// the controller over the state link.
func (s *Switch) reportToController() {
	if !s.IsDesignated() {
		return
	}
	s.refreshOwnSnapshot()
	s.ctrlRound++
	report := &openflow.StateReport{Group: s.group.Group, Version: s.group.Version}
	// The report itself goes out every interval (it is the state link's
	// liveness and carries the pair statistics), but an L-FIB snapshot is
	// attached only when its version moved since the last report — the
	// controller already holds the unchanged ones. Every
	// refreshEveryRounds-th report is full, bounding staleness after a
	// report lost on a failing control link.
	s.changedMembers(s.ctrlSent, s.ctrlRound%refreshEveryRounds == 0, func(member model.SwitchID, entries []openflow.LFIBEntry, v uint64) {
		report.LFIBs = append(report.LFIBs, openflow.LFIBUpdate{
			Origin:  member,
			Full:    true,
			Entries: entries,
			Version: v,
		})
	})
	for pair, n := range s.memberPairs {
		report.Pairs = append(report.Pairs, openflow.PairStat{A: pair.A, B: pair.B, NewFlows: n})
	}
	s.memberPairs = make(map[model.SwitchPair]uint32)
	s.sendCtrl(report)
}

// handleGFIBUpdate rebuilds the G-FIB from disseminated filters (FIB
// maintenance module). The filter for this switch itself is skipped —
// the L-FIB answers local questions.
func (s *Switch) handleGFIBUpdate(m *openflow.GFIBUpdate) {
	if !s.haveGroup || m.Group != s.group.Group {
		return
	}
	for _, f := range m.Filters {
		if f.Switch == s.cfg.ID {
			continue
		}
		// Ignore undecodable filters; the next round repairs them.
		_ = s.gfib.SetFilterBytes(f.Switch, f.Filter)
	}
}

// handleLFIBUpdate merges a peer's incremental L-FIB push (used by the
// controller when preloading state after regrouping).
func (s *Switch) handleLFIBUpdate(from model.SwitchID, m *openflow.LFIBUpdate) {
	if !s.haveGroup {
		return
	}
	// Build a filter from the update and install it for the origin.
	f := filterFromEntriesWire(m.Entries, s.cfg.FilterBits, s.cfg.FilterHashes)
	if m.Origin != s.cfg.ID {
		s.gfib.SetFilter(m.Origin, f)
	}
}

// handleARPRelay processes a controller-relayed ARP query (§III-D3
// level iii). The designated switch fans the query out to group members;
// every switch owning the target answers the controller directly with
// its binding (standing in for the host's ARP reply, which the
// controller observes).
func (s *Switch) handleARPRelay(m *openflow.ARPRelay) {
	if s.answerARP(&m.Packet) {
		return
	}
	if s.IsDesignated() {
		for _, member := range s.group.Members {
			if member != s.cfg.ID {
				s.env.Send(member, m)
			}
		}
	}
}

// answerARP responds to an ARP query if a local host owns the target.
func (s *Switch) answerARP(p *model.Packet) bool {
	e := s.lfib.LookupIP(p.ARPTarget)
	if e == nil {
		return false
	}
	s.sendCtrl(&openflow.LFIBUpdate{
		Origin:  s.cfg.ID,
		Entries: []openflow.LFIBEntry{{MAC: e.MAC, IP: e.IP, VLAN: e.VLAN}},
		Version: s.lfib.Version(),
	})
	return true
}

func (s *Switch) statsReply() *openflow.StatsReply {
	return &openflow.StatsReply{
		Switch:       s.cfg.ID,
		FlowCount:    uint32(s.flows.len()),
		PacketsSeen:  s.stats.PacketsSeen,
		BytesSeen:    s.stats.BytesSeen,
		LFIBEntries:  uint32(s.lfib.Len()),
		GFIBFilters:  uint32(s.gfib.Len()),
		GFIBBytes:    uint64(s.gfib.SizeBytes()),
		EncapPackets: s.stats.EncapSent,
	}
}
