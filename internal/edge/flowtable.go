// Package edge implements the LazyCtrl edge switch (§IV-A): the fast
// path (flow table → L-FIB → Bloom-filter G-FIB → encapsulation,
// exactly the routine of Fig. 5) and the slow-path modules of the
// modified Open vSwitch — Ctrl-IF, state advertisement, FIB
// maintenance, and state reporting (active on the designated switch).
package edge

import (
	"time"

	"lazyctrl/internal/model"
	"lazyctrl/internal/openflow"
)

// flowRule is an installed flow-table entry.
type flowRule struct {
	match       openflow.Match
	priority    uint16
	actions     []openflow.Action
	idleTimeout time.Duration
	hardTimeout time.Duration
	installedAt time.Duration
	lastHit     time.Duration
	packets     uint64
	bytes       uint64
}

func (r *flowRule) expired(now time.Duration) bool {
	if r.hardTimeout > 0 && now-r.installedAt > r.hardTimeout {
		return true
	}
	if r.idleTimeout > 0 && now-r.lastHit > r.idleTimeout {
		return true
	}
	return false
}

// exactKey indexes the common LazyCtrl rule shape: exact (dstMAC, VLAN)
// with everything else wildcarded.
type exactKey struct {
	dst  model.MAC
	vlan model.VLAN
}

// flowTable holds a switch's OpenFlow rules: a hash index for exact-dst
// rules plus an ordered scan list for arbitrary matches.
type flowTable struct {
	exact    map[exactKey]*flowRule
	wildcard []*flowRule
}

func newFlowTable() *flowTable {
	return &flowTable{exact: make(map[exactKey]*flowRule)}
}

func isExactDst(m openflow.Match) (exactKey, bool) {
	want := openflow.WildcardAll &^ (openflow.WildcardDstMAC | openflow.WildcardVLAN)
	if m.Wildcards == want {
		return exactKey{dst: m.DstMAC, vlan: m.VLAN}, true
	}
	return exactKey{}, false
}

// install adds or replaces a rule.
func (t *flowTable) install(r *flowRule) {
	if key, ok := isExactDst(r.match); ok {
		t.exact[key] = r
		return
	}
	for i, old := range t.wildcard {
		if old.match == r.match {
			t.wildcard[i] = r
			return
		}
	}
	t.wildcard = append(t.wildcard, r)
}

// remove deletes rules matching the given match exactly.
func (t *flowTable) remove(m openflow.Match) {
	if key, ok := isExactDst(m); ok {
		delete(t.exact, key)
		return
	}
	keep := t.wildcard[:0]
	for _, r := range t.wildcard {
		if r.match != m {
			keep = append(keep, r)
		}
	}
	t.wildcard = keep
}

// lookup returns the highest-priority live rule matching p, evicting
// expired rules it encounters.
func (t *flowTable) lookup(p *model.Packet, now time.Duration) *flowRule {
	var best *flowRule
	if r, ok := t.exact[exactKey{dst: p.DstMAC, vlan: p.VLAN}]; ok {
		if r.expired(now) {
			delete(t.exact, exactKey{dst: p.DstMAC, vlan: p.VLAN})
		} else {
			best = r
		}
	}
	keep := t.wildcard[:0]
	for _, r := range t.wildcard {
		if r.expired(now) {
			continue
		}
		keep = append(keep, r)
		if r.match.Matches(p) && (best == nil || r.priority > best.priority) {
			best = r
		}
	}
	t.wildcard = keep
	if best != nil {
		best.lastHit = now
		best.packets++
		best.bytes += uint64(p.Bytes)
	}
	return best
}

// len returns the number of live rules (including not-yet-evicted
// expired ones).
func (t *flowTable) len() int { return len(t.exact) + len(t.wildcard) }
