package edge

import (
	"time"

	"lazyctrl/internal/bloom"
	"lazyctrl/internal/failover"
	"lazyctrl/internal/fib"
	"lazyctrl/internal/model"
	"lazyctrl/internal/openflow"
)

// sendKeepAlives emits the wheel heartbeats: one to each ring neighbor
// (the Sn→Sn−1 and Sn→Sn+1 streams of Table I).
func (s *Switch) sendKeepAlives() {
	if !s.haveGroup {
		return
	}
	s.kaSeq++
	ka := &openflow.KeepAlive{From: s.cfg.ID, Seq: s.kaSeq}
	if s.group.RingPrev != model.NoSwitch && s.group.RingPrev != s.cfg.ID {
		s.env.Send(s.group.RingPrev, ka)
	}
	if s.group.RingNext != model.NoSwitch && s.group.RingNext != s.cfg.ID {
		s.env.Send(s.group.RingNext, ka)
	}
}

// handleKeepAlive records heartbeats from ring neighbors and from the
// controller. Controller heartbeats are fenced first — a demoted
// master's beacon must not rearm freshness — then acknowledged to the
// replica that sent them so it can detect control-link loss, but only
// the followed master's beacon counts as controller liveness. A
// designated switch that evicted a member on peer evidence treats the
// member's resumed heartbeat as the false-alarm signal and re-sends it
// its group view: handleGroupConfig resets the member's advertisement
// state, so its next advertisement is a full snapshot that rebuilds
// the dropped aggregation and filter state.
func (s *Switch) handleKeepAlive(from model.SwitchID, m *openflow.KeepAlive) {
	if model.IsControllerAddr(m.From) {
		if s.fenced(m.Generation, m.From) {
			return
		}
		if m.From == s.master {
			s.ctrlKASeen = true
			s.ctrlLastKA = s.env.Now()
			s.exitDegraded()
		}
		s.env.Send(m.From, &openflow.KeepAlive{From: s.cfg.ID, Seq: m.Seq})
		return
	}
	s.lastFrom[m.From] = s.env.Now()
	delete(s.reported, m.From)
	if s.IsDesignated() && s.evictedMembers[m.From] {
		s.resyncMember(m.From)
	}
	_ = from
}

// resyncMember re-sends a member its group view (with its ring
// neighbors recomputed), which resets the member's advertisement state
// so its next advertisement is a full bootstrap snapshot. Used by the
// false-alarm unwind (resumed keep-alive after a peer-evidence
// eviction) and by the idle-beacon mismatch path.
func (s *Switch) resyncMember(member model.SwitchID) {
	if member == s.cfg.ID {
		return
	}
	delete(s.evictedMembers, member)
	cfg := s.group
	cfg.RingPrev, cfg.RingNext = failover.Neighbors(failover.BuildWheel(cfg.Members), member)
	s.env.Send(member, &cfg)
}

// checkKeepAlives detects silent ring neighbors and reports them to the
// controller (§III-E1). The direction encodes which Table I stream went
// missing: a silent successor means its Sn→Sn−1 stream stopped (we are
// its ring predecessor); a silent predecessor means its Sn→Sn+1 stream
// stopped.
func (s *Switch) checkKeepAlives() {
	if !s.haveGroup || s.group.KeepAliveInterval <= 0 {
		return
	}
	now := s.env.Now()
	deadline := time.Duration(s.cfg.KeepAliveMisses) * s.group.KeepAliveInterval
	check := func(neighbor model.SwitchID, dir openflow.LossDirection) {
		if neighbor == model.NoSwitch || neighbor == s.cfg.ID || s.reported[neighbor] {
			return
		}
		last, seen := s.lastFrom[neighbor]
		if !seen {
			// Grace period: neighbor has never spoken; give it a full
			// deadline from group configuration.
			s.lastFrom[neighbor] = now
			return
		}
		// A neighbor whose heartbeat rounds were folded is implicitly
		// heard through the credited boundary: rounds are only credited
		// while the underlay was fault-free, so genuine silence (which
		// begins with a fault) is never masked.
		if h := s.cfg.Fold; h != nil && h.PeerKACreditedThrough != nil {
			if ct := h.PeerKACreditedThrough(neighbor); ct > last {
				last = ct
			}
		}
		if now-last >= deadline {
			s.reported[neighbor] = true
			s.sendCtrl(&openflow.FailureReport{
				Observer:  s.cfg.ID,
				Suspect:   neighbor,
				Direction: dir,
				MissedSeq: s.kaSeq,
			})
			s.evictSuspect(neighbor)
		}
	}
	check(s.group.RingNext, openflow.LossUp)
	check(s.group.RingPrev, openflow.LossDown)
}

// evictSuspect invalidates local state pointing at a group member this
// switch just reported lost, without waiting for the controller's
// diagnosis window to close: the preloaded G-FIB filter is dropped (so
// new flows toward the suspect's hosts escalate to the controller
// instead of encapping into a black hole), and a designated switch
// also drops the suspect from its aggregation and delta-tracking state
// so dissemination and reports stop carrying a dead member's L-FIB —
// and broadcasts a filter tombstone so non-neighbor members (who never
// see the missed heartbeats) evict too, instead of holding the dead
// member's filter until the next membership change. A false alarm
// self-heals: the suspect's resumed keep-alive re-sends it its group
// view, its bootstrap advertisement repopulates the aggregation state,
// and the version gate re-disseminates its filter to everyone.
func (s *Switch) evictSuspect(suspect model.SwitchID) {
	if _, held := s.gfib.PeerVersion(suspect); held {
		s.gfib.RemoveFilter(suspect)
		s.stats.PeerFiltersEvicted++
	}
	if s.IsDesignated() {
		s.dropMemberAggregation(suspect)
		s.broadcastFilterRemoval(suspect)
	}
}

// dropMemberAggregation forgets a member's aggregated L-FIB snapshot
// and delta-tracking state (designated switch only) and marks it for
// the false-alarm unwind.
func (s *Switch) dropMemberAggregation(suspect model.SwitchID) {
	delete(s.memberLFIBs, suspect)
	delete(s.memberLFIBVersions, suspect)
	delete(s.gfibSent, suspect)
	delete(s.ctrlSent, suspect)
	delete(s.gfibPrev, suspect)
	s.evictedMembers[suspect] = true
	// Pending evictions keep dissemination/report rounds real.
	wakeTask(s.dissemTask)
	wakeTask(s.reportTask)
}

// broadcastFilterRemoval ships the G-FIB tombstone for a lost member
// to every other group member.
func (s *Switch) broadcastFilterRemoval(suspect model.SwitchID) {
	tomb := &openflow.GFIBDelta{
		Group:    s.group.Group,
		Removals: []model.SwitchID{suspect},
		Version:  s.group.Version,
	}
	for _, member := range s.group.Members {
		if member == s.cfg.ID || member == suspect {
			continue
		}
		s.stats.GFIBRemovalsSent++
		s.env.Send(member, tomb)
	}
}

// filterFromEntries builds a Bloom filter over wire L-FIB entries.
func filterFromEntries(entries []openflow.LFIBEntry, bits uint64, hashes uint32) *bloom.Filter {
	f := bloom.New(bits, hashes)
	for _, e := range entries {
		f.AddUint64(fib.MACKey(e.MAC))
		f.AddUint64(fib.IPKey(e.IP))
	}
	return f
}

func filterFromEntriesWire(entries []openflow.LFIBEntry, bits uint64, hashes uint32) *bloom.Filter {
	return filterFromEntries(entries, bits, hashes)
}
