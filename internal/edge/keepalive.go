package edge

import (
	"time"

	"lazyctrl/internal/bloom"
	"lazyctrl/internal/fib"
	"lazyctrl/internal/model"
	"lazyctrl/internal/openflow"
)

// sendKeepAlives emits the wheel heartbeats: one to each ring neighbor
// (the Sn→Sn−1 and Sn→Sn+1 streams of Table I).
func (s *Switch) sendKeepAlives() {
	if !s.haveGroup {
		return
	}
	s.kaSeq++
	ka := &openflow.KeepAlive{From: s.cfg.ID, Seq: s.kaSeq}
	if s.group.RingPrev != model.NoSwitch && s.group.RingPrev != s.cfg.ID {
		s.env.Send(s.group.RingPrev, ka)
	}
	if s.group.RingNext != model.NoSwitch && s.group.RingNext != s.cfg.ID {
		s.env.Send(s.group.RingNext, ka)
	}
}

// handleKeepAlive records heartbeats from ring neighbors and from the
// controller. Controller heartbeats are acknowledged so the controller
// can detect control-link loss.
func (s *Switch) handleKeepAlive(from model.SwitchID, m *openflow.KeepAlive) {
	s.lastFrom[m.From] = s.env.Now()
	delete(s.reported, m.From)
	if m.From == model.ControllerNode {
		s.env.Send(model.ControllerNode, &openflow.KeepAlive{From: s.cfg.ID, Seq: m.Seq})
	}
	_ = from
}

// checkKeepAlives detects silent ring neighbors and reports them to the
// controller (§III-E1). The direction encodes which Table I stream went
// missing: a silent successor means its Sn→Sn−1 stream stopped (we are
// its ring predecessor); a silent predecessor means its Sn→Sn+1 stream
// stopped.
func (s *Switch) checkKeepAlives() {
	if !s.haveGroup || s.group.KeepAliveInterval <= 0 {
		return
	}
	now := s.env.Now()
	deadline := time.Duration(s.cfg.KeepAliveMisses) * s.group.KeepAliveInterval
	check := func(neighbor model.SwitchID, dir openflow.LossDirection) {
		if neighbor == model.NoSwitch || neighbor == s.cfg.ID || s.reported[neighbor] {
			return
		}
		last, seen := s.lastFrom[neighbor]
		if !seen {
			// Grace period: neighbor has never spoken; give it a full
			// deadline from group configuration.
			s.lastFrom[neighbor] = now
			return
		}
		if now-last >= deadline {
			s.reported[neighbor] = true
			s.sendCtrl(&openflow.FailureReport{
				Observer:  s.cfg.ID,
				Suspect:   neighbor,
				Direction: dir,
				MissedSeq: s.kaSeq,
			})
		}
	}
	check(s.group.RingNext, openflow.LossUp)
	check(s.group.RingPrev, openflow.LossDown)
}

// filterFromEntries builds a Bloom filter over wire L-FIB entries.
func filterFromEntries(entries []openflow.LFIBEntry, bits uint64, hashes uint32) *bloom.Filter {
	f := bloom.New(bits, hashes)
	for _, e := range entries {
		f.AddUint64(fib.MACKey(e.MAC))
		f.AddUint64(fib.IPKey(e.IP))
	}
	return f
}

func filterFromEntriesWire(entries []openflow.LFIBEntry, bits uint64, hashes uint32) *bloom.Filter {
	return filterFromEntries(entries, bits, hashes)
}
