package edge

import (
	"testing"
	"time"

	"lazyctrl/internal/model"
	"lazyctrl/internal/openflow"
)

func rule(match openflow.Match, prio uint16, idle time.Duration, actions ...openflow.Action) *flowRule {
	return &flowRule{
		match:       match,
		priority:    prio,
		actions:     actions,
		idleTimeout: idle,
	}
}

func TestFlowTableExactLookup(t *testing.T) {
	ft := newFlowTable()
	m := openflow.ExactDst(model.HostMAC(1), 5)
	ft.install(rule(m, 10, time.Minute, openflow.Encap(2)))
	p := &model.Packet{DstMAC: model.HostMAC(1), VLAN: 5}
	r := ft.lookup(p, 0)
	if r == nil || r.actions[0].Remote != 2 {
		t.Fatalf("lookup = %+v", r)
	}
	// VLAN mismatch misses.
	p2 := &model.Packet{DstMAC: model.HostMAC(1), VLAN: 6}
	if ft.lookup(p2, 0) != nil {
		t.Error("VLAN mismatch matched exact rule")
	}
}

func TestFlowTableWildcardPriority(t *testing.T) {
	ft := newFlowTable()
	all := openflow.Match{Wildcards: openflow.WildcardAll}
	srcOnly := openflow.Match{
		Wildcards: openflow.WildcardAll &^ openflow.WildcardSrcMAC,
		SrcMAC:    model.HostMAC(7),
	}
	ft.install(rule(all, 1, 0, openflow.Drop()))
	ft.install(rule(srcOnly, 50, 0, openflow.Output(3)))

	p := &model.Packet{SrcMAC: model.HostMAC(7)}
	r := ft.lookup(p, 0)
	if r == nil || r.actions[0].Type != openflow.ActionTypeOutput {
		t.Fatalf("high-priority wildcard not selected: %+v", r)
	}
	other := &model.Packet{SrcMAC: model.HostMAC(8)}
	r = ft.lookup(other, 0)
	if r == nil || r.actions[0].Type != openflow.ActionTypeDrop {
		t.Fatalf("catch-all not selected: %+v", r)
	}
}

func TestFlowTableExactBeatsWildcardOnPriority(t *testing.T) {
	ft := newFlowTable()
	exact := openflow.ExactDst(model.HostMAC(1), 1)
	all := openflow.Match{Wildcards: openflow.WildcardAll}
	ft.install(rule(exact, 10, 0, openflow.Encap(9)))
	ft.install(rule(all, 99, 0, openflow.Drop()))
	p := &model.Packet{DstMAC: model.HostMAC(1), VLAN: 1}
	r := ft.lookup(p, 0)
	if r == nil || r.actions[0].Type != openflow.ActionTypeDrop {
		t.Fatalf("priority ordering violated: %+v", r)
	}
}

func TestFlowTableReplaceAndRemove(t *testing.T) {
	ft := newFlowTable()
	m := openflow.ExactDst(model.HostMAC(1), 1)
	ft.install(rule(m, 10, 0, openflow.Encap(2)))
	ft.install(rule(m, 10, 0, openflow.Encap(3))) // replace
	if ft.len() != 1 {
		t.Fatalf("len = %d after replace, want 1", ft.len())
	}
	p := &model.Packet{DstMAC: model.HostMAC(1), VLAN: 1}
	if r := ft.lookup(p, 0); r == nil || r.actions[0].Remote != 3 {
		t.Fatalf("replacement not effective: %+v", r)
	}
	ft.remove(m)
	if ft.lookup(p, 0) != nil {
		t.Error("rule survives remove")
	}

	// Wildcard replace and remove.
	w := openflow.Match{Wildcards: openflow.WildcardAll &^ openflow.WildcardEther, Ether: model.EtherTypeARP}
	ft.install(rule(w, 5, 0, openflow.ToController()))
	ft.install(rule(w, 7, 0, openflow.Drop()))
	if ft.len() != 1 {
		t.Fatalf("wildcard replace duplicated: len=%d", ft.len())
	}
	ft.remove(w)
	if ft.len() != 0 {
		t.Error("wildcard rule survives remove")
	}
}

func TestFlowTableTimeouts(t *testing.T) {
	ft := newFlowTable()
	idle := rule(openflow.ExactDst(model.HostMAC(1), 1), 10, time.Second, openflow.Encap(2))
	idle.installedAt = 0
	idle.lastHit = 0
	ft.install(idle)
	hard := rule(openflow.Match{Wildcards: openflow.WildcardAll}, 1, 0, openflow.Drop())
	hard.hardTimeout = 3 * time.Second
	ft.install(hard)

	p := &model.Packet{DstMAC: model.HostMAC(1), VLAN: 1}
	// Keep the idle rule warm by hitting it.
	if ft.lookup(p, 500*time.Millisecond) == nil {
		t.Fatal("warm rule missed")
	}
	if r := ft.lookup(p, 1200*time.Millisecond); r == nil {
		t.Fatal("refreshed idle rule expired prematurely")
	}
	// Let it idle out.
	other := &model.Packet{DstMAC: model.HostMAC(9), VLAN: 1}
	if r := ft.lookup(other, 2500*time.Millisecond); r == nil || r.actions[0].Type != openflow.ActionTypeDrop {
		t.Fatal("catch-all missing before hard timeout")
	}
	if r := ft.lookup(p, 3*time.Second); r != nil && r.actions[0].Type == openflow.ActionTypeEncap {
		t.Error("idle rule not expired")
	}
	// Hard timeout kills the catch-all regardless of hits.
	if r := ft.lookup(other, 4*time.Second); r != nil {
		t.Errorf("hard-timeout rule still alive: %+v", r)
	}
}

func TestFlowTableHitCounters(t *testing.T) {
	ft := newFlowTable()
	m := openflow.ExactDst(model.HostMAC(1), 1)
	r := rule(m, 10, 0, openflow.Encap(2))
	ft.install(r)
	p := &model.Packet{DstMAC: model.HostMAC(1), VLAN: 1, Bytes: 500}
	ft.lookup(p, 0)
	ft.lookup(p, time.Second)
	if r.packets != 2 || r.bytes != 1000 {
		t.Errorf("counters = %d pkts %d bytes, want 2/1000", r.packets, r.bytes)
	}
	if r.lastHit != time.Second {
		t.Errorf("lastHit = %v, want 1s", r.lastHit)
	}
}
