package edge

import (
	"sort"
	"time"

	"lazyctrl/internal/model"
	"lazyctrl/internal/openflow"
)

// This file implements the edge side of replicated-controller failover
// (see docs/robustness.md): every controller-issued push carries the
// sender's cluster generation, the switch tracks the highest generation
// it has observed and which controller address owns it, and anything
// fenced behind that high-water mark is rejected — a partitioned-then-
// healed stale master cannot roll the fabric back. On a master change
// the switch also re-flushes no-match escalations the dead primary
// never answered, so the flows behind them do not stay black-holed
// until a host retry.

// Master returns the controller address this switch currently follows
// (the target of escalations, reports, and acks).
func (s *Switch) Master() model.SwitchID { return s.master }

// CtrlGeneration returns the highest cluster generation this switch
// has observed (0 until a generation-stamped controller has spoken).
func (s *Switch) CtrlGeneration() uint64 { return s.ctrlGen }

// adoptGeneration folds an observed cluster generation into the
// switch: generations only move up, and a higher generation announced
// by a controller address makes that address the master. The
// keep-alive baseline restarts (the new master gets a full deadline
// before the switch degrades, exactly the grace a fresh neighbor
// gets), an open degraded window closes (a controller spoke), and on
// an actual master change the pending-escalation residue re-flushes.
func (s *Switch) adoptGeneration(gen uint64, from model.SwitchID) {
	if gen <= s.ctrlGen {
		return
	}
	s.ctrlGen = gen
	if !model.IsControllerAddr(from) {
		return
	}
	changed := s.master != from
	s.master = from
	s.ctrlKASeen = true
	s.ctrlLastKA = s.env.Now()
	s.exitDegraded()
	if changed {
		s.reflushEscalations()
	}
}

// fenced applies the generation fence to one message: generation 0 is
// unfenced (wheel and designated-switch traffic carries none), an
// equal-or-higher generation passes (a higher one is adopted first),
// and a lower one is rejected. A fenced controller sender gets a
// corrective RoleAnnounce naming the master this switch follows, so a
// stale master partitioned from its peer replica still learns of its
// demotion from the fabric itself.
func (s *Switch) fenced(gen uint64, from model.SwitchID) bool {
	if gen == 0 {
		return false
	}
	if gen >= s.ctrlGen {
		s.adoptGeneration(gen, from)
		return false
	}
	s.stats.StaleGenRejected++
	if model.IsControllerAddr(from) {
		s.env.Send(from, &openflow.RoleAnnounce{From: s.master, Generation: s.ctrlGen})
	}
	return true
}

// escKey identifies an escalated flow by its endpoint MAC pair.
type escKey struct{ src, dst uint64 }

// escRecord is one pending (unanswered) no-match escalation.
type escRecord struct {
	pkt model.Packet
	at  time.Duration
}

// escalationTTL bounds how long an unanswered escalation stays
// pending: duplicates for the same flow are suppressed inside the
// window, and a master change re-flushes only the unexpired residue.
// Sized to cover the takeover detection window (TakeoverMisses
// heartbeat intervals) with slack.
const escalationTTL = 10 * time.Second

// noteEscalation records a no-match escalation about to be sent and
// reports whether it duplicates one already pending — the controller
// holds the original, and re-sending would double its work (and,
// across a failover, race the old master's answer with the new
// master's). Only called with TrackEscalations.
func (s *Switch) noteEscalation(p *model.Packet) bool {
	key := escKey{p.SrcMAC.Uint64(), p.DstMAC.Uint64()}
	now := s.env.Now()
	if rec, ok := s.escPending[key]; ok && now-rec.at < escalationTTL {
		s.stats.DupEscalationsSuppressed++
		return true
	}
	if s.escPending == nil {
		s.escPending = make(map[escKey]escRecord)
	}
	s.escPending[key] = escRecord{pkt: *p, at: now}
	return false
}

// clearEscalation drops the pending record for a flow the controller
// answered (its PacketOut carries the escalated packet back).
func (s *Switch) clearEscalation(p *model.Packet) {
	if s.escPending == nil {
		return
	}
	delete(s.escPending, escKey{p.SrcMAC.Uint64(), p.DstMAC.Uint64()})
}

// reflushEscalations re-sends every unexpired pending escalation to
// the newly adopted master, in deterministic key order: escalations in
// flight to the dead primary died with it.
func (s *Switch) reflushEscalations() {
	if len(s.escPending) == 0 {
		return
	}
	now := s.env.Now()
	keys := make([]escKey, 0, len(s.escPending))
	for k := range s.escPending {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].src != keys[j].src {
			return keys[i].src < keys[j].src
		}
		return keys[i].dst < keys[j].dst
	})
	for _, k := range keys {
		rec := s.escPending[k]
		if now-rec.at >= escalationTTL {
			delete(s.escPending, k)
			continue
		}
		s.stats.EscalationsReflushed++
		pkt := rec.pkt
		s.sendCtrl(&openflow.PacketIn{Switch: s.cfg.ID, Reason: openflow.ReasonNoMatch, Packet: pkt})
	}
}
