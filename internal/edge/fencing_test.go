package edge

import (
	"testing"
	"time"

	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/openflow"
	"lazyctrl/internal/sim"
)

// nodeRecorder records messages delivered to an arbitrary node address
// (the standby replica in these tests).
type nodeRecorder struct {
	id  model.SwitchID
	got []netsim.Message
}

func (n *nodeRecorder) NodeID() model.SwitchID { return n.id }
func (n *nodeRecorder) HandleMessage(from model.SwitchID, msg netsim.Message) {
	if netsim.HandleTimer(msg) {
		return
	}
	n.got = append(n.got, msg)
}

func (n *nodeRecorder) packetIns() []*openflow.PacketIn {
	var out []*openflow.PacketIn
	for _, m := range n.got {
		if pi, ok := m.(*openflow.PacketIn); ok {
			out = append(out, pi)
		}
	}
	return out
}

// TestStaleGenerationBatchNoPartialApply is the fencing regression for
// coalesced pushes: a Batch fenced behind the switch's highest-seen
// generation must be rejected before any sub-message applies — a
// half-applied batch (new group config, old preload, or vice versa)
// would be worse than either generation's consistent state.
func TestStaleGenerationBatchNoPartialApply(t *testing.T) {
	r := newRig(t, 1, 2)
	r.configureGroup(1, 1, 1, 2)

	// The standby took over at generation 2.
	r.switches[1].HandleMessage(model.StandbyNode,
		&openflow.RoleAnnounce{From: model.StandbyNode, Generation: 2})
	if got := r.switches[1].CtrlGeneration(); got != 2 {
		t.Fatalf("generation after RoleAnnounce = %d, want 2", got)
	}
	if got := r.switches[1].Master(); got != model.StandbyNode {
		t.Fatalf("master after RoleAnnounce = %v, want standby", got)
	}

	// A stale master's coalesced push: config bump + peer preload, both
	// stamped with the superseded generation 1.
	stale := &openflow.Batch{Generation: 1, Msgs: []openflow.Message{
		&openflow.GroupConfig{
			Group:             1,
			Members:           []model.SwitchID{1, 2},
			Designated:        2,
			RingPrev:          2,
			RingNext:          2,
			SyncInterval:      5 * time.Second,
			KeepAliveInterval: time.Second,
			Version:           9,
		},
		&openflow.LFIBUpdate{
			Origin:  2,
			Full:    true,
			Entries: []openflow.LFIBEntry{{MAC: model.HostMAC(20), IP: model.HostIP(20), VLAN: 1}},
			Version: 9,
		},
	}}
	r.switches[1].HandleMessage(model.ControllerNode, stale)

	if got := r.switches[1].Group().Version; got != 1 {
		t.Errorf("stale batch applied its GroupConfig: version = %d, want 1", got)
	}
	if got := r.switches[1].GFIB().Len(); got != 0 {
		t.Errorf("stale batch applied its preload: %d G-FIB filters, want 0", got)
	}
	if got := r.switches[1].Stats().StaleGenRejected; got != 1 {
		t.Errorf("StaleGenRejected = %d, want 1 (the batch, fenced once, wholesale)", got)
	}
	// The fence answers the stale sender with a corrective RoleAnnounce
	// naming the real master and generation.
	r.sim.RunFor(10 * time.Millisecond)
	var corrective *openflow.RoleAnnounce
	for _, m := range r.ctrl.got {
		if ra, ok := m.(*openflow.RoleAnnounce); ok {
			corrective = ra
		}
	}
	if corrective == nil {
		t.Fatal("no corrective RoleAnnounce reached the stale master")
	}
	if corrective.From != model.StandbyNode || corrective.Generation != 2 {
		t.Errorf("corrective RoleAnnounce = {From: %v, Generation: %d}, want {standby, 2}",
			corrective.From, corrective.Generation)
	}

	// The same batch under the current generation applies normally.
	current := &openflow.Batch{Generation: 2, Msgs: stale.Msgs}
	r.switches[1].HandleMessage(model.StandbyNode, current)
	if got := r.switches[1].Group().Version; got != 9 {
		t.Errorf("current-generation batch not applied: version = %d, want 9", got)
	}
	if got := r.switches[1].GFIB().Len(); got != 1 {
		t.Errorf("current-generation preload not applied: %d filters, want 1", got)
	}
}

// TestEscalationDedupAndReflush covers the failover escalation
// contract: with TrackEscalations on, a flow's repeat no-match packets
// do not re-escalate while the first PacketIn is in flight, a takeover
// re-flushes the pending escalations to the announced master, and a
// PacketOut resolution reopens the pair.
func TestEscalationDedupAndReflush(t *testing.T) {
	s := sim.New(1)
	n := netsim.New(s, netsim.DefaultLatencies())
	ctrl := &nodeRecorder{id: model.ControllerNode}
	standby := &nodeRecorder{id: model.StandbyNode}
	n.Attach(ctrl)
	n.Attach(standby)
	sw := New(Config{ID: 1, TrackEscalations: true}, n.Env(1))
	n.Attach(sw)
	sw.Start()
	sw.AttachHost(model.HostMAC(10), model.HostIP(10), 1)

	// Two no-match packets for the same pair: one escalation.
	sw.InjectLocal(pkt(10, 20, 0))
	sw.InjectLocal(pkt(10, 20, 1))
	s.RunFor(10 * time.Millisecond)
	if got := len(ctrl.packetIns()); got != 1 {
		t.Fatalf("%d PacketIns escalated, want 1 (dedup)", got)
	}
	if got := sw.Stats().DupEscalationsSuppressed; got != 1 {
		t.Errorf("DupEscalationsSuppressed = %d, want 1", got)
	}

	// Takeover: the pending escalation is re-flushed to the new master
	// (the old master may have died holding it).
	sw.HandleMessage(model.StandbyNode,
		&openflow.RoleAnnounce{From: model.StandbyNode, Generation: 2})
	s.RunFor(10 * time.Millisecond)
	if got := len(standby.packetIns()); got != 1 {
		t.Fatalf("%d PacketIns re-flushed to the new master, want 1", got)
	}
	if got := sw.Stats().EscalationsReflushed; got != 1 {
		t.Errorf("EscalationsReflushed = %d, want 1", got)
	}

	// The new master resolves the escalation; the next no-match packet
	// for the pair escalates fresh (to the new master).
	sw.HandleMessage(model.StandbyNode, &openflow.PacketOut{
		Actions: []openflow.Action{openflow.Output(1)},
		Packet:  *pkt(10, 20, 0),
	})
	sw.InjectLocal(pkt(10, 20, 2))
	s.RunFor(10 * time.Millisecond)
	if got := len(standby.packetIns()); got != 2 {
		t.Errorf("%d PacketIns at the new master, want 2 (pair reopened after PacketOut)", got)
	}
	if got := len(ctrl.packetIns()); got != 1 {
		t.Errorf("%d PacketIns at the old master, want still 1", got)
	}
}
