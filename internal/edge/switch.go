package edge

import (
	"time"

	"lazyctrl/internal/bloom"
	"lazyctrl/internal/fib"
	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/openflow"
	"lazyctrl/internal/telemetry"
)

// DeliverFunc is invoked when a packet reaches a locally attached host.
type DeliverFunc func(p *model.Packet, at time.Duration)

// Config parameterizes an edge switch.
type Config struct {
	ID model.SwitchID
	// FilterBits and FilterHashes set the G-FIB Bloom geometry. Zero
	// selects the paper's defaults (16×128-byte filters, 7 hashes).
	FilterBits   uint64
	FilterHashes uint32
	// AdvertiseInterval is the state-advertisement cadence (member →
	// designated). Zero selects 5 s.
	AdvertiseInterval time.Duration
	// ReportInterval is the designated switch's state-link cadence
	// (aggregated report to the controller). Zero selects 10 s.
	ReportInterval time.Duration
	// GFIBInterval is the designated switch's G-FIB dissemination
	// cadence within the group. Zero selects ReportInterval.
	GFIBInterval time.Duration
	// SlowPathDelay models the user-space slow path (ovs-vswitchd) taken
	// by first packets: G-FIB query, encap setup. Zero selects 400 µs
	// (calibrated so the §V-E intra-group cold cache lands at ≈0.8 ms).
	SlowPathDelay time.Duration
	// KeepAliveMisses is the number of silent intervals after which a
	// wheel neighbor is reported. Zero selects 3.
	KeepAliveMisses int
	// ReportFalsePositives enables the optional §III-D4 optimization:
	// mis-forwarded packets are reported to the controller so it can
	// install exact rules preventing recurrence.
	ReportFalsePositives bool
	// PacketInBatchMax enables the control-link micro-batching window
	// when > 1: PacketIns buffer at the switch and flush as one
	// PacketInBurst once the buffer reaches this count (or the window
	// deadline passes), so a packet-in storm crosses the control link
	// as a few bursts that feed the controller's sharded burst intake.
	// Zero or one ships every PacketIn immediately (the raw default;
	// the eval emulation harness turns batching on and accounts for
	// the window's latency explicitly — replay.ExpectedBatchDelay).
	PacketInBatchMax int
	// PacketInBatchWindow is the flush deadline of the micro-batching
	// window. Zero with batching enabled selects 1 ms.
	PacketInBatchWindow time.Duration
	// GFIBFullPush disables the word-level delta path of G-FIB
	// dissemination: every changed filter ships in full. It exists as
	// the measurement baseline for the delta protocol and as an escape
	// hatch; the delta path is on by default.
	GFIBFullPush bool
	// ControlFold enables analytic elision of quiescent periodic
	// rounds (keep-alives, idle advertisements, empty reports): runs of
	// provably no-op rounds collapse into one bulk event that credits
	// their aggregate effect in closed form (see fold.go). Takes effect
	// only when the environment supports elision
	// (netsim.ElidableScheduler) and Fold supplies the oracles.
	ControlFold bool
	// Fold supplies the harness-side oracles the fold's quiet proofs
	// need (global fault gate, peer freshness, wire metering).
	Fold *FoldHooks
	// TrackEscalations enables failover escalation bookkeeping (see
	// fencing.go): unanswered no-match PacketIns are remembered per
	// flow, duplicates inside the window are suppressed, and a master
	// change re-flushes the unexpired residue to the new master. Off by
	// default — the single-controller fast path allocates nothing.
	TrackEscalations bool
	// OnDeliver receives packets arriving at locally attached hosts.
	OnDeliver DeliverFunc
	// Tracer, when set, mints causal spans for controller escalations:
	// a no-match/ARP PacketIn opens a trace at ingress whose root span
	// covers the micro-batch residence, and the span context rides the
	// escalation to the controller and back (openflow PacketIn/FlowMod
	// Span fields), closing with the edge-side apply. Nil costs one
	// branch per escalation.
	Tracer *telemetry.Tracer
}

func (c Config) withDefaults() Config {
	if c.FilterBits == 0 {
		c.FilterBits = fib.DefaultFilterBits
	}
	if c.FilterHashes == 0 {
		c.FilterHashes = fib.DefaultFilterHashes
	}
	if c.AdvertiseInterval == 0 {
		c.AdvertiseInterval = 5 * time.Second
	}
	if c.ReportInterval == 0 {
		c.ReportInterval = 10 * time.Second
	}
	if c.GFIBInterval == 0 {
		c.GFIBInterval = c.ReportInterval
	}
	if c.SlowPathDelay == 0 {
		c.SlowPathDelay = 400 * time.Microsecond
	}
	if c.KeepAliveMisses == 0 {
		c.KeepAliveMisses = 3
	}
	if c.PacketInBatchMax > 1 && c.PacketInBatchWindow == 0 {
		c.PacketInBatchWindow = time.Millisecond
	}
	return c
}

// Stats are the switch's datapath counters (exported via StatsReply).
type Stats struct {
	PacketsSeen        uint64
	BytesSeen          uint64
	Delivered          uint64
	EncapSent          uint64
	GFIBMulticopies    uint64
	FalsePositiveDrops uint64
	PacketIns          uint64
	FloodDrops         uint64
	// PacketInBursts counts PacketInBurst messages flushed by the
	// micro-batching window (each replaces ≥2 PacketIn messages).
	PacketInBursts uint64
	// PinBatchWait totals the time PacketIns spent buffered in the
	// micro-batching window before their flush, and PinBatchWaited
	// counts them: the measured ground truth the modeled batching-delay
	// term (replay.ExpectedBatchDelay) is pinned against.
	PinBatchWait   time.Duration
	PinBatchWaited uint64
	// GFIBDeltasSent and GFIBFullsSent count per-peer filter items a
	// designated switch disseminated as word deltas vs. full filters.
	GFIBDeltasSent uint64
	GFIBFullsSent  uint64
	// GFIBDeltasApplied counts delta items this switch patched into
	// its G-FIB; GFIBNacksSent counts resync requests after a base-
	// version mismatch; GFIBResyncs counts full filters re-sent by a
	// designated switch in answer to a NACK.
	GFIBDeltasApplied uint64
	GFIBNacksSent     uint64
	GFIBResyncs       uint64
	// PeerFiltersEvicted counts G-FIB filters invalidated on peer
	// evidence: the switch reported a ring neighbor lost and dropped
	// its preloaded filter without waiting for the controller's
	// diagnosis.
	PeerFiltersEvicted uint64
	// GFIBRemovalsSent counts filter tombstones a designated switch
	// broadcast after evicting a member on peer evidence;
	// GFIBRemovalsApplied counts tombstones this switch applied
	// (filters dropped on a wire removal).
	GFIBRemovalsSent    uint64
	GFIBRemovalsApplied uint64
	// DegradedFloods counts first packets flood-forwarded to the whole
	// group instead of escalating, because the controller had gone
	// silent (graceful degradation); DegradedWindow totals the time
	// spent in that mode. While degraded the switch keeps serving
	// stale G-FIB and flow-table state — only the no-match slow path
	// changes behavior.
	DegradedFloods uint64
	DegradedWindow time.Duration
	// IdleRefreshes counts version beacons sent by the idle
	// anti-entropy path (nothing changed locally for
	// refreshEveryRounds advertise intervals): a zero-entry
	// advertisement asserting the current L-FIB version, the repair
	// trigger for a bootstrap advertisement lost on a faulty peer link
	// — the designated switch resyncs the member on version mismatch,
	// which would otherwise strand the member's state forever (a
	// member only re-advertises on change).
	IdleRefreshes uint64
	// StaleGenRejected counts controller-issued messages rejected by
	// the generation fence (a demoted master pushing under a superseded
	// generation); DupEscalationsSuppressed counts no-match escalations
	// suppressed because the same flow was already pending;
	// EscalationsReflushed counts pending escalations re-sent to a
	// newly announced master (see fencing.go).
	StaleGenRejected         uint64
	DupEscalationsSuppressed uint64
	EscalationsReflushed     uint64
}

// Switch is a LazyCtrl edge switch.
type Switch struct {
	cfg Config
	env netsim.Env

	lfib  *fib.LFIB
	gfib  *fib.GFIB
	flows *flowTable

	group     openflow.GroupConfig
	haveGroup bool

	// Designated-switch state: the latest full L-FIB snapshot and pair
	// stats from each member, plus the advertised L-FIB version per
	// member. gfibSent and ctrlSent record the version last folded into a
	// G-FIB dissemination / controller report, so an unchanged snapshot
	// is never re-encoded, re-sent, or re-decoded interval after interval.
	memberLFIBs        map[model.SwitchID][]openflow.LFIBEntry
	memberLFIBVersions map[model.SwitchID]uint64
	gfibSent           map[model.SwitchID]uint64
	ctrlSent           map[model.SwitchID]uint64
	memberPairs        map[model.SwitchPair]uint32
	// gfibPrev caches the last disseminated filter per member (tagged
	// with its version), the diff base for word-level deltas and the
	// full-state source for NACK-driven resyncs.
	gfibPrev map[model.SwitchID]*bloom.Filter
	// ctrlPending accumulates per-member L-FIB increments received
	// since the last controller report, so the state link forwards
	// increments instead of re-snapshotting; ctrlNeedFull marks members
	// whose next report must be a full snapshot (they advertised one).
	ctrlPending  map[model.SwitchID][]openflow.LFIBEntry
	ctrlNeedFull map[model.SwitchID]bool
	// evictedMembers marks members whose aggregation state this
	// (designated) switch dropped on peer evidence; a false alarm is
	// unwound by re-sending the member its group view when its
	// keep-alives resume, which makes it bootstrap a full
	// advertisement (see evictSuspect / handleKeepAlive).
	evictedMembers map[model.SwitchID]bool
	// gfibRound/ctrlRound count dissemination/report rounds. On the
	// controller-report path every refreshEveryRounds-th round ignores
	// the sent-version gate (anti-entropy); on the dissemination path
	// the same cadence sends only a version beacon — stale receivers
	// NACK and get exactly the filters they miss re-sent in full.
	gfibRound uint64
	ctrlRound uint64

	// Micro-batching intake window on the control link: buffered
	// PacketIns (with their buffering instants, for the batching-delay
	// accounting) and the pending flush deadline. pinSpans holds the
	// open root spans of the sampled escalations in the window (ended
	// at flush, so the root span duration is the batch residence);
	// unsampled escalations append nothing.
	pinBuf         []openflow.BurstPacket
	pinAt          []time.Duration
	pinSpans       []*telemetry.Span
	pinFlushCancel func()

	// Own per-window pair stats: new flows observed from remote
	// switches (counted at decap of first packets).
	pairFlows map[model.SwitchID]uint32

	lastAdvertisedVersion uint64
	// advSinceFull counts incremental advertisements since the last
	// full one (the member-side anti-entropy that bounds designated-
	// switch staleness after a lost increment); idleAdvRounds counts
	// consecutive advertise intervals with nothing to say, driving the
	// idle anti-entropy refresh (see advertise).
	advSinceFull  int
	idleAdvRounds int

	// Degraded-mode state: ctrlLastKA is the arrival time of the last
	// controller keep-alive (valid once ctrlKASeen); when the controller
	// has been silent past the keep-alive deadline, no-match first
	// packets flood to the group instead of escalating (degraded), with
	// degradedAt marking the window start.
	ctrlLastKA time.Duration
	ctrlKASeen bool
	degraded   bool
	degradedAt time.Duration

	// Replicated-controller state (fencing.go): master is the
	// controller address this switch follows (the target of
	// escalations, reports, and acks), ctrlGen the highest cluster
	// generation it has observed — pushes fenced behind it are
	// rejected. escPending holds the unanswered no-match escalations
	// for the failover dedup/re-flush path (nil unless
	// TrackEscalations).
	master     model.SwitchID
	ctrlGen    uint64
	escPending map[escKey]escRecord

	// Keep-alive bookkeeping.
	kaSeq     uint64
	lastFrom  map[model.SwitchID]time.Duration
	reported  map[model.SwitchID]bool
	ctrlRelay bool // control link down: relay via ring predecessor
	cancels   []func()
	started   bool
	stats     Stats
	xid       uint32

	// Control-fold task handles (nil without ControlFold): wake hooks
	// re-materialize the timers whose quiet proof a state change
	// invalidates.
	advTask     netsim.ElidableTask
	kaSendTask  netsim.ElidableTask
	kaCheckTask netsim.ElidableTask
	dissemTask  netsim.ElidableTask
	reportTask  netsim.ElidableTask
}

// New constructs a switch bound to its environment. Call Start to begin
// periodic duties.
func New(cfg Config, env netsim.Env) *Switch {
	c := cfg.withDefaults()
	return &Switch{
		cfg:                c,
		env:                env,
		master:             model.ControllerNode,
		lfib:               fib.NewLFIB(),
		gfib:               fib.NewGFIB(),
		flows:              newFlowTable(),
		memberLFIBs:        make(map[model.SwitchID][]openflow.LFIBEntry),
		memberLFIBVersions: make(map[model.SwitchID]uint64),
		gfibSent:           make(map[model.SwitchID]uint64),
		ctrlSent:           make(map[model.SwitchID]uint64),
		gfibPrev:           make(map[model.SwitchID]*bloom.Filter),
		ctrlPending:        make(map[model.SwitchID][]openflow.LFIBEntry),
		ctrlNeedFull:       make(map[model.SwitchID]bool),
		evictedMembers:     make(map[model.SwitchID]bool),
		memberPairs:        make(map[model.SwitchPair]uint32),
		pairFlows:          make(map[model.SwitchID]uint32),
		lastFrom:           make(map[model.SwitchID]time.Duration),
		reported:           make(map[model.SwitchID]bool),
	}
}

// NodeID implements netsim.Node.
func (s *Switch) NodeID() model.SwitchID { return s.cfg.ID }

// LFIB exposes the local FIB (read-only use).
func (s *Switch) LFIB() *fib.LFIB { return s.lfib }

// GFIB exposes the group FIB (read-only use).
func (s *Switch) GFIB() *fib.GFIB { return s.gfib }

// Stats returns a snapshot of the datapath counters. An open degraded
// window is folded into the snapshot's DegradedWindow.
func (s *Switch) Stats() Stats {
	st := s.stats
	if s.degraded {
		st.DegradedWindow += s.env.Now() - s.degradedAt
	}
	return st
}

// FlowCount returns the number of installed flow rules.
func (s *Switch) FlowCount() int { return s.flows.len() }

// Group returns the current group configuration.
func (s *Switch) Group() openflow.GroupConfig { return s.group }

// IsDesignated reports whether this switch is its group's designated
// switch.
func (s *Switch) IsDesignated() bool {
	return s.haveGroup && s.group.Designated == s.cfg.ID
}

// AttachHost seeds the L-FIB with a locally attached VM (the hypervisor
// knows its virtual interfaces).
func (s *Switch) AttachHost(mac model.MAC, ip model.IP, vlan model.VLAN) {
	v := s.lfib.Version()
	s.lfib.Learn(mac, ip, vlan, 1, s.env.Now())
	if s.lfib.Version() != v {
		s.noteLFIBChanged()
	}
}

// DetachHost removes a local VM (migration away or removal).
func (s *Switch) DetachHost(mac model.MAC) {
	v := s.lfib.Version()
	s.lfib.Remove(mac)
	if s.lfib.Version() != v {
		s.noteLFIBChanged()
	}
}

// Start begins periodic slow-path duties (advertisement; keep-alives and
// reporting start when a group is configured).
func (s *Switch) Start() {
	if s.started {
		return
	}
	s.started = true
	s.advTask = s.registerPeriodic(s.cfg.AdvertiseInterval, s.advertise,
		s.advertiseQuiet, s.advertiseCredit)
}

// registerPeriodic wires one periodic duty, elidable when the control
// fold is enabled; the task's cancel joins the group-timer teardown
// either way (ElidableTask.Stop settles pending folds first).
func (s *Switch) registerPeriodic(interval time.Duration, run func(), quiet func() int, credit func(int)) netsim.ElidableTask {
	if !s.cfg.ControlFold || s.cfg.Fold == nil {
		s.cancels = append(s.cancels, s.env.Every(interval, run))
		return nil
	}
	t := netsim.EveryElidableOrReal(s.env, interval, run, quiet, credit)
	s.cancels = append(s.cancels, t.Stop)
	return t
}

// Stop cancels all periodic work and flushes any PacketIns still held
// in the micro-batching window. Elidable tasks settle their pending
// folds before state teardown (their Stop credits passed rounds).
func (s *Switch) Stop() {
	s.flushPacketIns()
	for _, c := range s.cancels {
		c()
	}
	s.cancels = nil
	s.advTask, s.kaSendTask, s.kaCheckTask, s.dissemTask, s.reportTask = nil, nil, nil, nil, nil
	s.started = false
}

func (s *Switch) nextXID() uint32 {
	s.xid++
	return s.xid
}

// Reboot simulates a switch restart: every volatile table — L-FIB
// bindings, G-FIB filters, flow rules, group view, aggregation and
// delta-tracking state, keep-alive bookkeeping — is lost, and the
// L-FIB's incarnation epoch advances (its one durable datum), so the
// versions the switch advertises after the reboot dominate everything
// it advertised before. Receivers therefore accept its post-reboot
// snapshots immediately and its advertisement stream stays
// delta-encodable; without the epoch a version counter restarted at
// zero would be refused as stale until it caught up. The harness must
// re-attach the switch's hosts (the hypervisor knows its virtual
// interfaces) and the controller re-pushes the group view via
// MarkRecovered.
func (s *Switch) Reboot() {
	wasStarted := s.started
	// The micro-batching window's buffered PacketIns die with the
	// switch — drop them before Stop, whose drain would otherwise
	// flush pre-failure escalations to the controller. Their open
	// spans die too (never ended, never dumped).
	s.pinBuf, s.pinAt, s.pinSpans = nil, nil, nil
	s.Stop()
	s.lfib.Restart()
	s.gfib.Clear()
	s.flows = newFlowTable()
	s.group = openflow.GroupConfig{}
	s.haveGroup = false
	s.memberLFIBs = make(map[model.SwitchID][]openflow.LFIBEntry)
	s.memberLFIBVersions = make(map[model.SwitchID]uint64)
	s.gfibSent = make(map[model.SwitchID]uint64)
	s.ctrlSent = make(map[model.SwitchID]uint64)
	s.gfibPrev = make(map[model.SwitchID]*bloom.Filter)
	s.ctrlPending = make(map[model.SwitchID][]openflow.LFIBEntry)
	s.ctrlNeedFull = make(map[model.SwitchID]bool)
	s.evictedMembers = make(map[model.SwitchID]bool)
	s.memberPairs = make(map[model.SwitchPair]uint32)
	s.pairFlows = make(map[model.SwitchID]uint32)
	s.lastFrom = make(map[model.SwitchID]time.Duration)
	s.reported = make(map[model.SwitchID]bool)
	s.lastAdvertisedVersion = 0
	s.advSinceFull = 0
	s.idleAdvRounds = 0
	s.ctrlRelay = false
	// A crash ends any degraded window (the switch is down, not
	// degraded); the accumulated counters survive the reboot.
	if s.degraded {
		s.stats.DegradedWindow += s.env.Now() - s.degradedAt
		s.degraded = false
	}
	s.ctrlKASeen = false
	// The replicated-controller view is volatile too: a rebooted switch
	// re-learns the master and generation from the first stamped push
	// it hears (MarkRecovered's re-push carries both), and its pending
	// escalations died with the crash.
	s.master = model.ControllerNode
	s.ctrlGen = 0
	s.escPending = nil
	if wasStarted {
		s.Start()
	}
}

// InjectLocal processes a packet transmitted by a locally attached host
// (the "local plain packet" branch of Fig. 5).
func (s *Switch) InjectLocal(p *model.Packet) {
	now := s.env.Now()
	if p.Injected == 0 {
		p.Injected = now
	}
	s.stats.PacketsSeen++
	s.stats.BytesSeen += uint64(p.Bytes)

	// The switch learns the source address from any local transmission.
	v := s.lfib.Version()
	s.lfib.Learn(p.SrcMAC, p.SrcIP, p.VLAN, 1, now)
	if s.lfib.Version() != v {
		s.noteLFIBChanged()
	}

	// 1. Flow table.
	if rule := s.flows.lookup(p, now); rule != nil {
		s.applyActions(rule.actions, p)
		return
	}
	// 2. L-FIB: destination attached locally.
	if e := s.lfib.Lookup(p.DstMAC); e != nil {
		s.deliver(p)
		return
	}
	// 3. G-FIB: candidate peers in the group (may include false
	// positives; all candidates get a copy).
	if targets := s.gfib.Query(p.DstMAC); len(targets) > 0 {
		if len(targets) > 1 {
			s.stats.GFIBMulticopies += uint64(len(targets) - 1)
		}
		s.env.After(s.cfg.SlowPathDelay, func() {
			for _, t := range targets {
				s.encapTo(t, p)
			}
		})
		return
	}
	// 4. Controller.
	s.packetIn(openflow.ReasonNoMatch, p)
}

// handleOverlay processes an encapsulated packet arriving from the
// core (the second branch of Fig. 5).
func (s *Switch) handleOverlay(p *model.Packet) {
	s.stats.PacketsSeen++
	s.stats.BytesSeen += uint64(p.Bytes)
	src := model.NoSwitch
	if p.Encap != nil {
		src = p.Encap.SrcSwitch
	}
	// Decapsulate.
	inner := *p
	inner.Bytes -= model.EncapOverheadBytes
	inner.Encap = nil

	e := s.lfib.Lookup(inner.DstMAC)
	if e == nil {
		// Mis-forwarded due to a Bloom-filter false positive: drop.
		s.stats.FalsePositiveDrops++
		if s.cfg.ReportFalsePositives {
			s.packetIn(openflow.ReasonFalsePositive, &inner)
		}
		return
	}
	if inner.FlowSeq == 0 && src != model.NoSwitch {
		s.pairFlows[src]++
		wakeTask(s.advTask) // pair statistics now pending
	}
	s.deliver(&inner)
}

// handleFlood processes a plain packet flooded by the baseline
// controller: deliver if the destination is local, silently drop
// otherwise.
func (s *Switch) handleFlood(p *model.Packet) {
	if s.lfib.Lookup(p.DstMAC) != nil {
		s.deliver(p)
		return
	}
	s.stats.FloodDrops++
}

func (s *Switch) deliver(p *model.Packet) {
	s.stats.Delivered++
	if s.cfg.OnDeliver != nil {
		s.cfg.OnDeliver(p, s.env.Now())
	}
}

// encapTo wraps p with the GRE-like outer header and sends it to a
// remote edge switch over the underlay.
func (s *Switch) encapTo(remote model.SwitchID, p *model.Packet) {
	out := *p
	out.Encap = &model.EncapHeader{SrcSwitch: s.cfg.ID, DstSwitch: remote}
	out.Bytes += model.EncapOverheadBytes
	s.stats.EncapSent++
	s.env.Send(remote, &out)
}

// packetIn forwards a packet to the controller over the control link
// (relayed via the ring predecessor while the control link is down,
// §III-E2). With the micro-batching window enabled the packet buffers
// at the switch and flushes as part of a PacketInBurst once the count
// threshold or the window deadline is hit, so a storm arrives at the
// controller as bursts instead of a message per flow.
func (s *Switch) packetIn(reason openflow.PacketInReason, p *model.Packet) {
	if reason == openflow.ReasonNoMatch && s.degradeFlood(p) {
		return
	}
	if reason == openflow.ReasonNoMatch && s.cfg.TrackEscalations && s.noteEscalation(p) {
		return
	}
	s.stats.PacketIns++
	root := s.cfg.Tracer.StartTrace("pktin").
		Attr("sw", int64(s.cfg.ID)).Attr("reason", int64(reason))
	if s.cfg.PacketInBatchMax <= 1 {
		root.End() // no batch residence: the root closes at ingress
		s.sendCtrl(&openflow.PacketIn{Switch: s.cfg.ID, Reason: reason, Packet: *p, Span: root.Context()})
		return
	}
	s.pinBuf = append(s.pinBuf, openflow.BurstPacket{Reason: reason, Packet: *p, Span: root.Context()})
	s.pinAt = append(s.pinAt, s.env.Now())
	if root != nil {
		s.pinSpans = append(s.pinSpans, root)
	}
	if len(s.pinBuf) >= s.cfg.PacketInBatchMax {
		s.flushPacketIns()
		return
	}
	if s.pinFlushCancel == nil {
		s.pinFlushCancel = s.env.After(s.cfg.PacketInBatchWindow, s.flushPacketIns)
	}
}

// flushPacketIns drains the micro-batching window: a single buffered
// packet ships as a plain PacketIn, several ship as one PacketInBurst.
func (s *Switch) flushPacketIns() {
	if s.pinFlushCancel != nil {
		s.pinFlushCancel()
		s.pinFlushCancel = nil
	}
	if len(s.pinBuf) == 0 {
		return
	}
	buf, at, spans := s.pinBuf, s.pinAt, s.pinSpans
	s.pinBuf, s.pinAt, s.pinSpans = nil, nil, nil
	now := s.env.Now()
	for _, t := range at {
		s.stats.PinBatchWait += now - t
	}
	s.stats.PinBatchWaited += uint64(len(at))
	// Sampled escalations close their root here: the root span's
	// duration is exactly the micro-batch residence.
	for _, sp := range spans {
		sp.End()
	}
	if len(buf) == 1 {
		s.sendCtrl(&openflow.PacketIn{Switch: s.cfg.ID, Reason: buf[0].Reason, Packet: buf[0].Packet, Span: buf[0].Span})
		return
	}
	s.stats.PacketInBursts++
	s.sendCtrl(&openflow.PacketInBurst{Switch: s.cfg.ID, Items: buf})
}

// controllerSilent reports whether the controller has missed its
// keep-alive deadline. It never triggers before the first controller
// keep-alive has been seen: a switch that was configured but never
// heard the controller heartbeat (rig harnesses, pre-blackout boot)
// has no baseline to measure silence against.
func (s *Switch) controllerSilent() bool {
	if !s.haveGroup || s.group.KeepAliveInterval <= 0 || !s.ctrlKASeen {
		return false
	}
	deadline := time.Duration(s.cfg.KeepAliveMisses) * s.group.KeepAliveInterval
	last := s.ctrlLastKA
	// Folded controller heartbeat rounds were credited only while the
	// underlay was fault-free, so the broadcast is implicitly heard
	// through the credited boundary.
	if h := s.cfg.Fold; h != nil && h.CtrlKACreditedThrough != nil {
		if ct := h.CtrlKACreditedThrough(); ct > last {
			last = ct
		}
	}
	return s.env.Now()-last >= deadline
}

// degradeFlood is the graceful-degradation path for no-match first
// packets while the controller is silent: instead of escalating into a
// black hole, the packet floods to every group member — the G-FIB's
// flood fallback — so intra-group traffic toward hosts the (stale)
// G-FIB misses keeps flowing. Inter-group destinations stay
// unreachable until the controller returns; receivers without the
// destination count the copy as a false-positive drop. Reports whether
// the packet was handled.
func (s *Switch) degradeFlood(p *model.Packet) bool {
	if !s.controllerSilent() || len(s.group.Members) <= 1 {
		return false
	}
	if !s.degraded {
		s.degraded = true
		s.degradedAt = s.env.Now()
	}
	s.stats.DegradedFloods++
	for _, m := range s.group.Members {
		if m != s.cfg.ID {
			s.encapTo(m, p)
		}
	}
	return true
}

// exitDegraded closes an open degraded window (the controller spoke).
func (s *Switch) exitDegraded() {
	if !s.degraded {
		return
	}
	s.stats.DegradedWindow += s.env.Now() - s.degradedAt
	s.degraded = false
}

func (s *Switch) sendCtrl(msg netsim.Message) {
	if s.ctrlRelay && s.haveGroup {
		prev := s.group.RingPrev
		if prev != model.NoSwitch && prev != s.cfg.ID {
			s.env.Send(prev, &relayEnvelope{Origin: s.cfg.ID, Msg: msg})
			return
		}
	}
	s.env.Send(s.master, msg)
}

// relayEnvelope carries a control message via a ring neighbor while the
// origin's control link is down (§III-E2). It never crosses the live
// codec because relays stay inside the DES harness experiments.
type relayEnvelope struct {
	Origin model.SwitchID
	Msg    netsim.Message
}

// SetControlRelay switches control-channel traffic onto the ring
// predecessor (true) or back to the direct control link (false).
func (s *Switch) SetControlRelay(on bool) { s.ctrlRelay = on }

func (s *Switch) applyActions(actions []openflow.Action, p *model.Packet) {
	for _, a := range actions {
		switch a.Type {
		case openflow.ActionTypeOutput:
			s.deliver(p)
		case openflow.ActionTypeEncap:
			s.encapTo(a.Remote, p)
		case openflow.ActionTypeController:
			s.packetIn(openflow.ReasonNoMatch, p)
		case openflow.ActionTypeFlood:
			s.handleFlood(p)
		case openflow.ActionTypeDrop:
			return
		}
	}
}
