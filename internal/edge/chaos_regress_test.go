package edge

import (
	"testing"
	"time"

	"lazyctrl/internal/bloom"
	"lazyctrl/internal/fib"
	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/openflow"
)

// TestEvictionDuringLossWindowNoResurrect pins the failover unwind
// against the fault-injection layer: a member evicted on peer evidence
// during an active loss window must stay evicted — an increment
// advertisement arriving without a base snapshot is not adopted by the
// designated switch, and a word-delta against the tombstoned filter
// does not resurrect it at a member — until the loss clears, the
// resumed keep-alive triggers the unwind, and a full advertisement
// rebuilds everything.
func TestEvictionDuringLossWindowNoResurrect(t *testing.T) {
	r := newRig(t, 1, 2, 3)
	r.switches[1].AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	r.switches[2].AttachHost(model.HostMAC(20), model.HostIP(20), 1)
	r.switches[3].AttachHost(model.HostMAC(30), model.HostIP(30), 1)
	r.configureGroup(1, 2, 1, 2, 3)
	r.sim.RunFor(12 * time.Second)
	if _, held := r.switches[1].GFIB().PeerVersion(3); !held {
		t.Fatal("setup: S1 never received S3's filter")
	}

	// Loss window: S3 goes completely silent (keep-alives, adverts,
	// everything) without actually dying.
	removeLoss := r.net.AddFault(netsim.FaultRule{A: 3, B: model.NoSwitch, Loss: 1.0})
	r.sim.RunFor(6 * time.Second)
	if _, held := r.switches[1].GFIB().PeerVersion(3); held {
		t.Fatal("S1 still holds S3's filter after peer-evidence eviction")
	}
	if _, held := r.switches[2].GFIB().PeerVersion(3); held {
		t.Fatal("designated still holds S3's filter after eviction")
	}

	// S3 learns a new host mid-window; an increment advertisement from
	// it races the tombstone and lands at the designated, which no
	// longer has S3's base snapshot. It must not be adopted.
	r.switches[3].AttachHost(model.HostMAC(31), model.HostIP(31), 1)
	inc := &openflow.StateReport{
		Group: 1,
		LFIBs: []openflow.LFIBUpdate{{
			Origin: 3,
			Full:   false,
			Entries: []openflow.LFIBEntry{
				{MAC: model.HostMAC(31), IP: model.HostIP(31), VLAN: 1},
			},
			Version: r.switches[3].LFIB().Version(),
		}},
	}
	r.switches[2].HandleMessage(3, inc)

	// A stale word-delta for the tombstoned filter reaches S1. With no
	// base filter held it must be NACKed/ignored, never installed.
	r.switches[1].HandleMessage(2, &openflow.GFIBDelta{
		Group:   1,
		Version: 1,
		Deltas: []openflow.GFIBFilterDelta{{
			Switch:        3,
			BaseVersion:   1,
			TargetVersion: inc.LFIBs[0].Version,
			Words:         []bloom.WordDelta{{Index: 0, Word: 0xff}},
		}},
	})

	// Two dissemination rounds later nothing about S3 may have come
	// back: no adopted increment, no resurrected filter.
	r.sim.RunFor(12 * time.Second)
	if _, held := r.switches[1].GFIB().PeerVersion(3); held {
		t.Fatal("tombstoned filter resurrected during the loss window")
	}
	if _, held := r.switches[2].GFIB().PeerVersion(3); held {
		t.Fatal("designated adopted S3 state from an increment without a base")
	}

	// Loss clears: resumed keep-alives trigger the unwind (the
	// designated re-sends the group view), S3's reset advertisement
	// state forces a full snapshot, and every view rebuilds — with
	// both hosts, not just the increment's.
	removeLoss()
	r.sim.RunFor(20 * time.Second)
	got := r.switches[1].GFIB().SnapshotBytes()[3]
	if _, held := r.switches[1].GFIB().PeerVersion(3); !held {
		t.Fatal("S3's filter never rebuilt after the loss window")
	}
	want, err := fib.FilterBytesFromWireEntries([]openflow.LFIBEntry{
		{MAC: model.HostMAC(30), IP: model.HostIP(30), VLAN: 1},
		{MAC: model.HostMAC(31), IP: model.HostIP(31), VLAN: 1},
	}, fib.DefaultFilterBits, fib.DefaultFilterHashes)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("rebuilt filter does not match S3's full host set")
	}
}

// TestDegradedModeFloodFallback pins the controller-silence fallback:
// once the controller misses its keep-alive window, a no-match packet
// floods to the group instead of black-holing in a PacketIn to a dead
// controller, the degradation window is metered, and a resumed
// controller keep-alive exits the mode.
func TestDegradedModeFloodFallback(t *testing.T) {
	r := newRig(t, 1, 2, 3)
	r.switches[1].AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	r.switches[3].AttachHost(model.HostMAC(30), model.HostIP(30), 1)
	r.configureGroup(1, 2, 1, 2, 3)
	// One controller keep-alive so S1 has seen the controller at all
	// (the mode never triggers on a controller that never spoke).
	r.switches[1].HandleMessage(model.ControllerNode, &openflow.KeepAlive{From: model.ControllerNode, Seq: 1})
	r.sim.RunFor(10 * time.Second) // controller now silent >3 keep-alive windows

	// Make host 30 a G-FIB miss so the packet is a true no-match.
	r.switches[1].GFIB().RemoveFilter(3)
	r.switches[1].InjectLocal(pkt(10, 30, 0))
	r.sim.RunFor(time.Second)

	st := r.switches[1].Stats()
	if st.DegradedFloods == 0 {
		t.Fatal("no-match packet did not flood in degraded mode")
	}
	if len(r.delivered[3]) == 0 {
		t.Fatal("degraded flood did not deliver to the host's switch")
	}
	if st.DegradedWindow != 0 {
		// Still degraded: the open window only folds into stats on
		// exit (or on Stats() via the open-window fold).
		t.Logf("open degraded window: %v", st.DegradedWindow)
	}

	// Controller comes back: the mode exits and the window is metered.
	r.switches[1].HandleMessage(model.ControllerNode, &openflow.KeepAlive{From: model.ControllerNode, Seq: 2})
	st = r.switches[1].Stats()
	if st.DegradedWindow <= 0 {
		t.Fatal("degradation window not metered after exit")
	}
	// Degraded floods stop once the controller is back.
	r.switches[1].InjectLocal(pkt(10, 30, 1))
	r.sim.RunFor(time.Second)
	if got := r.switches[1].Stats().DegradedFloods; got != st.DegradedFloods {
		t.Fatalf("flooded again after controller resumed (floods %d -> %d)", st.DegradedFloods, got)
	}
}

// TestIdleBeaconResyncsLostState pins the idle anti-entropy path: a
// designated switch that silently lost a member's aggregation state
// (lost bootstrap advertisement) learns about it from the member's
// idle version beacon — a zero-entry advertisement asserting the
// current L-FIB version — and resyncs the member (group-view re-send →
// full bootstrap snapshot). The steady-state cost stays a version
// comparison: an idle round never re-ships the snapshot itself.
func TestIdleBeaconResyncsLostState(t *testing.T) {
	r := newRig(t, 1, 2, 3)
	r.switches[1].AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	r.switches[2].AttachHost(model.HostMAC(20), model.HostIP(20), 1)
	r.switches[3].AttachHost(model.HostMAC(30), model.HostIP(30), 1)
	r.configureGroup(1, 2, 1, 2, 3)
	r.sim.RunFor(12 * time.Second)

	d := r.switches[2]
	if _, held := d.memberLFIBs[3]; !held {
		t.Fatal("setup: designated never aggregated S3")
	}
	// Simulate a lost bootstrap: the designated drops S3's aggregation
	// without any keep-alive evidence (so no eviction unwind fires).
	delete(d.memberLFIBs, 3)
	delete(d.memberLFIBVersions, 3)

	// S3 is idle — no L-FIB change, no traffic — so only the beacon
	// path can repair this. Within refreshEveryRounds advertise
	// intervals plus the resync round-trip the state must be back.
	r.sim.RunFor(70 * time.Second)
	if r.switches[3].Stats().IdleRefreshes == 0 {
		t.Fatal("idle member never sent a version beacon")
	}
	entries, held := d.memberLFIBs[3]
	if !held {
		t.Fatal("beacon mismatch did not resync the member's state")
	}
	if len(entries) != 1 || entries[0].MAC != model.HostMAC(30) {
		t.Fatalf("resynced aggregation wrong: %v", entries)
	}
	if v := d.memberLFIBVersions[3]; v != r.switches[3].LFIB().Version() {
		t.Fatalf("resynced version %d != member L-FIB version %d", v, r.switches[3].LFIB().Version())
	}
}
