package edge

import (
	"testing"
	"time"

	"lazyctrl/internal/fib"
	"lazyctrl/internal/model"
	"lazyctrl/internal/netsim"
	"lazyctrl/internal/openflow"
	"lazyctrl/internal/sim"
)

// ctrlRecorder stands in for the controller.
type ctrlRecorder struct {
	got []netsim.Message
}

func (c *ctrlRecorder) NodeID() model.SwitchID { return model.ControllerNode }

func (c *ctrlRecorder) HandleMessage(from model.SwitchID, msg netsim.Message) {
	if netsim.HandleTimer(msg) {
		return
	}
	c.got = append(c.got, msg)
}

func (c *ctrlRecorder) packetIns() []*openflow.PacketIn {
	var out []*openflow.PacketIn
	for _, m := range c.got {
		if pi, ok := m.(*openflow.PacketIn); ok {
			out = append(out, pi)
		}
	}
	return out
}

func (c *ctrlRecorder) stateReports() []*openflow.StateReport {
	var out []*openflow.StateReport
	for _, m := range c.got {
		if sr, ok := m.(*openflow.StateReport); ok {
			out = append(out, sr)
		}
	}
	return out
}

func (c *ctrlRecorder) failureReports() []*openflow.FailureReport {
	var out []*openflow.FailureReport
	for _, m := range c.got {
		if fr, ok := m.(*openflow.FailureReport); ok {
			out = append(out, fr)
		}
	}
	return out
}

// rig is a small test bench: a DES network, N switches, and a recorded
// controller.
type delivery struct {
	p  *model.Packet
	at time.Duration
}

type rig struct {
	sim      *sim.Simulator
	net      *netsim.Network
	ctrl     *ctrlRecorder
	switches map[model.SwitchID]*Switch
	// delivered records host deliveries per switch.
	delivered map[model.SwitchID][]delivery
}

func newRig(t *testing.T, ids ...model.SwitchID) *rig {
	t.Helper()
	s := sim.New(1)
	n := netsim.New(s, netsim.DefaultLatencies())
	r := &rig{
		sim:       s,
		net:       n,
		ctrl:      &ctrlRecorder{},
		switches:  make(map[model.SwitchID]*Switch),
		delivered: make(map[model.SwitchID][]delivery),
	}
	n.Attach(r.ctrl)
	for _, id := range ids {
		id := id
		sw := New(Config{
			ID: id,
			OnDeliver: func(p *model.Packet, at time.Duration) {
				r.delivered[id] = append(r.delivered[id], delivery{p: p, at: at})
			},
		}, n.Env(id))
		n.Attach(sw)
		sw.Start()
		r.switches[id] = sw
	}
	return r
}

// configureGroup pushes a GroupConfig to each member, mimicking the
// controller's setup phase.
func (r *rig) configureGroup(group model.GroupID, designated model.SwitchID, members ...model.SwitchID) {
	for i, m := range members {
		prev := members[(i-1+len(members))%len(members)]
		next := members[(i+1)%len(members)]
		cfg := &openflow.GroupConfig{
			Group:             group,
			Members:           members,
			Designated:        designated,
			RingPrev:          prev,
			RingNext:          next,
			SyncInterval:      5 * time.Second,
			KeepAliveInterval: time.Second,
			Version:           1,
		}
		r.switches[m].HandleMessage(model.ControllerNode, cfg)
	}
}

func pkt(src, dst model.HostID, seq int) *model.Packet {
	return &model.Packet{
		SrcMAC:  model.HostMAC(src),
		DstMAC:  model.HostMAC(dst),
		SrcIP:   model.HostIP(src),
		DstIP:   model.HostIP(dst),
		VLAN:    1,
		Ether:   model.EtherTypeIPv4,
		Bytes:   1000,
		FlowSeq: seq,
	}
}

func TestLocalDelivery(t *testing.T) {
	r := newRig(t, 1)
	sw := r.switches[1]
	sw.AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	sw.AttachHost(model.HostMAC(11), model.HostIP(11), 1)
	sw.InjectLocal(pkt(10, 11, 0))
	r.sim.RunFor(2 * time.Second)
	if len(r.delivered[1]) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(r.delivered[1]))
	}
	if sw.Stats().Delivered != 1 {
		t.Errorf("Stats().Delivered = %d", sw.Stats().Delivered)
	}
}

func TestPacketInWhenUnknown(t *testing.T) {
	r := newRig(t, 1)
	sw := r.switches[1]
	sw.AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	sw.InjectLocal(pkt(10, 99, 0))
	r.sim.RunFor(2 * time.Second)
	pins := r.ctrl.packetIns()
	if len(pins) != 1 {
		t.Fatalf("controller got %d PacketIns, want 1", len(pins))
	}
	if pins[0].Switch != 1 || pins[0].Reason != openflow.ReasonNoMatch {
		t.Errorf("PacketIn = %+v", pins[0])
	}
	if len(r.delivered[1]) != 0 {
		t.Error("unknown packet delivered locally")
	}
}

func TestGFIBPathDelivers(t *testing.T) {
	r := newRig(t, 1, 2, 3)
	r.switches[1].AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	r.switches[2].AttachHost(model.HostMAC(20), model.HostIP(20), 1)
	r.switches[3].AttachHost(model.HostMAC(30), model.HostIP(30), 1)
	r.configureGroup(1, 2, 1, 2, 3)
	// Let advertisement + dissemination complete.
	r.sim.RunFor(12 * time.Second)

	if r.switches[1].GFIB().Len() != 2 {
		t.Fatalf("switch 1 G-FIB has %d filters, want 2", r.switches[1].GFIB().Len())
	}
	p := pkt(10, 30, 0)
	p.Injected = r.sim.Now().Duration()
	r.switches[1].InjectLocal(p)
	r.sim.RunFor(time.Second)
	if len(r.delivered[3]) != 1 {
		t.Fatalf("switch 3 delivered %d, want 1", len(r.delivered[3]))
	}
	got := r.delivered[3][0].p
	if got.Encapsulated() {
		t.Error("delivered packet still encapsulated")
	}
	if got.Bytes != 1000 {
		t.Errorf("delivered bytes = %d, want 1000 (encap overhead removed)", got.Bytes)
	}
	// No controller involvement for intra-group traffic.
	if len(r.ctrl.packetIns()) != 0 {
		t.Errorf("controller saw %d PacketIns for intra-group flow", len(r.ctrl.packetIns()))
	}
}

func TestIntraGroupColdCacheLatency(t *testing.T) {
	r := newRig(t, 1, 2)
	r.switches[1].AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	r.switches[2].AttachHost(model.HostMAC(20), model.HostIP(20), 1)
	r.configureGroup(1, 1, 1, 2)
	r.sim.RunFor(12 * time.Second)

	start := r.sim.Now().Duration()
	p := pkt(10, 20, 0)
	p.Injected = start
	r.switches[1].InjectLocal(p)
	r.sim.RunFor(time.Second)
	if len(r.delivered[2]) != 1 {
		t.Fatalf("not delivered")
	}
	// First packet path: slow path (150µs) + data link (350µs + ≤10%
	// jitter): sub-millisecond — the paper's §V-E cold-cache band for
	// intra-group traffic (0.83 ms), an order of magnitude below the
	// OpenFlow controller round trip.
	latency := r.delivered[2][0].at - start
	if latency < 400*time.Microsecond || latency > 1500*time.Microsecond {
		t.Errorf("cold-cache intra-group latency = %v, want sub-1.5ms", latency)
	}
	if r.switches[1].Stats().EncapSent != 1 {
		t.Errorf("EncapSent = %d, want 1", r.switches[1].Stats().EncapSent)
	}
}

func TestFlowRuleEncapForwarding(t *testing.T) {
	r := newRig(t, 1, 2)
	r.switches[1].AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	r.switches[2].AttachHost(model.HostMAC(20), model.HostIP(20), 1)
	// Controller installs an inter-group rule on switch 1.
	r.switches[1].HandleMessage(model.ControllerNode, &openflow.FlowMod{
		Command:     openflow.FlowAdd,
		Match:       openflow.ExactDst(model.HostMAC(20), 1),
		Priority:    10,
		IdleTimeout: time.Minute,
		Actions:     []openflow.Action{openflow.Encap(2)},
	})
	r.switches[1].InjectLocal(pkt(10, 20, 0))
	r.sim.RunFor(2 * time.Second)
	if len(r.delivered[2]) != 1 {
		t.Fatalf("rule-forwarded packet not delivered")
	}
	if r.switches[1].FlowCount() != 1 {
		t.Errorf("FlowCount = %d", r.switches[1].FlowCount())
	}
	if len(r.ctrl.packetIns()) != 0 {
		t.Error("rule hit still sent PacketIn")
	}
}

func TestFlowRuleExpiry(t *testing.T) {
	r := newRig(t, 1, 2)
	r.switches[1].AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	r.switches[1].HandleMessage(model.ControllerNode, &openflow.FlowMod{
		Command:     openflow.FlowAdd,
		Match:       openflow.ExactDst(model.HostMAC(20), 1),
		Priority:    10,
		IdleTimeout: time.Second,
		Actions:     []openflow.Action{openflow.Encap(2)},
	})
	r.sim.RunFor(5 * time.Second)
	// Expired rule: the packet misses and goes to the controller.
	r.switches[1].InjectLocal(pkt(10, 20, 0))
	r.sim.RunFor(2 * time.Second)
	if len(r.ctrl.packetIns()) != 1 {
		t.Errorf("expired rule: PacketIns = %d, want 1", len(r.ctrl.packetIns()))
	}
	if len(r.delivered[2]) != 0 {
		t.Error("expired rule still forwarded")
	}
}

func TestFalsePositiveDrop(t *testing.T) {
	r := newRig(t, 1, 2)
	r.switches[2].AttachHost(model.HostMAC(20), model.HostIP(20), 1)
	// Craft an encapsulated packet to a host switch 2 does NOT have.
	p := pkt(10, 99, 0)
	p.Encap = &model.EncapHeader{SrcSwitch: 1, DstSwitch: 2}
	p.Bytes += model.EncapOverheadBytes
	r.net.Env(1).Send(2, p)
	r.sim.RunFor(2 * time.Second)
	if len(r.delivered[2]) != 0 {
		t.Fatal("false-positive packet delivered")
	}
	if r.switches[2].Stats().FalsePositiveDrops != 1 {
		t.Errorf("FalsePositiveDrops = %d, want 1", r.switches[2].Stats().FalsePositiveDrops)
	}
}

func TestFalsePositiveReportOptional(t *testing.T) {
	s := sim.New(1)
	n := netsim.New(s, netsim.DefaultLatencies())
	ctrl := &ctrlRecorder{}
	n.Attach(ctrl)
	sw := New(Config{ID: 2, ReportFalsePositives: true}, n.Env(2))
	n.Attach(sw)
	p := pkt(10, 99, 0)
	p.Encap = &model.EncapHeader{SrcSwitch: 1, DstSwitch: 2}
	sw.HandleMessage(1, p)
	s.Run()
	pins := ctrl.packetIns()
	if len(pins) != 1 || pins[0].Reason != openflow.ReasonFalsePositive {
		t.Errorf("PacketIns = %+v, want one false-positive report", pins)
	}
}

func TestDesignatedAggregationAndReport(t *testing.T) {
	r := newRig(t, 1, 2, 3)
	r.switches[1].AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	r.switches[2].AttachHost(model.HostMAC(20), model.HostIP(20), 1)
	r.switches[3].AttachHost(model.HostMAC(30), model.HostIP(30), 1)
	r.configureGroup(1, 2, 1, 2, 3)
	r.sim.RunFor(25 * time.Second)

	reports := r.ctrl.stateReports()
	if len(reports) == 0 {
		t.Fatal("no state reports reached the controller")
	}
	last := reports[len(reports)-1]
	if last.Group != 1 {
		t.Errorf("report group = %v", last.Group)
	}
	// All three members' L-FIBs reach the controller. Reports are deltas
	// (a snapshot is attached only when its version moved), so aggregate
	// over the whole report stream.
	origins := map[model.SwitchID]bool{}
	for _, rep := range reports {
		for _, u := range rep.LFIBs {
			origins[u.Origin] = true
		}
	}
	for _, id := range []model.SwitchID{1, 2, 3} {
		if !origins[id] {
			t.Errorf("no report carried the L-FIB of %v (have %v)", id, origins)
		}
	}
	// Steady state: with no L-FIB churn, reports after the first must be
	// pure deltas (zero snapshots) — except every refreshEveryRounds-th
	// round, which is deliberately a full anti-entropy refresh. Require
	// at least one later report to be a pure delta.
	pureDelta := false
	for _, rep := range reports[1:] {
		if len(rep.LFIBs) == 0 {
			pureDelta = true
			break
		}
	}
	if !pureDelta {
		t.Error("no steady-state report was a pure delta: snapshots are re-encoded every round")
	}
}

func TestPairStatsReported(t *testing.T) {
	r := newRig(t, 1, 2)
	r.switches[1].AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	r.switches[2].AttachHost(model.HostMAC(20), model.HostIP(20), 1)
	r.configureGroup(1, 1, 1, 2)
	r.sim.RunFor(12 * time.Second)
	// Two first-packets from 1 → 2.
	p := pkt(10, 20, 0)
	r.switches[1].InjectLocal(p)
	r.sim.RunFor(time.Second)
	p2 := pkt(10, 20, 0)
	p2.SrcMAC = model.HostMAC(10)
	r.switches[1].InjectLocal(p2)
	r.sim.RunFor(30 * time.Second)

	found := false
	for _, rep := range r.ctrl.stateReports() {
		for _, pair := range rep.Pairs {
			if model.MakeSwitchPair(pair.A, pair.B) == model.MakeSwitchPair(1, 2) && pair.NewFlows >= 2 {
				found = true
			}
		}
	}
	if !found {
		t.Error("pair stats for (1,2) never reported to controller")
	}
}

func TestKeepAliveFailureReport(t *testing.T) {
	r := newRig(t, 1, 2, 3)
	r.configureGroup(1, 1, 1, 2, 3)
	// Let keep-alives flow for a while.
	r.sim.RunFor(5 * time.Second)
	if len(r.ctrl.failureReports()) != 0 {
		t.Fatalf("failure reported with healthy ring: %+v", r.ctrl.failureReports())
	}
	// Kill switch 2; neighbors 1 and 3 must report it.
	r.net.FailNode(2)
	r.sim.RunFor(10 * time.Second)
	reports := r.ctrl.failureReports()
	var sawUp, sawDown bool
	for _, fr := range reports {
		if fr.Suspect != 2 {
			t.Errorf("unexpected suspect %v", fr.Suspect)
		}
		switch fr.Direction {
		case openflow.LossUp:
			sawUp = true
		case openflow.LossDown:
			sawDown = true
		}
	}
	if !sawUp || !sawDown {
		t.Errorf("reports = %+v, want both directions for suspect 2", reports)
	}
}

func TestARPRelayAnswered(t *testing.T) {
	r := newRig(t, 1, 2, 3)
	r.switches[3].AttachHost(model.HostMAC(30), model.HostIP(30), 5)
	r.configureGroup(1, 1, 1, 2, 3)
	r.sim.RunFor(time.Second)
	r.ctrl.got = nil

	arp := &openflow.ARPRelay{
		Tenant: 1,
		Packet: model.Packet{
			SrcMAC:    model.HostMAC(10),
			DstMAC:    model.BroadcastMAC,
			Ether:     model.EtherTypeARP,
			ARPOp:     model.ARPRequest,
			ARPTarget: model.HostIP(30),
			VLAN:      5,
		},
	}
	// Controller relays to the designated switch (1), which fans out.
	r.net.Env(model.ControllerNode).Send(1, arp)
	r.sim.RunFor(time.Second)

	var answer *openflow.LFIBUpdate
	for _, m := range r.ctrl.got {
		if u, ok := m.(*openflow.LFIBUpdate); ok && u.Origin == 3 {
			answer = u
		}
	}
	if answer == nil {
		t.Fatal("owner switch did not answer the ARP relay")
	}
	if len(answer.Entries) != 1 || answer.Entries[0].IP != model.HostIP(30) {
		t.Errorf("answer = %+v", answer)
	}
}

func TestEchoAndStats(t *testing.T) {
	r := newRig(t, 1)
	r.switches[1].AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	r.net.Env(model.ControllerNode).Send(1, &openflow.EchoRequest{Data: []byte("x")})
	r.net.Env(model.ControllerNode).Send(1, &openflow.StatsRequest{})
	r.sim.RunFor(2 * time.Second)
	var echo *openflow.EchoReply
	var stats *openflow.StatsReply
	for _, m := range r.ctrl.got {
		switch v := m.(type) {
		case *openflow.EchoReply:
			echo = v
		case *openflow.StatsReply:
			stats = v
		}
	}
	if echo == nil || string(echo.Data) != "x" {
		t.Errorf("echo = %+v", echo)
	}
	if stats == nil || stats.LFIBEntries != 1 || stats.Switch != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestControlRelayViaRingPredecessor(t *testing.T) {
	r := newRig(t, 1, 2)
	r.switches[1].AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	r.configureGroup(1, 2, 1, 2)
	r.sim.RunFor(time.Second)
	r.ctrl.got = nil
	// Switch 1's control link fails; it relays via its ring predecessor.
	r.net.FailLink(1, model.ControllerNode)
	r.switches[1].SetControlRelay(true)
	r.switches[1].InjectLocal(pkt(10, 99, 0))
	r.sim.RunFor(time.Second)
	if len(r.ctrl.packetIns()) != 1 {
		t.Fatalf("relayed PacketIns = %d, want 1", len(r.ctrl.packetIns()))
	}
	if r.ctrl.packetIns()[0].Switch != 1 {
		t.Errorf("relayed PacketIn origin = %v, want 1", r.ctrl.packetIns()[0].Switch)
	}
}

func TestDetachHostStopsDelivery(t *testing.T) {
	r := newRig(t, 1)
	sw := r.switches[1]
	sw.AttachHost(model.HostMAC(10), model.HostIP(10), 1)
	sw.AttachHost(model.HostMAC(11), model.HostIP(11), 1)
	sw.DetachHost(model.HostMAC(11))
	sw.InjectLocal(pkt(10, 11, 0))
	r.sim.RunFor(2 * time.Second)
	if len(r.delivered[1]) != 0 {
		t.Error("packet delivered to detached host")
	}
	if len(r.ctrl.packetIns()) != 1 {
		t.Error("packet for detached host not escalated to controller")
	}
}

// TestPostRebootFilterAccepted pins the incarnation epoch at the edge:
// a peer's full filter built after its reboot (epoch advanced, change
// counter restarted) must pass the stale-version guard even though the
// receiver holds a filter stamped with a large pre-reboot counter —
// while a genuinely old filter is still refused.
func TestPostRebootFilterAccepted(t *testing.T) {
	r := newRig(t, 1, 2)
	r.configureGroup(1, 1, 1, 2)
	r.sim.RunFor(time.Second)
	sw := r.switches[1]

	peer := fib.NewLFIB()
	for i := 100; i < 150; i++ {
		peer.Learn(model.HostMAC(model.HostID(i)), model.HostIP(model.HostID(i)), 1, 1, 0)
	}
	install := func(l *fib.LFIB) {
		f := l.Filter(sw.cfg.FilterBits, sw.cfg.FilterHashes)
		data, err := f.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		sw.handleGFIBUpdate(&openflow.GFIBUpdate{
			Group:   1,
			Filters: []openflow.GFIBFilter{{Switch: 2, Filter: data, Version: l.Version()}},
			Version: 1,
		})
	}
	install(peer)
	pre := peer.Version()
	if held, ok := sw.gfib.PeerVersion(2); !ok || held != pre {
		t.Fatalf("pre-reboot filter not installed (held=%d ok=%v)", held, ok)
	}

	// An older full filter (late arrival from a slower sender) is
	// refused — the guard this test protects.
	stale := fib.NewLFIB()
	stale.Learn(model.HostMAC(99), model.HostIP(99), 1, 1, 0)
	install(stale)
	if held, _ := sw.gfib.PeerVersion(2); held != pre {
		t.Fatalf("stale filter regressed held version to %d", held)
	}

	// The peer reboots: few entries, tiny change counter, but a higher
	// epoch. Its filter must be adopted immediately.
	peer.Restart()
	peer.Learn(model.HostMAC(100), model.HostIP(100), 1, 1, 0)
	post := peer.Version()
	if post <= pre {
		t.Fatalf("post-reboot version %d not above pre-reboot %d", post, pre)
	}
	install(peer)
	if held, _ := sw.gfib.PeerVersion(2); held != post {
		t.Errorf("post-reboot filter refused: held %d, want %d", held, post)
	}
}
